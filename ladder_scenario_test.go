package appshare_test

import (
	"bytes"
	"testing"
	"time"

	"appshare/internal/netsim"
)

// maxFlapTransitions is the ladder-flap scenario's oscillation budget:
// with hysteresis (dwell, demote/promote streaks, exponential promote
// backoff) the controller must ride out three squeeze/heal cycles in
// at most this many tier moves. The mutation check below proves the
// bound has teeth: disabling hysteresis on the same link blows past it.
const maxFlapTransitions = 12

// viewerRecords extracts the delivery/feedback/drop journal records
// ('D', 'U', 'X') belonging to one viewer index, keeping offsets.
func viewerRecords(res *netsim.Result, idx byte, until time.Duration) (offs []time.Duration, pkts [][]byte) {
	for _, rec := range res.Journal {
		if rec.Offset >= until {
			continue
		}
		if len(rec.Packet) < 2 || rec.Packet[1] != idx {
			continue
		}
		switch rec.Packet[0] {
		case 'D', 'U', 'X':
			offs = append(offs, rec.Offset)
			pkts = append(pkts, rec.Packet)
		}
	}
	return offs, pkts
}

// TestLadderScenarioDegradeHeal runs the degrade-mid-run-then-heal
// profile and checks the tentpole acceptance criteria: with the ladder
// enabled every oracle passes (including byte-identical convergence of
// the squeezed viewer after heal), the controller demonstrably demoted
// and promoted, and the unimpaired observer's journal during the main
// phase is byte-identical to a ladder-off run — per-remote degradation
// must never perturb what a healthy viewer receives.
func TestLadderScenarioDegradeHeal(t *testing.T) {
	sc, err := netsim.ByName("ladder-degrade-heal")
	if err != nil {
		t.Fatal(err)
	}
	on, err := netsim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range on.Oracles {
		if !o.Passed {
			t.Errorf("ladder-on oracle %s failed: %s", o.Name, o.Detail)
		}
	}
	if on.QualityDemotes == 0 {
		t.Error("squeeze phase produced no demotions: the ladder never engaged")
	}
	if on.QualityPromotes == 0 {
		t.Error("heal phase produced no promotions: the squeezed viewer never climbed back")
	}
	t.Logf("ladder-on: demotes=%d promotes=%d flaps=%d ticks=%d",
		on.QualityDemotes, on.QualityPromotes, on.QualityFlaps, on.TicksRun)

	off := sc
	off.Ladder = nil
	offRes, err := netsim.Run(off)
	if err != nil {
		t.Fatal(err)
	}
	if offRes.QualityDemotes != 0 || offRes.QualityPromotes != 0 {
		t.Fatalf("ladder-off run recorded tier transitions: %d/%d",
			offRes.QualityDemotes, offRes.QualityPromotes)
	}

	// The observer is sc.Viewers[0] ("obs"); the runner prepends the
	// "_ref" reference viewer at index 0, so obs journals at index 1.
	// Compare its main-phase records only: the quiesce tail legitimately
	// differs in length (the settle loop exits as soon as every viewer
	// converges, and the squeezed viewer's recovery time depends on the
	// ladder).
	mainDur := time.Duration(sc.Ticks) * 40 * time.Millisecond
	onOffs, onPkts := viewerRecords(on, 1, mainDur)
	offOffs, offPkts := viewerRecords(offRes, 1, mainDur)
	if len(onPkts) != len(offPkts) {
		t.Fatalf("observer main-phase record count differs: ladder-on %d vs ladder-off %d",
			len(onPkts), len(offPkts))
	}
	for i := range onPkts {
		if onOffs[i] != offOffs[i] || !bytes.Equal(onPkts[i], offPkts[i]) {
			t.Fatalf("observer record %d differs between ladder-on and ladder-off runs (offset %v vs %v)",
				i, onOffs[i], offOffs[i])
		}
	}
	t.Logf("observer identical across runs: %d main-phase records", len(onPkts))
}

// TestLadderScenarioFlappingLink drives the ladder over a link that
// squeezes and heals three times, asserting the hysteresis keeps the
// tier oscillation bounded — and, via the NoHysteresis mutation, that
// the bound actually discriminates: the same link with the hysteresis
// disabled must blow past it. A flap-count assertion that cannot go
// red proves nothing.
func TestLadderScenarioFlappingLink(t *testing.T) {
	sc, err := netsim.ByName("ladder-flap")
	if err != nil {
		t.Fatal(err)
	}
	res, err := netsim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range res.Oracles {
		if !o.Passed {
			t.Errorf("oracle %s failed: %s", o.Name, o.Detail)
		}
	}
	transitions := res.QualityDemotes + res.QualityPromotes
	if transitions == 0 {
		t.Fatal("flapping link produced no tier transitions: the ladder never engaged")
	}
	if transitions > maxFlapTransitions {
		t.Fatalf("hysteresis failed to damp the flapping link: %d transitions (budget %d)",
			transitions, maxFlapTransitions)
	}
	t.Logf("with hysteresis: demotes=%d promotes=%d flaps=%d (budget %d)",
		res.QualityDemotes, res.QualityPromotes, res.QualityFlaps, maxFlapTransitions)

	mut := sc
	lc := *sc.Ladder
	lc.NoHysteresis = true
	mut.Ladder = &lc
	mutRes, err := netsim.Run(mut)
	if err != nil {
		t.Fatal(err)
	}
	mutTransitions := mutRes.QualityDemotes + mutRes.QualityPromotes
	if mutTransitions <= maxFlapTransitions {
		t.Fatalf("mutation check: hysteresis disabled yet only %d transitions (budget %d) — the flap bound has no teeth",
			mutTransitions, maxFlapTransitions)
	}
	t.Logf("without hysteresis: %d transitions — assertion demonstrably discriminates", mutTransitions)
}
