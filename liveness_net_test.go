package appshare_test

import (
	"errors"
	"net"
	"testing"
	"time"

	"appshare"
)

// In-memory net.Listener/net.Conn with controllable remote addresses, so
// the duplicate-ID attach failure (two conns claiming one address) is
// reproducible — real TCP would never hand out the same source port
// twice.

type strAddr string

func (a strAddr) Network() string { return "mem" }
func (a strAddr) String() string  { return string(a) }

type addrConn struct {
	net.Conn
	addr string
}

func (c addrConn) RemoteAddr() net.Addr { return strAddr(c.addr) }

type memListener struct {
	ch     chan net.Conn
	closed chan struct{}
}

func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}
func (l *memListener) Close() error   { close(l.closed); return nil }
func (l *memListener) Addr() net.Addr { return strAddr("mem-listener") }

// TestLivenessServeTCPSurvivesBadConn: one connection failing to attach
// (duplicate remote ID) must not kill the accept loop — later viewers
// still get in. Only a closed host stops ServeTCP.
func TestLivenessServeTCPSurvivesBadConn(t *testing.T) {
	desk := newDesk()
	h, err := newHostFor(desk)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	ln := &memListener{ch: make(chan net.Conn, 4), closed: make(chan struct{})}
	servErr := make(chan error, 1)
	go func() { servErr <- appshare.ServeTCP(h, ln, appshare.StreamOptions{}) }()

	dial := func(addr string) *appshare.Connection {
		server, client := net.Pipe()
		c := appshare.ConnectStream(appshare.NewParticipant(appshare.ParticipantConfig{}), client)
		ln.ch <- addrConn{Conn: server, addr: addr}
		return c
	}
	waitParticipants := func(want int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for h.Participants() != want {
			if time.Now().After(deadline) {
				t.Fatalf("participants = %d, want %d", h.Participants(), want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	connA := dial("viewer-1")
	defer connA.Close()
	waitParticipants(1)

	// Same address again: AttachStream rejects the duplicate ID, ServeTCP
	// closes the conn (its pump sees EOF) and keeps accepting.
	connB := dial("viewer-1")
	select {
	case <-connB.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("rejected connection was not closed")
	}
	waitParticipants(1)

	// The loop survived: a fresh viewer still attaches.
	connC := dial("viewer-2")
	defer connC.Close()
	waitParticipants(2)
	select {
	case err := <-servErr:
		t.Fatalf("ServeTCP exited early: %v", err)
	default:
	}

	// A closed host is the one attach failure that must stop the loop.
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	server, client := net.Pipe()
	defer client.Close()
	ln.ch <- addrConn{Conn: server, addr: "viewer-3"}
	select {
	case err := <-servErr:
		if !errors.Is(err, appshare.ErrHostClosed) {
			t.Fatalf("ServeTCP returned %v, want ErrHostClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeTCP kept running after host close")
	}
}

// TestLivenessReadIdleEviction: a black-holed TCP viewer — connected but
// never sending a byte — is detached once StreamOptions.ReadIdleTimeout
// elapses, instead of holding its session slot forever.
func TestLivenessReadIdleEviction(t *testing.T) {
	desk := newDesk()
	h, err := newHostFor(desk)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go appshare.ServeTCP(h, ln, appshare.StreamOptions{ReadIdleTimeout: 150 * time.Millisecond})

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Drain the host's initial state but never send anything back.
	go func() {
		buf := make([]byte, 32<<10)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
		}
	}()

	deadline := time.Now().Add(5 * time.Second)
	attached := false
	for time.Now().Before(deadline) {
		n := h.Participants()
		if n == 1 {
			attached = true
		}
		if attached && n == 0 {
			return // attached, then idle-evicted
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("silent viewer not detached (attached=%v, participants=%d)", attached, h.Participants())
}
