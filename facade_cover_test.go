package appshare_test

import (
	"testing"

	"appshare"
	"appshare/internal/apps"
	"appshare/internal/bfcp"
)

// TestFacadeConstructors exercises the remaining facade helpers.
func TestFacadeConstructors(t *testing.T) {
	var granted []uint16
	floor := appshare.NewFloor(9, func(uid uint16, m *bfcp.Message) {
		if m.Primitive == bfcp.FloorGranted {
			granted = append(granted, uid)
		}
	})
	if err := floor.Request(3); err != nil {
		t.Fatal(err)
	}
	if len(granted) != 1 || granted[0] != 3 {
		t.Fatalf("grants = %v", granted)
	}

	st := appshare.NewStats()
	st.Record("x", 10)
	if st.Total().Bytes != 10 {
		t.Fatal("stats record failed")
	}

	bus := appshare.NewBus()
	if bus.Subscribers() != 0 {
		t.Fatal("fresh bus has subscribers")
	}

	reg := appshare.DefaultCodecs()
	if len(reg.PayloadTypes()) != 3 {
		t.Fatalf("default codecs = %v", reg.PayloadTypes())
	}
}

// TestEditorWheelScrolls covers the editor's wheel handler end to end.
func TestEditorWheelScrolls(t *testing.T) {
	desk := appshare.NewDesktop(800, 600)
	win := desk.CreateWindow(1, appshare.XYWH(50, 50, 300, 200))
	apps.NewEditor(win)
	if err := desk.InjectKeyTyped(win.ID(), "line of text"); err != nil {
		t.Fatal(err)
	}
	desk.TakeMoves()
	// Wheel down two notches: content scrolls.
	if err := desk.InjectMouseWheel(win.ID(), 100, 100, -240); err != nil {
		t.Fatal(err)
	}
	if len(desk.TakeMoves()) == 0 {
		t.Fatal("wheel did not scroll the editor")
	}
	// Sub-notch distance is ignored.
	if err := desk.InjectMouseWheel(win.ID(), 100, 100, 60); err != nil {
		t.Fatal(err)
	}
	if len(desk.TakeMoves()) != 0 {
		t.Fatal("sub-notch wheel should not scroll")
	}
}

// TestEditorBackspaceMidLine covers deleting typed characters.
func TestEditorBackspaceMidLine(t *testing.T) {
	desk := appshare.NewDesktop(800, 600)
	win := desk.CreateWindow(1, appshare.XYWH(50, 50, 300, 200))
	ed := apps.NewEditor(win)
	if err := desk.InjectKeyTyped(win.ID(), "abc"); err != nil {
		t.Fatal(err)
	}
	if err := desk.InjectKeyPressed(win.ID(), 0x08); err != nil { // VK_BACK_SPACE
		t.Fatal(err)
	}
	if got := ed.Text(); got != "ab" {
		t.Fatalf("text after backspace = %q", got)
	}
}
