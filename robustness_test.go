package appshare_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"appshare/internal/bfcp"
	"appshare/internal/core"
	"appshare/internal/hip"
	"appshare/internal/remoting"
	"appshare/internal/rtcp"
	"appshare/internal/rtp"
	"appshare/internal/sdp"
)

// These tests inject arbitrary bytes into every decoder that faces the
// network. The property is simply: no panic, and errors (when returned)
// are non-nil rather than garbage successes for clearly impossible
// inputs. A hostile participant must not be able to crash an AH.

func noPanic(t *testing.T, name string, f func(data []byte)) {
	t.Helper()
	prop := func(data []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("%s panicked on %v: %v", name, data, r)
				ok = false
			}
		}()
		f(data)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodersNeverPanicOnRandomBytes(t *testing.T) {
	noPanic(t, "rtp.Packet.Unmarshal", func(data []byte) {
		var p rtp.Packet
		_ = p.Unmarshal(data)
	})
	noPanic(t, "rtcp.Unmarshal", func(data []byte) {
		_, _ = rtcp.Unmarshal(data)
	})
	noPanic(t, "remoting.DecodePayload", func(data []byte) {
		_, _ = remoting.DecodePayload(data)
	})
	noPanic(t, "hip.Unmarshal", func(data []byte) {
		_, _ = hip.Unmarshal(data)
	})
	noPanic(t, "bfcp.Unmarshal", func(data []byte) {
		_, _ = bfcp.Unmarshal(data)
	})
	noPanic(t, "core.ParseHeader", func(data []byte) {
		_, _, _ = core.ParseHeader(data)
	})
	noPanic(t, "sdp.Parse", func(data []byte) {
		_, _ = sdp.Parse(string(data))
	})
}

// TestReassemblerNeverPanicsOnHostileSequences drives the reassembler
// with random payloads and marker bits.
func TestReassemblerNeverPanicsOnHostileSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ra := core.NewReassembler()
	for i := 0; i < 5000; i++ {
		n := rng.Intn(64)
		data := make([]byte, n)
		rng.Read(data)
		if n >= 1 && rng.Intn(3) == 0 {
			// Bias toward fragmentable types to hit the stateful path.
			data[0] = byte(core.TypeRegionUpdate)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("reassembler panicked on %v: %v", data, r)
				}
			}()
			_, _ = ra.Push(data, rng.Intn(2) == 0)
		}()
	}
}

// TestValidDecodersAcceptTheirOwnOutput is the inverse sanity check:
// every marshal result decodes.
func TestValidDecodersAcceptTheirOwnOutput(t *testing.T) {
	msgs := []func() ([]byte, error){
		func() ([]byte, error) {
			return (&remoting.MoveRectangle{WindowID: 1, Width: 2, Height: 2}).Marshal()
		},
		func() ([]byte, error) { return (&remoting.WindowManagerInfo{}).Marshal() },
		func() ([]byte, error) { return hip.Marshal(&hip.MouseMoved{WindowID: 1}) },
		func() ([]byte, error) { return rtcp.Marshal(&rtcp.PLI{}) },
		func() ([]byte, error) { return (&bfcp.Message{Primitive: bfcp.FloorRequest}).Marshal() },
	}
	decoders := []func([]byte) error{
		func(b []byte) error { _, err := remoting.DecodePayload(b); return err },
		func(b []byte) error { _, err := remoting.DecodePayload(b); return err },
		func(b []byte) error { _, err := hip.Unmarshal(b); return err },
		func(b []byte) error { _, err := rtcp.Unmarshal(b); return err },
		func(b []byte) error { _, err := bfcp.Unmarshal(b); return err },
	}
	for i, mk := range msgs {
		buf, err := mk()
		if err != nil {
			t.Fatalf("case %d marshal: %v", i, err)
		}
		if err := decoders[i](buf); err != nil {
			t.Fatalf("case %d decode: %v", i, err)
		}
	}
}

// TestHostileParticipantCannotCrashHost feeds an attached host random
// datagrams: malformed RTP, truncated HIP, RTCP-looking noise.
func TestHostileParticipantCannotCrashHost(t *testing.T) {
	desk := newDesk()
	host, err := newHostFor(desk)
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	hostSide, attacker := simLink()
	if _, err := host.AttachPacketConn("attacker", hostSide, packetOpts()); err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			if _, err := attacker.Recv(); err != nil {
				return
			}
		}
	}()
	rng := rand.New(rand.NewSource(1234))
	for i := 0; i < 3000; i++ {
		n := rng.Intn(200)
		pkt := make([]byte, n)
		rng.Read(pkt)
		if n > 1 && rng.Intn(4) == 0 {
			pkt[1] = byte(200 + rng.Intn(8)) // smells like RTCP
		}
		if n > 12 && rng.Intn(4) == 0 {
			pkt[0] = 0x80 // valid RTP version
			pkt[1] = 100  // HIP payload type
		}
		if err := attacker.Send(pkt); err != nil {
			t.Fatal(err)
		}
	}
	// The host must still function.
	if err := host.Tick(); err != nil {
		t.Fatal(err)
	}
}
