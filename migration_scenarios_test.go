package appshare_test

import (
	"bytes"
	"testing"

	"appshare/internal/netsim"
)

// TestMigrationFamily drives every partition-then-migrate scenario:
// the broker loses the host's heartbeats, sweeps the session to the
// standby from the last checkpoint, and every viewer's packet conn is
// resumed against the new host mid-stream. The migration oracle pins
// the failover tick to FailAtTick+detect, demands the floor holder
// survived the handoff (the queued requester is granted after the
// post-migration release), and — the draft's scaling claim — that the
// standby served exactly zero full-refresh encodes beyond the fresh
// joins that arrived after the switch: resumed viewers continue from
// the checkpointed packetizer state instead of being repainted.
func TestMigrationFamily(t *testing.T) {
	for _, sc := range netsim.MigrationFamily() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res, err := netsim.Run(sc)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			for _, o := range res.Oracles {
				if o.Passed {
					continue
				}
				t.Errorf("oracle %s failed: %s", o.Name, o.Detail)
			}
			t.Logf("seed=%d ticks=%d journal=%d records digest=%s",
				res.Seed, res.TicksRun, len(res.Journal), res.Digest)
		})
	}
}

// TestMigrationDeterminism replays migration scenarios and demands
// byte-identical journals: the kill, the dead-window black-holes, the
// sweep and the resumed streams all land on the same bytes at the same
// offsets. A failover bug is only debuggable if the failover replays.
func TestMigrationDeterminism(t *testing.T) {
	for _, name := range []string{"migrate-pristine", "migrate-tiles", "migrate-viewer-partition", "migrate-shards"} {
		name := name
		t.Run(name, func(t *testing.T) {
			sc, err := netsim.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			a, err := netsim.Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			b, err := netsim.Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			if a.Digest != b.Digest {
				t.Fatalf("digest mismatch: %s vs %s", a.Digest, b.Digest)
			}
			if len(a.Journal) != len(b.Journal) {
				t.Fatalf("journal length mismatch: %d vs %d", len(a.Journal), len(b.Journal))
			}
			for i := range a.Journal {
				if a.Journal[i].Offset != b.Journal[i].Offset ||
					!bytes.Equal(a.Journal[i].Packet, b.Journal[i].Packet) {
					t.Fatalf("journal record %d differs between replays", i)
				}
			}
			t.Logf("deterministic across replays: digest=%s (%d records)", a.Digest, len(a.Journal))
		})
	}
}

// TestMigrationMutation plants known handoff faults and demands the
// oracles notice — the migration suite's proof that its green runs
// mean something.
func TestMigrationMutation(t *testing.T) {
	t.Run("corrupt-snapshot", func(t *testing.T) {
		// A checkpoint whose packetizer sequence was bumped restores the
		// standby one packet ahead of the wire: every resumed viewer
		// sees a sequence discontinuity that is neither a fresh send nor
		// a logged retransmission.
		sc, err := netsim.ByName("migrate-pristine")
		if err != nil {
			t.Fatal(err)
		}
		sc.Fault = netsim.FaultCorruptSnapshot
		res, err := netsim.Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		if res.Passed() {
			t.Fatal("corrupted checkpoint restored onto the standby went unnoticed by every oracle")
		}
		t.Logf("caught by: %v", res.Failures())
	})
	t.Run("drop-floor-state", func(t *testing.T) {
		// Losing the BFCP floor state across the handoff means the
		// pre-failover holder's release fails on the standby and the
		// queued requester is never granted — exactly what the floor
		// custody probe exists to see.
		sc, err := netsim.ByName("migrate-pristine")
		if err != nil {
			t.Fatal(err)
		}
		sc.Fault = netsim.FaultDropFloorState
		res, err := netsim.Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		if res.Passed() {
			t.Fatal("dropped floor state across the handoff went unnoticed by every oracle")
		}
		found := false
		for _, o := range res.Oracles {
			if o.Name == "migration" && !o.Passed {
				found = true
			}
		}
		if !found {
			t.Fatalf("the lost custody was caught, but not by the migration oracle: %v", res.Failures())
		}
		t.Logf("caught by: %v", res.Failures())
	})
}

// TestBrokerSurvivorJournalIdentity runs the same scenario with a
// broker monitoring a host that never fails and without any broker at
// all, and demands byte-identical journals: registration, heartbeats
// and checkpoint capture must be pure observers of the data path.
func TestBrokerSurvivorJournalIdentity(t *testing.T) {
	sc, err := netsim.ByName("migrate-pristine")
	if err != nil {
		t.Fatal(err)
	}
	sc.Broker = &netsim.BrokerSpec{FailAtTick: 0}
	a, err := netsim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Passed() {
		t.Fatalf("broker-observed run failed its own oracles: %v", a.Failures())
	}
	sc.Broker = nil
	b, err := netsim.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Passed() {
		t.Fatalf("broker-free run failed its own oracles: %v", b.Failures())
	}
	if a.Digest != b.Digest {
		t.Fatalf("broker presence perturbed the wire: digest %s with broker vs %s without", a.Digest, b.Digest)
	}
	if len(a.Journal) != len(b.Journal) {
		t.Fatalf("journal length mismatch: %d with broker vs %d without", len(a.Journal), len(b.Journal))
	}
	for i := range a.Journal {
		if a.Journal[i].Offset != b.Journal[i].Offset ||
			!bytes.Equal(a.Journal[i].Packet, b.Journal[i].Packet) {
			t.Fatalf("journal record %d differs between broker-observed and broker-free runs", i)
		}
	}
	t.Logf("broker is wire-invisible on a healthy host: digest=%s (%d records)", a.Digest, len(a.Journal))
}
