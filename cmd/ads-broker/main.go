// ads-broker is the session control plane (DESIGN.md "Session broker &
// migration"). Hosts dial the -hosts port, announce themselves with a
// framed BrokerRegister and then report load once per capture tick
// with BrokerHeartbeats; viewers dial the -viewers port, send one
// frame naming the stream they want (ASCII decimal, empty = any), and
// receive one frame with an SDP offer for the least-loaded registered
// host or relay. A periodic sweep declares silent hosts dead and
// pushes a framed BrokerMigrate to the destination host chosen to
// adopt each orphaned session.
//
// In-process users (the netsim migration suite, library embedders) get
// the full custody path instead — per-tick session checkpoints and
// BFCP floor state ride the Broker API's Heartbeat, and MigrationOrder
// hands the destination everything RestoreSession needs.
//
// Examples:
//
//	ads-broker -hosts :6100 -viewers :6101
//	ads-broker -timeout 2s -sweep 500ms -remoting-port 6004 -hip-port 6006
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"appshare"
	"appshare/internal/broker"
	"appshare/internal/framing"
	"appshare/internal/remoting"
)

func main() {
	var (
		hostAddr   = flag.String("hosts", ":6100", "TCP listen address for host control links")
		viewerAddr = flag.String("viewers", ":6101", "TCP listen address for viewer placement requests")
		timeout    = flag.Duration("timeout", broker.DefaultHeartbeatTimeout, "heartbeat silence before a host is declared dead")
		sweep      = flag.Duration("sweep", time.Second, "failure-detector sweep interval")
		statsEvery = flag.Duration("stats", 10*time.Second, "placement table print interval (0 disables)")

		remotingPort = flag.Int("remoting-port", 6004, "remoting port advertised in viewer offers")
		remotingPT   = flag.Uint("pt", 99, "remoting RTP payload type")
		hipPort      = flag.Int("hip-port", 6006, "HIP port advertised in viewer offers")
		hipPT        = flag.Uint("hip-pt", 100, "HIP RTP payload type")
		offerTCP     = flag.Bool("tcp", true, "offer TCP remoting")
		offerUDP     = flag.Bool("udp", true, "offer UDP remoting")
	)
	flag.Parse()

	b := broker.New(broker.Config{HeartbeatTimeout: *timeout})
	base := appshare.SDPOffer{
		RemotingPort: *remotingPort, RemotingPT: uint8(*remotingPT),
		HIPPort: *hipPort, HIPPT: uint8(*hipPT),
		OfferTCP: *offerTCP, OfferUDP: *offerUDP,
		Retransmissions: *offerUDP,
	}

	s := &server{b: b, base: base, links: make(map[uint32]*framing.Writer)}

	hl, err := net.Listen("tcp", *hostAddr)
	if err != nil {
		log.Fatal(err)
	}
	vl, err := net.Listen("tcp", *viewerAddr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("hosts on %s, viewers on %s", hl.Addr(), vl.Addr())

	go s.accept(hl, s.serveHost)
	go s.accept(vl, s.serveViewer)

	st := time.NewTicker(*sweep)
	defer st.Stop()
	var stats <-chan time.Time
	if *statsEvery > 0 {
		t := time.NewTicker(*statsEvery)
		defer t.Stop()
		stats = t.C
	}
	for {
		select {
		case <-st.C:
			for _, order := range b.Sweep() {
				s.pushMigration(order)
			}
		case <-stats:
			for _, h := range b.Hosts() {
				log.Printf("host %d addr=%s stream=%d remotes=%d backlog=%d relay=%v draining=%v dead=%v",
					h.ID, h.Addr, h.StreamID, h.Remotes, h.Backlog, h.Relay, h.Draining, h.Dead)
			}
			for _, sess := range b.Sessions() {
				log.Printf("session %d on host %d epoch=%d migrations=%d",
					sess.StreamID, sess.HostID, sess.Epoch, sess.Migrations)
			}
		}
	}
}

type server struct {
	b    *broker.Broker
	base appshare.SDPOffer

	mu    sync.Mutex
	links map[uint32]*framing.Writer // control link per registered host
}

func (s *server) accept(l net.Listener, serve func(net.Conn)) {
	for {
		conn, err := l.Accept()
		if err != nil {
			log.Printf("accept: %v", err)
			return
		}
		go serve(conn)
	}
}

// serveHost runs one host control link: framed BrokerRegister and
// BrokerHeartbeat payloads in, framed BrokerMigrate orders out.
func (s *server) serveHost(conn net.Conn) {
	defer conn.Close()
	r := framing.NewReader(conn)
	w := framing.NewWriter(conn)
	var hostID uint32
	addr := conn.RemoteAddr().String()
	if host, _, err := net.SplitHostPort(addr); err == nil {
		addr = host
	}
	for {
		frame, err := r.ReadFrame()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				log.Printf("host %d link: %v", hostID, err)
			}
			return
		}
		msg, err := remoting.DecodePayload(frame)
		if err != nil {
			log.Printf("host link %s: %v", addr, err)
			return
		}
		switch m := msg.(type) {
		case *remoting.BrokerRegister:
			s.b.Register(m, addr)
			hostID = m.HostID
			s.mu.Lock()
			s.links[hostID] = w
			s.mu.Unlock()
			log.Printf("host %d registered from %s (capacity=%d flags=%#x)", m.HostID, addr, m.Capacity, m.Flags)
		case *remoting.BrokerHeartbeat:
			// The TCP control link carries load only; checkpoint custody
			// is the in-process Broker API (see package comment).
			if err := s.b.Heartbeat(m, nil, nil); err != nil {
				log.Printf("host link %s: %v", addr, err)
				return
			}
		default:
			log.Printf("host link %s: unexpected %v", addr, msg.Type())
			return
		}
	}
}

// pushMigration hands a sweep-emitted order to the destination host.
func (s *server) pushMigration(order *broker.MigrationOrder) {
	log.Printf("migrating stream %d: host %d → host %d (epoch %d)",
		order.Msg.StreamID, order.Msg.FromHost, order.Msg.ToHost, order.Msg.Epoch)
	s.mu.Lock()
	w := s.links[order.Msg.ToHost]
	s.mu.Unlock()
	if w == nil {
		log.Printf("no control link to destination host %d", order.Msg.ToHost)
		return
	}
	pkt, err := order.Msg.Marshal()
	if err != nil {
		log.Printf("marshal migrate: %v", err)
		return
	}
	if err := w.WriteFrame(pkt); err != nil {
		log.Printf("push migrate to host %d: %v", order.Msg.ToHost, err)
	}
}

// serveViewer answers one placement request: a frame with the ASCII
// stream ID (empty = any session) is answered with an SDP offer for
// the least-loaded host serving it.
func (s *server) serveViewer(conn net.Conn) {
	defer conn.Close()
	r := framing.NewReader(conn)
	w := framing.NewWriter(conn)
	frame, err := r.ReadFrame()
	if err != nil {
		return
	}
	var streamID uint64
	if t := strings.TrimSpace(string(frame)); t != "" {
		streamID, err = strconv.ParseUint(t, 10, 32)
		if err != nil {
			_ = w.WriteFrame([]byte(fmt.Sprintf("error: bad stream id %q", t)))
			return
		}
	}
	hostID, offer, err := s.b.Offer(uint32(streamID), s.base)
	if err != nil {
		_ = w.WriteFrame([]byte("error: " + err.Error()))
		return
	}
	log.Printf("viewer %s placed on host %d (stream %d)", conn.RemoteAddr(), hostID, streamID)
	_ = w.WriteFrame([]byte(offer))
}
