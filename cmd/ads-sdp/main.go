// ads-sdp generates or inspects session descriptions for application and
// desktop sharing sessions (draft Section 10).
//
// Examples:
//
//	ads-sdp -generate -address 192.0.2.10 -bfcp 50000
//	ads-sdp -parse offer.sdp
//	ads-sdp -example          # print and parse the draft's 10.3 example
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"appshare"
	"appshare/internal/sdp"
)

func main() {
	var (
		generate = flag.Bool("generate", false, "generate an offer")
		parse    = flag.String("parse", "", "parse an SDP file and print the session parameters")
		example  = flag.Bool("example", false, "print and parse the draft Section 10.3 example")

		address  = flag.String("address", "127.0.0.1", "connection address")
		remoting = flag.Int("remoting-port", 6000, "remoting port (UDP and TCP)")
		hipPort  = flag.Int("hip-port", 6006, "HIP port")
		bfcpPort = flag.Int("bfcp", 0, "BFCP floor control port (0 = none)")
		udp      = flag.Bool("udp", true, "offer UDP remoting")
		tcp      = flag.Bool("tcp", true, "offer TCP remoting")
		retrans  = flag.Bool("retransmissions", true, "announce UDP retransmission support")
	)
	flag.Parse()

	switch {
	case *example:
		fmt.Print(sdp.Example103)
		sess, err := appshare.ParseSDPOffer("v=0\r\ns=-\r\nt=0 0\r\n" + sdp.Example103)
		if err != nil {
			log.Fatal(err)
		}
		printSession(sess)
	case *generate:
		offer, err := appshare.BuildSDPOffer(appshare.SDPOffer{
			Address:         *address,
			RemotingPort:    *remoting,
			RemotingPT:      99,
			OfferUDP:        *udp,
			OfferTCP:        *tcp,
			Retransmissions: *retrans,
			HIPPort:         *hipPort,
			HIPPT:           100,
			BFCPPort:        *bfcpPort,
			HIPStream:       10,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(offer)
	case *parse != "":
		data, err := os.ReadFile(*parse)
		if err != nil {
			log.Fatal(err)
		}
		sess, err := appshare.ParseSDPOffer(string(data))
		if err != nil {
			log.Fatal(err)
		}
		printSession(sess)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func printSession(s *appshare.SDPSession) {
	fmt.Println("---")
	fmt.Printf("remoting: PT %d, rate %d Hz\n", s.RemotingPT, s.Rate)
	if s.RemotingUDPPort != 0 {
		fmt.Printf("  UDP port %d (retransmissions=%v)\n", s.RemotingUDPPort, s.Retransmissions)
	}
	if s.RemotingTCPPort != 0 {
		fmt.Printf("  TCP port %d\n", s.RemotingTCPPort)
	}
	fmt.Printf("hip: PT %d, port %d\n", s.HIPPT, s.HIPPort)
	if s.BFCPPort != 0 {
		fmt.Printf("bfcp floor control: port %d\n", s.BFCPPort)
	}
}
