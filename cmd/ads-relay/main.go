// ads-relay is an edge fan-out node of the relay cascade: it dials an
// origin host (or a parent relay) as a single stream subscriber,
// caches the latest full-refresh snapshot, and re-fans the stream to
// its own UDP viewers — late joiners and PLIs are served from the
// cache, invisible to the origin.
//
// Examples:
//
//	ads-relay -origin 127.0.0.1:6000 -udp :7000
//	ads-relay -origin 127.0.0.1:6000 -udp :7000 -refresh-every 64 -shards 4
package main

import (
	"flag"
	"log"
	"net"
	"time"

	"appshare"
)

func main() {
	var (
		origin       = flag.String("origin", "", "origin (or parent relay) TCP address")
		udpAddr      = flag.String("udp", ":7000", "UDP listen address for viewers")
		streamID     = flag.Uint("stream", 0, "stream id to subscribe to (must match the origin's)")
		remotingPT   = flag.Uint("pt", 99, "remoting RTP payload type")
		refreshEvery = flag.Int("refresh-every", 64, "request an upstream cache refill every N forwarded messages (0 disables)")
		minRefresh   = flag.Duration("min-refresh", 500*time.Millisecond, "per-viewer cache-serve rate limit")
		shards       = flag.Int("shards", 1, "viewer shards")
		statsEvery   = flag.Duration("stats", 5*time.Second, "cascade counter print interval (0 disables)")
		duration     = flag.Duration("duration", 0, "how long to relay (0 = until the upstream dies)")
	)
	flag.Parse()
	if *origin == "" {
		log.Fatal("specify -origin")
	}

	rl := appshare.NewRelay(appshare.RelayConfig{
		StreamID:           uint32(*streamID),
		RemotingPT:         uint8(*remotingPT),
		RefreshEvery:       *refreshEvery,
		MinRefreshInterval: *minRefresh,
		Shards:             *shards,
	})

	up, err := net.Dial("tcp", *origin)
	if err != nil {
		log.Fatal(err)
	}
	done, err := appshare.SubscribeRelayStream(rl, up, true)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("subscribed to %s (stream %d)", *origin, *streamID)

	laddr, err := net.ResolveUDPAddr("udp", *udpAddr)
	if err != nil {
		log.Fatal(err)
	}
	uconn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := appshare.RelayServeUDP(rl, uconn); err != nil {
			log.Printf("udp serve: %v", err)
		}
	}()
	log.Printf("serving viewers on %s", uconn.LocalAddr())

	var tick <-chan time.Time
	if *statsEvery > 0 {
		t := time.NewTicker(*statsEvery)
		defer t.Stop()
		tick = t.C
	}
	var end <-chan time.Time
	if *duration > 0 {
		end = time.After(*duration)
	}
	for {
		select {
		case err := <-done:
			_ = rl.Close()
			if err != nil {
				log.Fatalf("upstream: %v", err)
			}
			return
		case <-tick:
			st := rl.Stats()
			log.Printf("viewers=%d batches=%d refills=%d cache-serves=%d absorbed-plis=%d upstream-refreshes=%d",
				rl.Viewers(), st.Batches, st.CacheRefills, st.CacheServes, st.AbsorbedPLIs, st.UpstreamRefreshRequests)
		case <-end:
			_ = rl.Close()
			_ = up.Close()
			return
		}
	}
}
