// ads-replay re-renders a recorded sharing session offline: it feeds a
// trace file (recorded with ads-view -record or Connection.RecordTo)
// into a fresh participant and writes PNG frames, optionally honoring
// the original packet timing.
//
// Examples:
//
//	ads-replay -in session.trace -out final.png
//	ads-replay -in session.trace -frames frames/ -every 500ms -realtime
package main

import (
	"errors"
	"flag"
	"fmt"
	"image/png"
	"io"
	"log"
	"os"
	"path/filepath"
	"time"

	"appshare"
	"appshare/internal/trace"
	"appshare/internal/windows"
)

func main() {
	var (
		in       = flag.String("in", "", "trace file (required)")
		out      = flag.String("out", "replay.png", "final rendered screen")
		frames   = flag.String("frames", "", "directory for periodic frames (optional)")
		every    = flag.Duration("every", time.Second, "frame interval in trace time")
		realtime = flag.Bool("realtime", false, "sleep to honor original packet pacing")
		layout   = flag.String("layout", "original", "layout: original|autoshift|compact")
		width    = flag.Int("width", 1280, "screen width")
		height   = flag.Int("height", 1024, "screen height")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.NewReader(f)
	if err != nil {
		log.Fatal(err)
	}

	var lay appshare.Layout
	switch *layout {
	case "original":
		lay = appshare.OriginalLayout{}
	case "autoshift":
		lay = &windows.AutoShiftLayout{}
	case "compact":
		lay = &appshare.CompactLayout{Screen: appshare.XYWH(0, 0, *width, *height)}
	default:
		log.Fatalf("unknown layout %q", *layout)
	}
	p := appshare.NewParticipant(appshare.ParticipantConfig{
		Layout:      lay,
		ScreenWidth: *width, ScreenHeight: *height,
	})

	if *frames != "" {
		if err := os.MkdirAll(*frames, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	var (
		count     int
		rtcpCount int
		frameNo   int
		nextFrame = *every
		prev      time.Duration
	)
	for {
		rec, err := tr.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			log.Fatalf("after %d packets: %v", count, err)
		}
		if *realtime {
			if gap := rec.Offset - prev; gap > 0 {
				time.Sleep(gap)
			}
		}
		prev = rec.Offset
		if *frames != "" {
			for rec.Offset >= nextFrame {
				writeFrame(*frames, frameNo, p)
				frameNo++
				nextFrame += *every
			}
		}
		if len(rec.Packet) >= 2 && rec.Packet[1] >= 200 && rec.Packet[1] <= 207 {
			rtcpCount++
			continue
		}
		if err := p.HandlePacket(rec.Packet); err != nil {
			continue // stray packets are skipped, as a live viewer would
		}
		count++
	}

	o, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer o.Close()
	if err := png.Encode(o, p.Render()); err != nil {
		log.Fatal(err)
	}
	received, dups, reordered, dropped := p.Stats()
	fmt.Printf("replayed %d remoting packets (%d RTCP) over %v of trace time\n", count, rtcpCount, prev)
	fmt.Printf("stream: %d received, %d dup, %d reordered, %d messages dropped, %d gaps left\n",
		received, dups, reordered, dropped, len(p.MissingSequences()))
	fmt.Printf("windows: %v; final screen -> %s", p.Windows(), *out)
	if frameNo > 0 {
		fmt.Printf(" (+%d frames in %s)", frameNo, *frames)
	}
	fmt.Println()
}

func writeFrame(dir string, n int, p *appshare.Participant) {
	path := filepath.Join(dir, fmt.Sprintf("frame-%04d.png", n))
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := png.Encode(f, p.Render()); err != nil {
		log.Fatal(err)
	}
}
