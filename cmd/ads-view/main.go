// ads-view is a headless participant: it joins a sharing session over
// TCP or UDP, maintains the shared windows under a chosen layout, and
// periodically writes its rendered screen to PNG files.
//
// Examples:
//
//	ads-view -tcp 127.0.0.1:6000 -out view.png -duration 10s
//	ads-view -udp 127.0.0.1:6000 -layout compact -width 640 -height 480
package main

import (
	"flag"
	"fmt"
	"image/png"
	"log"
	"os"
	"time"

	"appshare"
	"appshare/internal/windows"
)

func main() {
	var (
		tcpAddr  = flag.String("tcp", "", "host TCP address")
		udpAddr  = flag.String("udp", "", "host UDP address")
		layout   = flag.String("layout", "original", "layout: original|autoshift|compact")
		width    = flag.Int("width", 1280, "local screen width")
		height   = flag.Int("height", 1024, "local screen height")
		out      = flag.String("out", "view.png", "output PNG path (rewritten each snapshot)")
		interval = flag.Duration("interval", time.Second, "snapshot interval")
		duration = flag.Duration("duration", 10*time.Second, "how long to view")
		nack     = flag.Bool("nack", true, "send NACK requests for missing packets (UDP)")
		record   = flag.String("record", "", "record the session to a trace file (replay with ads-replay)")
		tiles    = flag.Bool("tile-store", false, "negotiate the tile store (must match the host's -tile-store)")
	)
	flag.Parse()
	if (*tcpAddr == "") == (*udpAddr == "") {
		log.Fatal("specify exactly one of -tcp or -udp")
	}

	var lay appshare.Layout
	switch *layout {
	case "original":
		lay = appshare.OriginalLayout{}
	case "autoshift":
		lay = &windows.AutoShiftLayout{}
	case "compact":
		lay = &appshare.CompactLayout{Screen: appshare.XYWH(0, 0, *width, *height)}
	default:
		log.Fatalf("unknown layout %q", *layout)
	}

	p := appshare.NewParticipant(appshare.ParticipantConfig{
		Layout:      lay,
		ScreenWidth: *width, ScreenHeight: *height,
		TileStore: *tiles,
	})

	var conn *appshare.Connection
	var err error
	isUDP := *udpAddr != ""
	if isUDP {
		conn, err = appshare.DialUDP(p, *udpAddr)
	} else {
		conn, err = appshare.DialTCP(p, *tcpAddr)
	}
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()

	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		tw, err := appshare.NewTraceWriter(f)
		if err != nil {
			log.Fatal(err)
		}
		defer tw.Flush()
		conn.RecordTo(tw)
		log.Printf("recording session to %s", *record)
	}

	if isUDP {
		// Section 4.3: UDP late joiners announce themselves with a PLI.
		if err := conn.SendPLI(); err != nil {
			log.Fatal(err)
		}
	}

	log.Printf("viewing; snapshots to %s every %v", *out, *interval)
	// Loss repair (PLI/NACK) with NACK-storm damping runs in the
	// background.
	stopRepair := make(chan struct{})
	defer close(stopRepair)
	if !isUDP || *nack {
		go func() {
			if err := conn.RepairLoop(stopRepair, 200*time.Millisecond, 50*time.Millisecond); err != nil {
				log.Printf("repair loop: %v", err)
			}
		}()
	}
	snap := time.NewTicker(*interval)
	defer snap.Stop()
	reports := time.NewTicker(5 * time.Second) // RTCP RR interval
	defer reports.Stop()
	end := time.After(*duration)
	count := 0
	for {
		select {
		case <-snap.C:
			if err := writePNG(*out, p); err != nil {
				log.Fatal(err)
			}
			count++
		case <-reports.C:
			if err := conn.SendReceiverReport(); err != nil {
				log.Printf("receiver report: %v", err)
			}
		case <-conn.Done():
			log.Printf("connection closed: %v", conn.Err())
			return
		case <-end:
			received, dups, reordered, dropped := p.Stats()
			fmt.Printf("wrote %d snapshots; %d packets (%d dup, %d reordered, %d messages dropped)\n",
				count, received, dups, reordered, dropped)
			return
		}
	}
}

func writePNG(path string, p *appshare.Participant) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return png.Encode(f, p.Render())
}
