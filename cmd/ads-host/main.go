// ads-host runs an Application Host: it shares a virtual desktop driven
// by a scripted workload and serves TCP and/or UDP participants.
//
// Examples:
//
//	ads-host -tcp 127.0.0.1:6000 -workload typing
//	ads-host -tcp :6000 -udp :6000 -workload scrolling -fps 20 -duration 30s
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"time"

	"appshare"
	"appshare/internal/apps"
	"appshare/internal/workload"
)

func main() {
	var (
		tcpAddr   = flag.String("tcp", "127.0.0.1:6000", "TCP listen address (empty to disable)")
		udpAddr   = flag.String("udp", "", "UDP listen address (empty to disable)")
		width     = flag.Int("width", 1280, "desktop width in pixels")
		height    = flag.Int("height", 1024, "desktop height in pixels")
		wl        = flag.String("workload", "typing", "workload: typing|scrolling|slideshow|video|drag|editor|whiteboard|slides|slidecycle|pageflip|reexpose|idle")
		fps       = flag.Int("fps", 10, "capture ticks per second")
		duration  = flag.Duration("duration", 0, "how long to run (0 = forever)")
		retrans   = flag.Bool("retransmissions", true, "serve NACK retransmissions to UDP participants")
		autoCodec = flag.Bool("autocodec", false, "classify regions and pick PNG/JPEG automatically")
		showStats = flag.Bool("stats", true, "print traffic stats on exit")
		printSDP  = flag.Bool("sdp", false, "print the session SDP offer and exit")

		remoteTimeout = flag.Duration("remote-timeout", 0, "evict a participant silent for this long (0 = never)")
		backlogDwell  = flag.Duration("backlog-dwell", 0, "congestion budget before degrade/evict (0 = off)")
		eviction      = flag.String("eviction", "monitor", "congestion policy: monitor|degrade|drop")
		readIdle      = flag.Duration("read-idle", 0, "drop a TCP participant sending nothing for this long (0 = never)")

		ladder        = flag.Bool("quality-ladder", false, "enable the per-participant congestion-adaptive quality ladder")
		ladderDemote  = flag.Duration("ladder-demote", 0, "congestion streak before dropping one quality tier (0 = default)")
		ladderPromote = flag.Duration("ladder-promote", 0, "clean streak before climbing one quality tier (0 = default)")
		ladderDwell   = flag.Duration("ladder-dwell", 0, "minimum time between tier moves for one participant (0 = default)")

		sendShards = flag.Int("send-shards", 0, "fan-out shards, each with its own sender goroutine (0 = GOMAXPROCS, 1 = inline single-lock fan-out)")

		tileStore = flag.Bool("tile-store", false, "enable the persistent tile store: revisited content ships as tile references instead of re-encoded pixels")
	)
	flag.Parse()

	if *printSDP {
		offer, err := appshare.BuildSDPOffer(appshare.SDPOffer{
			Address:         "127.0.0.1",
			RemotingPort:    6000,
			RemotingPT:      99,
			OfferUDP:        *udpAddr != "",
			OfferTCP:        *tcpAddr != "",
			Retransmissions: *retrans,
			TileStore:       *tileStore,
			HIPPort:         6006,
			HIPPT:           100,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(offer)
		return
	}

	desk := appshare.NewDesktop(*width, *height)
	win := desk.CreateWindow(1, appshare.XYWH(*width/8, *height/8, *width/2, *height/2))

	var w appshare.Workload
	switch *wl {
	case "typing":
		w = workload.NewTyping(win, 16, 1)
	case "scrolling":
		w = workload.NewScrolling(win, 2, 1)
	case "slideshow":
		w = workload.NewSlideshow(win, 3**fps, 1)
	case "video":
		w = workload.NewVideoRegion(win, appshare.XYWH(20, 20, 320, 240), 1)
	case "drag":
		w = workload.NewWindowDrag(desk, win.ID(), 1)
	case "editor":
		apps.NewEditor(win)
		w = workload.Idle{}
	case "whiteboard":
		apps.NewWhiteboard(win)
		w = workload.Idle{}
	case "slides":
		apps.NewSlides(win, 12, 1)
		w = workload.Idle{}
	case "slidecycle":
		w = workload.NewRevisit("slidecycle", win, 4, *fps/2+1, 1)
	case "pageflip":
		w = workload.NewRevisit("pageflip", win, 2, *fps/4+1, 1)
	case "reexpose":
		w = workload.NewRevisit("reexpose", win, 1, *fps/3+1, 1)
	case "idle":
		w = workload.Idle{}
	default:
		log.Fatalf("unknown workload %q", *wl)
	}

	policy, err := appshare.ParseEvictionPolicy(*eviction)
	if err != nil {
		log.Fatal(err)
	}
	var tileCfg *appshare.TileStoreConfig
	if *tileStore {
		tileCfg = &appshare.TileStoreConfig{}
	}
	var ladderCfg *appshare.LadderConfig
	if *ladder {
		ladderCfg = &appshare.LadderConfig{
			DemoteAfter:  *ladderDemote,
			PromoteAfter: *ladderPromote,
			MinTierDwell: *ladderDwell,
		}
	}
	st := appshare.NewStats()
	host, err := appshare.NewHost(appshare.HostConfig{
		Desktop:         desk,
		Retransmissions: *retrans,
		Stats:           st,
		Capture:         appshare.CaptureOptions{AutoSelect: *autoCodec},
		RemoteTimeout:   *remoteTimeout,
		MaxBacklogDwell: *backlogDwell,
		EvictionPolicy:  policy,
		Ladder:          ladderCfg,
		SendShards:      *sendShards,
		TileStore:       tileCfg,
		OnEvict: func(snap appshare.RemoteHealth) {
			log.Printf("evicted participant %s: %s", snap.ID, snap.EvictReason)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer host.Close()

	if *tcpAddr != "" {
		ln, err := net.Listen("tcp", *tcpAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer ln.Close()
		log.Printf("serving TCP participants on %s", ln.Addr())
		go func() {
			if err := appshare.ServeTCP(host, ln, appshare.StreamOptions{ReadIdleTimeout: *readIdle, TileStore: *tileStore}); err != nil {
				log.Printf("tcp server: %v", err)
			}
		}()
	}
	if *udpAddr != "" {
		addr, err := net.ResolveUDPAddr("udp", *udpAddr)
		if err != nil {
			log.Fatal(err)
		}
		sock, err := net.ListenUDP("udp", addr)
		if err != nil {
			log.Fatal(err)
		}
		defer sock.Close()
		log.Printf("serving UDP participants on %s (join with a PLI)", sock.LocalAddr())
		go func() {
			if err := appshare.ServeUDP(host, sock, appshare.PacketOptions{TileStore: *tileStore}); err != nil {
				log.Printf("udp server: %v", err)
			}
		}()
	}

	log.Printf("sharing %dx%d desktop, workload=%s, %d fps", *width, *height, w.Name(), *fps)
	ticker := time.NewTicker(time.Second / time.Duration(*fps))
	defer ticker.Stop()
	reports := time.NewTicker(5 * time.Second) // RTCP SR interval
	defer reports.Stop()
	var stop <-chan time.Time
	if *duration > 0 {
		stop = time.After(*duration)
	}
	for {
		select {
		case <-ticker.C:
			w.Step()
			if err := host.Tick(); err != nil {
				log.Fatal(err)
			}
		case <-reports.C:
			if err := host.SendReports(); err != nil {
				log.Printf("rtcp reports: %v", err)
			}
			for _, hs := range host.RemoteHealth() {
				if hs.State == appshare.HealthHealthy && hs.Tier == appshare.TierFull {
					continue
				}
				log.Printf("participant %s %s tier=%s: backlog %dB dwell %v stall %v flaps=%d reason=%q",
					hs.ID, hs.State, hs.Tier, hs.QueuedBytes, hs.BacklogDwell, hs.SendStall, hs.TierFlaps, hs.EvictReason)
			}
		case <-stop:
			if *showStats {
				fmt.Fprintln(os.Stderr, "\ntraffic by message type:")
				fmt.Fprint(os.Stderr, st.String())
			}
			return
		}
	}
}
