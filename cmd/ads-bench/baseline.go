package main

import (
	"encoding/json"
	"fmt"
	"image/color"
	"io"
	"os"
	"runtime"
	"testing"

	"appshare"
	"appshare/internal/capture"
	"appshare/internal/workload"
)

func rgba(r, g, b byte) color.RGBA { return color.RGBA{R: r, G: g, B: b, A: 255} }

// Baseline mode: run the three pipeline benchmarks the repo tracks over
// time (E19 parallel encode, E20 refresh cache, E21 ladder tiers) via
// testing.Benchmark and emit machine-readable JSON. The committed
// BENCH_baseline.json is the first recorded point; regenerate with
//
//	go run ./cmd/ads-bench -baseline BENCH_baseline.json
//
// and compare shapes (serial vs parallel, cache vs nocache, bytes per
// tier), not absolute nanoseconds — those belong to the machine.

type baselineResult struct {
	Name            string             `json:"name"`
	Iterations      int                `json:"iterations"`
	NsPerOp         float64            `json:"ns_per_op"`
	AllocsPerOp     int64              `json:"allocs_per_op"`
	AllocBytesPerOp int64              `json:"alloc_bytes_per_op"`
	Metrics         map[string]float64 `json:"metrics,omitempty"`
}

type baselineFile struct {
	Schema    int    `json:"schema"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// GOMAXPROCS is what the parallelism benchmarks actually ran with —
	// NumCPU alone is misleading in cgroup-limited containers, where a
	// many-core box may still schedule Go on one proc.
	GOMAXPROCS int              `json:"gomaxprocs"`
	Benchmarks []baselineResult `json:"benchmarks"`
}

// warnSingleProc flags parallelism results that cannot show a
// parallel win because the process had one scheduler proc.
func warnSingleProc(what string) {
	if runtime.GOMAXPROCS(0) == 1 {
		fmt.Fprintf(os.Stderr,
			"warning: GOMAXPROCS=1 — the %s benchmarks are running serially; parallel-vs-serial and sharded-vs-single-lock shapes are not meaningful on this run\n",
			what)
	}
}

func runBaseline(path string) error {
	benches := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"E19ParallelEncode/rects-8/serial", func(b *testing.B) { benchParallelEncode(b, 8, -1) }},
		{"E19ParallelEncode/rects-8/parallel", func(b *testing.B) { benchParallelEncode(b, 8, 0) }},
		{"E20RefreshCache/cache", func(b *testing.B) { benchRefreshCache(b, 0) }},
		{"E20RefreshCache/nocache", func(b *testing.B) { benchRefreshCache(b, -1) }},
		{"E21LadderTiers/full", func(b *testing.B) { benchLadderTier(b, appshare.TierFull) }},
		{"E21LadderTiers/decimated", func(b *testing.B) { benchLadderTier(b, appshare.TierDecimated) }},
		{"E21LadderTiers/scaled", func(b *testing.B) { benchLadderTier(b, appshare.TierScaled) }},
		{"E21LadderTiers/keyframe", func(b *testing.B) { benchLadderTier(b, appshare.TierKeyframeOnly) }},
	}
	out := baselineFile{
		Schema:     1,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	warnSingleProc("E19 parallel-encode")
	for _, bm := range benches {
		fmt.Fprintf(os.Stderr, "baseline: running %s...\n", bm.name)
		r := testing.Benchmark(bm.fn)
		res := baselineResult{
			Name:            bm.name,
			Iterations:      r.N,
			NsPerOp:         float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp:     r.AllocsPerOp(),
			AllocBytesPerOp: r.AllocedBytesPerOp(),
		}
		if len(r.Extra) > 0 {
			res.Metrics = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				res.Metrics[k] = v
			}
		}
		out.Benchmarks = append(out.Benchmarks, res)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// benchParallelEncode mirrors BenchmarkE19ParallelEncode (bench_test.go)
// for one rect count: a capture tick encoding fresh dirty rects with the
// payload cache disabled, serial (-1) versus pool-sized (0) workers.
func benchParallelEncode(b *testing.B, rects, workers int) {
	desk := appshare.NewDesktop(1600, 1200)
	win := desk.CreateWindow(1, appshare.XYWH(0, 0, 1536, 1152))
	pipe, err := capture.New(desk, appshare.CaptureOptions{
		EncodeWorkers: workers,
		CacheBytes:    -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := pipe.Tick(); err != nil {
		b.Fatal(err)
	}
	var payload uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < rects; r++ {
			c := rgba(byte(i), byte(r*37), byte(i>>8))
			win.Fill(appshare.XYWH((r%4)*380, (r/4)*280, 160, 120), c)
		}
		batch, err := pipe.Tick()
		if err != nil {
			b.Fatal(err)
		}
		for _, up := range batch.Updates {
			payload += uint64(len(up.Msg.Content))
		}
	}
	b.ReportMetric(float64(payload)/float64(b.N), "payload-bytes/tick")
}

// benchRefreshCache mirrors BenchmarkE20RefreshCache: a full refresh
// served to 8 stream participants with the payload cache on (0) or
// off (-1).
func benchRefreshCache(b *testing.B, cacheBytes int) {
	const joiners = 8
	desk := appshare.NewDesktop(1280, 1024)
	win := desk.CreateWindow(1, appshare.XYWH(64, 48, 640, 480))
	win.Fill(appshare.XYWH(0, 0, 640, 480), rgba(40, 90, 160))
	win.DrawText(16, 20, "static slide content", rgba(0, 0, 0))
	host, err := appshare.NewHost(appshare.HostConfig{
		Desktop: desk,
		Capture: appshare.CaptureOptions{CacheBytes: cacheBytes},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer host.Close()
	var remotes []*appshare.Remote
	for i := 0; i < joiners; i++ {
		hostEnd, partEnd := pipePair()
		go io.Copy(io.Discard, partEnd)
		r, err := host.AttachStream(fmt.Sprintf("p%d", i), hostEnd, appshare.StreamOptions{})
		if err != nil {
			b.Fatal(err)
		}
		remotes = append(remotes, r)
	}
	if err := host.Tick(); err != nil {
		b.Fatal(err)
	}
	before := host.EncodeMetrics()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range remotes {
			if err := host.RequestRefresh(r); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	m := host.EncodeMetrics()
	encodes := (m.ParallelJobs + m.SerialJobs) - (before.ParallelJobs + before.SerialJobs)
	if cacheBytes >= 0 {
		encodes = m.Cache.Misses - before.Cache.Misses
		if lookups := (m.Cache.Hits + m.Cache.Misses) - (before.Cache.Hits + before.Cache.Misses); lookups > 0 {
			hits := m.Cache.Hits - before.Cache.Hits
			b.ReportMetric(float64(hits)/float64(lookups), "hit-rate")
		}
	}
	b.ReportMetric(float64(encodes)/float64(b.N), "encodes/fanout")
}

// benchLadderTier mirrors BenchmarkE21LadderTiers: one host tick
// delivering a video region to a viewer pinned on the given rung.
func benchLadderTier(b *testing.B, tier appshare.QualityTier) {
	desk := appshare.NewDesktop(1280, 1024)
	win := desk.CreateWindow(1, appshare.XYWH(100, 80, 512, 384))
	// A generous backlog limit keeps Section 7 backpressure out of the
	// measurement: the tier policy alone decides what ships.
	host, err := appshare.NewHost(appshare.HostConfig{Desktop: desk, BacklogLimit: 8 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer host.Close()
	hostEnd, partEnd := pipePair()
	go io.Copy(io.Discard, partEnd)
	r, err := host.AttachStream("v", hostEnd, appshare.StreamOptions{})
	if err != nil {
		b.Fatal(err)
	}
	vid := workload.NewVideoRegion(win, appshare.XYWH(0, 0, 192, 144), 17)
	if err := host.Tick(); err != nil {
		b.Fatal(err)
	}
	r.PinQualityTier(tier)
	before := r.Health().SentOctets
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vid.Step()
		if err := host.Tick(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	sent := r.Health().SentOctets - before
	b.ReportMetric(float64(sent)/float64(b.N), "wire-bytes/tick")
}

// pipePair is an in-memory stream pair for the baseline benchmarks.
func pipePair() (a, b io.ReadWriteCloser) {
	ar, bw := io.Pipe()
	br, aw := io.Pipe()
	a = &pipeDuplex{Reader: ar, Writer: aw, c1: ar, c2: aw}
	b = &pipeDuplex{Reader: br, Writer: bw, c1: br, c2: bw}
	return a, b
}

type pipeDuplex struct {
	io.Reader
	io.Writer
	c1, c2 io.Closer
}

func (d *pipeDuplex) Close() error {
	_ = d.c2.Close()
	return d.c1.Close()
}
