// ads-bench regenerates the evaluation tables recorded in EXPERIMENTS.md:
// one experiment per design claim of draft-boyaci-avt-app-sharing-00.
// Absolute numbers depend on the machine; the shapes (who wins, by what
// factor) are what the experiments assert.
//
// Run all experiments:
//
//	ads-bench
//
// Or a subset:
//
//	ads-bench -run E04,E10
//
// The deterministic network-simulation matrix (internal/netsim) runs in
// its own mode — every scenario with oracle verdicts and replay digests:
//
//	ads-bench -scenarios
//	ads-bench -scenarios -scenario burst-jitter -seed 7
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
)

type experiment struct {
	id    string
	title string
	run   func()
}

func main() {
	runList := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	scenarios := flag.Bool("scenarios", false, "run the deterministic network-simulation matrix instead of experiments")
	scenario := flag.String("scenario", "", "with -scenarios: run only this scenario (default: full matrix)")
	seed := flag.Int64("seed", 0, "with -scenarios: override every scenario's seed (0 = built-in seeds)")
	baseline := flag.String("baseline", "", "run the tracked pipeline benchmarks (E19/E20/E21) and write JSON to this path (- for stdout)")
	fanout := flag.String("fanout", "", "run the sharded fan-out benchmarks (E22) and write JSON to this path (- for stdout)")
	drift := flag.String("drift", "", "re-measure the fan-out benchmarks and fail on >20% tick-latency regression against this committed JSON")
	tiles := flag.String("tiles", "", "run the tile-store wire-byte benchmarks over the revisit workloads and write JSON to this path (- for stdout)")
	tilesDrift := flag.String("tiles-drift", "", "re-measure the tile-store benchmarks and fail when the reduction drops below 10x or bytes drift >10% against this committed JSON")
	flag.Parse()

	if *baseline != "" {
		if err := runBaseline(*baseline); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *fanout != "" {
		if err := runFanout(*fanout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *drift != "" {
		if err := runDrift(*drift); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *tiles != "" {
		if err := runTiles(*tiles); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *tilesDrift != "" {
		if err := runTilesDrift(*tilesDrift); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *scenarios {
		if !runScenarios(*scenario, *seed) {
			os.Exit(1)
		}
		return
	}

	experiments := []experiment{
		{"E03", "fragmentation overhead vs MTU (Table 2)", runE03Fragmentation},
		{"E04", "MoveRectangle vs RegionUpdate on scrolls (Section 5.2.3)", runE04Scroll},
		{"E08", "UDP late join via PLI (Sections 4.3, 5.3.1)", runE08LateJoin},
		{"E09", "NACK loss repair vs loss rate (Section 5.3.2)", runE09NACK},
		{"E10", "codec x content matrix (Section 4.2)", runE10Codecs},
		{"E11", "backlog-aware sending on a slow link (Section 7)", runE11Backlog},
		{"E12", "fan-out cost vs participant count (Section 4.2)", runE12Fanout},
		{"E15", "BFCP floor control churn (Appendix A)", runE15Floor},
		{"E19", "event-driven vs polling capture (Section 4.2)", runE19CaptureModes},
		{"E20", "click-to-photon interaction latency vs tick rate", runE20Latency},
	}

	want := map[string]bool{}
	if *runList != "" {
		for _, id := range strings.Split(*runList, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}
	ran := 0
	for _, e := range experiments {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		fmt.Printf("=== %s: %s ===\n", e.id, e.title)
		e.run()
		fmt.Println()
		ran++
	}
	if ran == 0 {
		log.Fatalf("no experiments matched %q", *runList)
	}
}
