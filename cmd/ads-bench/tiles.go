package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"

	"appshare"
	"appshare/internal/workload"
)

// Tiles mode: measure the wire-byte effect of the persistent tile store
// on the content-revisit workloads (scroll-back, window re-expose,
// slide-revisit), store on vs store off. Unlike the latency benches the
// numbers here are byte counters over deterministic virtual content —
// no wall clock is involved — so the committed BENCH_tilestore.json is
// re-verifiable anywhere the PNG encoder produces the same bytes (same
// Go version). Regenerate with
//
//	go run ./cmd/ads-bench -tiles BENCH_tilestore.json
//
// The drift gate re-measures and fails when the revisit-phase reduction
// falls below the 10x floor, or when the bytes drift >10% against the
// committed file on a matching Go version:
//
//	go run ./cmd/ads-bench -tiles-drift BENCH_tilestore.json

// tileReductionFloor is the acceptance bar: with the store on, the
// revisit phase must ship at least this many times fewer bytes.
const tileReductionFloor = 10.0

// tilesProfile is one revisit workload with its warmup split: warmup
// covers the first lap (every page still novel), measure covers pure
// revisits. Boundaries are multiples of the generators' flip intervals.
type tilesProfile struct {
	Name     string // profile label in the JSON
	Workload string // workload.ByName spelling
	Warmup   int    // ticks before counters reset
	Measure  int    // measured revisit-phase ticks
}

var tilesProfiles = []tilesProfile{
	// pageflip: interval 2, 2 pages — both pages shown by tick 4.
	{Name: "scroll-back", Workload: "pageflip", Warmup: 4, Measure: 40},
	// reexpose: interval 3, 1 page — the very first re-blit is a revisit.
	{Name: "re-expose", Workload: "reexpose", Warmup: 3, Measure: 39},
	// slidecycle: interval 5, 4 pages — the first lap ends at tick 20.
	{Name: "slide-revisit", Workload: "slidecycle", Warmup: 20, Measure: 40},
}

// tilesLeg is one (profile, store on/off) measurement over the revisit
// phase.
type tilesLeg struct {
	// WireBytes counts every datagram byte the viewer's conn accepted
	// (RTP headers included) during the measured ticks.
	WireBytes uint64 `json:"wire_bytes"`
	// UpdateBytes / TileRefBytes split the payload bytes by message
	// kind (stats collector deltas over the measured ticks).
	UpdateBytes  uint64 `json:"update_bytes"`
	TileRefBytes uint64 `json:"tile_ref_bytes"`
	// TileRefs counts TileReference messages substituted.
	TileRefs uint64 `json:"tile_refs"`
	// Encodes counts content-cache misses — actual PNG/JPEG encodes —
	// during the measured ticks (revisits should hit the encode cache
	// in BOTH legs; the store saves wire bytes on top of that).
	Encodes uint64 `json:"encodes"`
}

type tilesPoint struct {
	Profile      string   `json:"profile"`
	Workload     string   `json:"workload"`
	WarmupTicks  int      `json:"warmup_ticks"`
	MeasureTicks int      `json:"measure_ticks"`
	StoreOff     tilesLeg `json:"store_off"`
	StoreOn      tilesLeg `json:"store_on"`
	// Reduction is StoreOff.WireBytes / StoreOn.WireBytes.
	Reduction float64 `json:"reduction"`
}

type tilesFile struct {
	Schema     int          `json:"schema"`
	GoVersion  string       `json:"go_version"`
	GOOS       string       `json:"goos"`
	GOARCH     string       `json:"goarch"`
	NumCPU     int          `json:"num_cpu"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Points     []tilesPoint `json:"points"`
}

// countingConn is a discardConn that tallies datagram bytes. The
// sharded send path delivers from sender goroutines, so the counter is
// atomic.
type countingConn struct {
	*discardConn
	bytes atomic.Uint64
}

func newCountingConn() *countingConn { return &countingConn{discardConn: newDiscardConn()} }

func (c *countingConn) Send(pkt []byte) error {
	c.bytes.Add(uint64(len(pkt)))
	return nil
}

func (c *countingConn) SendBatch(pkts [][]byte) (int, error) {
	for _, pkt := range pkts {
		c.bytes.Add(uint64(len(pkt)))
	}
	return len(pkts), nil
}

// measureTilesLeg runs one profile against a single UDP viewer and
// returns the revisit-phase counters. The desktop mirrors the netsim
// default: a 320x240 desktop with the shared window at 256x192 — an
// exact 8x6 grid of default-size tiles.
func measureTilesLeg(p tilesProfile, store bool) (tilesLeg, error) {
	var leg tilesLeg
	desk := appshare.NewDesktop(320, 240)
	win := desk.CreateWindow(1, appshare.XYWH(12, 10, 256, 192))
	coll := appshare.NewStats()
	cfg := appshare.HostConfig{Desktop: desk, Stats: coll}
	if store {
		cfg.TileStore = &appshare.TileStoreConfig{}
	}
	host, err := appshare.NewHost(cfg)
	if err != nil {
		return leg, err
	}
	defer host.Close()
	conn := newCountingConn()
	if _, err := host.AttachPacketConn("v", conn, appshare.PacketOptions{TileStore: store}); err != nil {
		return leg, err
	}
	wl, err := workload.ByName(p.Workload, desk, win, 7)
	if err != nil {
		return leg, err
	}
	tick := func(n int) error {
		for i := 0; i < n; i++ {
			wl.Step()
			if err := host.Tick(); err != nil {
				return err
			}
		}
		return nil
	}
	if err := tick(p.Warmup); err != nil {
		return leg, err
	}
	wire0 := conn.bytes.Load()
	upd0 := coll.Get("RegionUpdate")
	ref0 := coll.Get("TileReference")
	enc0 := coll.Get("EncodeCacheMiss")
	if err := tick(p.Measure); err != nil {
		return leg, err
	}
	leg.WireBytes = conn.bytes.Load() - wire0
	leg.UpdateBytes = coll.Get("RegionUpdate").Bytes - upd0.Bytes
	ref := coll.Get("TileReference")
	leg.TileRefBytes = ref.Bytes - ref0.Bytes
	leg.TileRefs = ref.Messages - ref0.Messages
	leg.Encodes = coll.Get("EncodeCacheMiss").Messages - enc0.Messages
	return leg, nil
}

// measureTiles runs every profile, both legs.
func measureTiles() ([]tilesPoint, error) {
	var points []tilesPoint
	for _, p := range tilesProfiles {
		off, err := measureTilesLeg(p, false)
		if err != nil {
			return nil, fmt.Errorf("tiles: %s store-off: %w", p.Name, err)
		}
		on, err := measureTilesLeg(p, true)
		if err != nil {
			return nil, fmt.Errorf("tiles: %s store-on: %w", p.Name, err)
		}
		pt := tilesPoint{
			Profile: p.Name, Workload: p.Workload,
			WarmupTicks: p.Warmup, MeasureTicks: p.Measure,
			StoreOff: off, StoreOn: on,
		}
		if on.WireBytes > 0 {
			pt.Reduction = float64(off.WireBytes) / float64(on.WireBytes)
		}
		points = append(points, pt)
	}
	return points, nil
}

func printTilesPoint(prefix string, p tilesPoint) {
	fmt.Printf("%s%-14s off=%8dB on=%7dB (x%.1f) refs=%d ref-bytes=%dB encodes off/on=%d/%d\n",
		prefix, p.Profile, p.StoreOff.WireBytes, p.StoreOn.WireBytes, p.Reduction,
		p.StoreOn.TileRefs, p.StoreOn.TileRefBytes, p.StoreOff.Encodes, p.StoreOn.Encodes)
}

func runTiles(path string) error {
	points, err := measureTiles()
	if err != nil {
		return err
	}
	for _, p := range points {
		printTilesPoint("tiles: ", p)
		if p.Reduction < tileReductionFloor {
			return fmt.Errorf("tiles: %s reduction x%.1f is below the x%.0f acceptance floor",
				p.Profile, p.Reduction, tileReductionFloor)
		}
	}
	out := tilesFile{
		Schema:     1,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Points:     points,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// runTilesDrift re-measures the revisit profiles and fails when the
// reduction drops below the floor, or when byte counts drift >10%
// against the committed file. Byte counts depend only on the content
// pipeline (PNG output varies across Go releases), so the absolute
// comparison applies when the committed Go version matches.
func runTilesDrift(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var committed tilesFile
	if err := json.Unmarshal(raw, &committed); err != nil {
		return fmt.Errorf("tiles-drift: parsing %s: %w", path, err)
	}
	byProfile := make(map[string]tilesPoint, len(committed.Points))
	for _, p := range committed.Points {
		byProfile[p.Profile] = p
	}
	verMatches := committed.GoVersion == runtime.Version()
	if !verMatches {
		fmt.Fprintf(os.Stderr,
			"warning: committed tile baseline is %s, this run is %s — skipping absolute byte diffs\n",
			committed.GoVersion, runtime.Version())
	}
	const tolerance = 1.10
	var failures []string
	points, err := measureTiles()
	if err != nil {
		return err
	}
	for _, p := range points {
		printTilesPoint("tiles-drift: ", p)
		if p.Reduction < tileReductionFloor {
			failures = append(failures, fmt.Sprintf(
				"%s: wire-byte reduction x%.1f fell below the x%.0f floor",
				p.Profile, p.Reduction, tileReductionFloor))
		}
		base, ok := byProfile[p.Profile]
		if !ok {
			fmt.Fprintf(os.Stderr, "warning: committed file has no %q point; skipping\n", p.Profile)
			continue
		}
		if verMatches {
			if f := float64(p.StoreOn.WireBytes); f > float64(base.StoreOn.WireBytes)*tolerance {
				failures = append(failures, fmt.Sprintf(
					"%s: store-on bytes %d regressed >10%% against committed %d",
					p.Profile, p.StoreOn.WireBytes, base.StoreOn.WireBytes))
			}
			if f := float64(p.StoreOff.WireBytes); f > float64(base.StoreOff.WireBytes)*tolerance {
				failures = append(failures, fmt.Sprintf(
					"%s: store-off bytes %d grew >10%% against committed %d (baseline shifted?)",
					p.Profile, p.StoreOff.WireBytes, base.StoreOff.WireBytes))
			}
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "tiles-drift FAIL: "+f)
		}
		return fmt.Errorf("tiles-drift: %d regression(s)", len(failures))
	}
	fmt.Println("tiles-drift: ok")
	return nil
}
