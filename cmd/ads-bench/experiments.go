package main

import (
	"fmt"
	"image"
	"image/color"
	"log"
	"time"

	"appshare"
	"appshare/internal/apps"
	"appshare/internal/bfcp"
	"appshare/internal/capture"
	"appshare/internal/codec"
	"appshare/internal/remoting"
	"appshare/internal/stats"
	"appshare/internal/workload"
)

// session bundles one host + one simulated-link participant for the
// experiments.
type session struct {
	desk *appshare.Desktop
	win  *appshare.Window
	host *appshare.Host
	st   *appshare.Stats
	p    *appshare.Participant
	conn *appshare.Connection
}

func newSession(hostCfg appshare.HostConfig, link appshare.LinkConfig, winW, winH int) *session {
	s := &session{}
	s.desk = appshare.NewDesktop(1280, 1024)
	s.win = s.desk.CreateWindow(1, appshare.XYWH(100, 80, winW, winH))
	s.st = appshare.NewStats()
	hostCfg.Desktop = s.desk
	hostCfg.Stats = s.st
	host, err := appshare.NewHost(hostCfg)
	if err != nil {
		log.Fatal(err)
	}
	s.host = host
	hostSide, partSide := appshare.SimulatedLink(link, appshare.LinkConfig{Seed: 999})
	if _, err := host.AttachPacketConn("bench", hostSide, appshare.PacketOptions{}); err != nil {
		log.Fatal(err)
	}
	s.p = appshare.NewParticipant(appshare.ParticipantConfig{})
	s.conn = appshare.ConnectPacket(s.p, partSide)
	return s
}

func (s *session) close() {
	s.conn.Close()
	s.host.Close()
}

func (s *session) join() {
	if err := s.conn.SendPLI(); err != nil {
		log.Fatal(err)
	}
	// The PLI-triggered refresh is served on the next Tick.
	waitUntil(func() bool {
		if err := s.host.Tick(); err != nil {
			log.Fatal(err)
		}
		return len(s.p.Windows()) > 0
	})
}

func waitUntil(cond func() bool) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	log.Fatal("bench: timeout")
}

// runE03Fragmentation measures RTP packet counts and header overhead of
// fragmenting one RegionUpdate across MTUs (Table 2 machinery).
func runE03Fragmentation() {
	img := workload.Photo(640, 480, 42)
	content, err := (codec.PNG{}).Encode(img)
	if err != nil {
		log.Fatal(err)
	}
	update := &remoting.RegionUpdate{WindowID: 1, ContentPT: codec.PayloadTypePNG, Content: content}
	fmt.Printf("PNG content: %d bytes (640x480 photo)\n", len(content))
	fmt.Printf("%8s %10s %14s %12s\n", "MTU", "packets", "wire bytes", "overhead")
	for _, mtu := range []int{256, 512, 1200, 1400, 8192, 65000} {
		frags, err := update.Fragments(mtu)
		if err != nil {
			log.Fatal(err)
		}
		wire := 0
		for _, f := range frags {
			wire += len(f.Payload) + 12 // + RTP header
		}
		over := float64(wire-len(content)) / float64(len(content)) * 100
		fmt.Printf("%8d %10d %14d %11.2f%%\n", mtu, len(frags), wire, over)
	}
}

// runE04Scroll compares MoveRectangle against pixel re-encoding on a
// scrolling document.
func runE04Scroll() {
	const steps = 60
	run := func(useMove bool) (msgs, bytes uint64) {
		s := newSession(appshare.HostConfig{
			Capture: appshare.CaptureOptions{DisableMoveDetection: !useMove},
		}, appshare.LinkConfig{Seed: 4}, 640, 480)
		defer s.close()
		s.join()
		s.st.Reset()
		sc := workload.NewScrolling(s.win, 3, 7)
		for i := 0; i < steps; i++ {
			sc.Step()
			if err := s.host.Tick(); err != nil {
				log.Fatal(err)
			}
		}
		t := s.st.Total()
		return t.Messages, t.Bytes
	}
	mMsgs, mBytes := run(true)
	nMsgs, nBytes := run(false)
	fmt.Printf("%-26s %10s %12s\n", "strategy", "messages", "bytes")
	fmt.Printf("%-26s %10d %12d\n", "MoveRectangle+updates", mMsgs, mBytes)
	fmt.Printf("%-26s %10d %12d\n", "RegionUpdate only", nMsgs, nBytes)
	fmt.Printf("savings: %.1fx\n", float64(nBytes)/float64(mBytes))
}

// runE08LateJoin measures the bytes and time for a PLI-triggered full
// refresh at several shared-region sizes.
func runE08LateJoin() {
	fmt.Printf("%12s %14s %12s\n", "window", "refresh bytes", "time")
	for _, size := range []struct{ w, h int }{{320, 240}, {640, 480}, {1024, 768}} {
		desk := appshare.NewDesktop(1280, 1024)
		win := desk.CreateWindow(1, appshare.XYWH(100, 80, size.w, size.h))
		st := appshare.NewStats()
		host, err := appshare.NewHost(appshare.HostConfig{Desktop: desk, Stats: st})
		if err != nil {
			log.Fatal(err)
		}
		// Session activity before the participant exists: text content.
		ty := workload.NewTyping(win, 2000, 3)
		for i := 0; i < 20; i++ {
			ty.Step()
		}
		if err := host.Tick(); err != nil { // drain damage pre-join
			log.Fatal(err)
		}
		st.Reset()

		// Now the late joiner appears and PLIs (Section 4.3).
		hostSide, partSide := appshare.SimulatedLink(appshare.LinkConfig{Seed: 8}, appshare.LinkConfig{Seed: 9})
		if _, err := host.AttachPacketConn("late", hostSide, appshare.PacketOptions{}); err != nil {
			log.Fatal(err)
		}
		p := appshare.NewParticipant(appshare.ParticipantConfig{})
		conn := appshare.ConnectPacket(p, partSide)
		start := time.Now()
		if err := conn.SendPLI(); err != nil {
			log.Fatal(err)
		}
		waitUntil(func() bool {
			if err := host.Tick(); err != nil {
				log.Fatal(err)
			}
			return len(p.Windows()) > 0
		})
		elapsed := time.Since(start)
		time.Sleep(50 * time.Millisecond) // let trailing refresh packets record
		fmt.Printf("%5dx%-6d %14d %12v\n", size.w, size.h, st.Total().Bytes, elapsed.Round(time.Millisecond))
		conn.Close()
		host.Close()
	}
}

// runE09NACK sweeps loss rates and reports stream completeness with and
// without retransmissions.
func runE09NACK() {
	const ticks = 40
	run := func(loss float64, retrans bool) (missingAfter int, retransBytes uint64) {
		s := newSession(appshare.HostConfig{Retransmissions: retrans},
			appshare.LinkConfig{LossRate: loss, Seed: 17}, 480, 360)
		defer s.close()
		s.join()
		ty := workload.NewTyping(s.win, 64, 5)
		for i := 0; i < ticks; i++ {
			ty.Step()
			if err := s.host.Tick(); err != nil {
				log.Fatal(err)
			}
			if retrans {
				if err := s.conn.SendNACKIfNeeded(); err != nil {
					log.Fatal(err)
				}
			}
		}
		// Repair rounds.
		if retrans {
			for round := 0; round < 30; round++ {
				time.Sleep(5 * time.Millisecond)
				if len(s.p.MissingSequences()) == 0 {
					break
				}
				if err := s.conn.SendNACKIfNeeded(); err != nil {
					log.Fatal(err)
				}
			}
		}
		time.Sleep(20 * time.Millisecond)
		return len(s.p.MissingSequences()), s.st.Get("Retransmission").Bytes
	}
	fmt.Printf("%8s %22s %22s %14s\n", "loss", "missing (no retrans)", "missing (w/ retrans)", "repair bytes")
	for _, loss := range []float64{0.01, 0.05, 0.10, 0.20} {
		noR, _ := run(loss, false)
		withR, rb := run(loss, true)
		fmt.Printf("%7.0f%% %22d %22d %14d\n", loss*100, noR, withR, rb)
	}
}

// runE10Codecs prints the codec x content matrix of Section 4.2.
func runE10Codecs() {
	synth := image.NewRGBA(image.Rect(0, 0, 640, 480))
	{
		// Text-like content via the typing workload on a scratch window.
		desk := appshare.NewDesktop(800, 600)
		win := desk.CreateWindow(1, appshare.XYWH(0, 0, 640, 480))
		ty := workload.NewTyping(win, 4000, 9)
		for i := 0; i < 12; i++ {
			ty.Step()
		}
		synth = win.Snapshot()
	}
	photo := workload.Photo(640, 480, 11)

	codecs := []appshare.Codec{codec.PNG{}, codec.JPEG{Quality: 75}, codec.Raw{}}
	raw := 640 * 480 * 4
	fmt.Printf("%-8s %-14s %12s %10s %10s %10s\n", "codec", "content", "bytes", "ratio", "lossless", "enc time")
	for _, c := range codecs {
		for _, in := range []struct {
			name string
			img  *image.RGBA
		}{{"synthetic", synth}, {"photographic", photo}} {
			start := time.Now()
			data, err := c.Encode(in.img)
			if err != nil {
				log.Fatal(err)
			}
			enc := time.Since(start)
			fmt.Printf("%-8s %-14s %12d %9.1fx %10v %10v\n",
				c.Name(), in.name, len(data), float64(raw)/float64(len(data)), c.Lossless(), enc.Round(time.Microsecond))
		}
	}
}

// runE11Backlog compares screen freshness on a slow TCP link with the
// Section 7 coalescing on and off.
func runE11Backlog() {
	const (
		ticks = 40
		rate  = 64 << 10 // 64 KB/s link
	)
	run := func(coalesce bool) (deferred uint64, queuedAfter int, sent uint64) {
		desk := appshare.NewDesktop(1280, 1024)
		win := desk.CreateWindow(1, appshare.XYWH(100, 80, 512, 384))
		st := appshare.NewStats()
		host, err := appshare.NewHost(appshare.HostConfig{Desktop: desk, Stats: st})
		if err != nil {
			log.Fatal(err)
		}
		defer host.Close()
		hostEnd, partEnd := streamPair()
		p := appshare.NewParticipant(appshare.ParticipantConfig{})
		go pumpStream(p, partEnd)
		remote, err := host.AttachStream("slow", hostEnd, appshare.StreamOptions{
			BytesPerSecond:    rate,
			DisableCoalescing: !coalesce,
		})
		if err != nil {
			log.Fatal(err)
		}
		vid := workload.NewVideoRegion(win, appshare.XYWH(0, 0, 512, 384), 13)
		for i := 0; i < ticks; i++ {
			vid.Step()
			if err := host.Tick(); err != nil {
				log.Fatal(err)
			}
			time.Sleep(10 * time.Millisecond)
		}
		return remote.Deferrals(), remote.QueuedBytes(), st.Total().Bytes
	}
	cDef, cQueue, cSent := run(true)
	nDef, nQueue, nSent := run(false)
	fmt.Printf("video region on a %d KB/s link, %d frames:\n", rate>>10, ticks)
	fmt.Printf("%-22s %10s %16s %14s\n", "mode", "deferred", "queued at end", "bytes offered")
	fmt.Printf("%-22s %10d %16d %14d\n", "coalescing (Sec. 7)", cDef, cQueue, cSent)
	fmt.Printf("%-22s %10d %16d %14d\n", "naive (send all)", nDef, nQueue, nSent)
	fmt.Printf("queued-backlog reduction: %.1fx\n", float64(nQueue+1)/float64(cQueue+1))
}

// runE12Fanout measures tick cost and published bytes versus multicast
// subscriber count: one encode serves any audience size.
func runE12Fanout() {
	fmt.Printf("%14s %14s %16s\n", "subscribers", "tick time", "bytes per tick")
	for _, n := range []int{1, 4, 16, 64} {
		desk := appshare.NewDesktop(1280, 1024)
		win := desk.CreateWindow(1, appshare.XYWH(100, 80, 512, 384))
		st := appshare.NewStats()
		host, err := appshare.NewHost(appshare.HostConfig{Desktop: desk, Stats: st})
		if err != nil {
			log.Fatal(err)
		}
		bus := appshare.NewBus()
		for i := 0; i < n; i++ {
			sub := bus.Subscribe(appshare.LinkConfig{Seed: int64(i + 1)})
			go func() {
				for {
					if _, err := sub.Recv(); err != nil {
						return
					}
				}
			}()
		}
		if _, err := host.AttachMulticast("group", bus); err != nil {
			log.Fatal(err)
		}
		ty := workload.NewTyping(win, 64, 21)
		if err := host.Tick(); err != nil {
			log.Fatal(err)
		}
		st.Reset()
		const ticks = 30
		start := time.Now()
		for i := 0; i < ticks; i++ {
			ty.Step()
			if err := host.Tick(); err != nil {
				log.Fatal(err)
			}
		}
		per := time.Since(start) / ticks
		fmt.Printf("%14d %14v %16d\n", n, per.Round(time.Microsecond), st.Total().Bytes/ticks)
		host.Close()
	}
}

// runE15Floor measures floor grant churn through the FIFO queue.
func runE15Floor() {
	const users = 200
	granted := 0
	floor := appshare.NewFloor(1, func(uid uint16, m *bfcp.Message) {
		if m.Primitive == bfcp.FloorGranted {
			granted++
		}
	})
	start := time.Now()
	for u := uint16(1); u <= users; u++ {
		if err := floor.Request(u); err != nil {
			log.Fatal(err)
		}
	}
	for {
		h, ok := floor.Holder()
		if !ok {
			break
		}
		if err := floor.Release(h); err != nil {
			log.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("%d users requested, %d grants issued in FIFO order, %v total (%v per transition)\n",
		users, granted, elapsed.Round(time.Microsecond), (elapsed / users).Round(time.Nanosecond))
}

// runE19CaptureModes compares the journaled capture path against polling
// with tile hashing and scroll detection (Section 4.2's "Detecting a
// change in the GUI" under an opaque framebuffer).
func runE19CaptureModes() {
	const ticks = 40
	measure := func(poll bool) (time.Duration, int) {
		desk := appshare.NewDesktop(1280, 1024)
		win := desk.CreateWindow(1, appshare.XYWH(100, 80, 640, 480))
		pipe, err := capture.New(desk, capture.Options{})
		if err != nil {
			log.Fatal(err)
		}
		var poller *capture.Poller
		if poll {
			poller = capture.NewPoller(pipe, 32, 40)
		}
		tick := func() (*capture.Batch, error) {
			if poll {
				return poller.Tick()
			}
			return pipe.Tick()
		}
		ty := workload.NewTyping(win, 48, 5)
		sc := workload.NewScrolling(win, 1, 6)
		if _, err := tick(); err != nil {
			log.Fatal(err)
		}
		bytesOut := 0
		start := time.Now()
		for i := 0; i < ticks; i++ {
			if i%4 == 3 {
				sc.Step()
			} else {
				ty.Step()
			}
			b, err := tick()
			if err != nil {
				log.Fatal(err)
			}
			for _, up := range b.Updates {
				bytesOut += len(up.Msg.Content)
			}
			bytesOut += 28 * len(b.Moves)
		}
		return time.Since(start) / ticks, bytesOut / ticks
	}
	jTime, jBytes := measure(false)
	pTime, pBytes := measure(true)
	fmt.Printf("%-28s %14s %16s\n", "capture mode", "tick time", "payload B/tick")
	fmt.Printf("%-28s %14v %16d\n", "journal (window events)", jTime.Round(time.Microsecond), jBytes)
	fmt.Printf("%-28s %14v %16d\n", "polling (hash+scrolldetect)", pTime.Round(time.Microsecond), pBytes)
	fmt.Printf("polling CPU overhead: %.1fx\n", float64(pTime)/float64(jTime))
}

// runE20Latency measures end-to-end interaction latency — the remote
// desktop headline metric: a HIP click leaves the participant, the AH
// validates and regenerates it, the application repaints, the next tick
// encodes the damage, and the update arrives back. The capture tick rate
// dominates, exactly as in production sharing systems.
func runE20Latency() {
	fmt.Printf("%10s %12s %12s %12s\n", "tick rate", "p50", "p95", "max")
	for _, fps := range []int{5, 10, 30, 60} {
		desk := appshare.NewDesktop(800, 600)
		win := desk.CreateWindow(1, appshare.XYWH(50, 50, 400, 300))
		button := apps.NewButton(win, appshare.XYWH(20, 20, 120, 40), "Ping")
		host, err := appshare.NewHost(appshare.HostConfig{Desktop: desk})
		if err != nil {
			log.Fatal(err)
		}
		hostSide, partSide := appshare.SimulatedLink(appshare.LinkConfig{Seed: 1}, appshare.LinkConfig{Seed: 2})
		if _, err := host.AttachPacketConn("p", hostSide, appshare.PacketOptions{}); err != nil {
			log.Fatal(err)
		}
		p := appshare.NewParticipant(appshare.ParticipantConfig{})
		conn := appshare.ConnectPacket(p, partSide)
		// The tick loop starts first: PLI refreshes and queued input are
		// served at ticks.
		stop := make(chan struct{})
		go func() {
			ticker := time.NewTicker(time.Second / time.Duration(fps))
			defer ticker.Stop()
			for {
				select {
				case <-stop:
					return
				case <-ticker.C:
					if err := host.Tick(); err != nil {
						return
					}
				}
			}
		}()
		if err := conn.SendPLI(); err != nil {
			log.Fatal(err)
		}
		waitUntil(func() bool { return len(p.Windows()) == 1 })

		hist := stats.NewHistogram()
		onColor := color.RGBA{0x30, 0xC8, 0x30, 0xFF}
		offColor := color.RGBA{0xC8, 0x30, 0x30, 0xFF}
		period := time.Second / time.Duration(fps)
		for i := 0; i < 30; i++ {
			// Stagger probes across the tick phase; otherwise every
			// click lands right after a tick and p50 reads a full
			// period instead of the expected half.
			time.Sleep(time.Duration(i%7) * period / 7)
			wantOn := !button.On()
			want := onColor
			if !wantOn {
				want = offColor
			}
			start := time.Now()
			if err := conn.Click(win.ID(), 80, 80, appshare.ButtonLeft); err != nil {
				log.Fatal(err)
			}
			for {
				img := p.WindowImage(win.ID())
				if img != nil && img.RGBAAt(25, 25) == want {
					break
				}
				if time.Since(start) > 5*time.Second {
					log.Fatal("latency probe timed out")
				}
				time.Sleep(200 * time.Microsecond)
			}
			hist.Add(time.Since(start))
		}
		close(stop)
		fmt.Printf("%7d/s %12v %12v %12v\n", fps,
			hist.Quantile(0.5).Round(time.Millisecond),
			hist.Quantile(0.95).Round(time.Millisecond),
			hist.Max().Round(time.Millisecond))
		conn.Close()
		host.Close()
	}
}
