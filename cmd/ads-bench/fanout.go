package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"testing"

	"appshare"
	"appshare/internal/workload"
)

// Fanout mode: measure the viewers-vs-tick-latency curve of the sharded
// send path (mirrors BenchmarkE22ShardedFanout) and emit machine-readable
// JSON. The committed BENCH_sharded_fanout.json is the tracked point;
// regenerate with
//
//	go run ./cmd/ads-bench -fanout BENCH_sharded_fanout.json
//
// Drift mode re-measures a subset and fails on regressions:
//
//	go run ./cmd/ads-bench -drift BENCH_sharded_fanout.json
//
// Two checks run per population. First, fresh-vs-fresh: the sharded
// build must never be more than 20% slower than the single-lock build
// measured in the same process — that comparison is machine-independent
// and catches the sharding machinery itself regressing. Second,
// fresh-vs-committed: when the committed file was recorded on a matching
// environment (same GOARCH and GOMAXPROCS), absolute sharded tick
// latency must be within 20% of the committed number. On a mismatched
// environment the absolute diff is skipped with a warning — nanoseconds
// belong to the machine that produced them.

// fanoutPopulations is the full recorded curve.
var fanoutPopulations = []int{128, 1000, 4000, 10000}

// driftPopulations is the subset the CI drift gate re-measures (the
// full curve at 10k viewers is too slow to rerun on every commit).
var driftPopulations = []int{1000, 4000}

type fanoutPoint struct {
	Viewers int `json:"viewers"`
	// Tick latencies in nanoseconds per Host.Tick at this population.
	SingleLockNs float64 `json:"single_lock_ns_per_tick"`
	ShardedNs    float64 `json:"sharded_ns_per_tick"`
	// ShardedX4Ns forces four shards regardless of GOMAXPROCS, making
	// the sender-goroutine + barrier overhead visible even on one proc.
	ShardedX4Ns float64 `json:"sharded_x4_ns_per_tick"`
	// Speedup is SingleLockNs / ShardedNs (>1 means sharding wins).
	Speedup     float64 `json:"speedup"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type fanoutFile struct {
	Schema     int           `json:"schema"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	NumCPU     int           `json:"num_cpu"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Points     []fanoutPoint `json:"points"`
}

// benchFanout is one (population, shard-count) tick-latency measurement:
// a host with `viewers` attached discard-conn UDP remotes delivering a
// small typing region every tick.
func benchFanout(b *testing.B, viewers, shards int) {
	desk := appshare.NewDesktop(640, 480)
	win := desk.CreateWindow(1, appshare.XYWH(0, 0, 512, 384))
	host, err := appshare.NewHost(appshare.HostConfig{
		Desktop:    desk,
		SendShards: shards,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer host.Close()
	for i := 0; i < viewers; i++ {
		if _, err := host.AttachPacketConn(fmt.Sprintf("v%d", i), newDiscardConn(), appshare.PacketOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	ty := workload.NewTyping(win, 64, 7)
	if err := host.Tick(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ty.Step()
		if err := host.Tick(); err != nil {
			b.Fatal(err)
		}
	}
}

// discardConn mirrors the bench_test.go viewer: accept everything,
// block Recv until Close so the pump goroutine stays parked and the
// remote survives the measurement. SendBatch takes the sharded path's
// batched-write fast path, as a real sendmmsg-backed socket would.
type discardConn struct {
	done chan struct{}
	once sync.Once
}

func newDiscardConn() *discardConn { return &discardConn{done: make(chan struct{})} }

func (c *discardConn) Send(pkt []byte) error { return nil }

func (c *discardConn) SendBatch(pkts [][]byte) (int, error) { return len(pkts), nil }

func (c *discardConn) Recv() ([]byte, error) {
	<-c.done
	return nil, io.EOF
}

func (c *discardConn) Close() error {
	c.once.Do(func() { close(c.done) })
	return nil
}

func nsPerOp(r testing.BenchmarkResult) float64 {
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

// measureMode runs one (population, shard-count) leg reps times and
// keeps the fastest run — the standard de-noising for wall-clock
// benchmarks on shared machines, where GC pauses and scheduler
// preemption only ever push a run slower, never faster.
func measureMode(viewers, shards, reps int) (ns float64, allocs int64) {
	for i := 0; i < reps; i++ {
		r := testing.Benchmark(func(b *testing.B) { benchFanout(b, viewers, shards) })
		if got := nsPerOp(r); i == 0 || got < ns {
			ns = got
			allocs = r.AllocsPerOp()
		}
	}
	return ns, allocs
}

// measureFanout runs the three shard modes for each population.
func measureFanout(populations []int, reps int) []fanoutPoint {
	var points []fanoutPoint
	for _, viewers := range populations {
		fmt.Fprintf(os.Stderr, "fanout: measuring %d viewers...\n", viewers)
		p := fanoutPoint{Viewers: viewers}
		p.SingleLockNs, _ = measureMode(viewers, 1, reps)
		p.ShardedNs, p.AllocsPerOp = measureMode(viewers, 0, reps)
		p.ShardedX4Ns, _ = measureMode(viewers, 4, reps)
		if p.ShardedNs > 0 {
			p.Speedup = p.SingleLockNs / p.ShardedNs
		}
		points = append(points, p)
	}
	return points
}

func runFanout(path string) error {
	warnSingleProc("sharded fan-out")
	out := fanoutFile{
		Schema:     1,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Points:     measureFanout(fanoutPopulations, 2),
	}
	for _, p := range out.Points {
		fmt.Printf("viewers=%-6d single-lock=%.2fms sharded=%.2fms (x%.2f) sharded-x4=%.2fms\n",
			p.Viewers, p.SingleLockNs/1e6, p.ShardedNs/1e6, p.Speedup, p.ShardedX4Ns/1e6)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// runDrift compares a fresh measurement against the committed fanout
// file and returns an error on a >20% tick-latency regression.
func runDrift(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var committed fanoutFile
	if err := json.Unmarshal(raw, &committed); err != nil {
		return fmt.Errorf("drift: parsing %s: %w", path, err)
	}
	byViewers := make(map[int]fanoutPoint, len(committed.Points))
	for _, p := range committed.Points {
		byViewers[p.Viewers] = p
	}
	warnSingleProc("sharded fan-out drift")
	envMatches := committed.GOARCH == runtime.GOARCH && committed.GOMAXPROCS == runtime.GOMAXPROCS(0)
	if !envMatches {
		fmt.Fprintf(os.Stderr,
			"warning: committed baseline is %s/gomaxprocs=%d, this run is %s/gomaxprocs=%d — skipping absolute latency diffs\n",
			committed.GOARCH, committed.GOMAXPROCS, runtime.GOARCH, runtime.GOMAXPROCS(0))
	}

	const tolerance = 1.20
	var failures []string
	for _, p := range measureFanout(driftPopulations, 3) {
		fmt.Printf("drift: viewers=%-6d single-lock=%.2fms sharded=%.2fms (x%.2f)\n",
			p.Viewers, p.SingleLockNs/1e6, p.ShardedNs/1e6, p.Speedup)
		// Machine-independent: sharding must not cost >20% over the
		// single-lock path measured in this same process.
		if p.ShardedNs > p.SingleLockNs*tolerance {
			failures = append(failures, fmt.Sprintf(
				"viewers=%d: sharded tick %.2fms is >20%% slower than single-lock %.2fms",
				p.Viewers, p.ShardedNs/1e6, p.SingleLockNs/1e6))
		}
		base, ok := byViewers[p.Viewers]
		if !ok {
			fmt.Fprintf(os.Stderr, "warning: committed file has no %d-viewer point; skipping\n", p.Viewers)
			continue
		}
		if envMatches && p.ShardedNs > base.ShardedNs*tolerance {
			failures = append(failures, fmt.Sprintf(
				"viewers=%d: sharded tick %.2fms regressed >20%% against committed %.2fms",
				p.Viewers, p.ShardedNs/1e6, base.ShardedNs/1e6))
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "drift FAIL: "+f)
		}
		return fmt.Errorf("drift: %d tick-latency regression(s)", len(failures))
	}
	fmt.Println("drift: ok")
	return nil
}
