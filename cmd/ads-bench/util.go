package main

import (
	"io"

	"appshare"
	"appshare/internal/framing"
)

// duplex glues two io.Pipes into a ReadWriteCloser pair for in-process
// stream experiments.
type duplex struct {
	io.Reader
	io.Writer
	closeR func() error
	closeW func() error
}

func (d *duplex) Close() error {
	_ = d.closeW()
	return d.closeR()
}

// streamPair returns two connected in-memory stream endpoints.
func streamPair() (a, b io.ReadWriteCloser) {
	ar, bw := io.Pipe()
	br, aw := io.Pipe()
	a = &duplex{Reader: ar, Writer: aw, closeR: ar.Close, closeW: aw.Close}
	b = &duplex{Reader: br, Writer: bw, closeR: br.Close, closeW: bw.Close}
	return a, b
}

// pumpStream feeds framed remoting packets into a participant until EOF.
func pumpStream(p *appshare.Participant, src io.Reader) {
	fr := framing.NewReader(src)
	for {
		pkt, err := fr.ReadFrame()
		if err != nil {
			return
		}
		_ = p.HandlePacket(pkt)
	}
}
