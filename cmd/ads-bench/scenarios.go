package main

import (
	"fmt"
	"os"

	"appshare/internal/netsim"
)

// runScenarios executes the deterministic network-simulation matrix
// (internal/netsim) and prints one line per scenario with the journal
// digest and every oracle verdict. The seed overrides each scenario's
// built-in seed when non-zero, so a failure seen here is reproducible
// with the same flags on any machine. Returns false if any oracle
// failed.
func runScenarios(only string, seed int64) bool {
	var list []netsim.Scenario
	if only != "" {
		sc, err := netsim.ByName(only)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return false
		}
		list = []netsim.Scenario{sc}
	} else {
		list = append(netsim.Matrix(), netsim.MigrationFamily()...)
	}

	allPassed := true
	for _, sc := range list {
		if seed != 0 {
			sc.Seed = seed
		}
		res, err := netsim.Run(sc)
		if err != nil {
			fmt.Printf("%-18s ERROR %v\n", sc.Name, err)
			allPassed = false
			continue
		}
		status := "PASS"
		if !res.Passed() {
			status = "FAIL"
			allPassed = false
		}
		fmt.Printf("%-18s %s seed=%-6d ticks=%-3d digest=%s\n",
			sc.Name, status, res.Seed, res.TicksRun, res.Digest)
		for _, o := range res.Oracles {
			mark := "ok"
			if !o.Passed {
				mark = "FAIL: " + o.Detail
			}
			fmt.Printf("    %-15s %s\n", o.Name, mark)
		}
	}
	return allPassed
}
