// Ablation benchmarks for the tunable design choices DESIGN.md calls
// out: damage coalescing budget, fragmentation MTU, and content-adaptive
// codec selection.
package appshare_test

import (
	"fmt"
	"testing"

	"appshare"
	"appshare/internal/capture"
	"appshare/internal/codec"
	"appshare/internal/stats"
	"appshare/internal/workload"
)

// BenchmarkAblationCoalesceWaste sweeps the damage coalescing budget on
// a typing workload (many small dirty rects). Small budgets send many
// small updates (header overhead); huge budgets re-encode untouched
// pixels between the rects.
func BenchmarkAblationCoalesceWaste(b *testing.B) {
	for _, waste := range []int{0, 1 << 10, 64 << 10, 1 << 30} {
		b.Run(fmt.Sprintf("waste-%d", waste), func(b *testing.B) {
			desk := appshare.NewDesktop(1280, 1024)
			win := desk.CreateWindow(1, appshare.XYWH(100, 80, 640, 480))
			st := stats.NewCollector()
			host, err := appshare.NewHost(appshare.HostConfig{
				Desktop: desk,
				Stats:   st,
				Capture: appshare.CaptureOptions{CoalesceWaste: waste},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer host.Close()
			hostSide, partSide := appshare.SimulatedLink(appshare.LinkConfig{Seed: 1}, appshare.LinkConfig{Seed: 2})
			if _, err := host.AttachPacketConn("p", hostSide, appshare.PacketOptions{}); err != nil {
				b.Fatal(err)
			}
			go func() {
				for {
					if _, err := partSide.Recv(); err != nil {
						return
					}
				}
			}()
			ty := workload.NewTyping(win, 48, 5)
			if err := host.Tick(); err != nil {
				b.Fatal(err)
			}
			st.Reset()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ty.Step()
				if err := host.Tick(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			t := st.Total()
			if t.Messages > 0 {
				b.ReportMetric(float64(t.Bytes)/float64(b.N), "bytes/tick")
				b.ReportMetric(float64(t.Messages)/float64(b.N), "msgs/tick")
			}
		})
	}
}

// BenchmarkAblationMTU sweeps the fragmentation MTU for a large photo
// update: smaller MTUs cost more packets and header bytes.
func BenchmarkAblationMTU(b *testing.B) {
	img := workload.Photo(640, 480, 42)
	content, err := (codec.PNG{}).Encode(img)
	if err != nil {
		b.Fatal(err)
	}
	for _, mtu := range []int{512, 1200, 8192} {
		b.Run(fmt.Sprintf("mtu-%d", mtu), func(b *testing.B) {
			desk := appshare.NewDesktop(800, 600)
			win := desk.CreateWindow(1, appshare.XYWH(0, 0, 640, 480))
			host, err := appshare.NewHost(appshare.HostConfig{Desktop: desk, MTU: mtu})
			if err != nil {
				b.Fatal(err)
			}
			defer host.Close()
			hostSide, partSide := appshare.SimulatedLink(appshare.LinkConfig{Seed: 1}, appshare.LinkConfig{Seed: 2})
			if _, err := host.AttachPacketConn("p", hostSide, appshare.PacketOptions{}); err != nil {
				b.Fatal(err)
			}
			go func() {
				for {
					if _, err := partSide.Recv(); err != nil {
						return
					}
				}
			}()
			vid := workload.NewVideoRegion(win, appshare.XYWH(0, 0, 320, 240), 7)
			b.SetBytes(int64(len(content)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vid.Step()
				if err := host.Tick(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationAutoCodec compares fixed-PNG against content-adaptive
// codec selection on a mixed desktop (text window + embedded video
// region). AutoSelect should cut bytes on the photographic region while
// keeping text lossless.
func BenchmarkAblationAutoCodec(b *testing.B) {
	for _, mode := range []struct {
		name string
		auto bool
	}{{"png-only", false}, {"auto", true}} {
		b.Run(mode.name, func(b *testing.B) {
			desk := appshare.NewDesktop(1280, 1024)
			win := desk.CreateWindow(1, appshare.XYWH(100, 80, 640, 480))
			st := stats.NewCollector()
			host, err := appshare.NewHost(appshare.HostConfig{
				Desktop: desk,
				Stats:   st,
				Capture: appshare.CaptureOptions{AutoSelect: mode.auto},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer host.Close()
			hostSide, partSide := appshare.SimulatedLink(appshare.LinkConfig{Seed: 1}, appshare.LinkConfig{Seed: 2})
			if _, err := host.AttachPacketConn("p", hostSide, appshare.PacketOptions{}); err != nil {
				b.Fatal(err)
			}
			go func() {
				for {
					if _, err := partSide.Recv(); err != nil {
						return
					}
				}
			}()
			ty := workload.NewTyping(win, 32, 5)
			vid := workload.NewVideoRegion(win, appshare.XYWH(320, 240, 200, 150), 7)
			if err := host.Tick(); err != nil {
				b.Fatal(err)
			}
			st.Reset()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ty.Step()
				vid.Step()
				if err := host.Tick(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if t := st.Total(); t.Messages > 0 {
				b.ReportMetric(float64(t.Bytes)/float64(b.N), "bytes/tick")
			}
		})
	}
}

// BenchmarkAblationCaptureMode compares event-driven (journal) capture
// against polling capture with tile hashing and scroll detection — the
// cost a real AH pays when the window system provides no damage events.
func BenchmarkAblationCaptureMode(b *testing.B) {
	b.Run("journal", func(b *testing.B) {
		desk := appshare.NewDesktop(1280, 1024)
		win := desk.CreateWindow(1, appshare.XYWH(100, 80, 640, 480))
		p, err := capture.New(desk, capture.Options{})
		if err != nil {
			b.Fatal(err)
		}
		ty := workload.NewTyping(win, 48, 5)
		if _, err := p.Tick(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ty.Step()
			if _, err := p.Tick(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("polling", func(b *testing.B) {
		desk := appshare.NewDesktop(1280, 1024)
		win := desk.CreateWindow(1, appshare.XYWH(100, 80, 640, 480))
		p, err := capture.New(desk, capture.Options{})
		if err != nil {
			b.Fatal(err)
		}
		po := capture.NewPoller(p, 32, 40)
		ty := workload.NewTyping(win, 48, 5)
		if _, err := po.Tick(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ty.Step()
			if _, err := po.Tick(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
