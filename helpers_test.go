package appshare_test

import "appshare"

// Shared helpers for facade-level tests.

func newDesk() *appshare.Desktop {
	desk := appshare.NewDesktop(800, 600)
	desk.CreateWindow(1, appshare.XYWH(50, 50, 300, 200))
	return desk
}

func newHostFor(desk *appshare.Desktop) (*appshare.Host, error) {
	return appshare.NewHost(appshare.HostConfig{Desktop: desk})
}

func simLink() (a, b appshare.PacketConn) {
	return appshare.SimulatedLink(appshare.LinkConfig{Seed: 1}, appshare.LinkConfig{Seed: 2})
}

func packetOpts() appshare.PacketOptions { return appshare.PacketOptions{} }
