// Quickstart: share a window with an interactive application over
// loopback TCP, type into it remotely through HIP, and write the
// participant's rendered screen to a PNG file.
//
// Run:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"image/png"
	"log"
	"net"
	"os"
	"time"

	"appshare"
	"appshare/internal/apps"
)

func main() {
	// 1. The Application Host's virtual desktop with an editor window.
	desk := appshare.NewDesktop(1024, 768)
	win := desk.CreateWindow(1, appshare.XYWH(120, 90, 600, 400))
	editor := apps.NewEditor(win)

	st := appshare.NewStats()
	host, err := appshare.NewHost(appshare.HostConfig{Desktop: desk, Stats: st})
	if err != nil {
		log.Fatal(err)
	}
	defer host.Close()

	// 2. Serve TCP participants (draft Section 4.4: full state is
	// pushed right after connection establishment).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = appshare.ServeTCP(host, ln, appshare.StreamOptions{UserID: 1}) }()

	// 3. A participant joins.
	p := appshare.NewParticipant(appshare.ParticipantConfig{
		ScreenWidth: 1024, ScreenHeight: 768,
	})
	conn, err := appshare.DialTCP(p, ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	waitFor(func() bool { return len(p.Windows()) == 1 })
	fmt.Println("participant joined; received initial window state")

	// 4. The participant types through HIP; the AH regenerates the
	// events into the editor, whose repaint flows back as RegionUpdates.
	if err := conn.Type(win.ID(), "Hello from the participant!\nThis text was typed remotely over HIP."); err != nil {
		log.Fatal(err)
	}
	// Queued input drains at the next capture tick, like OS input.
	waitFor(func() bool {
		if err := host.Tick(); err != nil {
			log.Fatal(err)
		}
		return len(editor.Text()) > 0
	})
	if err := host.Tick(); err != nil {
		log.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)

	fmt.Printf("editor received %d characters\n", len(editor.Text()))

	// 5. Save what the participant sees.
	out, err := os.Create("quickstart.png")
	if err != nil {
		log.Fatal(err)
	}
	defer out.Close()
	if err := png.Encode(out, p.Render()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("participant screen written to quickstart.png")
	fmt.Println("\ntraffic by message type:")
	fmt.Print(st.String())
}

func waitFor(cond func() bool) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	log.Fatal("timeout")
}
