// Desktopshare: the difference between application sharing and desktop
// sharing (draft Section 2). The AH runs a "presentation" app (two
// grouped windows) next to a private "email" window. In application-
// sharing mode only the presentation group is transmitted and the email
// window is blanked at the participants; switching to desktop sharing
// transmits everything. The session is distributed over a simulated
// multicast group.
//
// Run:
//
//	go run ./examples/desktopshare
package main

import (
	"fmt"
	"image/png"
	"log"
	"os"
	"time"

	"appshare"
	"appshare/internal/workload"
)

func main() {
	desk := appshare.NewDesktop(1024, 768)

	// The shared application: a slide window and its notes child window
	// (same group — "the AH MAY assign same group identifier to the
	// windows which belongs to the same process").
	slides := desk.CreateWindow(1, appshare.XYWH(60, 40, 600, 450))
	notes := desk.CreateWindow(1, appshare.XYWH(60, 520, 600, 180))
	// A private window that must NOT leak to participants.
	email := desk.CreateWindow(2, appshare.XYWH(700, 100, 280, 400))

	// Application sharing: transmit only group 1.
	desk.ShareGroup(1)

	host, err := appshare.NewHost(appshare.HostConfig{Desktop: desk})
	if err != nil {
		log.Fatal(err)
	}
	defer host.Close()

	// A multicast group with three members.
	bus := appshare.NewBus()
	var members []*appshare.Participant
	for i := 0; i < 3; i++ {
		sub := bus.Subscribe(appshare.LinkConfig{Seed: int64(i + 1)})
		p := appshare.NewParticipant(appshare.ParticipantConfig{})
		members = append(members, p)
		go func() {
			for {
				pkt, err := sub.Recv()
				if err != nil {
					return
				}
				_ = p.HandlePacket(pkt)
			}
		}()
	}
	group, err := host.AttachMulticast("room-42", bus)
	if err != nil {
		log.Fatal(err)
	}
	if err := host.RequestRefresh(group); err != nil {
		log.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)

	// Animate: slideshow + notes typing + private email activity.
	show := workload.NewSlideshow(slides, 10, 1)
	typing := workload.NewTyping(notes, 24, 2)
	private := workload.NewTyping(email, 24, 3)
	for i := 0; i < 40; i++ {
		show.Step()
		typing.Step()
		private.Step() // changes in the email window must go nowhere
		if err := host.Tick(); err != nil {
			log.Fatal(err)
		}
	}
	time.Sleep(150 * time.Millisecond)

	p := members[0]
	fmt.Printf("application sharing: participant sees %d windows (AH has 3)\n", len(p.Windows()))
	if img := p.WindowImage(email.ID()); img != nil {
		log.Fatal("PRIVACY VIOLATION: email window leaked")
	}
	fmt.Println("email window not transmitted — blanked per Section 2")
	save("desktopshare-app.png", p)

	// Switch to full desktop sharing: all windows transmitted.
	desk.ShareAll()
	if err := host.RequestRefresh(group); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		private.Step()
		if err := host.Tick(); err != nil {
			log.Fatal(err)
		}
	}
	time.Sleep(150 * time.Millisecond)
	fmt.Printf("desktop sharing: participant now sees %d windows\n", len(p.Windows()))
	save("desktopshare-full.png", p)
}

func save(path string, p *appshare.Participant) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := png.Encode(f, p.Render()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote", path)
}
