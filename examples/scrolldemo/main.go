// Scrolldemo: shows why the draft defines MoveRectangle (Section 5.2.3).
// A document window scrolls continuously; the demo runs the same
// workload twice — once with scroll-awareness (MoveRectangle for the
// moved band plus a RegionUpdate for the revealed lines) and once with
// move detection disabled, re-encoding every changed pixel — and prints
// the bytes each strategy puts on the wire.
//
// Run:
//
//	go run ./examples/scrolldemo
package main

import (
	"fmt"
	"log"
	"time"

	"appshare"
	"appshare/internal/stats"
	"appshare/internal/workload"
)

const steps = 100

func main() {
	moveAware := run(true)
	naive := run(false)

	fmt.Println("scrolling a 640x480 document window for", steps, "steps:")
	fmt.Printf("%-28s %12s %12s\n", "strategy", "messages", "bytes")
	fmt.Printf("%-28s %12d %12d\n", "MoveRectangle + updates", moveAware.Messages, moveAware.Bytes)
	fmt.Printf("%-28s %12d %12d\n", "RegionUpdate only", naive.Messages, naive.Bytes)
	if moveAware.Bytes > 0 {
		fmt.Printf("MoveRectangle saves %.1fx\n", float64(naive.Bytes)/float64(moveAware.Bytes))
	}
}

// run executes the scrolling workload and returns total traffic.
func run(useMove bool) stats.Counter {
	desk := appshare.NewDesktop(800, 600)
	win := desk.CreateWindow(1, appshare.XYWH(80, 60, 640, 480))
	st := appshare.NewStats()
	host, err := appshare.NewHost(appshare.HostConfig{
		Desktop: desk,
		Stats:   st,
		Capture: appshare.CaptureOptions{DisableMoveDetection: !useMove},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer host.Close()

	hostSide, partSide := appshare.SimulatedLink(appshare.LinkConfig{Seed: 1}, appshare.LinkConfig{Seed: 2})
	if _, err := host.AttachPacketConn("viewer", hostSide, appshare.PacketOptions{}); err != nil {
		log.Fatal(err)
	}
	p := appshare.NewParticipant(appshare.ParticipantConfig{})
	conn := appshare.ConnectPacket(p, partSide)
	defer conn.Close()
	if err := conn.SendPLI(); err != nil {
		log.Fatal(err)
	}
	if err := host.Tick(); err != nil { // serve the join refresh
		log.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	st.Reset() // measure the scroll phase only

	scroller := workload.NewScrolling(win, 3, 7)
	for i := 0; i < steps; i++ {
		scroller.Step()
		if err := host.Tick(); err != nil {
			log.Fatal(err)
		}
	}
	time.Sleep(100 * time.Millisecond)
	return st.Total()
}
