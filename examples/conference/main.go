// Conference: a multiparty sharing session with BFCP floor control
// (draft Appendix A) over lossy simulated UDP links, exercising the PLI
// late-join flow (Section 4.3) and NACK loss repair (Section 5.3.2).
//
// Three participants join a whiteboard session. Only the floor holder
// may draw; the others' HIP events are rejected by the AH. One
// participant sits behind a 10%-loss link and repairs its stream with
// NACK requests.
//
// Run:
//
//	go run ./examples/conference
package main

import (
	"fmt"
	"image/png"
	"log"
	"os"
	"time"

	"appshare"
	"appshare/internal/apps"
	"appshare/internal/bfcp"
)

func main() {
	desk := appshare.NewDesktop(1024, 768)
	board := desk.CreateWindow(1, appshare.XYWH(112, 84, 800, 600))
	wb := apps.NewWhiteboard(board)

	floor := appshare.NewFloor(1, func(userID uint16, msg *bfcp.Message) {
		fmt.Printf("  floor chair -> user %d: %v", userID, msg.Primitive)
		if msg.Primitive == bfcp.FloorGranted {
			fmt.Printf(" (%v)", msg.HIDStatus)
		}
		if msg.Primitive == bfcp.FloorRequestQueued {
			fmt.Printf(" (position %d)", msg.QueuePosition)
		}
		fmt.Println()
	})

	host, err := appshare.NewHost(appshare.HostConfig{
		Desktop:         desk,
		Floor:           floor,
		Retransmissions: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer host.Close()

	// Three UDP participants; Carol's link loses 10% of datagrams.
	links := []struct {
		name string
		user uint16
		loss float64
	}{
		{"alice", 10, 0},
		{"bob", 11, 0},
		{"carol", 12, 0.10},
	}
	var conns []*appshare.Connection
	var parts []*appshare.Participant
	for i, l := range links {
		hostSide, partSide := appshare.SimulatedLink(
			appshare.LinkConfig{LossRate: l.loss, Seed: int64(i + 1)},
			appshare.LinkConfig{Seed: int64(i + 100)},
		)
		if _, err := host.AttachPacketConn(l.name, hostSide, appshare.PacketOptions{UserID: l.user}); err != nil {
			log.Fatal(err)
		}
		p := appshare.NewParticipant(appshare.ParticipantConfig{})
		conn := appshare.ConnectPacket(p, partSide)
		defer conn.Close()
		// Section 4.3: UDP joiners announce themselves with a PLI.
		if err := conn.SendPLI(); err != nil {
			log.Fatal(err)
		}
		conns = append(conns, conn)
		parts = append(parts, p)
	}
	time.Sleep(100 * time.Millisecond)
	fmt.Printf("%d participants joined via PLI\n", host.Participants())

	// Alice requests and receives the floor; Bob queues behind her.
	fmt.Println("floor requests:")
	must(floor.Request(10))
	must(floor.Request(11))

	// Alice draws a diagonal stroke.
	fmt.Println("alice draws (floor holder):")
	drag(host, conns[0], board.ID(), 200, 200, 400, 350)
	fmt.Printf("  whiteboard strokes: %d\n", wb.Strokes())

	// Bob tries to draw without the floor: every event is rejected.
	before := host.HIPErrors()
	drag(host, conns[1], board.ID(), 500, 200, 600, 300)
	fmt.Printf("bob draws without floor: %d HIP events rejected\n", host.HIPErrors()-before)

	// Alice releases; Bob (FIFO head) is granted and draws.
	fmt.Println("alice releases the floor:")
	must(floor.Release(10))
	drag(host, conns[1], board.ID(), 500, 200, 600, 300)
	fmt.Printf("  whiteboard strokes now: %d\n", wb.Strokes())

	// Distribute the strokes; Carol repairs her lossy stream with NACKs.
	for i := 0; i < 10; i++ {
		if err := host.Tick(); err != nil {
			log.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
		if err := conns[2].SendNACKIfNeeded(); err != nil {
			log.Fatal(err)
		}
	}
	time.Sleep(100 * time.Millisecond)
	for i := 0; i < 5; i++ { // final repair rounds
		if err := conns[2].SendNACKIfNeeded(); err != nil {
			log.Fatal(err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	received, dups, reordered, dropped := parts[2].Stats()
	fmt.Printf("carol's lossy stream: %d received, %d dup, %d reordered, %d messages dropped, %d still missing\n",
		received, dups, reordered, dropped, len(parts[2].MissingSequences()))

	out, err := os.Create("conference-carol.png")
	if err != nil {
		log.Fatal(err)
	}
	defer out.Close()
	if err := png.Encode(out, parts[2].Render()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("carol's repaired view written to conference-carol.png")
}

// drag simulates press-move-release along a line. The host tick drains
// the queued input.
func drag(h *appshare.Host, c *appshare.Connection, windowID uint16, x0, y0, x1, y1 int) {
	if err := dragPath(c, windowID, x0, y0, x1, y1); err != nil {
		log.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if err := h.Tick(); err != nil {
		log.Fatal(err)
	}
}

func dragPath(c *appshare.Connection, windowID uint16, x0, y0, x1, y1 int) error {
	pressPkt, err := c.Participant().MousePress(windowID, x0, y0, appshare.ButtonLeft)
	if err != nil {
		return err
	}
	if err := c.SendHIP(pressPkt); err != nil {
		return err
	}
	steps := 8
	for i := 1; i <= steps; i++ {
		x := x0 + (x1-x0)*i/steps
		y := y0 + (y1-y0)*i/steps
		if err := c.MoveMouse(windowID, x, y); err != nil {
			return err
		}
	}
	relPkt, err := c.Participant().MouseRelease(windowID, x1, y1, appshare.ButtonLeft)
	if err != nil {
		return err
	}
	return c.SendHIP(relPkt)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
