// Classroom: one instructor AH shares the three-window desktop of the
// draft's Figure 2 to three students, each displaying the windows under
// a different layout policy — the exact scenarios of Figures 3, 4 and 5:
//
//   - student1 keeps the original coordinates (Figure 3),
//   - student2 shifts everything 220 left / 150 up (Figure 4),
//   - student3 compacts the windows onto a 640x480 screen (Figure 5).
//
// A typing workload animates window A; each student's view is written to
// a PNG.
//
// Run:
//
//	go run ./examples/classroom
package main

import (
	"fmt"
	"image/png"
	"log"
	"net"
	"os"
	"time"

	"appshare"
	"appshare/internal/windows"
	"appshare/internal/workload"
)

func main() {
	// Figure 2: a 1280x1024 AH sharing windows A, C, B (bottom to top).
	desk := appshare.NewDesktop(1280, 1024)
	winA := desk.CreateWindow(1, appshare.XYWH(220, 150, 350, 450))
	desk.CreateWindow(2, appshare.XYWH(850, 320, 160, 150)) // C
	desk.CreateWindow(1, appshare.XYWH(450, 400, 350, 300)) // B

	host, err := appshare.NewHost(appshare.HostConfig{Desktop: desk})
	if err != nil {
		log.Fatal(err)
	}
	defer host.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = appshare.ServeTCP(host, ln, appshare.StreamOptions{}) }()

	students := []struct {
		name   string
		cfg    appshare.ParticipantConfig
		figure string
	}{
		{
			name:   "student1-original",
			cfg:    appshare.ParticipantConfig{Layout: appshare.OriginalLayout{}, ScreenWidth: 1024, ScreenHeight: 768},
			figure: "Figure 3",
		},
		{
			name:   "student2-shifted",
			cfg:    appshare.ParticipantConfig{Layout: appshare.ShiftLayout{DX: -220, DY: -150}, ScreenWidth: 1280, ScreenHeight: 1024},
			figure: "Figure 4",
		},
		{
			name: "student3-compact",
			cfg: appshare.ParticipantConfig{
				Layout:      &windows.CompactLayout{Screen: appshare.XYWH(0, 0, 640, 480)},
				ScreenWidth: 640, ScreenHeight: 480,
			},
			figure: "Figure 5",
		},
	}

	var conns []*appshare.Connection
	var parts []*appshare.Participant
	for _, s := range students {
		p := appshare.NewParticipant(s.cfg)
		conn, err := appshare.DialTCP(p, ln.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		defer conn.Close()
		conns = append(conns, conn)
		parts = append(parts, p)
	}
	waitAll(parts, 3)

	// The instructor types a lecture into window A.
	lecture := workload.NewTyping(winA, 24, 42)
	for i := 0; i < 120; i++ {
		lecture.Step()
		if err := host.Tick(); err != nil {
			log.Fatal(err)
		}
	}
	time.Sleep(200 * time.Millisecond)

	for i, s := range students {
		file := s.name + ".png"
		out, err := os.Create(file)
		if err != nil {
			log.Fatal(err)
		}
		if err := png.Encode(out, parts[i].Render()); err != nil {
			log.Fatal(err)
		}
		out.Close()
		place, _ := parts[i].WindowPlacement(winA.ID())
		fmt.Printf("%-18s (%s): window A placed at %v -> %s\n", s.name, s.figure, place, file)
	}
}

func waitAll(parts []*appshare.Participant, wantWindows int) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		ready := 0
		for _, p := range parts {
			if len(p.Windows()) == wantWindows {
				ready++
			}
		}
		if ready == len(parts) {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	log.Fatal("timeout waiting for students to join")
}
