package appshare_test

import (
	"fmt"
	"image"
	"image/png"
	"net"
	"os"
	"testing"
	"time"

	"appshare"
	"appshare/internal/netsim"
	"appshare/internal/workload"
)

// TestSoakMixedAudience is the long-haul stress run: one host serving
// eight participants across TCP, UDP (some lossy, with repair loops) and
// multicast for several hundred ticks of mixed workloads, asserting
// convergence at the end. Skipped under -short.
func TestSoakMixedAudience(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	desk := appshare.NewDesktop(1280, 1024)
	w1 := desk.CreateWindow(1, appshare.XYWH(60, 50, 500, 380))
	w2 := desk.CreateWindow(2, appshare.XYWH(420, 300, 420, 320))
	// RetransLog sized for slow consumers: a member that lags (PNG
	// decode backlog) detects losses late, so the host must retain a
	// deeper retransmission window than the default.
	host, err := appshare.NewHost(appshare.HostConfig{
		Desktop:         desk,
		Retransmissions: true,
		RetransLog:      16384,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()

	var parts []*appshare.Participant
	var conns []*appshare.Connection
	stop := make(chan struct{})
	defer close(stop)

	// Three TCP participants over real loopback sockets.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = appshare.ServeTCP(host, ln, appshare.StreamOptions{}) }()
	for i := 0; i < 3; i++ {
		p := appshare.NewParticipant(appshare.ParticipantConfig{})
		conn, err := appshare.DialTCP(p, ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		parts = append(parts, p)
		conns = append(conns, conn)
	}
	// AttachStream pushes each TCP joiner's initial state from the accept
	// goroutine, and that capture reads the window buffers — which only
	// the tick/paint goroutine may mutate (see DESIGN.md). Hold the paint
	// loop until every TCP participant has its initial images, proving
	// those captures finished.
	attachDeadline := time.Now().Add(10 * time.Second)
	for _, p := range parts {
		for p.WindowImage(w1.ID()) == nil || p.WindowImage(w2.ID()) == nil {
			if time.Now().After(attachDeadline) {
				t.Fatal("timed out waiting for TCP initial state")
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Three UDP participants over simulated links, one lossy.
	for i := 0; i < 3; i++ {
		loss := 0.0
		if i == 2 {
			loss = 0.05
		}
		hostSide, partSide := appshare.SimulatedLink(
			appshare.LinkConfig{LossRate: loss, Seed: int64(netsim.SoakSeedUDPDownBase + i)},
			appshare.LinkConfig{Seed: int64(netsim.SoakSeedUDPUpBase + i)})
		if _, err := host.AttachPacketConn(fmt.Sprintf("udp-%d", i), hostSide, appshare.PacketOptions{}); err != nil {
			t.Fatal(err)
		}
		p := appshare.NewParticipant(appshare.ParticipantConfig{})
		conn := appshare.ConnectPacket(p, partSide)
		defer conn.Close()
		go func() { _ = conn.RepairLoop(stop, 15*time.Millisecond, 5*time.Millisecond) }()
		if err := conn.SendPLI(); err != nil {
			t.Fatal(err)
		}
		parts = append(parts, p)
		conns = append(conns, conn)
	}

	// Two multicast members. Their inboxes can overflow under bursts
	// (multicast offers no backpressure), so they use the draft's
	// out-of-band unicast NACK path: lost packets are retransmitted to
	// the whole group (Section 5.3.2).
	bus := appshare.NewBus()
	var group *appshare.Remote
	// groupReady publishes the group assignment to the feedback tickers:
	// close happens-after the write below, so a gated read is race-free.
	groupReady := make(chan struct{})
	for i := 0; i < 2; i++ {
		sub := bus.Subscribe(appshare.LinkConfig{Seed: int64(netsim.SoakSeedMulticastBase + i), QueueLen: 4096})
		p := appshare.NewParticipant(appshare.ParticipantConfig{})
		go func() {
			for {
				pkt, err := sub.Recv()
				if err != nil {
					return
				}
				_ = p.HandlePacket(pkt)
			}
		}()
		go func() {
			ticker := time.NewTicker(20 * time.Millisecond)
			defer ticker.Stop()
			var lastPLI time.Time
			for {
				select {
				case <-stop:
					return
				case <-ticker.C:
					select {
					case <-groupReady:
					default:
						continue
					}
					if nack, err := p.BuildNACK(); err == nil && nack != nil {
						host.HandleFeedback(group, nack)
					}
					// Inbox overflow can desynchronize a member; a PLI
					// refreshes the whole group (Section 5.3.1).
					if p.NeedsRefresh() && time.Since(lastPLI) > 300*time.Millisecond {
						lastPLI = time.Now()
						if pli, err := p.BuildPLI(); err == nil {
							host.HandleFeedback(group, pli)
						}
					}
				}
			}
		}()
		parts = append(parts, p)
	}
	group, err = host.AttachMulticast("soak-group", bus)
	if err != nil {
		t.Fatal(err)
	}
	close(groupReady)
	if err := host.RequestRefresh(group); err != nil {
		t.Fatal(err)
	}

	// 400 ticks of mixed activity.
	ty := workload.NewTyping(w1, 48, 9)
	sc := workload.NewScrolling(w2, 1, 10)
	vid := workload.NewVideoRegion(w1, appshare.XYWH(300, 250, 120, 90), 11)
	for i := 0; i < 400; i++ {
		switch i % 3 {
		case 0:
			ty.Step()
		case 1:
			sc.Step()
		case 2:
			vid.Step()
		}
		if i%50 == 25 {
			_ = desk.MoveWindow(w2.ID(), 400+(i%100), 280+(i%60))
		}
		if err := host.Tick(); err != nil {
			t.Fatal(err)
		}
		// Pace like a real capture loop; an unthrottled tick storm just
		// measures channel depths, not the protocol.
		time.Sleep(2 * time.Millisecond)
	}
	// Quiesce: tick until every participant has no gaps, no pending
	// refresh, and its receive counters have stopped moving (decode
	// backlogs can lag well behind the wire).
	deadline := time.Now().Add(20 * time.Second)
	var prevCounts []uint64
	stable := 0
	for time.Now().Before(deadline) && stable < 3 {
		if err := host.Tick(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(100 * time.Millisecond)
		counts := make([]uint64, len(parts))
		clean := true
		for i, p := range parts {
			received, _, _, _ := p.Stats()
			counts[i] = received
			if len(p.MissingSequences()) > 0 || p.NeedsRefresh() {
				clean = false
			}
		}
		if clean && prevCounts != nil {
			same := true
			for i := range counts {
				if counts[i] != prevCounts[i] {
					same = false
				}
			}
			if same {
				stable++
			} else {
				stable = 0
			}
		} else {
			stable = 0
		}
		prevCounts = counts
	}
	if stable < 3 {
		for i, p := range parts {
			t.Logf("participant %d: missing %d, needsRefresh %v",
				i, len(p.MissingSequences()), p.NeedsRefresh())
		}
		t.Fatal("session never quiesced")
	}

	want1 := w1.Snapshot()
	want2 := w2.Snapshot()
	for i, p := range parts {
		g1 := p.WindowImage(w1.ID())
		g2 := p.WindowImage(w2.ID())
		if g1 == nil || g2 == nil {
			t.Fatalf("participant %d missing windows", i)
		}
		d1 := diffBytes(g1.Pix, want1.Pix)
		d2 := diffBytes(g2.Pix, want2.Pix)
		if d1 != 0 || d2 != 0 {
			x0, y0, x1, y1 := diffBox(g1.Pix, want1.Pix, want1.Bounds().Dx())
			t.Errorf("participant %d did not converge after soak: w1 %d/%d (box %d,%d..%d,%d), w2 %d/%d bytes differ",
				i, d1, len(want1.Pix), x0, y0, x1, y1, d2, len(want2.Pix))
			if os.Getenv("SOAK_DUMP") != "" {
				dumpPNG(t, fmt.Sprintf("/tmp/soak_want_w1.png"), want1)
				dumpPNG(t, fmt.Sprintf("/tmp/soak_got_w1_p%d.png", i), g1)
			}
			received, dups, reordered, droppedMsgs := p.Stats()
			t.Logf("participant %d: applied WMI=%d RU=%d MR=%d MPI=%d; recv=%d dup=%d reord=%d dropped=%d",
				i, p.Applied(1), p.Applied(2), p.Applied(3), p.Applied(4),
				received, dups, reordered, droppedMsgs)
			r0 := parts[0]
			t.Logf("reference 0: applied WMI=%d RU=%d MR=%d MPI=%d",
				r0.Applied(1), r0.Applied(2), r0.Applied(3), r0.Applied(4))
		}
	}
	if errs := host.HIPErrors(); errs != 0 {
		t.Errorf("unexpected HIP errors: %d", errs)
	}
}

func diffBytes(a, b []byte) int {
	if len(a) != len(b) {
		return len(a) + len(b)
	}
	n := 0
	for i := range a {
		if a[i] != b[i] {
			n++
		}
	}
	return n
}

func diffBox(a, b []byte, width int) (x0, y0, x1, y1 int) {
	x0, y0 = 1<<30, 1<<30
	for i := range a {
		if a[i] != b[i] {
			px := i / 4
			x, y := px%width, px/width
			if x < x0 {
				x0 = x
			}
			if x > x1 {
				x1 = x
			}
			if y < y0 {
				y0 = y
			}
			if y > y1 {
				y1 = y
			}
		}
	}
	return
}

func dumpPNG(t *testing.T, path string, img *image.RGBA) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Logf("dump %s: %v", path, err)
		return
	}
	defer f.Close()
	if err := png.Encode(f, img); err != nil {
		t.Logf("dump %s: %v", path, err)
	}
	t.Logf("dumped %s", path)
}
