package appshare_test

import (
	"fmt"
	"time"

	"appshare"
	"appshare/internal/apps"
)

// ExampleHost shows a complete in-process sharing session: an AH shares
// a window with a toggle button, a participant joins over a simulated
// link, clicks the button through HIP, and sees the repaint.
func ExampleHost() {
	desk := appshare.NewDesktop(640, 480)
	win := desk.CreateWindow(1, appshare.XYWH(100, 100, 300, 200))
	button := apps.NewButton(win, appshare.XYWH(20, 20, 120, 40), "Demo")

	host, err := appshare.NewHost(appshare.HostConfig{Desktop: desk})
	if err != nil {
		panic(err)
	}
	defer host.Close()

	hostSide, partSide := appshare.SimulatedLink(appshare.LinkConfig{Seed: 1}, appshare.LinkConfig{Seed: 2})
	if _, err := host.AttachPacketConn("viewer", hostSide, appshare.PacketOptions{}); err != nil {
		panic(err)
	}
	p := appshare.NewParticipant(appshare.ParticipantConfig{})
	conn := appshare.ConnectPacket(p, partSide)
	defer conn.Close()

	// UDP participants announce themselves with a PLI (draft §4.3);
	// the refresh is served at the next capture tick.
	if err := conn.SendPLI(); err != nil {
		panic(err)
	}
	waitUntilExample(func() bool {
		if err := host.Tick(); err != nil {
			panic(err)
		}
		return len(p.Windows()) == 1
	})
	fmt.Println("windows:", len(p.Windows()))

	// Click the button at absolute desktop coordinates.
	if err := conn.Click(win.ID(), 130, 130, appshare.ButtonLeft); err != nil {
		panic(err)
	}
	waitUntilExample(func() bool {
		if err := host.Tick(); err != nil {
			panic(err)
		}
		return button.On()
	})
	fmt.Println("button on:", button.On())

	// Output:
	// windows: 1
	// button on: true
}

// ExampleBuildSDPOffer generates the session description of the draft's
// Section 10.3 deployment.
func ExampleBuildSDPOffer() {
	offer, err := appshare.BuildSDPOffer(appshare.SDPOffer{
		Address:         "192.0.2.1",
		RemotingPort:    6000,
		RemotingPT:      99,
		OfferUDP:        true,
		Retransmissions: true,
		HIPPort:         6006,
		HIPPT:           100,
	})
	if err != nil {
		panic(err)
	}
	sess, err := appshare.ParseSDPOffer(offer)
	if err != nil {
		panic(err)
	}
	fmt.Printf("remoting UDP port %d, PT %d, retransmissions %v\n",
		sess.RemotingUDPPort, sess.RemotingPT, sess.Retransmissions)
	// Output:
	// remoting UDP port 6000, PT 99, retransmissions true
}

func waitUntilExample(cond func() bool) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	panic("example timeout")
}
