// Package appshare is a complete Go implementation of the application
// and desktop sharing system specified in
// draft-boyaci-avt-app-sharing-00 (Boyaci & Schulzrinne, Columbia
// University): an RTP payload format with two subprotocols — the
// remoting protocol carrying screen updates from an Application Host
// (AH) to participants, and the Human Interface Protocol (HIP) carrying
// mouse and keyboard events back.
//
// The facade re-exports the building blocks a downstream user needs:
//
//   - Host (the AH): shares a virtual desktop over TCP, UDP and
//     multicast simultaneously, with PNG/JPEG content codecs, RFC 4571
//     TCP framing, RTCP PLI/NACK feedback service, backlog-aware sending
//     and optional BFCP floor control.
//   - Participant: receives and composites the shared windows under a
//     configurable layout (original, shifted or compacted coordinates —
//     the draft's Figures 3–5), detects losses, requests refreshes and
//     emits HIP events.
//   - SDP helpers for session description (draft Section 10).
//
// Quickstart (in-process, loopback TCP):
//
//	desk := appshare.NewDesktop(1280, 1024)
//	win := desk.CreateWindow(1, appshare.XYWH(100, 100, 640, 480))
//	host, _ := appshare.NewHost(appshare.HostConfig{Desktop: desk})
//	// ... attach participants, call host.Tick() per frame.
//
// See examples/ for complete programs and DESIGN.md for the system
// inventory.
package appshare

import (
	"io"

	"appshare/internal/ah"
	"appshare/internal/bfcp"
	"appshare/internal/broker"
	"appshare/internal/capture"
	"appshare/internal/codec"
	"appshare/internal/display"
	"appshare/internal/hip"
	"appshare/internal/keycodes"
	"appshare/internal/participant"
	"appshare/internal/region"
	"appshare/internal/sdp"
	"appshare/internal/stats"
	"appshare/internal/trace"
	"appshare/internal/transport"
	"appshare/internal/windows"
	"appshare/internal/workload"
)

// Re-exported core types. The aliases are the public API surface; the
// internal packages stay internal.
type (
	// Host is the Application Host: it owns the shared desktop and
	// serves participants.
	Host = ah.Host
	// HostConfig configures NewHost.
	HostConfig = ah.Config
	// Remote is one attached participant from the host's perspective.
	Remote = ah.Remote
	// StreamOptions configures Host.AttachStream.
	StreamOptions = ah.StreamOptions
	// PacketOptions configures Host.AttachPacketConn.
	PacketOptions = ah.PacketOptions
	// RemoteHealth is a liveness snapshot of one attached or recently
	// evicted remote (see Host.RemoteHealth).
	RemoteHealth = ah.RemoteHealth
	// HealthState is a remote's lifecycle state (healthy → degraded →
	// evicted).
	HealthState = ah.HealthState
	// EvictionPolicy selects how the host's health sweep reacts to
	// sustained congestion.
	EvictionPolicy = ah.EvictionPolicy
	// LadderConfig tunes the congestion-adaptive quality ladder; assign
	// a non-nil *LadderConfig to HostConfig.Ladder to enable it (see
	// DESIGN.md "Congestion-adaptive quality ladder").
	LadderConfig = ah.LadderConfig
	// TileStoreConfig tunes the persistent tile store; assign a non-nil
	// *TileStoreConfig to HostConfig.TileStore to enable cross-tick
	// delta encoding for remotes that negotiate it (see DESIGN.md "Tile
	// store").
	TileStoreConfig = ah.TileStoreConfig
	// QualityTier is one rung of the per-remote quality ladder.
	QualityTier = ah.QualityTier

	// Participant is the receiving endpoint.
	Participant = participant.Participant
	// ParticipantConfig configures NewParticipant.
	ParticipantConfig = participant.Config

	// Desktop is the shared virtual desktop.
	Desktop = display.Desktop
	// Window is one window on the desktop.
	Window = display.Window
	// EventHandler is the application behavior behind a window.
	EventHandler = display.EventHandler

	// Rect is an axis-aligned pixel rectangle (origin top-left).
	Rect = region.Rect

	// CaptureOptions tunes the damage-to-messages pipeline, including
	// the parallel encode pool (EncodeWorkers) and the content-addressed
	// payload cache budget (CacheBytes).
	CaptureOptions = capture.Options
	// EncodeMetrics reports the encode pipeline's cumulative cache and
	// parallelism counters (see Host.EncodeMetrics).
	EncodeMetrics = capture.EncodeMetrics

	// Codec encodes/decodes screen regions; Registry maps RTP payload
	// types to codecs.
	Codec    = codec.Codec
	Registry = codec.Registry

	// Layout places shared windows on a participant screen.
	Layout = windows.Layout
	// OriginalLayout keeps AH coordinates (draft Figure 3).
	OriginalLayout = windows.OriginalLayout
	// ShiftLayout offsets all windows uniformly (Figure 4).
	ShiftLayout = windows.ShiftLayout
	// CompactLayout packs windows onto a small screen (Figure 5).
	CompactLayout = windows.CompactLayout

	// Floor is the BFCP HID floor of the draft's Appendix A.
	Floor = bfcp.Floor
	// HIDStatus is a Figure 20 HID permission state.
	HIDStatus = bfcp.HIDStatus
	// FloorState is a serializable snapshot of a Floor; the broker
	// holds one per session so moderation survives host churn.
	FloorState = bfcp.FloorState

	// Broker is the session placement and migration control plane (see
	// DESIGN.md "Session broker & migration" and cmd/ads-broker).
	Broker = broker.Broker
	// BrokerConfig configures NewBroker.
	BrokerConfig = broker.Config
	// BrokerHostStatus is one registered host as the broker sees it.
	BrokerHostStatus = broker.HostStatus
	// MigrationOrder re-homes one session: the broker emits it, the
	// destination host applies it with RestoreSession.
	MigrationOrder = broker.MigrationOrder
	// SessionSnapshot is a host's migratable session state
	// (Host.SnapshotSession / Host.RestoreSession).
	SessionSnapshot = ah.SessionSnapshot

	// PacketConn is the datagram transport abstraction (UDP-shaped).
	PacketConn = transport.PacketConn
	// LinkConfig shapes a simulated link (loss, reorder, delay).
	LinkConfig = transport.LinkConfig
	// Bus simulates a multicast group.
	Bus = transport.Bus

	// Stats collects per-message-type traffic counters.
	Stats = stats.Collector

	// KeyCode is a Java virtual key code (HIP KeyPressed/KeyReleased).
	KeyCode = keycodes.Code

	// Workload drives scripted desktop activity (evaluation harness).
	Workload = workload.Workload

	// SDPOffer configures session description generation (Section 10).
	SDPOffer = sdp.OfferConfig
	// SDPSession is a parsed remote session description.
	SDPSession = sdp.Session

	// TraceWriter records a session's packets for offline replay.
	TraceWriter = trace.Writer
	// TraceRecord is one replayed packet with its arrival offset.
	TraceRecord = trace.Record
)

// Mouse buttons for HIP mouse events.
const (
	ButtonLeft   = hip.ButtonLeft
	ButtonRight  = hip.ButtonRight
	ButtonMiddle = hip.ButtonMiddle
)

// HID floor states (draft Appendix A, Figure 20).
const (
	StateNotAllowed      = bfcp.StateNotAllowed
	StateKeyboardAllowed = bfcp.StateKeyboardAllowed
	StateMouseAllowed    = bfcp.StateMouseAllowed
	StateAllAllowed      = bfcp.StateAllAllowed
)

// Remote health states (see HostConfig.MaxBacklogDwell / RemoteTimeout).
const (
	HealthHealthy  = ah.HealthHealthy
	HealthDegraded = ah.HealthDegraded
	HealthEvicted  = ah.HealthEvicted
)

// Eviction policies for the host's health sweep.
const (
	EvictionMonitor         = ah.EvictionMonitor
	EvictionDegrade         = ah.EvictionDegrade
	EvictionDegradeThenDrop = ah.EvictionDegradeThenDrop
)

// Quality-ladder tiers, ordered full fidelity first (see
// HostConfig.Ladder and Remote.QualityTier).
const (
	TierFull         = ah.TierFull
	TierDecimated    = ah.TierDecimated
	TierScaled       = ah.TierScaled
	TierKeyframeOnly = ah.TierKeyframeOnly
)

// ErrHostClosed is returned by operations on a closed Host.
var ErrHostClosed = ah.ErrHostClosed

// ParseEvictionPolicy maps "monitor", "degrade" or "drop" to a policy
// (flag plumbing for cmd/ads-host and friends).
func ParseEvictionPolicy(s string) (EvictionPolicy, error) { return ah.ParseEvictionPolicy(s) }

// NewDesktop returns a virtual desktop of the given pixel size.
func NewDesktop(width, height int) *Desktop { return display.NewDesktop(width, height) }

// XYWH builds a Rect from position and size.
func XYWH(left, top, width, height int) Rect { return region.XYWH(left, top, width, height) }

// NewHost returns an Application Host sharing cfg.Desktop.
func NewHost(cfg HostConfig) (*Host, error) { return ah.New(cfg) }

// NewParticipant returns a receiving endpoint.
func NewParticipant(cfg ParticipantConfig) *Participant { return participant.New(cfg) }

// NewFloor returns a BFCP HID floor for the given conference.
func NewFloor(conferenceID uint32, notify func(userID uint16, msg *bfcp.Message)) *Floor {
	return bfcp.NewFloor(conferenceID, notify)
}

// NewFloorFromState rebuilds a Floor from a snapshot — the restore
// half of floor custody across a host migration. No messages are sent
// during the rebuild.
func NewFloorFromState(s FloorState, notify func(userID uint16, msg *bfcp.Message)) *Floor {
	return bfcp.NewFloorFromState(s, notify)
}

// UnmarshalFloorState decodes a FloorState.Marshal encoding.
func UnmarshalFloorState(b []byte) (FloorState, error) { return bfcp.UnmarshalFloorState(b) }

// NewBroker returns an empty session broker.
func NewBroker(cfg BrokerConfig) *Broker { return broker.New(cfg) }

// UnmarshalSessionSnapshot decodes a SessionSnapshot.Marshal encoding
// (the checkpoint bytes a MigrationOrder carries).
func UnmarshalSessionSnapshot(b []byte) (*SessionSnapshot, error) {
	return ah.UnmarshalSessionSnapshot(b)
}

// NewStats returns an empty traffic collector.
func NewStats() *Stats { return stats.NewCollector() }

// NewBus returns a simulated multicast group.
func NewBus() *Bus { return transport.NewBus() }

// SimulatedLink returns two connected datagram endpoints with the given
// per-direction shaping — the controlled-network substitute for real UDP
// paths (see DESIGN.md).
func SimulatedLink(aToB, bToA LinkConfig) (a, b PacketConn) {
	return transport.Pipe(aToB, bToA)
}

// DefaultCodecs returns the standard codec registry: PNG (mandatory,
// lossless), JPEG (lossy) and Raw.
func DefaultCodecs() *Registry { return codec.DefaultRegistry() }

// BuildSDPOffer generates the AH's session description (Section 10.3).
func BuildSDPOffer(cfg SDPOffer) (string, error) {
	d, err := sdp.BuildOffer(cfg)
	if err != nil {
		return "", err
	}
	return d.Marshal(), nil
}

// ParseSDPOffer extracts session parameters from an SDP offer.
func ParseSDPOffer(text string) (*SDPSession, error) {
	d, err := sdp.Parse(text)
	if err != nil {
		return nil, err
	}
	return sdp.ParseOffer(d)
}

// NewTraceWriter starts recording a session trace onto w (see
// internal/trace for the format and cmd/ads-replay for playback).
func NewTraceWriter(w io.Writer) (*TraceWriter, error) { return trace.NewWriter(w) }

// ReadTrace loads a recorded session trace.
func ReadTrace(r io.Reader) ([]TraceRecord, error) { return trace.ReadAll(r) }
