package appshare_test

import (
	"io"
	"testing"

	"appshare"
	"appshare/internal/apps"
)

// pipeDuplex adapts io.Pipe pairs into a ReadWriteCloser duplex.
type pipeDuplex struct {
	io.Reader
	io.Writer
	c1, c2 io.Closer
}

func (d *pipeDuplex) Close() error {
	_ = d.c2.Close()
	return d.c1.Close()
}

func duplexPair() (a, b io.ReadWriteCloser) {
	ar, bw := io.Pipe()
	br, aw := io.Pipe()
	return &pipeDuplex{Reader: ar, Writer: aw, c1: ar, c2: aw},
		&pipeDuplex{Reader: br, Writer: bw, c1: br, c2: bw}
}

// TestSeparateHIPConnection runs the draft's two-port layout: remoting
// on one stream, HIP on a second, associated out of band — and verifies
// events typed over the dedicated HIP connection reach the application.
func TestSeparateHIPConnection(t *testing.T) {
	desk := appshare.NewDesktop(800, 600)
	win := desk.CreateWindow(1, appshare.XYWH(50, 50, 300, 200))
	editor := apps.NewEditor(win)
	host, err := appshare.NewHost(appshare.HostConfig{Desktop: desk})
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()

	// Remoting connection ("port 6000").
	remHost, remPart := duplexPair()
	p := appshare.NewParticipant(appshare.ParticipantConfig{})
	conn := appshare.ConnectStream(p, remPart)
	defer conn.Close()
	remote, err := host.AttachStream("p1", remHost, appshare.StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "join", func() bool { return len(p.Windows()) == 1 })

	// Dedicated HIP connection ("port 6006"), associated out of band.
	hipHost, hipPart := duplexPair()
	if got := host.FindRemote("p1"); got != remote {
		t.Fatal("FindRemote failed")
	}
	host.BindHIPStream(remote, hipHost)
	conn.UseHIPStream(hipPart)

	if err := conn.Type(win.ID(), "two-port layout"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "typed text over HIP port", func() bool {
		if err := host.Tick(); err != nil {
			t.Fatal(err)
		}
		return editor.Text() == "two-port layout"
	})

	// Feedback (PLI) also flows over the HIP/RTCP connection; the
	// refresh is served at the next tick.
	if err := conn.SendPLI(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "refresh after PLI", func() bool {
		if err := host.Tick(); err != nil {
			t.Fatal(err)
		}
		return p.Applied(2 /* RegionUpdate */) >= 2
	})

	if host.FindRemote("absent") != nil {
		t.Fatal("FindRemote should return nil for unknown ids")
	}
}
