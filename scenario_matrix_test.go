package appshare_test

import (
	"bytes"
	"testing"

	"appshare/internal/netsim"
)

// TestScenarioMatrix drives every profile in the simulation matrix —
// burst loss, jitter/reordering, duplication, rate policing, transient
// partitions, late joiners, mid-run evictions, TCP backlog pressure and
// lossy multicast — against a real host and checks every end-of-run
// oracle: framebuffer convergence, RTP continuity, reassembly identity,
// eviction hygiene and counter consistency.
func TestScenarioMatrix(t *testing.T) {
	for _, sc := range netsim.Matrix() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res, err := netsim.Run(sc)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			for _, o := range res.Oracles {
				if o.Passed {
					continue
				}
				t.Errorf("oracle %s failed: %s", o.Name, o.Detail)
			}
			t.Logf("seed=%d ticks=%d journal=%d records digest=%s",
				res.Seed, res.TicksRun, len(res.Journal), res.Digest)
		})
	}
}

// TestScenarioDeterminism replays representative scenarios and demands
// byte-identical journals: same seed, same scenario, same trace. This is
// the property that makes a matrix failure reproducible from nothing but
// the scenario name and seed.
func TestScenarioDeterminism(t *testing.T) {
	for _, name := range []string{"burst-jitter", "tcp-backlog", "multicast-nack", "evict-mid-burst", "ladder-degrade-heal", "relay-tree", "relay-tree-nested"} {
		name := name
		t.Run(name, func(t *testing.T) {
			sc, err := netsim.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			a, err := netsim.Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			b, err := netsim.Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			if a.Digest != b.Digest {
				t.Fatalf("digest mismatch: %s vs %s", a.Digest, b.Digest)
			}
			if len(a.Journal) != len(b.Journal) {
				t.Fatalf("journal length mismatch: %d vs %d", len(a.Journal), len(b.Journal))
			}
			for i := range a.Journal {
				if a.Journal[i].Offset != b.Journal[i].Offset ||
					!bytes.Equal(a.Journal[i].Packet, b.Journal[i].Packet) {
					t.Fatalf("journal record %d differs between replays", i)
				}
			}
			t.Logf("deterministic across replays: digest=%s (%d records)", a.Digest, len(a.Journal))
		})
	}
}

// TestScenarioMutation is the oracle-of-the-oracles: it plants known
// faults and demands the harness notices. A green matrix is only
// evidence if a red run is demonstrably possible.
func TestScenarioMutation(t *testing.T) {
	t.Run("corrupt-payload", func(t *testing.T) {
		sc, err := netsim.ByName("pristine")
		if err != nil {
			t.Fatal(err)
		}
		sc.Fault = netsim.FaultCorruptPayload
		res, err := netsim.Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		if res.Passed() {
			t.Fatal("payload corruption between link and viewer went unnoticed by every oracle")
		}
		t.Logf("caught by: %v", res.Failures())
	})
	t.Run("tile-desync", func(t *testing.T) {
		// The eviction-coherence scenario provokes real dictionary skew
		// (a viewer dictionary far smaller than the host's seen-set).
		// With the allowance stripped, the tile-sync oracle must notice
		// the planted desyncs — proving it can turn red at all.
		sc, err := netsim.ByName("tile-evict-coherence")
		if err != nil {
			t.Fatal(err)
		}
		sc.Expect.AllowTileDesyncs = false
		res, err := netsim.Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		if res.Passed() {
			t.Fatal("host/viewer tile-dictionary desynchronization went unnoticed by every oracle")
		}
		found := false
		for _, o := range res.Oracles {
			if o.Name == "tile-sync" && !o.Passed {
				found = true
			}
		}
		if !found {
			t.Fatalf("desync was caught, but not by the tile-sync oracle: %v", res.Failures())
		}
		t.Logf("caught by: %v", res.Failures())
	})
	t.Run("evict-feedback", func(t *testing.T) {
		// FaultEvictFeedback disables the host's eviction gates
		// (ah.Config.DebugDisableEvictGates) and keeps the evicted
		// viewer's repair loop talking — the refresh-phase eviction race,
		// re-planted on purpose. The evictions oracle must see the
		// post-eviction service (packets after eviction, or sends hitting
		// the closed conn).
		sc, err := netsim.ByName("evict-mid-burst")
		if err != nil {
			t.Fatal(err)
		}
		sc.Fault = netsim.FaultEvictFeedback
		res, err := netsim.Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		if res.Passed() {
			t.Fatal("feedback serviced inside the eviction race window went unnoticed by every oracle")
		}
		found := false
		for _, o := range res.Oracles {
			if o.Name == "evictions" && !o.Passed {
				found = true
			}
		}
		if !found {
			t.Fatalf("the race was caught, but not by the evictions oracle: %v", res.Failures())
		}
		t.Logf("caught by: %v", res.Failures())
	})
	t.Run("skip-repair", func(t *testing.T) {
		sc, err := netsim.ByName("uniform-loss-20")
		if err != nil {
			t.Fatal(err)
		}
		sc.Fault = netsim.FaultSkipRepair
		res, err := netsim.Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		if res.Passed() {
			t.Fatal("disabled repair loop on a 20%-loss link went unnoticed by every oracle")
		}
		t.Logf("caught by: %v", res.Failures())
	})
}
