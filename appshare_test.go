package appshare_test

import (
	"image/color"
	"net"
	"strings"
	"testing"
	"time"

	"appshare"
	"appshare/internal/apps"
)

func settle() { time.Sleep(50 * time.Millisecond) }

// waitFor polls until cond returns true or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// TestRealTCPLoopback runs a full session over a real TCP socket:
// share, draw, receive, click back, observe the application react.
func TestRealTCPLoopback(t *testing.T) {
	desk := appshare.NewDesktop(1024, 768)
	win := desk.CreateWindow(1, appshare.XYWH(100, 100, 400, 300))
	button := apps.NewButton(win, appshare.XYWH(20, 20, 140, 40), "Record")

	host, err := appshare.NewHost(appshare.HostConfig{Desktop: desk})
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() { _ = appshare.ServeTCP(host, ln, appshare.StreamOptions{UserID: 1}) }()

	p := appshare.NewParticipant(appshare.ParticipantConfig{})
	conn, err := appshare.DialTCP(p, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	waitFor(t, "initial window state", func() bool { return len(p.Windows()) == 1 })

	// The button's OFF color must have arrived with the initial state.
	waitFor(t, "initial pixels", func() bool {
		img := p.WindowImage(win.ID())
		return img != nil && img.RGBAAt(25, 25) == (color.RGBA{0xC8, 0x30, 0x30, 0xFF})
	})

	// Click the button (desktop coords: window at 100,100 + local 30,30).
	if err := conn.Click(win.ID(), 130, 130, appshare.ButtonLeft); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "button toggle", func() bool {
		if err := host.Tick(); err != nil { // input drains at ticks
			t.Fatal(err)
		}
		return button.On()
	})

	// The repaint flows back on the next tick.
	if err := host.Tick(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "toggled pixels", func() bool {
		img := p.WindowImage(win.ID())
		return img != nil && img.RGBAAt(25, 25) == (color.RGBA{0x30, 0xC8, 0x30, 0xFF})
	})
}

// TestRealUDPLoopback runs the Section 4.3 joining flow over real UDP.
func TestRealUDPLoopback(t *testing.T) {
	desk := appshare.NewDesktop(800, 600)
	win := desk.CreateWindow(1, appshare.XYWH(50, 50, 300, 200))
	editor := apps.NewEditor(win)

	host, err := appshare.NewHost(appshare.HostConfig{Desktop: desk, Retransmissions: true})
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()

	laddr, err := net.ResolveUDPAddr("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sock, err := net.ListenUDP("udp", laddr)
	if err != nil {
		t.Fatal(err)
	}
	defer sock.Close()
	go func() { _ = appshare.ServeUDP(host, sock, appshare.PacketOptions{UserID: 2}) }()

	p := appshare.NewParticipant(appshare.ParticipantConfig{})
	conn, err := appshare.DialUDP(p, sock.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Join via PLI; the refresh is served on the next host tick.
	if err := conn.SendPLI(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "window state after PLI", func() bool {
		if err := host.Tick(); err != nil {
			t.Fatal(err)
		}
		return len(p.Windows()) == 1
	})

	// Type through HIP; the editor receives it.
	if err := conn.Type(win.ID(), "udp works"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "typed text", func() bool {
		if err := host.Tick(); err != nil {
			t.Fatal(err)
		}
		return editor.Text() == "udp works"
	})

	// Updates flow.
	if err := host.Tick(); err != nil {
		t.Fatal(err)
	}
	settle()
	if img := p.WindowImage(win.ID()); img == nil {
		t.Fatal("no window image over UDP")
	}
}

// TestSDPFacadeRoundtrip exercises the SDP helpers end to end.
func TestSDPFacadeRoundtrip(t *testing.T) {
	offer, err := appshare.BuildSDPOffer(appshare.SDPOffer{
		Address:         "127.0.0.1",
		RemotingPort:    6000,
		RemotingPT:      99,
		OfferUDP:        true,
		OfferTCP:        true,
		Retransmissions: true,
		HIPPort:         6006,
		HIPPT:           100,
		BFCPPort:        50000,
		HIPStream:       10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(offer, "remoting/90000") || !strings.Contains(offer, "hip/90000") {
		t.Fatalf("offer missing media:\n%s", offer)
	}
	sess, err := appshare.ParseSDPOffer(offer)
	if err != nil {
		t.Fatal(err)
	}
	if sess.RemotingUDPPort != 6000 || sess.HIPPort != 6006 || !sess.Retransmissions {
		t.Fatalf("session = %+v", sess)
	}
}

// TestSimulatedLinkFacade smoke-tests the simulated path helpers.
func TestSimulatedLinkFacade(t *testing.T) {
	desk := appshare.NewDesktop(640, 480)
	desk.CreateWindow(1, appshare.XYWH(10, 10, 200, 150))
	host, err := appshare.NewHost(appshare.HostConfig{Desktop: desk})
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()

	hostSide, partSide := appshare.SimulatedLink(appshare.LinkConfig{Seed: 1}, appshare.LinkConfig{Seed: 2})
	if _, err := host.AttachPacketConn("sim", hostSide, appshare.PacketOptions{}); err != nil {
		t.Fatal(err)
	}
	p := appshare.NewParticipant(appshare.ParticipantConfig{})
	conn := appshare.ConnectPacket(p, partSide)
	defer conn.Close()
	if err := conn.SendPLI(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "simulated link state", func() bool {
		if err := host.Tick(); err != nil {
			t.Fatal(err)
		}
		return len(p.Windows()) == 1
	})
}
