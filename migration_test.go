package appshare_test

import (
	"bytes"
	"fmt"
	"image/color"
	"io"
	"sync"
	"testing"
	"time"

	"appshare"
)

// recConn is a recording datagram endpoint: every packet the host
// sends is appended verbatim. Recv blocks until Close (the viewer
// never speaks), so the feedback pump stays parked.
type recConn struct {
	mu     sync.Mutex
	pkts   [][]byte
	closed chan struct{}
}

func newRecConn() *recConn { return &recConn{closed: make(chan struct{})} }

func (c *recConn) Send(pkt []byte) error {
	c.mu.Lock()
	c.pkts = append(c.pkts, append([]byte(nil), pkt...))
	c.mu.Unlock()
	return nil
}

func (c *recConn) SendBatch(pkts [][]byte) (int, error) {
	for _, pkt := range pkts {
		if err := c.Send(pkt); err != nil {
			return 0, err
		}
	}
	return len(pkts), nil
}

func (c *recConn) Recv() ([]byte, error) {
	<-c.closed
	return nil, io.EOF
}

func (c *recConn) Close() error {
	select {
	case <-c.closed:
	default:
		close(c.closed)
	}
	return nil
}

// taken returns the recorded packets and resets the log.
func (c *recConn) taken() [][]byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.pkts
	c.pkts = nil
	return out
}

// simClock is a manually advanced clock shared by both hosts.
type simClock struct {
	mu sync.Mutex
	t  time.Time
}

func newSimClock() *simClock { return &simClock{t: time.Unix(1_700_000_000, 0).UTC()} }

func (c *simClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *simClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// countingEntropy is a deterministic RTP entropy source.
func countingEntropy() func() uint32 {
	var n uint32 = 0x1000
	var mu sync.Mutex
	return func() uint32 {
		mu.Lock()
		defer mu.Unlock()
		n += 0x9E3779B9
		return n
	}
}

// mutateDesk applies the tick-i scripted desktop activity. It is
// applied identically to the original and the restored desktop, so any
// divergence in their output is the restore's fault.
func mutateDesk(desk *appshare.Desktop, i int) {
	win := desk.Window(1)
	win.Fill(appshare.XYWH(8*(i%6), 10, 48, 32), color.RGBA{uint8(40 * i), 0x20, uint8(255 - 16*i), 0xFF})
	win.DrawText(10, 100+4*(i%3), fmt.Sprintf("tick %d", i), color.RGBA{0xFF, 0xFF, 0xFF, 0xFF})
	if i%3 == 1 {
		win.Scroll(appshare.XYWH(0, 60, 180, 60), -8, color.RGBA{0x10, 0x10, 0x10, 0xFF})
	}
	if i%4 == 2 {
		_ = desk.MoveWindow(1, 20+2*i, 30)
	}
	desk.MoveCursor(15*i%280, 9*i%200)
}

// mkMigrationHost builds a session host over a fresh 320x240 desktop
// with one shared window.
func mkMigrationHost(t *testing.T, clk *simClock, shards int, entropy func() uint32) *appshare.Host {
	t.Helper()
	desk := appshare.NewDesktop(320, 240)
	desk.CreateWindow(1, appshare.XYWH(20, 30, 200, 150))
	desk.ShareAll()
	host, err := appshare.NewHost(appshare.HostConfig{
		Desktop:         desk,
		Now:             clk.Now,
		Entropy:         entropy,
		SendShards:      shards,
		StreamID:        7,
		Retransmissions: true,
		TileStore:       &appshare.TileStoreConfig{},
	})
	if err != nil {
		t.Fatal(err)
	}
	return host
}

// TestSnapshotRoundTripDeterminism proves live migration is invisible
// on the wire: after N ticks, RestoreSession(SnapshotSession(host))
// onto a fresh host yields byte-identical per-viewer output for the
// NEXT K ticks versus the original host continuing undisturbed. The
// restored host's entropy source panics, so the test also proves the
// restore path draws no randomness. Runs at 1 and 4 send shards (see
// -cpu in ci.sh for the race surface).
func TestSnapshotRoundTripDeterminism(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			clk := newSimClock()
			hostA := mkMigrationHost(t, clk, shards, countingEntropy())
			defer hostA.Close()

			connsA := map[string]*recConn{}
			for _, v := range []struct {
				id   string
				opts appshare.PacketOptions
			}{
				{"v1", appshare.PacketOptions{UserID: 11}},
				{"v2", appshare.PacketOptions{UserID: 12, TileStore: true}},
				{"v3", appshare.PacketOptions{UserID: 13, TileStore: true}},
			} {
				conn := newRecConn()
				if _, err := hostA.AttachPacketConn(v.id, conn, v.opts); err != nil {
					t.Fatal(err)
				}
				connsA[v.id] = conn
			}

			for i := 0; i < 6; i++ {
				mutateDesk(hostA.Desktop(), i)
				clk.advance(33 * time.Millisecond)
				if err := hostA.Tick(); err != nil {
					t.Fatalf("pre-snapshot tick %d: %v", i, err)
				}
			}

			snap, err := hostA.SnapshotSession()
			if err != nil {
				t.Fatal(err)
			}
			blob, err := snap.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			decoded, err := appshare.UnmarshalSessionSnapshot(blob)
			if err != nil {
				t.Fatal(err)
			}
			// The encoding is deterministic: re-marshaling the decoded
			// snapshot reproduces the bytes.
			blob2, err := decoded.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(blob, blob2) {
				t.Fatal("snapshot encoding is not canonical: marshal∘unmarshal∘marshal differs")
			}

			hostB := mkMigrationHost(t, clk, shards, func() uint32 {
				panic("restored host drew entropy")
			})
			defer hostB.Close()
			if err := hostB.RestoreSession(decoded); err != nil {
				t.Fatal(err)
			}
			connsB := map[string]*recConn{}
			for _, id := range []string{"v1", "v2", "v3"} {
				conn := newRecConn()
				if _, err := hostB.ResumePacketConn(id, conn, appshare.PacketOptions{}); err != nil {
					t.Fatal(err)
				}
				connsB[id] = conn
			}

			// Discard the pre-snapshot traffic; compare only the future.
			for _, conn := range connsA {
				conn.taken()
			}

			for i := 6; i < 12; i++ {
				mutateDesk(hostA.Desktop(), i)
				mutateDesk(hostB.Desktop(), i)
				clk.advance(33 * time.Millisecond)
				if err := hostA.Tick(); err != nil {
					t.Fatalf("original tick %d: %v", i, err)
				}
				if err := hostB.Tick(); err != nil {
					t.Fatalf("restored tick %d: %v", i, err)
				}
			}

			for _, id := range []string{"v1", "v2", "v3"} {
				a, b := connsA[id].taken(), connsB[id].taken()
				if len(a) == 0 {
					t.Fatalf("%s: original host sent nothing post-snapshot", id)
				}
				if len(a) != len(b) {
					t.Fatalf("%s: packet count diverged: original %d, restored %d", id, len(a), len(b))
				}
				for k := range a {
					if !bytes.Equal(a[k], b[k]) {
						t.Fatalf("%s: packet %d diverged after migration\noriginal: %x\nrestored: %x",
							id, k, a[k], b[k])
					}
				}
			}
			// A resumed session owes its viewers no refresh.
			if n := hostB.ServedRefreshes(); n != 0 {
				t.Fatalf("restored host served %d full refreshes; migration must cost zero", n)
			}
		})
	}
}

// TestRestoreSessionPreconditions pins the restore API's failure modes.
func TestRestoreSessionPreconditions(t *testing.T) {
	clk := newSimClock()
	hostA := mkMigrationHost(t, clk, 1, countingEntropy())
	defer hostA.Close()
	conn := newRecConn()
	if _, err := hostA.AttachPacketConn("v1", conn, appshare.PacketOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := hostA.Tick(); err != nil {
		t.Fatal(err)
	}
	snap, err := hostA.SnapshotSession()
	if err != nil {
		t.Fatal(err)
	}

	// A host with attached remotes refuses to restore over them.
	if err := hostA.RestoreSession(snap); err == nil {
		t.Fatal("restore over a live session succeeded")
	}

	hostB := mkMigrationHost(t, clk, 1, countingEntropy())
	defer hostB.Close()
	if _, err := hostB.ResumePacketConn("v1", newRecConn(), appshare.PacketOptions{}); err == nil {
		t.Fatal("resume before restore succeeded")
	}
	if err := hostB.RestoreSession(snap); err != nil {
		t.Fatal(err)
	}
	if _, err := hostB.ResumePacketConn("nope", newRecConn(), appshare.PacketOptions{}); err == nil {
		t.Fatal("resume of unknown remote succeeded")
	}
	if _, err := hostB.ResumePacketConn("v1", newRecConn(), appshare.PacketOptions{}); err != nil {
		t.Fatal(err)
	}
	// Double resume: the remote already has a live transport.
	if _, err := hostB.ResumePacketConn("v1", newRecConn(), appshare.PacketOptions{}); err == nil {
		t.Fatal("double resume succeeded")
	}
}
