package appshare_test

import (
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"appshare/internal/bfcp"
	"appshare/internal/core"
	"appshare/internal/hip"
	"appshare/internal/remoting"
	"appshare/internal/rtcp"
	"appshare/internal/rtp"
	"appshare/internal/sdp"
)

var updateFuzzCorpus = flag.Bool("update-fuzz-corpus", false, "rewrite the seeded testdata/fuzz corpora from the wire vectors")

// corpusSeed is one seeded fuzz-corpus file: a named input for a fuzz
// target, in `go test fuzz v1` encoding, derived from the frozen wire
// vectors so the fuzzers always start from real protocol bytes.
type corpusSeed struct {
	target string   // fuzz target (directory under testdata/fuzz)
	name   string   // corpus file name
	lines  []string // one encoded argument per line
}

func byteLit(b []byte) string { return "[]byte(" + strconv.Quote(string(b)) + ")" }

// loadWireVectors parses testdata/wire_vectors.txt into name→bytes.
func loadWireVectors(t *testing.T) map[string][]byte {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", "wire_vectors.txt"))
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][]byte{}
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed vector line %q", line)
		}
		b, err := hex.DecodeString(fields[1])
		if err != nil {
			t.Fatalf("vector %s: %v", fields[0], err)
		}
		out[fields[0]] = b
	}
	return out
}

// fuzzCorpusSeeds maps every wire vector onto the fuzz target that
// consumes its encoding, plus derived seeds for the targets the vector
// file cannot express directly (an RTP datagram wrapping the Figure 11
// payload, a reassembler push, the draft's Section 10.3 SDP).
func fuzzCorpusSeeds(t *testing.T) []corpusSeed {
	t.Helper()
	vec := loadWireVectors(t)
	get := func(name string) []byte {
		b, ok := vec[name]
		if !ok {
			t.Fatalf("wire vector %q missing from testdata/wire_vectors.txt", name)
		}
		return b
	}

	var seeds []corpusSeed
	add := func(target, name string, lines ...string) {
		seeds = append(seeds, corpusSeed{target: target, name: name, lines: lines})
	}
	for name := range vec {
		switch {
		case strings.HasPrefix(name, "HIP_"):
			add("FuzzHIPDecode", name, byteLit(get(name)))
		case strings.HasPrefix(name, "RTCP_"):
			add("FuzzRTCPDecode", name, byteLit(get(name)))
		case strings.HasPrefix(name, "BFCP_"):
			add("FuzzBFCPDecode", name, byteLit(get(name)))
		default:
			add("FuzzRemotingDecode", name, byteLit(get(name)))
		}
	}

	// An RTP datagram carrying the Figure 11 region update, exactly as a
	// host would put it on the wire.
	pkt := rtp.Packet{
		Header: rtp.Header{
			Marker:         true,
			PayloadType:    96,
			SequenceNumber: 100,
			Timestamp:      90000,
			SSRC:           0x11223344,
		},
		Payload: get("RegionUpdate_Figure11_payload"),
	}
	rtpBytes, err := pkt.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	add("FuzzRTPDecode", "RTP_RegionUpdate_Figure11", byteLit(rtpBytes))
	add("FuzzReassemblerPush", "RegionUpdate_Figure11_marker",
		byteLit(get("RegionUpdate_Figure11_payload")), "bool(true)")
	add("FuzzSDPParse", "SDP_Section10_3",
		"string("+strconv.Quote("v=0\r\ns=-\r\nt=0 0\r\n"+sdp.Example103)+")")

	return seeds
}

func corpusFileBody(s corpusSeed) string {
	return "go test fuzz v1\n" + strings.Join(s.lines, "\n") + "\n"
}

// parseCorpusValue decodes one `go test fuzz v1` argument line into its
// Go value (the subset of types our fuzz targets use).
func parseCorpusValue(line string) (any, error) {
	switch {
	case strings.HasPrefix(line, "[]byte(") && strings.HasSuffix(line, ")"):
		s, err := strconv.Unquote(line[len("[]byte(") : len(line)-1])
		return []byte(s), err
	case strings.HasPrefix(line, "string(") && strings.HasSuffix(line, ")"):
		s, err := strconv.Unquote(line[len("string(") : len(line)-1])
		return s, err
	case strings.HasPrefix(line, "bool(") && strings.HasSuffix(line, ")"):
		return strconv.ParseBool(line[len("bool(") : len(line)-1])
	default:
		return nil, fmt.Errorf("unsupported corpus value %q", line)
	}
}

// decodeCorpusEntry feeds one corpus entry to the decoder behind its
// fuzz target and reports the decode error (nil on success). Calling it
// at all also proves the decoder does not panic on the entry.
func decodeCorpusEntry(target string, vals []any) error {
	if len(vals) == 0 {
		return fmt.Errorf("no values")
	}
	switch target {
	case "FuzzRemotingDecode":
		_, err := remoting.DecodePayload(vals[0].([]byte))
		return err
	case "FuzzHIPDecode":
		_, err := hip.Unmarshal(vals[0].([]byte))
		return err
	case "FuzzRTCPDecode":
		_, err := rtcp.Unmarshal(vals[0].([]byte))
		return err
	case "FuzzRTPDecode":
		var p rtp.Packet
		return p.Unmarshal(vals[0].([]byte))
	case "FuzzBFCPDecode":
		_, err := bfcp.Unmarshal(vals[0].([]byte))
		return err
	case "FuzzSDPParse":
		_, err := sdp.Parse(vals[0].(string))
		return err
	case "FuzzReassemblerPush":
		if len(vals) != 2 {
			return fmt.Errorf("want 2 values, got %d", len(vals))
		}
		ra := core.NewReassembler()
		_, err := ra.Push(vals[0].([]byte), vals[1].(bool))
		return err
	default:
		return fmt.Errorf("unknown fuzz target %s", target)
	}
}

// TestFuzzCorpusSeeded pins the seeded fuzz corpora to the wire vectors:
// every expected corpus file exists with exactly the derived content,
// and its bytes still decode cleanly through the target's decoder. Run
// with -update-fuzz-corpus to (re)write the files after a deliberate
// wire-format change.
func TestFuzzCorpusSeeded(t *testing.T) {
	for _, s := range fuzzCorpusSeeds(t) {
		path := filepath.Join("testdata", "fuzz", s.target, s.name)
		body := corpusFileBody(s)
		if *updateFuzzCorpus {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("%s: missing seeded corpus file (run with -update-fuzz-corpus): %v", s.name, err)
			continue
		}
		if string(got) != body {
			t.Errorf("%s: corpus file drifted from wire vectors (run with -update-fuzz-corpus)", path)
			continue
		}
		vals := make([]any, 0, len(s.lines))
		for _, line := range s.lines {
			v, err := parseCorpusValue(line)
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			vals = append(vals, v)
		}
		if err := decodeCorpusEntry(s.target, vals); err != nil {
			t.Errorf("%s: seeded corpus entry no longer decodes: %v", path, err)
		}
	}
}

// TestFuzzCorpusWellFormed sweeps everything under testdata/fuzz —
// seeded entries and fuzzer-found ones alike — checking the `go test
// fuzz v1` framing and pushing each entry through its decoder. Found
// entries may decode to errors (that is often why the fuzzer kept
// them); the decoders just must handle them without panicking.
func TestFuzzCorpusWellFormed(t *testing.T) {
	root := filepath.Join("testdata", "fuzz")
	entries := 0
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		target := filepath.Base(filepath.Dir(path))
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
		if len(lines) < 2 || lines[0] != "go test fuzz v1" {
			t.Errorf("%s: not a go-fuzz v1 corpus file", path)
			return nil
		}
		vals := make([]any, 0, len(lines)-1)
		for _, line := range lines[1:] {
			v, err := parseCorpusValue(line)
			if err != nil {
				t.Errorf("%s: %v", path, err)
				return nil
			}
			vals = append(vals, v)
		}
		_ = decodeCorpusEntry(target, vals) // must not panic
		entries++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if entries == 0 {
		t.Fatal("no corpus entries found under testdata/fuzz")
	}
	t.Logf("checked %d corpus entries", entries)
}
