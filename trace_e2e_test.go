package appshare_test

import (
	"bytes"
	"image/color"
	"testing"
	"time"

	"appshare"
)

// TestRecordAndReplaySession records a live session trace, then replays
// it into a fresh participant and checks the replayed screen equals the
// live participant's screen — the offline-debugging workflow of
// cmd/ads-replay.
func TestRecordAndReplaySession(t *testing.T) {
	desk := appshare.NewDesktop(800, 600)
	win := desk.CreateWindow(1, appshare.XYWH(60, 50, 300, 220))
	host, err := appshare.NewHost(appshare.HostConfig{Desktop: desk})
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()

	hostSide, partSide := appshare.SimulatedLink(appshare.LinkConfig{Seed: 3}, appshare.LinkConfig{Seed: 4})
	if _, err := host.AttachPacketConn("rec", hostSide, appshare.PacketOptions{}); err != nil {
		t.Fatal(err)
	}
	live := appshare.NewParticipant(appshare.ParticipantConfig{})
	conn := appshare.ConnectPacket(live, partSide)
	defer conn.Close()

	var traceBuf bytes.Buffer
	tw, err := appshare.NewTraceWriter(&traceBuf)
	if err != nil {
		t.Fatal(err)
	}
	conn.RecordTo(tw)

	if err := conn.SendPLI(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "join", func() bool {
		if err := host.Tick(); err != nil {
			t.Fatal(err)
		}
		return len(live.Windows()) == 1
	})

	colors := []color.RGBA{
		{0xFF, 0, 0, 0xFF}, {0, 0xFF, 0, 0xFF}, {0, 0, 0xFF, 0xFF},
	}
	for i := 0; i < 15; i++ {
		win.Fill(appshare.XYWH(i*15, i*12, 60, 50), colors[i%3])
		if err := host.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(100 * time.Millisecond)
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}

	// Replay into a fresh participant.
	recs, err := appshare.ReadTrace(&traceBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 10 {
		t.Fatalf("trace has only %d records", len(recs))
	}
	replayed := appshare.NewParticipant(appshare.ParticipantConfig{})
	for _, rec := range recs {
		if len(rec.Packet) >= 2 && rec.Packet[1] >= 200 && rec.Packet[1] <= 207 {
			continue
		}
		if err := replayed.HandlePacket(rec.Packet); err != nil {
			t.Fatal(err)
		}
	}

	liveImg := live.WindowImage(win.ID())
	replayImg := replayed.WindowImage(win.ID())
	if liveImg == nil || replayImg == nil {
		t.Fatal("missing window image")
	}
	if !bytes.Equal(liveImg.Pix, replayImg.Pix) {
		t.Fatal("replayed screen differs from the live session")
	}
	// Offsets are monotonically non-decreasing.
	for i := 1; i < len(recs); i++ {
		if recs[i].Offset < recs[i-1].Offset {
			t.Fatalf("offsets not monotonic at %d: %v < %v", i, recs[i].Offset, recs[i-1].Offset)
		}
	}
}
