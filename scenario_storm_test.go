package appshare_test

import (
	"testing"

	"appshare/internal/netsim"
)

// TestScenarioStorms drives the flash-crowd-scale stress scenarios —
// 1000 UDP viewers joining in one tick, 100 Hz attach/detach churn, and
// a NACK storm from 1000 lossy viewers — against the sharded send path
// with every end-of-run oracle armed. These are the population-scale
// companions to TestScenarioMatrix's per-pathology link suite.
func TestScenarioStorms(t *testing.T) {
	if testing.Short() {
		t.Skip("storm scenarios run thousand-viewer fleets; skipped with -short")
	}
	for _, sc := range netsim.Storms() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res, err := netsim.Run(sc)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			for _, o := range res.Oracles {
				if o.Passed {
					continue
				}
				t.Errorf("oracle %s failed: %s", o.Name, o.Detail)
			}
			t.Logf("seed=%d ticks=%d journal=%d records digest=%s",
				res.Seed, res.TicksRun, len(res.Journal), res.Digest)
		})
	}
}

// TestStormShardInvariance is the replay-identity proof for the sharded
// send path: the same storm scenario must produce byte-identical
// journals with the single-lock build (SendShards=1) and the sharded
// build (SendShards=4). Per-remote byte streams are independent of
// cross-remote send order, and the runner's event heap imposes a total
// order on deliveries, so the digest must not move when fan-out spreads
// across sender goroutines.
func TestStormShardInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("storm scenarios run thousand-viewer fleets; skipped with -short")
	}
	for _, name := range []string{"flash-crowd", "churn-storm"} {
		name := name
		t.Run(name, func(t *testing.T) {
			sc, err := netsim.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			sc.SendShards = 1
			single, err := netsim.Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			sc.SendShards = 4
			sharded, err := netsim.Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			if !single.Passed() {
				t.Fatalf("single-lock run failed oracles: %v", single.Failures())
			}
			if !sharded.Passed() {
				t.Fatalf("sharded run failed oracles: %v", sharded.Failures())
			}
			if single.Digest != sharded.Digest {
				t.Fatalf("journal digest moved with shard count: shards=1 %s vs shards=4 %s",
					single.Digest, sharded.Digest)
			}
			t.Logf("shard-invariant digest=%s (%d records)", single.Digest, len(single.Journal))
		})
	}
}
