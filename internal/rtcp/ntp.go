package rtcp

import "time"

// NTP timestamp conversion (RFC 3550 Section 4). NTP time is seconds
// since 1900-01-01 in the high 32 bits and fractional seconds in the low
// 32 bits.

// ntpEpochOffset is the difference between the NTP epoch (1900) and the
// Unix epoch (1970) in seconds.
const ntpEpochOffset = 2208988800

// NTPTime converts a time.Time to a 64-bit NTP timestamp.
func NTPTime(t time.Time) uint64 {
	secs := uint64(t.Unix()) + ntpEpochOffset
	frac := uint64(t.Nanosecond()) << 32 / uint64(time.Second)
	return secs<<32 | frac
}

// NTPToTime converts a 64-bit NTP timestamp back to a time.Time.
func NTPToTime(ntp uint64) time.Time {
	secs := int64(ntp>>32) - ntpEpochOffset
	nanos := (ntp & 0xFFFFFFFF) * uint64(time.Second) >> 32
	return time.Unix(secs, int64(nanos))
}

// MiddleNTP returns the middle 32 bits of an NTP timestamp — the LSR
// value reception reports echo back for RTT computation.
func MiddleNTP(ntp uint64) uint32 { return uint32(ntp >> 16) }
