// Package rtcp implements the RTCP packet types the application-sharing
// draft relies on: the RFC 3550 report/housekeeping packets (SR, RR, SDES,
// BYE) and — centrally — the RFC 4585 AVPF feedback messages the draft's
// participant-to-AH channel uses:
//
//   - Picture Loss Indication (PLI, RFC 4585 Section 6.3.1): a late joiner
//     or desynchronized participant requests a WindowManagerInfo message
//     plus a full refresh of the shared region (draft Section 5.3.1).
//   - Generic NACK (RFC 4585 Section 6.2.1): a UDP participant names lost
//     RTP sequence numbers for retransmission (draft Section 5.3.2).
//
// Packets are encoded/decoded as RTCP compound packets.
package rtcp

import (
	"errors"
	"fmt"

	"appshare/internal/wire"
)

// RTCP packet types (RFC 3550 Section 12.1, RFC 4585 Section 6.1).
const (
	TypeSenderReport   = 200
	TypeReceiverReport = 201
	TypeSDES           = 202
	TypeBye            = 203
	TypeRTPFB          = 205 // transport layer feedback (Generic NACK)
	TypePSFB           = 206 // payload-specific feedback (PLI)
)

// Feedback message types (FMT field values, RFC 4585).
const (
	FMTGenericNACK = 1 // within RTPFB
	FMTPLI         = 1 // within PSFB
)

const version = 2

// Errors returned by Unmarshal.
var (
	ErrTruncated  = errors.New("rtcp: truncated packet")
	ErrBadVersion = errors.New("rtcp: bad version")
	ErrBadLength  = errors.New("rtcp: bad length field")
)

// Packet is any RTCP packet defined in this package.
type Packet interface {
	// AppendTo appends the full encoded packet (including its RTCP
	// header) to w.
	AppendTo(w *wire.Writer) error
}

// header writes the common 32-bit RTCP header. length is the packet length
// in bytes including the header; it must be a multiple of 4.
func header(w *wire.Writer, countOrFMT uint8, packetType uint8, lengthBytes int) error {
	if lengthBytes%4 != 0 {
		return fmt.Errorf("rtcp: length %d not a multiple of 4", lengthBytes)
	}
	if countOrFMT > 31 {
		return fmt.Errorf("rtcp: count/FMT %d exceeds 5 bits", countOrFMT)
	}
	w.Uint8(version<<6 | countOrFMT)
	w.Uint8(packetType)
	w.Uint16(uint16(lengthBytes/4 - 1))
	return nil
}

// PLI is a Picture Loss Indication (RFC 4585 Section 6.3.1). Receiving a
// PLI, the AH sends WindowManagerInfo followed by a full-region update
// (draft Section 5.3.1). Both TCP and UDP participants may send it.
type PLI struct {
	SenderSSRC uint32 // packet sender (the participant)
	MediaSSRC  uint32 // media source being refreshed (the AH's stream)
}

// AppendTo implements Packet.
func (p *PLI) AppendTo(w *wire.Writer) error {
	if err := header(w, FMTPLI, TypePSFB, 12); err != nil {
		return err
	}
	w.Uint32(p.SenderSSRC)
	w.Uint32(p.MediaSSRC)
	return nil
}

// NACK is a Generic NACK (RFC 4585 Section 6.2.1) listing lost RTP
// sequence numbers as (PID, BLP) pairs.
type NACK struct {
	SenderSSRC uint32
	MediaSSRC  uint32
	Pairs      []NACKPair
}

// NACKPair is one FCI entry: PID names a lost packet and each set bit i of
// BLP (bitmask of following lost packets) marks PID+i+1 as also lost.
type NACKPair struct {
	PID uint16
	BLP uint16
}

// AppendTo implements Packet.
func (n *NACK) AppendTo(w *wire.Writer) error {
	if len(n.Pairs) == 0 {
		return errors.New("rtcp: NACK with no pairs")
	}
	if err := header(w, FMTGenericNACK, TypeRTPFB, 12+4*len(n.Pairs)); err != nil {
		return err
	}
	w.Uint32(n.SenderSSRC)
	w.Uint32(n.MediaSSRC)
	for _, p := range n.Pairs {
		w.Uint16(p.PID)
		w.Uint16(p.BLP)
	}
	return nil
}

// Lost expands the (PID, BLP) pairs into the full list of lost sequence
// numbers, in the order encoded.
func (n *NACK) Lost() []uint16 {
	var out []uint16
	for _, p := range n.Pairs {
		out = append(out, p.PID)
		for i := 0; i < 16; i++ {
			if p.BLP&(1<<i) != 0 {
				out = append(out, p.PID+uint16(i)+1)
			}
		}
	}
	return out
}

// BuildNACKPairs compresses a sorted list of lost sequence numbers into
// (PID, BLP) pairs. Sequence numbers within 16 of a preceding PID fold
// into its bitmask.
func BuildNACKPairs(lost []uint16) []NACKPair {
	var out []NACKPair
	for i := 0; i < len(lost); {
		pair := NACKPair{PID: lost[i]}
		j := i + 1
		for ; j < len(lost); j++ {
			d := lost[j] - pair.PID
			if d == 0 || d > 16 {
				break
			}
			pair.BLP |= 1 << (d - 1)
		}
		out = append(out, pair)
		i = j
	}
	return out
}

// ReceptionReport is one report block of an SR/RR (RFC 3550 Section 6.4.1).
type ReceptionReport struct {
	SSRC             uint32
	FractionLost     uint8
	TotalLost        uint32 // 24 bits used
	HighestSeq       uint32
	Jitter           uint32
	LastSR           uint32
	DelaySinceLastSR uint32
}

func (r *ReceptionReport) appendTo(w *wire.Writer) {
	w.Uint32(r.SSRC)
	w.Uint32(uint32(r.FractionLost)<<24 | r.TotalLost&0xFFFFFF)
	w.Uint32(r.HighestSeq)
	w.Uint32(r.Jitter)
	w.Uint32(r.LastSR)
	w.Uint32(r.DelaySinceLastSR)
}

func parseReceptionReport(r *wire.Reader) ReceptionReport {
	var rr ReceptionReport
	rr.SSRC = r.Uint32()
	v := r.Uint32()
	rr.FractionLost = uint8(v >> 24)
	rr.TotalLost = v & 0xFFFFFF
	rr.HighestSeq = r.Uint32()
	rr.Jitter = r.Uint32()
	rr.LastSR = r.Uint32()
	rr.DelaySinceLastSR = r.Uint32()
	return rr
}

// SenderReport is an RTCP SR (RFC 3550 Section 6.4.1).
type SenderReport struct {
	SSRC        uint32
	NTPTime     uint64
	RTPTime     uint32
	PacketCount uint32
	OctetCount  uint32
	Reports     []ReceptionReport
}

// AppendTo implements Packet.
func (s *SenderReport) AppendTo(w *wire.Writer) error {
	if err := header(w, uint8(len(s.Reports)), TypeSenderReport, 28+24*len(s.Reports)); err != nil {
		return err
	}
	w.Uint32(s.SSRC)
	w.Uint32(uint32(s.NTPTime >> 32))
	w.Uint32(uint32(s.NTPTime))
	w.Uint32(s.RTPTime)
	w.Uint32(s.PacketCount)
	w.Uint32(s.OctetCount)
	for i := range s.Reports {
		s.Reports[i].appendTo(w)
	}
	return nil
}

// ReceiverReport is an RTCP RR (RFC 3550 Section 6.4.2).
type ReceiverReport struct {
	SSRC    uint32
	Reports []ReceptionReport
}

// AppendTo implements Packet.
func (r *ReceiverReport) AppendTo(w *wire.Writer) error {
	if err := header(w, uint8(len(r.Reports)), TypeReceiverReport, 8+24*len(r.Reports)); err != nil {
		return err
	}
	w.Uint32(r.SSRC)
	for i := range r.Reports {
		r.Reports[i].appendTo(w)
	}
	return nil
}

// SDES carries source description items; this implementation supports the
// mandatory CNAME item only (RFC 3550 Section 6.5).
type SDES struct {
	SSRC  uint32
	CNAME string
}

// AppendTo implements Packet.
func (s *SDES) AppendTo(w *wire.Writer) error {
	if len(s.CNAME) > 255 {
		return errors.New("rtcp: CNAME too long")
	}
	// chunk: SSRC + item(type, len, text) + terminating zero, padded to 4.
	itemLen := 4 + 2 + len(s.CNAME) + 1
	padded := (itemLen + 3) &^ 3
	if err := header(w, 1, TypeSDES, 4+padded); err != nil {
		return err
	}
	w.Uint32(s.SSRC)
	w.Uint8(1) // CNAME item type
	w.Uint8(uint8(len(s.CNAME)))
	w.Write([]byte(s.CNAME))
	// Terminating zero item plus pad to the 32-bit boundary.
	for i := itemLen - 1; i < padded; i++ {
		w.Uint8(0)
	}
	return nil
}

// Bye signals that sources are leaving the session (RFC 3550 Section 6.6).
type Bye struct {
	SSRCs []uint32
}

// AppendTo implements Packet.
func (b *Bye) AppendTo(w *wire.Writer) error {
	if err := header(w, uint8(len(b.SSRCs)), TypeBye, 4+4*len(b.SSRCs)); err != nil {
		return err
	}
	for _, s := range b.SSRCs {
		w.Uint32(s)
	}
	return nil
}

// Marshal encodes one or more RTCP packets as a compound packet.
func Marshal(pkts ...Packet) ([]byte, error) {
	w := wire.NewWriter(64)
	for _, p := range pkts {
		if err := p.AppendTo(w); err != nil {
			return nil, err
		}
	}
	return w.Bytes(), nil
}

// Unmarshal parses a compound RTCP packet into its constituent packets.
// Unknown packet types are skipped (their length field is honored).
func Unmarshal(buf []byte) ([]Packet, error) {
	var out []Packet
	for len(buf) > 0 {
		if len(buf) < 4 {
			return nil, ErrTruncated
		}
		if buf[0]>>6 != version {
			return nil, fmt.Errorf("%w: %d", ErrBadVersion, buf[0]>>6)
		}
		countOrFMT := buf[0] & 0x1F
		pt := buf[1]
		length := (int(buf[2])<<8 | int(buf[3]) + 1) * 4
		if length > len(buf) {
			return nil, fmt.Errorf("%w: %d > %d", ErrBadLength, length, len(buf))
		}
		body := wire.NewReader(buf[4:length])
		pkt, err := parseOne(countOrFMT, pt, body)
		if err != nil {
			return nil, err
		}
		if pkt != nil {
			out = append(out, pkt)
		}
		buf = buf[length:]
	}
	return out, nil
}

func parseOne(countOrFMT, pt uint8, r *wire.Reader) (Packet, error) {
	switch pt {
	case TypePSFB:
		if countOrFMT != FMTPLI {
			return nil, nil // other PSFB types not used by the draft
		}
		p := &PLI{SenderSSRC: r.Uint32(), MediaSSRC: r.Uint32()}
		return p, r.Err()
	case TypeRTPFB:
		if countOrFMT != FMTGenericNACK {
			return nil, nil
		}
		n := &NACK{SenderSSRC: r.Uint32(), MediaSSRC: r.Uint32()}
		for r.Len() >= 4 {
			n.Pairs = append(n.Pairs, NACKPair{PID: r.Uint16(), BLP: r.Uint16()})
		}
		if len(n.Pairs) == 0 && r.Err() == nil {
			return nil, errors.New("rtcp: NACK with no pairs")
		}
		return n, r.Err()
	case TypeSenderReport:
		s := &SenderReport{SSRC: r.Uint32()}
		s.NTPTime = uint64(r.Uint32())<<32 | uint64(r.Uint32())
		s.RTPTime = r.Uint32()
		s.PacketCount = r.Uint32()
		s.OctetCount = r.Uint32()
		for i := 0; i < int(countOrFMT); i++ {
			s.Reports = append(s.Reports, parseReceptionReport(r))
		}
		return s, r.Err()
	case TypeReceiverReport:
		rr := &ReceiverReport{SSRC: r.Uint32()}
		for i := 0; i < int(countOrFMT); i++ {
			rr.Reports = append(rr.Reports, parseReceptionReport(r))
		}
		return rr, r.Err()
	case TypeSDES:
		if countOrFMT == 0 {
			return &SDES{}, nil
		}
		s := &SDES{SSRC: r.Uint32()}
		itemType := r.Uint8()
		if itemType == 1 {
			n := int(r.Uint8())
			s.CNAME = string(r.Bytes(n))
		}
		return s, r.Err()
	case TypeBye:
		b := &Bye{}
		for i := 0; i < int(countOrFMT); i++ {
			b.SSRCs = append(b.SSRCs, r.Uint32())
		}
		return b, r.Err()
	default:
		return nil, nil // skip unknown types
	}
}
