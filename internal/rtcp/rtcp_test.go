package rtcp

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestPLIRoundtrip(t *testing.T) {
	in := &PLI{SenderSSRC: 0x11111111, MediaSSRC: 0x22222222}
	buf, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != 12 {
		t.Fatalf("PLI length = %d, want 12", len(buf))
	}
	// RFC 4585: PT=206 (PSFB), FMT=1.
	if buf[1] != TypePSFB {
		t.Fatalf("PT = %d, want %d", buf[1], TypePSFB)
	}
	if buf[0]&0x1F != FMTPLI {
		t.Fatalf("FMT = %d, want %d", buf[0]&0x1F, FMTPLI)
	}
	pkts, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := pkts[0].(*PLI)
	if !ok || *got != *in {
		t.Fatalf("roundtrip = %#v, want %#v", pkts[0], in)
	}
}

func TestNACKRoundtrip(t *testing.T) {
	in := &NACK{
		SenderSSRC: 1,
		MediaSSRC:  2,
		Pairs:      []NACKPair{{PID: 100, BLP: 0b1010}, {PID: 300, BLP: 0}},
	}
	buf, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if buf[1] != TypeRTPFB || buf[0]&0x1F != FMTGenericNACK {
		t.Fatalf("PT/FMT = %d/%d", buf[1], buf[0]&0x1F)
	}
	pkts, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := pkts[0].(*NACK)
	if !ok || !reflect.DeepEqual(got, in) {
		t.Fatalf("roundtrip = %#v, want %#v", pkts[0], in)
	}
	want := []uint16{100, 102, 104, 300}
	if !reflect.DeepEqual(got.Lost(), want) {
		t.Fatalf("Lost = %v, want %v", got.Lost(), want)
	}
}

func TestNACKEmptyRejected(t *testing.T) {
	if _, err := Marshal(&NACK{}); err == nil {
		t.Fatal("empty NACK should fail to marshal")
	}
}

func TestBuildNACKPairs(t *testing.T) {
	lost := []uint16{10, 11, 26, 27, 100}
	pairs := BuildNACKPairs(lost)
	// 10 packs 11 (bit 0) and 26 (bit 15); 27 overflows into next pair.
	want := []NACKPair{{PID: 10, BLP: 1 | 1<<15}, {PID: 27, BLP: 0}, {PID: 100, BLP: 0}}
	if !reflect.DeepEqual(pairs, want) {
		t.Fatalf("pairs = %v, want %v", pairs, want)
	}
}

func TestQuickNACKPairExpansion(t *testing.T) {
	// BuildNACKPairs then Lost must reproduce the input exactly for any
	// sorted unique list of sequence numbers (no wraparound in list).
	f := func(raw []uint16) bool {
		seen := map[uint16]bool{}
		var lost []uint16
		for _, s := range raw {
			s %= 4096 // keep in a window without wraparound
			if !seen[s] {
				seen[s] = true
				lost = append(lost, s)
			}
		}
		sort.Slice(lost, func(i, j int) bool { return lost[i] < lost[j] })
		if len(lost) == 0 {
			return true
		}
		n := &NACK{Pairs: BuildNACKPairs(lost)}
		return reflect.DeepEqual(n.Lost(), lost)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSenderReportRoundtrip(t *testing.T) {
	in := &SenderReport{
		SSRC:        7,
		NTPTime:     0x0102030405060708,
		RTPTime:     90000,
		PacketCount: 55,
		OctetCount:  5555,
		Reports: []ReceptionReport{{
			SSRC:         9,
			FractionLost: 12,
			TotalLost:    345,
			HighestSeq:   6789,
			Jitter:       10,
			LastSR:       11,
		}},
	}
	buf, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := pkts[0].(*SenderReport)
	if !ok || !reflect.DeepEqual(got, in) {
		t.Fatalf("roundtrip = %#v, want %#v", pkts[0], in)
	}
}

func TestReceiverReportRoundtrip(t *testing.T) {
	in := &ReceiverReport{SSRC: 3, Reports: []ReceptionReport{{SSRC: 4, HighestSeq: 99}}}
	buf, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := pkts[0].(*ReceiverReport); !ok || !reflect.DeepEqual(got, in) {
		t.Fatalf("roundtrip = %#v, want %#v", pkts[0], in)
	}
}

func TestSDESRoundtrip(t *testing.T) {
	in := &SDES{SSRC: 42, CNAME: "participant@example.com"}
	buf, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf)%4 != 0 {
		t.Fatalf("SDES not 32-bit aligned: %d bytes", len(buf))
	}
	pkts, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := pkts[0].(*SDES); !ok || got.SSRC != 42 || got.CNAME != in.CNAME {
		t.Fatalf("roundtrip = %#v", pkts[0])
	}
}

func TestByeRoundtrip(t *testing.T) {
	in := &Bye{SSRCs: []uint32{1, 2, 3}}
	buf, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := pkts[0].(*Bye); !ok || !reflect.DeepEqual(got, in) {
		t.Fatalf("roundtrip = %#v, want %#v", pkts[0], in)
	}
}

func TestCompoundPacket(t *testing.T) {
	buf, err := Marshal(
		&ReceiverReport{SSRC: 1},
		&PLI{SenderSSRC: 1, MediaSSRC: 2},
		&NACK{SenderSSRC: 1, MediaSSRC: 2, Pairs: []NACKPair{{PID: 5}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 3 {
		t.Fatalf("parsed %d packets, want 3", len(pkts))
	}
	if _, ok := pkts[0].(*ReceiverReport); !ok {
		t.Errorf("pkt 0 = %T, want *ReceiverReport", pkts[0])
	}
	if _, ok := pkts[1].(*PLI); !ok {
		t.Errorf("pkt 1 = %T, want *PLI", pkts[1])
	}
	if _, ok := pkts[2].(*NACK); !ok {
		t.Errorf("pkt 2 = %T, want *NACK", pkts[2])
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal([]byte{0x80, 200}); err == nil {
		t.Error("short packet should fail")
	}
	if _, err := Unmarshal([]byte{0x00, 200, 0, 0}); err == nil {
		t.Error("bad version should fail")
	}
	// Length field pointing past the buffer.
	if _, err := Unmarshal([]byte{0x80, 200, 0x0F, 0xFF}); err == nil {
		t.Error("bad length should fail")
	}
}

func TestUnknownTypeSkipped(t *testing.T) {
	// APP packet (204) followed by a PLI: the APP must be skipped.
	app := []byte{0x80, 204, 0, 2, 0, 0, 0, 1, 'n', 'a', 'm', 'e'}
	pli, err := Marshal(&PLI{SenderSSRC: 9, MediaSSRC: 10})
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := Unmarshal(append(app, pli...))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 1 {
		t.Fatalf("parsed %d packets, want 1", len(pkts))
	}
	if _, ok := pkts[0].(*PLI); !ok {
		t.Fatalf("pkt = %T, want *PLI", pkts[0])
	}
}
