package codec

import (
	"bytes"
	"fmt"
	"image"
	"image/color"
	"testing"
)

func testKey(i int) CacheKey {
	return CacheKey{PT: PayloadTypePNG, W: 8, H: 8, H1: uint64(i), H2: uint64(i) ^ lane2Seed}
}

func TestPayloadCacheHitMissAccounting(t *testing.T) {
	c := NewPayloadCache(1 << 20)
	k := testKey(1)
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	payload := bytes.Repeat([]byte{0xAB}, 100)
	c.Put(k, payload)
	got, ok := c.Get(k)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get after Put = %v, %v", got, ok)
	}
	if _, ok := c.Get(testKey(2)); ok {
		t.Fatal("hit for never-inserted key")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 2 {
		t.Fatalf("hits/misses = %d/%d, want 1/2", s.Hits, s.Misses)
	}
	if s.HitBytes != 100 || s.MissBytes != 100 {
		t.Fatalf("hitBytes/missBytes = %d/%d, want 100/100", s.HitBytes, s.MissBytes)
	}
	if s.Entries != 1 || s.Bytes != 100 {
		t.Fatalf("entries/bytes = %d/%d, want 1/100", s.Entries, s.Bytes)
	}
	if s.HitRate() != 1.0/3.0 {
		t.Fatalf("hit rate = %v", s.HitRate())
	}
}

func TestPayloadCacheLRUEviction(t *testing.T) {
	// Budget holds exactly four 100-byte payloads.
	c := NewPayloadCache(400)
	for i := 0; i < 4; i++ {
		c.Put(testKey(i), bytes.Repeat([]byte{byte(i)}, 100))
	}
	// Touch key 0 so key 1 becomes the least recently used.
	if _, ok := c.Get(testKey(0)); !ok {
		t.Fatal("key 0 should be resident")
	}
	// Inserting a fifth payload must evict exactly key 1.
	c.Put(testKey(4), bytes.Repeat([]byte{4}, 100))
	if _, ok := c.Get(testKey(1)); ok {
		t.Fatal("LRU key 1 survived eviction")
	}
	for _, i := range []int{0, 2, 3, 4} {
		if _, ok := c.Get(testKey(i)); !ok {
			t.Fatalf("key %d evicted, want resident", i)
		}
	}
	s := c.Stats()
	if s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
	if s.Bytes > 400 {
		t.Fatalf("resident bytes %d exceed budget 400", s.Bytes)
	}
}

func TestPayloadCacheByteBound(t *testing.T) {
	c := NewPayloadCache(250)
	for i := 0; i < 32; i++ {
		c.Put(testKey(i), bytes.Repeat([]byte{byte(i)}, 100))
		if s := c.Stats(); s.Bytes > 250 {
			t.Fatalf("after insert %d: resident bytes %d exceed budget", i, s.Bytes)
		}
	}
	if s := c.Stats(); s.Entries != 2 {
		t.Fatalf("entries = %d, want 2 within a 250-byte budget", s.Entries)
	}
}

func TestPayloadCacheOversizePayloadNotStored(t *testing.T) {
	c := NewPayloadCache(100)
	c.Put(testKey(1), make([]byte, 101))
	if s := c.Stats(); s.Entries != 0 || s.Bytes != 0 {
		t.Fatalf("oversize payload was cached: %+v", s)
	}
}

func TestPayloadCacheReplaceSameKey(t *testing.T) {
	c := NewPayloadCache(1000)
	k := testKey(1)
	c.Put(k, make([]byte, 100))
	c.Put(k, make([]byte, 300))
	s := c.Stats()
	if s.Entries != 1 || s.Bytes != 300 {
		t.Fatalf("after replace: entries/bytes = %d/%d, want 1/300", s.Entries, s.Bytes)
	}
	got, ok := c.Get(k)
	if !ok || len(got) != 300 {
		t.Fatalf("replaced payload len = %d, %v", len(got), ok)
	}
}

func TestKeyForDistinguishesContentAndShape(t *testing.T) {
	img := image.NewRGBA(image.Rect(0, 0, 16, 16))
	for i := range img.Pix {
		img.Pix[i] = byte(i * 7)
	}
	base := KeyFor(PayloadTypePNG, img, img.Bounds())
	if again := KeyFor(PayloadTypePNG, img, img.Bounds()); again != base {
		t.Fatal("same pixels hashed to different keys")
	}
	if k := KeyFor(PayloadTypeJPEG, img, img.Bounds()); k == base {
		t.Fatal("payload type not part of the key")
	}
	if k := KeyFor(PayloadTypePNG, img, image.Rect(0, 0, 8, 16)); k == base {
		t.Fatal("sub-rectangle hashed to the full-image key")
	}
	img.Pix[0] ^= 0xFF
	if k := KeyFor(PayloadTypePNG, img, img.Bounds()); k == base {
		t.Fatal("pixel change did not change the key")
	}
}

// TestKeyForSubRegion verifies hashing respects the rect, not the whole
// backing array: the same pixels at different offsets of different
// images must collide (that is the cross-window dedup property).
func TestKeyForSubRegion(t *testing.T) {
	a := image.NewRGBA(image.Rect(0, 0, 32, 32))
	b := image.NewRGBA(image.Rect(0, 0, 64, 64))
	fill := func(img *image.RGBA, r image.Rectangle) {
		for y := r.Min.Y; y < r.Max.Y; y++ {
			for x := r.Min.X; x < r.Max.X; x++ {
				img.SetRGBA(x, y, color.RGBA{R: byte(x * y), G: byte(x), B: byte(y), A: 255})
			}
		}
	}
	fill(a, image.Rect(0, 0, 8, 8))
	// Same pixel values, placed at an offset in a larger image.
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			b.SetRGBA(x+16, y+24, a.RGBAAt(x, y))
		}
	}
	ka := KeyFor(PayloadTypePNG, a, image.Rect(0, 0, 8, 8))
	kb := KeyFor(PayloadTypePNG, b, image.Rect(16, 24, 24, 32))
	if ka != kb {
		t.Fatal("identical 8x8 content at different offsets must share a key")
	}
}

func TestPayloadCacheDisabled(t *testing.T) {
	c := NewPayloadCache(0)
	c.Put(testKey(1), []byte{1})
	if _, ok := c.Get(testKey(1)); ok {
		t.Fatal("zero-budget cache stored a payload")
	}
}

func TestSortedPayloadTypes(t *testing.T) {
	// Register out of ascending order; PayloadTypes must sort.
	r, err := NewRegistry(Raw{}, PNG{}, JPEG{})
	if err != nil {
		t.Fatal(err)
	}
	got := fmt.Sprint(r.PayloadTypes())
	want := fmt.Sprint([]uint8{PayloadTypePNG, PayloadTypeJPEG, PayloadTypeRaw})
	if got != want {
		t.Fatalf("PayloadTypes() = %s, want %s", got, want)
	}
}
