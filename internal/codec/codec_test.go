package codec

import (
	"bytes"
	"image"
	"image/color"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// syntheticImage renders text-like screen content: flat background with
// regular dark glyph blocks.
func syntheticImage(w, h int) *image.RGBA {
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	bg := color.RGBA{0xF0, 0xF0, 0xF0, 0xFF}
	fg := color.RGBA{0x10, 0x10, 0x30, 0xFF}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			img.SetRGBA(x, y, bg)
		}
	}
	for row := 4; row < h-4; row += 12 {
		for x := 4; x < w-4; x++ {
			if (x/3)%2 == 0 {
				for dy := 0; dy < 8 && row+dy < h; dy++ {
					img.SetRGBA(x, row+dy, fg)
				}
			}
		}
	}
	return img
}

// photoImage renders smooth noisy gradients approximating a photograph.
func photoImage(w, h int, seed int64) *image.RGBA {
	rng := rand.New(rand.NewSource(seed))
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			img.SetRGBA(x, y, color.RGBA{
				R: uint8(x*255/w + rng.Intn(17)),
				G: uint8(y*255/h + rng.Intn(17)),
				B: uint8((x+y)*255/(w+h) + rng.Intn(17)),
				A: 0xFF,
			})
		}
	}
	return img
}

func imagesEqual(a, b *image.RGBA) bool {
	return a.Bounds() == b.Bounds() && bytes.Equal(a.Pix, b.Pix)
}

func TestPNGLosslessRoundtrip(t *testing.T) {
	img := syntheticImage(160, 120)
	c := PNG{}
	data, err := c.Encode(img)
	if err != nil {
		t.Fatal(err)
	}
	back, err := c.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !imagesEqual(img, back) {
		t.Fatal("PNG roundtrip is not lossless")
	}
	if !c.Lossless() {
		t.Fatal("PNG must report lossless")
	}
}

func TestRawLosslessRoundtrip(t *testing.T) {
	img := photoImage(63, 41, 1)
	c := Raw{}
	data, err := c.Encode(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 8+4*63*41 {
		t.Fatalf("raw size = %d, want %d", len(data), 8+4*63*41)
	}
	back, err := c.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !imagesEqual(img, back) {
		t.Fatal("raw roundtrip mismatch")
	}
}

func TestRawDecodeRejects(t *testing.T) {
	c := Raw{}
	if _, err := c.Decode([]byte{0, 0}); err == nil {
		t.Error("short header should fail")
	}
	if _, err := c.Decode([]byte{0, 0, 0, 0, 0, 0, 0, 4}); err == nil {
		t.Error("zero width should fail")
	}
	// Header promises more pixels than present.
	if _, err := c.Decode([]byte{0, 0, 0, 8, 0, 0, 0, 8, 1, 2, 3}); err == nil {
		t.Error("truncated pixels should fail")
	}
	// Implausible dimensions.
	if _, err := c.Decode([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 1}); err == nil {
		t.Error("huge dimensions should fail")
	}
}

func TestJPEGLossyButClose(t *testing.T) {
	img := photoImage(64, 64, 2)
	c := JPEG{Quality: 90}
	data, err := c.Encode(img)
	if err != nil {
		t.Fatal(err)
	}
	back, err := c.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Bounds() != img.Bounds() {
		t.Fatalf("bounds changed: %v", back.Bounds())
	}
	if c.Lossless() {
		t.Fatal("JPEG must report lossy")
	}
	// Mean absolute error should be small at Q90.
	var mae float64
	for i := range img.Pix {
		mae += math.Abs(float64(img.Pix[i]) - float64(back.Pix[i]))
	}
	mae /= float64(len(img.Pix))
	if mae > 12 {
		t.Fatalf("JPEG Q90 MAE = %.1f, want <= 12", mae)
	}
}

// TestCodecContentMatrix reproduces the draft Section 4.2 claim (E10):
// PNG beats JPEG on synthetic content (and is lossless); JPEG beats PNG
// on photographic content.
func TestCodecContentMatrix(t *testing.T) {
	synth := syntheticImage(320, 240)
	photo := photoImage(320, 240, 3)

	encSize := func(c Codec, img *image.RGBA) int {
		data, err := c.Encode(img)
		if err != nil {
			t.Fatal(err)
		}
		return len(data)
	}
	pngSynth := encSize(PNG{}, synth)
	jpegSynth := encSize(JPEG{Quality: 75}, synth)
	pngPhoto := encSize(PNG{}, photo)
	jpegPhoto := encSize(JPEG{Quality: 75}, photo)
	rawSize := encSize(Raw{}, synth)

	if pngSynth >= jpegSynth {
		t.Errorf("synthetic: PNG (%d) should beat JPEG (%d)", pngSynth, jpegSynth)
	}
	if jpegPhoto >= pngPhoto {
		t.Errorf("photo: JPEG (%d) should beat PNG (%d)", jpegPhoto, pngPhoto)
	}
	if pngSynth >= rawSize/4 {
		t.Errorf("PNG on synthetic (%d) should compress raw (%d) by > 4x", pngSynth, rawSize)
	}
}

func TestClassify(t *testing.T) {
	if got := Classify(syntheticImage(200, 150)); got != ClassSynthetic {
		t.Errorf("synthetic classified as %v", got)
	}
	if got := Classify(photoImage(200, 150, 4)); got != ClassPhotographic {
		t.Errorf("photo classified as %v", got)
	}
	if got := Classify(image.NewRGBA(image.Rect(0, 0, 0, 0))); got != ClassSynthetic {
		t.Errorf("empty classified as %v", got)
	}
	if ClassSynthetic.String() != "synthetic" || ClassPhotographic.String() != "photographic" {
		t.Error("class names wrong")
	}
}

func TestChooseCodec(t *testing.T) {
	png, jp := PNG{}, JPEG{Quality: 80}
	if got := ChooseCodec(syntheticImage(100, 100), png, jp); got.Name() != "png" {
		t.Errorf("synthetic chose %s", got.Name())
	}
	if got := ChooseCodec(photoImage(100, 100, 5), png, jp); got.Name() != "jpeg" {
		t.Errorf("photo chose %s", got.Name())
	}
}

func TestRegistry(t *testing.T) {
	r := DefaultRegistry()
	for pt, name := range map[uint8]string{PayloadTypePNG: "png", PayloadTypeJPEG: "jpeg", PayloadTypeRaw: "raw"} {
		c, err := r.Lookup(pt)
		if err != nil {
			t.Fatalf("Lookup(%d): %v", pt, err)
		}
		if c.Name() != name {
			t.Errorf("PT %d = %s, want %s", pt, c.Name(), name)
		}
	}
	if _, err := r.Lookup(50); err == nil {
		t.Error("unknown PT should fail")
	}
	if err := r.Register(PayloadTypePNG, PNG{}); err == nil {
		t.Error("duplicate registration should fail")
	}
	if err := r.Register(0x80, PNG{}); err == nil {
		t.Error("8-bit PT should fail")
	}
	if len(r.PayloadTypes()) != 3 {
		t.Errorf("payload types = %v", r.PayloadTypes())
	}
}

func TestEncodeSubImage(t *testing.T) {
	fb := syntheticImage(320, 240)
	data, err := EncodeSubImage(PNG{}, fb, image.Rect(10, 20, 110, 120))
	if err != nil {
		t.Fatal(err)
	}
	back, err := (PNG{}).Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Bounds().Dx() != 100 || back.Bounds().Dy() != 100 {
		t.Fatalf("decoded size = %v", back.Bounds())
	}
	// Pixel check against the source.
	for y := 0; y < 100; y += 7 {
		for x := 0; x < 100; x += 7 {
			if back.RGBAAt(x, y) != fb.RGBAAt(x+10, y+20) {
				t.Fatalf("pixel (%d,%d) mismatch", x, y)
			}
		}
	}
	// Out-of-bounds rect clips; fully outside fails.
	if _, err := EncodeSubImage(PNG{}, fb, image.Rect(1000, 1000, 1100, 1100)); err != ErrEmptyImage {
		t.Fatalf("outside rect err = %v, want ErrEmptyImage", err)
	}
}

func TestQuickRawRoundtrip(t *testing.T) {
	f := func(w8, h8 uint8, seed int64) bool {
		w, h := int(w8%64)+1, int(h8%64)+1
		img := photoImage(w, h, seed)
		data, err := (Raw{}).Encode(img)
		if err != nil {
			return false
		}
		back, err := (Raw{}).Decode(data)
		if err != nil {
			return false
		}
		return imagesEqual(img, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPNGRoundtrip(t *testing.T) {
	f := func(w8, h8 uint8, seed int64) bool {
		w, h := int(w8%48)+1, int(h8%48)+1
		img := photoImage(w, h, seed)
		data, err := (PNG{}).Encode(img)
		if err != nil {
			return false
		}
		back, err := (PNG{}).Decode(data)
		if err != nil {
			return false
		}
		return imagesEqual(img, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
