package codec

import "image"

// ContentClass labels the dominant character of a screen region, driving
// the draft Section 4.2 guidance: PNG "is more suitable for computer
// generated images", JPEG "more suitable for photographic images".
type ContentClass int

// Content classes.
const (
	// ClassSynthetic is computer-generated content: text, UI chrome,
	// flat fills — few distinct colors, hard edges.
	ClassSynthetic ContentClass = iota
	// ClassPhotographic is natural-image content: many distinct colors,
	// smooth gradients.
	ClassPhotographic
)

// String implements fmt.Stringer.
func (c ContentClass) String() string {
	if c == ClassSynthetic {
		return "synthetic"
	}
	return "photographic"
}

// Classify inspects a region and estimates its content class using a
// distinct-color-ratio heuristic: synthetic screen content (text, UI)
// repeats a handful of palette colors, while photographic content has
// nearly as many distinct colors as pixels. The sampling is bounded so
// classification stays cheap for large regions.
func Classify(img *image.RGBA) ContentClass {
	b := img.Bounds()
	total := b.Dx() * b.Dy()
	if total == 0 {
		return ClassSynthetic
	}
	// Sample at most ~4096 pixels on a grid.
	step := 1
	for (b.Dx()/step)*(b.Dy()/step) > 4096 {
		step++
	}
	colors := make(map[uint32]struct{}, 1024)
	samples := 0
	for y := b.Min.Y; y < b.Max.Y; y += step {
		for x := b.Min.X; x < b.Max.X; x += step {
			i := img.PixOffset(x, y)
			c := uint32(img.Pix[i])<<16 | uint32(img.Pix[i+1])<<8 | uint32(img.Pix[i+2])
			colors[c] = struct{}{}
			samples++
		}
	}
	if samples == 0 {
		return ClassSynthetic
	}
	// Synthetic content keeps the distinct-color ratio low even after
	// anti-aliasing; photographs approach 1.0.
	if float64(len(colors))/float64(samples) > 0.35 {
		return ClassPhotographic
	}
	return ClassSynthetic
}

// ChooseCodec picks a codec for a region per the Section 4.2 guidance:
// lossless PNG for synthetic content, JPEG for photographic content. The
// caller supplies the two codecs so quality settings are preserved.
func ChooseCodec(img *image.RGBA, forSynthetic, forPhotographic Codec) Codec {
	if Classify(img) == ClassSynthetic {
		return forSynthetic
	}
	return forPhotographic
}
