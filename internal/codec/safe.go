package codec

import (
	"bytes"
	"fmt"
	"image"
	_ "image/jpeg" // register for DecodeConfig
	_ "image/png"  // register for DecodeConfig
)

// DefaultMaxPixels bounds a decoded RegionUpdate at 16 megapixels —
// comfortably above any real desktop, far below a decompression bomb.
const DefaultMaxPixels = 16 << 20

// SafeDecode decodes data with c after verifying the declared image
// dimensions. A hostile AH (or attacker injecting RegionUpdates) could
// otherwise declare a 65535x65535 PNG that decompresses from a few KB
// into 17 GB of pixels — the resource-exhaustion risk the draft's
// Security Considerations (Section 8) warns about. maxPixels <= 0 uses
// DefaultMaxPixels.
func SafeDecode(c Codec, data []byte, maxPixels int) (*image.RGBA, error) {
	if maxPixels <= 0 {
		maxPixels = DefaultMaxPixels
	}
	w, h, err := declaredBounds(c, data)
	if err != nil {
		return nil, err
	}
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("codec: declared size %dx%d invalid", w, h)
	}
	if w > maxPixels || h > maxPixels || w*h > maxPixels {
		return nil, fmt.Errorf("codec: declared size %dx%d exceeds the %d-pixel limit", w, h, maxPixels)
	}
	return c.Decode(data)
}

// declaredBounds reads the image dimensions from the payload header
// without decoding pixel data.
func declaredBounds(c Codec, data []byte) (w, h int, err error) {
	switch c.(type) {
	case PNG, JPEG:
		cfg, _, err := image.DecodeConfig(bytes.NewReader(data))
		if err != nil {
			return 0, 0, fmt.Errorf("codec: decode config: %w", err)
		}
		return cfg.Width, cfg.Height, nil
	case Raw:
		if len(data) < 8 {
			return 0, 0, fmt.Errorf("codec: raw header truncated")
		}
		w = int(uint32(data[0])<<24 | uint32(data[1])<<16 | uint32(data[2])<<8 | uint32(data[3]))
		h = int(uint32(data[4])<<24 | uint32(data[5])<<16 | uint32(data[6])<<8 | uint32(data[7]))
		return w, h, nil
	default:
		// Unknown codec: decode and measure (the codec enforces its own
		// limits, as Raw does).
		img, err := c.Decode(data)
		if err != nil {
			return 0, 0, err
		}
		return img.Bounds().Dx(), img.Bounds().Dy(), nil
	}
}
