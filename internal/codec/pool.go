package codec

import (
	"bytes"
	"image"
	"image/png"
	"sync"
)

// Pooling of encode-path scratch memory. The capture pipeline encodes
// many small regions per tick; without reuse every region costs a fresh
// crop image, a fresh bytes.Buffer (grown in several steps by the
// compressors) and a fresh zlib state inside image/png. The pools below
// keep those allocations out of the steady state. All pools are safe for
// concurrent use, which the parallel encode workers rely on.

// maxPooledBufBytes bounds the capacity of a bytes.Buffer kept for
// reuse; a pathological giant encode should not pin memory forever.
const maxPooledBufBytes = 4 << 20

// maxPooledPixBytes bounds the pixel backing arrays kept for reuse
// (4 MiB holds a 1024x1024 RGBA crop).
const maxPooledPixBytes = 4 << 20

var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// getBuffer returns an empty scratch buffer.
func getBuffer() *bytes.Buffer {
	b := bufPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

// putBuffer returns a scratch buffer to the pool.
func putBuffer(b *bytes.Buffer) {
	if b.Cap() > maxPooledBufBytes {
		return
	}
	bufPool.Put(b)
}

var rgbaPool sync.Pool

// GetRGBA returns a zero-origin w x h RGBA whose pixel contents are
// undefined, reusing a pooled backing array when one is large enough.
// Callers that do not overwrite every pixel must clear it themselves.
// Return it with PutRGBA once nothing references its pixels.
func GetRGBA(w, h int) *image.RGBA {
	need := 4 * w * h
	if v := rgbaPool.Get(); v != nil {
		img := v.(*image.RGBA)
		if cap(img.Pix) >= need {
			return &image.RGBA{
				Pix:    img.Pix[:need],
				Stride: 4 * w,
				Rect:   image.Rect(0, 0, w, h),
			}
		}
	}
	return image.NewRGBA(image.Rect(0, 0, w, h))
}

// PutRGBA recycles an image obtained from GetRGBA (or any zero-origin
// RGBA the caller owns). The caller must not touch the image afterwards.
func PutRGBA(img *image.RGBA) {
	if img == nil || cap(img.Pix) == 0 || cap(img.Pix) > maxPooledPixBytes {
		return
	}
	rgbaPool.Put(img)
}

// pngBufferPool adapts sync.Pool to png.EncoderBufferPool so the zlib
// and filter state inside image/png is reused across encodes.
type pngBufferPool struct{ p sync.Pool }

func (pp *pngBufferPool) Get() *png.EncoderBuffer {
	v := pp.p.Get()
	if v == nil {
		return nil
	}
	return v.(*png.EncoderBuffer)
}

func (pp *pngBufferPool) Put(b *png.EncoderBuffer) { pp.p.Put(b) }

var pngBuffers pngBufferPool
