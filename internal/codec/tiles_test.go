package codec

import (
	"image"
	"testing"
)

// patternAt renders a deterministic w×h test pattern into dst with its
// top-left at (ox, oy). The pixel values depend only on the offset
// WITHIN the pattern, so the same pattern at two anchors carries
// identical bytes.
func patternAt(dst *image.RGBA, ox, oy, w, h int) {
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := dst.PixOffset(ox+x, oy+y)
			dst.Pix[i+0] = uint8(x * 7)
			dst.Pix[i+1] = uint8(y * 13)
			dst.Pix[i+2] = uint8((x ^ y) * 3)
			dst.Pix[i+3] = 0xFF
		}
	}
}

func TestTileGridKeysRowMajorClipping(t *testing.T) {
	img := image.NewRGBA(image.Rect(0, 0, 70, 50))
	patternAt(img, 0, 0, 70, 50)
	keys := TileGridKeys(img, img.Bounds(), 32)
	// 70×50 at 32px tiles: 3 columns × 2 rows, right edge clipped to 6,
	// bottom edge to 18.
	wantDims := []struct{ w, h int }{
		{32, 32}, {32, 32}, {6, 32},
		{32, 18}, {32, 18}, {6, 18},
	}
	if len(keys) != len(wantDims) {
		t.Fatalf("key count = %d, want %d", len(keys), len(wantDims))
	}
	for i, k := range keys {
		if k.W != wantDims[i].w || k.H != wantDims[i].h {
			t.Errorf("key %d dims = %dx%d, want %dx%d", i, k.W, k.H, wantDims[i].w, wantDims[i].h)
		}
	}
	// The same grid walked by ForEachTile visits the same rects in the
	// same order (the key order host and viewer must agree on).
	i := 0
	ForEachTile(img.Bounds(), 32, func(tr image.Rectangle) {
		if got := TileKeyFor(img, tr); got != keys[i] {
			t.Errorf("tile %d: ForEachTile key %+v != TileGridKeys %+v", i, got, keys[i])
		}
		i++
	})
	if i != len(keys) {
		t.Fatalf("ForEachTile visited %d tiles, want %d", i, len(keys))
	}
}

// TestTileKeyTranslationInvariant is the property the whole store rests
// on: a tile's key depends only on its pixels, not on where the tile
// sits on the screen, so a slide revisited at the same rectangle — or
// the same content at a different anchor — hashes identically.
func TestTileKeyTranslationInvariant(t *testing.T) {
	a := image.NewRGBA(image.Rect(0, 0, 32, 32))
	patternAt(a, 0, 0, 32, 32)
	b := image.NewRGBA(image.Rect(0, 0, 100, 80))
	patternAt(b, 13, 9, 32, 32)

	ka := TileKeyFor(a, a.Bounds())
	kb := TileKeyFor(b, image.Rect(13, 9, 45, 41))
	if ka != kb {
		t.Fatalf("same pixels, different keys: %+v vs %+v", ka, kb)
	}

	// And a single changed pixel changes the key.
	b.Pix[b.PixOffset(20, 20)] ^= 1
	if kc := TileKeyFor(b, image.Rect(13, 9, 45, 41)); kc == ka {
		t.Fatal("changed pixel did not change the key")
	}
}

func tk(i int) TileKey { return TileKey{W: 32, H: 32, H1: uint64(i), H2: ^uint64(i)} }

func TestTileDictFIFOEviction(t *testing.T) {
	d := NewTileDict(3)
	d.Learn(tk(1), nil)
	d.Learn(tk(2), nil)
	d.Learn(tk(3), nil)
	d.Learn(tk(4), nil) // evicts 1 (oldest insert)
	if d.Has(tk(1)) {
		t.Fatal("oldest tile survived eviction")
	}
	for _, i := range []int{2, 3, 4} {
		if !d.Has(tk(i)) {
			t.Fatalf("tile %d missing", i)
		}
	}
	st := d.Stats()
	if st.Entries != 3 || st.Inserts != 4 || st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTileDictRelearnMovesToBack(t *testing.T) {
	d := NewTileDict(3)
	d.Learn(tk(1), nil)
	d.Learn(tk(2), nil)
	d.Learn(tk(3), nil)
	d.Learn(tk(1), nil) // re-learn: 1 moves to back, 2 is now oldest
	d.Learn(tk(4), nil) // evicts 2
	if d.Has(tk(2)) {
		t.Fatal("tile 2 should have been evicted after 1 was re-learned")
	}
	if !d.Has(tk(1)) {
		t.Fatal("re-learned tile 1 evicted")
	}
	if st := d.Stats(); st.Relearns != 1 {
		t.Fatalf("relearns = %d, want 1", st.Relearns)
	}
}

// TestTileDictLookupNeverReorders pins the determinism contract: the
// host checks its seen-set (Has) far more often than the viewer looks
// anything up, so if lookups refreshed recency the two sides would
// evict different tiles and every reference after the first eviction
// would be wrong.
func TestTileDictLookupNeverReorders(t *testing.T) {
	d := NewTileDict(2)
	d.Learn(tk(1), nil)
	d.Learn(tk(2), nil)
	for i := 0; i < 10; i++ {
		if !d.Has(tk(1)) {
			t.Fatal("tile 1 missing")
		}
		if _, ok := d.Lookup(tk(1)); !ok {
			t.Fatal("tile 1 lookup failed")
		}
	}
	d.Learn(tk(3), nil) // must evict 1 despite the hot lookups
	if d.Has(tk(1)) {
		t.Fatal("lookups reordered the eviction queue")
	}
	if !d.Has(tk(2)) || !d.Has(tk(3)) {
		t.Fatal("wrong survivor set")
	}
}

func TestTileDictViewerPixelsReplacedOnRelearn(t *testing.T) {
	d := NewTileDict(4)
	px1 := image.NewRGBA(image.Rect(0, 0, 32, 32))
	d.Learn(tk(1), px1)
	got, ok := d.Lookup(tk(1))
	if !ok || got != px1 {
		t.Fatal("stored pixels not returned")
	}
	px2 := image.NewRGBA(image.Rect(0, 0, 32, 32))
	d.Learn(tk(1), px2)
	if got, _ := d.Lookup(tk(1)); got != px2 {
		t.Fatal("re-learn did not replace pixels")
	}
}

func TestTileLosslessPTGatesLearning(t *testing.T) {
	if !LosslessPT(PayloadTypePNG) || !LosslessPT(PayloadTypeRaw) {
		t.Fatal("PNG and Raw are lossless")
	}
	if LosslessPT(PayloadTypeJPEG) {
		t.Fatal("JPEG must never teach the tile dictionary")
	}
}
