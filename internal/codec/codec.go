// Package codec implements the screen-content codecs negotiable for
// RegionUpdate payloads (draft Section 4.2 and 5.2.2) and the registry
// that maps RTP payload-type numbers to them.
//
// The draft mandates PNG ("All AH and participant software implementations
// MUST support PNG images") because screen content is dominated by
// computer-generated imagery where lossless compression excels. JPEG is
// provided for photographic content, and Raw as an uncompressed baseline
// for the evaluation harness. JPEG 2000, Theora and H.264 from the draft's
// list are not reproduced; PNG and JPEG span the lossless-synthetic versus
// lossy-photographic axis the draft discusses.
//
// A region update's width and height are not carried by the remoting
// protocol; every codec here produces a self-describing payload from which
// the decoder recovers the dimensions.
package codec

import (
	"bytes"
	"errors"
	"fmt"
	"image"
	"image/draw"
	"image/jpeg"
	"image/png"
	"slices"

	"appshare/internal/wire"
)

// Default RTP payload-type numbers in the dynamic range (RFC 3551 Section
// 6). The remoting/HIP stream payload types live in internal/sdp; these
// identify the content encoding inside a RegionUpdate parameter field.
const (
	PayloadTypePNG  = 96
	PayloadTypeJPEG = 97
	PayloadTypeRaw  = 98
)

// Codec encodes and decodes rectangular screen regions.
type Codec interface {
	// Name returns the codec's short name ("png", "jpeg", "raw").
	Name() string
	// PayloadType returns the default RTP payload-type number.
	PayloadType() uint8
	// Lossless reports whether Decode(Encode(img)) reproduces img
	// pixel-exactly.
	Lossless() bool
	// Encode serializes the image into a self-describing payload. An
	// implementation must not retain img (or its Pix) after returning:
	// the pipeline passes pooled scratch images that are recycled the
	// moment Encode returns. Encode must also be deterministic — the
	// payload cache assumes identical pixels encode to identical bytes.
	Encode(img *image.RGBA) ([]byte, error)
	// Decode reverses Encode.
	Decode(data []byte) (*image.RGBA, error)
}

// PNG is the mandatory lossless codec.
type PNG struct {
	// Level selects the compression level; zero value means default.
	Level png.CompressionLevel
}

// Name implements Codec.
func (PNG) Name() string { return "png" }

// PayloadType implements Codec.
func (PNG) PayloadType() uint8 { return PayloadTypePNG }

// Lossless implements Codec.
func (PNG) Lossless() bool { return true }

// Encode implements Codec.
func (c PNG) Encode(img *image.RGBA) ([]byte, error) {
	buf := getBuffer()
	defer putBuffer(buf)
	enc := png.Encoder{CompressionLevel: c.Level, BufferPool: &pngBuffers}
	if err := enc.Encode(buf, img); err != nil {
		return nil, fmt.Errorf("codec: png encode: %w", err)
	}
	return append([]byte(nil), buf.Bytes()...), nil
}

// Decode implements Codec.
func (PNG) Decode(data []byte) (*image.RGBA, error) {
	img, err := png.Decode(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("codec: png decode: %w", err)
	}
	return toRGBA(img), nil
}

// JPEG is the lossy codec for photographic content.
type JPEG struct {
	// Quality in [1, 100]; zero value means jpeg.DefaultQuality.
	Quality int
}

// Name implements Codec.
func (JPEG) Name() string { return "jpeg" }

// PayloadType implements Codec.
func (JPEG) PayloadType() uint8 { return PayloadTypeJPEG }

// Lossless implements Codec.
func (JPEG) Lossless() bool { return false }

// Encode implements Codec.
func (c JPEG) Encode(img *image.RGBA) ([]byte, error) {
	q := c.Quality
	if q == 0 {
		q = jpeg.DefaultQuality
	}
	buf := getBuffer()
	defer putBuffer(buf)
	if err := jpeg.Encode(buf, img, &jpeg.Options{Quality: q}); err != nil {
		return nil, fmt.Errorf("codec: jpeg encode: %w", err)
	}
	return append([]byte(nil), buf.Bytes()...), nil
}

// Decode implements Codec.
func (JPEG) Decode(data []byte) (*image.RGBA, error) {
	img, err := jpeg.Decode(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("codec: jpeg decode: %w", err)
	}
	return toRGBA(img), nil
}

// Raw is the uncompressed baseline: a 8-byte dimension header followed by
// RGBA pixels row by row.
type Raw struct{}

// Name implements Codec.
func (Raw) Name() string { return "raw" }

// PayloadType implements Codec.
func (Raw) PayloadType() uint8 { return PayloadTypeRaw }

// Lossless implements Codec.
func (Raw) Lossless() bool { return true }

// Encode implements Codec.
func (Raw) Encode(img *image.RGBA) ([]byte, error) {
	b := img.Bounds()
	w := wire.NewWriter(8 + 4*b.Dx()*b.Dy())
	w.Uint32(uint32(b.Dx()))
	w.Uint32(uint32(b.Dy()))
	for y := b.Min.Y; y < b.Max.Y; y++ {
		row := img.Pix[img.PixOffset(b.Min.X, y):img.PixOffset(b.Max.X, y)]
		w.Write(row)
	}
	return w.Bytes(), nil
}

// Decode implements Codec.
func (Raw) Decode(data []byte) (*image.RGBA, error) {
	r := wire.NewReader(data)
	width := int(r.Uint32())
	height := int(r.Uint32())
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("codec: raw decode: %w", err)
	}
	if width <= 0 || height <= 0 || width > 1<<15 || height > 1<<15 {
		return nil, fmt.Errorf("codec: raw decode: implausible dimensions %dx%d", width, height)
	}
	pix := r.Bytes(4 * width * height)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("codec: raw decode: %w", err)
	}
	img := image.NewRGBA(image.Rect(0, 0, width, height))
	copy(img.Pix, pix)
	return img, nil
}

// Registry maps content payload-type numbers to codecs, modelling the
// media-type negotiation of Section 5.2.2 ("they should negotiate
// supported media types during the session establishment").
type Registry struct {
	byPT map[uint8]Codec
}

// NewRegistry returns a registry holding the given codecs.
func NewRegistry(codecs ...Codec) (*Registry, error) {
	r := &Registry{byPT: make(map[uint8]Codec, len(codecs))}
	for _, c := range codecs {
		if err := r.Register(c.PayloadType(), c); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// DefaultRegistry returns a registry with PNG (mandatory), JPEG and Raw.
func DefaultRegistry() *Registry {
	r, err := NewRegistry(PNG{}, JPEG{}, Raw{})
	if err != nil {
		panic("codec: default registry: " + err.Error()) // impossible: distinct PTs
	}
	return r
}

// Register binds a payload-type number to a codec.
func (r *Registry) Register(pt uint8, c Codec) error {
	if pt > 0x7F {
		return fmt.Errorf("codec: payload type %d exceeds 7 bits", pt)
	}
	if _, dup := r.byPT[pt]; dup {
		return fmt.Errorf("codec: payload type %d already registered", pt)
	}
	r.byPT[pt] = c
	return nil
}

// Lookup returns the codec for a payload-type number.
func (r *Registry) Lookup(pt uint8) (Codec, error) {
	c, ok := r.byPT[pt]
	if !ok {
		return nil, fmt.Errorf("codec: no codec registered for payload type %d", pt)
	}
	return c, nil
}

// PayloadTypes returns the registered payload-type numbers in ascending
// order, so SDP offers and logs derived from it are deterministic.
func (r *Registry) PayloadTypes() []uint8 {
	out := make([]uint8, 0, len(r.byPT))
	for pt := range r.byPT {
		out = append(out, pt)
	}
	slices.Sort(out)
	return out
}

// ErrEmptyImage is returned when encoding a zero-area image.
var ErrEmptyImage = errors.New("codec: empty image")

// EncodeSubImage crops src to r (image rectangle semantics) into a
// pooled scratch RGBA and encodes it with c. This is the capture
// pipeline's path from a dirty rectangle to RegionUpdate content.
func EncodeSubImage(c Codec, src *image.RGBA, r image.Rectangle) ([]byte, error) {
	r = r.Intersect(src.Bounds())
	if r.Empty() {
		return nil, ErrEmptyImage
	}
	out := GetRGBA(r.Dx(), r.Dy())
	defer PutRGBA(out)
	draw.Draw(out, out.Bounds(), src, r.Min, draw.Src)
	return c.Encode(out)
}

// toRGBA converts any decoded image to *image.RGBA with a zero origin.
func toRGBA(img image.Image) *image.RGBA {
	if rgba, ok := img.(*image.RGBA); ok && rgba.Bounds().Min == (image.Point{}) {
		return rgba
	}
	b := img.Bounds()
	out := image.NewRGBA(image.Rect(0, 0, b.Dx(), b.Dy()))
	draw.Draw(out, out.Bounds(), img, b.Min, draw.Src)
	return out
}
