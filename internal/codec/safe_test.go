package codec

import (
	"bytes"
	"image"
	"image/png"
	"strings"
	"testing"
	"time"
)

func TestSafeDecodeAcceptsNormalImages(t *testing.T) {
	img := syntheticImage(320, 240)
	for _, c := range []Codec{PNG{}, JPEG{Quality: 80}, Raw{}} {
		data, err := c.Encode(img)
		if err != nil {
			t.Fatal(err)
		}
		back, err := SafeDecode(c, data, 0)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if back.Bounds().Dx() != 320 {
			t.Fatalf("%s: bounds %v", c.Name(), back.Bounds())
		}
	}
}

func TestSafeDecodeRejectsDecompressionBomb(t *testing.T) {
	// A 6000x6000 all-black PNG: a few KB compressed, 144 MB decoded.
	bomb := image.NewRGBA(image.Rect(0, 0, 6000, 6000))
	var buf bytes.Buffer
	if err := png.Encode(&buf, bomb); err != nil {
		t.Fatal(err)
	}
	t.Logf("bomb: %d bytes compressed for %d pixels", buf.Len(), 6000*6000)
	// Rejection must be cheap: it reads only the header, never the 144 MB.
	start := time.Now()
	_, err := SafeDecode(PNG{}, buf.Bytes(), DefaultMaxPixels)
	if err == nil {
		t.Fatal("bomb accepted")
	}
	if !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("err = %v", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("rejection took %v; header check should not decode pixels", elapsed)
	}
	// A modest image passes with an explicit small limit sized for it.
	small := syntheticImage(100, 100)
	data, err := (PNG{}).Encode(small)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SafeDecode(PNG{}, data, 100*100); err != nil {
		t.Fatalf("exact limit: %v", err)
	}
	if _, err := SafeDecode(PNG{}, data, 100*100-1); err == nil {
		t.Fatal("one pixel over the limit accepted")
	}
}

func TestSafeDecodeRejectsRawBomb(t *testing.T) {
	// Raw header claiming 30000x30000 with no pixel data.
	data := []byte{0x00, 0x00, 0x75, 0x30, 0x00, 0x00, 0x75, 0x30}
	if _, err := SafeDecode(Raw{}, data, 0); err == nil {
		t.Fatal("raw bomb accepted")
	}
	if _, err := SafeDecode(Raw{}, []byte{1, 2}, 0); err == nil {
		t.Fatal("truncated raw header accepted")
	}
}

func TestSafeDecodeGarbage(t *testing.T) {
	if _, err := SafeDecode(PNG{}, []byte("not a png"), 0); err == nil {
		t.Fatal("garbage accepted")
	}
}
