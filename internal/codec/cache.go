package codec

import (
	"container/list"
	"encoding/binary"
	"image"
	"sync"
)

// PayloadCache is a content-addressed cache of encoded region payloads,
// in the spirit of WebNC's hash-addressed tile store: the key is a hash
// of the cropped RGBA pixels (plus dimensions and codec payload type),
// the value is the encoded payload those pixels produced. Repeated
// content — full refreshes for late joiners, PLI re-sends, a blinking
// cursor re-damaging the same glyphs, identical tiles across windows —
// is then served without touching the compressor at all.
//
// The cache is bounded in payload bytes and evicts least-recently-used
// entries. It is safe for concurrent use; the parallel encode workers
// share one instance.
//
// Cached payloads are returned by reference and may be shared by many
// in-flight messages, so every consumer must treat them as read-only
// (the remoting layer already does: fragmentation slices, marshalling
// copies).
type PayloadCache struct {
	mu    sync.Mutex
	limit int
	bytes int
	ll    *list.List // front = most recently used
	items map[CacheKey]*list.Element

	hits, misses, evictions uint64
	hitBytes, missBytes     uint64
}

// CacheKey addresses one encoded payload: codec payload type, crop
// dimensions and a 128-bit content hash of the pixels. Two hash lanes
// with independent bases make an accidental collision (which would serve
// the wrong pixels) astronomically unlikely without paying for a
// cryptographic hash on every lookup.
type CacheKey struct {
	PT     uint8
	W, H   int
	H1, H2 uint64
}

type cacheEntry struct {
	key     CacheKey
	payload []byte
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	// Hits and Misses count Get outcomes; Evictions counts entries
	// dropped to stay under the byte budget.
	Hits, Misses, Evictions uint64
	// HitBytes is the total payload bytes served from cache; MissBytes
	// the total payload bytes inserted after encoding.
	HitBytes, MissBytes uint64
	// Entries and Bytes describe current residency.
	Entries int
	Bytes   int
	// Limit is the configured byte budget.
	Limit int
}

// HitRate returns hits / (hits + misses), or zero before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// NewPayloadCache returns a cache bounded to limitBytes of payload
// data. A non-positive limit yields a cache that stores nothing (every
// Get is a miss), which keeps call sites branch-free.
func NewPayloadCache(limitBytes int) *PayloadCache {
	return &PayloadCache{
		limit: limitBytes,
		ll:    list.New(),
		items: make(map[CacheKey]*list.Element),
	}
}

// Get returns the payload cached under k, if any, and records the
// hit/miss.
func (c *PayloadCache) Get(k CacheKey) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.ll.MoveToFront(el)
	ent := el.Value.(*cacheEntry)
	c.hits++
	c.hitBytes += uint64(len(ent.payload))
	return ent.payload, true
}

// Put stores payload under k, evicting least-recently-used entries
// until the byte budget holds. Payloads larger than the whole budget
// are not cached. The cache keeps a reference to payload; the caller
// must not mutate it afterwards.
func (c *PayloadCache) Put(k CacheKey, payload []byte) {
	if len(payload) > c.limit {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.missBytes += uint64(len(payload))
	if el, ok := c.items[k]; ok {
		ent := el.Value.(*cacheEntry)
		c.bytes += len(payload) - len(ent.payload)
		ent.payload = payload
		c.ll.MoveToFront(el)
	} else {
		c.items[k] = c.ll.PushFront(&cacheEntry{key: k, payload: payload})
		c.bytes += len(payload)
	}
	for c.bytes > c.limit {
		oldest := c.ll.Back()
		if oldest == nil {
			break
		}
		ent := oldest.Value.(*cacheEntry)
		c.ll.Remove(oldest)
		delete(c.items, ent.key)
		c.bytes -= len(ent.payload)
		c.evictions++
	}
}

// Stats returns a snapshot of the cache counters.
func (c *PayloadCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		HitBytes:  c.hitBytes,
		MissBytes: c.missBytes,
		Entries:   c.ll.Len(),
		Bytes:     c.bytes,
		Limit:     c.limit,
	}
}

// KeyFor hashes the pixels of src inside r (which must lie within
// src.Bounds()) into a cache key for codec payload type pt.
func KeyFor(pt uint8, src *image.RGBA, r image.Rectangle) CacheKey {
	h1, h2 := hashRegion(src, r)
	return CacheKey{PT: pt, W: r.Dx(), H: r.Dy(), H1: h1, H2: h2}
}

// KeyForTier is KeyFor with a tier salt folded into both hash lanes, so
// degraded encode variants of the same pixels (pixelated at different
// block sizes, decimated, etc.) occupy distinct cache slots: the
// effective key is (content, tier), never colliding with the
// full-fidelity payload for identical source pixels.
func KeyForTier(pt uint8, salt uint32, src *image.RGBA, r image.Rectangle) CacheKey {
	k := KeyFor(pt, src, r)
	k.H1 = (k.H1 ^ uint64(salt)) * fnvPrime64
	k.H2 = (k.H2 ^ (uint64(salt) << 32)) * fnvPrime64
	return k
}

// FNV-1a 64-bit parameters, plus an independent second basis for the
// second hash lane.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
	lane2Seed   = 0x9E3779B97F4A7C15 // 2^64 / golden ratio
)

// hashRegion computes two 64-bit FNV-1a-style hashes over the rect's
// pixel rows, consuming eight bytes per step for throughput (a region
// hash must stay far cheaper than the encode it can save).
func hashRegion(src *image.RGBA, r image.Rectangle) (uint64, uint64) {
	h1 := uint64(fnvOffset64)
	h2 := uint64(fnvOffset64) ^ uint64(lane2Seed)
	for y := r.Min.Y; y < r.Max.Y; y++ {
		row := src.Pix[src.PixOffset(r.Min.X, y):src.PixOffset(r.Max.X, y)]
		for len(row) >= 8 {
			w := binary.LittleEndian.Uint64(row)
			h1 = (h1 ^ w) * fnvPrime64
			h2 = (h2 ^ w) * fnvPrime64
			row = row[8:]
		}
		for _, b := range row {
			h1 = (h1 ^ uint64(b)) * fnvPrime64
			h2 = (h2 ^ uint64(b)) * fnvPrime64
		}
	}
	return h1, h2
}
