package codec

import (
	"container/list"
	"image"
)

// Tile store primitives (WebNC direction, see DESIGN.md "Tile store").
//
// A region update is split into a grid of fixed-size tiles anchored at the
// update rectangle's top-left corner (edge tiles are clipped). Each tile
// is addressed by its clipped dimensions plus the same 128-bit two-lane
// FNV content hash the payload cache uses, so host and viewer can agree
// on "this exact block of pixels" without shipping the pixels again.
//
// The host keeps one TileDict per negotiated remote recording which tiles
// that remote has been SENT at full fidelity; the viewer keeps one
// TileDict holding the pixels it has RECEIVED. Both are bounded to the
// same negotiated capacity and evolve under the same deterministic policy
// (insertion order, re-learn moves to back, lookups never reorder), so as
// long as the learn stream arrives, the two dictionaries evict in
// lockstep. Loss or a late join only ever makes the viewer know LESS than
// the host assumes — the viewer then treats an unknown reference as a
// desynchronization and requests a refresh, never painting stale tiles.

// DefaultTileSize is the tile edge length (pixels) used when a tile store
// is enabled without an explicit size.
const DefaultTileSize = 32

// DefaultTileDictCapacity is the default bound, in tiles, of the
// synchronized dictionary. At 32×32 RGBA a full viewer-side dictionary
// holds capacity × 4 KiB of pixels (16 MiB at the default).
const DefaultTileDictCapacity = 4096

// TileKey addresses one tile: clipped dimensions plus the two FNV-1a hash
// lanes of KeyFor/hashRegion. Two independent 64-bit lanes make a
// collision (which would paint the wrong pixels) astronomically unlikely.
type TileKey struct {
	W, H   int
	H1, H2 uint64
}

// TileKeyFor hashes the pixels of src inside r (which must lie within
// src.Bounds()) into a tile key, reusing the payload cache's hash lanes.
func TileKeyFor(src *image.RGBA, r image.Rectangle) TileKey {
	h1, h2 := hashRegion(src, r)
	return TileKey{W: r.Dx(), H: r.Dy(), H1: h1, H2: h2}
}

// ForEachTile visits the tile grid of r in row-major order: tiles of
// size×size pixels anchored at r.Min, with right/bottom edge tiles
// clipped to r. Host and viewer MUST tile with the same anchoring for
// their hashes to agree; anchoring at the update rectangle (rather than a
// global screen grid) means any recurrence of the same rectangle — a
// slide revisited, a window re-exposed, a page scrolled back — hits the
// dictionary regardless of where the rectangle lies.
func ForEachTile(r image.Rectangle, size int, fn func(tile image.Rectangle)) {
	if size <= 0 || r.Empty() {
		return
	}
	for y := r.Min.Y; y < r.Max.Y; y += size {
		yMax := min(y+size, r.Max.Y)
		for x := r.Min.X; x < r.Max.X; x += size {
			fn(image.Rect(x, y, min(x+size, r.Max.X), yMax))
		}
	}
}

// TileGridKeys hashes every tile of r in row-major order.
func TileGridKeys(src *image.RGBA, r image.Rectangle, size int) []TileKey {
	if size <= 0 || r.Empty() {
		return nil
	}
	cols := (r.Dx() + size - 1) / size
	rows := (r.Dy() + size - 1) / size
	out := make([]TileKey, 0, cols*rows)
	ForEachTile(r, size, func(tr image.Rectangle) {
		out = append(out, TileKeyFor(src, tr))
	})
	return out
}

// TileDictStats is a snapshot of a dictionary's counters.
type TileDictStats struct {
	// Entries is current residency; Capacity the bound in tiles.
	Entries, Capacity int
	// Inserts counts first-time learns, Relearns re-learns of a resident
	// tile (which refresh its eviction recency), Evictions tiles dropped
	// at capacity.
	Inserts, Relearns, Evictions uint64
	// Hits and Misses count Lookup/Has outcomes.
	Hits, Misses uint64
}

type tileEntry struct {
	key TileKey
	px  *image.RGBA // nil on the host side (presence is the information)
}

// TileDict is a bounded, deterministically-evicting tile dictionary. The
// eviction policy is insertion order with re-learn-moves-to-back;
// lookups never reorder. Determinism matters more than hit rate here:
// host and viewer replay the same learn sequence and must evict the same
// tiles (see the package comment).
//
// TileDict is NOT safe for concurrent use; the host accesses it under
// the owning shard's lock, the viewer under the participant lock.
type TileDict struct {
	capacity int
	ll       *list.List // front = oldest (next eviction victim)
	items    map[TileKey]*list.Element

	inserts, relearns, evictions uint64
	hits, misses                 uint64
}

// NewTileDict returns a dictionary bounded to capacity tiles.
// Non-positive capacities select DefaultTileDictCapacity.
func NewTileDict(capacity int) *TileDict {
	if capacity <= 0 {
		capacity = DefaultTileDictCapacity
	}
	return &TileDict{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[TileKey]*list.Element),
	}
}

// Capacity returns the dictionary bound in tiles.
func (d *TileDict) Capacity() int { return d.capacity }

// Len returns current residency.
func (d *TileDict) Len() int { return d.ll.Len() }

// Learn records a tile. px carries the tile's pixels on the viewer side
// (the dictionary keeps the reference; the caller must pass an owned
// copy) and is nil on the host side. Learning a resident tile refreshes
// its eviction recency and replaces its pixels.
func (d *TileDict) Learn(k TileKey, px *image.RGBA) {
	if el, ok := d.items[k]; ok {
		d.relearns++
		d.ll.MoveToBack(el)
		if px != nil {
			el.Value.(*tileEntry).px = px
		}
		return
	}
	d.inserts++
	for d.ll.Len() >= d.capacity {
		oldest := d.ll.Front()
		d.ll.Remove(oldest)
		delete(d.items, oldest.Value.(*tileEntry).key)
		d.evictions++
	}
	d.items[k] = d.ll.PushBack(&tileEntry{key: k, px: px})
}

// Has reports whether k is resident, without reordering.
func (d *TileDict) Has(k TileKey) bool {
	_, ok := d.items[k]
	if ok {
		d.hits++
	} else {
		d.misses++
	}
	return ok
}

// Lookup returns the pixels stored for k, without reordering. The
// returned image is shared with the dictionary; treat it as read-only.
func (d *TileDict) Lookup(k TileKey) (*image.RGBA, bool) {
	el, ok := d.items[k]
	if !ok {
		d.misses++
		return nil, false
	}
	d.hits++
	return el.Value.(*tileEntry).px, true
}

// Keys returns the resident tile keys in eviction order (oldest first).
// Replaying the returned sequence through Learn on an empty dictionary
// of the same capacity reproduces the same residency AND the same
// eviction order — the property a host snapshot relies on to carry a
// remote's seen-set across a migration without desynchronizing the
// viewer's copy.
func (d *TileDict) Keys() []TileKey {
	out := make([]TileKey, 0, d.ll.Len())
	for el := d.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*tileEntry).key)
	}
	return out
}

// Stats returns a snapshot of the dictionary counters.
func (d *TileDict) Stats() TileDictStats {
	return TileDictStats{
		Entries:   d.ll.Len(),
		Capacity:  d.capacity,
		Inserts:   d.inserts,
		Relearns:  d.relearns,
		Evictions: d.evictions,
		Hits:      d.hits,
		Misses:    d.misses,
	}
}

// LosslessPT reports whether pt names a codec whose decode reproduces the
// encoder's pixels bit-exactly. Only lossless content may teach the tile
// dictionary: a JPEG round trip leaves host and viewer hashing different
// pixels, which would poison every future reference.
func LosslessPT(pt uint8) bool {
	return pt == PayloadTypePNG || pt == PayloadTypeRaw
}
