package workload

import (
	"fmt"
	"sort"

	"appshare/internal/display"
	"appshare/internal/region"
)

// Mix interleaves several workloads, stepping each one per Step — e.g. a
// presenter typing while a video region plays. The composite is as
// deterministic as its parts.
type Mix struct {
	Parts []Workload
}

// Name implements Workload.
func (m *Mix) Name() string {
	name := "mix("
	for i, p := range m.Parts {
		if i > 0 {
			name += "+"
		}
		name += p.Name()
	}
	return name + ")"
}

// Step implements Workload.
func (m *Mix) Step() {
	for _, p := range m.Parts {
		p.Step()
	}
}

// Rebind implements Rebinder, forwarding to every part that can
// re-target. A part that cannot keeps driving its old window — the
// composite stays valid, that part just goes quiet after a migration.
func (m *Mix) Rebind(desk *display.Desktop, win *display.Window) {
	for _, p := range m.Parts {
		if rb, ok := p.(Rebinder); ok {
			rb.Rebind(desk, win)
		}
	}
}

// factories maps the scenario-descriptor spellings to constructors, so a
// one-line scenario like "typing over burst-ge" can name its workload as
// a string. win is the primary shared window; drag additionally needs
// the desktop.
var factories = map[string]func(desk *display.Desktop, win *display.Window, seed int64) Workload{
	"idle":      func(_ *display.Desktop, _ *display.Window, _ int64) Workload { return Idle{} },
	"typing":    func(_ *display.Desktop, win *display.Window, seed int64) Workload { return NewTyping(win, 12, seed) },
	"scrolling": func(_ *display.Desktop, win *display.Window, seed int64) Workload { return NewScrolling(win, 2, seed) },
	"slideshow": func(_ *display.Desktop, win *display.Window, seed int64) Workload { return NewSlideshow(win, 5, seed) },
	"video": func(_ *display.Desktop, win *display.Window, seed int64) Workload {
		b := win.Bounds()
		w, h := b.Width/3, b.Height/3
		if w < 16 {
			w = b.Width
		}
		if h < 16 {
			h = b.Height
		}
		return NewVideoRegion(win, region.XYWH(8, 8, w, h), seed)
	},
	"windowdrag": func(desk *display.Desktop, win *display.Window, seed int64) Workload {
		return NewWindowDrag(desk, win.ID(), seed)
	},
	// The revisit family: whole-viewport repaints of previously-shown
	// content, the profiles a persistent tile store turns into
	// TileReference traffic after the first lap.
	"slidecycle": func(_ *display.Desktop, win *display.Window, seed int64) Workload {
		return NewRevisit("slidecycle", win, 4, 5, seed)
	},
	"pageflip": func(_ *display.Desktop, win *display.Window, seed int64) Workload {
		return NewRevisit("pageflip", win, 2, 2, seed)
	},
	"reexpose": func(_ *display.Desktop, win *display.Window, seed int64) Workload {
		return NewRevisit("reexpose", win, 1, 3, seed)
	},
	"typing+video": func(desk *display.Desktop, win *display.Window, seed int64) Workload {
		b := win.Bounds()
		vw, vh := b.Width/4, b.Height/4
		if vw < 16 {
			vw = b.Width
		}
		if vh < 16 {
			vh = b.Height
		}
		return &Mix{Parts: []Workload{
			NewTyping(win, 8, seed),
			NewVideoRegion(win, region.XYWH(b.Width-vw-4, b.Height-vh-4, vw, vh), seed+1),
		}}
	},
}

// ByName constructs the named workload over the given desktop/window with
// the given seed. Names returns the valid spellings.
func ByName(name string, desk *display.Desktop, win *display.Window, seed int64) (Workload, error) {
	f, ok := factories[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown workload %q (valid: %v)", name, Names())
	}
	return f(desk, win, seed), nil
}

// Names lists the workloads ByName accepts, sorted.
func Names() []string {
	out := make([]string, 0, len(factories))
	for n := range factories {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
