package workload

import (
	"bytes"
	"testing"

	"appshare/internal/codec"
	"appshare/internal/display"
	"appshare/internal/region"
)

func newWin() (*display.Desktop, *display.Window) {
	d := display.NewDesktop(1024, 768)
	w := d.CreateWindow(1, region.XYWH(100, 100, 400, 300))
	d.TakeDamage(0)
	d.TakeMoves()
	return d, w
}

func TestTypingProducesDamage(t *testing.T) {
	d, w := newWin()
	ty := NewTyping(w, 16, 1)
	if ty.Name() != "typing" {
		t.Fatal("name")
	}
	ty.Step()
	if len(d.TakeDamage(1<<30)) == 0 {
		t.Fatal("typing produced no damage")
	}
	// Many steps eventually wrap and scroll.
	for i := 0; i < 2000; i++ {
		ty.Step()
	}
	if len(d.TakeMoves()) == 0 {
		t.Fatal("long typing session never scrolled")
	}
}

func TestTypingDeterministic(t *testing.T) {
	render := func() []byte {
		_, w := newWin()
		ty := NewTyping(w, 16, 42)
		for i := 0; i < 50; i++ {
			ty.Step()
		}
		return w.Snapshot().Pix
	}
	if !bytes.Equal(render(), render()) {
		t.Fatal("typing workload is not deterministic for a fixed seed")
	}
}

func TestScrollingEmitsMoves(t *testing.T) {
	d, w := newWin()
	sc := NewScrolling(w, 2, 7)
	d.TakeMoves()
	d.TakeDamage(0)
	sc.Step()
	moves := d.TakeMoves()
	if len(moves) != 1 {
		t.Fatalf("moves per step = %d, want 1 (one blit per wheel notch)", len(moves))
	}
	if moves[0].Src.Top-moves[0].Dst.Top != 2*9 { // 2 lines x CellHeight
		t.Fatalf("scroll distance = %d", moves[0].Src.Top-moves[0].Dst.Top)
	}
	if len(d.TakeDamage(1<<30)) == 0 {
		t.Fatal("no damage for revealed lines")
	}
}

func TestSlideshowInterval(t *testing.T) {
	d, w := newWin()
	ss := NewSlideshow(w, 5, 3)
	for i := 0; i < 11; i++ {
		ss.Step()
	}
	if ss.Slides() != 3 { // steps 0, 5, 10
		t.Fatalf("slides = %d, want 3", ss.Slides())
	}
	if len(d.TakeDamage(1<<30)) == 0 {
		t.Fatal("slides produced no damage")
	}
	// Slide content is photographic.
	if got := codec.Classify(w.Image()); got != codec.ClassPhotographic {
		t.Fatalf("slide classified as %v", got)
	}
}

func TestVideoRegionDamagesOnlyItsRect(t *testing.T) {
	d, w := newWin()
	vr := NewVideoRegion(w, region.XYWH(50, 50, 120, 90), 9)
	vr.Step()
	rects := d.TakeDamage(1 << 30)
	if len(rects) != 1 {
		t.Fatalf("damage = %v", rects)
	}
	want := region.XYWH(150, 150, 120, 90) // window origin (100,100)
	if rects[0] != want {
		t.Fatalf("video damage = %v, want %v", rects[0], want)
	}
}

func TestWindowDragMovesWindow(t *testing.T) {
	d, w := newWin()
	gen := d.Generation()
	drag := NewWindowDrag(d, w.ID(), 11)
	for i := 0; i < 10; i++ {
		drag.Step()
	}
	if d.Generation() == gen {
		t.Fatal("drag never moved the window")
	}
	b := w.Bounds()
	dw, dh := d.Size()
	if b.Left < 0 || b.Top < 0 || b.Right() > dw || b.Bottom() > dh {
		t.Fatalf("drag left the desktop: %v", b)
	}
	// Unknown window is a no-op.
	NewWindowDrag(d, 999, 1).Step()
}

func TestIdle(t *testing.T) {
	d, _ := newWin()
	var w Workload = Idle{}
	w.Step()
	if w.Name() != "idle" {
		t.Fatal("name")
	}
	if len(d.TakeDamage(0)) != 0 {
		t.Fatal("idle produced damage")
	}
}

func TestPhotoIsPhotographic(t *testing.T) {
	img := Photo(200, 150, 5)
	if got := codec.Classify(img); got != codec.ClassPhotographic {
		t.Fatalf("Photo classified as %v", got)
	}
	// Deterministic per seed.
	a, b := Photo(64, 64, 9), Photo(64, 64, 9)
	if !bytes.Equal(a.Pix, b.Pix) {
		t.Fatal("Photo not deterministic")
	}
	c := Photo(64, 64, 10)
	if bytes.Equal(a.Pix, c.Pix) {
		t.Fatal("different seeds should differ")
	}
}
