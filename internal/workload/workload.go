// Package workload provides deterministic desktop activity generators
// for the evaluation harness. Each workload drives the virtual desktop
// the way a class of real sharing sessions would:
//
//   - Typing: a text editor filling with prose — small, frequent,
//     synthetic-content updates (the e-learning/tutoring case the draft's
//     introduction motivates).
//   - Scrolling: a document reader — large coherent moves, ideal for
//     MoveRectangle (Section 5.2.3).
//   - Slideshow: photographic slides — large, infrequent, natural-image
//     updates (the JPEG case of Section 4.2).
//   - VideoRegion: a small region updating every tick (the "modern
//     computer-generated animation" boundary case of Section 2).
//   - WindowDrag: a window relocating every tick — WindowManagerInfo
//     churn (Section 5.2.1).
//
// All generators are seeded and step-driven, so experiments are exactly
// reproducible.
package workload

import (
	"image"
	"image/color"
	"math/rand"

	"appshare/internal/display"
	"appshare/internal/region"
)

// Workload drives one unit of desktop activity per Step call.
type Workload interface {
	// Name identifies the workload in experiment output.
	Name() string
	// Step performs one tick's worth of activity.
	Step()
}

// Rebinder is implemented by workloads that can re-target a restored
// desktop mid-run. A live host migration replaces the desktop object
// (ah.RestoreSession rebuilds it from the checkpoint), so the driver
// re-resolves the shared window and hands both back to the workload;
// generator state (RNGs, cursors, pre-rendered pages) carries over, and
// the next Step continues the activity stream exactly where the failed
// host left it.
type Rebinder interface {
	Rebind(desk *display.Desktop, win *display.Window)
}

// Typing simulates a user typing prose into an editor window at a fixed
// number of characters per step, wrapping lines and scrolling when the
// window fills.
type Typing struct {
	win          *display.Window
	rng          *rand.Rand
	CharsPerStep int
	x, y         int
	margin       int
}

// NewTyping returns a typing workload over the given window.
func NewTyping(win *display.Window, charsPerStep int, seed int64) *Typing {
	if charsPerStep <= 0 {
		charsPerStep = 8
	}
	m := 6
	return &Typing{
		win:          win,
		rng:          rand.New(rand.NewSource(seed)),
		CharsPerStep: charsPerStep,
		x:            m,
		y:            m,
		margin:       m,
	}
}

// Name implements Workload.
func (t *Typing) Name() string { return "typing" }

// Rebind implements Rebinder: the cursor position survives, so typing
// resumes mid-line on the restored window.
func (t *Typing) Rebind(_ *display.Desktop, win *display.Window) { t.win = win }

// words is a small corpus the generator samples; real glyph shapes give
// codecs realistic text statistics.
var words = []string{
	"the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog",
	"sharing", "desktop", "remote", "protocol", "window", "update",
	"region", "packet", "screen", "participant", "lecture", "slide",
}

// Step implements Workload.
func (t *Typing) Step() {
	fg := color.RGBA{0x10, 0x10, 0x20, 0xFF}
	remaining := t.CharsPerStep
	for remaining > 0 {
		word := words[t.rng.Intn(len(words))]
		if len(word) > remaining {
			word = word[:remaining]
		}
		wpx, _ := display.TextExtent(word + " ")
		if t.x+wpx >= t.win.Bounds().Width-t.margin {
			t.newline()
		}
		t.win.DrawText(t.x, t.y, word, fg)
		t.x += wpx
		remaining -= len(word) + 1
	}
}

func (t *Typing) newline() {
	t.x = t.margin
	t.y += display.CellHeight
	if t.y+display.GlyphHeight >= t.win.Bounds().Height-t.margin {
		// Scroll up one line, as editors do.
		t.win.Scroll(
			region.XYWH(0, 0, t.win.Bounds().Width, t.win.Bounds().Height),
			-display.CellHeight, color.RGBA{0xFF, 0xFF, 0xFF, 0xFF})
		t.y -= display.CellHeight
	}
}

// Scrolling simulates reading a long document: each step scrolls the
// window by LinesPerStep text lines and renders the newly revealed band.
type Scrolling struct {
	win          *display.Window
	rng          *rand.Rand
	LinesPerStep int
	lineNo       int
}

// NewScrolling returns a scrolling workload.
func NewScrolling(win *display.Window, linesPerStep int, seed int64) *Scrolling {
	if linesPerStep <= 0 {
		linesPerStep = 3
	}
	s := &Scrolling{win: win, rng: rand.New(rand.NewSource(seed)), LinesPerStep: linesPerStep}
	// Fill the window with initial text.
	fg := color.RGBA{0x20, 0x20, 0x20, 0xFF}
	for y := 4; y+display.GlyphHeight < win.Bounds().Height; y += display.CellHeight {
		s.drawLine(y, fg)
	}
	return s
}

// Name implements Workload.
func (s *Scrolling) Name() string { return "scrolling" }

// Rebind implements Rebinder.
func (s *Scrolling) Rebind(_ *display.Desktop, win *display.Window) { s.win = win }

func (s *Scrolling) drawLine(y int, fg color.RGBA) {
	x := 4
	for x < s.win.Bounds().Width-40 {
		word := words[s.rng.Intn(len(words))]
		s.win.DrawText(x, y, word, fg)
		wpx, _ := display.TextExtent(word + " ")
		x += wpx
	}
	s.lineNo++
}

// Step implements Workload. One step models one wheel notch: the reader
// blits the whole viewport up by LinesPerStep lines in a single scroll,
// then paints the revealed lines — the way real document viewers repaint.
func (s *Scrolling) Step() {
	fg := color.RGBA{0x20, 0x20, 0x20, 0xFF}
	white := color.RGBA{0xFF, 0xFF, 0xFF, 0xFF}
	h := s.win.Bounds().Height
	s.win.Scroll(region.XYWH(0, 0, s.win.Bounds().Width, h),
		-display.CellHeight*s.LinesPerStep, white)
	for i := 0; i < s.LinesPerStep; i++ {
		s.drawLine(h-display.CellHeight*(s.LinesPerStep-i)-2, fg)
	}
}

// Slideshow flips photographic slides: every Interval steps the whole
// window is replaced by a fresh pseudo-photograph.
type Slideshow struct {
	win      *display.Window
	rng      *rand.Rand
	Interval int
	step     int
	slide    int
}

// NewSlideshow returns a slideshow flipping every interval steps.
func NewSlideshow(win *display.Window, interval int, seed int64) *Slideshow {
	if interval <= 0 {
		interval = 10
	}
	return &Slideshow{win: win, rng: rand.New(rand.NewSource(seed)), Interval: interval}
}

// Name implements Workload.
func (s *Slideshow) Name() string { return "slideshow" }

// Rebind implements Rebinder.
func (s *Slideshow) Rebind(_ *display.Desktop, win *display.Window) { s.win = win }

// Step implements Workload.
func (s *Slideshow) Step() {
	if s.step%s.Interval == 0 {
		s.win.Blit(Photo(s.win.Bounds().Width, s.win.Bounds().Height, s.rng.Int63()), 0, 0)
		s.slide++
	}
	s.step++
}

// Slides returns how many slides have been shown.
func (s *Slideshow) Slides() int { return s.slide }

// VideoRegion updates a fixed sub-rectangle with new photographic
// content on every step — the worst case for lossless screen codecs.
type VideoRegion struct {
	win   *display.Window
	rng   *rand.Rand
	Rect  region.Rect
	frame int
}

// NewVideoRegion returns a video workload playing inside r.
func NewVideoRegion(win *display.Window, r region.Rect, seed int64) *VideoRegion {
	return &VideoRegion{win: win, rng: rand.New(rand.NewSource(seed)), Rect: r}
}

// Name implements Workload.
func (v *VideoRegion) Name() string { return "video" }

// Rebind implements Rebinder.
func (v *VideoRegion) Rebind(_ *display.Desktop, win *display.Window) { v.win = win }

// Step implements Workload.
func (v *VideoRegion) Step() {
	v.win.Blit(Photo(v.Rect.Width, v.Rect.Height, v.rng.Int63()), v.Rect.Left, v.Rect.Top)
	v.frame++
}

// WindowDrag relocates a window along a seeded random walk, exercising
// the WindowManagerInfo path.
type WindowDrag struct {
	desk   *display.Desktop
	id     uint16
	rng    *rand.Rand
	Step2D int
}

// NewWindowDrag returns a drag workload moving the window each step.
func NewWindowDrag(desk *display.Desktop, id uint16, seed int64) *WindowDrag {
	return &WindowDrag{desk: desk, id: id, rng: rand.New(rand.NewSource(seed)), Step2D: 16}
}

// Name implements Workload.
func (d *WindowDrag) Name() string { return "windowdrag" }

// Rebind implements Rebinder: drags address windows by id, so only the
// desktop handle needs replacing.
func (d *WindowDrag) Rebind(desk *display.Desktop, _ *display.Window) { d.desk = desk }

// Step implements Workload.
func (d *WindowDrag) Step() {
	w := d.desk.Window(d.id)
	if w == nil {
		return
	}
	b := w.Bounds()
	dw, dh := d.desk.Size()
	nx := clamp(b.Left+d.rng.Intn(2*d.Step2D+1)-d.Step2D, 0, dw-b.Width)
	ny := clamp(b.Top+d.rng.Intn(2*d.Step2D+1)-d.Step2D, 0, dh-b.Height)
	_ = d.desk.MoveWindow(d.id, nx, ny)
}

func clamp(v, lo, hi int) int {
	if hi < lo {
		hi = lo
	}
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Revisit cycles a fixed set of pre-rendered synthetic pages through the
// window — the content-revisit family a persistent tile store exploits:
//
//   - slide-revisit: a presenter cycling back through earlier slides
//     (several pages, slow cadence),
//   - page-flip / scroll-back: a reader alternating between two document
//     pages (two pages, fast cadence),
//   - re-expose: a window repainting identical content after occlusion
//     (one page, re-blitted verbatim).
//
// Pages are text over flat tints so they encode losslessly (PNG); every
// flip repaints the whole viewport, but after the first lap each tile is
// already in the dictionary.
type Revisit struct {
	win      *display.Window
	name     string
	Interval int
	pages    []*image.RGBA
	step     int
	idx      int
}

// NewRevisit pre-renders `pages` synthetic pages into win and returns a
// workload that blits the next page every interval steps. Page 0 is
// shown at construction. One page models re-expose: the same content is
// re-blitted, damaging the viewport without changing a pixel.
func NewRevisit(name string, win *display.Window, pages, interval int, seed int64) *Revisit {
	if pages <= 0 {
		pages = 1
	}
	if interval <= 0 {
		interval = 5
	}
	r := &Revisit{win: win, name: name, Interval: interval}
	rng := rand.New(rand.NewSource(seed))
	for n := 0; n < pages; n++ {
		r.pages = append(r.pages, r.renderPage(n, rng))
	}
	win.Blit(r.pages[0], 0, 0)
	return r
}

// renderPage draws one deterministic slide page into the window and
// snapshots it. Each page gets a distinct background tint, a heading
// bar, body text, and an embedded dithered figure — the palette-bounded
// pixel noise a chart or screenshot becomes after an application
// dithers it for screen sharing. The figure keeps the page firmly in
// PNG territory for the classifier (a handful of distinct colors) while
// defeating PNG's row filters, the realistic worst case the tile store
// amortizes across revisits.
func (r *Revisit) renderPage(n int, rng *rand.Rand) *image.RGBA {
	b := r.win.Bounds()
	bg := color.RGBA{0xFF - uint8(n%8)*4, 0xFC - uint8(n%8)*6, 0xF4 - uint8(n%8)*8, 0xFF}
	fg := color.RGBA{0x18, 0x18, 0x28, 0xFF}
	r.win.Clear(bg)
	bar := color.RGBA{0x30 + uint8(n%8)*20, 0x50, 0xA0, 0xFF}
	r.win.Fill(region.XYWH(0, 0, b.Width, display.CellHeight+6), bar)
	r.win.DrawText(6, 3, words[n%len(words)], color.RGBA{0xFF, 0xFF, 0xFF, 0xFF})
	figTop := display.CellHeight + 10
	figH := (b.Height - figTop) * 2 / 5
	if figH > 8 {
		r.win.Blit(ditheredFigure(b.Width-12, figH, rng), 6, figTop)
	}
	for y := figTop + figH + 4; y+display.GlyphHeight < b.Height-4; y += display.CellHeight {
		x := 6
		for x < b.Width-40 {
			word := words[rng.Intn(len(words))]
			r.win.DrawText(x, y, word, fg)
			wpx, _ := display.TextExtent(word + " ")
			x += wpx
		}
	}
	return r.win.Snapshot()
}

// ditheredFigure synthesizes a 16-color dithered image region: per-pixel
// noise drawn from a small seeded palette. Bounded distinct colors keep
// the region classified synthetic (lossless PNG), while the spatial
// noise is incompressible for PNG's byte-level filters — matching what
// charts and photos look like after error-diffusion dithering.
func ditheredFigure(w, h int, rng *rand.Rand) *image.RGBA {
	var pal [16]color.RGBA
	for i := range pal {
		pal[i] = color.RGBA{
			R: uint8(40 + rng.Intn(180)),
			G: uint8(40 + rng.Intn(180)),
			B: uint8(40 + rng.Intn(180)),
			A: 0xFF,
		}
	}
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			img.SetRGBA(x, y, pal[rng.Intn(len(pal))])
		}
	}
	return img
}

// Name implements Workload.
func (r *Revisit) Name() string { return r.name }

// Rebind implements Rebinder: the pre-rendered pages and cycle position
// survive, so the revisit pattern (and the tile-reference traffic it
// generates) continues seamlessly on the restored window.
func (r *Revisit) Rebind(_ *display.Desktop, win *display.Window) { r.win = win }

// Step implements Workload.
func (r *Revisit) Step() {
	r.step++
	if r.step%r.Interval != 0 {
		return
	}
	r.idx = (r.idx + 1) % len(r.pages)
	r.win.Blit(r.pages[r.idx], 0, 0)
}

// Pages returns how many distinct pages the workload cycles.
func (r *Revisit) Pages() int { return len(r.pages) }

// Idle does nothing — the control workload.
type Idle struct{}

// Name implements Workload.
func (Idle) Name() string { return "idle" }

// Step implements Workload.
func (Idle) Step() {}

// Rebind implements Rebinder.
func (Idle) Rebind(*display.Desktop, *display.Window) {}

// Photo synthesizes a pseudo-photographic image: layered smooth
// gradients plus per-pixel noise, matching the statistics that favor
// JPEG over PNG (Section 4.2).
func Photo(w, h int, seed int64) *image.RGBA {
	rng := rand.New(rand.NewSource(seed))
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	// Random gradient orientation per slide.
	ax, ay := rng.Float64(), rng.Float64()
	bx, by := rng.Float64(), rng.Float64()
	base := uint8(rng.Intn(64))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			fx, fy := float64(x)/float64(w), float64(y)/float64(h)
			r := base + uint8(190*(ax*fx+(1-ax)*fy)) + uint8(rng.Intn(13))
			g := base + uint8(190*(ay*fy+(1-ay)*fx)) + uint8(rng.Intn(13))
			b := base + uint8(190*(bx*fx+by*fy)/(bx+by+0.01)) + uint8(rng.Intn(13))
			img.SetRGBA(x, y, color.RGBA{R: r, G: g, B: b, A: 0xFF})
		}
	}
	return img
}
