// Package wire provides big-endian primitive encoding helpers shared by
// every protocol codec in this repository (RTP, RTCP, remoting, HIP, BFCP).
//
// All multi-byte fields on the wire are network byte order (big-endian),
// following RTP (RFC 3550) convention. The Reader and Writer types wrap a
// byte slice with bounds checking so message codecs can be written as
// straight-line field lists and still fail cleanly on truncated input.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrShortBuffer is returned when a decode runs past the end of the input.
var ErrShortBuffer = errors.New("wire: short buffer")

// Reader is a bounds-checked cursor over a byte slice. The zero value is an
// empty reader. After any failed read every subsequent read fails too, so a
// codec may decode all fields and check Err once at the end.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over buf. The Reader does not copy buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first error encountered, or nil.
func (r *Reader) Err() error { return r.err }

// Len returns the number of unread bytes.
func (r *Reader) Len() int { return len(r.buf) - r.off }

// Offset returns the number of bytes consumed so far.
func (r *Reader) Offset() int { return r.off }

func (r *Reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("%w at offset %d", ErrShortBuffer, r.off)
	}
}

// Uint8 reads one byte.
func (r *Reader) Uint8() uint8 {
	if r.err != nil || r.off+1 > len(r.buf) {
		r.fail()
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

// Uint16 reads a big-endian 16-bit value.
func (r *Reader) Uint16() uint16 {
	if r.err != nil || r.off+2 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(r.buf[r.off:])
	r.off += 2
	return v
}

// Uint32 reads a big-endian 32-bit value.
func (r *Reader) Uint32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

// Int32 reads a big-endian 32-bit two's-complement value. The draft uses
// this for the MouseWheelMoved distance field, which may be negative.
func (r *Reader) Int32() int32 { return int32(r.Uint32()) }

// Uint64 reads a big-endian 64-bit value (tile-reference hash lanes).
func (r *Reader) Uint64() uint64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

// Bytes reads exactly n bytes, returning a subslice of the underlying
// buffer (no copy).
func (r *Reader) Bytes(n int) []byte {
	if n < 0 || r.err != nil || r.off+n > len(r.buf) {
		r.fail()
		return nil
	}
	v := r.buf[r.off : r.off+n]
	r.off += n
	return v
}

// Rest returns all unread bytes (possibly empty) without copying.
func (r *Reader) Rest() []byte {
	if r.err != nil {
		return nil
	}
	v := r.buf[r.off:]
	r.off = len(r.buf)
	return v
}

// Skip advances the cursor by n bytes.
func (r *Reader) Skip(n int) {
	if n < 0 || r.err != nil || r.off+n > len(r.buf) {
		r.fail()
		return
	}
	r.off += n
}

// Writer accumulates big-endian fields into a growing buffer. The zero
// value is ready to use.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer whose buffer has the given capacity hint.
func NewWriter(sizeHint int) *Writer {
	return &Writer{buf: make([]byte, 0, sizeHint)}
}

// Bytes returns the encoded bytes. The slice aliases the Writer's internal
// buffer; callers that keep it across further writes must copy.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Uint8 appends one byte.
func (w *Writer) Uint8(v uint8) { w.buf = append(w.buf, v) }

// Uint16 appends a big-endian 16-bit value.
func (w *Writer) Uint16(v uint16) {
	w.buf = binary.BigEndian.AppendUint16(w.buf, v)
}

// Uint32 appends a big-endian 32-bit value.
func (w *Writer) Uint32(v uint32) {
	w.buf = binary.BigEndian.AppendUint32(w.buf, v)
}

// Int32 appends a big-endian 32-bit two's-complement value.
func (w *Writer) Int32(v int32) { w.Uint32(uint32(v)) }

// Uint64 appends a big-endian 64-bit value.
func (w *Writer) Uint64(v uint64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, v)
}

// Write appends raw bytes. It never fails; the error return satisfies
// io.Writer so fmt.Fprintf can target a Writer.
func (w *Writer) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}
