package wire

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestWriterReaderRoundtrip(t *testing.T) {
	w := NewWriter(16)
	w.Uint8(0xAB)
	w.Uint16(0xCDEF)
	w.Uint32(0x01234567)
	w.Int32(-120)
	if _, err := w.Write([]byte{1, 2, 3}); err != nil {
		t.Fatalf("Write: %v", err)
	}

	r := NewReader(w.Bytes())
	if got := r.Uint8(); got != 0xAB {
		t.Errorf("Uint8 = %#x, want 0xAB", got)
	}
	if got := r.Uint16(); got != 0xCDEF {
		t.Errorf("Uint16 = %#x, want 0xCDEF", got)
	}
	if got := r.Uint32(); got != 0x01234567 {
		t.Errorf("Uint32 = %#x, want 0x01234567", got)
	}
	if got := r.Int32(); got != -120 {
		t.Errorf("Int32 = %d, want -120", got)
	}
	if got := r.Bytes(3); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Bytes(3) = %v, want [1 2 3]", got)
	}
	if err := r.Err(); err != nil {
		t.Errorf("Err = %v, want nil", err)
	}
	if r.Len() != 0 {
		t.Errorf("Len = %d, want 0", r.Len())
	}
}

func TestReaderShortBuffer(t *testing.T) {
	r := NewReader([]byte{1, 2})
	_ = r.Uint32()
	if !errors.Is(r.Err(), ErrShortBuffer) {
		t.Fatalf("Err = %v, want ErrShortBuffer", r.Err())
	}
	// Subsequent reads keep failing and return zero values.
	if got := r.Uint8(); got != 0 {
		t.Errorf("Uint8 after failure = %d, want 0", got)
	}
	if got := r.Bytes(1); got != nil {
		t.Errorf("Bytes after failure = %v, want nil", got)
	}
}

func TestReaderSkipAndRest(t *testing.T) {
	r := NewReader([]byte{1, 2, 3, 4, 5})
	r.Skip(2)
	if got := r.Offset(); got != 2 {
		t.Fatalf("Offset = %d, want 2", got)
	}
	rest := r.Rest()
	if !bytes.Equal(rest, []byte{3, 4, 5}) {
		t.Fatalf("Rest = %v, want [3 4 5]", rest)
	}
	if r.Len() != 0 {
		t.Fatalf("Len after Rest = %d, want 0", r.Len())
	}
}

func TestReaderNegativeCounts(t *testing.T) {
	r := NewReader([]byte{1, 2, 3})
	if got := r.Bytes(-1); got != nil {
		t.Errorf("Bytes(-1) = %v, want nil", got)
	}
	if !errors.Is(r.Err(), ErrShortBuffer) {
		t.Errorf("Err = %v, want ErrShortBuffer", r.Err())
	}

	r2 := NewReader([]byte{1, 2, 3})
	r2.Skip(-5)
	if !errors.Is(r2.Err(), ErrShortBuffer) {
		t.Errorf("Skip(-5) Err = %v, want ErrShortBuffer", r2.Err())
	}
}

func TestQuickUint32Roundtrip(t *testing.T) {
	f := func(v uint32) bool {
		w := NewWriter(4)
		w.Uint32(v)
		return NewReader(w.Bytes()).Uint32() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickInt32Roundtrip(t *testing.T) {
	f := func(v int32) bool {
		w := NewWriter(4)
		w.Int32(v)
		return NewReader(w.Bytes()).Int32() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMixedFieldsRoundtrip(t *testing.T) {
	f := func(a uint8, b uint16, c uint32, tail []byte) bool {
		w := NewWriter(7 + len(tail))
		w.Uint8(a)
		w.Uint16(b)
		w.Uint32(c)
		w.Write(tail)
		r := NewReader(w.Bytes())
		if r.Uint8() != a || r.Uint16() != b || r.Uint32() != c {
			return false
		}
		return bytes.Equal(r.Rest(), tail) && r.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
