// Package apps provides application behaviors for shared windows: the
// programs the AH "runs" on the virtual desktop. The AH regenerates
// participants' HIP events into these handlers (draft Section 1), whose
// reactions repaint the window and thereby flow back to every
// participant as RegionUpdates — the full interactive loop.
package apps

import (
	"fmt"
	"image/color"
	"sync"

	"appshare/internal/display"
	"appshare/internal/keycodes"
	"appshare/internal/region"
)

// Editor is a minimal text editor: KeyTyped text is appended at the
// caret, Enter breaks lines, Backspace deletes, the window scrolls when
// full, and clicks reposition the caret. It implements
// display.EventHandler.
type Editor struct {
	mu      sync.Mutex
	x, y    int
	margin  int
	fg, bg  color.RGBA
	pressed map[uint32]bool
	// Text accumulates everything typed, for assertions in tests.
	text []rune
}

// NewEditor returns an editor and paints the window's initial state.
func NewEditor(w *display.Window) *Editor {
	e := &Editor{
		margin:  6,
		fg:      color.RGBA{0x10, 0x10, 0x20, 0xFF},
		bg:      color.RGBA{0xFF, 0xFF, 0xFF, 0xFF},
		pressed: make(map[uint32]bool),
	}
	e.x, e.y = e.margin, e.margin
	w.Clear(e.bg)
	w.SetHandler(e)
	return e
}

// Text returns everything typed so far.
func (e *Editor) Text() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return string(e.text)
}

// MousePressed implements display.EventHandler: clicking repositions the
// caret to the click's cell.
func (e *Editor) MousePressed(w *display.Window, x, y int, button uint8) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.x = e.margin + (x-e.margin)/display.CellWidth*display.CellWidth
	e.y = e.margin + (y-e.margin)/display.CellHeight*display.CellHeight
}

// MouseReleased implements display.EventHandler.
func (e *Editor) MouseReleased(*display.Window, int, int, uint8) {}

// MouseMoved implements display.EventHandler.
func (e *Editor) MouseMoved(*display.Window, int, int) {}

// MouseWheel implements display.EventHandler: wheel scrolls the window
// content (120 units per text line).
func (e *Editor) MouseWheel(w *display.Window, x, y, distance int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	lines := distance / 120
	if lines == 0 {
		return
	}
	w.Scroll(region.XYWH(0, 0, w.Bounds().Width, w.Bounds().Height),
		lines*display.CellHeight, e.bg)
}

// KeyPressed implements display.EventHandler. Character keys echo via
// the US keymap; Enter and Backspace act directly.
func (e *Editor) KeyPressed(w *display.Window, keycode uint32) {
	e.mu.Lock()
	defer e.mu.Unlock()
	code := keycodes.Code(keycode)
	e.pressed[keycode] = true
	switch code {
	case keycodes.VKEnter:
		e.newlineLocked(w)
	case keycodes.VKBackspace:
		e.backspaceLocked(w)
	default:
		if code.IsModifier() {
			return
		}
		shift := e.pressed[uint32(keycodes.VKShift)]
		if r, ok := code.Rune(shift); ok {
			e.insertLocked(w, r)
		}
	}
}

// KeyReleased implements display.EventHandler.
func (e *Editor) KeyReleased(w *display.Window, keycode uint32) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.pressed, keycode)
}

// KeyTyped implements display.EventHandler: injected UTF-8 text.
func (e *Editor) KeyTyped(w *display.Window, text string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, r := range text {
		if r == '\n' {
			e.newlineLocked(w)
			continue
		}
		e.insertLocked(w, r)
	}
}

func (e *Editor) insertLocked(w *display.Window, r rune) {
	if e.x+display.CellWidth >= w.Bounds().Width-e.margin {
		e.newlineLocked(w)
	}
	w.DrawText(e.x, e.y, string(r), e.fg)
	e.x += display.CellWidth
	e.text = append(e.text, r)
}

func (e *Editor) newlineLocked(w *display.Window) {
	e.x = e.margin
	e.y += display.CellHeight
	e.text = append(e.text, '\n')
	if e.y+display.GlyphHeight >= w.Bounds().Height-e.margin {
		w.Scroll(region.XYWH(0, 0, w.Bounds().Width, w.Bounds().Height),
			-display.CellHeight, e.bg)
		e.y -= display.CellHeight
	}
}

func (e *Editor) backspaceLocked(w *display.Window) {
	if len(e.text) == 0 || e.x <= e.margin {
		return
	}
	e.text = e.text[:len(e.text)-1]
	e.x -= display.CellWidth
	w.Fill(region.XYWH(e.x, e.y, display.CellWidth, display.CellHeight), e.bg)
}

// Whiteboard is a shared drawing canvas: dragging with the left button
// draws in the current color; the wheel cycles colors; right-click
// clears. It implements display.EventHandler.
type Whiteboard struct {
	mu       sync.Mutex
	drawing  bool
	lastX    int
	lastY    int
	colorIdx int
	palette  []color.RGBA
	strokes  int
}

// NewWhiteboard returns a whiteboard and paints the window white.
func NewWhiteboard(w *display.Window) *Whiteboard {
	wb := &Whiteboard{
		palette: []color.RGBA{
			{0x20, 0x20, 0x20, 0xFF},
			{0xD0, 0x20, 0x20, 0xFF},
			{0x20, 0x90, 0x20, 0xFF},
			{0x20, 0x20, 0xD0, 0xFF},
		},
	}
	w.Clear(color.RGBA{0xFF, 0xFF, 0xFF, 0xFF})
	w.SetHandler(wb)
	return wb
}

// Strokes returns how many line segments have been drawn.
func (wb *Whiteboard) Strokes() int {
	wb.mu.Lock()
	defer wb.mu.Unlock()
	return wb.strokes
}

// MousePressed implements display.EventHandler.
func (wb *Whiteboard) MousePressed(w *display.Window, x, y int, button uint8) {
	wb.mu.Lock()
	defer wb.mu.Unlock()
	switch button {
	case 1:
		wb.drawing = true
		wb.lastX, wb.lastY = x, y
		wb.plotLocked(w, x, y)
	case 2:
		w.Clear(color.RGBA{0xFF, 0xFF, 0xFF, 0xFF})
	}
}

// MouseReleased implements display.EventHandler.
func (wb *Whiteboard) MouseReleased(w *display.Window, x, y int, button uint8) {
	wb.mu.Lock()
	defer wb.mu.Unlock()
	if button == 1 {
		wb.drawing = false
	}
}

// MouseMoved implements display.EventHandler: draws while dragging.
func (wb *Whiteboard) MouseMoved(w *display.Window, x, y int) {
	wb.mu.Lock()
	defer wb.mu.Unlock()
	if !wb.drawing {
		return
	}
	wb.lineLocked(w, wb.lastX, wb.lastY, x, y)
	wb.lastX, wb.lastY = x, y
}

// MouseWheel implements display.EventHandler: cycles the pen color.
func (wb *Whiteboard) MouseWheel(w *display.Window, x, y, distance int) {
	wb.mu.Lock()
	defer wb.mu.Unlock()
	steps := distance / 120
	wb.colorIdx = ((wb.colorIdx+steps)%len(wb.palette) + len(wb.palette)) % len(wb.palette)
}

// KeyPressed implements display.EventHandler.
func (wb *Whiteboard) KeyPressed(*display.Window, uint32) {}

// KeyReleased implements display.EventHandler.
func (wb *Whiteboard) KeyReleased(*display.Window, uint32) {}

// KeyTyped implements display.EventHandler.
func (wb *Whiteboard) KeyTyped(*display.Window, string) {}

func (wb *Whiteboard) plotLocked(w *display.Window, x, y int) {
	w.Fill(region.XYWH(x-1, y-1, 3, 3), wb.palette[wb.colorIdx])
}

// lineLocked draws a Bresenham line of 3x3 pen dots.
func (wb *Whiteboard) lineLocked(w *display.Window, x0, y0, x1, y1 int) {
	dx, dy := abs(x1-x0), -abs(y1-y0)
	sx, sy := 1, 1
	if x0 > x1 {
		sx = -1
	}
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		wb.plotLocked(w, x0, y0)
		if x0 == x1 && y0 == y1 {
			break
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
	wb.strokes++
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Button is a clickable toggle: each left click flips its state and
// repaints. It implements display.EventHandler.
type Button struct {
	mu     sync.Mutex
	rect   region.Rect
	on     bool
	clicks int
	label  string
}

// NewButton places a toggle button inside the window.
func NewButton(w *display.Window, rect region.Rect, label string) *Button {
	b := &Button{rect: rect, label: label}
	b.paint(w)
	w.SetHandler(b)
	return b
}

// On reports the toggle state.
func (b *Button) On() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.on
}

// Clicks returns the number of clicks handled.
func (b *Button) Clicks() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.clicks
}

func (b *Button) paint(w *display.Window) {
	fill := color.RGBA{0xC8, 0x30, 0x30, 0xFF}
	if b.on {
		fill = color.RGBA{0x30, 0xC8, 0x30, 0xFF}
	}
	w.Fill(b.rect, fill)
	state := "OFF"
	if b.on {
		state = "ON"
	}
	w.DrawText(b.rect.Left+6, b.rect.Top+6, fmt.Sprintf("%s: %s", b.label, state),
		color.RGBA{0xFF, 0xFF, 0xFF, 0xFF})
}

// MousePressed implements display.EventHandler.
func (b *Button) MousePressed(w *display.Window, x, y int, button uint8) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if button != 1 || !b.rect.Contains(x, y) {
		return
	}
	b.on = !b.on
	b.clicks++
	b.paint(w)
}

// MouseReleased implements display.EventHandler.
func (b *Button) MouseReleased(*display.Window, int, int, uint8) {}

// MouseMoved implements display.EventHandler.
func (b *Button) MouseMoved(*display.Window, int, int) {}

// MouseWheel implements display.EventHandler.
func (b *Button) MouseWheel(*display.Window, int, int, int) {}

// KeyPressed implements display.EventHandler.
func (b *Button) KeyPressed(*display.Window, uint32) {}

// KeyReleased implements display.EventHandler.
func (b *Button) KeyReleased(*display.Window, uint32) {}

// KeyTyped implements display.EventHandler.
func (b *Button) KeyTyped(*display.Window, string) {}
