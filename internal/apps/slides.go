package apps

import (
	"fmt"
	"image/color"
	"sync"

	"appshare/internal/display"
	"appshare/internal/keycodes"
	"appshare/internal/region"
	"appshare/internal/workload"
)

// Slides is a presentation viewer: a deck of generated slides navigated
// with PageUp/PageDown, arrow keys, or mouse clicks (left half = back,
// right half = forward) — the software-tutoring scenario the draft's
// introduction motivates. It implements display.EventHandler.
type Slides struct {
	mu      sync.Mutex
	count   int
	current int
	seed    int64
}

// NewSlides attaches a deck of n slides to the window and renders the
// first one.
func NewSlides(w *display.Window, n int, seed int64) *Slides {
	if n < 1 {
		n = 1
	}
	s := &Slides{count: n, seed: seed}
	w.SetHandler(s)
	s.render(w)
	return s
}

// Current returns the zero-based slide index being shown.
func (s *Slides) Current() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.current
}

// Count returns the deck size.
func (s *Slides) Count() int { return s.count }

func (s *Slides) render(w *display.Window) {
	bounds := w.Bounds()
	// Slide body: alternate between a text slide and a photo slide so
	// the stream exercises both content classes.
	if s.current%2 == 0 {
		w.Clear(color.RGBA{0xFD, 0xF6, 0xE3, 0xFF})
		title := fmt.Sprintf("Slide %d of %d", s.current+1, s.count)
		w.DrawText(16, 14, title, color.RGBA{0x26, 0x26, 0x66, 0xFF})
		w.Fill(region.XYWH(16, 30, bounds.Width-32, 2), color.RGBA{0x26, 0x26, 0x66, 0xFF})
		for i := 0; i < 5; i++ {
			w.DrawText(24, 48+i*14, fmt.Sprintf("- bullet point %d on slide %d", i+1, s.current+1),
				color.RGBA{0x30, 0x30, 0x30, 0xFF})
		}
	} else {
		img := workload.Photo(bounds.Width, bounds.Height-24, s.seed+int64(s.current))
		w.Clear(color.RGBA{0x10, 0x10, 0x10, 0xFF})
		w.Blit(img, 0, 24)
		w.DrawText(16, 8, fmt.Sprintf("Figure %d", s.current/2+1), color.RGBA{0xFF, 0xFF, 0xFF, 0xFF})
	}
	// Progress bar.
	frac := bounds.Width * (s.current + 1) / s.count
	w.Fill(region.XYWH(0, bounds.Height-4, bounds.Width, 4), color.RGBA{0xD0, 0xD0, 0xD0, 0xFF})
	w.Fill(region.XYWH(0, bounds.Height-4, frac, 4), color.RGBA{0x26, 0x8B, 0xD2, 0xFF})
}

func (s *Slides) step(w *display.Window, delta int) {
	next := s.current + delta
	if next < 0 || next >= s.count {
		return
	}
	s.current = next
	s.render(w)
}

// KeyPressed implements display.EventHandler: PageDown/Right/Space
// advance; PageUp/Left go back; Home/End jump.
func (s *Slides) KeyPressed(w *display.Window, keycode uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch keycodes.Code(keycode) {
	case keycodes.VKPageDown, keycodes.VKRight, keycodes.VKSpace:
		s.step(w, 1)
	case keycodes.VKPageUp, keycodes.VKLeft:
		s.step(w, -1)
	case keycodes.VKHome:
		s.step(w, -s.current)
	case keycodes.VKEnd:
		s.step(w, s.count-1-s.current)
	}
}

// MousePressed implements display.EventHandler: right half advances,
// left half goes back.
func (s *Slides) MousePressed(w *display.Window, x, y int, button uint8) {
	if button != 1 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if x >= w.Bounds().Width/2 {
		s.step(w, 1)
	} else {
		s.step(w, -1)
	}
}

// MouseReleased implements display.EventHandler.
func (s *Slides) MouseReleased(*display.Window, int, int, uint8) {}

// MouseMoved implements display.EventHandler.
func (s *Slides) MouseMoved(*display.Window, int, int) {}

// MouseWheel implements display.EventHandler: wheel notches navigate.
func (s *Slides) MouseWheel(w *display.Window, x, y, distance int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.step(w, -distance/120)
}

// KeyReleased implements display.EventHandler.
func (s *Slides) KeyReleased(*display.Window, uint32) {}

// KeyTyped implements display.EventHandler.
func (s *Slides) KeyTyped(*display.Window, string) {}
