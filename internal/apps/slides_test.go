package apps

import (
	"bytes"
	"testing"

	"appshare/internal/display"
	"appshare/internal/keycodes"
	"appshare/internal/region"
)

func newDeck(t *testing.T, n int) (*display.Desktop, *display.Window, *Slides) {
	t.Helper()
	d := display.NewDesktop(800, 600)
	w := d.CreateWindow(1, region.XYWH(40, 30, 480, 360))
	s := NewSlides(w, n, 7)
	return d, w, s
}

func TestSlidesKeyboardNavigation(t *testing.T) {
	d, w, s := newDeck(t, 5)
	press := func(c keycodes.Code) {
		if err := d.InjectKeyPressed(w.ID(), uint32(c)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Current() != 0 || s.Count() != 5 {
		t.Fatalf("initial = %d/%d", s.Current(), s.Count())
	}
	press(keycodes.VKPageDown)
	press(keycodes.VKRight)
	if s.Current() != 2 {
		t.Fatalf("after two advances = %d", s.Current())
	}
	press(keycodes.VKPageUp)
	if s.Current() != 1 {
		t.Fatalf("after back = %d", s.Current())
	}
	press(keycodes.VKEnd)
	if s.Current() != 4 {
		t.Fatalf("End = %d", s.Current())
	}
	// Advancing past the end is a no-op.
	press(keycodes.VKSpace)
	if s.Current() != 4 {
		t.Fatalf("past end = %d", s.Current())
	}
	press(keycodes.VKHome)
	if s.Current() != 0 {
		t.Fatalf("Home = %d", s.Current())
	}
	press(keycodes.VKLeft)
	if s.Current() != 0 {
		t.Fatalf("before start = %d", s.Current())
	}
}

func TestSlidesMouseAndWheel(t *testing.T) {
	d, w, s := newDeck(t, 4)
	// Click right half: advance. Window origin (40,30), width 480.
	if err := d.InjectMousePressed(w.ID(), 40+400, 30+100, 1); err != nil {
		t.Fatal(err)
	}
	if s.Current() != 1 {
		t.Fatalf("right click = %d", s.Current())
	}
	// Click left half: back.
	if err := d.InjectMousePressed(w.ID(), 40+50, 30+100, 1); err != nil {
		t.Fatal(err)
	}
	if s.Current() != 0 {
		t.Fatalf("left click = %d", s.Current())
	}
	// Right button does nothing.
	if err := d.InjectMousePressed(w.ID(), 40+400, 30+100, 2); err != nil {
		t.Fatal(err)
	}
	if s.Current() != 0 {
		t.Fatalf("right button = %d", s.Current())
	}
	// Wheel toward the user advances one notch.
	if err := d.InjectMouseWheel(w.ID(), 40+100, 30+100, -120); err != nil {
		t.Fatal(err)
	}
	if s.Current() != 1 {
		t.Fatalf("wheel = %d", s.Current())
	}
}

func TestSlidesRepaintOnNavigate(t *testing.T) {
	d, w, s := newDeck(t, 3)
	before := w.Snapshot()
	d.TakeDamage(0)
	if err := d.InjectKeyPressed(w.ID(), uint32(keycodes.VKPageDown)); err != nil {
		t.Fatal(err)
	}
	if s.Current() != 1 {
		t.Fatal("did not advance")
	}
	after := w.Snapshot()
	if bytes.Equal(before.Pix, after.Pix) {
		t.Fatal("slide change did not repaint")
	}
	if len(d.TakeDamage(1<<30)) == 0 {
		t.Fatal("no damage recorded for repaint")
	}
}
