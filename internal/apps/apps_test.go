package apps

import (
	"image/color"
	"strings"
	"testing"

	"appshare/internal/display"
	"appshare/internal/keycodes"
	"appshare/internal/region"
)

func newWin() (*display.Desktop, *display.Window) {
	d := display.NewDesktop(800, 600)
	w := d.CreateWindow(1, region.XYWH(50, 50, 400, 300))
	return d, w
}

func TestEditorTyping(t *testing.T) {
	d, w := newWin()
	ed := NewEditor(w)
	if err := d.InjectKeyTyped(w.ID(), "hello world"); err != nil {
		t.Fatal(err)
	}
	if ed.Text() != "hello world" {
		t.Fatalf("text = %q", ed.Text())
	}
	// Pixels changed where the text landed.
	img := w.Snapshot()
	found := false
	for x := 0; x < 100 && !found; x++ {
		for y := 0; y < 20; y++ {
			if img.RGBAAt(x, y) == (color.RGBA{0x10, 0x10, 0x20, 0xFF}) {
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("typed text not rendered")
	}
}

func TestEditorKeyEventsAndShift(t *testing.T) {
	d, w := newWin()
	ed := NewEditor(w)
	press := func(c keycodes.Code) {
		if err := d.InjectKeyPressed(w.ID(), uint32(c)); err != nil {
			t.Fatal(err)
		}
		if err := d.InjectKeyReleased(w.ID(), uint32(c)); err != nil {
			t.Fatal(err)
		}
	}
	// "a", then Shift+"b" = "B", then Enter.
	press(keycodes.VKA)
	if err := d.InjectKeyPressed(w.ID(), uint32(keycodes.VKShift)); err != nil {
		t.Fatal(err)
	}
	press(keycodes.VKB)
	if err := d.InjectKeyReleased(w.ID(), uint32(keycodes.VKShift)); err != nil {
		t.Fatal(err)
	}
	press(keycodes.VKEnter)
	if got := ed.Text(); got != "aB\n" {
		t.Fatalf("text = %q, want \"aB\\n\"", got)
	}
	// Backspace removes nothing at line start (caret at margin).
	press(keycodes.VKBackspace)
	press(keycodes.VKC)
	if got := ed.Text(); got != "aB\nc" {
		t.Fatalf("text = %q", got)
	}
}

func TestEditorLongTypingScrolls(t *testing.T) {
	d, w := newWin()
	NewEditor(w)
	d.TakeMoves()
	long := strings.Repeat("lorem ipsum dolor sit amet ", 120)
	if err := d.InjectKeyTyped(w.ID(), long); err != nil {
		t.Fatal(err)
	}
	if len(d.TakeMoves()) == 0 {
		t.Fatal("long text never scrolled the editor")
	}
}

func TestEditorClickRepositionsCaret(t *testing.T) {
	d, w := newWin()
	ed := NewEditor(w)
	// Click in the middle, then type.
	if err := d.InjectMousePressed(w.ID(), 50+100, 50+100, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.InjectKeyTyped(w.ID(), "x"); err != nil {
		t.Fatal(err)
	}
	if ed.Text() != "x" {
		t.Fatalf("text = %q", ed.Text())
	}
	// Pixel near the click position should carry ink.
	img := w.Snapshot()
	found := false
	for dx := 0; dx < 12 && !found; dx++ {
		for dy := 0; dy < 12; dy++ {
			if img.RGBAAt(96+dx, 96+dy) == (color.RGBA{0x10, 0x10, 0x20, 0xFF}) {
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("text did not land near the caret click")
	}
}

func TestWhiteboardDrawing(t *testing.T) {
	d, w := newWin()
	wb := NewWhiteboard(w)
	// Drag a stroke.
	if err := d.InjectMousePressed(w.ID(), 100, 100, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.InjectMouseMoved(w.ID(), 150, 130); err != nil {
		t.Fatal(err)
	}
	if err := d.InjectMouseReleased(w.ID(), 150, 130, 1); err != nil {
		t.Fatal(err)
	}
	if wb.Strokes() != 1 {
		t.Fatalf("strokes = %d", wb.Strokes())
	}
	// Ink along the path (window-local 50..100 horizontally).
	img := w.Snapshot()
	if img.RGBAAt(75, 65) == (color.RGBA{0xFF, 0xFF, 0xFF, 0xFF}) {
		t.Fatal("no ink on the stroke path")
	}
	// Moving without the button down draws nothing new.
	before := wb.Strokes()
	if err := d.InjectMouseMoved(w.ID(), 200, 200); err != nil {
		t.Fatal(err)
	}
	if wb.Strokes() != before {
		t.Fatal("hover should not draw")
	}
	// Right-click clears.
	if err := d.InjectMousePressed(w.ID(), 100, 100, 2); err != nil {
		t.Fatal(err)
	}
	img = w.Snapshot()
	if img.RGBAAt(75, 65) != (color.RGBA{0xFF, 0xFF, 0xFF, 0xFF}) {
		t.Fatal("clear did not erase")
	}
}

func TestWhiteboardWheelCyclesColor(t *testing.T) {
	d, w := newWin()
	wb := NewWhiteboard(w)
	if err := d.InjectMouseWheel(w.ID(), 100, 100, 120); err != nil {
		t.Fatal(err)
	}
	if wb.colorIdx != 1 {
		t.Fatalf("color index = %d", wb.colorIdx)
	}
	// Negative wheel wraps around.
	if err := d.InjectMouseWheel(w.ID(), 100, 100, -240); err != nil {
		t.Fatal(err)
	}
	if wb.colorIdx != 3 {
		t.Fatalf("color index after wrap = %d", wb.colorIdx)
	}
}

func TestButtonToggle(t *testing.T) {
	d, w := newWin()
	b := NewButton(w, region.XYWH(20, 20, 120, 40), "Share")
	if b.On() {
		t.Fatal("button should start off")
	}
	// Click inside (desktop coords: window origin 50,50).
	if err := d.InjectMousePressed(w.ID(), 50+30, 50+30, 1); err != nil {
		t.Fatal(err)
	}
	if !b.On() || b.Clicks() != 1 {
		t.Fatalf("on=%v clicks=%d", b.On(), b.Clicks())
	}
	// Click outside the rect: no toggle.
	if err := d.InjectMousePressed(w.ID(), 50+300, 50+200, 1); err != nil {
		t.Fatal(err)
	}
	if b.Clicks() != 1 {
		t.Fatal("outside click toggled")
	}
	// Right click inside: no toggle.
	if err := d.InjectMousePressed(w.ID(), 50+30, 50+30, 2); err != nil {
		t.Fatal(err)
	}
	if b.Clicks() != 1 {
		t.Fatal("right click toggled")
	}
	// Second left click toggles off; pixel color flips.
	if err := d.InjectMousePressed(w.ID(), 50+30, 50+30, 1); err != nil {
		t.Fatal(err)
	}
	if b.On() {
		t.Fatal("second click should toggle off")
	}
	img := w.Snapshot()
	if img.RGBAAt(25, 55) != (color.RGBA{0xC8, 0x30, 0x30, 0xFF}) {
		t.Fatalf("off color = %v", img.RGBAAt(25, 55))
	}
}
