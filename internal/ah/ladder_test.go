package ah

import (
	"bytes"
	"image"
	"image/color"
	"testing"
	"time"

	"appshare/internal/display"
	"appshare/internal/participant"
	"appshare/internal/region"
	"appshare/internal/stats"
)

// ctrlSink is a sink whose congestion signals the test script controls
// directly, for driving the ladder controller without a real transport.
// Tests mutate the fields between sweeps on a single goroutine.
type ctrlSink struct {
	congested bool
	stall     time.Duration
	queuedN   int
}

func (c *ctrlSink) ship(p []byte) error                { return nil }
func (c *ctrlSink) shipBatch(ps [][]byte) (int, error) { return len(ps), nil }
func (c *ctrlSink) backlogged(int) bool                { return c.congested }
func (c *ctrlSink) queued() int                        { return c.queuedN }
func (c *ctrlSink) stalled() time.Duration             { return c.stall }
func (c *ctrlSink) drainStats() (int64, int64)         { return 0, 0 }
func (c *ctrlSink) close() error                       { return nil }

// testLadderConfig returns tight thresholds scaled to the 50ms sweep
// cadence the controller tests drive.
func testLadderConfig() *LadderConfig {
	return &LadderConfig{
		DemoteAfter:    100 * time.Millisecond,
		PromoteAfter:   200 * time.Millisecond,
		MinTierDwell:   50 * time.Millisecond,
		FlapWindow:     time.Second,
		MaxPromoteWait: 2 * time.Second,
	}
}

// ladderSweep runs one health/ladder sweep exactly as Tick does: the
// sweep under the host lock, eviction teardown outside it.
func ladderSweep(h *Host) {
	evs := h.sweepHealth(h.cfg.Now())
	h.finishEvictions(evs)
}

// newLadderHarness builds a host with the ladder enabled and one remote
// on a script-controlled sink.
func newLadderHarness(t *testing.T, lc *LadderConfig) (*Host, *Remote, *ctrlSink, *fakeClock, *stats.Collector) {
	t.Helper()
	clock := newFakeClock()
	st := stats.NewCollector()
	h, _ := newHost(t, Config{Now: clock.Now, Stats: st, Ladder: lc})
	t.Cleanup(func() { h.Close() })
	cs := &ctrlSink{}
	r := h.newRemote("ctrl", 0, cs)
	if err := h.addRemote(r); err != nil {
		t.Fatal(err)
	}
	return h, r, cs, clock, st
}

// TestLadderDemoteThroughTiersAndRecover walks a remote down every rung
// under sustained congestion — one rung at a time, never skipping — and
// back up under a clean signal, checking the health mirror, the stats
// kinds, the keyframe-tier pending purge and the resync latch owed from
// a lossy tier.
func TestLadderDemoteThroughTiersAndRecover(t *testing.T) {
	h, r, cs, clock, st := newLadderHarness(t, testLadderConfig())

	tierSeq := []QualityTier{TierFull}
	observe := func() {
		cur := r.QualityTier()
		if cur != tierSeq[len(tierSeq)-1] {
			tierSeq = append(tierSeq, cur)
		}
	}

	cs.congested = true
	for i := 0; i < 30 && r.QualityTier() != TierKeyframeOnly; i++ {
		// Seed pending detail once the remote reaches the scaled tier, so
		// the keyframe-tier purge below has something to purge.
		if r.QualityTier() == TierScaled {
			r.sh.mu.Lock()
			r.pending.Add(region.XYWH(0, 0, 16, 16))
			r.sh.mu.Unlock()
		}
		clock.Advance(50 * time.Millisecond)
		ladderSweep(h)
		observe()
	}
	wantDown := []QualityTier{TierFull, TierDecimated, TierScaled, TierKeyframeOnly}
	if len(tierSeq) != len(wantDown) {
		t.Fatalf("descent visited tiers %v, want %v", tierSeq, wantDown)
	}
	for i := range wantDown {
		if tierSeq[i] != wantDown[i] {
			t.Fatalf("descent visited tiers %v, want %v (rung skipped or reordered)", tierSeq, wantDown)
		}
	}
	if got := st.Get("QualityDemote").Messages; got != 3 {
		t.Fatalf("QualityDemote stat = %d, want 3", got)
	}
	hs := r.Health()
	if hs.State != HealthDegraded {
		t.Fatalf("keyframe-only remote reports health %v, want degraded", hs.State)
	}
	if hs.Tier != TierKeyframeOnly || hs.TierTransitions != 3 || hs.TierFlaps != 0 {
		t.Fatalf("health snapshot tier fields = %v/%d/%d, want keyframe/3/0",
			hs.Tier, hs.TierTransitions, hs.TierFlaps)
	}
	r.sh.mu.Lock()
	pendingEmpty := r.pending.Empty()
	r.sh.mu.Unlock()
	if !pendingEmpty {
		t.Fatal("entering the keyframe tier must purge accumulated pending detail")
	}

	// The link heals: the remote climbs back rung by rung, and leaving a
	// lossy tier latches the full-refresh resync.
	cs.congested = false
	for i := 0; i < 40 && r.QualityTier() != TierFull; i++ {
		clock.Advance(50 * time.Millisecond)
		ladderSweep(h)
		observe()
	}
	want := append(wantDown, TierScaled, TierDecimated, TierFull)
	if len(tierSeq) != len(want) {
		t.Fatalf("full walk visited tiers %v, want %v", tierSeq, want)
	}
	for i := range want {
		if tierSeq[i] != want[i] {
			t.Fatalf("full walk visited tiers %v, want %v", tierSeq, want)
		}
	}
	if got := st.Get("QualityPromote").Messages; got != 3 {
		t.Fatalf("QualityPromote stat = %d, want 3", got)
	}
	if got := st.Get("QualityFlap").Messages; got != 0 {
		t.Fatalf("QualityFlap stat = %d, want 0 for a clean recovery", got)
	}
	hs = r.Health()
	if hs.State != HealthHealthy || hs.Tier != TierFull || hs.TierTransitions != 6 {
		t.Fatalf("after recovery: state=%v tier=%v transitions=%d, want healthy/full/6",
			hs.State, hs.Tier, hs.TierTransitions)
	}
	r.sh.mu.Lock()
	refresh, resync := r.refreshRequested, r.needResync
	r.sh.mu.Unlock()
	if !refresh || resync {
		t.Fatalf("promotion out of a lossy tier must latch the refresh and clear needResync (refresh=%v resync=%v)",
			refresh, resync)
	}
	// The legacy degrade/recover stats belong to the non-ladder path and
	// must stay silent while the ladder is driving.
	if st.Get("HealthDegrade").Messages != 0 || st.Get("HealthRecover").Messages != 0 {
		t.Fatal("ladder transitions leaked legacy HealthDegrade/HealthRecover stats")
	}
}

// TestLadderLossSignalAndHysteresisBand drives the controller purely on
// RTCP RR loss: loss at or above LossDemote demotes, loss inside the
// (LossPromote, LossDemote) band freezes both streak clocks, and loss at
// or below LossPromote promotes. Reports older than FlapWindow must stop
// counting.
func TestLadderLossSignalAndHysteresisBand(t *testing.T) {
	lc := testLadderConfig()
	h, r, _, clock, _ := newLadderHarness(t, lc)

	setLoss := func(frac uint8) {
		r.sh.mu.Lock()
		r.lastRR = ReceptionQuality{FractionLost: frac, Valid: true}
		r.lastRRAt = clock.Now()
		r.sh.mu.Unlock()
	}

	// 25% loss (64/256) ≥ LossDemote: demote on streak.
	for i := 0; i < 10 && r.QualityTier() == TierFull; i++ {
		setLoss(64)
		clock.Advance(50 * time.Millisecond)
		ladderSweep(h)
	}
	if got := r.QualityTier(); got != TierDecimated {
		t.Fatalf("tier under 25%% reported loss = %v, want decimated", got)
	}

	// ~7.8% loss (20/256) sits between LossPromote (3%) and LossDemote
	// (15%): both clocks frozen, no transition in either direction.
	for i := 0; i < 20; i++ {
		setLoss(20)
		clock.Advance(50 * time.Millisecond)
		ladderSweep(h)
	}
	if got := r.QualityTier(); got != TierDecimated {
		t.Fatalf("tier moved to %v inside the loss hysteresis band", got)
	}

	// Loss clears: promote after the clean streak.
	for i := 0; i < 10 && r.QualityTier() != TierFull; i++ {
		setLoss(0)
		clock.Advance(50 * time.Millisecond)
		ladderSweep(h)
	}
	if got := r.QualityTier(); got != TierFull {
		t.Fatalf("tier after loss cleared = %v, want full", got)
	}

	// A stale high-loss report (older than FlapWindow) must not demote:
	// with no fresh RR the path reads clean, and the remote stays put.
	setLoss(64)
	clock.Advance(lc.FlapWindow + time.Second)
	for i := 0; i < 10; i++ {
		clock.Advance(50 * time.Millisecond)
		ladderSweep(h)
	}
	if got := r.QualityTier(); got != TierFull {
		t.Fatalf("stale RR (past FlapWindow) still drives the ladder: tier %v", got)
	}
}

// TestLadderFlapBackoffDoublesPromoteWait checks the flap economics: a
// demotion inside FlapWindow of a promotion doubles the promote backoff
// (so the next climb demonstrably waits longer), a promotion that
// survives a clean FlapWindow earns the backoff back, and the backoff
// never exceeds MaxPromoteWait.
func TestLadderFlapBackoffDoublesPromoteWait(t *testing.T) {
	lc := testLadderConfig()
	h, r, cs, clock, st := newLadderHarness(t, lc)

	driveTo := func(target QualityTier, congested bool) {
		t.Helper()
		cs.congested = congested
		for i := 0; i < 80 && r.QualityTier() != target; i++ {
			clock.Advance(50 * time.Millisecond)
			ladderSweep(h)
		}
		if got := r.QualityTier(); got != target {
			t.Fatalf("failed to drive remote to %v (stuck at %v)", target, got)
		}
	}
	promoteWait := func() time.Duration {
		r.sh.mu.Lock()
		defer r.sh.mu.Unlock()
		return r.promoteWait
	}

	// Demote, promote, then squeeze again immediately: the re-demotion
	// lands inside FlapWindow of the promotion and charges a flap.
	driveTo(TierDecimated, true)
	driveTo(TierFull, false)
	driveTo(TierDecimated, true)
	if got := st.Get("QualityFlap").Messages; got != 1 {
		t.Fatalf("QualityFlap stat = %d, want 1", got)
	}
	if got := promoteWait(); got != 2*lc.PromoteAfter {
		t.Fatalf("promoteWait after one flap = %v, want %v", got, 2*lc.PromoteAfter)
	}
	if hs := r.Health(); hs.TierFlaps != 1 {
		t.Fatalf("health snapshot TierFlaps = %d, want 1", hs.TierFlaps)
	}

	// The doubled backoff is enforced: a clean streak that satisfies the
	// base PromoteAfter (200ms) but not the doubled wait (400ms) must not
	// promote yet.
	// The first clean sweep only starts the streak clock, so sweep k
	// observes a streak of 50ms*(k-1).
	cs.congested = false
	for i := 0; i < 8; i++ { // streak reaches 350ms: past base, short of doubled
		clock.Advance(50 * time.Millisecond)
		ladderSweep(h)
	}
	if got := r.QualityTier(); got != TierDecimated {
		t.Fatalf("promoted at %v of clean streak despite doubled backoff", 350*time.Millisecond)
	}
	clock.Advance(50 * time.Millisecond) // streak 400ms: doubled wait satisfied
	ladderSweep(h)
	if got := r.QualityTier(); got != TierFull {
		t.Fatalf("tier after doubled backoff elapsed = %v, want full", got)
	}

	// Surviving a full clean FlapWindow decays the backoff to base.
	for i := 0; i < 25; i++ {
		clock.Advance(50 * time.Millisecond)
		ladderSweep(h)
	}
	if got := promoteWait(); got != lc.PromoteAfter {
		t.Fatalf("promoteWait after clean FlapWindow = %v, want decay to %v", got, lc.PromoteAfter)
	}

	// The backoff cap: a flap with the backoff near MaxPromoteWait clamps
	// at the cap instead of doubling past it.
	r.sh.mu.Lock()
	r.promoteWait = lc.MaxPromoteWait - 200*time.Millisecond
	r.lastPromoteAt = clock.Now()
	r.sh.mu.Unlock()
	driveTo(TierDecimated, true)
	if got := promoteWait(); got != lc.MaxPromoteWait {
		t.Fatalf("promoteWait after flap near cap = %v, want clamp at %v", got, lc.MaxPromoteWait)
	}
}

// TestLadderNoHysteresisReactsInstantly covers the mutation-check switch
// netsim uses to prove the flap assertions discriminate: with
// NoHysteresis the controller acts on the instantaneous signal — one
// rung per sweep, no dwell, no streaks, and no flap accounting.
func TestLadderNoHysteresisReactsInstantly(t *testing.T) {
	lc := testLadderConfig()
	lc.NoHysteresis = true
	h, r, cs, clock, st := newLadderHarness(t, lc)

	cs.congested = true
	for i := 0; i < 3; i++ {
		clock.Advance(time.Millisecond)
		ladderSweep(h)
	}
	if got := r.QualityTier(); got != TierKeyframeOnly {
		t.Fatalf("tier after 3 congested sweeps (3ms) = %v, want keyframe", got)
	}
	cs.congested = false
	for i := 0; i < 3; i++ {
		clock.Advance(time.Millisecond)
		ladderSweep(h)
	}
	if got := r.QualityTier(); got != TierFull {
		t.Fatalf("tier after 3 clean sweeps = %v, want full", got)
	}
	if got := st.Get("QualityFlap").Messages; got != 0 {
		t.Fatalf("NoHysteresis mode charged %d flaps, want 0", got)
	}
	if got := st.Get("QualityDemote").Messages + st.Get("QualityPromote").Messages; got != 6 {
		t.Fatalf("transitions = %d, want 6", got)
	}
}

// TestLadderPinnedDecimationSendsEveryNth pins a live TCP remote on the
// decimated tier (no ladder config: the tier parameters fall back to
// the defaults) and verifies delivery cadence end to end: the viewer's
// pixels go stale on off-cycle ticks and converge — with the folded
// damage coalesced — on every DefaultDecimateEvery'th tick.
func TestLadderPinnedDecimationSendsEveryNth(t *testing.T) {
	h, w := newHost(t, Config{})
	defer h.Close()
	hostEnd, partEnd := streamPair()
	p := participant.New(participant.Config{})
	pump(t, p, partEnd)
	r, err := h.AttachStream("dec", hostEnd, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	settle()
	if err := h.Tick(); err != nil { // flush attach-time state
		t.Fatal(err)
	}
	settle()

	r.PinQualityTier(TierDecimated)
	if got := r.QualityTier(); got != TierDecimated {
		t.Fatalf("pinned tier = %v, want decimated", got)
	}
	inner := region.XYWH(10, 10, 60, 40)
	for i := 0; i < 2*DefaultDecimateEvery; i++ {
		// Every tick fills a distinct color, so a stale viewer can never
		// accidentally equal the current host state.
		w.Fill(inner, color.RGBA{uint8(20 * (i + 1)), 0, uint8(255 - 20*i), 0xFF})
		if err := h.Tick(); err != nil {
			t.Fatal(err)
		}
		if (i+1)%DefaultDecimateEvery == 0 {
			// Ship tick: wait for the coalesced update to land.
			if !waitConverged(p, w) {
				t.Fatalf("tick %d: viewer did not converge on a ship tick", i+1)
			}
			continue
		}
		// Off-cycle tick: the update was folded, not shipped, so the
		// viewer must lag the host no matter how long we wait.
		settle()
		img := p.WindowImage(w.ID())
		if img != nil && bytes.Equal(img.Pix, w.Snapshot().Pix) {
			t.Fatalf("tick %d: viewer converged on an off-cycle tick", i+1)
		}
	}
}

// waitConverged polls until the participant's window image is
// byte-identical to the host window, bounding the pump goroutine's
// scheduling delay instead of guessing it with one sleep.
func waitConverged(p *participant.Participant, w *display.Window) bool {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		img := p.WindowImage(w.ID())
		if img != nil && bytes.Equal(img.Pix, w.Snapshot().Pix) {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return false
}

// TestLadderPinnedScaledTierPixelatesAndResyncsOnPromotion pins a live
// remote on the scaled tier, draws 1px stripes, and verifies the viewer
// receives block-uniform (pixelated) content that differs from the
// host's framebuffer — then pins back to full and verifies the
// promotion resync converges the viewer byte-identically.
func TestLadderPinnedScaledTierPixelatesAndResyncsOnPromotion(t *testing.T) {
	h, w := newHost(t, Config{})
	defer h.Close()
	hostEnd, partEnd := streamPair()
	p := participant.New(participant.Config{})
	pump(t, p, partEnd)
	r, err := h.AttachStream("scaled", hostEnd, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	settle()
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	settle()

	r.PinQualityTier(TierScaled)
	// 1px vertical stripes in a block-aligned square: pixelation by
	// DefaultScaleBlock replaces each block with its top-left pixel, so
	// the viewer should see flat blocks where the host has stripes.
	for i := 0; i < 16; i++ {
		c := red
		if i%2 == 1 {
			c = blue
		}
		w.Fill(region.XYWH(16+i, 16, 1, 16), c)
	}
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	host := w.Snapshot()
	if host.RGBAAt(17, 16) == host.RGBAAt(16, 16) {
		t.Fatal("test bug: host stripes did not render")
	}
	// Wait for the pixelated update to land (the block corner takes the
	// host's top-left pixel) instead of trusting one sleep to cover the
	// pump goroutine's scheduling delay.
	deadline := time.Now().Add(5 * time.Second)
	var img *image.RGBA
	for time.Now().Before(deadline) {
		img = p.WindowImage(w.ID())
		if img != nil && img.RGBAAt(16, 16) == host.RGBAAt(16, 16) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if img == nil {
		t.Fatal("no window image")
	}
	if got := img.RGBAAt(16, 16); got != host.RGBAAt(16, 16) {
		t.Fatalf("block corner = %v, want the host's top-left pixel %v", got, host.RGBAAt(16, 16))
	}
	for _, x := range []int{17, 18, 19} {
		if got := img.RGBAAt(x, 16); got != img.RGBAAt(16, 16) {
			t.Fatalf("scaled tier not block-uniform: (%d,16)=%v vs (16,16)=%v",
				x, got, img.RGBAAt(16, 16))
		}
	}
	if bytes.Equal(img.Pix, host.Pix) {
		t.Fatal("scaled tier delivered full-fidelity pixels")
	}

	// Pinning back up out of the lossy tier owes the viewer a resync.
	r.PinQualityTier(TierFull)
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	if !waitConverged(p, w) {
		t.Fatal("viewer did not converge after promotion resync")
	}
}
