package ah

import (
	"errors"
	"io"
	"testing"
	"time"

	"appshare/internal/display"
	"appshare/internal/region"
	"appshare/internal/stats"
	"appshare/internal/transport"
)

// faultConn is a PacketConn whose send path can be made to fail or
// short-count mid-batch. It records every packet actually accepted.
type faultConn struct {
	// acceptBatch, when >= 0, makes SendBatch accept only that many
	// packets and return nil error (the short-count defect shape).
	acceptBatch int
	// failAt, when >= 0, makes per-packet Send fail at that call index.
	failAt int
	calls  int
	sent   [][]byte
	dead   chan struct{}
	batch  bool // expose SendBatch?
}

func newFaultConn(batch bool) *faultConn {
	return &faultConn{acceptBatch: -1, failAt: -1, batch: batch, dead: make(chan struct{})}
}

var errPlanted = errors.New("planted send failure")

func (c *faultConn) Send(pkt []byte) error {
	if c.failAt >= 0 && c.calls == c.failAt {
		c.calls++
		return errPlanted
	}
	c.calls++
	c.sent = append(c.sent, append([]byte(nil), pkt...))
	return nil
}

// batchFaultConn adds the SendBatch fast path on top of faultConn.
type batchFaultConn struct{ *faultConn }

func (c *batchFaultConn) SendBatch(pkts [][]byte) (int, error) {
	n := len(pkts)
	if c.acceptBatch >= 0 && c.acceptBatch < n {
		n = c.acceptBatch
	}
	for _, p := range pkts[:n] {
		c.sent = append(c.sent, append([]byte(nil), p...))
	}
	if c.failAt >= 0 {
		return n, errPlanted
	}
	return n, nil
}

func (c *faultConn) Recv() ([]byte, error) {
	<-c.dead
	return nil, io.EOF
}

func (c *faultConn) Close() error {
	select {
	case <-c.dead:
	default:
		close(c.dead)
	}
	return nil
}

// attachFault attaches a faulting UDP remote to a fresh host and ships
// one clean tick so subsequent deltas are small, known batches.
func attachFault(t *testing.T, conn transport.PacketConn) (*Host, *display.Window, *Remote) {
	t.Helper()
	st := stats.NewCollector()
	h, w := newHost(t, Config{Stats: st, Retransmissions: true})
	t.Cleanup(func() { h.Close() })
	r, err := h.AttachPacketConn("fault", conn, PacketOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w.Fill(region.XYWH(0, 0, 64, 64), red)
	if tickErr := h.Tick(); tickErr != nil {
		t.Fatal(tickErr)
	}
	return h, w, r
}

func remoteCounters(r *Remote) (packets, octets uint64, logged int) {
	r.sh.mu.Lock()
	defer r.sh.mu.Unlock()
	return r.sentPackets, r.sentOctets, len(r.retransQ)
}

// TestSendBatchShortCountSurfacesError plants a BatchSender that
// accepts only a prefix of the batch without reporting an error, and
// verifies the send path surfaces the shortfall instead of silently
// dropping the remainder — and that the per-remote counters reconcile
// with what actually reached the wire.
func TestSendBatchShortCountSurfacesError(t *testing.T) {
	conn := &batchFaultConn{newFaultConn(true)}
	h, w, r := attachFault(t, conn)
	sent := func() [][]byte { return conn.sent }

	base, _, baseLogged := remoteCounters(r)
	wire := len(sent())
	if base != uint64(wire) {
		t.Fatalf("clean tick: counted %d packets, wire saw %d", base, wire)
	}

	// Short-count the next tick's batch at 1 packet (the damage below
	// fragments into several).
	conn.acceptBatch = 1
	w.Fill(region.XYWH(0, 0, 300, 400), blue)
	err := h.Tick()
	if err == nil {
		t.Fatal("short-count send reported no error")
	}
	if !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("error = %v, want io.ErrShortWrite wrapped", err)
	}

	packets, octets, logged := remoteCounters(r)
	wireNow := sent()
	if packets != base+1 {
		t.Fatalf("counted %d new packets, wire accepted 1", packets-base)
	}
	if int(packets) != len(wireNow) {
		t.Fatalf("counter/wire mismatch: counted %d, wire %d", packets, len(wireNow))
	}
	var wireOctets uint64
	for _, p := range wireNow {
		wireOctets += uint64(len(p))
	}
	if octets != wireOctets {
		t.Fatalf("octet counter %d != wire octets %d", octets, wireOctets)
	}
	if logged != baseLogged+1 {
		t.Fatalf("retransmission log grew by %d, want 1 (only accepted packets are resendable)", logged-baseLogged)
	}
}

// TestSendMidBatchErrorReconciles plants a per-packet send failure in
// the middle of a batch and verifies the error propagates out of Tick
// while the counters cover exactly the accepted prefix.
func TestSendMidBatchErrorReconciles(t *testing.T) {
	conn := newFaultConn(false)
	h, w, r := attachFault(t, conn)
	sent := func() [][]byte { return conn.sent }

	base, _, _ := remoteCounters(r)
	// Large damage fragments into several packets; fail the second send
	// of the coming tick.
	conn.failAt = conn.calls + 1
	w.Fill(region.XYWH(0, 0, 300, 400), blue)
	err := h.Tick()
	if !errors.Is(err, errPlanted) {
		t.Fatalf("Tick error = %v, want the planted failure", err)
	}
	packets, octets, _ := remoteCounters(r)
	wire := sent()
	if int(packets) != len(wire) {
		t.Fatalf("counted %d packets, wire saw %d", packets, len(wire))
	}
	if packets != base+1 {
		t.Fatalf("accepted prefix = %d packets, want 1 (failure at index 1)", packets-base)
	}
	var wireOctets uint64
	for _, p := range wire {
		wireOctets += uint64(len(p))
	}
	if octets != wireOctets {
		t.Fatalf("octet counter %d != wire octets %d", octets, wireOctets)
	}
}

// TestPacketSinkChargesOnlyAcceptedPackets verifies the rate budget is
// charged after the send, for the accepted prefix only — a short send
// must not debit tokens for packets that never left.
func TestPacketSinkChargesOnlyAcceptedPackets(t *testing.T) {
	conn := &batchFaultConn{newFaultConn(true)}
	conn.acceptBatch = 1
	now := time.Unix(1_700_000_000, 0)
	s := &packetSink{conn: conn, batch: conn, rate: 10_000, now: func() time.Time { return now }}

	pkts := [][]byte{make([]byte, 100), make([]byte, 200), make([]byte, 300)}
	n, err := s.shipBatch(pkts)
	if n != 1 || err != nil {
		t.Fatalf("shipBatch = (%d, %v), want (1, nil)", n, err)
	}
	want := float64(10_000) - 100 // full bucket minus the one accepted packet
	if s.tokens != want {
		t.Fatalf("tokens = %v, want %v (charged for accepted prefix only)", s.tokens, want)
	}

	// A send error after k accepted packets charges exactly those k.
	fresh := newFaultConn(false)
	fresh.failAt = 1
	s2 := &packetSink{conn: fresh, rate: 10_000, now: func() time.Time { return now }}
	n, err = s2.shipBatch(pkts)
	if n != 1 || !errors.Is(err, errPlanted) {
		t.Fatalf("shipBatch = (%d, %v), want (1, planted)", n, err)
	}
	if want := float64(10_000) - 100; s2.tokens != want {
		t.Fatalf("tokens = %v, want %v", s2.tokens, want)
	}
}
