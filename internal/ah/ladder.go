package ah

import (
	"fmt"
	"time"
)

// Congestion-adaptive quality ladder (see DESIGN.md "Congestion-adaptive
// quality ladder"). PR 3's health subsystem gave the host exactly two
// answers to a viewer that cannot keep up: keyframe-only degraded mode,
// or eviction. The ladder closes the loop into a real rate controller:
// a TFRC-style estimator folds the existing per-remote signals — send
// backlog dwell, writer stalls, RTCP RR loss — into a congestion
// verdict each tick, and that verdict walks the remote through ordered
// delivery tiers, one step at a time, with hysteresis so a flapping
// link ratchets down gracefully and recovers without oscillation.

// QualityTier is one rung of the per-remote quality ladder, ordered
// from full fidelity (lowest value) to cheapest (highest value). The
// controller only ever moves a remote one rung at a time.
type QualityTier int

const (
	// TierFull sends every incremental update at full resolution — the
	// default, and the only behavior when the ladder is disabled.
	TierFull QualityTier = iota
	// TierDecimated sends full-resolution updates on every Nth tick
	// (LadderConfig.DecimateEvery) and folds the skipped ticks' damage
	// into the pending set, halving-or-better the frame rate while
	// keeping pixels exact.
	TierDecimated
	// TierScaled re-encodes damaged regions pixelated (nearest-neighbor
	// downscale by LadderConfig.ScaleBlock and straight back up), the
	// host-side analogue of participant.ScaleImage: geometry is
	// unchanged so the protocol applies updates normally, but flat
	// blocks compress far smaller. Pixels are approximate until the
	// remote is promoted and served its resync refresh.
	TierScaled
	// TierKeyframeOnly withholds pixel data entirely — PR 3's degraded
	// mode: window structure still flows, and the remote is owed one
	// full refresh ("keyframe") when it is promoted off this rung.
	TierKeyframeOnly
)

// String implements fmt.Stringer.
func (t QualityTier) String() string {
	switch t {
	case TierFull:
		return "full"
	case TierDecimated:
		return "decimated"
	case TierScaled:
		return "scaled"
	case TierKeyframeOnly:
		return "keyframe"
	default:
		return fmt.Sprintf("QualityTier(%d)", int(t))
	}
}

// Ladder default constants (library defaults; simulations inject much
// tighter values scaled to their tick interval).
const (
	DefaultDemoteAfter    = 500 * time.Millisecond
	DefaultPromoteAfter   = 2 * time.Second
	DefaultMinTierDwell   = time.Second
	DefaultFlapWindow     = 10 * time.Second
	DefaultMaxPromoteWait = 30 * time.Second
	DefaultLossDemote     = 0.15
	DefaultLossPromote    = 0.03
	DefaultDecimateEvery  = 3
	DefaultScaleBlock     = 4
)

// LadderConfig tunes the quality ladder. Assigning a non-nil
// *LadderConfig to Config.Ladder enables the controller; zero-valued
// fields take the Default* constants above.
type LadderConfig struct {
	// DemoteAfter is how long the congestion signal must hold
	// continuously before the remote drops one tier.
	DemoteAfter time.Duration
	// PromoteAfter is how long the path must stay clean before the
	// remote climbs one tier — deliberately longer than DemoteAfter so
	// the controller is quick to protect the session and slow to trust
	// a recovering link.
	PromoteAfter time.Duration
	// MinTierDwell is the minimum time between transitions for one
	// remote, in either direction.
	MinTierDwell time.Duration
	// FlapWindow classifies a demotion this soon after a promotion as a
	// flap: the promote backoff doubles (up to MaxPromoteWait), and a
	// promotion that survives a full clean FlapWindow resets the
	// backoff to PromoteAfter.
	FlapWindow time.Duration
	// MaxPromoteWait caps the exponential promote backoff.
	MaxPromoteWait time.Duration
	// LossDemote and LossPromote are the RR fraction-lost hysteresis
	// thresholds: loss at or above LossDemote counts as congestion,
	// loss at or below LossPromote counts as clean, and the band
	// between them freezes both streak clocks.
	LossDemote, LossPromote float64
	// DecimateEvery is the TierDecimated cadence: incremental updates
	// flush on every Nth tick (minimum 2).
	DecimateEvery int
	// ScaleBlock is the TierScaled pixelation block size in pixels
	// (minimum 2).
	ScaleBlock int
	// NoHysteresis makes the controller act on the instantaneous
	// congestion signal with no dwell, no streaks and no promote
	// backoff. It exists for the netsim mutation check that proves the
	// flap-count assertions have teeth; never enable it in production.
	NoHysteresis bool
}

// withDefaults returns a copy with zero-valued knobs filled in and the
// integer knobs clamped to their minimums.
func (lc LadderConfig) withDefaults() LadderConfig {
	if lc.DemoteAfter <= 0 {
		lc.DemoteAfter = DefaultDemoteAfter
	}
	if lc.PromoteAfter <= 0 {
		lc.PromoteAfter = DefaultPromoteAfter
	}
	if lc.MinTierDwell <= 0 {
		lc.MinTierDwell = DefaultMinTierDwell
	}
	if lc.FlapWindow <= 0 {
		lc.FlapWindow = DefaultFlapWindow
	}
	if lc.MaxPromoteWait <= 0 {
		lc.MaxPromoteWait = DefaultMaxPromoteWait
	}
	if lc.LossDemote <= 0 {
		lc.LossDemote = DefaultLossDemote
	}
	if lc.LossPromote <= 0 {
		lc.LossPromote = DefaultLossPromote
	}
	if lc.DecimateEvery < 2 {
		if lc.DecimateEvery == 0 {
			lc.DecimateEvery = DefaultDecimateEvery
		} else {
			lc.DecimateEvery = 2
		}
	}
	if lc.ScaleBlock < 2 {
		if lc.ScaleBlock == 0 {
			lc.ScaleBlock = DefaultScaleBlock
		} else {
			lc.ScaleBlock = 2
		}
	}
	return lc
}

// decimateEvery and scaleBlock resolve the tier parameters, falling
// back to the defaults when a tier was pinned without a ladder config.
func (h *Host) decimateEvery() int {
	if h.cfg.Ladder != nil {
		return h.cfg.Ladder.DecimateEvery
	}
	return DefaultDecimateEvery
}

func (h *Host) scaleBlock() int {
	if h.cfg.Ladder != nil {
		return h.cfg.Ladder.ScaleBlock
	}
	return DefaultScaleBlock
}

// effectiveTierLocked resolves the delivery tier for this tick. With
// the ladder enabled (or a tier pinned) the controller's rung rules;
// otherwise the legacy health mapping applies: degraded means
// keyframe-only, everything else full fidelity. Shard lock held.
func (r *Remote) effectiveTierLocked() QualityTier {
	if r.tierPinned || r.host.cfg.Ladder != nil {
		return r.tier
	}
	if r.health == HealthDegraded {
		return TierKeyframeOnly
	}
	return TierFull
}

// QualityTier returns the remote's current ladder rung (TierFull when
// the ladder is disabled and the remote is healthy).
func (r *Remote) QualityTier() QualityTier {
	r.sh.mu.Lock()
	defer r.sh.mu.Unlock()
	return r.effectiveTierLocked()
}

// PinQualityTier forces the remote onto one rung and exempts it from
// the controller — a measurement hook for benchmarks and tests that
// need per-tier cost without waiting for congestion to develop.
// Pinning up out of a lossy tier performs the same resync a controller
// promotion would (clear pending detail, latch a full refresh).
func (r *Remote) PinQualityTier(t QualityTier) {
	if t < TierFull {
		t = TierFull
	}
	if t > TierKeyframeOnly {
		t = TierKeyframeOnly
	}
	r.sh.mu.Lock()
	defer r.sh.mu.Unlock()
	now := r.host.cfg.Now()
	from := r.tier
	r.tierPinned = true
	if t == from {
		return
	}
	r.tier = t
	r.tierSince = now
	r.decimTicks = 0
	if t < from && from >= TierScaled {
		r.resyncForPromotionLocked()
	}
	r.syncHealthWithTierLocked(now)
}

// ladderSweepLocked is the per-Tick controller pass for one remote: it
// folds the congestion signals into streak clocks and applies the
// demote/promote rules with hysteresis. Called from sweepHealth (tick
// start) in place of the legacy degrade check. Shard lock held.
func (h *Host) ladderSweepLocked(r *Remote, now time.Time) {
	if r.tierPinned {
		return
	}
	lc := h.cfg.Ladder
	congested, clean := r.congestionSignalLocked(lc, now)

	// Streak clocks: a verdict starts its clock on the first sweep it
	// holds and zeroes the opposite clock; the loss hysteresis band
	// (neither congested nor clean) freezes by zeroing both.
	switch {
	case congested:
		if r.congestedSince.IsZero() {
			r.congestedSince = now
		}
		r.cleanSince = time.Time{}
	case clean:
		if r.cleanSince.IsZero() {
			r.cleanSince = now
		}
		r.congestedSince = time.Time{}
	default:
		r.congestedSince = time.Time{}
		r.cleanSince = time.Time{}
	}

	if lc.NoHysteresis {
		// Mutation-check mode: act on the instantaneous signal.
		if congested && r.tier < TierKeyframeOnly {
			h.demoteLocked(r, now)
		} else if clean && r.tier > TierFull {
			h.promoteLocked(r, now)
		}
		return
	}

	// A promotion that survived a full clean FlapWindow earns the
	// backoff back down to the base promote threshold.
	if r.promoteWait > lc.PromoteAfter && !r.cleanSince.IsZero() &&
		now.Sub(r.cleanSince) >= lc.FlapWindow {
		r.promoteWait = lc.PromoteAfter
	}

	dwell := now.Sub(r.tierSince)
	if r.tier < TierKeyframeOnly && !r.congestedSince.IsZero() &&
		now.Sub(r.congestedSince) >= lc.DemoteAfter && dwell >= lc.MinTierDwell {
		h.demoteLocked(r, now)
		return
	}
	if r.tier > TierFull && !r.cleanSince.IsZero() &&
		now.Sub(r.cleanSince) >= r.promoteWait && dwell >= lc.MinTierDwell {
		h.promoteLocked(r, now)
	}
}

// congestionSignalLocked renders the TFRC-style verdict for one sweep:
// congested when the send path is backlogged past its limit, the
// writer has stalled for a demote threshold, or a recent RR reports
// loss at or above LossDemote; clean when none of that holds and any
// recent loss report sits at or below LossPromote. Loss inside the
// hysteresis band yields (false, false). Shard lock held.
func (r *Remote) congestionSignalLocked(lc *LadderConfig, now time.Time) (congested, clean bool) {
	congested = r.sink.backlogged(0) || r.sink.stalled() >= lc.DemoteAfter
	lossKnown := r.lastRR.Valid && !r.lastRRAt.IsZero() &&
		now.Sub(r.lastRRAt) <= lc.FlapWindow
	var loss float64
	if lossKnown {
		loss = float64(r.lastRR.FractionLost) / 256
		if loss >= lc.LossDemote {
			congested = true
		}
	}
	if congested {
		return true, false
	}
	if lossKnown && loss > lc.LossPromote {
		return false, false // hysteresis band: freeze both clocks
	}
	return false, true
}

// demoteLocked drops the remote one rung, records the transition, and
// charges a flap (doubling the promote backoff) when the demotion
// lands inside FlapWindow of the last promotion. Shard lock held.
func (h *Host) demoteLocked(r *Remote, now time.Time) {
	lc := h.cfg.Ladder
	r.tier++
	r.tierSince = now
	r.tierTransitions++
	r.congestedSince = time.Time{}
	r.decimTicks = 0
	if r.tier == TierKeyframeOnly {
		// Entering keyframe-only drops the accumulated per-region
		// detail: the pending set is what a wedged remote grows without
		// bound, and the resync refresh owed on promotion replaces it.
		r.pending.Clear()
		r.pendingPointer = false
	}
	r.syncHealthWithTierLocked(now)
	h.record("QualityDemote", r.sink.queued())
	if lc != nil && !lc.NoHysteresis && !r.lastPromoteAt.IsZero() &&
		now.Sub(r.lastPromoteAt) < lc.FlapWindow {
		r.tierFlaps++
		r.promoteWait *= 2
		if r.promoteWait > lc.MaxPromoteWait {
			r.promoteWait = lc.MaxPromoteWait
		}
		h.record("QualityFlap", 0)
	}
}

// promoteLocked climbs the remote one rung and, when leaving a tier
// that withheld or approximated pixels, performs the resync. Shard lock
// held.
func (h *Host) promoteLocked(r *Remote, now time.Time) {
	from := r.tier
	r.tier--
	r.tierSince = now
	r.tierTransitions++
	r.cleanSince = time.Time{}
	r.lastPromoteAt = now
	r.decimTicks = 0
	if from >= TierScaled {
		r.resyncForPromotionLocked()
	}
	r.syncHealthWithTierLocked(now)
	h.record("QualityPromote", 0)
}

// resyncForPromotionLocked clears the detail owed from a lossy tier
// (keyframe-only withheld it, scaled approximated it) and latches the
// full refresh the same Tick's refresh pass will serve. Promotion from
// TierDecimated needs none of this: decimated pixels are exact, merely
// delayed, and the pending set flushes them through the normal path.
func (r *Remote) resyncForPromotionLocked() {
	r.pending.Clear()
	r.pendingPointer = false
	r.needResync = false
	r.refreshRequested = true
}

// syncHealthWithTierLocked mirrors the ladder rung into the legacy
// HealthState so RemoteHealth consumers see keyframe-only remotes as
// degraded. The ladder bypasses recordHealth* stats — tier transitions
// have their own kinds. Shard lock held.
func (r *Remote) syncHealthWithTierLocked(now time.Time) {
	switch {
	case r.tier == TierKeyframeOnly && r.health == HealthHealthy:
		r.health = HealthDegraded
		r.healthSince = now
	case r.tier != TierKeyframeOnly && r.health == HealthDegraded:
		r.health = HealthHealthy
		r.healthSince = now
	}
}
