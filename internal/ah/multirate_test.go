package ah

import (
	"testing"
	"time"

	"appshare/internal/participant"
	"appshare/internal/region"
	"appshare/internal/transport"
	"appshare/internal/workload"
)

// TestMulticastRateTiers reproduces the Section 4.3 deployment: the AH
// runs two multicast sessions with different transmission rates. The
// fast tier receives (roughly) every frame; the slow tier gets deferred,
// coalesced final states — and both converge to the current screen.
func TestMulticastRateTiers(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	h, w := newHost(t, Config{Now: clock})
	defer h.Close()

	attach := func(rate int) (*Remote, *participant.Participant) {
		bus := transport.NewBus()
		sub := bus.Subscribe(transport.LinkConfig{Seed: int64(rate + 1)})
		p := participant.New(participant.Config{})
		go func() {
			for {
				pkt, err := sub.Recv()
				if err != nil {
					return
				}
				_ = p.HandlePacket(pkt)
			}
		}()
		r, err := h.AttachMulticast("tier", bus, MulticastOptions{BytesPerSecond: rate})
		if err != nil {
			t.Fatal(err)
		}
		if err := h.RequestRefresh(r); err != nil {
			t.Fatal(err)
		}
		return r, p
	}
	fastR, fastP := attach(0)        // unlimited
	slowR, slowP := attach(10 << 10) // 10 KB/s

	vid := workload.NewVideoRegion(w, region.XYWH(0, 0, 200, 150), 5)
	for i := 0; i < 20; i++ {
		vid.Step()
		now = now.Add(50 * time.Millisecond) // 20 fps virtual time
		if err := h.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if fastR.Deferrals() != 0 {
		t.Fatalf("fast tier deferred %d frames", fastR.Deferrals())
	}
	if slowR.Deferrals() == 0 {
		t.Fatal("slow tier never deferred; rate budget not applied")
	}

	// Let the slow tier's budget refill and flush the final state.
	for i := 0; i < 50; i++ {
		now = now.Add(time.Second)
		if err := h.Tick(); err != nil {
			t.Fatal(err)
		}
		if slowR.pendingEmpty() {
			break
		}
	}
	settle()
	want := w.Snapshot()
	for name, p := range map[string]*participant.Participant{"fast": fastP, "slow": slowP} {
		got := p.WindowImage(w.ID())
		if got == nil {
			t.Fatalf("%s tier missing window", name)
		}
		match := 0
		for i := range want.Pix {
			if got.Pix[i] == want.Pix[i] {
				match++
			}
		}
		if match != len(want.Pix) {
			t.Fatalf("%s tier did not converge: %d/%d bytes match", name, match, len(want.Pix))
		}
	}
}

// pendingEmpty reports whether the remote has no deferred regions.
func (r *Remote) pendingEmpty() bool {
	r.sh.mu.Lock()
	defer r.sh.mu.Unlock()
	return r.pending.Empty() && !r.pendingPointer
}
