package ah

import (
	"fmt"

	"appshare/internal/hip"
	"appshare/internal/rtcp"
	"appshare/internal/rtp"
	"appshare/internal/windows"
)

// handleIncoming demuxes one packet from a participant: RTCP feedback
// (PLI, NACK — Section 5.3) or a HIP RTP message (Section 6). The demux
// follows the RFC 5761 rule: a second byte in [200, 207] is RTCP.
func (h *Host) handleIncoming(r *Remote, pkt []byte) {
	if len(pkt) < 2 {
		return
	}
	if pkt[1] >= 200 && pkt[1] <= 207 {
		h.handleRTCP(r, pkt)
		return
	}
	if h.maybeRelaySubscribe(r, pkt) {
		return
	}
	h.handleHIP(r, pkt)
}

// HandleFeedback processes an RTCP compound packet from a participant
// attached as r. Exposed for out-of-band feedback paths (multicast
// members report over unicast).
func (h *Host) HandleFeedback(r *Remote, pkt []byte) { h.handleRTCP(r, pkt) }

func (h *Host) handleRTCP(r *Remote, pkt []byte) {
	pkts, err := rtcp.Unmarshal(pkt)
	if err != nil {
		return
	}
	// Feedback touches only per-remote state, so it contends with
	// fan-out on this remote's shard alone — a NACK storm from viewers
	// on one shard leaves the other shards' deliveries unobstructed.
	r.sh.mu.Lock()
	defer r.sh.mu.Unlock()
	if r.closed && !h.cfg.DebugDisableEvictGates {
		// Feedback can race eviction: sweepHealth marks the remote closed
		// under the shard lock, but the sink teardown happens later,
		// outside all locks (finishEvictions). A NACK or PLI landing in
		// that window must not ship retransmissions to — or latch a
		// refresh for — a remote the host has already evicted.
		return
	}
	r.noteHeardLocked(h.cfg.Now())
	for _, p := range pkts {
		switch fb := p.(type) {
		case *rtcp.PLI:
			// Section 5.3.1: WindowManagerInfo then a full screen
			// update of the shared region. The refresh is NOT served
			// inline: feedback arrives on pump goroutines while the
			// application may be mid-mutation between capture ticks, and
			// a refresh snapshotting that state would race the journaled
			// ops still awaiting emission (a scroll journaled but not
			// yet sent would then double-apply on top of the refreshed,
			// already-scrolled pixels). The request is latched and
			// served at the start of the next Tick, after the journal
			// batch. PLIs inside the rate-limit window are absorbed.
			now := h.cfg.Now()
			if h.cfg.MinRefreshInterval > 0 && !r.lastRefresh.IsZero() &&
				now.Sub(r.lastRefresh) < h.cfg.MinRefreshInterval {
				r.absorbedPLIs++
				continue
			}
			r.lastRefresh = now
			r.refreshRequested = true
			h.record("PLI-handled", len(pkt))
		case *rtcp.NACK:
			if h.cfg.Retransmissions {
				_ = r.resend(fb.Lost())
				h.record("NACK-handled", len(pkt))
			}
		case *rtcp.ReceiverReport:
			for _, rep := range fb.Reports {
				if rep.SSRC == r.pz.SSRC() {
					r.noteReceiverReport(rep, h.cfg.Now())
				}
			}
		}
	}
}

// handleHIP parses one HIP event and queues it for regeneration at the
// next Tick. Feedback arrives on pump goroutines, but only the Tick
// caller's goroutine may touch the desktop — exactly like a real
// operating system's input queue, which applications drain on their own
// schedule. The queued event is validated against the window/floor state
// at drain time (Sections 4.1, 6, Appendix A). Malformed packets and a
// full queue count as rejected events.
func (h *Host) handleHIP(r *Remote, pkt []byte) {
	var rp rtp.Packet
	if err := rp.Unmarshal(pkt); err != nil {
		h.rejectHIP()
		return
	}
	if rp.PayloadType != h.cfg.HIPPT {
		h.rejectHIP()
		return
	}
	ev, err := hip.Unmarshal(rp.Payload)
	if err != nil {
		h.rejectHIP()
		return
	}
	// Two independent critical sections: the liveness stamp lives under
	// the remote's shard lock, the input queue under h.mu. Holding the
	// shard lock across the h.mu acquisition would invert the documented
	// lock order (mu → shard.mu).
	r.sh.mu.Lock()
	r.noteHeardLocked(h.cfg.Now())
	r.sh.mu.Unlock()
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.hipQueue) >= maxHIPQueue {
		h.hipErrors++
		return
	}
	h.hipQueue = append(h.hipQueue, queuedEvent{remote: r, event: ev})
}

// maxHIPQueue bounds buffered input between ticks; a flood beyond it is
// dropped (and counted), protecting the host from input-event DoS.
const maxHIPQueue = 4096

// queuedEvent is one HIP event awaiting regeneration.
type queuedEvent struct {
	remote *Remote
	event  hip.Event
}

// drainHIPLocked regenerates all queued input events. Host lock held.
func (h *Host) drainHIPLocked() {
	for _, q := range h.hipQueue {
		if err := h.injectEventLocked(q.remote, q.event); err != nil {
			h.hipErrors++
		}
	}
	h.hipQueue = h.hipQueue[:0]
}

func (h *Host) rejectHIP() {
	h.mu.Lock()
	h.hipErrors++
	h.mu.Unlock()
}

// InjectEvent validates one HIP event against the shared window set
// (Section 4.1 MUST), the BFCP floor state (Appendix A) and regenerates
// it on the desktop immediately. Exposed for in-process participants and
// tests; the caller's goroutine must be the one that owns the desktop.
func (h *Host) InjectEvent(r *Remote, ev hip.Event) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.injectEventLocked(r, ev)
}

// injectEventLocked performs validation and regeneration. Host lock held.
func (h *Host) injectEventLocked(r *Remote, ev hip.Event) error {
	shared := windows.SnapshotRecords(h.cfg.Desktop)
	floor := h.cfg.Floor

	switch e := ev.(type) {
	case *hip.MousePressed:
		if floor != nil && !floor.MayUseMouse(r.userID) {
			return fmt.Errorf("ah: user %d lacks mouse floor", r.userID)
		}
		if err := windows.ValidateMouseEvent(shared, e.WindowID, e.Left, e.Top); err != nil {
			return err
		}
		return h.cfg.Desktop.InjectMousePressed(e.WindowID, int(e.Left), int(e.Top), e.Button)
	case *hip.MouseReleased:
		if floor != nil && !floor.MayUseMouse(r.userID) {
			return fmt.Errorf("ah: user %d lacks mouse floor", r.userID)
		}
		if err := windows.ValidateMouseEvent(shared, e.WindowID, e.Left, e.Top); err != nil {
			return err
		}
		return h.cfg.Desktop.InjectMouseReleased(e.WindowID, int(e.Left), int(e.Top), e.Button)
	case *hip.MouseMoved:
		if floor != nil && !floor.MayUseMouse(r.userID) {
			return fmt.Errorf("ah: user %d lacks mouse floor", r.userID)
		}
		if err := windows.ValidateMouseEvent(shared, e.WindowID, e.Left, e.Top); err != nil {
			return err
		}
		return h.cfg.Desktop.InjectMouseMoved(e.WindowID, int(e.Left), int(e.Top))
	case *hip.MouseWheelMoved:
		if floor != nil && !floor.MayUseMouse(r.userID) {
			return fmt.Errorf("ah: user %d lacks mouse floor", r.userID)
		}
		if err := windows.ValidateMouseEvent(shared, e.WindowID, e.Left, e.Top); err != nil {
			return err
		}
		return h.cfg.Desktop.InjectMouseWheel(e.WindowID, int(e.Left), int(e.Top), int(e.Distance))
	case *hip.KeyPressed:
		if floor != nil && !floor.MayUseKeyboard(r.userID) {
			return fmt.Errorf("ah: user %d lacks keyboard floor", r.userID)
		}
		if err := windows.ValidateKeyEvent(shared, e.WindowID); err != nil {
			return err
		}
		return h.cfg.Desktop.InjectKeyPressed(e.WindowID, uint32(e.KeyCode))
	case *hip.KeyReleased:
		if floor != nil && !floor.MayUseKeyboard(r.userID) {
			return fmt.Errorf("ah: user %d lacks keyboard floor", r.userID)
		}
		if err := windows.ValidateKeyEvent(shared, e.WindowID); err != nil {
			return err
		}
		return h.cfg.Desktop.InjectKeyReleased(e.WindowID, uint32(e.KeyCode))
	case *hip.KeyTyped:
		if floor != nil && !floor.MayUseKeyboard(r.userID) {
			return fmt.Errorf("ah: user %d lacks keyboard floor", r.userID)
		}
		if err := windows.ValidateKeyEvent(shared, e.WindowID); err != nil {
			return err
		}
		return h.cfg.Desktop.InjectKeyTyped(e.WindowID, e.Text)
	default:
		return fmt.Errorf("ah: unsupported HIP event %T", ev)
	}
}
