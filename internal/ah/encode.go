package ah

import (
	"fmt"

	"appshare/internal/capture"
	"appshare/internal/remoting"
)

// preparedMessage is one remoting-protocol payload (a whole message or
// one fragment of it) ready for per-remote RTP packetization, tagged
// with its message kind for stats and the draft's marker-bit rule.
type preparedMessage struct {
	payload []byte
	marker  bool
	kind    string
}

// preparedBatch is a capture batch marshalled and fragmented exactly
// once. The payload bytes are shared by every remote the batch fans out
// to — only the RTP headers (SSRC, sequence number, timestamp) differ
// per participant — so a 100-receiver session pays one marshalling cost,
// not 100.
type preparedBatch struct {
	msgs []preparedMessage
	// wmCount is the number of leading messages carrying the batch's
	// WindowManagerInfo (0 or 1); wmOnly slices them off for the
	// backlogged path, which sends window state but defers pixels.
	wmCount int
}

// wmOnly returns just the WindowManagerInfo messages of the batch.
func (p *preparedBatch) wmOnly() []preparedMessage { return p.msgs[:p.wmCount] }

// prepareBatch marshals a capture batch into protocol payloads in apply
// order, applying the draft's RTP usage rules: the marker bit follows
// Table 2 for RegionUpdate/MousePointerInfo fragments and is zero
// elsewhere. The result is immutable and safe to fan out concurrently.
func prepareBatch(b *capture.Batch, mtu int) (*preparedBatch, error) {
	out := &preparedBatch{}
	if b.WMInfo != nil {
		payload, err := b.WMInfo.Marshal()
		if err != nil {
			return nil, fmt.Errorf("ah: encode WindowManagerInfo: %w", err)
		}
		out.msgs = append(out.msgs, preparedMessage{payload: payload, kind: "WindowManagerInfo"})
		out.wmCount = 1
	}
	for _, mv := range b.Moves {
		payload, err := mv.Marshal()
		if err != nil {
			return nil, fmt.Errorf("ah: encode MoveRectangle: %w", err)
		}
		out.msgs = append(out.msgs, preparedMessage{payload: payload, kind: "MoveRectangle"})
	}
	for _, up := range b.Updates {
		frags, err := up.Msg.Fragments(mtu)
		if err != nil {
			return nil, fmt.Errorf("ah: fragment RegionUpdate: %w", err)
		}
		for _, f := range frags {
			out.msgs = append(out.msgs, preparedMessage{payload: f.Payload, marker: f.Marker, kind: "RegionUpdate"})
		}
	}
	if b.Pointer != nil {
		frags, err := b.Pointer.Fragments(mtu)
		if err != nil {
			return nil, fmt.Errorf("ah: fragment MousePointerInfo: %w", err)
		}
		for _, f := range frags {
			out.msgs = append(out.msgs, preparedMessage{payload: f.Payload, marker: f.Marker, kind: "MousePointerInfo"})
		}
	}
	return out, nil
}

// sendPrepared stamps the shared payloads with this remote's RTP stream
// state and ships them. The host lock is held.
func (r *Remote) sendPrepared(msgs []preparedMessage) error {
	now := r.host.cfg.Now()
	for _, m := range msgs {
		pkt := r.pz.Packetize(m.payload, m.marker, now)
		raw, err := pkt.Marshal()
		if err != nil {
			return err
		}
		if err := r.shipAndLog(raw, m.kind); err != nil {
			return err
		}
	}
	return nil
}

// batchFromUpdates wraps re-captured updates in a batch for encoding.
func batchFromUpdates(ups []capture.Update, pointer *remoting.MousePointerInfo) *capture.Batch {
	return &capture.Batch{Updates: ups, Pointer: pointer}
}
