package ah

import (
	"fmt"
	"time"

	"appshare/internal/capture"
	"appshare/internal/remoting"
	"appshare/internal/rtp"
)

// encoded is one RTP packet ready to ship, tagged with its message kind
// for stats.
type encoded struct {
	bytes []byte
	kind  string
}

// encodeBatch converts a capture batch into RTP packets for one
// participant stream, applying the draft's RTP header usage rules: all
// fragments of one message share a timestamp, the marker bit follows
// Table 2 for RegionUpdate/MousePointerInfo and is zero elsewhere.
func encodeBatch(b *capture.Batch, pz *rtp.Packetizer, mtu int, now time.Time) ([]encoded, error) {
	var out []encoded

	appendPacket := func(payload []byte, marker bool, kind string) error {
		pkt := pz.Packetize(payload, marker, now)
		raw, err := pkt.Marshal()
		if err != nil {
			return err
		}
		out = append(out, encoded{bytes: raw, kind: kind})
		return nil
	}

	if b.WMInfo != nil {
		payload, err := b.WMInfo.Marshal()
		if err != nil {
			return nil, fmt.Errorf("ah: encode WindowManagerInfo: %w", err)
		}
		if err := appendPacket(payload, false, "WindowManagerInfo"); err != nil {
			return nil, err
		}
	}
	for _, mv := range b.Moves {
		payload, err := mv.Marshal()
		if err != nil {
			return nil, fmt.Errorf("ah: encode MoveRectangle: %w", err)
		}
		if err := appendPacket(payload, false, "MoveRectangle"); err != nil {
			return nil, err
		}
	}
	for _, up := range b.Updates {
		frags, err := up.Msg.Fragments(mtu)
		if err != nil {
			return nil, fmt.Errorf("ah: fragment RegionUpdate: %w", err)
		}
		for _, f := range frags {
			if err := appendPacket(f.Payload, f.Marker, "RegionUpdate"); err != nil {
				return nil, err
			}
		}
	}
	if b.Pointer != nil {
		frags, err := b.Pointer.Fragments(mtu)
		if err != nil {
			return nil, fmt.Errorf("ah: fragment MousePointerInfo: %w", err)
		}
		for _, f := range frags {
			if err := appendPacket(f.Payload, f.Marker, "MousePointerInfo"); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// batchFromUpdates wraps re-captured updates in a batch for encoding.
func batchFromUpdates(ups []capture.Update, pointer *remoting.MousePointerInfo) *capture.Batch {
	return &capture.Batch{Updates: ups, Pointer: pointer}
}
