package ah

import (
	"fmt"
	"io"

	"appshare/internal/capture"
	"appshare/internal/codec"
	"appshare/internal/core"
	"appshare/internal/remoting"
)

// preparedMessage is one remoting-protocol payload (a whole message or
// one fragment of it) ready for per-remote RTP packetization, tagged
// with its message kind for stats and the draft's marker-bit rule.
type preparedMessage struct {
	payload []byte
	marker  bool
	kind    string
}

// preparedBatch is a capture batch marshalled and fragmented exactly
// once. The payload bytes are shared by every remote the batch fans out
// to — only the RTP headers (SSRC, sequence number, timestamp) differ
// per participant — so a 100-receiver session pays one marshalling cost,
// not 100.
type preparedBatch struct {
	msgs []preparedMessage
	// wmCount is the number of leading messages carrying the batch's
	// WindowManagerInfo (0 or 1); wmOnly slices them off for the
	// backlogged path, which sends window state but defers pixels.
	wmCount int
	// updates maps each RegionUpdate of the batch to its slice of msgs
	// plus its tile-store alternative; populated only when the host has a
	// tile store, so the store-off prepared batch is byte-identical to
	// the pre-tile-store one. Like msgs it is immutable after prepare:
	// per-remote substitution (Remote.tileCompose) composes a new slice.
	updates []preparedUpdate
}

// preparedUpdate is one update's range within preparedBatch.msgs
// ([start:end) are its RegionUpdate fragments) together with the
// tile-store view of the same content: the capture-time tile hashes
// (nil for lossy encodes, which can never teach or hit the dictionary)
// and the eagerly-marshalled TileReference substitute (nil when the
// region is not representable as single-packet references).
type preparedUpdate struct {
	start, end int
	tiles      []codec.TileKey
	ref        []preparedMessage
}

// wmOnly returns just the WindowManagerInfo messages of the batch.
func (p *preparedBatch) wmOnly() []preparedMessage { return p.msgs[:p.wmCount] }

// prepareBatch marshals a capture batch into protocol payloads in apply
// order, applying the draft's RTP usage rules: the marker bit follows
// Table 2 for RegionUpdate/MousePointerInfo fragments and is zero
// elsewhere. The result is immutable and safe to fan out concurrently.
//
// With a tile store configured (ts non-nil) each update additionally
// records its msgs range, tile hashes and TileReference substitute, so
// the per-remote compose step can swap representations without
// re-marshalling anything.
func prepareBatch(b *capture.Batch, mtu int, ts *TileStoreConfig) (*preparedBatch, error) {
	out := &preparedBatch{}
	if b.WMInfo != nil {
		payload, err := b.WMInfo.Marshal()
		if err != nil {
			return nil, fmt.Errorf("ah: encode WindowManagerInfo: %w", err)
		}
		out.msgs = append(out.msgs, preparedMessage{payload: payload, kind: "WindowManagerInfo"})
		out.wmCount = 1
	}
	for _, mv := range b.Moves {
		payload, err := mv.Marshal()
		if err != nil {
			return nil, fmt.Errorf("ah: encode MoveRectangle: %w", err)
		}
		out.msgs = append(out.msgs, preparedMessage{payload: payload, kind: "MoveRectangle"})
	}
	for _, up := range b.Updates {
		start := len(out.msgs)
		frags, err := up.Msg.Fragments(mtu)
		if err != nil {
			return nil, fmt.Errorf("ah: fragment RegionUpdate: %w", err)
		}
		for _, f := range frags {
			out.msgs = append(out.msgs, preparedMessage{payload: f.Payload, marker: f.Marker, kind: "RegionUpdate"})
		}
		if ts != nil {
			out.updates = append(out.updates, preparedUpdate{
				start: start,
				end:   len(out.msgs),
				tiles: up.Tiles,
				ref:   tileRefMessages(up, ts.TileSize, mtu),
			})
		}
	}
	if b.Pointer != nil {
		frags, err := b.Pointer.Fragments(mtu)
		if err != nil {
			return nil, fmt.Errorf("ah: fragment MousePointerInfo: %w", err)
		}
		for _, f := range frags {
			out.msgs = append(out.msgs, preparedMessage{payload: f.Payload, marker: f.Marker, kind: "MousePointerInfo"})
		}
	}
	return out, nil
}

// tileRefMessages marshals an update's TileReference representation:
// one message per band of tile rows sized so every message fits a single
// RTP packet (TileReference never uses Table 2 fragmentation — see
// internal/remoting). It returns nil when the update has no tiles (lossy
// encode, tiling off) or the region is too wide for even one tile row
// per packet, in which case the caller falls back to pixels.
func tileRefMessages(up capture.Update, tileSize, mtu int) []preparedMessage {
	if len(up.Tiles) == 0 || tileSize <= 0 {
		return nil
	}
	rect := up.Rect
	cols := (rect.Width + tileSize - 1) / tileSize
	rows := (rect.Height + tileSize - 1) / tileSize
	if cols < 1 || cols*rows != len(up.Tiles) {
		return nil
	}
	maxTiles := (mtu - core.HeaderSize - remoting.TileRefHeaderSize) / remoting.TileHashSize
	rowsPer := maxTiles / cols
	if rowsPer < 1 {
		return nil
	}
	var out []preparedMessage
	for r0 := 0; r0 < rows; r0 += rowsPer {
		r1 := min(r0+rowsPer, rows)
		band := &remoting.TileReference{
			WindowID: up.Msg.WindowID,
			Left:     uint32(rect.Left),
			Top:      uint32(rect.Top + r0*tileSize),
			Width:    uint32(rect.Width),
			Height:   uint32(min(rect.Height-r0*tileSize, (r1-r0)*tileSize)),
			TileSize: uint16(tileSize),
		}
		band.Tiles = make([]remoting.TileHash, 0, (r1-r0)*cols)
		for _, k := range up.Tiles[r0*cols : r1*cols] {
			band.Tiles = append(band.Tiles, remoting.TileHash{H1: k.H1, H2: k.H2})
		}
		payload, err := band.Marshal()
		if err != nil {
			return nil
		}
		out = append(out, preparedMessage{payload: payload, kind: "TileReference"})
	}
	return out
}

// sendPrepared stamps the shared payloads with this remote's RTP stream
// state and ships them as ONE sink batch (a writev-style stream write,
// or a batched datagram send). The owning shard's lock is held.
//
// Accounting covers exactly the packets the sink accepted, and stats
// are flushed once per same-kind run instead of once per packet, so the
// collector's mutex is not a cross-shard serialization point.
func (r *Remote) sendPrepared(msgs []preparedMessage) error {
	if len(msgs) == 0 {
		return nil
	}
	now := r.host.cfg.Now()
	raws := r.rawScratch[:0]
	for _, m := range msgs {
		pkt := r.pz.Packetize(m.payload, m.marker, now)
		raw, err := pkt.Marshal()
		if err != nil {
			r.rawScratch = raws[:0]
			return err
		}
		raws = append(raws, raw)
	}
	n, err := r.sink.shipBatch(raws)
	runStart, runBytes := 0, uint64(0)
	for i := 0; i < n; i++ {
		r.sentPackets++
		r.sentOctets += uint64(len(raws[i]))
		runBytes += uint64(len(raws[i]))
		r.logForRetransmission(raws[i])
		if i+1 == n || msgs[i+1].kind != msgs[i].kind {
			r.host.recordN(msgs[i].kind, uint64(i+1-runStart), runBytes)
			runStart, runBytes = i+1, 0
		}
	}
	// Drop the buffer references (retransmission-logged packets are
	// retained by the log itself); keep the outer slice's capacity.
	for i := range raws {
		raws[i] = nil
	}
	r.rawScratch = raws[:0]
	if err == nil && n < len(msgs) {
		// A short-count batch sender accepted only a prefix without
		// reporting an error of its own. The remainder never reached the
		// wire and was not counted above; surface the shortfall so the
		// caller (Tick, or the attach path) sees the loss instead of a
		// silently truncated batch.
		err = fmt.Errorf("ah: batch send accepted %d of %d packets: %w", n, len(msgs), io.ErrShortWrite)
	}
	return err
}

// batchFromUpdates wraps re-captured updates in a batch for encoding.
func batchFromUpdates(ups []capture.Update, pointer *remoting.MousePointerInfo) *capture.Batch {
	return &capture.Batch{Updates: ups, Pointer: pointer}
}
