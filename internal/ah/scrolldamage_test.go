package ah

import (
	"bytes"
	"image/color"
	"testing"

	"appshare/internal/display"
	"appshare/internal/participant"
	"appshare/internal/region"
	"appshare/internal/transport"
	"appshare/internal/workload"
)

// Regression tests for the same-tick draw-then-scroll ordering bug: ink
// drawn earlier in a tick and then scrolled must reach participants at
// its *moved* position. Before the fix, the damage still pointed at the
// pre-scroll location, the MoveRectangle shifted the participant's stale
// (ink-less) pixels, and the ink was lost forever. The fix translates
// pending damage through every move (region.Set.TranslateWithin).

func newConvergencePair(t *testing.T) (*Host, *display.Window, *participant.Participant) {
	t.Helper()
	h, w := newHost(t, Config{})
	t.Cleanup(func() { h.Close() })
	hostConn, partConn := transport.Pipe(transport.LinkConfig{Seed: 41}, transport.LinkConfig{Seed: 51})
	p := participant.New(participant.Config{})
	go func() {
		for {
			pkt, err := partConn.Recv()
			if err != nil {
				return
			}
			_ = p.HandlePacket(pkt)
		}
	}()
	if _, err := h.AttachPacketConn("x", hostConn, PacketOptions{}); err != nil {
		t.Fatal(err)
	}
	// Drain creation damage BEFORE the participant joins, so the join
	// refresh is the participant's entire baseline (no masking by
	// leftover full-window damage).
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	pli, err := p.BuildPLI()
	if err != nil {
		t.Fatal(err)
	}
	if err := partConn.Send(pli); err != nil {
		t.Fatal(err)
	}
	settle()
	return h, w, p
}

func TestSameTickDrawThenScrollConverges(t *testing.T) {
	h, w, p := newConvergencePair(t)

	ink := color.RGBA{0xAA, 0x11, 0x22, 0xFF}
	white := color.RGBA{0xFF, 0xFF, 0xFF, 0xFF}
	// Ink inside the scroll band, then scroll up by 10 — both within one
	// capture tick. The ink's final location is rows 420..428.
	w.Fill(region.XYWH(10, 430, 100, 8), ink)
	w.Scroll(region.XYWH(0, 0, 350, 450), -10, white)
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	settle()
	img := p.WindowImage(w.ID())
	if img == nil {
		t.Fatal("missing window image")
	}
	if got := img.RGBAAt(15, 423); got != ink {
		t.Fatalf("ink at moved position = %v, want %v (same-tick scroll lost it)", got, ink)
	}
	if got := img.RGBAAt(15, 433); got != white {
		t.Fatalf("old ink position = %v, want white", got)
	}
	// Full-buffer equality too.
	if !bytes.Equal(w.Snapshot().Pix, img.Pix) {
		t.Fatal("buffers diverged")
	}
}

// TestTypingConvergesPerTick replays the workload that originally
// exposed the bug (typing wraps lines mid-step, drawing both before and
// after the scroll), asserting pixel equality after every tick.
func TestTypingConvergesPerTick(t *testing.T) {
	h, w := newHost(t, Config{})
	defer h.Close()
	hostConn, partConn := transport.Pipe(transport.LinkConfig{Seed: 41}, transport.LinkConfig{Seed: 51})
	p := participant.New(participant.Config{})
	pkts := make(chan []byte, 1<<14)
	go func() {
		for {
			pkt, err := partConn.Recv()
			if err != nil {
				return
			}
			pkts <- pkt
		}
	}()
	drain := func() {
		settle()
		for {
			select {
			case pkt := <-pkts:
				_ = p.HandlePacket(pkt)
			default:
				return
			}
		}
	}
	if _, err := h.AttachPacketConn("x", hostConn, PacketOptions{}); err != nil {
		t.Fatal(err)
	}
	pli, err := p.BuildPLI()
	if err != nil {
		t.Fatal(err)
	}
	if err := partConn.Send(pli); err != nil {
		t.Fatal(err)
	}
	drain()

	ty := workload.NewTyping(w, 48, 9)
	for i := 0; i < 120; i++ {
		ty.Step()
		if err := h.Tick(); err != nil {
			t.Fatal(err)
		}
		drain()
		want := w.Snapshot()
		got := p.WindowImage(w.ID())
		if got == nil || !bytes.Equal(want.Pix, got.Pix) {
			t.Fatalf("tick %d: participant diverged from AH window", i)
		}
	}
}
