package ah

import (
	"testing"
	"time"

	"appshare/internal/participant"
	"appshare/internal/region"
	"appshare/internal/rtcp"
	"appshare/internal/transport"
)

// TestRTCPReportExchange covers the full RFC 3550 report loop: the host
// sends SR+SDES, the participant returns an RR whose statistics the
// host records against the remote.
func TestRTCPReportExchange(t *testing.T) {
	h, w := newHost(t, Config{CNAME: "host@test"})
	defer h.Close()

	// 10% loss toward the participant so the RR carries real numbers.
	hostConn, partConn := transport.Pipe(transport.LinkConfig{LossRate: 0.10, Seed: 7}, transport.LinkConfig{Seed: 2})
	p := participant.New(participant.Config{CNAME: "viewer@test"})
	go func() {
		for {
			pkt, err := partConn.Recv()
			if err != nil {
				return
			}
			if len(pkt) >= 2 && pkt[1] >= 200 && pkt[1] <= 207 {
				if _, err := p.HandleRTCP(pkt); err != nil {
					t.Errorf("HandleRTCP: %v", err)
				}
				continue
			}
			_ = p.HandlePacket(pkt)
		}
	}()
	remote, err := h.AttachPacketConn("u1", hostConn, PacketOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Traffic with losses.
	pli, err := p.BuildPLI()
	if err != nil {
		t.Fatal(err)
	}
	if err := partConn.Send(pli); err != nil {
		t.Fatal(err)
	}
	settle()
	for i := 0; i < 30; i++ {
		w.Fill(region.XYWH(i*5, i*5, 40, 40), red)
		if err := h.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	settle()

	// Host sends its SR; the participant learns the LSR reference.
	if err := h.SendReports(); err != nil {
		t.Fatal(err)
	}
	settle()

	// Participant returns an RR.
	rr, err := p.BuildReceiverReport()
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := rtcp.Unmarshal(rr)
	if err != nil {
		t.Fatal(err)
	}
	var rep *rtcp.ReceiverReport
	var sdes *rtcp.SDES
	for _, m := range pkts {
		switch v := m.(type) {
		case *rtcp.ReceiverReport:
			rep = v
		case *rtcp.SDES:
			sdes = v
		}
	}
	if rep == nil || len(rep.Reports) != 1 {
		t.Fatalf("RR = %+v", rep)
	}
	blk := rep.Reports[0]
	if blk.SSRC != remote.SSRC() {
		t.Fatalf("RR names SSRC %d, want %d", blk.SSRC, remote.SSRC())
	}
	if blk.TotalLost == 0 {
		t.Fatal("10% loss should show in TotalLost")
	}
	if blk.LastSR == 0 {
		t.Fatal("LSR should reference the host's SR")
	}
	if sdes == nil || sdes.CNAME != "viewer@test" {
		t.Fatalf("SDES = %+v", sdes)
	}

	// Host ingests the RR and exposes it on the remote.
	if err := partConn.Send(rr); err != nil {
		t.Fatal(err)
	}
	settle()
	q := remote.LastReceiverReport()
	if !q.Valid || q.CumulativeLost != blk.TotalLost {
		t.Fatalf("host view = %+v, want lost %d", q, blk.TotalLost)
	}
}

// TestSendReportsCountsTraffic checks SR packet/octet counters reflect
// shipped media.
func TestSendReportsCountsTraffic(t *testing.T) {
	h, w := newHost(t, Config{})
	defer h.Close()
	hostConn, partConn := transport.Pipe(transport.LinkConfig{Seed: 1}, transport.LinkConfig{Seed: 2})
	received := make(chan []byte, 256)
	go func() {
		for {
			pkt, err := partConn.Recv()
			if err != nil {
				return
			}
			select {
			case received <- pkt:
			default:
			}
		}
	}()
	r, err := h.AttachPacketConn("u1", hostConn, PacketOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.RequestRefresh(r); err != nil {
		t.Fatal(err)
	}
	w.Fill(region.XYWH(0, 0, 60, 60), red)
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	if err := h.SendReports(); err != nil {
		t.Fatal(err)
	}

	deadline := time.After(2 * time.Second)
	for {
		select {
		case pkt := <-received:
			if len(pkt) >= 2 && pkt[1] == rtcp.TypeSenderReport {
				pkts, err := rtcp.Unmarshal(pkt)
				if err != nil {
					t.Fatal(err)
				}
				sr := pkts[0].(*rtcp.SenderReport)
				if sr.PacketCount == 0 || sr.OctetCount == 0 {
					t.Fatalf("SR counts empty: %+v", sr)
				}
				if sr.NTPTime == 0 {
					t.Fatal("SR NTP time missing")
				}
				return
			}
		case <-deadline:
			t.Fatal("no SR received")
		}
	}
}
