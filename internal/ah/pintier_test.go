package ah

import (
	"bytes"
	"image"
	"testing"
	"time"

	"appshare/internal/participant"
	"appshare/internal/region"
)

// TestPinnedScaledLateJoinerInitialPushIsDegraded attaches a remote
// pinned to TierScaled after content exists and verifies the initial
// push is tier-coherent: the joiner sees block-uniform pixels, not the
// full-resolution stripes a TierFull joiner gets from the same desktop.
func TestPinnedScaledLateJoinerInitialPushIsDegraded(t *testing.T) {
	h, w := newHost(t, Config{})
	defer h.Close()

	// Content BEFORE any remote joins: 1px stripes.
	for i := 0; i < 16; i++ {
		c := red
		if i%2 == 1 {
			c = blue
		}
		w.Fill(region.XYWH(16+i, 16, 1, 16), c)
	}
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	host := w.Snapshot()
	if host.RGBAAt(16, 16) == host.RGBAAt(17, 16) {
		t.Fatal("test bug: stripes did not render")
	}

	// Full-tier late joiner: byte-exact pixels.
	fullEnd, fullPart := streamPair()
	pf := participant.New(participant.Config{})
	pump(t, pf, fullPart)
	if _, err := h.AttachStream("full", fullEnd, StreamOptions{}); err != nil {
		t.Fatal(err)
	}

	// Pinned-scaled late joiner: the initial push must re-encode through
	// the degraded path, not hand out the full-resolution refresh.
	scaledEnd, scaledPart := streamPair()
	ps := participant.New(participant.Config{})
	pump(t, ps, scaledPart)
	rs, err := h.AttachStream("scaled", scaledEnd, StreamOptions{PinTier: TierScaled})
	if err != nil {
		t.Fatal(err)
	}
	if got := rs.QualityTier(); got != TierScaled {
		t.Fatalf("attached tier = %v, want TierScaled", got)
	}

	deadline := time.Now().Add(5 * time.Second)
	var fimg, simg *image.RGBA
	for time.Now().Before(deadline) {
		fimg, simg = pf.WindowImage(w.ID()), ps.WindowImage(w.ID())
		// The scaled block's corner takes the host's top-left pixel, so
		// (16,16) lands as red on both tiers once the push applies.
		if fimg != nil && simg != nil && fimg.RGBAAt(17, 16) == host.RGBAAt(17, 16) &&
			simg.RGBAAt(16, 16) == host.RGBAAt(16, 16) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if fimg == nil || simg == nil {
		t.Fatal("initial pushes never landed")
	}
	// Full joiner preserved the stripes.
	if fimg.RGBAAt(16, 16) == fimg.RGBAAt(17, 16) {
		t.Fatal("full-tier joiner lost the stripes")
	}
	// Scaled joiner got pixelated blocks: uniform within the block, and
	// not byte-identical to the host framebuffer.
	for _, x := range []int{17, 18, 19} {
		if got := simg.RGBAAt(x, 16); got != simg.RGBAAt(16, 16) {
			t.Fatalf("pinned joiner not block-uniform: (%d,16)=%v vs (16,16)=%v", x, got, simg.RGBAAt(16, 16))
		}
	}
	if bytes.Equal(simg.Pix, host.Pix) {
		t.Fatal("pinned TierScaled joiner received full-fidelity pixels")
	}
	if bytes.Equal(simg.Pix, fimg.Pix) {
		t.Fatal("pinned joiner's push is identical to the full-tier push")
	}
}

// TestPinnedScaledRefreshPhaseIsDegraded verifies the PLI-triggered
// refresh (served in the tick's refresh phase) stays tier-coherent for
// a pinned remote: the served snapshot is the degraded encode.
func TestPinnedScaledRefreshPhaseIsDegraded(t *testing.T) {
	h, w := newHost(t, Config{})
	defer h.Close()

	conn := newFaultConn(false)
	r, err := h.AttachPacketConn("scaled-udp", conn, PacketOptions{PinTier: TierScaled})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		c := red
		if i%2 == 1 {
			c = blue
		}
		w.Fill(region.XYWH(16+i, 16, 1, 16), c)
	}
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}

	// Latch the refresh (the PLI action) and serve it next tick.
	r.sh.mu.Lock()
	r.refreshRequested = true
	r.sh.mu.Unlock()
	before := len(conn.sent)
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	if len(conn.sent) == before {
		t.Fatal("refresh phase served nothing")
	}

	// Feed the refresh packets to a participant; the result must be
	// block-uniform where the host has stripes.
	p := participant.New(participant.Config{})
	for _, pkt := range conn.sent {
		_ = p.HandlePacket(pkt)
	}
	img := p.WindowImage(w.ID())
	if img == nil {
		t.Fatal("no window image from refresh")
	}
	host := w.Snapshot()
	for _, x := range []int{17, 18, 19} {
		if got := img.RGBAAt(x, 16); got != img.RGBAAt(16, 16) {
			t.Fatalf("refresh not block-uniform: (%d,16)=%v vs (16,16)=%v", x, got, img.RGBAAt(16, 16))
		}
	}
	if bytes.Equal(img.Pix, host.Pix) {
		t.Fatal("pinned remote's refresh delivered full-fidelity pixels")
	}
}
