package ah

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"appshare/internal/display"
	"appshare/internal/participant"
	"appshare/internal/region"
	"appshare/internal/transport"
	"appshare/internal/windows"
	"appshare/internal/workload"
)

// TestScreenConvergence is the system's central invariant: over a
// lossless transport with the lossless (PNG) codec, after any sequence
// of desktop activity and a final quiescent tick, every participant's
// per-window image equals the AH's window buffer pixel-for-pixel.
//
// The test drives randomized workload mixes (seeded) through the full
// stack: capture → fragmentation → RTP → link → reorder → reassembly →
// decode → apply.
func TestScreenConvergence(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			d := display.NewDesktop(1024, 768)
			w1 := d.CreateWindow(1, region.XYWH(50, 40, 400, 300))
			w2 := d.CreateWindow(2, region.XYWH(300, 200, 350, 260))

			h, err := New(Config{Desktop: d})
			if err != nil {
				t.Fatal(err)
			}
			defer h.Close()

			hostConn, partConn := transport.Pipe(
				transport.LinkConfig{Seed: seed}, // lossless
				transport.LinkConfig{Seed: seed + 100},
			)
			p := participant.New(participant.Config{})
			go func() {
				for {
					pkt, err := partConn.Recv()
					if err != nil {
						return
					}
					_ = p.HandlePacket(pkt)
				}
			}()
			if _, err := h.AttachPacketConn("conv", hostConn, PacketOptions{}); err != nil {
				t.Fatal(err)
			}
			pli, err := p.BuildPLI()
			if err != nil {
				t.Fatal(err)
			}
			if err := partConn.Send(pli); err != nil {
				t.Fatal(err)
			}
			settle()
			if err := h.Tick(); err != nil {
				t.Fatal(err)
			}
			settle()

			gens := []workload.Workload{
				workload.NewTyping(w1, 32, seed),
				workload.NewScrolling(w2, 1, seed+1),
				workload.NewVideoRegion(w1, region.XYWH(250, 200, 100, 80), seed+2),
			}
			for step := 0; step < 60; step++ {
				gens[rng.Intn(len(gens))].Step()
				switch rng.Intn(10) {
				case 0:
					_ = d.MoveWindow(w2.ID(), rng.Intn(600), rng.Intn(400))
				case 1:
					_ = d.RaiseWindow(uint16(1 + rng.Intn(2)))
				}
				if err := h.Tick(); err != nil {
					t.Fatal(err)
				}
			}
			// Final quiescent tick and settle.
			if err := h.Tick(); err != nil {
				t.Fatal(err)
			}
			settle()

			for _, win := range []*display.Window{w1, w2} {
				want := win.Snapshot()
				got := p.WindowImage(win.ID())
				if got == nil {
					t.Fatalf("window %d missing at participant", win.ID())
				}
				if got.Bounds() != want.Bounds() {
					t.Fatalf("window %d bounds: got %v want %v", win.ID(), got.Bounds(), want.Bounds())
				}
				if !bytes.Equal(got.Pix, want.Pix) {
					diff := 0
					for i := range got.Pix {
						if got.Pix[i] != want.Pix[i] {
							diff++
						}
					}
					t.Fatalf("window %d: %d/%d pixel bytes differ", win.ID(), diff, len(want.Pix))
				}
			}
			// The WM state matches too.
			recs := windows.SnapshotRecords(d)
			ids := p.Windows()
			if len(recs) != len(ids) {
				t.Fatalf("window count: AH %d, participant %d", len(recs), len(ids))
			}
			for i := range recs {
				if recs[i].WindowID != ids[i] {
					t.Fatalf("z-order mismatch at %d: %d vs %d", i, recs[i].WindowID, ids[i])
				}
			}
		})
	}
}

// TestScreenConvergenceUnderLossWithRepair repeats the invariant over a
// lossy link with NACK repair: after repair rounds and a final tick, the
// screens still converge.
func TestScreenConvergenceUnderLossWithRepair(t *testing.T) {
	d := display.NewDesktop(800, 600)
	win := d.CreateWindow(1, region.XYWH(50, 40, 400, 300))
	// PLI rate limiting off: the endgame below may need several refresh
	// rounds inside what would be one MinRefreshInterval window.
	h, err := New(Config{Retransmissions: true, MinRefreshInterval: -1, Desktop: d})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	hostConn, partConn := transport.Pipe(
		transport.LinkConfig{LossRate: 0.15, Seed: 77},
		transport.LinkConfig{Seed: 78},
	)
	p := participant.New(participant.Config{})
	go func() {
		for {
			pkt, err := partConn.Recv()
			if err != nil {
				return
			}
			_ = p.HandlePacket(pkt)
		}
	}()
	if _, err := h.AttachPacketConn("lossy", hostConn, PacketOptions{}); err != nil {
		t.Fatal(err)
	}
	pli, err := p.BuildPLI()
	if err != nil {
		t.Fatal(err)
	}
	if err := partConn.Send(pli); err != nil {
		t.Fatal(err)
	}
	settle()
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	settle()

	ty := workload.NewTyping(win, 48, 3)
	for step := 0; step < 40; step++ {
		ty.Step()
		if err := h.Tick(); err != nil {
			t.Fatal(err)
		}
		if nack, err := p.BuildNACK(); err == nil && nack != nil {
			_ = partConn.Send(nack)
		}
	}
	// Repair until clean (retransmissions can be lost too).
	for round := 0; round < 60 && len(p.MissingSequences()) > 0; round++ {
		settle()
		if nack, err := p.BuildNACK(); err == nil && nack != nil {
			_ = partConn.Send(nack)
		}
	}
	settle()
	if missing := p.MissingSequences(); len(missing) != 0 {
		t.Fatalf("unrepaired gaps: %v", missing)
	}
	// NACKs can only repair gaps the participant can SEE. Two loss modes
	// escape them: a fragment start lost before its retransmission
	// arrived (the reassembler dropped the message and latched
	// NeedsRefresh), and a TAIL loss — the last fragments of the final
	// tick dropped with no later packet to reveal the gap, so the
	// receiver's sequence view looks complete while its pixels are
	// stale. A live session closes the second mode with the continuous
	// tick stream; this one has gone quiescent, so the participant's
	// recourse is a PLI-triggered full refresh — which travels the same
	// 15%-lossy link and may itself need repair, hence bounded rounds
	// rather than one shot.
	converged := func() bool {
		want := win.Snapshot()
		got := p.WindowImage(win.ID())
		return got != nil && got.Bounds() == want.Bounds() && bytes.Equal(got.Pix, want.Pix)
	}
	for round := 0; round < 8 && (p.NeedsRefresh() || !converged()); round++ {
		if err := partConn.Send(mustPLI(t, p)); err != nil {
			t.Fatal(err)
		}
		settle()
		if err := h.Tick(); err != nil { // refresh serves at the tick
			t.Fatal(err)
		}
		// Repair any visible gaps the lossy refresh itself opened.
		for r := 0; r < 60 && len(p.MissingSequences()) > 0; r++ {
			settle()
			if nack, err := p.BuildNACK(); err == nil && nack != nil {
				_ = partConn.Send(nack)
			}
		}
		settle()
	}
	if missing := p.MissingSequences(); len(missing) != 0 {
		t.Fatalf("unrepaired gaps after refresh rounds: %v", missing)
	}
	want := win.Snapshot()
	got := p.WindowImage(win.ID())
	if got == nil || !bytes.Equal(got.Pix, want.Pix) {
		t.Fatal("screens did not converge after loss repair")
	}
}

func mustPLI(t *testing.T, p *participant.Participant) []byte {
	t.Helper()
	pli, err := p.BuildPLI()
	if err != nil {
		t.Fatal(err)
	}
	return pli
}
