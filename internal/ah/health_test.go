package ah

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"appshare/internal/display"
	"appshare/internal/framing"
	"appshare/internal/participant"
	"appshare/internal/region"
	"appshare/internal/rtcp"
	"appshare/internal/rtp"
	"appshare/internal/stats"
	"appshare/internal/transport"
	"appshare/internal/workload"
)

// fakeClock is a mutex-guarded virtual clock for Config.Now: ticks
// advance it deterministically while pump goroutines read it
// concurrently.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// stallResult is one viewer's terminal pixel state in the stall
// scenario.
type stallResult struct {
	imgA, imgB []byte
	want       []byte // the AH window snapshot
	evictions  []RemoteHealth
	health     []RemoteHealth
	remaining  int
}

// runStallScenario drives a deterministic three-viewer session. With
// stall=true, viewer "c" stops reading mid-session (its TCP peer black-
// holes) and the host is expected to evict it; viewers "a" and "b" must
// be unaffected either way.
func runStallScenario(t *testing.T, stall bool) stallResult {
	t.Helper()
	clock := newFakeClock()
	var (
		evMu      sync.Mutex
		evictions []RemoteHealth
	)
	d := display.NewDesktop(320, 240)
	w := d.CreateWindow(1, region.XYWH(20, 20, 200, 150))
	h, err := New(Config{
		Desktop:         d,
		Now:             clock.Now,
		Stats:           stats.NewCollector(),
		BacklogLimit:    1024,
		MaxBacklogDwell: time.Second,
		EvictionPolicy:  EvictionDegradeThenDrop,
		OnEvict: func(snap RemoteHealth) {
			evMu.Lock()
			evictions = append(evictions, snap)
			evMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	attach := func(id string) (*participant.Participant, io.ReadWriteCloser) {
		hostEnd, partEnd := streamPair()
		p := participant.New(participant.Config{})
		if id != "c" {
			pump(t, p, partEnd)
		}
		if _, err := h.AttachStream(id, hostEnd, StreamOptions{}); err != nil {
			t.Fatal(err)
		}
		return p, partEnd
	}
	pA, _ := attach("a")
	pB, _ := attach("b")
	pC, cEnd := attach("c")

	// Viewer c's pump is stoppable: closing cStop makes it stop reading,
	// which (over the synchronous in-memory pipe) blocks the host's
	// drain exactly like a black-holed TCP peer.
	cStop := make(chan struct{})
	go func() {
		fr := framing.NewReader(cEnd)
		for {
			select {
			case <-cStop:
				return
			default:
			}
			pkt, err := fr.ReadFrame()
			if err != nil {
				return
			}
			_ = pC.HandlePacket(pkt)
		}
	}()
	settle()

	vid := workload.NewVideoRegion(w, region.XYWH(30, 30, 120, 90), 7)
	for step := 0; step < 40; step++ {
		if step == 5 && stall {
			close(cStop)
		}
		vid.Step()
		clock.Advance(100 * time.Millisecond)
		if err := h.Tick(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond) // real time for the healthy pipes to drain
	}
	// Final quiescent tick, then let the pipes drain.
	clock.Advance(100 * time.Millisecond)
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	settle()

	res := stallResult{
		want:      append([]byte(nil), w.Snapshot().Pix...),
		health:    h.RemoteHealth(),
		remaining: h.Participants(),
	}
	evMu.Lock()
	res.evictions = append(res.evictions, evictions...)
	evMu.Unlock()
	if img := pA.WindowImage(w.ID()); img != nil {
		res.imgA = append([]byte(nil), img.Pix...)
	}
	if img := pB.WindowImage(w.ID()); img != nil {
		res.imgB = append([]byte(nil), img.Pix...)
	}
	return res
}

// TestLivenessStalledViewerEvicted is the subsystem's acceptance test:
// one of three TCP viewers black-holes mid-session; the host must evict
// it within the configured dwell budget with a recorded reason, while
// the other two converge byte-identically to the no-stall baseline.
func TestLivenessStalledViewerEvicted(t *testing.T) {
	base := runStallScenario(t, false)
	if base.remaining != 3 || len(base.evictions) != 0 {
		t.Fatalf("baseline disturbed: %d remotes, %d evictions", base.remaining, len(base.evictions))
	}
	got := runStallScenario(t, true)

	if got.remaining != 2 {
		t.Fatalf("participants after stall = %d, want 2", got.remaining)
	}
	if len(got.evictions) != 1 {
		t.Fatalf("evictions = %d, want 1 (%+v)", len(got.evictions), got.evictions)
	}
	ev := got.evictions[0]
	if ev.ID != "c" || ev.State != HealthEvicted {
		t.Fatalf("evicted %q in state %v, want c evicted", ev.ID, ev.State)
	}
	if !strings.Contains(ev.EvictReason, "backlog dwell") && !strings.Contains(ev.EvictReason, "send stall") {
		t.Fatalf("eviction reason %q does not name the congestion signal", ev.EvictReason)
	}
	// Within the congestion budget: whichever signal fired — backlog
	// dwell, or send stall (whose clock starts when drain progress
	// stops, up to one tick before the backlog crosses the limit) — must
	// have crossed MaxBacklogDwell but not run far past it (2 virtual
	// ticks slack).
	sig := ev.BacklogDwell
	if ev.SendStall > sig {
		sig = ev.SendStall
	}
	if sig < time.Second || sig > 1200*time.Millisecond {
		t.Fatalf("evicted at congestion signal %v (dwell %v, stall %v), want within [1s, 1.2s]",
			sig, ev.BacklogDwell, ev.SendStall)
	}
	if ev.EvictedAt.IsZero() {
		t.Fatal("eviction snapshot missing EvictedAt")
	}
	// The eviction is visible through Host.RemoteHealth too.
	var found bool
	for _, hs := range got.health {
		if hs.ID == "c" && hs.State == HealthEvicted && hs.EvictReason == ev.EvictReason {
			found = true
		}
	}
	if !found {
		t.Fatalf("RemoteHealth does not surface the eviction: %+v", got.health)
	}

	// The surviving viewers are byte-identical to the baseline run and
	// to the AH's own window buffer.
	if len(got.imgA) == 0 || len(got.imgB) == 0 {
		t.Fatal("surviving viewer missing window image")
	}
	if !bytes.Equal(got.want, base.want) {
		t.Fatal("scenario not deterministic: AH snapshots differ between runs")
	}
	if !bytes.Equal(got.imgA, base.imgA) || !bytes.Equal(got.imgA, got.want) {
		t.Fatal("viewer a diverged from the no-stall baseline")
	}
	if !bytes.Equal(got.imgB, base.imgB) || !bytes.Equal(got.imgB, got.want) {
		t.Fatal("viewer b diverged from the no-stall baseline")
	}
}

// TestLivenessDegradeThenRecover: under EvictionDegrade a congested
// viewer is demoted to keyframe-only mode (pending regions dropped, not
// accumulated) and promoted back — with a full resync — once its link
// drains. It must never be evicted.
func TestLivenessDegradeThenRecover(t *testing.T) {
	clock := newFakeClock()
	st := stats.NewCollector()
	d := display.NewDesktop(320, 240)
	w := d.CreateWindow(1, region.XYWH(10, 10, 220, 160))
	h, err := New(Config{
		Desktop:         d,
		Now:             clock.Now,
		Stats:           st,
		BacklogLimit:    512,
		MaxBacklogDwell: time.Second,
		EvictionPolicy:  EvictionDegrade,
		OnEvict:         func(RemoteHealth) { t.Error("EvictionDegrade must never evict") },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	hostEnd, partEnd := streamPair()
	p := participant.New(participant.Config{})
	// No pump yet: the unread pipe wedges the drain immediately, so the
	// initial state alone pushes the backlog over the limit.
	r, err := h.AttachStream("slow", hostEnd, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}

	vid := workload.NewVideoRegion(w, region.XYWH(20, 20, 100, 80), 11)
	for step := 0; step < 8; step++ {
		vid.Step()
		clock.Advance(200 * time.Millisecond)
		if err := h.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	hs := r.Health()
	if hs.State != HealthDegraded {
		t.Fatalf("state after sustained backlog = %v, want degraded", hs.State)
	}
	if got := st.Get("HealthDegrade").Messages; got == 0 {
		t.Fatal("HealthDegrade stat not recorded")
	}
	if hs.DeferStreak == 0 || hs.MaxDeferStreak == 0 {
		t.Fatalf("deferral streak not tracked: %+v", hs)
	}
	// Keyframe-only mode must not hoard pending regions.
	r.sh.mu.Lock()
	pendingEmpty := r.pending.Empty()
	r.sh.mu.Unlock()
	if !pendingEmpty {
		t.Fatal("degraded remote still accumulates pending regions")
	}

	// The viewer comes back: drain the pipe and let the sweep promote.
	pump(t, p, partEnd)
	settle()
	for step := 0; step < 4; step++ {
		vid.Step()
		clock.Advance(200 * time.Millisecond)
		if err := h.Tick(); err != nil {
			t.Fatal(err)
		}
		settle()
	}
	if got := r.Health().State; got != HealthHealthy {
		t.Fatalf("state after drain = %v, want healthy", got)
	}
	if got := st.Get("HealthRecover").Messages; got == 0 {
		t.Fatal("HealthRecover stat not recorded")
	}
	// The recovery keyframe resynced the viewer.
	want := w.Snapshot()
	got := p.WindowImage(w.ID())
	if got == nil || !bytes.Equal(got.Pix, want.Pix) {
		t.Fatal("viewer did not converge after degraded-mode recovery")
	}
	if h.Participants() != 1 {
		t.Fatalf("participants = %d, want 1", h.Participants())
	}
}

// TestLivenessRemoteTimeoutEviction: a UDP viewer that goes silent past
// Config.RemoteTimeout is evicted under every policy (here the default
// monitor policy), with the liveness reason recorded.
func TestLivenessRemoteTimeoutEviction(t *testing.T) {
	clock := newFakeClock()
	var (
		evMu      sync.Mutex
		evictions []RemoteHealth
	)
	d := display.NewDesktop(320, 240)
	d.CreateWindow(1, region.XYWH(10, 10, 120, 90))
	h, err := New(Config{
		Desktop:       d,
		Now:           clock.Now,
		RemoteTimeout: 2 * time.Second,
		OnEvict: func(snap RemoteHealth) {
			evMu.Lock()
			evictions = append(evictions, snap)
			evMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	hostConn, partConn := transport.Pipe(transport.LinkConfig{Seed: 5}, transport.LinkConfig{Seed: 6})
	p := participant.New(participant.Config{})
	go func() {
		for {
			pkt, err := partConn.Recv()
			if err != nil {
				return
			}
			_ = p.HandlePacket(pkt)
		}
	}()
	if _, err := h.AttachPacketConn("udp1", hostConn, PacketOptions{}); err != nil {
		t.Fatal(err)
	}
	pli, err := p.BuildPLI()
	if err != nil {
		t.Fatal(err)
	}
	if err := partConn.Send(pli); err != nil {
		t.Fatal(err)
	}
	settle()
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	if h.Participants() != 1 {
		t.Fatal("remote not attached")
	}

	// Silence within the budget: still attached.
	clock.Advance(1500 * time.Millisecond)
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	if h.Participants() != 1 {
		t.Fatal("remote evicted before RemoteTimeout elapsed")
	}

	// Silence past the budget: evicted with the liveness reason.
	clock.Advance(time.Second)
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	if h.Participants() != 0 {
		t.Fatalf("participants = %d, want 0 after timeout", h.Participants())
	}
	evMu.Lock()
	defer evMu.Unlock()
	if len(evictions) != 1 {
		t.Fatalf("evictions = %d, want 1", len(evictions))
	}
	if !strings.Contains(evictions[0].EvictReason, "liveness timeout") {
		t.Fatalf("reason = %q, want liveness timeout", evictions[0].EvictReason)
	}
	var found bool
	for _, hs := range h.RemoteHealth() {
		if hs.ID == "udp1" && hs.State == HealthEvicted {
			found = true
		}
	}
	if !found {
		t.Fatal("RemoteHealth does not report the timed-out remote")
	}
}

// TestLivenessNACKStormDetachRace hammers a UDP remote with NACKs from a
// feedback goroutine while the main goroutine ticks, detaches it
// mid-storm, and re-attaches fresh remotes — the feedback-vs-detach race
// the -race CI gate watches.
func TestLivenessNACKStormDetachRace(t *testing.T) {
	d := display.NewDesktop(320, 240)
	w := d.CreateWindow(1, region.XYWH(10, 10, 150, 100))
	h, err := New(Config{Desktop: d, Retransmissions: true, RetransLog: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	vid := workload.NewVideoRegion(w, region.XYWH(20, 20, 80, 60), 3)
	for round := 0; round < 4; round++ {
		hostConn, partConn := transport.Pipe(
			transport.LinkConfig{Seed: int64(round + 1)},
			transport.LinkConfig{Seed: int64(round + 100)},
		)
		r, err := h.AttachPacketConn(fmt.Sprintf("storm-%d", round), hostConn, PacketOptions{})
		if err != nil {
			t.Fatal(err)
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func(ssrc uint32) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				nack, err := rtcp.Marshal(&rtcp.NACK{
					SenderSSRC: 7,
					MediaSSRC:  ssrc,
					Pairs:      rtcp.BuildNACKPairs([]uint16{uint16(i), uint16(i + 2)}),
				})
				if err != nil {
					t.Errorf("build NACK: %v", err)
					return
				}
				if partConn.Send(nack) != nil {
					return
				}
			}
		}(r.SSRC())

		for step := 0; step < 10; step++ {
			vid.Step()
			if err := h.Tick(); err != nil {
				t.Fatal(err)
			}
		}
		// Detach mid-storm; the pump and the storm goroutine race the
		// teardown.
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		close(stop)
		wg.Wait()
		_ = partConn.Close()
	}
	if h.Participants() != 0 {
		t.Fatalf("participants = %d, want 0", h.Participants())
	}
}

// captureSink records shipped packets for direct Remote-level tests.
type captureSink struct{ pkts [][]byte }

func (c *captureSink) ship(p []byte) error { c.pkts = append(c.pkts, p); return nil }
func (c *captureSink) shipBatch(ps [][]byte) (int, error) {
	for _, p := range ps {
		_ = c.ship(p)
	}
	return len(ps), nil
}
func (c *captureSink) backlogged(int) bool        { return false }
func (c *captureSink) queued() int                { return 0 }
func (c *captureSink) stalled() time.Duration     { return 0 }
func (c *captureSink) drainStats() (int64, int64) { return 0, 0 }
func (c *captureSink) close() error               { return nil }

// TestLivenessRetransLogSeqWrapReuse: when the 16-bit sequence space
// wraps and a sequence number is reused while its old packet is still
// logged, the log must serve the NEW packet for that sequence — and must
// not lose it when the old queue slot rotates out.
func TestLivenessRetransLogSeqWrapReuse(t *testing.T) {
	h, _ := newHost(t, Config{Retransmissions: true, RetransLog: 4})
	defer h.Close()
	cs := &captureSink{}
	r := h.newRemote("wrap", 0, cs)

	mk := func(seq uint16, tag byte) []byte {
		pkt := &rtp.Packet{
			Header:  rtp.Header{PayloadType: 99, SequenceNumber: seq, SSRC: 42},
			Payload: []byte{tag},
		}
		raw, err := pkt.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	r.logForRetransmission(mk(1, 'a'))
	r.logForRetransmission(mk(2, 'a'))
	r.logForRetransmission(mk(3, 'a'))
	// Sequence 1 reused (wrap) while its old entry is still queued.
	r.logForRetransmission(mk(1, 'b'))
	// One more packet: with the aliased duplicate queue entry this
	// eviction used to delete the NEW packet for seq 1.
	r.logForRetransmission(mk(4, 'a'))

	if err := r.resend([]uint16{1}); err != nil {
		t.Fatal(err)
	}
	if len(cs.pkts) != 1 {
		t.Fatalf("NACK for live seq 1 served %d packets, want 1", len(cs.pkts))
	}
	got := cs.pkts[0]
	if tag := got[len(got)-1]; tag != 'b' {
		t.Fatalf("retransmitted stale packet %q for reused seq, want 'b'", tag)
	}

	// Rotating the window far enough must still evict seq 1 exactly once.
	r.logForRetransmission(mk(5, 'a'))
	r.logForRetransmission(mk(6, 'a'))
	cs.pkts = nil
	if err := r.resend([]uint16{1}); err != nil {
		t.Fatal(err)
	}
	if len(cs.pkts) != 0 {
		t.Fatal("evicted sequence still served from the log")
	}
	if len(r.retrans) != len(r.retransQ) {
		t.Fatalf("log invariant broken: %d map entries, %d queue entries", len(r.retrans), len(r.retransQ))
	}
}
