package ah

import (
	"time"

	"appshare/internal/rtcp"
)

// RTCP sender reports (RFC 3550): the host periodically describes each
// remoting stream with an SR + SDES compound packet, and records the
// Receiver Reports participants return, giving operators per-participant
// loss and jitter visibility.

// SendReports ships one SR+SDES compound packet to every participant.
// Call it at the RTCP interval (a few seconds). Like every send path it
// ships under the owning shard's lock (see BroadcastExtension), one
// shard at a time.
func (h *Host) SendReports() error {
	now := h.cfg.Now()
	var firstErr error
	for _, s := range h.shards {
		s.mu.Lock()
		for r := range s.remotes {
			sr := &rtcp.SenderReport{
				SSRC:        r.pz.SSRC(),
				NTPTime:     rtcp.NTPTime(now),
				RTPTime:     0, // media clock origin is random; receivers use NTP
				PacketCount: uint32(r.sentPackets),
				OctetCount:  uint32(r.sentOctets),
			}
			sdes := &rtcp.SDES{SSRC: r.pz.SSRC(), CNAME: h.cfg.CNAME}
			pkt, err := rtcp.Marshal(sr, sdes)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			if err := r.sink.ship(pkt); err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			h.record("SenderReport", len(pkt))
		}
		s.mu.Unlock()
	}
	return firstErr
}

// ReceptionQuality is the host's view of one participant's most recent
// Receiver Report.
type ReceptionQuality struct {
	FractionLost   uint8
	CumulativeLost uint32
	Jitter         uint32
	HighestSeq     uint32
	Valid          bool
}

// LastReceiverReport returns the most recent reception quality this
// remote reported, if any.
func (r *Remote) LastReceiverReport() ReceptionQuality {
	r.sh.mu.Lock()
	defer r.sh.mu.Unlock()
	return r.lastRR
}

// noteReceiverReport records a participant's RR block and refreshes the
// health subsystem's reception view (RR time, RTT estimate). Shard lock
// held.
func (r *Remote) noteReceiverReport(rep rtcp.ReceptionReport, now time.Time) {
	r.lastRR = ReceptionQuality{
		FractionLost:   rep.FractionLost,
		CumulativeLost: rep.TotalLost,
		Jitter:         rep.Jitter,
		HighestSeq:     rep.HighestSeq,
		Valid:          true,
	}
	r.lastRRAt = now
	r.noteRTTLocked(rep, now)
}
