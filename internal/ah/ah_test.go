package ah

import (
	"image/color"
	"io"
	"testing"
	"time"

	"appshare/internal/bfcp"
	"appshare/internal/display"
	"appshare/internal/framing"
	"appshare/internal/participant"
	"appshare/internal/region"
	"appshare/internal/stats"
	"appshare/internal/transport"
)

var (
	red  = color.RGBA{0xFF, 0, 0, 0xFF}
	blue = color.RGBA{0, 0, 0xFF, 0xFF}
)

// duplex glues two io.Pipes into a ReadWriteCloser pair.
type duplex struct {
	io.Reader
	io.Writer
	closeR func() error
	closeW func() error
}

func (d *duplex) Close() error {
	_ = d.closeW()
	return d.closeR()
}

// streamPair returns two connected in-memory stream endpoints.
func streamPair() (a, b io.ReadWriteCloser) {
	ar, bw := io.Pipe()
	br, aw := io.Pipe()
	a = &duplex{Reader: ar, Writer: aw, closeR: func() error { return ar.Close() }, closeW: func() error { return aw.Close() }}
	b = &duplex{Reader: br, Writer: bw, closeR: func() error { return br.Close() }, closeW: func() error { return bw.Close() }}
	return a, b
}

func newHost(t *testing.T, cfg Config) (*Host, *display.Window) {
	t.Helper()
	if cfg.Desktop == nil {
		cfg.Desktop = display.NewDesktop(1280, 1024)
	}
	w := cfg.Desktop.CreateWindow(1, region.XYWH(220, 150, 350, 450))
	h, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h, w
}

// pump reads framed packets from a stream endpoint into a participant
// until EOF.
func pump(t *testing.T, p *participant.Participant, src io.Reader) <-chan struct{} {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fr := framing.NewReader(src)
		for {
			pkt, err := fr.ReadFrame()
			if err != nil {
				return
			}
			if err := p.HandlePacket(pkt); err != nil {
				t.Errorf("participant: %v", err)
			}
		}
	}()
	return done
}

// settle gives async pipes a moment to drain.
func settle() { time.Sleep(30 * time.Millisecond) }

func TestTCPSessionEndToEnd(t *testing.T) {
	h, w := newHost(t, Config{})
	defer h.Close()
	hostEnd, partEnd := streamPair()

	p := participant.New(participant.Config{})
	pumpDone := pump(t, p, partEnd)

	remote, err := h.AttachStream("p1", hostEnd, StreamOptions{UserID: 1})
	if err != nil {
		t.Fatal(err)
	}
	settle()

	// Initial state arrived: window exists with correct placement.
	if got := p.Windows(); len(got) != 1 || got[0] != w.ID() {
		t.Fatalf("participant windows = %v", got)
	}

	// Draw and tick: the region update must reach the participant's
	// window image at the right local position.
	w.Fill(region.XYWH(10, 20, 50, 40), red)
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	settle()
	img := p.WindowImage(w.ID())
	if img == nil {
		t.Fatal("no window image")
	}
	if got := img.RGBAAt(15, 25); got != red {
		t.Fatalf("pixel = %v, want red", got)
	}
	// White background from the initial refresh outside the fill.
	if got := img.RGBAAt(200, 400); got != (color.RGBA{0xFF, 0xFF, 0xFF, 0xFF}) {
		t.Fatalf("background pixel = %v", got)
	}

	// HIP path: participant clicks inside the window; the AH validates
	// and regenerates it (cursor moves, window raises).
	click, err := p.MousePress(w.ID(), 230, 160, 1)
	if err != nil {
		t.Fatal(err)
	}
	fw := framing.NewWriter(partEnd)
	if err := fw.WriteFrame(click); err != nil {
		t.Fatal(err)
	}
	settle()
	if err := h.Tick(); err != nil { // queued input drains at the tick
		t.Fatal(err)
	}
	cur := h.Desktop().Cursor()
	if cur.X != 230 || cur.Y != 160 {
		t.Fatalf("AH cursor = (%d,%d), want (230,160)", cur.X, cur.Y)
	}
	if h.HIPErrors() != 0 {
		t.Fatalf("HIP errors = %d", h.HIPErrors())
	}

	// Illegitimate event (outside the window) is rejected (Section 4.1).
	bad, err := p.MousePress(w.ID(), 10, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.WriteFrame(bad); err != nil {
		t.Fatal(err)
	}
	settle()
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	if h.HIPErrors() != 1 {
		t.Fatalf("HIP errors = %d, want 1", h.HIPErrors())
	}

	_ = remote.Close()
	_ = partEnd.Close()
	<-pumpDone
}

func TestScrollTravelsAsMoveRectangle(t *testing.T) {
	col := stats.NewCollector()
	h, w := newHost(t, Config{Stats: col})
	defer h.Close()
	hostEnd, partEnd := streamPair()
	p := participant.New(participant.Config{})
	pump(t, p, partEnd)
	if _, err := h.AttachStream("p1", hostEnd, StreamOptions{}); err != nil {
		t.Fatal(err)
	}
	settle()

	// Paint a stripe, let it propagate.
	w.Fill(region.XYWH(0, 100, 350, 10), blue)
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	settle()
	// Scroll up 50px.
	w.Scroll(region.XYWH(0, 0, 350, 450), -50, color.RGBA{0xFF, 0xFF, 0xFF, 0xFF})
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	settle()

	if got := col.Get("MoveRectangle"); got.Messages != 1 {
		t.Fatalf("MoveRectangle messages = %d, want 1", got.Messages)
	}
	img := p.WindowImage(w.ID())
	if got := img.RGBAAt(100, 55); got != blue {
		t.Fatalf("stripe after scroll = %v at y=55, want blue", got)
	}
}

// TestPLILateJoin covers the Section 4.3 UDP joining flow (E08).
func TestPLILateJoin(t *testing.T) {
	h, w := newHost(t, Config{})
	defer h.Close()

	// Activity before the participant joins.
	w.Fill(region.XYWH(0, 0, 100, 100), red)
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}

	hostConn, partConn := transport.Pipe(transport.LinkConfig{Seed: 1}, transport.LinkConfig{Seed: 2})
	p := participant.New(participant.Config{})
	recvDone := make(chan struct{})
	go func() {
		defer close(recvDone)
		for {
			pkt, err := partConn.Recv()
			if err != nil {
				return
			}
			_ = p.HandlePacket(pkt)
		}
	}()
	if _, err := h.AttachPacketConn("u1", hostConn, PacketOptions{UserID: 2}); err != nil {
		t.Fatal(err)
	}

	// No state pushed yet: UDP joiners must PLI first.
	settle()
	if len(p.Windows()) != 0 {
		t.Fatal("UDP participant should have nothing before PLI")
	}

	pli, err := p.BuildPLI()
	if err != nil {
		t.Fatal(err)
	}
	if err := partConn.Send(pli); err != nil {
		t.Fatal(err)
	}
	settle()
	if err := h.Tick(); err != nil { // refresh is served on the next tick
		t.Fatal(err)
	}
	settle()

	// Full state arrived: WindowManagerInfo + full screen + pointer.
	if got := p.Windows(); len(got) != 1 || got[0] != w.ID() {
		t.Fatalf("windows after PLI = %v", got)
	}
	img := p.WindowImage(w.ID())
	if got := img.RGBAAt(50, 50); got != red {
		t.Fatalf("pre-join content = %v, want red", got)
	}
	if _, _, known := p.Pointer(); !known {
		t.Fatal("late joiner must learn the pointer state")
	}
	partConn.Close()
	<-recvDone
}

// TestNACKRecovery covers Section 5.3.2 (E09): losses repaired by
// retransmission.
func TestNACKRecovery(t *testing.T) {
	h, w := newHost(t, Config{Retransmissions: true})
	defer h.Close()

	// 20% loss toward the participant; clean return path.
	hostConn, partConn := transport.Pipe(transport.LinkConfig{LossRate: 0.2, Seed: 99}, transport.LinkConfig{Seed: 2})
	p := participant.New(participant.Config{})
	go func() {
		for {
			pkt, err := partConn.Recv()
			if err != nil {
				return
			}
			_ = p.HandlePacket(pkt)
		}
	}()
	if _, err := h.AttachPacketConn("u1", hostConn, PacketOptions{}); err != nil {
		t.Fatal(err)
	}
	pli, err := p.BuildPLI()
	if err != nil {
		t.Fatal(err)
	}
	if err := partConn.Send(pli); err != nil {
		t.Fatal(err)
	}
	settle()
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	settle()

	// Generate traffic with losses.
	for i := 0; i < 30; i++ {
		w.Fill(region.XYWH(i*10, i*10, 30, 30), red)
		if err := h.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	settle()

	// NACK until the gap set drains (a couple of rounds may be needed
	// since retransmissions themselves can be lost).
	for round := 0; round < 20; round++ {
		nack, err := p.BuildNACK()
		if err != nil {
			t.Fatal(err)
		}
		if nack == nil {
			break
		}
		if err := partConn.Send(nack); err != nil {
			t.Fatal(err)
		}
		settle()
	}
	if missing := p.MissingSequences(); len(missing) != 0 {
		t.Fatalf("still missing %v after NACK rounds", missing)
	}
	partConn.Close()
}

// TestBacklogCoalescing covers the Section 7 implementation note (E11).
func TestBacklogCoalescing(t *testing.T) {
	h, w := newHost(t, Config{BacklogLimit: 2 << 10})
	defer h.Close()
	hostEnd, partEnd := streamPair()
	p := participant.New(participant.Config{})
	pump(t, p, partEnd)

	// 40 KB/s link: a full-window PNG refresh plus updates backlogs it.
	remote, err := h.AttachStream("slow", hostEnd, StreamOptions{BytesPerSecond: 40 << 10})
	if err != nil {
		t.Fatal(err)
	}

	// Rapidly-changing content: 30 ticks of alternating full-window
	// fills. A naive sender would queue every frame.
	colors := []color.RGBA{red, blue}
	for i := 0; i < 30; i++ {
		w.Fill(region.XYWH(0, 0, 350, 450), colors[i%2])
		if err := h.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if remote.Deferrals() == 0 {
		t.Fatal("slow link should have deferred some frames")
	}

	// Let the link drain and deliver the deferred final state.
	deadline := time.Now().Add(10 * time.Second)
	var got color.RGBA
	want := colors[1] // last fill color (i=29 odd → blue)
	for time.Now().Before(deadline) {
		if err := h.Tick(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(50 * time.Millisecond)
		img := p.WindowImage(w.ID())
		if img != nil {
			got = img.RGBAAt(175, 225)
			if got == want {
				break
			}
		}
	}
	if got != want {
		t.Fatalf("final pixel = %v, want %v (coalesced final state)", got, want)
	}
}

// TestMixedTransportFanout covers Section 4.2 (E12): TCP, UDP and
// multicast participants in one session.
func TestMixedTransportFanout(t *testing.T) {
	h, w := newHost(t, Config{})
	defer h.Close()

	// TCP participant.
	hostEnd, partEnd := streamPair()
	tcpP := participant.New(participant.Config{})
	pump(t, tcpP, partEnd)
	if _, err := h.AttachStream("tcp", hostEnd, StreamOptions{}); err != nil {
		t.Fatal(err)
	}

	// UDP participant.
	hostConn, partConn := transport.Pipe(transport.LinkConfig{Seed: 1}, transport.LinkConfig{Seed: 2})
	udpP := participant.New(participant.Config{})
	go func() {
		for {
			pkt, err := partConn.Recv()
			if err != nil {
				return
			}
			_ = udpP.HandlePacket(pkt)
		}
	}()
	if _, err := h.AttachPacketConn("udp", hostConn, PacketOptions{}); err != nil {
		t.Fatal(err)
	}

	// Two multicast group members.
	bus := transport.NewBus()
	var mcastPs []*participant.Participant
	for i := 0; i < 2; i++ {
		sub := bus.Subscribe(transport.LinkConfig{Seed: int64(i + 5)})
		mp := participant.New(participant.Config{})
		mcastPs = append(mcastPs, mp)
		go func() {
			for {
				pkt, err := sub.Recv()
				if err != nil {
					return
				}
				_ = mp.HandlePacket(pkt)
			}
		}()
	}
	mcastRemote, err := h.AttachMulticast("mcast", bus)
	if err != nil {
		t.Fatal(err)
	}

	// Kick everyone to full state: UDP PLI; multicast refresh via the
	// out-of-band path.
	pli, err := udpP.BuildPLI()
	if err != nil {
		t.Fatal(err)
	}
	if err := partConn.Send(pli); err != nil {
		t.Fatal(err)
	}
	if err := h.RequestRefresh(mcastRemote); err != nil {
		t.Fatal(err)
	}
	settle()
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	settle()

	w.Fill(region.XYWH(5, 5, 20, 20), blue)
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}

	for i, pp := range append([]*participant.Participant{tcpP, udpP}, mcastPs...) {
		// Poll: stream delivery is asynchronous and slower under -race.
		deadline := time.Now().Add(5 * time.Second)
		for {
			img := pp.WindowImage(w.ID())
			if img != nil && img.RGBAAt(10, 10) == blue {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("participant %d never saw the blue fill", i)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	if h.Participants() != 3 {
		t.Fatalf("participants = %d, want 3 (mcast counts once)", h.Participants())
	}
}

// TestFloorControlGatesHIP covers Appendix A (E15): only the floor
// holder's events are regenerated.
func TestFloorControlGatesHIP(t *testing.T) {
	floor := bfcp.NewFloor(1, nil)
	h, w := newHost(t, Config{Floor: floor})
	defer h.Close()

	aEnd, aPart := streamPair()
	bEnd, bPart := streamPair()
	pa := participant.New(participant.Config{})
	pb := participant.New(participant.Config{})
	pump(t, pa, aPart)
	pump(t, pb, bPart)
	ra, err := h.AttachStream("a", aEnd, StreamOptions{UserID: 10})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := h.AttachStream("b", bEnd, StreamOptions{UserID: 11})
	if err != nil {
		t.Fatal(err)
	}
	settle()

	if err := floor.Request(10); err != nil { // user A holds the floor
		t.Fatal(err)
	}

	click, err := pa.MousePress(w.ID(), 230, 160, 1)
	if err != nil {
		t.Fatal(err)
	}
	fwA := framing.NewWriter(aPart)
	if err := fwA.WriteFrame(click); err != nil {
		t.Fatal(err)
	}
	settle()
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	if h.HIPErrors() != 0 {
		t.Fatalf("holder's event rejected: %d errors", h.HIPErrors())
	}

	// Non-holder B is rejected.
	click2, err := pb.MousePress(w.ID(), 230, 160, 1)
	if err != nil {
		t.Fatal(err)
	}
	fwB := framing.NewWriter(bPart)
	if err := fwB.WriteFrame(click2); err != nil {
		t.Fatal(err)
	}
	settle()
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	if h.HIPErrors() != 1 {
		t.Fatalf("non-holder event should be rejected: %d errors", h.HIPErrors())
	}

	// Keyboard blocked without revocation: holder types, gets rejected.
	floor.SetHIDStatus(bfcp.StateMouseAllowed)
	keys, err := pa.TypeText(w.ID(), "hello", 1200)
	if err != nil {
		t.Fatal(err)
	}
	if err := fwA.WriteFrame(keys[0]); err != nil {
		t.Fatal(err)
	}
	settle()
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	if h.HIPErrors() != 2 {
		t.Fatalf("blocked keyboard should be rejected: %d errors", h.HIPErrors())
	}

	// Closing the holder's connection releases the floor to nobody and
	// dequeues it.
	_ = ra.Close()
	settle()
	if holder, ok := floor.Holder(); ok {
		t.Fatalf("floor still held by %d after disconnect", holder)
	}
	_ = rb.Close()
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing desktop should fail")
	}
	d := display.NewDesktop(10, 10)
	if _, err := New(Config{Desktop: d, MTU: 5}); err == nil {
		t.Error("tiny MTU should fail")
	}
	if _, err := New(Config{Desktop: d, RemotingPT: 0xFF}); err == nil {
		t.Error("8-bit PT should fail")
	}
}
