package ah

import (
	"fmt"

	"appshare/internal/core"
	"appshare/internal/remoting"
	"appshare/internal/rtp"
)

// Relay forwarding (see DESIGN.md "Relay cascade"): the split the
// ROADMAP names between "encode & batch" and "remote set". A tick's
// prepared batch — marshalled and fragmented exactly once in
// prepareBatch — is addressable by the host's stream id, and any number
// of Forwarders (internal/relay nodes, recorders) can subscribe to that
// stream without joining the remote set. Forwarders receive the same
// shared payload bytes the local shards fan out; only per-hop RTP
// re-stamping happens downstream.

// PreparedPayload is one marshalled remoting payload (a whole message
// or one fragment) of a published batch. Payload is shared with every
// other subscriber and the host's own fan-out: receivers MUST treat it
// as read-only. Marker carries the Table 2 marker-bit ruling and Kind
// the message kind for stats.
type PreparedPayload struct {
	Payload []byte
	Marker  bool
	Kind    string
}

// Forwarder receives a stream's prepared batches. Both methods are
// called on the host's Tick goroutine, outside all host locks, in tick
// order; a forwarder that must not block the origin re-fans on its own
// goroutines.
type Forwarder interface {
	// ForwardBatch delivers one tick's prepared payloads for the stream.
	ForwardBatch(streamID uint32, msgs []PreparedPayload) error
	// ForwardRefresh delivers a full-refresh snapshot of the stream —
	// the edge refresh cache's feed. The host pushes one whenever it
	// serves refreshers locally or a forwarder latched a request via
	// RequestStreamRefresh.
	ForwardRefresh(streamID uint32, msgs []PreparedPayload) error
}

// StreamID returns the id the host's prepared batches are published
// under (Config.StreamID).
func (h *Host) StreamID() uint32 { return h.cfg.StreamID }

// AttachForwarder subscribes f to the host's stream. The next Tick's
// batch is the first it receives.
func (h *Host) AttachForwarder(f Forwarder) {
	h.fwdMu.Lock()
	defer h.fwdMu.Unlock()
	h.forwarders = append(h.forwarders, f)
}

// DetachForwarder removes f. A detached forwarder receives no further
// callbacks after the Tick in flight (if any) completes.
func (h *Host) DetachForwarder(f Forwarder) {
	h.fwdMu.Lock()
	defer h.fwdMu.Unlock()
	for i, g := range h.forwarders {
		if g == f {
			h.forwarders = append(h.forwarders[:i], h.forwarders[i+1:]...)
			return
		}
	}
}

// RequestStreamRefresh latches a full-refresh snapshot request for the
// stream: the next Tick captures one (shared with any local refreshers
// it serves that tick) and pushes it to every forwarder. Relays call
// this on a cadence to refill their edge caches — never per viewer
// event, which is how late joiners and PLIs absorbed at the edge stay
// invisible to the origin's encode path. Requests for other stream ids
// are ignored.
func (h *Host) RequestStreamRefresh(streamID uint32) {
	if streamID != h.cfg.StreamID {
		return
	}
	h.fwdMu.Lock()
	h.fwdRefresh = true
	h.fwdMu.Unlock()
}

// ServedRefreshes reports how many full-refresh captures Tick has
// served (local refreshers and forwarder snapshots share one capture
// per tick). Join-time pushes to TCP participants and direct
// RequestRefresh calls are not Tick work and do not count.
func (h *Host) ServedRefreshes() uint64 { return h.servedRefreshes.Load() }

// takeForwardState snapshots the forwarder set and consumes the latched
// refresh request. Called once per Tick.
func (h *Host) takeForwardState() ([]Forwarder, bool) {
	h.fwdMu.Lock()
	defer h.fwdMu.Unlock()
	refresh := h.fwdRefresh
	h.fwdRefresh = false
	if len(h.forwarders) == 0 {
		return nil, refresh
	}
	fwds := make([]Forwarder, len(h.forwarders))
	copy(fwds, h.forwarders)
	return fwds, refresh
}

// exportPrepared adapts the internal prepared batch to the published
// representation. The payload bytes are shared, not copied.
func exportPrepared(prep *preparedBatch) []PreparedPayload {
	out := make([]PreparedPayload, len(prep.msgs))
	for i, m := range prep.msgs {
		out[i] = PreparedPayload{Payload: m.payload, Marker: m.marker, Kind: m.kind}
	}
	return out
}

// forwardBatch publishes one tick's prepared batch to the forwarders.
func (h *Host) forwardBatch(fwds []Forwarder, prep *preparedBatch) error {
	if len(fwds) == 0 || len(prep.msgs) == 0 {
		return nil
	}
	msgs := exportPrepared(prep)
	var firstErr error
	for _, f := range fwds {
		if err := f.ForwardBatch(h.cfg.StreamID, msgs); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// forwardRefresh pushes a refresh snapshot to the forwarders.
func (h *Host) forwardRefresh(fwds []Forwarder, prep *preparedBatch) error {
	if len(fwds) == 0 {
		return nil
	}
	msgs := exportPrepared(prep)
	var firstErr error
	for _, f := range fwds {
		if err := f.ForwardRefresh(h.cfg.StreamID, msgs); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// --- wire-attached relays (RelaySubscribe over a participant link) --------

// maybeRelaySubscribe inspects one incoming packet for the relay
// control handshake: a remoting-PT RTP packet whose payload is a
// RelaySubscribe message. On a match the sending remote flips to
// forward-only — its attachment becomes a stream subscription, served
// through a remoteForwarder that reuses the remote's packetizer, sink
// and retransmission log. Reports whether the packet was consumed.
func (h *Host) maybeRelaySubscribe(r *Remote, pkt []byte) bool {
	var rp rtp.Packet
	if err := rp.Unmarshal(pkt); err != nil {
		return false
	}
	if rp.PayloadType != h.cfg.RemotingPT || len(rp.Payload) < core.HeaderSize {
		return false
	}
	if core.MessageType(rp.Payload[0]) != core.TypeRelaySubscribe {
		return false
	}
	dm, err := remoting.DecodePayload(rp.Payload)
	if err != nil {
		return true // malformed control is consumed, not handed to HIP
	}
	sub, ok := dm.(*remoting.RelaySubscribe)
	if !ok || sub.StreamID != h.cfg.StreamID {
		return true
	}
	fwd := &remoteForwarder{h: h, r: r}
	r.sh.mu.Lock()
	if r.closed {
		r.sh.mu.Unlock()
		return true
	}
	already := r.forwardOnly
	r.forwardOnly = true
	if !already {
		// Ack with the stream's endpoint descriptor before any payload.
		_ = fwd.sendLocked(&remoting.StreamDescriptor{
			StreamID:   h.cfg.StreamID,
			Epoch:      h.streamEpoch(),
			RemotingPT: h.cfg.RemotingPT,
		}, nil)
	}
	r.sh.mu.Unlock()
	if !already {
		h.AttachForwarder(fwd)
	}
	if sub.Flags&remoting.RelayWantRefresh != 0 {
		h.RequestStreamRefresh(sub.StreamID)
	}
	h.record("RelaySubscribe", len(pkt))
	return true
}

// streamEpoch identifies this host instance on the stream. A relay
// that observes the epoch change discards its cache (the origin
// restarted; sequence history is gone).
func (h *Host) streamEpoch() uint32 {
	return h.epoch
}

// remoteForwarder adapts an attached remote into a Forwarder: the
// forwarded payloads ride the remote's own RTP stream (its packetizer
// stamps them, its sink batches them, its retransmission log serves
// NACKs on the relay link), and refresh snapshots are delimited by a
// StreamDescriptor carrying the refresh flag and message count.
type remoteForwarder struct {
	h *Host
	r *Remote
}

// ForwardBatch implements Forwarder.
func (f *remoteForwarder) ForwardBatch(streamID uint32, msgs []PreparedPayload) error {
	return f.send(nil, msgs)
}

// ForwardRefresh implements Forwarder.
func (f *remoteForwarder) ForwardRefresh(streamID uint32, msgs []PreparedPayload) error {
	if len(msgs) > 0xFFFF {
		return fmt.Errorf("ah: refresh snapshot of %d messages exceeds the descriptor count", len(msgs))
	}
	return f.send(&remoting.StreamDescriptor{
		StreamID:   f.h.cfg.StreamID,
		Epoch:      f.h.streamEpoch(),
		RemotingPT: f.h.cfg.RemotingPT,
		Flags:      remoting.DescriptorRefresh,
		Count:      uint16(len(msgs)),
	}, msgs)
}

// send ships an optional descriptor followed by the payloads over the
// remote's stream.
func (f *remoteForwarder) send(desc *remoting.StreamDescriptor, msgs []PreparedPayload) error {
	f.r.sh.mu.Lock()
	defer f.r.sh.mu.Unlock()
	if f.r.closed {
		// The relay link died; drop the subscription. DetachForwarder
		// only takes fwdMu, which is never acquired before a shard lock.
		f.h.DetachForwarder(f)
		return nil
	}
	return f.sendLocked(desc, msgs)
}

// sendLocked marshals and ships under the remote's shard lock.
func (f *remoteForwarder) sendLocked(desc *remoting.StreamDescriptor, msgs []PreparedPayload) error {
	pm := make([]preparedMessage, 0, len(msgs)+1)
	if desc != nil {
		payload, err := desc.Marshal()
		if err != nil {
			return err
		}
		pm = append(pm, preparedMessage{payload: payload, kind: "StreamDescriptor"})
	}
	for _, m := range msgs {
		pm = append(pm, preparedMessage{payload: m.Payload, marker: m.Marker, kind: m.Kind})
	}
	return f.r.sendPrepared(pm)
}
