package ah

import (
	"fmt"
	"image/color"
	"io"
	"sync"
	"testing"
	"time"

	"appshare/internal/display"
	"appshare/internal/region"
	"appshare/internal/stats"
	"appshare/internal/transport"
)

// drain consumes everything written to a stream endpoint so the host
// side never blocks on a full pipe.
func drain(rw io.Reader) {
	buf := make([]byte, 4096)
	for {
		if _, err := rw.Read(buf); err != nil {
			return
		}
	}
}

// TestConcurrentTickAttachDetach drives Host.Tick at full speed while
// other goroutines attach and detach participants and broadcast
// extension messages. Run under -race it pins the parallel encode
// pipeline's locking contract (tickMu → mu → capMu; capture and encode
// run without the host lock).
//
// The test respects the desktop-ownership rule: window pixels are
// mutated only between Ticks on the owner goroutine, and only while no
// TCP attach is in flight — AttachStream and RequestRefresh capture
// pixels on the caller's goroutine (the draft's synchronous TCP join
// flow), so like every capture they must not overlap application paint.
// UDP attach/detach, PLI-latched refreshes, backlog flushes and
// extension broadcasts have no such coupling and churn throughout.
func TestConcurrentTickAttachDetach(t *testing.T) {
	desk := display.NewDesktop(640, 480)
	win := desk.CreateWindow(1, region.XYWH(20, 20, 300, 220))
	host, err := New(Config{Desktop: desk, Stats: stats.NewCollector()})
	if err != nil {
		t.Fatal(err)
	}

	stopPaint := make(chan struct{}) // phase 1 → phase 2 boundary
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Desktop owner: mutate (while allowed) + Tick. Only this
	// goroutine touches the desktop.
	wg.Add(1)
	go func() {
		defer wg.Done()
		colors := []color.RGBA{{R: 255, A: 255}, {G: 255, A: 255}, {B: 255, A: 255}}
		paint := true
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if paint {
				select {
				case <-stopPaint:
					paint = false
				default:
					win.Fill(region.XYWH((i%5)*40, (i%4)*40, 40, 40), colors[i%len(colors)])
				}
			}
			if err := host.Tick(); err != nil {
				return // host closed by test teardown
			}
		}
	}()

	// Datagram churners: attach a UDP participant over a simulated
	// link, let a few ticks pass, drop it. UDP attach pushes no
	// initial state (the participant PLIs instead), so it is safe
	// against concurrent paint by design.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				a, b := transport.Pipe(transport.LinkConfig{}, transport.LinkConfig{})
				go func() {
					for {
						if _, err := b.Recv(); err != nil {
							return
						}
					}
				}()
				r, err := host.AttachPacketConn(fmt.Sprintf("udp-%d-%d", g, i), a, PacketOptions{UserID: uint16(20 + g)})
				if err != nil {
					return
				}
				time.Sleep(time.Millisecond)
				_ = r.Close()
				_ = b.Close()
			}
		}(g)
	}

	// Broadcaster: extension messages race the tick fan-out.
	wg.Add(1)
	go func() {
		defer wg.Done()
		payload := []byte{0x7F, 0x00, 0x00, 0x00, 0xDE, 0xAD, 0xBE, 0xEF}
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = host.BroadcastExtension(payload)
			time.Sleep(200 * time.Microsecond)
		}
	}()

	// Phase 1: paint + tick churn against UDP attach/detach and
	// broadcasts.
	time.Sleep(150 * time.Millisecond)
	close(stopPaint)
	time.Sleep(5 * time.Millisecond) // let the final paint drain

	// Phase 2: TCP churn. Attaching a stream captures the full desktop
	// state on this goroutine, concurrent with the owner's Ticks.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				hostEnd, peerEnd := streamPair()
				go drain(peerEnd)
				r, err := host.AttachStream(fmt.Sprintf("tcp-%d-%d", g, i), hostEnd, StreamOptions{UserID: uint16(10 + g)})
				if err != nil {
					return // host closed
				}
				_ = host.RequestRefresh(r)
				time.Sleep(time.Millisecond)
				_ = r.Close()
				_ = peerEnd.Close()
			}
		}(g)
	}
	time.Sleep(150 * time.Millisecond)

	close(stop)
	wg.Wait()
	if err := host.Close(); err != nil {
		t.Fatal(err)
	}
	if got := host.Participants(); got != 0 {
		t.Fatalf("%d participants survived Close", got)
	}
}

// TestCloseDuringTick pins the closed-host fast path: Close racing an
// in-flight Tick must not panic and must stop deliveries.
func TestCloseDuringTick(t *testing.T) {
	desk := display.NewDesktop(320, 240)
	win := desk.CreateWindow(1, region.XYWH(0, 0, 200, 150))
	host, err := New(Config{Desktop: desk})
	if err != nil {
		t.Fatal(err)
	}
	hostEnd, peerEnd := streamPair()
	go drain(peerEnd)
	if _, err := host.AttachStream("p", hostEnd, StreamOptions{}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			win.Fill(region.XYWH(i%10*10, 0, 10, 10), color.RGBA{R: byte(i), A: 255})
			if err := host.Tick(); err != nil {
				return
			}
		}
	}()
	time.Sleep(5 * time.Millisecond)
	if err := host.Close(); err != nil {
		t.Fatal(err)
	}
	<-done
}
