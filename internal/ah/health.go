package ah

import (
	"fmt"
	"sort"
	"time"

	"appshare/internal/rtcp"
)

// Remote liveness and eviction (see DESIGN.md "Remote liveness &
// eviction"). The draft's Section 7 tells the AH to watch per-participant
// TCP backlog and defer screen data — but deferring forever lets one dead
// or wedged viewer pin retransmit-log and pending-region memory for the
// rest of the session. The health subsystem closes that loop: every Tick
// sweeps the attached remotes against the configured policies, demotes
// congested ones to keyframe-only degraded mode, and finally evicts them
// with a recorded detach reason.

// HealthState is the lifecycle state of an attached remote.
type HealthState int

const (
	// HealthHealthy: the remote keeps up; full incremental updates flow.
	HealthHealthy HealthState = iota
	// HealthDegraded: the remote has dwelled above its backlog limit (or
	// its writer has stalled) past the degrade threshold. Incremental
	// screen detail is dropped instead of accumulated; the remote owes a
	// single full refresh (a "keyframe") once its link drains.
	HealthDegraded
	// HealthEvicted: the remote has been detached by policy; its
	// RemoteHealth snapshot carries the reason.
	HealthEvicted
)

// String implements fmt.Stringer.
func (s HealthState) String() string {
	switch s {
	case HealthHealthy:
		return "healthy"
	case HealthDegraded:
		return "degraded"
	case HealthEvicted:
		return "evicted"
	default:
		return fmt.Sprintf("HealthState(%d)", int(s))
	}
}

// EvictionPolicy selects how the health sweep reacts to sustained
// congestion (backlog dwell, send stalls). Liveness timeouts
// (Config.RemoteTimeout) are an independent opt-in and evict under every
// policy.
type EvictionPolicy int

const (
	// EvictionMonitor (default): track health signals and surface them
	// through RemoteHealth, but never change delivery or detach anyone.
	EvictionMonitor EvictionPolicy = iota
	// EvictionDegrade: demote congested remotes to keyframe-only degraded
	// mode (and promote them back when they drain), but never evict.
	EvictionDegrade
	// EvictionDegradeThenDrop: degrade at half the dwell budget, evict at
	// the full Config.MaxBacklogDwell.
	EvictionDegradeThenDrop
)

// String implements fmt.Stringer.
func (p EvictionPolicy) String() string {
	switch p {
	case EvictionMonitor:
		return "monitor"
	case EvictionDegrade:
		return "degrade"
	case EvictionDegradeThenDrop:
		return "drop"
	default:
		return fmt.Sprintf("EvictionPolicy(%d)", int(p))
	}
}

// ParseEvictionPolicy maps the flag spellings ("monitor", "degrade",
// "drop") to a policy.
func ParseEvictionPolicy(s string) (EvictionPolicy, error) {
	switch s {
	case "", "monitor":
		return EvictionMonitor, nil
	case "degrade":
		return EvictionDegrade, nil
	case "drop", "evict":
		return EvictionDegradeThenDrop, nil
	default:
		return EvictionMonitor, fmt.Errorf("ah: unknown eviction policy %q (monitor|degrade|drop)", s)
	}
}

// RemoteHealth is a point-in-time health snapshot of one remote —
// attached or recently evicted.
type RemoteHealth struct {
	// ID is the identifier the remote was attached with.
	ID string
	// UserID is the remote's BFCP identity.
	UserID uint16
	// State is the current lifecycle state.
	State HealthState
	// Since is when the current state was entered.
	Since time.Time
	// LastHeard is when the last packet of any kind (HIP or RTCP)
	// arrived from the remote; zero if it has never spoken.
	LastHeard time.Time
	// LastRR is when the last RTCP Receiver Report arrived; zero if none.
	LastRR time.Time
	// RTT is the round-trip estimate from the last RR's LSR/DLSR echo
	// (RFC 3550 Section 6.4.1); zero if unknown.
	RTT time.Duration
	// FractionLost is the loss fraction [0,1] the remote reported in its
	// last RR.
	FractionLost float64
	// QueuedBytes is the send backlog at snapshot time (zero for
	// datagram remotes).
	QueuedBytes int
	// BacklogDwell is how long the backlog has continuously sat above
	// the limit (zero when below).
	BacklogDwell time.Duration
	// SendStall is how long the send path has made no drain progress
	// with bytes queued (zero when idle or flowing).
	SendStall time.Duration
	// DeferStreak is the current run of consecutive ticks that deferred
	// screen data; MaxDeferStreak is the worst run observed.
	DeferStreak, MaxDeferStreak int
	// Deferrals is the lifetime count of deferring ticks.
	Deferrals uint64
	// SentPackets and SentOctets count the fresh (non-retransmission)
	// remoting packets shipped to this remote.
	SentPackets, SentOctets uint64
	// DrainedBytes and DiscardedBytes are the send path's drain
	// accounting (stream remotes only): bytes that reached the wire and
	// bytes dropped by teardown or a write error. For a stream remote
	// served no retransmissions, DrainedBytes + DiscardedBytes +
	// QueuedBytes equals SentOctets plus the RFC 4571 frame headers
	// (2 bytes per sent packet) — the counter-consistency invariant the
	// netsim oracles check.
	DrainedBytes, DiscardedBytes int64
	// EvictReason is the detach reason; non-empty once State is
	// HealthEvicted.
	EvictReason string
	// EvictedAt is when the eviction happened (zero while attached).
	EvictedAt time.Time
	// Tier is the current quality-ladder rung (TierFull when the ladder
	// is disabled and the remote is healthy; see ladder.go).
	Tier QualityTier
	// TierSince is when the current tier was entered (zero when the
	// ladder has never moved this remote).
	TierSince time.Time
	// TierTransitions counts ladder moves in either direction;
	// TierFlaps counts demotions that landed inside the flap window of
	// a promotion (each doubled the promote backoff).
	TierTransitions, TierFlaps uint64
}

// evictLogMax bounds the retained history of evicted remotes surfaced
// through RemoteHealth.
const evictLogMax = 64

// RemoteHealth returns health snapshots for every attached remote plus
// the recent evictions (most recent last), sorted attached-first by ID.
// The shard locks are taken one at a time, so a snapshot never stalls
// fan-out on more than one shard.
func (h *Host) RemoteHealth() []RemoteHealth {
	now := h.cfg.Now()
	out := make([]RemoteHealth, 0, h.Participants()+evictLogMax/4)
	for _, s := range h.shards {
		s.mu.Lock()
		for r := range s.remotes {
			out = append(out, r.healthSnapshotLocked(now))
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	h.mu.Lock()
	out = append(out, h.evictLog...)
	h.mu.Unlock()
	return out
}

// Health returns this remote's current health snapshot.
func (r *Remote) Health() RemoteHealth {
	r.sh.mu.Lock()
	defer r.sh.mu.Unlock()
	return r.healthSnapshotLocked(r.host.cfg.Now())
}

// healthSnapshotLocked builds the snapshot. Shard lock held.
func (r *Remote) healthSnapshotLocked(now time.Time) RemoteHealth {
	var dwell time.Duration
	if !r.backlogHighSince.IsZero() {
		dwell = now.Sub(r.backlogHighSince)
	}
	drained, discarded := r.sink.drainStats()
	hs := RemoteHealth{
		ID:              r.id,
		UserID:          r.userID,
		State:           r.health,
		Since:           r.healthSince,
		LastHeard:       r.lastHeard,
		LastRR:          r.lastRRAt,
		RTT:             r.rtt,
		QueuedBytes:     r.sink.queued(),
		BacklogDwell:    dwell,
		SendStall:       r.sink.stalled(),
		DeferStreak:     r.deferStreak,
		MaxDeferStreak:  r.maxDeferStreak,
		Deferrals:       r.deferrals,
		SentPackets:     r.sentPackets,
		SentOctets:      r.sentOctets,
		DrainedBytes:    drained,
		DiscardedBytes:  discarded,
		EvictReason:     r.evictReason,
		Tier:            r.effectiveTierLocked(),
		TierSince:       r.tierSince,
		TierTransitions: r.tierTransitions,
		TierFlaps:       r.tierFlaps,
	}
	if r.lastRR.Valid {
		hs.FractionLost = float64(r.lastRR.FractionLost) / 256
	}
	return hs
}

// noteHeardLocked stamps the arrival of any packet from the remote.
// Shard lock held.
func (r *Remote) noteHeardLocked(now time.Time) { r.lastHeard = now }

// noteRTTLocked derives a round-trip estimate from an RR's LSR/DLSR echo
// (RFC 3550 Section 6.4.1): RTT = now - LSR - DLSR in 1/65536-second
// units of the middle-32 NTP timestamp. Shard lock held.
func (r *Remote) noteRTTLocked(rep rtcp.ReceptionReport, now time.Time) {
	if rep.LastSR == 0 {
		return
	}
	elapsed := rtcp.MiddleNTP(rtcp.NTPTime(now)) - rep.LastSR - rep.DelaySinceLastSR
	if int32(elapsed) < 0 {
		return // clock skew or a stale echo; keep the previous estimate
	}
	rtt := time.Duration(uint64(elapsed) * uint64(time.Second) >> 16)
	if rtt < time.Minute {
		r.rtt = rtt
	}
}

// evicted pairs a detached remote with the snapshot explaining why, for
// the cleanup work done outside the host lock.
type evicted struct {
	r    *Remote
	snap RemoteHealth
}

// sweepHealth runs the per-Tick health pass (at tick start, so the
// backlog sample reflects the whole previous interval): it maintains each
// remote's backlog-dwell clock, applies the degrade policy, and selects
// remotes for eviction. The sweep walks the shards one at a time under
// each shard's lock; detached remotes are removed from their shard map
// immediately (so no further fan-out reaches them) and returned for
// transport teardown outside all locks. The eviction log is appended
// under h.mu afterwards (lock order forbids taking it under a shard
// lock's critical section — and nothing requires it there).
func (h *Host) sweepHealth(now time.Time) []evicted {
	var out []evicted
	for _, s := range h.shards {
		s.mu.Lock()
		for r := range s.remotes {
			// Dwell clock: starts when the sink first reports backlog above
			// limit and clears as soon as it drops back under.
			if r.sink.backlogged(0) {
				if r.backlogHighSince.IsZero() {
					r.backlogHighSince = now
				}
			} else {
				r.backlogHighSince = time.Time{}
			}

			if reason := h.evictReasonLocked(r, now); reason != "" {
				r.health = HealthEvicted
				r.healthSince = now
				r.evictReason = reason
				r.closed = true // the sweep owns the sink teardown
				delete(s.remotes, r)
				s.size.Add(-1)
				h.nRemotes.Add(-1)
				snap := r.healthSnapshotLocked(now)
				snap.EvictedAt = now
				h.record("HealthEvict", snap.QueuedBytes)
				out = append(out, evicted{r: r, snap: snap})
				continue
			}

			if h.cfg.Ladder != nil {
				// The quality ladder replaces the binary degrade check with
				// its graded controller (see ladder.go).
				h.ladderSweepLocked(r, now)
				continue
			}
			if r.health == HealthHealthy && h.shouldDegradeLocked(r, now) {
				r.health = HealthDegraded
				r.healthSince = now
				h.record("HealthDegrade", r.sink.queued())
			}
		}
		s.mu.Unlock()
	}
	if len(out) > 0 {
		h.mu.Lock()
		for _, ev := range out {
			h.evictLog = append(h.evictLog, ev.snap)
		}
		if len(h.evictLog) > evictLogMax {
			h.evictLog = h.evictLog[len(h.evictLog)-evictLogMax:]
		}
		h.mu.Unlock()
	}
	return out
}

// shouldDegradeLocked reports whether a healthy remote has exhausted the
// degrade budget: half of Config.MaxBacklogDwell spent continuously above
// the backlog limit, or an equally long writer stall. Shard lock held.
func (h *Host) shouldDegradeLocked(r *Remote, now time.Time) bool {
	if h.cfg.EvictionPolicy == EvictionMonitor || h.cfg.MaxBacklogDwell <= 0 {
		return false
	}
	budget := h.cfg.MaxBacklogDwell / 2
	if !r.backlogHighSince.IsZero() && now.Sub(r.backlogHighSince) >= budget {
		return true
	}
	return r.sink.stalled() >= budget
}

// evictReasonLocked returns a non-empty detach reason when the remote
// must be evicted now: silence past Config.RemoteTimeout (any policy), or
// congestion past Config.MaxBacklogDwell under EvictionDegradeThenDrop.
// Shard lock held.
func (h *Host) evictReasonLocked(r *Remote, now time.Time) string {
	if h.cfg.RemoteTimeout > 0 {
		heard := r.lastHeard
		if heard.IsZero() {
			heard = r.attachedAt
		}
		if silent := now.Sub(heard); silent >= h.cfg.RemoteTimeout {
			return fmt.Sprintf("liveness timeout: nothing heard for %v (limit %v)",
				silent.Round(time.Millisecond), h.cfg.RemoteTimeout)
		}
	}
	if h.cfg.EvictionPolicy != EvictionDegradeThenDrop || h.cfg.MaxBacklogDwell <= 0 {
		return ""
	}
	if !r.backlogHighSince.IsZero() {
		if dwell := now.Sub(r.backlogHighSince); dwell >= h.cfg.MaxBacklogDwell {
			return fmt.Sprintf("backlog dwell: %d bytes above limit for %v (limit %v)",
				r.sink.queued(), dwell.Round(time.Millisecond), h.cfg.MaxBacklogDwell)
		}
	}
	if stall := r.sink.stalled(); stall >= h.cfg.MaxBacklogDwell {
		return fmt.Sprintf("send stall: no drain progress for %v (limit %v)",
			stall.Round(time.Millisecond), h.cfg.MaxBacklogDwell)
	}
	return ""
}

// recoverLocked promotes a degraded remote back to healthy once its link
// has drained, and latches the full-refresh "keyframe" it is owed (served
// by the same Tick's refresh pass). Shard lock held.
func (h *Host) recoverLocked(r *Remote, now time.Time) {
	r.health = HealthHealthy
	r.healthSince = now
	r.needResync = false
	r.refreshRequested = true
	h.record("HealthRecover", 0)
}

// finishEvictions tears down transports for remotes the sweep detached:
// the sink is closed (unblocking any wedged writer), the BFCP floor drops
// the user, and the eviction callback fires. Runs WITHOUT the host lock —
// sink teardown may block on dead transports and callbacks may call back
// into the Host.
func (h *Host) finishEvictions(evs []evicted) {
	for _, ev := range evs {
		_ = ev.r.sink.close()
		if h.cfg.Floor != nil {
			h.cfg.Floor.Drop(ev.r.userID)
		}
		if h.cfg.OnEvict != nil {
			h.cfg.OnEvict(ev.snap)
		}
	}
}
