package ah

import (
	"bytes"
	"testing"

	"appshare/internal/display"
	"appshare/internal/participant"
	"appshare/internal/region"
	"appshare/internal/transport"
	"appshare/internal/workload"
)

// TestTwoWindowChurnConverges reproduces the soak recipe: overlapping
// windows, typing + scrolling + video, periodic window relocation — on a
// lossless link with per-tick convergence checks.
func TestTwoWindowChurnConverges(t *testing.T) {
	d := display.NewDesktop(1280, 1024)
	w1 := d.CreateWindow(1, region.XYWH(60, 50, 500, 380))
	w2 := d.CreateWindow(2, region.XYWH(420, 300, 420, 320))
	h, err := New(Config{Desktop: d})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	hostConn, partConn := transport.Pipe(transport.LinkConfig{Seed: 41}, transport.LinkConfig{Seed: 51})
	p := participant.New(participant.Config{})
	pkts := make(chan []byte, 1<<15)
	go func() {
		for {
			pkt, err := partConn.Recv()
			if err != nil {
				return
			}
			pkts <- pkt
		}
	}()
	drain := func() {
		settle()
		for {
			select {
			case pkt := <-pkts:
				_ = p.HandlePacket(pkt)
			default:
				return
			}
		}
	}
	if _, err := h.AttachPacketConn("x", hostConn, PacketOptions{}); err != nil {
		t.Fatal(err)
	}
	pli, _ := p.BuildPLI()
	partConn.Send(pli)
	drain()

	ty := workload.NewTyping(w1, 48, 9)
	sc := workload.NewScrolling(w2, 1, 10)
	vid := workload.NewVideoRegion(w1, region.XYWH(300, 250, 120, 90), 11)
	for i := 0; i < 400; i++ {
		switch i % 3 {
		case 0:
			ty.Step()
		case 1:
			sc.Step()
		case 2:
			vid.Step()
		}
		if i%50 == 25 {
			_ = d.MoveWindow(w2.ID(), 400+(i%100), 280+(i%60))
		}
		if err := h.Tick(); err != nil {
			t.Fatal(err)
		}
		drain()
		for wi, win := range map[string]*display.Window{"w1": w1, "w2": w2} {
			want := win.Snapshot()
			got := p.WindowImage(win.ID())
			if got == nil || !bytes.Equal(want.Pix, got.Pix) {
				t.Fatalf("tick %d: %s diverged", i, wi)
			}
		}
	}
}
