// Package ah implements the Application Host of
// draft-boyaci-avt-app-sharing-00: the endpoint that runs the shared
// application (here: the virtual desktop), distributes screen updates to
// participants over the remoting protocol, and regenerates the human
// interface events participants send over HIP.
//
// One Host serves any mix of participants simultaneously — TCP streams
// with backlog-aware coalescing (Section 7), rate-controlled UDP with
// optional retransmissions (Sections 4.3, 5.3.2) and multicast groups
// (Section 4.2) — exactly the deployment the draft describes: "The AH can
// share an application to TCP participants, UDP participants, and several
// multicast addresses in the same sharing session."
package ah

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"appshare/internal/bfcp"
	"appshare/internal/capture"
	"appshare/internal/display"
	"appshare/internal/region"
	"appshare/internal/remoting"
	"appshare/internal/stats"
)

// Default configuration values.
const (
	DefaultMTU          = 1200
	DefaultRemotingPT   = 99  // matches the draft's SDP example
	DefaultHIPPT        = 100 // matches the draft's SDP example
	DefaultBacklogLimit = 16 << 10
	DefaultRetransLog   = 1024
)

// Config configures a Host.
type Config struct {
	// Desktop is the shared virtual desktop. Required.
	Desktop *display.Desktop
	// Capture configures the capture pipeline.
	Capture capture.Options
	// MTU bounds each RTP payload (remoting fragmentation threshold).
	MTU int
	// RemotingPT and HIPPT are the negotiated RTP payload types of the
	// two streams (defaults 99 and 100, as in the draft's SDP example).
	RemotingPT, HIPPT uint8
	// Retransmissions enables the UDP retransmission log announced via
	// the mandatory "retransmissions" media type parameter.
	Retransmissions bool
	// RetransLog is the number of recent packets retained per UDP
	// participant for NACK service.
	RetransLog int
	// BacklogLimit is the per-stream send backlog (bytes) above which
	// screen data is deferred and re-captured later (Section 7).
	BacklogLimit int
	// Floor, when non-nil, moderates HIP events per Appendix A.
	Floor *bfcp.Floor
	// Stats, when non-nil, receives per-message-type traffic counts.
	Stats *stats.Collector
	// Now supplies time (defaults to time.Now); injectable for tests.
	Now func() time.Time
	// Entropy, when non-nil, supplies the random identifiers the RTP
	// layer needs per RFC 3550 — SSRCs, initial sequence numbers and
	// timestamp origins. nil draws them from crypto randomness. A seeded
	// source (internal/netsim injects one) makes the host's wire bytes
	// reproducible run to run. Calls are serialized by the attach paths;
	// a source shared across goroutines must be safe for concurrent use.
	Entropy func() uint32
	// CNAME identifies this host in RTCP SDES (default "ah@appshare").
	CNAME string
	// MinRefreshInterval rate-limits PLI service per participant: PLIs
	// arriving within the window of the previous full refresh are
	// absorbed (the refresh already in flight answers them). Zero means
	// 500ms; negative disables limiting.
	MinRefreshInterval time.Duration
	// AutoHIDStatus, with a Floor configured, blocks HID events while
	// the focused window is not shared and unblocks when it is —
	// Appendix A: "the AH MAY temporarily block HID events if the
	// shared application loses the focus".
	AutoHIDStatus bool
	// RemoteTimeout, when positive, evicts a remote from which nothing
	// (HIP or RTCP) has been heard for this long. It is an independent
	// liveness opt-in and applies under every EvictionPolicy. Zero
	// disables liveness eviction.
	RemoteTimeout time.Duration
	// MaxBacklogDwell, when positive, is the congestion budget of the
	// health sweep: a remote continuously above its backlog limit (or
	// with a stalled writer) is demoted to keyframe-only degraded mode
	// at half this budget and, under EvictionDegradeThenDrop, evicted at
	// the full budget. Zero disables congestion handling.
	MaxBacklogDwell time.Duration
	// EvictionPolicy selects how the health sweep reacts to sustained
	// congestion (default EvictionMonitor: observe only).
	EvictionPolicy EvictionPolicy
	// OnEvict, when non-nil, is called (outside host locks) with the
	// final health snapshot of every remote the sweep evicts.
	OnEvict func(RemoteHealth)
	// Ladder, when non-nil, enables the congestion-adaptive quality
	// ladder (see ladder.go): the health sweep walks each remote through
	// ordered delivery tiers instead of the binary degrade check.
	// Zero-valued fields take the ladder defaults. The config is copied
	// at New; later mutation has no effect.
	Ladder *LadderConfig
	// TileStore, when non-nil, enables the persistent tile store (see
	// tilestore.go): lossless updates are tiled and content-hashed at
	// capture, and remotes that negotiated the capability receive
	// TileReference messages for regions whose tiles they already hold.
	// Zero-valued fields take the tile-store defaults; the config is
	// copied at New.
	TileStore *TileStoreConfig
	// SendShards is the number of fan-out shards the remote set is split
	// across (see shard.go): each shard has its own lock and persistent
	// sender goroutine, so deliveries to different shards proceed in
	// parallel. Zero means GOMAXPROCS at New time; 1 disables the sender
	// goroutines entirely (fan-out runs inline on the Tick goroutine —
	// the pre-sharding behavior); negative values are treated as 1.
	SendShards int
	// StreamID names this host's remoting stream for the relay tier (see
	// DESIGN.md "Relay cascade"): prepared batches published to attached
	// Forwarders are addressed by this id rather than by host pointer, so
	// a relay subscribes to a stream, not a process. Zero is a valid id
	// (single-stream deployments).
	StreamID uint32
	// DebugDisableEvictGates disables the no-traffic-after-evict gates:
	// the refresh-phase re-check (a refresher evicted between the deliver
	// and refresh phases must not be stamped packets) and the feedback
	// closed gate (a NACK/PLI racing finishEvictions must not ship
	// retransmissions or latch refreshes). It exists ONLY so the netsim
	// mutation checks can re-plant the eviction race and prove the
	// eviction oracle catches it; production configs leave it false.
	DebugDisableEvictGates bool
}

// maxSendShards caps Config.SendShards: past the core count extra shards
// only add scheduling overhead.
const maxSendShards = 64

// ErrHostClosed is returned by operations on a closed Host.
var ErrHostClosed = errors.New("ah: host closed")

// Host is an application host serving one sharing session.
//
// Lock order (see DESIGN.md "Sharded send path"): tickMu → mu →
// shard.mu → capMu. Tick holds tickMu end to end; mu guards host-wide
// queue state (HIP queue, eviction log, closed flag) and is NOT held
// while the tick's batch is captured and encoded; each shard's lock
// guards the per-remote state of the remotes assigned to it; capMu
// serializes every capture-pipeline use (Tick, FullRefresh,
// EncodeRegion) because the pipeline and the desktop journals are
// single-reader structures. No path holds two shard locks at once.
type Host struct {
	mu       sync.Mutex
	cfg      Config
	pipeline *capture.Pipeline
	// shards partitions the remote set (see shard.go); immutable after
	// New. nRemotes mirrors the total attached count so Participants()
	// is a lock-free read; nextShard drives round-robin assignment.
	shards    []*shard
	nRemotes  atomic.Int64
	nextShard atomic.Uint64
	// senderStop, closed at Close, terminates the per-shard sender
	// goroutines and flips fan-out publishes to inline execution.
	senderStop chan struct{}
	// hipErrors counts rejected HIP events (illegitimate coordinates,
	// floor violations, malformed packets, queue overflow).
	hipErrors uint64
	// hipQueue holds participant input awaiting the next Tick.
	hipQueue []queuedEvent
	// evictLog retains the last evictLogMax eviction snapshots for
	// RemoteHealth (most recent last).
	evictLog []RemoteHealth
	closed   bool

	// fwdMu guards the forwarder set and the latched refresh request
	// (see forward.go). It is independent of the shard locks — a
	// forwarder is a stream subscriber, not a remote — and is never held
	// across a forwarder callback.
	fwdMu      sync.Mutex
	forwarders []Forwarder
	fwdRefresh bool
	// epoch identifies this host instance on its stream (StreamDescriptor
	// Epoch field); immutable after New.
	epoch uint32
	// servedRefreshes counts the full-refresh captures Tick served
	// (local PLI refreshers and forwarder snapshot requests share one
	// capture per tick). The relay-tree oracle reconciles it against the
	// scheduled cadence to prove edge-absorbed PLIs and late joins
	// trigger zero origin refresh encodes.
	servedRefreshes atomic.Uint64

	// tickMu serializes whole Tick calls against each other so two
	// concurrent Ticks cannot interleave capture and fan-out (which
	// would reorder updates on the wire).
	tickMu sync.Mutex
	// capMu serializes capture-pipeline access; acquired after a shard
	// lock on paths that hold both.
	capMu sync.Mutex
	// lastEnc is the encode-metric snapshot already flushed to
	// cfg.Stats; guarded by mu.
	lastEnc capture.EncodeMetrics
}

// New returns a Host sharing the configured desktop.
func New(cfg Config) (*Host, error) {
	if cfg.Desktop == nil {
		return nil, errors.New("ah: Config.Desktop is required")
	}
	if cfg.MTU == 0 {
		cfg.MTU = DefaultMTU
	}
	if cfg.MTU < 64 {
		return nil, fmt.Errorf("ah: MTU %d too small", cfg.MTU)
	}
	if cfg.RemotingPT == 0 {
		cfg.RemotingPT = DefaultRemotingPT
	}
	if cfg.HIPPT == 0 {
		cfg.HIPPT = DefaultHIPPT
	}
	if cfg.RemotingPT > 0x7F || cfg.HIPPT > 0x7F {
		return nil, errors.New("ah: payload types exceed 7 bits")
	}
	if cfg.RetransLog == 0 {
		cfg.RetransLog = DefaultRetransLog
	}
	if cfg.BacklogLimit == 0 {
		cfg.BacklogLimit = DefaultBacklogLimit
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.CNAME == "" {
		cfg.CNAME = "ah@appshare"
	}
	if cfg.MinRefreshInterval == 0 {
		cfg.MinRefreshInterval = 500 * time.Millisecond
	}
	if cfg.AutoHIDStatus && cfg.Floor == nil {
		return nil, errors.New("ah: AutoHIDStatus requires a Floor")
	}
	if cfg.Ladder != nil {
		lc := cfg.Ladder.withDefaults()
		cfg.Ladder = &lc
	}
	if cfg.TileStore != nil {
		tc := cfg.TileStore.withDefaults()
		cfg.TileStore = &tc
		// The capture pipeline computes the tile hashes; its tile size
		// must be the store's.
		cfg.Capture.TileSize = tc.TileSize
	}
	if cfg.SendShards == 0 {
		cfg.SendShards = runtime.GOMAXPROCS(0)
	}
	if cfg.SendShards < 1 {
		cfg.SendShards = 1
	}
	if cfg.SendShards > maxSendShards {
		cfg.SendShards = maxSendShards
	}
	pipeline, err := capture.New(cfg.Desktop, cfg.Capture)
	if err != nil {
		return nil, err
	}
	h := &Host{
		cfg:        cfg,
		pipeline:   pipeline,
		senderStop: make(chan struct{}),
		epoch:      uint32(cfg.Now().Unix()),
	}
	h.shards = make([]*shard, cfg.SendShards)
	for i := range h.shards {
		s := &shard{
			remotes: make(map[*Remote]struct{}),
			work:    make(chan *shardWork),
		}
		s.pw = &shardWork{s: s}
		h.shards[i] = s
		if cfg.SendShards > 1 {
			go h.sender(s)
		}
	}
	return h, nil
}

// Desktop returns the shared desktop.
func (h *Host) Desktop() *display.Desktop { return h.cfg.Desktop }

// Floor returns the configured BFCP floor, if any.
func (h *Host) Floor() *bfcp.Floor { return h.cfg.Floor }

// HIPErrors returns the count of rejected HIP events.
func (h *Host) HIPErrors() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.hipErrors
}

// Participants returns the number of attached remotes. It is a
// lock-free read of a counter maintained on attach/detach/eviction, so
// monitoring paths never contend with fan-out.
func (h *Host) Participants() int {
	return int(h.nRemotes.Load())
}

// Tick captures one round of desktop changes and fans the resulting
// messages out to every participant. Call it at the desired frame rate.
//
// The expensive middle — compressing the tick's dirty rectangles across
// the encode worker pool — runs without any participant lock, so
// participants can attach, detach and deliver feedback while the
// encoders work. The batch is marshalled once and the shared payloads
// fan out through the per-shard sender goroutines (see shard.go);
// likewise all PLIs latched since the last tick are answered from a
// single full-refresh encode, re-stamped per requester, so a PLI storm
// from N late joiners costs ~one encode per window, not N.
func (h *Host) Tick() error {
	h.tickMu.Lock()
	defer h.tickMu.Unlock()

	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return ErrHostClosed
	}
	h.updateHIDStatusLocked()
	// Drain queued participant input first: the events' effects land in
	// this tick's capture, exactly as OS-queued input precedes a frame.
	h.drainHIPLocked()
	h.mu.Unlock()
	// Health sweep runs at tick START so it samples the backlog state
	// left over from the whole previous inter-tick interval: a healthy
	// viewer has drained by now, a stalled one still holds bytes.
	// Sweeping after delivery would instead sample the just-enqueued
	// frame and see every viewer as momentarily backlogged.
	evs := h.sweepHealth(h.cfg.Now())
	// Transport teardown and eviction callbacks run unlocked: closing a
	// wedged sink may block until its peer socket is torn down.
	h.finishEvictions(evs)

	h.capMu.Lock()
	batch, err := h.pipeline.Tick()
	h.capMu.Unlock()
	if err != nil {
		return err
	}
	prep, err := prepareBatch(batch, h.cfg.MTU, h.cfg.TileStore)
	if err != nil {
		return err
	}

	h.mu.Lock()
	closed := h.closed
	h.mu.Unlock()
	if closed {
		return ErrHostClosed
	}
	firstErr, refreshers := h.fanout(phaseDeliver, batch, prep)
	// Publish the tick's prepared payloads to the relay tier (see
	// forward.go): same marshalled bytes the local fan-out shared, now
	// addressed by stream id instead of host pointer.
	fwds, fwdRefresh := h.takeForwardState()
	if len(fwds) > 0 {
		if err := h.forwardBatch(fwds, prep); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if refreshers || fwdRefresh {
		// One full-refresh capture answers every shard's refreshers AND
		// every forwarder's latched snapshot request: the snapshot is
		// encoded once (usually straight from the payload cache) and each
		// shard re-stamps the shared messages per requester.
		if err := h.serveRefreshers(fwds); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	h.mu.Lock()
	h.recordEncodeMetricsLocked()
	h.mu.Unlock()
	return firstErr
}

// serveRefreshers captures and prepares ONE full refresh on the Tick
// goroutine (outside all shard locks), fans it to the refreshers the
// deliver phase collected and pushes the same snapshot to the attached
// forwarders (refilling every edge refresh cache at once).
func (h *Host) serveRefreshers(fwds []Forwarder) error {
	b, err := h.captureFullRefresh()
	if err != nil {
		return err
	}
	// The refresh ships pixels (tileCompose never substitutes references
	// on refresh paths), but the prepared tiles still matter: they teach
	// each refresher's seen-set, healing desynced dictionaries.
	prep, err := prepareBatch(b, h.cfg.MTU, h.cfg.TileStore)
	if err != nil {
		return err
	}
	h.servedRefreshes.Add(1)
	err, _ = h.fanout(phaseRefresh, nil, prep)
	if ferr := h.forwardRefresh(fwds, prep); ferr != nil && err == nil {
		err = ferr
	}
	return err
}

// captureFullRefresh snapshots the full participant state. Serialized by
// capMu alone; callers may additionally hold a shard lock (order
// shard.mu → capMu).
func (h *Host) captureFullRefresh() (*capture.Batch, error) {
	h.capMu.Lock()
	defer h.capMu.Unlock()
	return h.pipeline.FullRefresh()
}

// encodeRegion re-captures one deferred region under the capture lock.
func (h *Host) encodeRegion(rect region.Rect) ([]capture.Update, error) {
	h.capMu.Lock()
	defer h.capMu.Unlock()
	return h.pipeline.EncodeRegion(rect)
}

// encodeRegionDegraded re-captures one deferred region pixelated at the
// given block size — the TierScaled encode variant.
func (h *Host) encodeRegionDegraded(rect region.Rect, block int) ([]capture.Update, error) {
	h.capMu.Lock()
	defer h.capMu.Unlock()
	return h.pipeline.EncodeRegionDegraded(rect, block)
}

// capturePointer builds a full MousePointerInfo under the capture lock.
func (h *Host) capturePointer() (*remoting.MousePointerInfo, error) {
	h.capMu.Lock()
	defer h.capMu.Unlock()
	return h.pipeline.FullRefreshPointer()
}

// EncodeMetrics returns the capture pipeline's cumulative encode-layer
// counters (payload-cache effectiveness, worker-pool utilisation).
func (h *Host) EncodeMetrics() capture.EncodeMetrics {
	return h.pipeline.Metrics()
}

// recordEncodeMetricsLocked flushes the delta of the encode counters to
// the stats collector, under the kinds EncodeCacheHit / EncodeCacheMiss
// / EncodeCacheEvict / EncodeParallel / EncodeSerial. Host lock held.
func (h *Host) recordEncodeMetricsLocked() {
	if h.cfg.Stats == nil {
		return
	}
	m, prev := h.pipeline.Metrics(), h.lastEnc
	h.lastEnc = m
	h.cfg.Stats.RecordN("EncodeCacheHit", m.Cache.Hits-prev.Cache.Hits, m.Cache.HitBytes-prev.Cache.HitBytes)
	h.cfg.Stats.RecordN("EncodeCacheMiss", m.Cache.Misses-prev.Cache.Misses, m.Cache.MissBytes-prev.Cache.MissBytes)
	h.cfg.Stats.RecordN("EncodeCacheEvict", m.Cache.Evictions-prev.Cache.Evictions, 0)
	h.cfg.Stats.RecordN("EncodeParallel", m.ParallelJobs-prev.ParallelJobs, 0)
	h.cfg.Stats.RecordN("EncodeSerial", m.SerialJobs-prev.SerialJobs, 0)
}

// Run ticks the host at the given interval until stop is closed.
func (h *Host) Run(interval time.Duration, stop <-chan struct{}) error {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return nil
		case <-ticker.C:
			if err := h.Tick(); err != nil {
				return err
			}
		}
	}
}

// Close detaches all participants and stops the shard senders. Like
// every teardown path it snapshots membership under the locks and closes
// transports outside them (closing a wedged sink may block); a Tick
// racing this sees either ErrHostClosed or send errors from the closed
// sinks — never a hung barrier, because closing senderStop flips fan-out
// publishes to inline execution.
func (h *Host) Close() error {
	h.mu.Lock()
	already := h.closed
	h.closed = true
	h.mu.Unlock()
	if !already {
		close(h.senderStop)
	}
	var remotes []*Remote
	for _, s := range h.shards {
		s.mu.Lock()
		for r := range s.remotes {
			remotes = append(remotes, r)
		}
		s.mu.Unlock()
	}
	for _, r := range remotes {
		_ = r.Close()
	}
	return nil
}

// BroadcastExtension ships a raw remoting-stream payload (an extension
// message registered per Section 9 — common header plus body) to every
// participant. The payload must fit one RTP packet; fragmentation is
// defined only for RegionUpdate and MousePointerInfo.
//
// Invariant shared with Tick's fan-out (see DESIGN.md "Sharded send
// path"): stamping a remote's next sequence number and handing the
// packet to its sink happen atomically under the owning shard's lock —
// releasing the lock between the two would let a concurrent sender
// reorder that remote's stream. Broadcast therefore walks the shards
// one at a time, holding each shard's lock across its remotes' sends,
// exactly the pattern runShardWork uses; only teardown paths (Close,
// finishEvictions) snapshot-then-act outside the locks, because they
// need no ordering and must not block a lock on a dead transport.
func (h *Host) BroadcastExtension(payload []byte) error {
	if len(payload) < 4 {
		return errors.New("ah: extension payload shorter than the common header")
	}
	if len(payload) > h.cfg.MTU {
		return fmt.Errorf("ah: extension payload %d exceeds MTU %d", len(payload), h.cfg.MTU)
	}
	now := h.cfg.Now()
	var firstErr error
	for _, s := range h.shards {
		s.mu.Lock()
		for r := range s.remotes {
			pkt := r.pz.Packetize(payload, false, now)
			raw, err := pkt.Marshal()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			if err := r.shipAndLog(raw, "Extension"); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		s.mu.Unlock()
	}
	return firstErr
}

// updateHIDStatusLocked applies the Appendix A focus rule: HIDs are
// blocked while the focused window is outside the shared set.
func (h *Host) updateHIDStatusLocked() {
	if !h.cfg.AutoHIDStatus {
		return
	}
	focus := h.cfg.Desktop.Focus()
	want := bfcp.StateNotAllowed
	if focus != nil && focus.Shared() {
		want = bfcp.StateAllAllowed
	}
	if h.cfg.Floor.HIDStatus() != want {
		h.cfg.Floor.SetHIDStatus(want)
	}
}

// record logs a sent message to the stats collector.
func (h *Host) record(kind string, n int) {
	if h.cfg.Stats != nil {
		h.cfg.Stats.Record(kind, n)
	}
}

// recordN logs a run of same-kind messages in one collector call, so the
// parallel shard senders hit the collector's mutex a few times per
// batch instead of once per packet.
func (h *Host) recordN(kind string, msgs, bytes uint64) {
	if h.cfg.Stats != nil {
		h.cfg.Stats.RecordN(kind, msgs, bytes)
	}
}

func (h *Host) addRemote(r *Remote) error { return h.insertRemote(r, false) }

// addRemoteUnique is addRemote plus an ID-uniqueness check, for the
// unicast attach paths where the ID names one viewer (ServeTCP uses the
// peer address): a second attach under a live ID is a caller bug that
// must fail cleanly instead of shadowing the first in FindRemote.
func (h *Host) addRemoteUnique(r *Remote) error { return h.insertRemote(r, true) }

// insertRemote attaches r to its assigned shard. h.mu serializes whole
// attaches against each other (and against Close), so the uniqueness
// scan across shards cannot race a concurrent same-ID attach; the shard
// locks are taken one at a time under it (lock order mu → shard.mu).
func (h *Host) insertRemote(r *Remote, unique bool) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return ErrHostClosed
	}
	if unique {
		for _, s := range h.shards {
			s.mu.Lock()
			for o := range s.remotes {
				if o.id == r.id {
					s.mu.Unlock()
					return fmt.Errorf("ah: remote %q already attached", r.id)
				}
			}
			s.mu.Unlock()
		}
	}
	now := h.cfg.Now()
	s := r.sh
	s.mu.Lock()
	r.attachedAt = now
	r.healthSince = now
	r.tierSince = now
	if h.cfg.Ladder != nil {
		r.promoteWait = h.cfg.Ladder.PromoteAfter
	}
	s.remotes[r] = struct{}{}
	s.size.Add(1)
	s.mu.Unlock()
	h.nRemotes.Add(1)
	return nil
}

func (h *Host) dropRemote(r *Remote) {
	s := r.sh
	s.mu.Lock()
	if _, ok := s.remotes[r]; ok {
		delete(s.remotes, r)
		s.size.Add(-1)
		h.nRemotes.Add(-1)
	}
	s.mu.Unlock()
	if h.cfg.Floor != nil {
		h.cfg.Floor.Drop(r.userID)
	}
}
