package ah

import (
	"bytes"
	"fmt"
	"image/color"
	"testing"

	"appshare/internal/display"
	"appshare/internal/participant"
	"appshare/internal/region"
	"appshare/internal/transport"
)

var (
	green  = color.RGBA{0, 0xFF, 0, 0xFF}
	yellow = color.RGBA{0xFF, 0xFF, 0, 0xFF}
)

// newTileHost builds a host with the tile store enabled and one 64×64
// shared window — an exact 2×2 grid of default-size tiles, so a
// whole-window fill is one update whose tiles all hash identically
// (one distinct dictionary key per fill color).
func newTileHost(t *testing.T, dictCap int) (*Host, *display.Window) {
	t.Helper()
	d := display.NewDesktop(200, 150)
	w := d.CreateWindow(1, region.XYWH(20, 10, 64, 64))
	h, err := New(Config{
		Desktop:            d,
		MinRefreshInterval: -1, // tests drive PLIs explicitly
		TileStore:          &TileStoreConfig{DictCapacity: dictCap},
	})
	if err != nil {
		t.Fatal(err)
	}
	return h, w
}

type tileViewer struct {
	p    *participant.Participant
	conn transport.PacketConn // participant end; Send carries feedback up
	rem  *Remote
}

// attachTileViewer connects a packet viewer over a lossless pipe, sends
// its initial PLI and ticks the join refresh through.
func attachTileViewer(t *testing.T, h *Host, name string, tiled bool, dictCap int) *tileViewer {
	t.Helper()
	hostConn, partConn := transport.Pipe(transport.LinkConfig{}, transport.LinkConfig{})
	p := participant.New(participant.Config{TileStore: tiled, TileDictCapacity: dictCap})
	go func() {
		for {
			pkt, err := partConn.Recv()
			if err != nil {
				return
			}
			_ = p.HandlePacket(pkt)
		}
	}()
	rem, err := h.AttachPacketConn(name, hostConn, PacketOptions{TileStore: tiled})
	if err != nil {
		t.Fatal(err)
	}
	v := &tileViewer{p: p, conn: partConn, rem: rem}
	v.sendPLI(t)
	settle()
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	settle()
	return v
}

func (v *tileViewer) sendPLI(t *testing.T) {
	t.Helper()
	pli, err := v.p.BuildPLI()
	if err != nil {
		t.Fatal(err)
	}
	if err := v.conn.Send(pli); err != nil {
		t.Fatal(err)
	}
}

// requireConverged compares the participant's window image byte-for-byte
// with the host's buffer.
func requireConverged(t *testing.T, w *display.Window, p *participant.Participant, label string) {
	t.Helper()
	want := w.Snapshot()
	got := p.WindowImage(w.ID())
	if got == nil {
		t.Fatalf("%s: window missing at participant", label)
	}
	if got.Bounds() != want.Bounds() || !bytes.Equal(got.Pix, want.Pix) {
		t.Fatalf("%s: participant image diverged from host buffer", label)
	}
}

func fillTick(t *testing.T, h *Host, w *display.Window, c color.RGBA) {
	t.Helper()
	w.Fill(region.XYWH(0, 0, 64, 64), c)
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}
}

// TestTileRefSubstitutionOnRevisit is the unit-level version of the
// revisit claim: the second time the exact same pixels occupy the exact
// same rectangle, a negotiated viewer gets a TileReference instead of
// re-encoded pixels — and still converges.
func TestTileRefSubstitutionOnRevisit(t *testing.T) {
	h, w := newTileHost(t, 0)
	defer h.Close()
	v := attachTileViewer(t, h, "v", true, 0)

	fillTick(t, h, w, red)
	fillTick(t, h, w, blue)
	if got := v.rem.TileRefs(); got != 0 {
		t.Fatalf("novel content substituted %d references", got)
	}
	fillTick(t, h, w, red) // revisit
	settle()

	if got := v.rem.TileRefs(); got == 0 {
		t.Fatal("revisit did not substitute a tile reference")
	}
	if got := v.p.TileDesyncs(); got != 0 {
		t.Fatalf("desyncs = %d, want 0", got)
	}
	requireConverged(t, w, v.p, "after revisit")
}

// TestTileMixedFanout: one tick's fan-out carries references to the
// negotiated viewer and pixels to the plain one; both converge.
func TestTileMixedFanout(t *testing.T) {
	h, w := newTileHost(t, 0)
	defer h.Close()
	tiled := attachTileViewer(t, h, "tiled", true, 0)
	plain := attachTileViewer(t, h, "plain", false, 0)

	fillTick(t, h, w, red)
	fillTick(t, h, w, blue)
	fillTick(t, h, w, red)
	settle()

	if got := tiled.rem.TileRefs(); got == 0 {
		t.Fatal("negotiated viewer received no references")
	}
	if got := plain.rem.TileRefs(); got != 0 {
		t.Fatalf("plain viewer received %d references", got)
	}
	if got := plain.p.IgnoredExtensions(); got != 0 {
		t.Fatalf("plain viewer had to ignore %d extension messages", got)
	}
	requireConverged(t, w, tiled.p, "tiled viewer")
	requireConverged(t, w, plain.p, "plain viewer")
}

// TestTileRefreshShipsPixels: a refresh answers a viewer whose state
// cannot be trusted, so it must carry real pixels even when every tile
// is in the seen-set.
func TestTileRefreshShipsPixels(t *testing.T) {
	h, w := newTileHost(t, 0)
	defer h.Close()
	v := attachTileViewer(t, h, "v", true, 0)

	fillTick(t, h, w, red)
	fillTick(t, h, w, blue)
	fillTick(t, h, w, red)
	settle()
	refs := v.rem.TileRefs()
	if refs == 0 {
		t.Fatal("precondition: no references substituted")
	}

	v.sendPLI(t)
	settle()
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	settle()

	if got := v.rem.TileRefs(); got != refs {
		t.Fatalf("refresh substituted references (%d -> %d)", refs, got)
	}
	if v.p.NeedsRefresh() {
		t.Fatal("refresh did not clear the desync latch")
	}
	requireConverged(t, w, v.p, "after refresh")
}

// TestTileEvictionCoherence is the eviction-coherence table (see
// DESIGN.md "Tile store"): host and viewer dictionaries run the same
// deterministic FIFO, so matched capacities never let the host
// reference a tile the viewer evicted — and a deliberately smaller
// viewer dictionary degrades to a refresh, never to a wrong paint.
//
// The drive cycles four fill colors (four distinct tile keys, plus the
// join refresh's white) and then revisits the first color.
func TestTileEvictionCoherence(t *testing.T) {
	cases := []struct {
		name      string
		hostCap   int // host seen-set capacity, in tiles
		viewerCap int // viewer dictionary capacity
		// wantRefs: the revisit is served from the dictionary.
		wantRefs bool
		// wantDesync: the viewer must reject a reference and heal by
		// refresh. Implies wantRefs.
		wantDesync bool
	}{
		// Both sides remember everything: the revisit is a reference and
		// the viewer resolves it.
		{name: "equal-large", hostCap: 8, viewerCap: 8, wantRefs: true},
		// Both sides forgot the revisited tiles IN LOCKSTEP: the host
		// ships pixels again, the viewer never sees a dangling reference.
		{name: "equal-small", hostCap: 2, viewerCap: 2},
		// The viewer evicts earlier than the host believes: the reference
		// names an evicted tile, the viewer discards it, latches a
		// refresh, and converges on the healing pixels.
		{name: "viewer-smaller", hostCap: 8, viewerCap: 2, wantRefs: true, wantDesync: true},
	}
	palette := []color.RGBA{red, blue, green, yellow}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h, w := newTileHost(t, tc.hostCap)
			defer h.Close()
			v := attachTileViewer(t, h, "v", true, tc.viewerCap)

			for _, c := range palette {
				fillTick(t, h, w, c)
			}
			settle()
			if got := v.p.TileDesyncs(); got != 0 {
				t.Fatalf("desyncs = %d before the revisit", got)
			}
			fillTick(t, h, w, palette[0]) // revisit the first color
			settle()

			if gotRefs := v.rem.TileRefs() > 0; gotRefs != tc.wantRefs {
				t.Fatalf("references substituted = %v, want %v (host seen-set %+v)",
					gotRefs, tc.wantRefs, v.rem.TileDictStats())
			}
			desyncs := v.p.TileDesyncs()
			if (desyncs > 0) != tc.wantDesync {
				t.Fatalf("desyncs = %d, wantDesync = %v", desyncs, tc.wantDesync)
			}
			if tc.wantDesync {
				if !v.p.NeedsRefresh() {
					t.Fatal("rejected reference did not latch a refresh")
				}
				// The degraded path: the stale region was NOT painted. The
				// screen shows the previous color wherever the reference was
				// discarded — anything but a silently wrong revisit paint is
				// acceptable, and convergence is restored by the refresh.
				v.sendPLI(t)
				settle()
				if err := h.Tick(); err != nil {
					t.Fatal(err)
				}
				settle()
				if v.p.NeedsRefresh() {
					t.Fatal("refresh did not heal the viewer")
				}
			}
			requireConverged(t, w, v.p, fmt.Sprintf("case %s", tc.name))

			// After healing (or a clean revisit), the next revisit of the
			// same content must work without any desync: the refresh
			// re-taught both sides the same tiles in the same order.
			fillTick(t, h, w, palette[1])
			fillTick(t, h, w, palette[0])
			settle()
			if got := v.p.TileDesyncs(); got != desyncs {
				t.Fatalf("post-heal revisit desynced again (%d -> %d)", desyncs, got)
			}
			requireConverged(t, w, v.p, fmt.Sprintf("case %s post-heal", tc.name))
		})
	}
}
