package ah

import (
	"testing"

	"appshare/internal/region"
	"appshare/internal/rtcp"
	"appshare/internal/rtp"
)

// seqOf pulls the sequence number out of a raw RTP packet.
func seqOf(t *testing.T, pkt []byte) uint16 {
	t.Helper()
	var hdr rtp.Header
	if _, err := hdr.Unmarshal(pkt); err != nil {
		t.Fatal(err)
	}
	return hdr.SequenceNumber
}

// markEvicted reproduces sweepHealth's mark half of an eviction: the
// remote flagged closed and dropped from its shard map under the shard
// lock while sink teardown (finishEvictions) is still pending — the
// exact window feedback racing the sweep lands in.
func markEvicted(h *Host, r *Remote) {
	r.sh.mu.Lock()
	if !r.closed {
		r.closed = true
		if _, ok := r.sh.remotes[r]; ok {
			delete(r.sh.remotes, r)
			r.sh.size.Add(-1)
			h.nRemotes.Add(-1)
		}
	}
	r.sh.mu.Unlock()
}

func buildNACK(t *testing.T, r *Remote, seq uint16) []byte {
	t.Helper()
	pkt, err := rtcp.Marshal(&rtcp.NACK{
		SenderSSRC: 1,
		MediaSSRC:  r.SSRC(),
		Pairs:      rtcp.BuildNACKPairs([]uint16{seq}),
	})
	if err != nil {
		t.Fatal(err)
	}
	return pkt
}

func buildPLI(t *testing.T, r *Remote) []byte {
	t.Helper()
	pkt, err := rtcp.Marshal(&rtcp.PLI{SenderSSRC: 1, MediaSSRC: r.SSRC()})
	if err != nil {
		t.Fatal(err)
	}
	return pkt
}

// TestEvictedRemoteReceivesNoFeedbackService verifies the refresh-phase
// eviction race fix: feedback (NACK, PLI) and direct refresh requests
// landing between an eviction's mark and its sink teardown must produce
// no traffic toward — and no counters against — the evicted remote.
func TestEvictedRemoteReceivesNoFeedbackService(t *testing.T) {
	conn := newFaultConn(false)
	h, w, r := attachFault(t, conn)

	seq := seqOf(t, conn.sent[0])
	markEvicted(h, r)
	before := len(conn.sent)

	// NACK in the race window: no retransmission.
	h.HandleFeedback(r, buildNACK(t, r, seq))
	if got := len(conn.sent); got != before {
		t.Fatalf("NACK to evicted remote shipped %d packets", got-before)
	}

	// PLI in the race window: no refresh latched, so the next tick's
	// refresh phase sends nothing to it.
	h.HandleFeedback(r, buildPLI(t, r))
	w.Fill(region.XYWH(0, 0, 32, 32), blue)
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	if got := len(conn.sent); got != before {
		t.Fatalf("evicted remote received %d packets after PLI+tick", got-before)
	}

	// Direct refresh request: absorbed.
	if err := h.RequestRefresh(r); err != nil {
		t.Fatal(err)
	}
	if got := len(conn.sent); got != before {
		t.Fatalf("RequestRefresh on evicted remote shipped %d packets", got-before)
	}

	// A refresh latched before the eviction must not be served after it:
	// the mark wins regardless of which side latched first.
	r.sh.mu.Lock()
	r.refreshRequested = true
	r.sh.mu.Unlock()
	w.Fill(region.XYWH(0, 0, 16, 16), red)
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	if got := len(conn.sent); got != before {
		t.Fatalf("refresh phase shipped %d packets to an evicted refresher", got-before)
	}
}

// TestEvictGateDebugKnobReplantsRace verifies DebugDisableEvictGates
// re-opens the fixed race — the knob the netsim mutation check uses to
// prove its oracle would catch a regression.
func TestEvictGateDebugKnobReplantsRace(t *testing.T) {
	conn := newFaultConn(false)
	h, w := newHost(t, Config{Retransmissions: true, DebugDisableEvictGates: true})
	defer h.Close()
	r, err := h.AttachPacketConn("fault", conn, PacketOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w.Fill(region.XYWH(0, 0, 64, 64), red)
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	seq := seqOf(t, conn.sent[0])
	markEvicted(h, r)
	before := len(conn.sent)
	h.HandleFeedback(r, buildNACK(t, r, seq))
	if got := len(conn.sent); got != before+1 {
		t.Fatalf("with gates disabled, NACK shipped %d packets, want 1 (race re-planted)", got-before)
	}
}
