package ah

import (
	"errors"
	"io"
	"time"

	"appshare/internal/capture"
	"appshare/internal/codec"
	"appshare/internal/framing"
	"appshare/internal/region"
	"appshare/internal/rtp"
	"appshare/internal/transport"
)

// sink ships encoded RTP/RTCP packets toward one participant (or one
// multicast group).
type sink interface {
	// ship sends one packet.
	ship(pkt []byte) error
	// shipBatch sends a run of packets, aggregated into as few wire
	// operations as the transport allows (one writev-style stream write,
	// one batched datagram send). It returns how many packets the sink
	// accepted; accounting must cover exactly those.
	shipBatch(pkts [][]byte) (int, error)
	// backlogged reports whether screen data should be deferred right
	// now (Section 7 for TCP; rate budget for UDP).
	backlogged(pending int) bool
	// queued returns the bytes accepted but not yet on the wire (zero
	// for datagram sinks).
	queued() int
	// stalled reports how long the send path has made no drain progress
	// while bytes were queued (zero for datagram sinks, which never
	// queue).
	stalled() time.Duration
	// drainStats reports the cumulative bytes shipped to the wire and
	// bytes discarded by teardown or a write error (both zero for
	// datagram sinks, which never queue). Together with queued() they
	// satisfy drained + discarded + queued == bytes accepted — the
	// counter-consistency invariant the netsim oracles check.
	drainStats() (drained, discarded int64)
	// close releases transport resources.
	close() error
}

// Remote is one attached participant (or multicast group) with its own
// RTP stream state, deferral bookkeeping and retransmission log.
type Remote struct {
	host *Host
	// sh is the shard this remote is assigned to (round-robin at
	// creation, immutable). sh.mu guards all mutable per-remote state
	// below — the stream state (pz, pending, retrans), the health and
	// ladder clocks, and the counters.
	sh     *shard
	id     string
	userID uint16
	sink   sink
	pz     *rtp.Packetizer
	// rawScratch is the per-remote marshal scratch reused by
	// sendPrepared's batched ship; guarded by sh.mu like the rest.
	rawScratch [][]byte

	// tileSeen is the tile-store seen-set of this remote — the tiles it
	// has received at full fidelity this session, in arrival order (see
	// tilestore.go). nil unless both the host config and the remote's
	// attach options enabled the store. tileRefs counts substituted
	// TileReference messages. Guarded by sh.mu.
	tileSeen *codec.TileDict
	tileRefs uint64

	// Deferred screen state under backlog (Section 7): regions to
	// re-capture once the link drains, plus a pointer refresh flag.
	pending        *region.Set
	pendingPointer bool
	deferrals      uint64

	// Health/liveness tracking (see health.go); guarded by sh.mu.
	health           HealthState
	healthSince      time.Time
	attachedAt       time.Time
	lastHeard        time.Time
	lastRRAt         time.Time
	rtt              time.Duration
	backlogHighSince time.Time
	deferStreak      int
	maxDeferStreak   int
	needResync       bool
	evictReason      string

	// Quality-ladder state (see ladder.go); guarded by sh.mu.
	tier            QualityTier
	tierSince       time.Time
	tierPinned      bool
	congestedSince  time.Time
	cleanSince      time.Time
	lastPromoteAt   time.Time
	promoteWait     time.Duration
	tierTransitions uint64
	tierFlaps       uint64
	decimTicks      int

	// Retransmission log (UDP participants, Section 5.3.2): recent
	// packets by sequence number.
	retrans  map[uint16][]byte
	retransQ []uint16

	// RTCP state.
	sentPackets uint64
	sentOctets  uint64
	lastRR      ReceptionQuality

	// PLI rate limiting (Config.MinRefreshInterval) and deferred
	// refresh service (answered at the next Tick).
	lastRefresh      time.Time
	absorbedPLIs     uint64
	refreshRequested bool

	// forwardOnly marks a remote that completed the RelaySubscribe
	// handshake (see forward.go): it receives the stream's prepared
	// batches via its attached remoteForwarder — with StreamDescriptor
	// delimiters — and is skipped by the ordinary capture fan-out.
	forwardOnly bool

	closed bool
}

// ID returns the identifier the remote was attached with.
func (r *Remote) ID() string { return r.id }

// UserID returns the BFCP user identity of this participant.
func (r *Remote) UserID() uint16 { return r.userID }

// SSRC returns the RTP synchronization source of the remoting stream
// sent to this participant.
func (r *Remote) SSRC() uint32 { return r.pz.SSRC() }

// Deferrals reports how many ticks deferred screen data due to backlog.
func (r *Remote) Deferrals() uint64 {
	r.sh.mu.Lock()
	defer r.sh.mu.Unlock()
	return r.deferrals
}

// QueuedBytes reports the bytes sitting unsent in this remote's send
// queue — the Section 7 backlog signal (zero for datagram remotes).
func (r *Remote) QueuedBytes() int { return r.sink.queued() }

// AbsorbedPLIs reports how many PLIs were answered by an
// already-in-flight refresh under the rate limit.
func (r *Remote) AbsorbedPLIs() uint64 {
	r.sh.mu.Lock()
	defer r.sh.mu.Unlock()
	return r.absorbedPLIs
}

// Close detaches the remote from the host and closes its transport.
func (r *Remote) Close() error {
	r.host.dropRemote(r)
	r.sh.mu.Lock()
	if r.closed {
		r.sh.mu.Unlock()
		return nil
	}
	r.closed = true
	r.sh.mu.Unlock()
	return r.sink.close()
}

// newRemote wires common remote state. Callers hold no locks.
func (h *Host) newRemote(id string, userID uint16, s sink) *Remote {
	ent := h.cfg.Entropy
	r := &Remote{
		host:    h,
		sh:      h.shardFor(),
		id:      id,
		userID:  userID,
		sink:    s,
		pz:      rtp.NewPacketizerFrom(ent, rtp.NewSSRCFrom(ent), h.cfg.RemotingPT, h.cfg.Now()),
		pending: region.NewSet(),
	}
	if h.cfg.Retransmissions {
		// No capacity hint: a RetransLog sized for NACK service would
		// preallocate megabytes across a flash crowd of joiners; the map
		// grows to its working size on demand.
		r.retrans = make(map[uint16][]byte)
	}
	return r
}

// deliver sends one capture batch to the participant, deferring screen
// data under backlog per Section 7. prep is the batch marshalled once
// for all remotes; only RTP packetization happens per participant. The
// owning shard's lock is held.
func (r *Remote) deliver(b *capture.Batch, prep *preparedBatch) error {
	if r.forwardOnly {
		// Relay subscribers receive this tick's batch on the forwarder
		// path (descriptor-delimited); delivering it here too would
		// duplicate every payload on their wire.
		return nil
	}
	approx := approxBatchSize(b)
	backlogged := r.sink.backlogged(approx)
	if backlogged {
		r.deferStreak++
		if r.deferStreak > r.maxDeferStreak {
			r.maxDeferStreak = r.deferStreak
		}
	} else {
		r.deferStreak = 0
	}

	switch r.effectiveTierLocked() {
	case TierKeyframeOnly:
		// Keyframe-only mode: stop accumulating per-region detail for a
		// viewer that cannot keep up — the pending set is what a wedged
		// remote grows without bound. Window structure still goes out;
		// the pixels are owed as one full refresh on the way back up.
		if backlogged || r.sink.backlogged(0) || r.host.cfg.Ladder != nil || r.tierPinned {
			// With the ladder enabled the controller owns the climb back
			// out (promoteLocked latches the refresh); only the legacy
			// health path self-recovers here.
			r.pending.Clear()
			r.pendingPointer = false
			r.needResync = true
			return r.sendPrepared(prep.wmOnly())
		}
		// Link drained below the limit: promote back to healthy and let
		// this Tick's refresh pass send the keyframe.
		r.host.recoverLocked(r, r.host.cfg.Now())
		return r.sendPrepared(prep.wmOnly())

	case TierScaled:
		// Pixelated delivery: fold this batch into the pending set and
		// flush it re-encoded at reduced detail. Moves cannot ship as
		// MoveRectangle here for the same reason as the fold path below —
		// the flushed updates already carry post-move content.
		if backlogged {
			r.deferScreenData(b)
			return r.sendPrepared(prep.wmOnly())
		}
		r.foldScreenData(b)
		if err := r.sendPrepared(prep.wmOnly()); err != nil {
			return err
		}
		block := r.host.scaleBlock()
		return r.flushPendingWith(func(rect region.Rect) ([]capture.Update, error) {
			return r.host.encodeRegionDegraded(rect, block)
		})

	case TierDecimated:
		// Frame decimation: pixels flush on every Nth tick only; the
		// off-cycle ticks fold their damage into the pending set, so
		// what eventually ships is the freshest content, coalesced.
		r.decimTicks++
		if r.decimTicks%r.host.decimateEvery() != 0 {
			if backlogged {
				r.deferScreenData(b)
			} else {
				r.foldScreenData(b)
			}
			return r.sendPrepared(prep.wmOnly())
		}
		// On-cycle: fall through to the full-fidelity path below.
	}

	if backlogged {
		r.deferScreenData(b)
		// Window state is tiny and ordering-critical; it still goes
		// out so the participant tracks structure while pixels wait.
		return r.sendPrepared(prep.wmOnly())
	}

	// Link is clear. With deferred regions outstanding, this batch's
	// moves cannot be sent as MoveRectangle: a move shifts the
	// participant's *current* pixels, but deferred regions mean the
	// participant is behind, and the flushed updates below already carry
	// post-move content — applying the move on top would double-shift
	// it. Fold the whole batch into the pending set and flush everything
	// as freshly captured updates (Section 7's "most recent screen
	// data"). Window state still leads the flush.
	if !r.pending.Empty() || r.pendingPointer {
		r.foldScreenData(b)
		if err := r.sendPrepared(prep.wmOnly()); err != nil {
			return err
		}
		return r.flushPending()
	}
	return r.sendPrepared(r.tileCompose(prep, true))
}

// deferScreenData folds the batch into the pending set AND counts a
// deferral (the link refused this tick's pixels).
func (r *Remote) deferScreenData(b *capture.Batch) {
	r.deferrals++
	r.foldScreenData(b)
}

// foldScreenData merges the batch's damage into the pending set without
// counting a deferral — used when folding is a delivery-policy choice
// (outstanding regions, decimation off-cycle) rather than backpressure.
func (r *Remote) foldScreenData(b *capture.Batch) {
	for _, mv := range b.Moves {
		r.pending.Add(mv.Src())
		r.pending.Add(mv.Dst())
	}
	for _, up := range b.Updates {
		r.pending.Add(up.Rect)
	}
	if b.Pointer != nil {
		r.pendingPointer = true
	}
}

func (r *Remote) flushPending() error {
	return r.flushPendingWith(r.host.encodeRegion)
}

// flushPendingWith flushes the pending set through an arbitrary region
// encoder (full-fidelity or a degraded tier variant). Shard lock held.
func (r *Remote) flushPendingWith(encode func(region.Rect) ([]capture.Update, error)) error {
	var ups []capture.Update
	for _, rect := range r.pending.Coalesce(1024) {
		u, err := encode(rect)
		if err != nil {
			return err
		}
		ups = append(ups, u...)
	}
	flush := batchFromUpdates(ups, nil)
	if r.pendingPointer {
		refresh, err := r.host.capturePointer()
		if err != nil {
			return err
		}
		flush.Pointer = refresh
	}
	r.pending.Clear()
	r.pendingPointer = false
	// A flush is ordinary delivery — the viewer's state is trusted — so
	// tile references are fair game for regions it has already seen.
	return r.sendBatch(flush, true)
}

// sendBatch marshals and ships a batch to this remote alone, routing it
// through the tile store (allowRefs false on refresh paths, which must
// carry real pixels). The owning shard's lock is held. (Tick's fan-out
// paths marshal once via prepareBatch and call sendPrepared directly.)
func (r *Remote) sendBatch(b *capture.Batch, allowRefs bool) error {
	var ts *TileStoreConfig
	if r.tileSeen != nil {
		ts = r.host.cfg.TileStore
	}
	prep, err := prepareBatch(b, r.host.cfg.MTU, ts)
	if err != nil {
		return err
	}
	return r.sendPrepared(r.tileCompose(prep, allowRefs))
}

func (r *Remote) shipAndLog(pkt []byte, kind string) error {
	if err := r.sink.ship(pkt); err != nil {
		return err
	}
	r.sentPackets++
	r.sentOctets += uint64(len(pkt))
	r.host.record(kind, len(pkt))
	r.logForRetransmission(pkt)
	return nil
}

func (r *Remote) logForRetransmission(pkt []byte) {
	if r.retrans == nil {
		return
	}
	var hdr rtp.Header
	if _, err := hdr.Unmarshal(pkt); err != nil {
		return
	}
	seq := hdr.SequenceNumber
	if _, dup := r.retrans[seq]; dup {
		// The 16-bit sequence space wrapped and reused this number while
		// its old packet was still logged. Overwrite in place: appending
		// a second queue entry would alias — evicting the old entry
		// would delete the NEW packet from the map, so a NACK for a
		// live packet would miss.
		r.retrans[seq] = pkt
		return
	}
	if len(r.retransQ) >= r.host.cfg.RetransLog {
		oldest := r.retransQ[0]
		r.retransQ = r.retransQ[1:]
		delete(r.retrans, oldest)
	}
	r.retrans[seq] = pkt
	r.retransQ = append(r.retransQ, seq)
}

// fullRefresh sends the complete state to this remote (PLI service and
// the TCP initial push). Shard lock held.
//
// The refresh is tier-coherent: a remote pinned or demoted to TierScaled
// gets its screen content re-encoded pixelated at the tier's block size
// (cached under codec.KeyForTier, so N scaled refreshers share one
// encode), not the full-resolution payloads — a late joiner attached
// onto a congested rung must not receive exactly the bytes the ladder
// demoted it to avoid.
func (r *Remote) fullRefresh() error {
	b, err := r.host.captureFullRefresh()
	if err != nil {
		return err
	}
	if r.effectiveTierLocked() == TierScaled {
		block := r.host.scaleBlock()
		var ups []capture.Update
		for _, up := range b.Updates {
			du, err := r.host.encodeRegionDegraded(up.Rect, block)
			if err != nil {
				return err
			}
			ups = append(ups, du...)
		}
		b = &capture.Batch{WMInfo: b.WMInfo, Updates: ups, Pointer: b.Pointer}
	}
	r.pending.Clear()
	r.pendingPointer = false
	// Refreshes ship pixels only: the requester's state is stale or
	// unknown, and its tile dictionary may be too. The seen-set restarts
	// empty and the lossless updates reseed it, re-synchronizing both
	// dictionaries from the refresh onward.
	r.tileReset()
	return r.sendBatch(b, false)
}

// resend services a NACK for the given sequence numbers from the
// retransmission log. Unknown sequences (already evicted) are skipped, as
// the draft permits ("AHs MAY support retransmissions").
func (r *Remote) resend(seqs []uint16) error {
	if r.retrans == nil {
		return nil
	}
	for _, s := range seqs {
		if pkt, ok := r.retrans[s]; ok {
			if err := r.sink.ship(pkt); err != nil {
				return err
			}
			r.host.record("Retransmission", len(pkt))
		}
	}
	return nil
}

// approxBatchSize estimates the wire size of a batch for rate budgeting.
func approxBatchSize(b *capture.Batch) int {
	n := 0
	if b.WMInfo != nil {
		n += 4 + 20*len(b.WMInfo.Windows) + rtp.HeaderSize
	}
	n += len(b.Moves) * (28 + rtp.HeaderSize)
	for _, up := range b.Updates {
		n += len(up.Msg.Content) + 12 + rtp.HeaderSize
	}
	if b.Pointer != nil {
		n += len(b.Pointer.Image) + 12 + rtp.HeaderSize
	}
	return n
}

// --- sink implementations -------------------------------------------------

// streamSink ships framed packets over a reliable stream through a
// RatedWriter whose backlog models the TCP send buffer (Section 7).
type streamSink struct {
	rw      io.Closer
	rated   *transport.RatedWriter
	framer  *framing.Writer
	limit   int
	noDefer bool
}

func (s *streamSink) ship(pkt []byte) error { return s.framer.WriteFrame(pkt) }

// shipBatch concatenates the frames and hands them to the RatedWriter in
// ONE write — the writev analogue for the modeled TCP send buffer. The
// byte stream is identical to per-frame writes (RFC 4571 framing is
// position-independent), and the write is all-or-nothing, so either
// every packet is accepted or none is.
func (s *streamSink) shipBatch(pkts [][]byte) (int, error) {
	if err := s.framer.WriteFrames(pkts); err != nil {
		return 0, err
	}
	return len(pkts), nil
}

func (s *streamSink) backlogged(int) bool {
	if s.noDefer {
		return false
	}
	return s.rated.Backlog() > s.limit
}

func (s *streamSink) queued() int { return s.rated.Backlog() }

func (s *streamSink) stalled() time.Duration { return s.rated.StallDuration() }

func (s *streamSink) drainStats() (int64, int64) { return s.rated.Drained(), s.rated.Discarded() }

func (s *streamSink) close() error {
	// Close the transport FIRST: if the drain goroutine is wedged in a
	// Write toward a dead peer, tearing the socket down unblocks it with
	// an error, letting RatedWriter.Close (which waits for the drain to
	// exit) complete instead of deadlocking.
	var err error
	if s.rw != nil {
		err = s.rw.Close()
	}
	_ = s.rated.Close()
	return err
}

// StreamOptions configures AttachStream.
type StreamOptions struct {
	// UserID is the participant's BFCP identity.
	UserID uint16
	// BytesPerSecond caps the modeled link rate (0 = unlimited).
	BytesPerSecond int
	// DisableCoalescing turns off the Section 7 backlog deferral — the
	// naive "blindly send every screen update" behavior, kept for the
	// E11 comparison benchmark.
	DisableCoalescing bool
	// ReadIdleTimeout, when positive and the stream supports read
	// deadlines (net.Conn does), bounds each feedback read: a viewer
	// that sends nothing for this long gets its pump torn down and the
	// remote detached. This catches black-holed TCP peers the transport
	// alone would keep alive for minutes.
	ReadIdleTimeout time.Duration
	// TileStore marks the participant as having negotiated the tile-store
	// capability (the "tilestore" fmtp parameter). Effective only when
	// the host itself has Config.TileStore; un-negotiated viewers always
	// receive plain pixel updates.
	TileStore bool
	// PinTier, when above TierFull, attaches the remote already pinned to
	// that ladder rung (PinQualityTier before the initial push), so the
	// join-time full refresh is tier-coherent from the first packet — a
	// viewer negotiated onto a scaled tier receives tier-keyed payloads,
	// never a full-resolution burst.
	PinTier QualityTier
}

// readDeadliner is the subset of net.Conn the idle-timeout wiring needs.
type readDeadliner interface {
	SetReadDeadline(t time.Time) error
}

// idleReader arms a fresh read deadline before every read, so a silent
// peer surfaces as a read error at the pump within the timeout.
type idleReader struct {
	r       io.Reader
	d       readDeadliner
	timeout time.Duration
}

func (ir *idleReader) Read(p []byte) (int, error) {
	_ = ir.d.SetReadDeadline(time.Now().Add(ir.timeout))
	return ir.r.Read(p)
}

// AttachStream adds a TCP (or any reliable-stream) participant. The host
// writes RFC 4571 framed remoting RTP onto rw and reads framed HIP RTP
// and RTCP feedback from it. A goroutine pumps the read side until EOF.
func (h *Host) AttachStream(id string, rw io.ReadWriteCloser, opts StreamOptions) (*Remote, error) {
	rated := transport.NewRatedWriterAt(rw, opts.BytesPerSecond, h.cfg.Now)
	s := &streamSink{
		rw:      rw,
		rated:   rated,
		framer:  framing.NewWriter(rated),
		limit:   h.cfg.BacklogLimit,
		noDefer: opts.DisableCoalescing,
	}
	r := h.newRemote(id, opts.UserID, s)
	if opts.TileStore && h.cfg.TileStore != nil {
		// Seen-set starts empty: a late joiner has seen nothing, so its
		// initial full refresh below ships pixels and seeds both sides.
		r.tileSeen = codec.NewTileDict(h.cfg.TileStore.DictCapacity)
	}
	if opts.PinTier > TierFull {
		r.PinQualityTier(opts.PinTier)
	}
	if err := h.addRemoteUnique(r); err != nil {
		_ = s.close()
		return nil, err
	}
	src := io.Reader(rw)
	if opts.ReadIdleTimeout > 0 {
		if d, ok := rw.(readDeadliner); ok {
			src = &idleReader{r: rw, d: d, timeout: opts.ReadIdleTimeout}
		}
	}
	go h.pumpStream(r, src)
	if err := h.initialState(r); err != nil {
		// Detach rather than leak: the pump and sink of a remote that
		// never got its initial state must not outlive this failure.
		_ = r.Close()
		return nil, err
	}
	return r, nil
}

// pumpStream reads framed feedback (HIP RTP + RTCP) from a stream
// participant.
func (h *Host) pumpStream(r *Remote, src io.Reader) {
	reader := framing.NewReader(src)
	for {
		pkt, err := reader.ReadFrame()
		if err != nil {
			_ = r.Close()
			return
		}
		h.handleIncoming(r, pkt)
	}
}

// BindHIPStream attaches a dedicated HIP connection to an existing
// remote — the draft's SDP example carries HIP on its own port (6006)
// distinct from the remoting port (6000). The association between the
// two connections comes from session signalling (out of band, as in the
// draft); the caller passes the resolved remote. Framed HIP RTP and RTCP
// read from rw are processed until EOF.
func (h *Host) BindHIPStream(r *Remote, rw io.ReadCloser) {
	go func() {
		defer rw.Close()
		reader := framing.NewReader(rw)
		for {
			pkt, err := reader.ReadFrame()
			if err != nil {
				return
			}
			h.handleIncoming(r, pkt)
		}
	}()
}

// FindRemote returns the attached remote with the given ID, or nil.
func (h *Host) FindRemote(id string) *Remote {
	for _, s := range h.shards {
		s.mu.Lock()
		for r := range s.remotes {
			if r.id == id {
				s.mu.Unlock()
				return r
			}
		}
		s.mu.Unlock()
	}
	return nil
}

// PacketOptions configures AttachPacketConn.
type PacketOptions struct {
	// UserID is the participant's BFCP identity.
	UserID uint16
	// BytesPerSecond is the AH-enforced transmission rate for this UDP
	// participant (Section 4.3: "The AH controls the transmission rate
	// for participants using UDP"). 0 = unlimited.
	BytesPerSecond int
	// TileStore marks the participant as having negotiated the
	// tile-store capability (see StreamOptions.TileStore).
	TileStore bool
	// PinTier, when above TierFull, attaches the remote already pinned to
	// that ladder rung (see StreamOptions.PinTier); the refresh answering
	// its announcement PLI is then tier-coherent.
	PinTier QualityTier
}

// packetSink ships datagrams with an AH-enforced rate budget.
type packetSink struct {
	conn transport.PacketConn
	// batch is conn's batched-send fast path, resolved once at attach
	// (nil when the conn only supports Send).
	batch  transport.BatchSender
	rate   int
	tokens float64
	last   time.Time
	now    func() time.Time
}

func (s *packetSink) ship(pkt []byte) error {
	if s.rate > 0 {
		s.refill()
		s.tokens -= float64(len(pkt))
	}
	return s.conn.Send(pkt)
}

// shipBatch sends a run of datagrams through the conn's BatchSender
// when it has one (one endpoint lock acquisition per batch instead of
// per packet), falling back to per-packet sends otherwise. The token
// budget is charged for exactly the packets the transport accepted —
// the same per-packet accounting ship() does — so a mid-run send error
// or a short-count batch sender cannot leave the bucket charged for
// datagrams that never reached the wire.
func (s *packetSink) shipBatch(pkts [][]byte) (int, error) {
	var n int
	var err error
	if s.batch != nil {
		n, err = s.batch.SendBatch(pkts)
		if n > len(pkts) {
			n = len(pkts)
		}
	} else {
		n = len(pkts)
		for i, p := range pkts {
			if e := s.conn.Send(p); e != nil {
				n, err = i, e
				break
			}
		}
	}
	if s.rate > 0 && n > 0 {
		s.refill()
		for _, p := range pkts[:n] {
			s.tokens -= float64(len(p))
		}
	}
	return n, err
}

func (s *packetSink) backlogged(pending int) bool {
	if s.rate <= 0 {
		return false
	}
	s.refill()
	return s.tokens < float64(pending)
}

func (s *packetSink) refill() {
	now := s.now()
	if !s.last.IsZero() {
		s.tokens += now.Sub(s.last).Seconds() * float64(s.rate)
		if cap := float64(s.rate); s.tokens > cap {
			s.tokens = cap
		}
	} else {
		s.tokens = float64(s.rate)
	}
	s.last = now
}

func (s *packetSink) queued() int { return 0 }

func (s *packetSink) stalled() time.Duration { return 0 }

func (s *packetSink) drainStats() (int64, int64) { return 0, 0 }

func (s *packetSink) close() error { return s.conn.Close() }

// AttachPacketConn adds a UDP participant. The host sends remoting RTP
// datagrams on conn and reads HIP RTP and RTCP feedback from it. Unlike
// TCP participants, no initial state is pushed: per Section 4.3 the
// participant announces itself with a PLI. The refresh it triggers is
// served at the start of the next Tick — feedback arrives on pump
// goroutines, and only the Tick caller's goroutine may observe the
// desktop (keep driving Tick at your frame rate).
func (h *Host) AttachPacketConn(id string, conn transport.PacketConn, opts PacketOptions) (*Remote, error) {
	s := &packetSink{conn: conn, rate: opts.BytesPerSecond, now: h.cfg.Now}
	if bs, ok := conn.(transport.BatchSender); ok {
		s.batch = bs
	}
	r := h.newRemote(id, opts.UserID, s)
	if opts.TileStore && h.cfg.TileStore != nil {
		r.tileSeen = codec.NewTileDict(h.cfg.TileStore.DictCapacity)
	}
	if opts.PinTier > TierFull {
		r.PinQualityTier(opts.PinTier)
	}
	// No ID-uniqueness here: packet IDs are caller-chosen labels (ServeUDP
	// already keys by unique source address), and sharing one ID across
	// conns is an established pattern (e.g. multicast-style fan-out tests).
	if err := h.addRemote(r); err != nil {
		_ = s.close()
		return nil, err
	}
	go h.pumpPackets(r, conn)
	return r, nil
}

func (h *Host) pumpPackets(r *Remote, conn transport.PacketConn) {
	for {
		pkt, err := conn.Recv()
		if err != nil {
			_ = r.Close()
			return
		}
		h.handleIncoming(r, pkt)
	}
}

// busSink publishes to a multicast group, optionally under a rate
// budget. Section 4.3: "Several simultaneous multicast sessions with
// different transmission rates can be created at the AH" — each group
// gets its own budget and the standard deferral machinery, so a slow
// group receives coalesced final states while a fast one gets every
// frame.
type busSink struct {
	bus    *transport.Bus
	budget *packetSink // nil when unlimited; reused for its token bucket
}

func (s *busSink) ship(pkt []byte) error {
	if s.budget != nil {
		s.budget.refill()
		s.budget.tokens -= float64(len(pkt))
	}
	s.bus.Publish(pkt)
	return nil
}

func (s *busSink) shipBatch(pkts [][]byte) (int, error) {
	for _, p := range pkts {
		_ = s.ship(p)
	}
	return len(pkts), nil
}

func (s *busSink) backlogged(pending int) bool {
	if s.budget == nil {
		return false
	}
	s.budget.refill()
	return s.budget.tokens < float64(pending)
}

func (s *busSink) queued() int                { return 0 }
func (s *busSink) stalled() time.Duration     { return 0 }
func (s *busSink) drainStats() (int64, int64) { return 0, 0 }
func (s *busSink) close() error               { return nil }

// MulticastOptions configures AttachMulticast.
type MulticastOptions struct {
	// BytesPerSecond caps the group's transmission rate (0 = unlimited).
	BytesPerSecond int
}

// AttachMulticast adds a multicast group as a receiver. Group members
// send their RTCP feedback over unicast paths (attach those with
// AttachPacketConn or route them via HandleFeedback).
func (h *Host) AttachMulticast(id string, bus *transport.Bus, opts ...MulticastOptions) (*Remote, error) {
	s := &busSink{bus: bus}
	if len(opts) > 0 && opts[0].BytesPerSecond > 0 {
		s.budget = &packetSink{rate: opts[0].BytesPerSecond, now: h.cfg.Now}
	}
	r := h.newRemote(id, 0, s)
	if err := h.addRemote(r); err != nil {
		return nil, err
	}
	return r, nil
}

// initialState pushes WindowManagerInfo plus a full screen image, the
// TCP joining flow of Section 4.4 ("right after the TCP connection
// establishment").
func (h *Host) initialState(r *Remote) error {
	r.sh.mu.Lock()
	defer r.sh.mu.Unlock()
	return r.fullRefresh()
}

// RequestRefresh performs the PLI action for a remote directly (useful
// for multicast groups whose feedback arrives out of band).
func (h *Host) RequestRefresh(r *Remote) error {
	r.sh.mu.Lock()
	defer r.sh.mu.Unlock()
	if r.closed {
		// Same race as the feedback path: the remote may be marked
		// evicted while its sink teardown is still pending.
		return nil
	}
	return r.fullRefresh()
}

// ErrUnknownRemote is returned when feedback names no attached remote.
var ErrUnknownRemote = errors.New("ah: unknown remote")
