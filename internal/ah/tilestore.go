package ah

import (
	"appshare/internal/codec"
)

// TileStoreConfig enables the persistent tile store (see DESIGN.md "Tile
// store"): losslessly-encoded updates are tiled and content-hashed at
// capture, each negotiated remote carries a seen-set of the tiles it has
// received at full fidelity, and a region whose tiles were all seen ships
// as a compact TileReference instead of re-encoded pixels. Remotes that
// did not negotiate the capability (StreamOptions/PacketOptions
// .TileStore false) receive ordinary RegionUpdates, so one tick's fan-out
// may carry tile references to some viewers and PNG to others.
type TileStoreConfig struct {
	// TileSize is the square tile edge in pixels (default
	// codec.DefaultTileSize). Host and viewers must agree on it; it is
	// carried in every TileReference and negotiated via the "tilestore"
	// fmtp parameter.
	TileSize int
	// DictCapacity bounds each side's tile dictionary in tiles (default
	// codec.DefaultTileDictCapacity). Host and viewer capacities must
	// match: both run the same deterministic FIFO eviction, so equal
	// capacities keep the seen-set a subset of what the viewer holds
	// (absent loss — and loss only makes the viewer know less, which
	// degrades to a refresh, never to a wrong paint).
	DictCapacity int
}

// withDefaults fills zero fields.
func (c TileStoreConfig) withDefaults() TileStoreConfig {
	if c.TileSize <= 0 {
		c.TileSize = codec.DefaultTileSize
	}
	if c.DictCapacity <= 0 {
		c.DictCapacity = codec.DefaultTileDictCapacity
	}
	return c
}

// tileCompose rewrites the shared prepared batch for THIS remote: each
// lossless update whose tiles are all in the remote's seen-set is
// replaced by its TileReference messages (when allowRefs permits and the
// reference was representable); everything else passes through unchanged
// and teaches the seen-set the tiles it ships. The owning shard's lock is
// held. Remotes without a tile store (or batches without updates) return
// the shared slice untouched — the store-off path allocates nothing.
//
// allowRefs is false on the refresh paths: a full refresh answers a PLI
// or a join, i.e. a viewer whose state (including, possibly, its tile
// dictionary) cannot be trusted — it must carry real pixels. It still
// learns, which is exactly how a desynced dictionary heals: the refresh
// re-teaches both sides the same tiles in the same order.
func (r *Remote) tileCompose(prep *preparedBatch, allowRefs bool) []preparedMessage {
	if r.tileSeen == nil || len(prep.updates) == 0 {
		return prep.msgs
	}
	out := make([]preparedMessage, 0, len(prep.msgs))
	out = append(out, prep.msgs[:prep.updates[0].start]...)
	for _, u := range prep.updates {
		if allowRefs && u.ref != nil && r.tilesSeen(u.tiles) {
			out = append(out, u.ref...)
			r.tileRefs += uint64(len(u.ref))
			continue
		}
		out = append(out, prep.msgs[u.start:u.end]...)
		for _, k := range u.tiles {
			// nil pixels: the host side only needs membership — the viewer
			// holds the actual tile pixels.
			r.tileSeen.Learn(k, nil)
		}
	}
	out = append(out, prep.msgs[prep.updates[len(prep.updates)-1].end:]...)
	return out
}

// tileReset discards the seen-set. Called on the full-refresh paths,
// with the owning shard's lock held: a refresh answers a viewer whose
// dictionary state cannot be trusted, and entries learned before the
// desync may name tiles the viewer has since lost. Starting the seen-set
// empty restores the safety invariant (seen-set ⊆ viewer dictionary)
// outright — from here on both sides learn the same stream again, so a
// healed viewer never sees a reference to pre-desync history.
func (r *Remote) tileReset() {
	if r.tileSeen != nil {
		r.tileSeen = codec.NewTileDict(r.tileSeen.Capacity())
	}
}

// tilesSeen reports whether every tile of an update is in the seen-set.
func (r *Remote) tilesSeen(tiles []codec.TileKey) bool {
	if len(tiles) == 0 {
		return false
	}
	for _, k := range tiles {
		if !r.tileSeen.Has(k) {
			return false
		}
	}
	return true
}

// TileRefs reports how many TileReference messages were substituted for
// pixel updates toward this remote.
func (r *Remote) TileRefs() uint64 {
	r.sh.mu.Lock()
	defer r.sh.mu.Unlock()
	return r.tileRefs
}

// TileDictStats returns the remote's seen-set counters (zero value when
// the remote has no tile store).
func (r *Remote) TileDictStats() codec.TileDictStats {
	r.sh.mu.Lock()
	defer r.sh.mu.Unlock()
	if r.tileSeen == nil {
		return codec.TileDictStats{}
	}
	return r.tileSeen.Stats()
}
