package ah

import (
	"testing"
	"time"

	"appshare/internal/bfcp"
	"appshare/internal/capture"
	"appshare/internal/codec"
	"appshare/internal/display"
	"appshare/internal/participant"
	"appshare/internal/region"
	"appshare/internal/transport"
)

// TestPointerInUpdatesComposites verifies the first mouse model of
// Section 4.2: the cursor travels inside RegionUpdates; participants see
// it in the pixels with no MousePointerInfo messages at all.
func TestPointerInUpdatesComposites(t *testing.T) {
	d := display.NewDesktop(400, 300)
	w := d.CreateWindow(1, region.XYWH(0, 0, 400, 300))
	p, err := capture.New(d, capture.Options{PointerInUpdates: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Tick(); err != nil {
		t.Fatal(err)
	}

	d.MoveCursor(100, 100)
	b, err := p.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if b.Pointer != nil {
		t.Fatal("pointer-in-updates must not emit MousePointerInfo")
	}
	if len(b.Updates) == 0 {
		t.Fatal("cursor move must damage the sprite area")
	}
	// One of the updates must contain non-window pixels (the sprite is
	// black/white over a white window).
	foundSprite := false
	for _, up := range b.Updates {
		img, err := (codec.PNG{}).Decode(up.Msg.Content)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(img.Pix); i += 4 {
			if img.Pix[i] == 0 && img.Pix[i+1] == 0 && img.Pix[i+2] == 0 {
				foundSprite = true
				break
			}
		}
	}
	if !foundSprite {
		t.Fatal("cursor sprite pixels not composited into updates")
	}
	// Moving again damages the OLD position too, so the sprite is erased
	// behind itself.
	d.MoveCursor(200, 200)
	b, err = p.Tick()
	if err != nil {
		t.Fatal(err)
	}
	covered := region.NewSet()
	for _, up := range b.Updates {
		covered.Add(up.Rect)
	}
	if !covered.Contains(101, 101) {
		t.Fatal("old cursor position not re-sent after move")
	}
	if !covered.Contains(201, 201) {
		t.Fatal("new cursor position not sent after move")
	}
	_ = w
}

// TestPLIRateLimit verifies PLI absorption within MinRefreshInterval.
func TestPLIRateLimit(t *testing.T) {
	now := time.Unix(5000, 0)
	clock := func() time.Time { return now }
	h, _ := newHost(t, Config{MinRefreshInterval: time.Second, Now: clock})
	defer h.Close()

	hostConn, partConn := transport.Pipe(transport.LinkConfig{Seed: 1}, transport.LinkConfig{Seed: 2})
	p := participant.New(participant.Config{})
	go func() {
		for {
			pkt, err := partConn.Recv()
			if err != nil {
				return
			}
			_ = p.HandlePacket(pkt)
		}
	}()
	r, err := h.AttachPacketConn("u", hostConn, PacketOptions{})
	if err != nil {
		t.Fatal(err)
	}

	pli, err := p.BuildPLI()
	if err != nil {
		t.Fatal(err)
	}
	// Three PLIs at the same instant: first served, rest absorbed.
	for i := 0; i < 3; i++ {
		if err := partConn.Send(pli); err != nil {
			t.Fatal(err)
		}
	}
	settle()
	if got := r.AbsorbedPLIs(); got != 2 {
		t.Fatalf("absorbed = %d, want 2", got)
	}
	// After the window passes, a PLI is served again.
	now = now.Add(2 * time.Second)
	if err := partConn.Send(pli); err != nil {
		t.Fatal(err)
	}
	settle()
	if got := r.AbsorbedPLIs(); got != 2 {
		t.Fatalf("post-window PLI absorbed: %d", got)
	}
}

// TestAutoHIDStatus verifies the Appendix A focus rule: the floor's HID
// status follows whether the focused window is shared.
func TestAutoHIDStatus(t *testing.T) {
	floor := bfcp.NewFloor(1, nil)
	d := display.NewDesktop(800, 600)
	shared := d.CreateWindow(1, region.XYWH(0, 0, 300, 200))
	private := d.CreateWindow(2, region.XYWH(400, 0, 300, 200))
	if err := d.SetShared(private.ID(), false); err != nil {
		t.Fatal(err)
	}
	h, err := New(Config{Desktop: d, Floor: floor, AutoHIDStatus: true})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if err := floor.Request(7); err != nil {
		t.Fatal(err)
	}

	// Focus the shared window: HIDs allowed.
	if err := d.RaiseWindow(shared.ID()); err != nil {
		t.Fatal(err)
	}
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	if got := floor.HIDStatus(); got != bfcp.StateAllAllowed {
		t.Fatalf("status with shared focus = %v", got)
	}

	// Focus moves to the non-shared window: HIDs blocked without
	// revoking the floor.
	if err := d.RaiseWindow(private.ID()); err != nil {
		t.Fatal(err)
	}
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	if got := floor.HIDStatus(); got != bfcp.StateNotAllowed {
		t.Fatalf("status with private focus = %v", got)
	}
	if holder, ok := floor.Holder(); !ok || holder != 7 {
		t.Fatal("floor must stay granted while HIDs are blocked")
	}

	// Back to the shared window: unblocked.
	if err := d.RaiseWindow(shared.ID()); err != nil {
		t.Fatal(err)
	}
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	if got := floor.HIDStatus(); got != bfcp.StateAllAllowed {
		t.Fatalf("status after refocus = %v", got)
	}
}

func TestAutoHIDStatusRequiresFloor(t *testing.T) {
	d := display.NewDesktop(10, 10)
	if _, err := New(Config{Desktop: d, AutoHIDStatus: true}); err == nil {
		t.Fatal("AutoHIDStatus without Floor should fail")
	}
}
