package ah

import (
	"testing"
	"time"

	"appshare/internal/participant"
	"appshare/internal/transport"
)

func TestHostRunLoop(t *testing.T) {
	h, w := newHost(t, Config{})
	defer h.Close()
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() { done <- h.Run(5*time.Millisecond, stop) }()
	time.Sleep(30 * time.Millisecond)
	close(stop)
	if err := <-done; err != nil {
		t.Fatalf("Run returned %v", err)
	}
	_ = w
	if h.Floor() != nil {
		t.Fatal("no floor configured")
	}
}

func TestHandleFeedbackOutOfBand(t *testing.T) {
	h, _ := newHost(t, Config{})
	defer h.Close()
	bus := transport.NewBus()
	sub := bus.Subscribe(transport.LinkConfig{Seed: 1})
	p := participant.New(participant.Config{})
	go func() {
		for {
			pkt, err := sub.Recv()
			if err != nil {
				return
			}
			_ = p.HandlePacket(pkt)
		}
	}()
	r, err := h.AttachMulticast("g", bus)
	if err != nil {
		t.Fatal(err)
	}
	if r.ID() != "g" || r.UserID() != 0 {
		t.Fatalf("identity = %q/%d", r.ID(), r.UserID())
	}
	if r.QueuedBytes() != 0 {
		t.Fatal("bus sink should report zero queue")
	}
	// A PLI routed out of band latches a refresh, served at the next
	// tick.
	pli, err := p.BuildPLI()
	if err != nil {
		t.Fatal(err)
	}
	h.HandleFeedback(r, pli)
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	settle()
	if len(p.Windows()) != 1 {
		t.Fatal("out-of-band PLI did not refresh the group")
	}
}

func TestTickAfterClose(t *testing.T) {
	h, _ := newHost(t, Config{})
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if err := h.Tick(); err == nil {
		t.Fatal("tick after close should fail")
	}
	if _, err := h.AttachMulticast("late", transport.NewBus()); err == nil {
		t.Fatal("attach after close should fail")
	}
}
