package ah

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"appshare/internal/display"
	"appshare/internal/region"
	"appshare/internal/transport"
	"appshare/internal/workload"
)

// TestShardChurnFlashCrowd is the sharded send path's churn gate, run
// in CI under -race -cpu 1,4: a flash crowd of UDP joiners attaches
// from several goroutines while the desktop owner ticks at full speed,
// a fraction detaches immediately, and then a liveness sweep evicts
// every silent survivor while the tick loop keeps running. At each
// quiescent point the three participant counters must reconcile:
//
//	Participants() == live RemoteHealth entries == attached − closed − evicted
//
// Forcing SendShards past GOMAXPROCS keeps the sender goroutines and
// the publish barrier in play even on a single-proc runner.
func TestShardChurnFlashCrowd(t *testing.T) {
	const (
		attachers   = 4
		perAttacher = 40
	)
	clock := newFakeClock()
	var (
		attached, closed, evicted atomic.Int64
	)
	desk := display.NewDesktop(640, 480)
	win := desk.CreateWindow(1, region.XYWH(20, 20, 300, 220))
	h, err := New(Config{
		Desktop:       desk,
		Now:           clock.Now,
		SendShards:    4,
		RemoteTimeout: 2 * time.Second,
		OnEvict:       func(RemoteHealth) { evicted.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	// Desktop owner: paint + Tick continuously. Only this goroutine
	// touches window pixels (UDP attach pushes no initial state, so the
	// flash crowd is safe against concurrent paint by design).
	stopTick := make(chan struct{})
	var tickWG sync.WaitGroup
	tickWG.Add(1)
	go func() {
		defer tickWG.Done()
		ty := workload.NewTyping(win, 48, 5)
		for {
			select {
			case <-stopTick:
				return
			default:
			}
			ty.Step()
			if err := h.Tick(); err != nil {
				return
			}
		}
	}()

	// Flash crowd: every attacher dumps its whole population as fast as
	// it can, closing every third remote right after it lands.
	var churnWG sync.WaitGroup
	for g := 0; g < attachers; g++ {
		churnWG.Add(1)
		go func(g int) {
			defer churnWG.Done()
			for i := 0; i < perAttacher; i++ {
				a, b := transport.Pipe(transport.LinkConfig{}, transport.LinkConfig{})
				r, err := h.AttachPacketConn(fmt.Sprintf("crowd-%d-%d", g, i), a, PacketOptions{})
				if err != nil {
					t.Errorf("attach: %v", err)
					return
				}
				attached.Add(1)
				if i%3 == 0 {
					if err := r.Close(); err != nil {
						t.Errorf("close: %v", err)
					}
					_ = b.Close()
					closed.Add(1)
				}
			}
		}(g)
	}
	churnWG.Wait()

	// Quiescent point one: churn done, clock frozen (no evictions yet),
	// tick loop still running. The counters must already agree.
	wantLive := attached.Load() - closed.Load()
	if got := int64(h.Participants()); got != wantLive {
		t.Fatalf("Participants() = %d after churn, want attached−closed = %d", got, wantLive)
	}
	live := 0
	for _, hs := range h.RemoteHealth() {
		if hs.State != HealthEvicted {
			live++
		}
	}
	if int64(live) != wantLive {
		t.Fatalf("RemoteHealth reports %d live remotes, want %d", live, wantLive)
	}

	// Liveness phase: every surviving remote has been silent since
	// attach, so advancing the clock past RemoteTimeout makes the sweep
	// evict all of them — concurrent with the still-running tick loop.
	clock.Advance(3 * time.Second)
	deadline := time.Now().Add(5 * time.Second)
	for h.Participants() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("sweep left %d participants past the liveness timeout", h.Participants())
		}
		time.Sleep(time.Millisecond)
	}
	close(stopTick)
	tickWG.Wait()

	// Final reconciliation: everyone is accounted for exactly once.
	if got, want := evicted.Load(), attached.Load()-closed.Load(); got != want {
		t.Fatalf("evicted %d remotes, want attached−closed = %d", got, want)
	}
	if got := h.Participants(); got != 0 {
		t.Fatalf("Participants() = %d after sweep, want 0", got)
	}
	for _, hs := range h.RemoteHealth() {
		if hs.State != HealthEvicted {
			t.Fatalf("post-sweep RemoteHealth still lists %q in state %v", hs.ID, hs.State)
		}
	}
}

// recordSink is a captureSink that concatenates everything shipped, in
// order — the per-remote wire transcript for the parity test. Each
// remote owns one sink and only its shard's sender goroutine ships to
// it; the Tick barrier orders those writes before the test's reads.
type recordSink struct{ buf bytes.Buffer }

func (c *recordSink) ship(p []byte) error { c.buf.Write(p); return nil }
func (c *recordSink) shipBatch(ps [][]byte) (int, error) {
	for _, p := range ps {
		c.buf.Write(p)
	}
	return len(ps), nil
}
func (c *recordSink) backlogged(int) bool        { return false }
func (c *recordSink) queued() int                { return 0 }
func (c *recordSink) stalled() time.Duration     { return 0 }
func (c *recordSink) drainStats() (int64, int64) { return 0, 0 }
func (c *recordSink) close() error               { return nil }

// runShardParity drives one deterministic session — seeded entropy,
// virtual clock, fixed attach order, two mid-session leavers — and
// returns each survivor's full wire transcript.
func runShardParity(t *testing.T, shards int) map[string][]byte {
	t.Helper()
	clock := newFakeClock()
	seed := uint32(0x2545F491)
	entropy := func() uint32 {
		seed = seed*1664525 + 1013904223
		return seed
	}
	desk := display.NewDesktop(320, 240)
	win := desk.CreateWindow(1, region.XYWH(10, 10, 220, 160))
	h, err := New(Config{
		Desktop:    desk,
		Now:        clock.Now,
		Entropy:    entropy,
		SendShards: shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	const viewers = 12
	sinks := make(map[string]*recordSink, viewers)
	remotes := make([]*Remote, 0, viewers)
	for i := 0; i < viewers; i++ {
		id := fmt.Sprintf("par-%02d", i)
		cs := &recordSink{}
		r := h.newRemote(id, uint16(i), cs)
		if err := h.addRemote(r); err != nil {
			t.Fatal(err)
		}
		sinks[id] = cs
		remotes = append(remotes, r)
	}

	ty := workload.NewTyping(win, 96, 11)
	for step := 0; step < 10; step++ {
		if step == 5 {
			// Two leavers mid-session; the survivors' streams must not
			// notice, whichever shard the leavers lived on.
			if err := remotes[3].Close(); err != nil {
				t.Fatal(err)
			}
			if err := remotes[7].Close(); err != nil {
				t.Fatal(err)
			}
		}
		ty.Step()
		clock.Advance(100 * time.Millisecond)
		if err := h.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}

	out := make(map[string][]byte, viewers-2)
	for id, cs := range sinks {
		if id == "par-03" || id == "par-07" {
			continue
		}
		out[id] = append([]byte(nil), cs.buf.Bytes()...)
	}
	return out
}

// TestShardByteStreamParity is the replay-identity proof at the Remote
// level: the same seeded session produces byte-identical per-survivor
// wire transcripts with fan-out inline (SendShards=1) and spread across
// four sender goroutines (SendShards=4). Per-remote streams depend only
// on per-remote packetizer state and the shared prepared batch, never
// on cross-remote send order.
func TestShardByteStreamParity(t *testing.T) {
	single := runShardParity(t, 1)
	sharded := runShardParity(t, 4)
	if len(single) != len(sharded) {
		t.Fatalf("survivor sets differ: %d vs %d", len(single), len(sharded))
	}
	for id, want := range single {
		got, ok := sharded[id]
		if !ok {
			t.Fatalf("survivor %q missing from the sharded run", id)
		}
		if len(want) == 0 {
			t.Fatalf("survivor %q shipped no bytes; the parity check is vacuous", id)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("survivor %q wire bytes diverge between 1 and 4 shards (%d vs %d bytes)",
				id, len(want), len(got))
		}
	}
}
