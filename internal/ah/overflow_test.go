package ah

import (
	"bytes"
	"testing"
	"time"

	"appshare/internal/participant"
	"appshare/internal/region"
	"appshare/internal/transport"
	"appshare/internal/workload"
)

// TestOverflowRepairConverges forces receive-queue overflow (tiny inbox)
// with NACK repair and checks final convergence.
func TestOverflowRepairConverges(t *testing.T) {
	h, w := newHost(t, Config{Retransmissions: true, RetransLog: 16384})
	defer h.Close()
	hostConn, partConn := transport.Pipe(
		transport.LinkConfig{Seed: 41, QueueLen: 64}, // tiny: overflows under bursts
		transport.LinkConfig{Seed: 51})
	p := participant.New(participant.Config{})
	go func() {
		for {
			pkt, err := partConn.Recv()
			if err != nil {
				return
			}
			_ = p.HandlePacket(pkt)
		}
	}()
	if _, err := h.AttachPacketConn("x", hostConn, PacketOptions{}); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		ticker := time.NewTicker(10 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				if nack, err := p.BuildNACK(); err == nil && nack != nil {
					_ = partConn.Send(nack)
				}
				if p.NeedsRefresh() {
					if pli, err := p.BuildPLI(); err == nil {
						_ = partConn.Send(pli)
					}
				}
			}
		}
	}()
	pli, _ := p.BuildPLI()
	partConn.Send(pli)
	settle()

	ty := workload.NewTyping(w, 48, 9)
	vid := workload.NewVideoRegion(w, region.XYWH(300, 250, 120, 90), 11)
	for i := 0; i < 150; i++ {
		if i%3 == 0 {
			ty.Step()
		} else if i%3 == 2 {
			vid.Step()
		}
		if err := h.Tick(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Quiesce.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if err := h.Tick(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(100 * time.Millisecond)
		if len(p.MissingSequences()) == 0 && !p.NeedsRefresh() {
			break
		}
	}
	time.Sleep(300 * time.Millisecond)
	h.Tick()
	time.Sleep(300 * time.Millisecond)

	want := w.Snapshot()
	got := p.WindowImage(w.ID())
	if got == nil {
		t.Fatal("no window")
	}
	if !bytes.Equal(want.Pix, got.Pix) {
		n, minY, maxY, minX, maxX := 0, 1<<30, 0, 1<<30, 0
		width := want.Bounds().Dx()
		for j := range want.Pix {
			if want.Pix[j] != got.Pix[j] {
				n++
				px := j / 4
				x, y := px%width, px/width
				if y < minY {
					minY = y
				}
				if y > maxY {
					maxY = y
				}
				if x < minX {
					minX = x
				}
				if x > maxX {
					maxX = x
				}
			}
		}
		t.Fatalf("diverged: %d bytes, x %d..%d y %d..%d (missing %d, needsRefresh %v)",
			n, minX, maxX, minY, maxY, len(p.MissingSequences()), p.NeedsRefresh())
	}
}
