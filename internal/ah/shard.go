package ah

import (
	"sync"
	"sync/atomic"

	"appshare/internal/capture"
)

// Sharded send path (see DESIGN.md "Sharded send path"). The remote set
// is split across N shards, each with its own lock and a persistent
// sender goroutine. Tick prepares the batch once and publishes it to
// every shard; deliveries to different shards proceed in parallel, and
// attach/detach/feedback on one shard no longer contends with fan-out on
// another.
//
// Lock order: tickMu → h.mu → shard.mu → capMu. Global operations that
// visit every shard (uniqueness scans, snapshots, Close) hold h.mu or
// nothing and take the shard locks one at a time; no path ever holds two
// shard locks at once.

// shard owns one slice of the remote set.
type shard struct {
	mu      sync.Mutex
	remotes map[*Remote]struct{}
	// size mirrors len(remotes) so fan-out can skip empty shards without
	// taking the lock.
	size atomic.Int32
	// refreshers is the per-tick scratch list of remotes whose latched
	// PLIs this tick must answer. It is written by the deliver phase and
	// read by the refresh phase; the fan-out barrier (shardWork.wg)
	// orders the two, so the slice is reused tick after tick without
	// reallocating.
	refreshers []*Remote
	// work feeds the shard's sender goroutine. Unbuffered: the fan-out
	// publish either hands the work descriptor to the sender or (when
	// the host is closing and the sender may be gone) runs it inline.
	work chan *shardWork
	// pw is the shard's pooled work descriptor. The barrier guarantees
	// at most one outstanding fan-out per shard, so one descriptor per
	// shard is reused for every tick of the session.
	pw *shardWork
}

// Fan-out phases.
const (
	// phaseDeliver fans the tick's prepared batch to every remote on the
	// shard and collects the refreshers latched since the last tick.
	phaseDeliver = iota
	// phaseRefresh answers the collected refreshers with the shared
	// full-refresh preparation (encoded once for all shards).
	phaseRefresh
)

// shardWork is one shard's slice of a fan-out. err carries the shard's
// first delivery error back to the Tick goroutine; the WaitGroup barrier
// publishes it (wg.Wait happens-after wg.Done).
type shardWork struct {
	s     *shard
	phase int
	batch *capture.Batch
	prep  *preparedBatch
	err   error
	wg    *sync.WaitGroup
}

// sender is the persistent per-shard delivery goroutine. It parks on the
// work channel between ticks and exits when the host closes. A host with
// one shard starts no senders at all — fan-out runs inline on the Tick
// goroutine, which is exactly the pre-sharding behavior.
func (h *Host) sender(s *shard) {
	for {
		select {
		case w := <-s.work:
			h.runShardWork(w)
			w.wg.Done()
		case <-h.senderStop:
			return
		}
	}
}

// runShardWork executes one shard's slice of a fan-out phase under the
// shard lock. Sending (sequence-number stamping plus the wire write)
// happens entirely under that lock — the per-stream ordering invariant
// every fan-out path shares; see the note on BroadcastExtension.
func (h *Host) runShardWork(w *shardWork) {
	s := w.s
	s.mu.Lock()
	defer s.mu.Unlock()
	switch w.phase {
	case phaseDeliver:
		s.refreshers = s.refreshers[:0]
		for r := range s.remotes {
			if err := r.deliver(w.batch, w.prep); err != nil && w.err == nil {
				w.err = err
			}
			if r.refreshRequested {
				// Serve the PLI latched since the last tick (or the resync
				// a recovering degraded remote is owed), after the journal
				// batch so the refresh snapshot is consistent with
				// everything already emitted.
				r.refreshRequested = false
				s.refreshers = append(s.refreshers, r)
			}
		}
	case phaseRefresh:
		for i, r := range s.refreshers {
			s.refreshers[i] = nil
			// The shard lock was released between the phases (the refresh
			// capture runs outside all shard locks), so re-check that the
			// remote is still attached before stamping packets for it — a
			// refresher collected in the deliver phase may have been
			// evicted or closed in the gap, and refresh traffic toward it
			// would land on a torn-down sink (and count against a remote
			// the host already reported gone).
			if !h.cfg.DebugDisableEvictGates {
				if _, ok := s.remotes[r]; !ok || r.closed {
					continue
				}
			}
			// Tier coherence: a TierScaled refresher re-encodes through the
			// degraded path (fullRefresh routes it), the rest share this
			// phase's full-resolution preparation.
			if r.effectiveTierLocked() == TierScaled {
				if err := r.fullRefresh(); err != nil && w.err == nil {
					w.err = err
				}
				continue
			}
			r.pending.Clear()
			r.pendingPointer = false
			// allowRefs false: a refresh answers a viewer whose state —
			// possibly including its tile dictionary — cannot be trusted.
			// The seen-set restarts empty and the refresh's lossless
			// updates reseed it, dropping any pre-desync entries the
			// viewer may no longer hold.
			r.tileReset()
			if err := r.sendPrepared(r.tileCompose(w.prep, false)); err != nil && w.err == nil {
				w.err = err
			}
		}
		s.refreshers = s.refreshers[:0]
	}
}

// fanout publishes one phase to every shard that has work and waits on
// the barrier. It reports the first per-shard error and whether any
// shard collected refreshers (meaningful after phaseDeliver).
func (h *Host) fanout(phase int, batch *capture.Batch, prep *preparedBatch) (error, bool) {
	var wg sync.WaitGroup
	for _, s := range h.shards {
		switch phase {
		case phaseDeliver:
			if s.size.Load() == 0 {
				continue
			}
		case phaseRefresh:
			// Safe to read unlocked: written by the deliver phase, ordered
			// by the deliver barrier.
			if len(s.refreshers) == 0 {
				continue
			}
		}
		w := s.pw
		w.phase, w.batch, w.prep, w.err, w.wg = phase, batch, prep, nil, &wg
		if len(h.shards) == 1 {
			h.runShardWork(w)
			continue
		}
		wg.Add(1)
		select {
		case s.work <- w:
		case <-h.senderStop:
			// The host is closing and the sender may already have exited:
			// run the shard inline so the barrier cannot hang. The closed
			// sinks turn the sends into errors, which Tick reports.
			h.runShardWork(w)
			wg.Done()
		}
	}
	wg.Wait()
	var firstErr error
	refreshers := false
	for _, s := range h.shards {
		if s.pw.err != nil && firstErr == nil {
			firstErr = s.pw.err
		}
		if len(s.refreshers) > 0 {
			refreshers = true
		}
	}
	return firstErr, refreshers
}

// shardFor assigns a new remote to a shard round-robin, so any join
// pattern — including a flash crowd landing in one tick — spreads
// evenly.
func (h *Host) shardFor() *shard {
	return h.shards[(h.nextShard.Add(1)-1)%uint64(len(h.shards))]
}
