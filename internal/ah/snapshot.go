package ah

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"appshare/internal/capture"
	"appshare/internal/codec"
	"appshare/internal/display"
	"appshare/internal/region"
	"appshare/internal/rtp"
	"appshare/internal/transport"
	"appshare/internal/wire"
)

// Live session migration (see DESIGN.md "Session broker & migration").
// SnapshotSession serializes everything a host owes its viewers — the
// framebuffer, each remote's RTP stream position, tile-store seen-set,
// pending-region and retransmission state, health/ladder clocks — and
// RestoreSession rebuilds a host that continues the session so exactly
// that viewers cannot tell the handoff happened: the next packet each
// viewer receives is byte-identical to the one the original host would
// have sent. Resumed tile-store viewers keep their dictionaries, so a
// migration costs zero full-refresh encodes.

// SessionSnapshot is the migratable state of one sharing session.
type SessionSnapshot struct {
	// Epoch is the original host's stream restart-epoch. The restored
	// host announces the SAME epoch in its StreamDescriptors, so
	// downstream relays keep their caches across the handoff.
	Epoch uint32
	// StreamID names the session's remoting stream.
	StreamID uint32
	// NextShard is the round-robin attach cursor, so attaches after a
	// restore continue the original shard assignment sequence.
	NextShard uint64
	// Desktop is the full framebuffer and window-manager state.
	Desktop display.DesktopState
	// Remotes carries one entry per attached remote, sorted by ID.
	Remotes []RemoteSnapshot
}

// RetransEntry is one logged packet of a remote's retransmission log,
// in log (eviction) order.
type RetransEntry struct {
	Seq uint16
	Pkt []byte
}

// RemoteSnapshot is the serialized state of one attached remote.
type RemoteSnapshot struct {
	ID          string
	UserID      uint16
	ShardIndex  uint32
	ForwardOnly bool

	// Packetizer is the RTP stream position (SSRC, next sequence,
	// timestamp origin) the restored remote continues from.
	Packetizer rtp.PacketizerState

	// TileDictCapacity is the remote's negotiated tile dictionary bound
	// (0 = tile store not negotiated); TileKeys is its seen-set in
	// eviction order; TileRefs the lifetime reference-substitution count.
	TileDictCapacity uint32
	TileKeys         []codec.TileKey
	TileRefs         uint64

	// Deferred screen state (Section 7).
	Pending        []region.Rect
	PendingPointer bool
	Deferrals      uint64

	// Health state and clocks (health.go). Times are Unix nanoseconds,
	// 0 meaning "never".
	Health           int32
	HealthSince      int64
	AttachedAt       int64
	LastHeard        int64
	LastRRAt         int64
	RTT              int64
	BacklogHighSince int64
	DeferStreak      int32
	MaxDeferStreak   int32
	NeedResync       bool

	// Quality-ladder state and clocks (ladder.go).
	Tier            uint8
	TierSince       int64
	TierPinned      bool
	CongestedSince  int64
	CleanSince      int64
	LastPromoteAt   int64
	PromoteWait     int64
	TierTransitions uint64
	TierFlaps       uint64
	DecimTicks      int32

	// Retransmission log in queue order (oldest first).
	Retrans []RetransEntry

	// RTCP stream counters and the last receiver report.
	SentPackets    uint64
	SentOctets     uint64
	LastRRValid    bool
	LastRRFraction uint8
	LastRRCumLost  uint32
	LastRRJitter   uint32
	LastRRHighSeq  uint32

	// PLI service state.
	LastRefresh      int64
	AbsorbedPLIs     uint64
	RefreshRequested bool
}

// timeToNano flattens a time for the snapshot; the zero time maps to 0.
func timeToNano(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

// nanoToTime is timeToNano's inverse.
func nanoToTime(n int64) time.Time {
	if n == 0 {
		return time.Time{}
	}
	return time.Unix(0, n)
}

// SnapshotSession captures the host's migratable session state. It
// serializes against Tick (the snapshot is always a between-ticks
// checkpoint) and takes each shard lock one at a time; it mutates
// nothing, so a host that is heartbeat-snapshotted every tick produces
// exactly the wire bytes it would have produced unobserved.
func (h *Host) SnapshotSession() (*SessionSnapshot, error) {
	h.tickMu.Lock()
	defer h.tickMu.Unlock()
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil, ErrHostClosed
	}
	h.mu.Unlock()

	snap := &SessionSnapshot{
		Epoch:     h.epoch,
		StreamID:  h.cfg.StreamID,
		NextShard: h.nextShard.Load(),
	}
	// The desktop is read under capMu: attach-time full refreshes
	// capture outside tickMu, and both walk the same window buffers.
	h.capMu.Lock()
	snap.Desktop = h.cfg.Desktop.State()
	h.capMu.Unlock()

	for si, s := range h.shards {
		s.mu.Lock()
		for r := range s.remotes {
			if r.closed {
				continue
			}
			snap.Remotes = append(snap.Remotes, r.snapshotLocked(uint32(si)))
		}
		s.mu.Unlock()
	}
	sort.Slice(snap.Remotes, func(i, j int) bool { return snap.Remotes[i].ID < snap.Remotes[j].ID })
	return snap, nil
}

// snapshotLocked serializes one remote. Shard lock held.
func (r *Remote) snapshotLocked(shardIndex uint32) RemoteSnapshot {
	rs := RemoteSnapshot{
		ID:          r.id,
		UserID:      r.userID,
		ShardIndex:  shardIndex,
		ForwardOnly: r.forwardOnly,
		Packetizer:  r.pz.State(),

		TileRefs:       r.tileRefs,
		Pending:        r.pending.Rects(),
		PendingPointer: r.pendingPointer,
		Deferrals:      r.deferrals,

		Health:           int32(r.health),
		HealthSince:      timeToNano(r.healthSince),
		AttachedAt:       timeToNano(r.attachedAt),
		LastHeard:        timeToNano(r.lastHeard),
		LastRRAt:         timeToNano(r.lastRRAt),
		RTT:              int64(r.rtt),
		BacklogHighSince: timeToNano(r.backlogHighSince),
		DeferStreak:      int32(r.deferStreak),
		MaxDeferStreak:   int32(r.maxDeferStreak),
		NeedResync:       r.needResync,

		Tier:            uint8(r.tier),
		TierSince:       timeToNano(r.tierSince),
		TierPinned:      r.tierPinned,
		CongestedSince:  timeToNano(r.congestedSince),
		CleanSince:      timeToNano(r.cleanSince),
		LastPromoteAt:   timeToNano(r.lastPromoteAt),
		PromoteWait:     int64(r.promoteWait),
		TierTransitions: r.tierTransitions,
		TierFlaps:       r.tierFlaps,
		DecimTicks:      int32(r.decimTicks),

		SentPackets: r.sentPackets,
		SentOctets:  r.sentOctets,

		LastRefresh:      timeToNano(r.lastRefresh),
		AbsorbedPLIs:     r.absorbedPLIs,
		RefreshRequested: r.refreshRequested,
	}
	if r.tileSeen != nil {
		rs.TileDictCapacity = uint32(r.tileSeen.Capacity())
		rs.TileKeys = r.tileSeen.Keys()
	}
	if r.lastRR.Valid {
		rs.LastRRValid = true
		rs.LastRRFraction = r.lastRR.FractionLost
		rs.LastRRCumLost = r.lastRR.CumulativeLost
		rs.LastRRJitter = r.lastRR.Jitter
		rs.LastRRHighSeq = r.lastRR.HighestSeq
	}
	for _, seq := range r.retransQ {
		rs.Retrans = append(rs.Retrans, RetransEntry{Seq: seq, Pkt: r.retrans[seq]})
	}
	return rs
}

// ErrNotRestorable is returned by RestoreSession on a host that already
// has attached remotes or has ticked its own desktop.
var ErrNotRestorable = errors.New("ah: restore requires a fresh host with no remotes")

// RestoreSession rebuilds the snapshotted session on this host. The
// host must be freshly constructed (no attached remotes). Its desktop
// is REPLACED by the snapshot's — callers re-resolve window pointers
// via Desktop() afterward — and its capture pipeline restarts primed,
// so the first post-restore Tick emits no WindowManagerInfo the
// viewers already hold. Restored remotes are created detached (their
// transports died with the old host); bind each one with
// ResumePacketConn before the next Tick. No entropy is drawn anywhere
// on this path: the restored session's wire bytes continue the
// original's exactly.
func (h *Host) RestoreSession(snap *SessionSnapshot) error {
	desk, err := display.NewDesktopFromState(snap.Desktop)
	if err != nil {
		return fmt.Errorf("ah: restore desktop: %w", err)
	}
	h.tickMu.Lock()
	defer h.tickMu.Unlock()
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return ErrHostClosed
	}
	h.mu.Unlock()
	if h.nRemotes.Load() != 0 {
		return ErrNotRestorable
	}

	cfg := h.cfg
	cfg.Desktop = desk
	pipeline, err := capture.New(desk, cfg.Capture)
	if err != nil {
		return fmt.Errorf("ah: restore pipeline: %w", err)
	}
	// The snapshot was taken after a completed tick: the original
	// pipeline had already transmitted the current window-manager state,
	// so the restored one starts primed rather than fresh.
	pipeline.Prime()

	h.capMu.Lock()
	h.cfg = cfg
	h.cfg.StreamID = snap.StreamID
	h.pipeline = pipeline
	h.capMu.Unlock()
	h.epoch = snap.Epoch
	h.nextShard.Store(snap.NextShard)

	for i := range snap.Remotes {
		rs := &snap.Remotes[i]
		if err := h.restoreRemote(rs); err != nil {
			return err
		}
	}
	return nil
}

// restoreRemote rebuilds one remote in detached (null-sink) state.
func (h *Host) restoreRemote(rs *RemoteSnapshot) error {
	if int(rs.Tier) > int(TierKeyframeOnly) {
		return fmt.Errorf("ah: restore remote %q: bad tier %d", rs.ID, rs.Tier)
	}
	sh := h.shards[int(rs.ShardIndex)%len(h.shards)]
	r := &Remote{
		host:        h,
		sh:          sh,
		id:          rs.ID,
		userID:      rs.UserID,
		sink:        nullSink{},
		pz:          rtp.NewPacketizerFromState(rs.Packetizer),
		pending:     region.NewSet(),
		forwardOnly: rs.ForwardOnly,

		tileRefs:       rs.TileRefs,
		pendingPointer: rs.PendingPointer,
		deferrals:      rs.Deferrals,

		health:           HealthState(rs.Health),
		healthSince:      nanoToTime(rs.HealthSince),
		attachedAt:       nanoToTime(rs.AttachedAt),
		lastHeard:        nanoToTime(rs.LastHeard),
		lastRRAt:         nanoToTime(rs.LastRRAt),
		rtt:              time.Duration(rs.RTT),
		backlogHighSince: nanoToTime(rs.BacklogHighSince),
		deferStreak:      int(rs.DeferStreak),
		maxDeferStreak:   int(rs.MaxDeferStreak),
		needResync:       rs.NeedResync,

		tier:            QualityTier(rs.Tier),
		tierSince:       nanoToTime(rs.TierSince),
		tierPinned:      rs.TierPinned,
		congestedSince:  nanoToTime(rs.CongestedSince),
		cleanSince:      nanoToTime(rs.CleanSince),
		lastPromoteAt:   nanoToTime(rs.LastPromoteAt),
		promoteWait:     time.Duration(rs.PromoteWait),
		tierTransitions: rs.TierTransitions,
		tierFlaps:       rs.TierFlaps,
		decimTicks:      int(rs.DecimTicks),

		sentPackets: rs.SentPackets,
		sentOctets:  rs.SentOctets,

		lastRefresh:      nanoToTime(rs.LastRefresh),
		absorbedPLIs:     rs.AbsorbedPLIs,
		refreshRequested: rs.RefreshRequested,
	}
	for _, rect := range rs.Pending {
		r.pending.Add(rect)
	}
	if rs.LastRRValid {
		r.lastRR = ReceptionQuality{
			FractionLost:   rs.LastRRFraction,
			CumulativeLost: rs.LastRRCumLost,
			Jitter:         rs.LastRRJitter,
			HighestSeq:     rs.LastRRHighSeq,
			Valid:          true,
		}
	}
	if rs.TileDictCapacity > 0 {
		if h.cfg.TileStore == nil {
			return fmt.Errorf("ah: restore remote %q: snapshot has a tile seen-set but the host has no tile store", rs.ID)
		}
		// Replaying the seen-set keys in eviction order reproduces the
		// dictionary's residency AND its eviction order — the viewer's
		// copy stays in lockstep, so no refresh is owed after resume.
		r.tileSeen = codec.NewTileDict(int(rs.TileDictCapacity))
		for _, k := range rs.TileKeys {
			r.tileSeen.Learn(k, nil)
		}
	}
	if h.cfg.Retransmissions {
		r.retrans = make(map[uint16][]byte)
		for _, e := range rs.Retrans {
			pkt := append([]byte(nil), e.Pkt...)
			r.retrans[e.Seq] = pkt
			r.retransQ = append(r.retransQ, e.Seq)
		}
	}

	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return ErrHostClosed
	}
	sh.mu.Lock()
	for o := range sh.remotes {
		if o.id == r.id {
			sh.mu.Unlock()
			return fmt.Errorf("ah: restore remote %q: already attached", r.id)
		}
	}
	sh.remotes[r] = struct{}{}
	sh.size.Add(1)
	sh.mu.Unlock()
	h.nRemotes.Add(1)
	return nil
}

// ResumePacketConn binds a transport to a remote restored by
// RestoreSession, replacing its null sink and starting the feedback
// pump. Unlike AttachPacketConn nothing is announced and nothing is
// pushed: the viewer keeps its decoder and tile-dictionary state, and
// the next packet it receives continues the original stream. The
// remote must exist and still be detached.
func (h *Host) ResumePacketConn(id string, conn transport.PacketConn, opts PacketOptions) (*Remote, error) {
	r := h.FindRemote(id)
	if r == nil {
		return nil, fmt.Errorf("ah: resume %q: %w", id, ErrUnknownRemote)
	}
	s := &packetSink{conn: conn, rate: opts.BytesPerSecond, now: h.cfg.Now}
	if bs, ok := conn.(transport.BatchSender); ok {
		s.batch = bs
	}
	r.sh.mu.Lock()
	if r.closed {
		r.sh.mu.Unlock()
		return nil, fmt.Errorf("ah: resume %q: remote closed", id)
	}
	if _, detached := r.sink.(nullSink); !detached {
		r.sh.mu.Unlock()
		return nil, fmt.Errorf("ah: resume %q: remote already has a transport", id)
	}
	r.sink = s
	r.sh.mu.Unlock()
	go h.pumpPackets(r, conn)
	return r, nil
}

// Epoch returns the host's stream restart-epoch (the StreamDescriptor
// Epoch field): preserved across RestoreSession, so relays keep their
// caches through a migration.
func (h *Host) Epoch() uint32 { return h.epoch }

// nullSink is the placeholder transport of a restored-but-not-resumed
// remote. Shipping into it is an error — a Tick must not run between
// RestoreSession and ResumePacketConn, or viewers would silently miss
// packets the sequence space claims were sent.
type nullSink struct{}

var errNotResumed = errors.New("ah: remote restored but not resumed")

func (nullSink) ship([]byte) error               { return errNotResumed }
func (nullSink) shipBatch([][]byte) (int, error) { return 0, errNotResumed }
func (nullSink) backlogged(int) bool             { return false }
func (nullSink) queued() int                     { return 0 }
func (nullSink) stalled() time.Duration          { return 0 }
func (nullSink) drainStats() (int64, int64)      { return 0, 0 }
func (nullSink) close() error                    { return nil }

// --- snapshot wire encoding ------------------------------------------------

// sessionSnapshotVersion guards the Marshal encoding.
const sessionSnapshotVersion = 1

// Marshal encodes the snapshot for a broker heartbeat or migration
// transfer. The encoding is deterministic: equal snapshots produce
// equal bytes.
func (s *SessionSnapshot) Marshal() ([]byte, error) {
	w := wire.NewWriter(64 + len(s.Desktop.Windows)*4096)
	w.Uint8(sessionSnapshotVersion)
	w.Uint32(s.Epoch)
	w.Uint32(s.StreamID)
	w.Uint64(s.NextShard)
	appendDesktopState(w, &s.Desktop)
	w.Uint32(uint32(len(s.Remotes)))
	for i := range s.Remotes {
		if err := appendRemoteSnapshot(w, &s.Remotes[i]); err != nil {
			return nil, err
		}
	}
	return w.Bytes(), nil
}

func appendBool(w *wire.Writer, b bool) {
	if b {
		w.Uint8(1)
	} else {
		w.Uint8(0)
	}
}

func appendBytes(w *wire.Writer, b []byte) {
	w.Uint32(uint32(len(b)))
	_, _ = w.Write(b)
}

func appendRect(w *wire.Writer, r region.Rect) {
	w.Int32(int32(r.Left))
	w.Int32(int32(r.Top))
	w.Int32(int32(r.Width))
	w.Int32(int32(r.Height))
}

func appendDesktopState(w *wire.Writer, d *display.DesktopState) {
	w.Int32(int32(d.Width))
	w.Int32(int32(d.Height))
	w.Uint16(d.NextID)
	w.Uint64(d.Generation)
	w.Int32(int32(d.CursorX))
	w.Int32(int32(d.CursorY))
	w.Int32(int32(d.SpriteW))
	w.Int32(int32(d.SpriteH))
	appendBytes(w, d.SpritePix)
	w.Uint16(d.FocusID)
	w.Uint16(uint16(len(d.Windows)))
	for i := range d.Windows {
		win := &d.Windows[i]
		w.Uint16(win.ID)
		w.Uint8(win.Group)
		appendRect(w, win.Bounds)
		appendBool(w, win.Shared)
		appendBytes(w, win.Pix)
	}
}

func appendRemoteSnapshot(w *wire.Writer, rs *RemoteSnapshot) error {
	if len(rs.ID) > 0xFFFF {
		return fmt.Errorf("ah: snapshot remote id %q too long", rs.ID)
	}
	w.Uint16(uint16(len(rs.ID)))
	_, _ = w.Write([]byte(rs.ID))
	w.Uint16(rs.UserID)
	w.Uint32(rs.ShardIndex)
	appendBool(w, rs.ForwardOnly)

	w.Uint32(rs.Packetizer.SSRC)
	w.Uint8(rs.Packetizer.PT)
	w.Uint16(rs.Packetizer.Seq)
	w.Uint64(uint64(rs.Packetizer.ClockOrigin))
	w.Uint32(rs.Packetizer.ClockOffset)

	w.Uint32(rs.TileDictCapacity)
	w.Uint32(uint32(len(rs.TileKeys)))
	for _, k := range rs.TileKeys {
		w.Int32(int32(k.W))
		w.Int32(int32(k.H))
		w.Uint64(k.H1)
		w.Uint64(k.H2)
	}
	w.Uint64(rs.TileRefs)

	w.Uint32(uint32(len(rs.Pending)))
	for _, r := range rs.Pending {
		appendRect(w, r)
	}
	appendBool(w, rs.PendingPointer)
	w.Uint64(rs.Deferrals)

	w.Int32(rs.Health)
	w.Uint64(uint64(rs.HealthSince))
	w.Uint64(uint64(rs.AttachedAt))
	w.Uint64(uint64(rs.LastHeard))
	w.Uint64(uint64(rs.LastRRAt))
	w.Uint64(uint64(rs.RTT))
	w.Uint64(uint64(rs.BacklogHighSince))
	w.Int32(rs.DeferStreak)
	w.Int32(rs.MaxDeferStreak)
	appendBool(w, rs.NeedResync)

	w.Uint8(rs.Tier)
	w.Uint64(uint64(rs.TierSince))
	appendBool(w, rs.TierPinned)
	w.Uint64(uint64(rs.CongestedSince))
	w.Uint64(uint64(rs.CleanSince))
	w.Uint64(uint64(rs.LastPromoteAt))
	w.Uint64(uint64(rs.PromoteWait))
	w.Uint64(rs.TierTransitions)
	w.Uint64(rs.TierFlaps)
	w.Int32(rs.DecimTicks)

	w.Uint32(uint32(len(rs.Retrans)))
	for _, e := range rs.Retrans {
		w.Uint16(e.Seq)
		appendBytes(w, e.Pkt)
	}

	w.Uint64(rs.SentPackets)
	w.Uint64(rs.SentOctets)
	appendBool(w, rs.LastRRValid)
	w.Uint8(rs.LastRRFraction)
	w.Uint32(rs.LastRRCumLost)
	w.Uint32(rs.LastRRJitter)
	w.Uint32(rs.LastRRHighSeq)

	w.Uint64(uint64(rs.LastRefresh))
	w.Uint64(rs.AbsorbedPLIs)
	appendBool(w, rs.RefreshRequested)
	return nil
}

// UnmarshalSessionSnapshot decodes a Marshal encoding.
func UnmarshalSessionSnapshot(b []byte) (*SessionSnapshot, error) {
	r := wire.NewReader(b)
	if v := r.Uint8(); r.Err() == nil && v != sessionSnapshotVersion {
		return nil, fmt.Errorf("ah: session snapshot version %d unsupported", v)
	}
	s := &SessionSnapshot{}
	s.Epoch = r.Uint32()
	s.StreamID = r.Uint32()
	s.NextShard = r.Uint64()
	if err := readDesktopState(r, &s.Desktop); err != nil {
		return nil, err
	}
	nRemotes := int(r.Uint32())
	for i := 0; i < nRemotes && r.Err() == nil; i++ {
		var rs RemoteSnapshot
		readRemoteSnapshot(r, &rs)
		s.Remotes = append(s.Remotes, rs)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("ah: session snapshot: %w", err)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("ah: session snapshot: %d trailing bytes", r.Len())
	}
	return s, nil
}

func readBool(r *wire.Reader) bool { return r.Uint8() != 0 }

func readBytes(r *wire.Reader) []byte {
	n := int(r.Uint32())
	if r.Err() != nil || n == 0 {
		return nil
	}
	b := r.Bytes(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

func readRect(r *wire.Reader) region.Rect {
	return region.Rect{
		Left:   int(r.Int32()),
		Top:    int(r.Int32()),
		Width:  int(r.Int32()),
		Height: int(r.Int32()),
	}
}

func readDesktopState(r *wire.Reader, d *display.DesktopState) error {
	d.Width = int(r.Int32())
	d.Height = int(r.Int32())
	d.NextID = r.Uint16()
	d.Generation = r.Uint64()
	d.CursorX = int(r.Int32())
	d.CursorY = int(r.Int32())
	d.SpriteW = int(r.Int32())
	d.SpriteH = int(r.Int32())
	d.SpritePix = readBytes(r)
	d.FocusID = r.Uint16()
	nWin := int(r.Uint16())
	for i := 0; i < nWin && r.Err() == nil; i++ {
		var w display.WindowState
		w.ID = r.Uint16()
		w.Group = r.Uint8()
		w.Bounds = readRect(r)
		w.Shared = readBool(r)
		w.Pix = readBytes(r)
		d.Windows = append(d.Windows, w)
	}
	return r.Err()
}

func readRemoteSnapshot(r *wire.Reader, rs *RemoteSnapshot) {
	idLen := int(r.Uint16())
	if id := r.Bytes(idLen); id != nil {
		rs.ID = string(id)
	}
	rs.UserID = r.Uint16()
	rs.ShardIndex = r.Uint32()
	rs.ForwardOnly = readBool(r)

	rs.Packetizer.SSRC = r.Uint32()
	rs.Packetizer.PT = r.Uint8()
	rs.Packetizer.Seq = r.Uint16()
	rs.Packetizer.ClockOrigin = int64(r.Uint64())
	rs.Packetizer.ClockOffset = r.Uint32()

	rs.TileDictCapacity = r.Uint32()
	nKeys := int(r.Uint32())
	for i := 0; i < nKeys && r.Err() == nil; i++ {
		rs.TileKeys = append(rs.TileKeys, codec.TileKey{
			W:  int(r.Int32()),
			H:  int(r.Int32()),
			H1: r.Uint64(),
			H2: r.Uint64(),
		})
	}
	rs.TileRefs = r.Uint64()

	nPending := int(r.Uint32())
	for i := 0; i < nPending && r.Err() == nil; i++ {
		rs.Pending = append(rs.Pending, readRect(r))
	}
	rs.PendingPointer = readBool(r)
	rs.Deferrals = r.Uint64()

	rs.Health = r.Int32()
	rs.HealthSince = int64(r.Uint64())
	rs.AttachedAt = int64(r.Uint64())
	rs.LastHeard = int64(r.Uint64())
	rs.LastRRAt = int64(r.Uint64())
	rs.RTT = int64(r.Uint64())
	rs.BacklogHighSince = int64(r.Uint64())
	rs.DeferStreak = r.Int32()
	rs.MaxDeferStreak = r.Int32()
	rs.NeedResync = readBool(r)

	rs.Tier = r.Uint8()
	rs.TierSince = int64(r.Uint64())
	rs.TierPinned = readBool(r)
	rs.CongestedSince = int64(r.Uint64())
	rs.CleanSince = int64(r.Uint64())
	rs.LastPromoteAt = int64(r.Uint64())
	rs.PromoteWait = int64(r.Uint64())
	rs.TierTransitions = r.Uint64()
	rs.TierFlaps = r.Uint64()
	rs.DecimTicks = r.Int32()

	nRetrans := int(r.Uint32())
	for i := 0; i < nRetrans && r.Err() == nil; i++ {
		var e RetransEntry
		e.Seq = r.Uint16()
		e.Pkt = readBytes(r)
		rs.Retrans = append(rs.Retrans, e)
	}

	rs.SentPackets = r.Uint64()
	rs.SentOctets = r.Uint64()
	rs.LastRRValid = readBool(r)
	rs.LastRRFraction = r.Uint8()
	rs.LastRRCumLost = r.Uint32()
	rs.LastRRJitter = r.Uint32()
	rs.LastRRHighSeq = r.Uint32()

	rs.LastRefresh = int64(r.Uint64())
	rs.AbsorbedPLIs = r.Uint64()
	rs.RefreshRequested = readBool(r)
}
