package remoting

import (
	"fmt"

	"appshare/internal/core"
	"appshare/internal/wire"
)

// Relay-cascade control messages (extension types 17 and 18, outside
// Table 1; see core.ExtensionRegistry and DESIGN.md "Relay cascade").
// A relay opens its upstream attachment with a RelaySubscribe naming
// the stream it wants forwarded — the RequestForward shape: subscribe
// to a stream id, not to a host. The origin (or parent relay) answers
// with the stream's endpoint descriptor, and re-announces the
// descriptor with the refresh-snapshot flag set ahead of every cached
// refresh it pushes, delimiting the snapshot's messages on the wire.
// Both are only exchanged with peers that negotiated the "relay" fmtp
// capability; everyone else ignores them per Section 5.1.2.

// RelaySubscribe flag bits.
const (
	// RelayWantRefresh asks the upstream to push a refresh snapshot
	// immediately after accepting the subscription, seeding the relay's
	// edge cache before its first viewer joins.
	RelayWantRefresh uint16 = 1 << 0
)

// RelaySubscribe (type 17, relay → origin) subscribes the sender to a
// stream's prepared batches. Viewers advertises the subscriber's
// current downstream fan-out (informational: origins MAY use it for
// admission or placement). The common header's Parameter and WindowID
// are zero on send and ignored on receive.
type RelaySubscribe struct {
	StreamID uint32
	Flags    uint16
	Viewers  uint16
}

// RelaySubscribeSize is the message-specific body: StreamID, Flags,
// Viewers.
const RelaySubscribeSize = 8

// Type implements Message.
func (m *RelaySubscribe) Type() core.MessageType { return core.TypeRelaySubscribe }

// Marshal encodes the message as a complete RTP payload. It always
// fits one packet; relay control never fragments.
func (m *RelaySubscribe) Marshal() ([]byte, error) {
	w := wire.NewWriter(core.HeaderSize + RelaySubscribeSize)
	core.Header{Type: core.TypeRelaySubscribe}.AppendTo(w)
	w.Uint32(m.StreamID)
	w.Uint16(m.Flags)
	w.Uint16(m.Viewers)
	return w.Bytes(), nil
}

func decodeRelaySubscribe(body []byte) (*RelaySubscribe, error) {
	if len(body) != RelaySubscribeSize {
		return nil, fmt.Errorf("%w: relay subscribe body %d, want %d", ErrTruncated, len(body), RelaySubscribeSize)
	}
	r := wire.NewReader(body)
	m := &RelaySubscribe{}
	m.StreamID = r.Uint32()
	m.Flags = r.Uint16()
	m.Viewers = r.Uint16()
	if err := r.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

// StreamDescriptor flag bits.
const (
	// DescriptorRefresh marks a descriptor that delimits a refresh
	// snapshot: the next Count remoting messages on this stream are a
	// complete full-refresh capture, cacheable as the stream's edge
	// refresh state.
	DescriptorRefresh uint8 = 1 << 0
)

// StreamDescriptor (type 18, origin → relay) describes one forwarded
// stream: its id, a monotonic epoch (bumped when the stream restarts,
// so a relay discards state across origin restarts), the desktop
// geometry and the remoting payload type the forwarded packets carry.
// With DescriptorRefresh set it additionally delimits an in-band
// refresh snapshot of Count messages.
type StreamDescriptor struct {
	StreamID      uint32
	Epoch         uint32
	Width, Height uint16
	RemotingPT    uint8
	Flags         uint8
	Count         uint16
}

// StreamDescriptorSize is the message-specific body: StreamID, Epoch,
// Width, Height, RemotingPT, Flags, Count.
const StreamDescriptorSize = 16

// Type implements Message.
func (m *StreamDescriptor) Type() core.MessageType { return core.TypeStreamDescriptor }

// Marshal encodes the message as a complete RTP payload.
func (m *StreamDescriptor) Marshal() ([]byte, error) {
	if m.RemotingPT > 0x7F {
		return nil, fmt.Errorf("remoting: stream descriptor payload type %d exceeds 7 bits", m.RemotingPT)
	}
	w := wire.NewWriter(core.HeaderSize + StreamDescriptorSize)
	core.Header{Type: core.TypeStreamDescriptor}.AppendTo(w)
	w.Uint32(m.StreamID)
	w.Uint32(m.Epoch)
	w.Uint16(m.Width)
	w.Uint16(m.Height)
	w.Uint8(m.RemotingPT)
	w.Uint8(m.Flags)
	w.Uint16(m.Count)
	return w.Bytes(), nil
}

func decodeStreamDescriptor(body []byte) (*StreamDescriptor, error) {
	if len(body) != StreamDescriptorSize {
		return nil, fmt.Errorf("%w: stream descriptor body %d, want %d", ErrTruncated, len(body), StreamDescriptorSize)
	}
	r := wire.NewReader(body)
	m := &StreamDescriptor{}
	m.StreamID = r.Uint32()
	m.Epoch = r.Uint32()
	m.Width = r.Uint16()
	m.Height = r.Uint16()
	m.RemotingPT = r.Uint8()
	m.Flags = r.Uint8()
	m.Count = r.Uint16()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if m.RemotingPT > 0x7F {
		return nil, fmt.Errorf("remoting: stream descriptor payload type %d exceeds 7 bits", m.RemotingPT)
	}
	if m.Flags&DescriptorRefresh == 0 && m.Count != 0 {
		return nil, fmt.Errorf("remoting: stream descriptor counts %d messages without the refresh flag", m.Count)
	}
	return m, nil
}
