package remoting

import (
	"errors"
	"reflect"
	"testing"

	"appshare/internal/core"
)

func sampleTileRef() *TileReference {
	return &TileReference{
		WindowID: 3, Left: 96, Top: 160, Width: 70, Height: 50, TileSize: 32,
		Tiles: []TileHash{
			{1, 2}, {3, 4}, {5, 6},
			{7, 8}, {9, 10}, {11, 12},
		},
	}
}

func TestTileReferenceRoundTrip(t *testing.T) {
	m := sampleTileRef()
	raw, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	wantLen := core.HeaderSize + TileRefHeaderSize + TileHashSize*len(m.Tiles)
	if len(raw) != wantLen {
		t.Fatalf("wire length = %d, want %d", len(raw), wantLen)
	}
	got, err := DecodePayload(raw)
	if err != nil {
		t.Fatal(err)
	}
	ref, ok := got.(*TileReference)
	if !ok {
		t.Fatalf("decoded %T, want *TileReference", got)
	}
	if !reflect.DeepEqual(ref, m) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", ref, m)
	}
	if cols, rows := ref.GridDims(); cols != 3 || rows != 2 {
		t.Fatalf("grid = %dx%d, want 3x2", cols, rows)
	}
	if b := ref.Bounds(); b.Min.X != 96 || b.Min.Y != 160 || b.Dx() != 70 || b.Dy() != 50 {
		t.Fatalf("bounds = %v", b)
	}
}

func TestTileReferenceMarshalValidation(t *testing.T) {
	m := sampleTileRef()
	m.Tiles = m.Tiles[:5] // 3x2 grid needs 6 hashes
	if _, err := m.Marshal(); err == nil {
		t.Fatal("grid/count mismatch marshaled")
	}
	m = sampleTileRef()
	m.TileSize = 0
	if _, err := m.Marshal(); err == nil {
		t.Fatal("zero tile size marshaled")
	}
	m = sampleTileRef()
	m.Width = 0
	if _, err := m.Marshal(); err == nil {
		t.Fatal("empty geometry marshaled")
	}
}

func TestTileReferenceDecodeErrors(t *testing.T) {
	valid, err := sampleTileRef().Marshal()
	if err != nil {
		t.Fatal(err)
	}

	// Truncation anywhere in the message must be rejected, at every
	// prefix length: the header reader or the hash-length check catches
	// each one.
	for n := core.HeaderSize; n < len(valid); n++ {
		if _, err := DecodePayload(valid[:n]); err == nil {
			t.Fatalf("truncated to %d bytes decoded", n)
		}
	}

	// Trailing garbage is not tolerated either.
	if _, err := DecodePayload(append(append([]byte(nil), valid...), 0xAA)); err == nil {
		t.Fatal("trailing byte accepted")
	}

	corrupt := func(mutate func(b []byte)) error {
		b := append([]byte(nil), valid...)
		mutate(b)
		_, err := DecodePayload(b)
		return err
	}
	// TileSize sits after the common header (4) + Left/Top/Width/Height
	// (16); zeroing it makes the geometry empty.
	if err := corrupt(func(b []byte) { b[20], b[21] = 0, 0 }); err == nil {
		t.Fatal("zero tile size decoded")
	}
	// The declared count (offset 22) must agree with the grid.
	if err := corrupt(func(b []byte) { b[22], b[23] = 0, 7 }); err == nil {
		t.Fatal("count disagreeing with grid decoded")
	}
	// A count consistent with neither the grid nor the remaining bytes
	// reports truncation.
	err = corrupt(func(b []byte) { b[16], b[17], b[18], b[19] = 0, 0, 0, 96; b[22], b[23] = 0, 6 })
	if err == nil {
		t.Fatal("hash bytes disagreeing with count decoded")
	}
	if !errors.Is(err, ErrTruncated) && err != nil {
		// Geometry shrink changes the grid first; either rejection is
		// acceptable as long as it IS rejected.
		t.Logf("rejected with: %v", err)
	}
}
