package remoting

import (
	"fmt"

	"appshare/internal/core"
	"appshare/internal/wire"
)

// Session-broker control messages (extension types 19–21, outside
// Table 1; see core.ExtensionRegistry and DESIGN.md "Session broker &
// migration"). A host announces itself to the broker with a
// BrokerRegister, then reports its load once per capture tick with a
// BrokerHeartbeat — remote count, send backlog and quality-tier
// distribution — which the broker's least-loaded placement reads. When
// the broker drains or loses a host it orders the session re-homed
// with a BrokerMigrate naming the source and destination hosts and the
// stream epoch the restored forwarder descriptors must carry. All
// three travel only on host↔broker control links; participants never
// see them.

// BrokerRegister flag bits.
const (
	// RegisterRelay marks the registrant as a relay tier node rather
	// than an origin host: the broker may place viewers on it, but never
	// a session's capture pipeline.
	RegisterRelay uint16 = 1 << 0
	// RegisterDraining announces an orderly shutdown: the broker stops
	// placing new sessions on the registrant and begins migrating the
	// ones it holds.
	RegisterDraining uint16 = 1 << 1
)

// BrokerRegister (type 19, host → broker) announces a host to the
// control plane. Capacity is the host's advertised remote ceiling
// (0 = unlimited). The common header's Parameter and WindowID are zero
// on send and ignored on receive.
type BrokerRegister struct {
	HostID   uint32
	Capacity uint16
	Flags    uint16
}

// BrokerRegisterSize is the message-specific body: HostID, Capacity,
// Flags.
const BrokerRegisterSize = 8

// Type implements Message.
func (m *BrokerRegister) Type() core.MessageType { return core.TypeBrokerRegister }

// Marshal encodes the message as a complete RTP payload. Broker
// control never fragments.
func (m *BrokerRegister) Marshal() ([]byte, error) {
	w := wire.NewWriter(core.HeaderSize + BrokerRegisterSize)
	core.Header{Type: core.TypeBrokerRegister}.AppendTo(w)
	w.Uint32(m.HostID)
	w.Uint16(m.Capacity)
	w.Uint16(m.Flags)
	return w.Bytes(), nil
}

func decodeBrokerRegister(body []byte) (*BrokerRegister, error) {
	if len(body) != BrokerRegisterSize {
		return nil, fmt.Errorf("%w: broker register body %d, want %d", ErrTruncated, len(body), BrokerRegisterSize)
	}
	r := wire.NewReader(body)
	m := &BrokerRegister{}
	m.HostID = r.Uint32()
	m.Capacity = r.Uint16()
	m.Flags = r.Uint16()
	if err := r.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

// BrokerHeartbeat (type 20, host → broker) reports one host's load:
// the stream it serves, its restart epoch, how many remotes it fans
// out to, the deepest per-remote send backlog in bytes, and how those
// remotes distribute across the four quality-ladder tiers (index 0 =
// TierFull … 3 = TierKeyframeOnly, each saturating at 255). A missed
// heartbeat is the broker's failure detector.
type BrokerHeartbeat struct {
	HostID   uint32
	StreamID uint32
	Epoch    uint32
	Remotes  uint16
	Backlog  uint32
	Tiers    [4]uint8
}

// BrokerHeartbeatSize is the message-specific body: HostID, StreamID,
// Epoch, Remotes, Backlog, Tiers.
const BrokerHeartbeatSize = 22

// Type implements Message.
func (m *BrokerHeartbeat) Type() core.MessageType { return core.TypeBrokerHeartbeat }

// Marshal encodes the message as a complete RTP payload.
func (m *BrokerHeartbeat) Marshal() ([]byte, error) {
	w := wire.NewWriter(core.HeaderSize + BrokerHeartbeatSize)
	core.Header{Type: core.TypeBrokerHeartbeat}.AppendTo(w)
	w.Uint32(m.HostID)
	w.Uint32(m.StreamID)
	w.Uint32(m.Epoch)
	w.Uint16(m.Remotes)
	w.Uint32(m.Backlog)
	for _, t := range m.Tiers {
		w.Uint8(t)
	}
	return w.Bytes(), nil
}

func decodeBrokerHeartbeat(body []byte) (*BrokerHeartbeat, error) {
	if len(body) != BrokerHeartbeatSize {
		return nil, fmt.Errorf("%w: broker heartbeat body %d, want %d", ErrTruncated, len(body), BrokerHeartbeatSize)
	}
	r := wire.NewReader(body)
	m := &BrokerHeartbeat{}
	m.HostID = r.Uint32()
	m.StreamID = r.Uint32()
	m.Epoch = r.Uint32()
	m.Remotes = r.Uint16()
	m.Backlog = r.Uint32()
	for i := range m.Tiers {
		m.Tiers[i] = r.Uint8()
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

// BrokerMigrate flag bits.
const (
	// MigrateWithFloor marks a migration whose session snapshot carries
	// broker-held BFCP floor state for the destination to restore.
	MigrateWithFloor uint16 = 1 << 0
)

// BrokerMigrate (type 21, broker → hosts) orders a session re-homed:
// the stream moves from FromHost to ToHost, and the destination's
// restored forwarder descriptors must announce Epoch (the
// StreamDescriptor restart-epoch of the ORIGINAL stream, so downstream
// relays keep their caches across the handoff).
type BrokerMigrate struct {
	StreamID uint32
	FromHost uint32
	ToHost   uint32
	Epoch    uint32
	Flags    uint16
	Reserved uint16
}

// BrokerMigrateSize is the message-specific body: StreamID, FromHost,
// ToHost, Epoch, Flags, Reserved.
const BrokerMigrateSize = 20

// Type implements Message.
func (m *BrokerMigrate) Type() core.MessageType { return core.TypeBrokerMigrate }

// Marshal encodes the message as a complete RTP payload.
func (m *BrokerMigrate) Marshal() ([]byte, error) {
	if m.Reserved != 0 {
		return nil, fmt.Errorf("remoting: broker migrate reserved field %d must be zero", m.Reserved)
	}
	w := wire.NewWriter(core.HeaderSize + BrokerMigrateSize)
	core.Header{Type: core.TypeBrokerMigrate}.AppendTo(w)
	w.Uint32(m.StreamID)
	w.Uint32(m.FromHost)
	w.Uint32(m.ToHost)
	w.Uint32(m.Epoch)
	w.Uint16(m.Flags)
	w.Uint16(m.Reserved)
	return w.Bytes(), nil
}

func decodeBrokerMigrate(body []byte) (*BrokerMigrate, error) {
	if len(body) != BrokerMigrateSize {
		return nil, fmt.Errorf("%w: broker migrate body %d, want %d", ErrTruncated, len(body), BrokerMigrateSize)
	}
	r := wire.NewReader(body)
	m := &BrokerMigrate{}
	m.StreamID = r.Uint32()
	m.FromHost = r.Uint32()
	m.ToHost = r.Uint32()
	m.Epoch = r.Uint32()
	m.Flags = r.Uint16()
	m.Reserved = r.Uint16()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if m.Reserved != 0 {
		return nil, fmt.Errorf("remoting: broker migrate reserved field %d must be zero", m.Reserved)
	}
	if m.FromHost == m.ToHost {
		return nil, fmt.Errorf("remoting: broker migrate from and to host are both %d", m.FromHost)
	}
	return m, nil
}
