package remoting

import (
	"fmt"
	"image"

	"appshare/internal/core"
	"appshare/internal/wire"
)

// TileReference is the negotiated tile-store extension message (type 16,
// outside Table 1; see core.ExtensionRegistry and DESIGN.md "Tile
// store"). It instructs the participant to repaint the region whose
// top-left corner is (Left, Top) — absolute AH coordinates, like
// RegionUpdate — from tiles it already holds in its synchronized tile
// dictionary, identified by their content hashes. Width and Height are
// explicit (there is no encoded image to make them implicit); the tile
// grid is TileSize×TileSize anchored at the region's top-left with
// right/bottom edge tiles clipped, and Tiles lists the grid row-major.
//
// A TileReference always fits one RTP packet: the sender splits a large
// region into several messages along tile-row boundaries instead of using
// Table 2 fragmentation (which is defined only for RegionUpdate and
// MousePointerInfo). A participant that does not hold every referenced
// tile MUST discard the whole message and request a refresh — painting a
// partial or stale region is never acceptable.
type TileReference struct {
	WindowID      uint16
	Left, Top     uint32
	Width, Height uint32
	TileSize      uint16
	Tiles         []TileHash
}

// TileHash is the 128-bit content hash of one tile — the two FNV lanes
// of codec.TileKey. The tile's clipped dimensions are implied by its
// grid position within the referenced region.
type TileHash struct {
	H1, H2 uint64
}

// TileRefHeaderSize is the message-specific header: Left, Top, Width,
// Height (4×4), TileSize and tile count (2×2). Senders use it with
// TileHashSize to size row bands so every message fits one packet.
const TileRefHeaderSize = 20

// TileHashSize is the wire size of one tile hash.
const TileHashSize = 16

// Type implements Message.
func (m *TileReference) Type() core.MessageType { return core.TypeTileReference }

// GridDims returns the tile grid's column and row counts.
func (m *TileReference) GridDims() (cols, rows int) {
	if m.TileSize == 0 {
		return 0, 0
	}
	ts := int(m.TileSize)
	return (int(m.Width) + ts - 1) / ts, (int(m.Height) + ts - 1) / ts
}

// Bounds returns the referenced region as an image rectangle in absolute
// coordinates.
func (m *TileReference) Bounds() image.Rectangle {
	return image.Rect(int(m.Left), int(m.Top), int(m.Left)+int(m.Width), int(m.Top)+int(m.Height))
}

// Marshal encodes the message as a complete RTP payload (common header +
// message header + hashes).
func (m *TileReference) Marshal() ([]byte, error) {
	cols, rows := m.GridDims()
	if m.TileSize == 0 || m.Width == 0 || m.Height == 0 {
		return nil, fmt.Errorf("remoting: tile reference with empty geometry %dx%d/%d", m.Width, m.Height, m.TileSize)
	}
	if cols*rows != len(m.Tiles) {
		return nil, fmt.Errorf("remoting: tile reference grid %dx%d needs %d tiles, have %d",
			cols, rows, cols*rows, len(m.Tiles))
	}
	w := wire.NewWriter(core.HeaderSize + TileRefHeaderSize + TileHashSize*len(m.Tiles))
	core.Header{Type: core.TypeTileReference, WindowID: m.WindowID}.AppendTo(w)
	w.Uint32(m.Left)
	w.Uint32(m.Top)
	w.Uint32(m.Width)
	w.Uint32(m.Height)
	w.Uint16(m.TileSize)
	w.Uint16(uint16(len(m.Tiles)))
	for _, t := range m.Tiles {
		w.Uint64(t.H1)
		w.Uint64(t.H2)
	}
	return w.Bytes(), nil
}

func decodeTileReference(hdr core.Header, body []byte) (*TileReference, error) {
	r := wire.NewReader(body)
	m := &TileReference{WindowID: hdr.WindowID}
	m.Left = r.Uint32()
	m.Top = r.Uint32()
	m.Width = r.Uint32()
	m.Height = r.Uint32()
	m.TileSize = r.Uint16()
	count := int(r.Uint16())
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("remoting: tile reference header: %w", err)
	}
	if m.TileSize == 0 || m.Width == 0 || m.Height == 0 {
		return nil, fmt.Errorf("remoting: tile reference with empty geometry %dx%d/%d", m.Width, m.Height, m.TileSize)
	}
	cols, rows := m.GridDims()
	if cols*rows != count {
		return nil, fmt.Errorf("remoting: tile reference grid %dx%d disagrees with count %d", cols, rows, count)
	}
	if r.Len() != count*TileHashSize {
		return nil, fmt.Errorf("%w: %d hash bytes for %d tiles", ErrTruncated, r.Len(), count)
	}
	m.Tiles = make([]TileHash, count)
	for i := range m.Tiles {
		m.Tiles[i] = TileHash{H1: r.Uint64(), H2: r.Uint64()}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return m, nil
}
