package remoting

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
	"testing/quick"

	"appshare/internal/core"
	"appshare/internal/region"
)

// figure9Windows are the three shared windows of draft Figure 2, encoded
// in Figure 9's example WindowManagerInfo message.
func figure9Windows() []WindowRecord {
	return []WindowRecord{
		{WindowID: 1, GroupID: 1, Bounds: region.XYWH(220, 150, 350, 450)}, // A
		{WindowID: 2, GroupID: 2, Bounds: region.XYWH(850, 320, 160, 150)}, // C
		{WindowID: 3, GroupID: 1, Bounds: region.XYWH(450, 400, 350, 300)}, // B
	}
}

// TestWindowManagerInfoFigure9 reproduces the example message of Figure 9
// byte-for-byte (experiment E02).
func TestWindowManagerInfoFigure9(t *testing.T) {
	m := &WindowManagerInfo{Windows: figure9Windows()}
	got, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	u32 := func(v uint32) []byte {
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], v)
		return b[:]
	}
	var want []byte
	want = append(want, 1, 0, 0, 0) // Msg Type = 1, Parameter = 0, WindowID = 0
	// Record 1: WindowID=1 GroupID=1 Reserved=0 L=220 T=150 W=350 H=450
	want = append(want, 0, 1, 1, 0)
	want = append(want, u32(220)...)
	want = append(want, u32(150)...)
	want = append(want, u32(350)...)
	want = append(want, u32(450)...)
	// Record 2: WindowID=2 GroupID=2 L=850 T=320 W=160 H=150
	want = append(want, 0, 2, 2, 0)
	want = append(want, u32(850)...)
	want = append(want, u32(320)...)
	want = append(want, u32(160)...)
	want = append(want, u32(150)...)
	// Record 3: WindowID=3 GroupID=1 L=450 T=400 W=350 H=300
	want = append(want, 0, 3, 1, 0)
	want = append(want, u32(450)...)
	want = append(want, u32(400)...)
	want = append(want, u32(350)...)
	want = append(want, u32(300)...)

	if !bytes.Equal(got, want) {
		t.Fatalf("Figure 9 bytes mismatch:\n got %v\nwant %v", got, want)
	}
	if len(got) != core.HeaderSize+3*WindowRecordSize {
		t.Fatalf("len = %d, want %d", len(got), core.HeaderSize+3*WindowRecordSize)
	}

	back, err := DecodePayload(got)
	if err != nil {
		t.Fatal(err)
	}
	wmi, ok := back.(*WindowManagerInfo)
	if !ok || !reflect.DeepEqual(wmi.Windows, m.Windows) {
		t.Fatalf("roundtrip = %#v", back)
	}
}

func TestWindowManagerInfoZOrderImplicit(t *testing.T) {
	// First record is bottom of the stacking order, last is top.
	m := &WindowManagerInfo{Windows: figure9Windows()}
	buf, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodePayload(buf)
	if err != nil {
		t.Fatal(err)
	}
	ws := back.(*WindowManagerInfo).Windows
	if ws[0].WindowID != 1 || ws[len(ws)-1].WindowID != 3 {
		t.Fatalf("record order changed: %v", ws)
	}
}

func TestWindowManagerInfoRejectsNegative(t *testing.T) {
	m := &WindowManagerInfo{Windows: []WindowRecord{{WindowID: 1, Bounds: region.XYWH(-1, 0, 10, 10)}}}
	if _, err := m.Marshal(); err == nil {
		t.Fatal("negative coordinates should fail (fields are unsigned)")
	}
}

func TestWindowManagerInfoBadLength(t *testing.T) {
	buf := []byte{1, 0, 0, 0, 0xAA, 0xBB} // 2 trailing bytes: not a record multiple
	if _, err := DecodePayload(buf); err == nil {
		t.Fatal("ragged body should fail")
	}
}

// TestRegionUpdateFigure11 reproduces the non-fragmented RegionUpdate
// example of Figure 11 (experiment E03).
func TestRegionUpdateFigure11(t *testing.T) {
	payload := []byte{0x50, 0x4E, 0x47, 0x21} // stand-in encoded content
	m := &RegionUpdate{WindowID: 1, ContentPT: 96, Left: 300, Top: 400, Content: payload}
	frags, err := m.Fragments(1400)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 1 {
		t.Fatalf("fragments = %d, want 1", len(frags))
	}
	f := frags[0]
	if !f.Marker {
		t.Error("non-fragmented RegionUpdate must set the RTP marker bit")
	}
	// Byte layout: MsgType=2 | 1|PT | WindowID=1 | Left | Top | payload.
	want := []byte{2, 0x80 | 96, 0, 1}
	want = binary.BigEndian.AppendUint32(want, 300)
	want = binary.BigEndian.AppendUint32(want, 400)
	want = append(want, payload...)
	if !bytes.Equal(f.Payload, want) {
		t.Fatalf("Figure 11 bytes mismatch:\n got %v\nwant %v", f.Payload, want)
	}

	// Reassemble and decode back.
	ra := core.NewReassembler()
	msg, err := ra.Push(f.Payload, f.Marker)
	if err != nil || msg == nil {
		t.Fatalf("reassemble: %v, %v", msg, err)
	}
	back, err := Decode(msg)
	if err != nil {
		t.Fatal(err)
	}
	ru := back.(*RegionUpdate)
	if ru.WindowID != 1 || ru.ContentPT != 96 || ru.Left != 300 || ru.Top != 400 ||
		!bytes.Equal(ru.Content, payload) {
		t.Fatalf("roundtrip = %+v", ru)
	}
}

func TestRegionUpdateFragmentedRoundtrip(t *testing.T) {
	content := make([]byte, 5000)
	for i := range content {
		content[i] = byte(i * 7)
	}
	m := &RegionUpdate{WindowID: 4, ContentPT: 96, Left: 10, Top: 20, Content: content}
	frags, err := m.Fragments(1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) < 5 {
		t.Fatalf("fragments = %d, want >= 5", len(frags))
	}
	ra := core.NewReassembler()
	var out Message
	for _, f := range frags {
		msg, err := ra.Push(f.Payload, f.Marker)
		if err != nil {
			t.Fatal(err)
		}
		if msg != nil {
			out, err = Decode(msg)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	ru, ok := out.(*RegionUpdate)
	if !ok {
		t.Fatalf("decoded %T", out)
	}
	if !bytes.Equal(ru.Content, content) || ru.Left != 10 || ru.Top != 20 {
		t.Fatal("fragmented roundtrip mismatch")
	}
}

// TestMoveRectangleOverlap verifies Figure 12's wire format and that
// overlapping source/destination rectangles are representable
// (experiment E04).
func TestMoveRectangleOverlap(t *testing.T) {
	m := &MoveRectangle{
		WindowID: 9,
		SrcLeft:  100, SrcTop: 100,
		Width: 200, Height: 300,
		DstLeft: 100, DstTop: 50, // overlaps the source: a scroll up
	}
	buf, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != core.HeaderSize+24 {
		t.Fatalf("len = %d, want %d", len(buf), core.HeaderSize+24)
	}
	want := []byte{3, 0, 0, 9}
	for _, v := range []uint32{100, 100, 200, 300, 100, 50} {
		want = binary.BigEndian.AppendUint32(want, v)
	}
	if !bytes.Equal(buf, want) {
		t.Fatalf("Figure 12 bytes mismatch:\n got %v\nwant %v", buf, want)
	}
	back, err := DecodePayload(buf)
	if err != nil {
		t.Fatal(err)
	}
	mr := back.(*MoveRectangle)
	if !reflect.DeepEqual(mr, m) {
		t.Fatalf("roundtrip = %+v", mr)
	}
	if !mr.Src().Overlaps(mr.Dst()) {
		t.Error("src and dst should overlap in this scroll")
	}
}

// TestMousePointerModels verifies both pointer payload forms of Section
// 5.2.4 (experiment E05).
func TestMousePointerModels(t *testing.T) {
	// Position-only: empty image moves the stored pointer.
	posOnly := &MousePointerInfo{WindowID: 2, ContentPT: 96, Left: 640, Top: 480}
	frags, err := posOnly.Fragments(1400)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 1 || len(frags[0].Payload) != core.HeaderSize+8 {
		t.Fatalf("position-only payload = %d bytes", len(frags[0].Payload))
	}
	ra := core.NewReassembler()
	msg, err := ra.Push(frags[0].Payload, frags[0].Marker)
	if err != nil || msg == nil {
		t.Fatal(err)
	}
	back, err := Decode(msg)
	if err != nil {
		t.Fatal(err)
	}
	mpi := back.(*MousePointerInfo)
	if mpi.Left != 640 || mpi.Top != 480 || len(mpi.Image) != 0 {
		t.Fatalf("position-only roundtrip = %+v", mpi)
	}

	// Position + new image.
	img := bytes.Repeat([]byte{0xAB}, 256)
	withImg := &MousePointerInfo{WindowID: 2, ContentPT: 96, Left: 1, Top: 2, Image: img}
	frags, err = withImg.Fragments(1400)
	if err != nil {
		t.Fatal(err)
	}
	msg, err = ra.Push(frags[0].Payload, frags[0].Marker)
	if err != nil || msg == nil {
		t.Fatal(err)
	}
	back, err = Decode(msg)
	if err != nil {
		t.Fatal(err)
	}
	mpi = back.(*MousePointerInfo)
	if !bytes.Equal(mpi.Image, img) {
		t.Fatal("image roundtrip mismatch")
	}
}

func TestDecodeRejectsHIPType(t *testing.T) {
	if _, err := DecodePayload([]byte{121, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Fatal("HIP type should be rejected by remoting.Decode")
	}
}

func TestDecodeTruncatedBodies(t *testing.T) {
	cases := [][]byte{
		{2, 0x80, 0, 1, 0, 0},       // RegionUpdate with 2-byte body
		{3, 0, 0, 1, 0, 0, 0, 0},    // MoveRectangle with 4-byte body
		{4, 0x80, 0, 1, 0, 0, 0, 0}, // MousePointerInfo with 4-byte body
	}
	for i, buf := range cases {
		if _, err := DecodePayload(buf); err == nil {
			t.Errorf("case %d: truncated body should fail", i)
		}
	}
}

func TestQuickWindowManagerInfoRoundtrip(t *testing.T) {
	f := func(ids []uint16, seed uint32) bool {
		m := &WindowManagerInfo{}
		for i, id := range ids {
			m.Windows = append(m.Windows, WindowRecord{
				WindowID: id,
				GroupID:  uint8(i),
				Bounds: region.XYWH(
					int(seed%1000), int(seed%700),
					int(seed%1920)+1, int(seed%1080)+1),
			})
		}
		buf, err := m.Marshal()
		if err != nil {
			return false
		}
		back, err := DecodePayload(buf)
		if err != nil {
			return false
		}
		wmi, ok := back.(*WindowManagerInfo)
		if !ok {
			return false
		}
		if len(m.Windows) == 0 {
			return len(wmi.Windows) == 0
		}
		return reflect.DeepEqual(wmi.Windows, m.Windows)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMoveRectangleRoundtrip(t *testing.T) {
	f := func(win uint16, sl, st, w, h, dl, dt uint32) bool {
		m := &MoveRectangle{WindowID: win, SrcLeft: sl, SrcTop: st, Width: w, Height: h, DstLeft: dl, DstTop: dt}
		buf, err := m.Marshal()
		if err != nil {
			return false
		}
		back, err := DecodePayload(buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(back, m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
