// Package remoting implements the AH-to-participant messages of
// draft-boyaci-avt-app-sharing-00 Section 5: WindowManagerInfo,
// RegionUpdate, MoveRectangle and MousePointerInfo.
//
// Messages encode to RTP payloads that begin with the common remoting/HIP
// header (package core). RegionUpdate and MousePointerInfo may span
// several RTP packets; their Fragments methods apply the Table 2
// fragmentation rules via core.FragmentMessage, and Decode reverses a
// core.Reassembler output back into a typed message.
package remoting

import (
	"errors"
	"fmt"

	"appshare/internal/core"
	"appshare/internal/region"
	"appshare/internal/wire"
)

// WindowRecordSize is the size of one window record (Figure 8).
const WindowRecordSize = 20

// Decoding errors.
var (
	ErrTruncated   = errors.New("remoting: truncated message")
	ErrNotRemoting = errors.New("remoting: not a remoting message type")
)

// Message is one AH-to-participant remoting message.
type Message interface {
	// Type returns the remoting message type (Table 1).
	Type() core.MessageType
}

// WindowRecord describes one shared window (Figure 8). Records are
// ordered bottom-to-top of the stacking order; the z-order is implicit in
// the record sequence. GroupID 0 means "no grouping"; the AH MAY assign
// the same GroupID to windows of the same process.
type WindowRecord struct {
	WindowID uint16
	GroupID  uint8
	Bounds   region.Rect // Left/Top/Width/Height fields of the record
}

// WindowManagerInfo transfers the complete window-manager state: windows,
// positions, sizes, z-order and groupings (Section 5.2.1). A participant
// MUST create windows for new WindowIDs and MUST close windows absent
// from the latest message. The common header's Parameter and WindowID
// fields are zero on send and ignored on receive.
type WindowManagerInfo struct {
	Windows []WindowRecord // bottom of stacking order first
}

// Type implements Message.
func (m *WindowManagerInfo) Type() core.MessageType { return core.TypeWindowManagerInfo }

// Marshal encodes the message as a complete RTP payload.
func (m *WindowManagerInfo) Marshal() ([]byte, error) {
	w := wire.NewWriter(core.HeaderSize + WindowRecordSize*len(m.Windows))
	core.Header{Type: core.TypeWindowManagerInfo}.AppendTo(w)
	for _, rec := range m.Windows {
		if rec.Bounds.Left < 0 || rec.Bounds.Top < 0 || rec.Bounds.Width < 0 || rec.Bounds.Height < 0 {
			return nil, fmt.Errorf("remoting: window %d has negative geometry %v (fields are unsigned)",
				rec.WindowID, rec.Bounds)
		}
		w.Uint16(rec.WindowID)
		w.Uint8(rec.GroupID)
		w.Uint8(0) // Reserved
		w.Uint32(uint32(rec.Bounds.Left))
		w.Uint32(uint32(rec.Bounds.Top))
		w.Uint32(uint32(rec.Bounds.Width))
		w.Uint32(uint32(rec.Bounds.Height))
	}
	return w.Bytes(), nil
}

func decodeWindowManagerInfo(body []byte) (*WindowManagerInfo, error) {
	if len(body)%WindowRecordSize != 0 {
		return nil, fmt.Errorf("%w: body %d not a multiple of %d", ErrTruncated, len(body), WindowRecordSize)
	}
	r := wire.NewReader(body)
	m := &WindowManagerInfo{}
	for r.Len() > 0 {
		var rec WindowRecord
		rec.WindowID = r.Uint16()
		rec.GroupID = r.Uint8()
		r.Skip(1) // Reserved
		rec.Bounds.Left = int(r.Uint32())
		rec.Bounds.Top = int(r.Uint32())
		rec.Bounds.Width = int(r.Uint32())
		rec.Bounds.Height = int(r.Uint32())
		m.Windows = append(m.Windows, rec)
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

// RegionUpdate instructs the participant to update the region of a window
// whose top-left corner is (Left, Top) with new encoded content (Section
// 5.2.2). The width and height are not transmitted; they are implicit in
// the encoded image. ContentPT is the RTP payload type of the content
// encoding (PNG is mandatory for all implementations).
type RegionUpdate struct {
	WindowID  uint16
	ContentPT uint8
	Left, Top uint32
	Content   []byte
}

// Type implements Message.
func (m *RegionUpdate) Type() core.MessageType { return core.TypeRegionUpdate }

func (m *RegionUpdate) msgHeader() []byte {
	w := wire.NewWriter(8)
	w.Uint32(m.Left)
	w.Uint32(m.Top)
	return w.Bytes()
}

// Fragments encodes the update into one or more RTP payloads of at most
// mtu bytes, per Table 2.
func (m *RegionUpdate) Fragments(mtu int) ([]core.Fragment, error) {
	return core.FragmentMessage(core.TypeRegionUpdate, m.WindowID, m.ContentPT, m.msgHeader(), m.Content, mtu)
}

func decodeRegionUpdate(hdr core.Header, body []byte) (*RegionUpdate, error) {
	_, pt := core.UnpackUpdateParam(hdr.Parameter)
	r := wire.NewReader(body)
	m := &RegionUpdate{WindowID: hdr.WindowID, ContentPT: pt}
	m.Left = r.Uint32()
	m.Top = r.Uint32()
	m.Content = r.Rest()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	return m, nil
}

// MoveRectangle instructs the participant to move a region of a window to
// a new position (Section 5.2.3) — the efficient encoding for scrolls.
// Source and destination rectangles may overlap.
type MoveRectangle struct {
	WindowID        uint16
	SrcLeft, SrcTop uint32
	Width, Height   uint32
	DstLeft, DstTop uint32
}

// Type implements Message.
func (m *MoveRectangle) Type() core.MessageType { return core.TypeMoveRectangle }

// Marshal encodes the message as a complete RTP payload (Figure 12).
func (m *MoveRectangle) Marshal() ([]byte, error) {
	w := wire.NewWriter(core.HeaderSize + 24)
	core.Header{Type: core.TypeMoveRectangle, WindowID: m.WindowID}.AppendTo(w)
	w.Uint32(m.SrcLeft)
	w.Uint32(m.SrcTop)
	w.Uint32(m.Width)
	w.Uint32(m.Height)
	w.Uint32(m.DstLeft)
	w.Uint32(m.DstTop)
	return w.Bytes(), nil
}

// Src returns the source rectangle.
func (m *MoveRectangle) Src() region.Rect {
	return region.XYWH(int(m.SrcLeft), int(m.SrcTop), int(m.Width), int(m.Height))
}

// Dst returns the destination rectangle.
func (m *MoveRectangle) Dst() region.Rect {
	return region.XYWH(int(m.DstLeft), int(m.DstTop), int(m.Width), int(m.Height))
}

func decodeMoveRectangle(hdr core.Header, body []byte) (*MoveRectangle, error) {
	r := wire.NewReader(body)
	m := &MoveRectangle{WindowID: hdr.WindowID}
	m.SrcLeft = r.Uint32()
	m.SrcTop = r.Uint32()
	m.Width = r.Uint32()
	m.Height = r.Uint32()
	m.DstLeft = r.Uint32()
	m.DstTop = r.Uint32()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	return m, nil
}

// MousePointerInfo transmits the pointer position and, optionally, a new
// pointer image (Section 5.2.4). Its wire format matches RegionUpdate.
// With an empty Image the participant moves its stored pointer image to
// (Left, Top); with an Image it stores and uses the new image until the
// next one arrives.
type MousePointerInfo struct {
	WindowID  uint16
	ContentPT uint8
	Left, Top uint32
	Image     []byte // optional encoded pointer image
}

// Type implements Message.
func (m *MousePointerInfo) Type() core.MessageType { return core.TypeMousePointerInfo }

func (m *MousePointerInfo) msgHeader() []byte {
	w := wire.NewWriter(8)
	w.Uint32(m.Left)
	w.Uint32(m.Top)
	return w.Bytes()
}

// Fragments encodes the message into RTP payloads of at most mtu bytes.
func (m *MousePointerInfo) Fragments(mtu int) ([]core.Fragment, error) {
	return core.FragmentMessage(core.TypeMousePointerInfo, m.WindowID, m.ContentPT, m.msgHeader(), m.Image, mtu)
}

func decodeMousePointerInfo(hdr core.Header, body []byte) (*MousePointerInfo, error) {
	_, pt := core.UnpackUpdateParam(hdr.Parameter)
	r := wire.NewReader(body)
	m := &MousePointerInfo{WindowID: hdr.WindowID, ContentPT: pt}
	m.Left = r.Uint32()
	m.Top = r.Uint32()
	m.Image = r.Rest()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	return m, nil
}

// Decode converts a reassembled core.Message into its typed remoting
// message.
func Decode(msg *core.Message) (Message, error) {
	switch msg.Header.Type {
	// Registered extension types (core.ExtensionRegistry): decodable
	// here, but only applied by peers that negotiated the matching
	// capability — others ignore them per Section 5.1.2.
	case core.TypeTileReference:
		return decodeTileReference(msg.Header, msg.Body)
	case core.TypeRelaySubscribe:
		return decodeRelaySubscribe(msg.Body)
	case core.TypeStreamDescriptor:
		return decodeStreamDescriptor(msg.Body)
	case core.TypeBrokerRegister:
		return decodeBrokerRegister(msg.Body)
	case core.TypeBrokerHeartbeat:
		return decodeBrokerHeartbeat(msg.Body)
	case core.TypeBrokerMigrate:
		return decodeBrokerMigrate(msg.Body)
	}
	if !msg.Header.Type.IsRemoting() {
		return nil, fmt.Errorf("%w: %v", ErrNotRemoting, msg.Header.Type)
	}
	switch msg.Header.Type {
	case core.TypeWindowManagerInfo:
		return decodeWindowManagerInfo(msg.Body)
	case core.TypeRegionUpdate:
		return decodeRegionUpdate(msg.Header, msg.Body)
	case core.TypeMoveRectangle:
		return decodeMoveRectangle(msg.Header, msg.Body)
	default: // core.TypeMousePointerInfo
		return decodeMousePointerInfo(msg.Header, msg.Body)
	}
}

// DecodePayload parses a single-packet remoting payload (convenience for
// WindowManagerInfo and MoveRectangle, which never fragment).
func DecodePayload(payload []byte) (Message, error) {
	hdr, body, err := core.ParseHeader(payload)
	if err != nil {
		return nil, err
	}
	return Decode(&core.Message{Header: hdr, Body: body})
}
