// Package relay implements the edge tier of the relay cascade (see
// DESIGN.md "Relay cascade"): a node that subscribes to an ah.Host's
// (or another relay's) prepared-batch stream and re-fans the shared
// payloads to its own viewer set, absorbing late joiners and PLIs with
// a cached refresh snapshot instead of propagating them to the origin.
//
// The relay receives each tick's payloads exactly as the origin's local
// shards do — marshalled once, addressed by stream id — and pays only
// per-viewer RTP re-stamping, the same split the origin's sharded send
// path makes between "encode & batch" and "remote set". Viewer repair
// stays local: NACKs are served from a per-viewer retransmission log,
// PLIs from the cached refresh. The only upstream refresh traffic is
// the cadence-driven cache refill (Config.RefreshEvery), so a storm of
// edge joins or losses costs the origin zero additional encodes.
package relay

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"appshare/internal/ah"
	"appshare/internal/rtcp"
	"appshare/internal/rtp"
	"appshare/internal/stats"
	"appshare/internal/transport"
)

// Default configuration values, matching the ah defaults where the
// concepts coincide.
const (
	DefaultRemotingPT = 99
	DefaultRetransLog = 1024
)

// Upstream is the subscription surface a relay attaches to. *ah.Host
// satisfies it, and so does *Relay — relays chain into trees.
type Upstream interface {
	AttachForwarder(ah.Forwarder)
	DetachForwarder(ah.Forwarder)
	// RequestStreamRefresh latches a refresh-snapshot request for the
	// stream; the upstream answers from its own refresh source (the
	// origin encodes one, a parent relay serves its cache).
	RequestStreamRefresh(streamID uint32)
	StreamID() uint32
}

// Config configures a Relay.
type Config struct {
	// StreamID is the stream the relay subscribes to; batches published
	// under any other id are ignored.
	StreamID uint32
	// RemotingPT is the RTP payload type stamped on re-fanned packets
	// (default 99, the draft's SDP example).
	RemotingPT uint8
	// RetransLog is the number of recent packets retained per viewer for
	// NACK service (default 1024).
	RetransLog int
	// MinRefreshInterval rate-limits cache serves per viewer, exactly
	// like the origin's PLI limiter: PLIs inside the window of the last
	// serve are absorbed outright. Zero means 500ms; negative disables.
	MinRefreshInterval time.Duration
	// RefreshEvery, when positive, requests a fresh snapshot from the
	// upstream every N forwarded batches — the ONLY path on which relay
	// activity generates upstream refresh work. Edge events (late
	// joins, PLIs) are always served from the cache and latched for the
	// next scheduled refill, never forwarded.
	RefreshEvery int
	// Shards splits the viewer set across independently-locked shards
	// (default 1), so feedback handling on one shard does not contend
	// with fan-out on another — the origin's shard layout, minus the
	// sender goroutines (a relay's fan-out is already off the origin's
	// tick path).
	Shards int
	// Now supplies time (defaults to time.Now); injectable for tests.
	Now func() time.Time
	// Entropy seeds the per-viewer RTP identifiers (see ah.Config).
	Entropy func() uint32
	// Stats, when non-nil, receives per-message-kind traffic counts.
	Stats *stats.Collector
}

// Stats is a snapshot of the relay's cascade counters.
type Stats struct {
	// Batches counts upstream prepared batches re-fanned downstream.
	Batches uint64
	// CacheRefills counts refresh snapshots received from upstream.
	CacheRefills uint64
	// CacheServes counts viewer refreshes served from the cached
	// snapshot (late joins and post-PLI serves).
	CacheServes uint64
	// AbsorbedPLIs counts PLIs swallowed by the rate limiter.
	AbsorbedPLIs uint64
	// UpstreamRefreshRequests counts cadence-driven cache refill
	// requests sent upstream.
	UpstreamRefreshRequests uint64
}

// msg is one re-fannable payload.
type msg struct {
	payload []byte
	marker  bool
	kind    string
}

// rshard owns one slice of the viewer set. Lock order: rshard.mu →
// Relay.mu (fan-out and feedback hold a shard lock and bump the
// cascade counters under Relay.mu); no path holds two shard locks at
// once, and no path acquires a shard lock while holding Relay.mu.
type rshard struct {
	mu      sync.Mutex
	viewers map[*Viewer]struct{}
}

// Relay is one edge node of the cascade.
type Relay struct {
	cfg       Config
	shards    []*rshard
	nextShard atomic.Uint64
	nViewers  atomic.Int64

	// mu guards the refresh cache, the upstream handle, the child
	// forwarder set and the cascade counters.
	mu       sync.Mutex
	upstream Upstream
	cache    []msg
	children []ah.Forwarder
	// childRefresh latches a child relay's snapshot request; it is
	// served from this relay's own cache at the next batch — absorption
	// applies at every tier, not just the leaf.
	childRefresh bool
	st           Stats
	closed       bool
}

// New returns a Relay ready to attach to an upstream.
func New(cfg Config) *Relay {
	if cfg.RemotingPT == 0 {
		cfg.RemotingPT = DefaultRemotingPT
	}
	if cfg.RetransLog == 0 {
		cfg.RetransLog = DefaultRetransLog
	}
	if cfg.MinRefreshInterval == 0 {
		cfg.MinRefreshInterval = 500 * time.Millisecond
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	r := &Relay{cfg: cfg}
	r.shards = make([]*rshard, cfg.Shards)
	for i := range r.shards {
		r.shards[i] = &rshard{viewers: make(map[*Viewer]struct{})}
	}
	return r
}

// ErrRelayClosed is returned by operations on a closed Relay.
var ErrRelayClosed = errors.New("relay: closed")

// AttachUpstream subscribes the relay to up's stream and, when the
// relay wants its cache seeded before the first viewer joins, latches
// an immediate refresh request.
func (r *Relay) AttachUpstream(up Upstream, wantRefresh bool) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrRelayClosed
	}
	r.upstream = up
	r.mu.Unlock()
	up.AttachForwarder(r)
	if wantRefresh {
		up.RequestStreamRefresh(r.cfg.StreamID)
	}
	return nil
}

// Close detaches from the upstream and closes every viewer.
func (r *Relay) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	up := r.upstream
	r.upstream = nil
	r.mu.Unlock()
	if up != nil {
		up.DetachForwarder(r)
	}
	var firstErr error
	for _, s := range r.shards {
		s.mu.Lock()
		vs := make([]*Viewer, 0, len(s.viewers))
		for v := range s.viewers {
			vs = append(vs, v)
		}
		s.mu.Unlock()
		for _, v := range vs {
			if err := v.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// StreamID implements Upstream for relay→relay chaining.
func (r *Relay) StreamID() uint32 { return r.cfg.StreamID }

// AttachForwarder subscribes a child (relay or recorder) to this
// relay's re-published stream.
func (r *Relay) AttachForwarder(f ah.Forwarder) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.children = append(r.children, f)
}

// DetachForwarder removes a child.
func (r *Relay) DetachForwarder(f ah.Forwarder) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, g := range r.children {
		if g == f {
			r.children = append(r.children[:i], r.children[i+1:]...)
			return
		}
	}
}

// RequestStreamRefresh latches a child's snapshot request. It is served
// from THIS relay's cache at the next batch — a child's refresh demand
// never travels further up the tree than the first cache that can
// answer it. Only when the relay holds no cache at all does the request
// escalate.
func (r *Relay) RequestStreamRefresh(streamID uint32) {
	if streamID != r.cfg.StreamID {
		return
	}
	r.mu.Lock()
	r.childRefresh = true
	empty := r.cache == nil
	up := r.upstream
	r.mu.Unlock()
	if empty && up != nil {
		up.RequestStreamRefresh(streamID)
	}
}

// ForwardBatch implements ah.Forwarder: one upstream tick's prepared
// payloads, re-fanned to every viewer and child. Called on the
// upstream's tick (or wire-pump) goroutine.
func (r *Relay) ForwardBatch(streamID uint32, msgs []ah.PreparedPayload) error {
	if streamID != r.cfg.StreamID {
		return nil
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrRelayClosed
	}
	r.st.Batches++
	refill := r.cfg.RefreshEvery > 0 && r.st.Batches%uint64(r.cfg.RefreshEvery) == 0
	if refill {
		r.st.UpstreamRefreshRequests++
	}
	up := r.upstream
	children := r.childSnapshotLocked()
	serveChildren := r.childRefresh && r.cache != nil
	var cache []msg
	if serveChildren {
		r.childRefresh = false
		cache = r.cache
	}
	r.mu.Unlock()

	batch := importPrepared(msgs)
	err := r.fanout(batch, false, false)
	for _, c := range children {
		if serveChildren {
			// Snapshot before batch: the cache predates this tick's
			// deltas, so a child repainted from it must see them after.
			// The replay is stale by up to one refill interval, so a
			// child that can tell the difference is told: it must keep
			// its viewers latched until an origin-fresh snapshot lands,
			// or the deltas between the cache's capture and now are
			// silently lost to them.
			if cr, ok := c.(cacheReplayReceiver); ok {
				if ferr := cr.ForwardCachedRefresh(streamID, exportMsgs(cache)); ferr != nil && err == nil {
					err = ferr
				}
			} else if ferr := c.ForwardRefresh(streamID, exportMsgs(cache)); ferr != nil && err == nil {
				err = ferr
			}
		}
		if ferr := c.ForwardBatch(streamID, msgs); ferr != nil && err == nil {
			err = ferr
		}
	}
	if refill && up != nil {
		up.RequestStreamRefresh(streamID)
	}
	return err
}

// ForwardRefresh implements ah.Forwarder: a full-refresh snapshot from
// upstream. The relay refills its cache, serves every viewer whose
// refresh is latched (they waited here instead of at the origin) and
// re-publishes the snapshot to its children. The snapshot is
// origin-fresh — encoded this tick and cascaded down synchronously —
// so serving it settles a viewer's latch.
func (r *Relay) ForwardRefresh(streamID uint32, msgs []ah.PreparedPayload) error {
	return r.refill(streamID, msgs, true)
}

// cacheReplayReceiver is the optional chaining surface for handing a
// child forwarder a cache replay — a snapshot that is stale by up to
// one refill interval — instead of an origin-fresh refresh. Relays
// implement it; forwarders that don't are served via ForwardRefresh
// and must tolerate the staleness themselves.
type cacheReplayReceiver interface {
	ForwardCachedRefresh(streamID uint32, msgs []ah.PreparedPayload) error
}

// ForwardCachedRefresh accepts a parent's cache replay. The relay
// refills its cache and repaints latched viewers — the fast paint —
// but the latches stay armed: the replay predates the deltas its
// viewers saw meanwhile, so only the next origin-fresh snapshot (which
// cascades on the parent's refill cadence) settles them. Without this
// distinction a nested relay would clear latches with stale pixels and
// strand late joiners short of convergence forever.
func (r *Relay) ForwardCachedRefresh(streamID uint32, msgs []ah.PreparedPayload) error {
	return r.refill(streamID, msgs, false)
}

// refill is the shared snapshot intake: cache refill, latched-viewer
// fan-out (fresh serves clear the latch, replays keep it armed) and
// re-publication to children with the freshness preserved.
func (r *Relay) refill(streamID uint32, msgs []ah.PreparedPayload, fresh bool) error {
	if streamID != r.cfg.StreamID {
		return nil
	}
	snapshot := importPrepared(msgs)
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrRelayClosed
	}
	r.cache = snapshot
	r.st.CacheRefills++
	r.childRefresh = false
	children := r.childSnapshotLocked()
	r.mu.Unlock()

	err := r.fanout(snapshot, true, fresh)
	for _, c := range children {
		var ferr error
		if cr, ok := c.(cacheReplayReceiver); ok && !fresh {
			ferr = cr.ForwardCachedRefresh(streamID, msgs)
		} else {
			ferr = c.ForwardRefresh(streamID, msgs)
		}
		if ferr != nil && err == nil {
			err = ferr
		}
	}
	return err
}

// childSnapshotLocked copies the child set; r.mu held.
func (r *Relay) childSnapshotLocked() []ah.Forwarder {
	if len(r.children) == 0 {
		return nil
	}
	out := make([]ah.Forwarder, len(r.children))
	copy(out, r.children)
	return out
}

// fanout stamps and ships one batch to every viewer, shard by shard.
// refresh batches go only to viewers whose refresh is latched;
// ordinary batches go to everyone. settle says whether a refresh serve
// clears the latch: origin-fresh snapshots do, cache replays repaint
// but leave the viewer latched for the next fresh one.
func (r *Relay) fanout(batch []msg, refresh, settle bool) error {
	var firstErr error
	for _, s := range r.shards {
		s.mu.Lock()
		for v := range s.viewers {
			if refresh {
				if !v.wantRefresh {
					continue
				}
				if settle {
					v.wantRefresh = false
				}
				r.countCacheServe()
			}
			if err := v.sendLocked(batch); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		s.mu.Unlock()
	}
	return firstErr
}

func (r *Relay) countCacheServe() {
	r.mu.Lock()
	r.st.CacheServes++
	r.mu.Unlock()
}

// Stats returns a snapshot of the cascade counters.
func (r *Relay) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.st
}

// Viewers returns the number of attached viewers.
func (r *Relay) Viewers() int { return int(r.nViewers.Load()) }

// importPrepared copies the shared-payload batch into the relay's
// representation. Payload bytes stay shared (read-only by contract).
func importPrepared(msgs []ah.PreparedPayload) []msg {
	out := make([]msg, len(msgs))
	for i, m := range msgs {
		out[i] = msg{payload: m.Payload, marker: m.Marker, kind: m.Kind}
	}
	return out
}

// exportMsgs is the inverse, for re-publishing to children.
func exportMsgs(batch []msg) []ah.PreparedPayload {
	out := make([]ah.PreparedPayload, len(batch))
	for i, m := range batch {
		out[i] = ah.PreparedPayload{Payload: m.payload, Marker: m.marker, Kind: m.kind}
	}
	return out
}

// shardFor assigns a new viewer round-robin.
func (r *Relay) shardFor() *rshard {
	return r.shards[(r.nextShard.Add(1)-1)%uint64(len(r.shards))]
}

// Viewer is one participant attached to the relay.
type Viewer struct {
	rl   *Relay
	sh   *rshard
	id   string
	conn transport.PacketConn
	// batch is conn's batched-send fast path (nil when absent).
	batch transport.BatchSender
	pz    *rtp.Packetizer
	raws  [][]byte // marshal scratch, guarded by sh.mu

	// Guarded by sh.mu.
	retrans      map[uint16][]byte
	retransQ     []uint16
	sentPackets  uint64
	sentOctets   uint64
	lastRefresh  time.Time
	absorbedPLIs uint64
	wantRefresh  bool
	closed       bool
}

// AttachPacketConn adds a UDP viewer. The viewer's refresh is latched
// immediately — it has seen nothing — and, when the relay already holds
// a cached snapshot, served from the cache right away: the fast first
// paint. The latch stays armed until the next upstream snapshot lands,
// which repaints the viewer consistent with the deltas it joined in the
// middle of. Either way the origin never hears about the join.
func (r *Relay) AttachPacketConn(id string, conn transport.PacketConn) (*Viewer, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrRelayClosed
	}
	cache := r.cache
	r.mu.Unlock()
	ent := r.cfg.Entropy
	v := &Viewer{
		rl:      r,
		sh:      r.shardFor(),
		id:      id,
		conn:    conn,
		pz:      rtp.NewPacketizerFrom(ent, rtp.NewSSRCFrom(ent), r.cfg.RemotingPT, r.cfg.Now()),
		retrans: make(map[uint16][]byte),
	}
	if bs, ok := conn.(transport.BatchSender); ok {
		v.batch = bs
	}
	v.sh.mu.Lock()
	v.sh.viewers[v] = struct{}{}
	v.wantRefresh = true
	v.lastRefresh = r.cfg.Now()
	var err error
	if cache != nil {
		err = v.sendLocked(cache)
		r.countCacheServe()
	}
	v.sh.mu.Unlock()
	r.nViewers.Add(1)
	if err != nil {
		_ = v.Close()
		return nil, err
	}
	go r.pump(v, conn)
	return v, nil
}

// pump reads RTCP feedback from the viewer until the conn dies.
func (r *Relay) pump(v *Viewer, conn transport.PacketConn) {
	for {
		pkt, err := conn.Recv()
		if err != nil {
			_ = v.Close()
			return
		}
		r.handleFeedback(v, pkt)
	}
}

// HandleFeedback processes one RTCP packet from v exactly as if it had
// arrived on the viewer's transport — the synchronous injection path
// simulations use instead of the Recv pump, mirroring
// ah.Host.HandleFeedback.
func (r *Relay) HandleFeedback(v *Viewer, pkt []byte) {
	r.handleFeedback(v, pkt)
}

// handleFeedback absorbs one viewer's RTCP: PLIs latch a cache serve
// (rate-limited exactly like the origin's limiter), NACKs retransmit
// from the local log. Nothing here ever reaches the upstream.
func (r *Relay) handleFeedback(v *Viewer, pkt []byte) {
	if len(pkt) < 2 || pkt[1] < 200 || pkt[1] > 207 {
		return
	}
	pkts, err := rtcp.Unmarshal(pkt)
	if err != nil {
		return
	}
	v.sh.mu.Lock()
	defer v.sh.mu.Unlock()
	if v.closed {
		// Same eviction race as the origin's feedback path: a viewer
		// torn down between mark and transport close must not receive
		// retransmissions or latch refreshes.
		return
	}
	now := r.cfg.Now()
	for _, p := range pkts {
		switch fb := p.(type) {
		case *rtcp.PLI:
			if r.cfg.MinRefreshInterval > 0 && !v.lastRefresh.IsZero() &&
				now.Sub(v.lastRefresh) < r.cfg.MinRefreshInterval {
				v.absorbedPLIs++
				r.mu.Lock()
				r.st.AbsorbedPLIs++
				r.mu.Unlock()
				continue
			}
			v.lastRefresh = now
			// Serve from the cache immediately (the edge answer the
			// origin never sees) and keep the latch armed for the next
			// snapshot, which repaints past whatever deltas the loss ate.
			if err := r.serveCacheLocked(v); err == nil {
				v.wantRefresh = true
			}
			r.record("RelayPLI", len(pkt))
		case *rtcp.NACK:
			_ = v.resendLocked(fb.Lost())
			r.record("RelayNACK", len(pkt))
		}
	}
}

// serveCacheLocked paints v from the cached snapshot, if one exists.
// Shard lock held.
func (r *Relay) serveCacheLocked(v *Viewer) error {
	r.mu.Lock()
	cache := r.cache
	if cache != nil {
		r.st.CacheServes++
	}
	r.mu.Unlock()
	if cache == nil {
		return nil
	}
	return v.sendLocked(cache)
}

// sendLocked stamps the batch with v's RTP stream state and ships it as
// one sink batch. Shard lock held.
func (v *Viewer) sendLocked(batch []msg) error {
	if len(batch) == 0 || v.closed {
		return nil
	}
	now := v.rl.cfg.Now()
	raws := v.raws[:0]
	for _, m := range batch {
		pkt := v.pz.Packetize(m.payload, m.marker, now)
		raw, err := pkt.Marshal()
		if err != nil {
			v.raws = raws[:0]
			return err
		}
		raws = append(raws, raw)
	}
	var n int
	var err error
	if v.batch != nil {
		n, err = v.batch.SendBatch(raws)
		if n > len(raws) {
			n = len(raws)
		}
	} else {
		n = len(raws)
		for i, p := range raws {
			if e := v.conn.Send(p); e != nil {
				n, err = i, e
				break
			}
		}
	}
	runStart, runBytes := 0, uint64(0)
	for i := 0; i < n; i++ {
		v.sentPackets++
		v.sentOctets += uint64(len(raws[i]))
		runBytes += uint64(len(raws[i]))
		v.logForRetransmission(raws[i])
		if i+1 == n || batch[i+1].kind != batch[i].kind {
			v.rl.recordN(batch[i].kind, uint64(i+1-runStart), runBytes)
			runStart, runBytes = i+1, 0
		}
	}
	for i := range raws {
		raws[i] = nil
	}
	v.raws = raws[:0]
	return err
}

// logForRetransmission mirrors the origin's bounded per-remote log.
func (v *Viewer) logForRetransmission(pkt []byte) {
	var hdr rtp.Header
	if _, err := hdr.Unmarshal(pkt); err != nil {
		return
	}
	seq := hdr.SequenceNumber
	if _, dup := v.retrans[seq]; dup {
		v.retrans[seq] = pkt
		return
	}
	if len(v.retransQ) >= v.rl.cfg.RetransLog {
		oldest := v.retransQ[0]
		v.retransQ = v.retransQ[1:]
		delete(v.retrans, oldest)
	}
	v.retrans[seq] = pkt
	v.retransQ = append(v.retransQ, seq)
}

// resendLocked services a NACK from the log. Shard lock held.
// Retransmissions do not count toward sentPackets/sentOctets — the
// origin's convention: those counters mean fresh sends, the quantity
// RTCP sender reports and the simulation's counter oracle reconcile
// against the wire's sequence chain.
func (v *Viewer) resendLocked(seqs []uint16) error {
	for _, s := range seqs {
		if pkt, ok := v.retrans[s]; ok {
			if err := v.conn.Send(pkt); err != nil {
				return err
			}
			v.rl.record("Retransmission", len(pkt))
		}
	}
	return nil
}

// ID returns the identifier the viewer was attached with.
func (v *Viewer) ID() string { return v.id }

// SSRC returns the RTP synchronization source of the viewer's stream.
func (v *Viewer) SSRC() uint32 {
	v.sh.mu.Lock()
	defer v.sh.mu.Unlock()
	return v.pz.SSRC()
}

// SentPackets reports the fresh packets shipped to this viewer
// (deliveries and cache serves; retransmissions are excluded, matching
// the origin's counter convention).
func (v *Viewer) SentPackets() uint64 {
	v.sh.mu.Lock()
	defer v.sh.mu.Unlock()
	return v.sentPackets
}

// SentOctets reports the bytes shipped to this viewer.
func (v *Viewer) SentOctets() uint64 {
	v.sh.mu.Lock()
	defer v.sh.mu.Unlock()
	return v.sentOctets
}

// AbsorbedPLIs reports PLIs swallowed by the rate limiter.
func (v *Viewer) AbsorbedPLIs() uint64 {
	v.sh.mu.Lock()
	defer v.sh.mu.Unlock()
	return v.absorbedPLIs
}

// Close detaches the viewer and closes its transport.
func (v *Viewer) Close() error {
	v.sh.mu.Lock()
	if v.closed {
		v.sh.mu.Unlock()
		return nil
	}
	v.closed = true
	delete(v.sh.viewers, v)
	v.sh.mu.Unlock()
	v.rl.nViewers.Add(-1)
	return v.conn.Close()
}

func (r *Relay) record(kind string, bytes int) {
	if r.cfg.Stats != nil {
		r.cfg.Stats.Record(kind, bytes)
	}
}

func (r *Relay) recordN(kind string, n, bytes uint64) {
	if r.cfg.Stats != nil {
		r.cfg.Stats.RecordN(kind, n, bytes)
	}
}
