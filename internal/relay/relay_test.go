package relay

import (
	"image/color"
	"io"
	"sync"
	"testing"
	"time"

	"appshare/internal/ah"
	"appshare/internal/display"
	"appshare/internal/participant"
	"appshare/internal/region"
	"appshare/internal/rtcp"
	"appshare/internal/rtp"
	"appshare/internal/transport"
)

var (
	red  = color.RGBA{0xFF, 0, 0, 0xFF}
	blue = color.RGBA{0, 0, 0xFF, 0xFF}
)

// fakeClock is a manually-advanced time source shared by host and relay.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0).UTC()}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// relayViewer is a participant attached to the relay over an in-memory
// packet link, with every received raw packet retained for inspection.
type relayViewer struct {
	p    *participant.Participant
	conn transport.PacketConn // test side of the pipe
	v    *Viewer

	mu   sync.Mutex
	raws [][]byte
	done chan struct{}
}

// attachViewer joins a new viewer to rl and pumps its downlink.
func attachViewer(t *testing.T, rl *Relay, id string) *relayViewer {
	t.Helper()
	relaySide, testSide := transport.Pipe(transport.LinkConfig{Seed: 1}, transport.LinkConfig{Seed: 2})
	v, err := rl.AttachPacketConn(id, relaySide)
	if err != nil {
		t.Fatal(err)
	}
	rv := &relayViewer{
		p:    participant.New(participant.Config{}),
		conn: testSide,
		v:    v,
		done: make(chan struct{}),
	}
	go func() {
		defer close(rv.done)
		for {
			pkt, err := testSide.Recv()
			if err != nil {
				return
			}
			rv.mu.Lock()
			rv.raws = append(rv.raws, append([]byte(nil), pkt...))
			rv.mu.Unlock()
			_ = rv.p.HandlePacket(pkt)
		}
	}()
	return rv
}

func (rv *relayViewer) packets() [][]byte {
	rv.mu.Lock()
	defer rv.mu.Unlock()
	out := make([][]byte, len(rv.raws))
	copy(out, rv.raws)
	return out
}

// settle gives the async pipes a moment to drain.
func settle() { time.Sleep(30 * time.Millisecond) }

// ent returns a deterministic entropy source.
func ent() func() uint32 {
	var x uint32 = 0x1234567
	return func() uint32 {
		x = x*1664525 + 1013904223
		return x
	}
}

func newOrigin(t *testing.T, clk *fakeClock, streamID uint32) (*ah.Host, *display.Window) {
	t.Helper()
	d := display.NewDesktop(640, 480)
	w := d.CreateWindow(1, region.XYWH(40, 30, 200, 160))
	h, err := ah.New(ah.Config{
		Desktop:  d,
		StreamID: streamID,
		Now:      clk.Now,
		Entropy:  ent(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return h, w
}

func wantPixel(t *testing.T, rv *relayViewer, winID uint16, x, y int, want color.RGBA, what string) {
	t.Helper()
	img := rv.p.WindowImage(winID)
	if img == nil {
		t.Fatalf("%s: no window image", what)
	}
	if got := img.RGBAAt(x, y); got != want {
		t.Fatalf("%s: pixel (%d,%d) = %v, want %v", what, x, y, got, want)
	}
}

// TestRelayCascadeEndToEnd drives origin → relay → viewers in-process:
// the first viewer converges through the relay's re-fanned batches, a
// late joiner paints from the relay's cache, and the origin's refresh
// encodes stay a function of the cadence alone.
func TestRelayCascadeEndToEnd(t *testing.T) {
	clk := newFakeClock()
	h, w := newOrigin(t, clk, 7)
	defer h.Close()

	rl := New(Config{
		StreamID:           7,
		RefreshEvery:       3,
		MinRefreshInterval: -1,
		Now:                clk.Now,
		Entropy:            ent(),
	})
	defer rl.Close()
	if err := rl.AttachUpstream(h, true); err != nil {
		t.Fatal(err)
	}

	// The attach latched a snapshot request: the first tick must seed
	// the relay's cache without any viewer asking.
	w.Fill(region.XYWH(0, 0, 200, 160), red)
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	if got := rl.Stats().CacheRefills; got != 1 {
		t.Fatalf("cache refills after seeding tick = %d, want 1", got)
	}
	if got := h.ServedRefreshes(); got != 1 {
		t.Fatalf("origin served refreshes = %d, want 1", got)
	}

	v1 := attachViewer(t, rl, "v1")
	settle()
	// v1 joined with a cache present: first paint served at attach.
	wantPixel(t, v1, w.ID(), 10, 10, red, "v1 cache paint")
	if got := rl.Stats().CacheServes; got != 1 {
		t.Fatalf("cache serves after v1 join = %d, want 1", got)
	}

	// Deltas flow through ForwardBatch.
	clk.Advance(time.Second)
	w.Fill(region.XYWH(0, 0, 50, 40), blue)
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	settle()
	wantPixel(t, v1, w.ID(), 10, 10, blue, "v1 delta")
	wantPixel(t, v1, w.ID(), 100, 100, red, "v1 untouched region")

	// Late joiner: painted from the (stale) cache immediately, then
	// repainted by the next cadence refill's snapshot.
	v2 := attachViewer(t, rl, "v2")
	settle()
	wantPixel(t, v2, w.ID(), 100, 100, red, "v2 stale cache paint")

	served := h.ServedRefreshes()
	// Two more ticks: batch 3 triggers the cadence refill, batch 4's
	// tick serves the snapshot (RefreshEvery=3).
	for i := 0; i < 2; i++ {
		clk.Advance(time.Second)
		w.Fill(region.XYWH(60+i*10, 0, 10, 10), blue)
		if err := h.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	settle()
	wantPixel(t, v2, w.ID(), 10, 10, blue, "v2 after refill snapshot")
	if got := h.ServedRefreshes(); got != served+1 {
		t.Fatalf("origin served refreshes = %d, want %d (cadence only)", got, served+1)
	}
	st := rl.Stats()
	if st.CacheRefills != 2 {
		t.Fatalf("cache refills = %d, want 2", st.CacheRefills)
	}
	if st.UpstreamRefreshRequests != 1 {
		t.Fatalf("upstream refresh requests = %d, want 1", st.UpstreamRefreshRequests)
	}
	if rl.Viewers() != 2 {
		t.Fatalf("viewers = %d, want 2", rl.Viewers())
	}
}

// TestRelayPLIAbsorption verifies a viewer's PLI is served from the
// relay cache — and never reaches the origin — and that the per-viewer
// rate limiter absorbs repeats.
func TestRelayPLIAbsorption(t *testing.T) {
	clk := newFakeClock()
	h, w := newOrigin(t, clk, 9)
	defer h.Close()

	rl := New(Config{
		StreamID:           9,
		MinRefreshInterval: time.Second,
		Now:                clk.Now,
		Entropy:            ent(),
	})
	defer rl.Close()
	if err := rl.AttachUpstream(h, true); err != nil {
		t.Fatal(err)
	}
	w.Fill(region.XYWH(0, 0, 200, 160), red)
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	v := attachViewer(t, rl, "v1")
	settle()
	origin := h.ServedRefreshes()
	before := len(v.packets())

	pli, err := rtcp.Marshal(&rtcp.PLI{SenderSSRC: 1, MediaSSRC: v.v.SSRC()})
	if err != nil {
		t.Fatal(err)
	}

	// Inside the rate-limit window of the join-time serve: absorbed.
	if err := v.conn.Send(pli); err != nil {
		t.Fatal(err)
	}
	settle()
	if got := v.v.AbsorbedPLIs(); got != 1 {
		t.Fatalf("absorbed PLIs = %d, want 1", got)
	}
	if got := len(v.packets()); got != before {
		t.Fatalf("absorbed PLI still shipped %d packets", got-before)
	}

	// Outside the window: served from the cache.
	clk.Advance(2 * time.Second)
	if err := v.conn.Send(pli); err != nil {
		t.Fatal(err)
	}
	settle()
	if got := len(v.packets()); got <= before {
		t.Fatal("PLI outside the window served nothing")
	}
	wantPixel(t, v, w.ID(), 10, 10, red, "post-PLI cache serve")

	// Neither PLI generated origin refresh work.
	if got := h.ServedRefreshes(); got != origin {
		t.Fatalf("origin served refreshes moved %d → %d on edge PLIs", origin, got)
	}
}

// TestRelayNACKRetransmission verifies NACKs are served byte-identical
// from the viewer's local retransmission log.
func TestRelayNACKRetransmission(t *testing.T) {
	clk := newFakeClock()
	h, w := newOrigin(t, clk, 11)
	defer h.Close()

	rl := New(Config{StreamID: 11, MinRefreshInterval: -1, Now: clk.Now, Entropy: ent()})
	defer rl.Close()
	if err := rl.AttachUpstream(h, true); err != nil {
		t.Fatal(err)
	}
	w.Fill(region.XYWH(0, 0, 200, 160), red)
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	v := attachViewer(t, rl, "v1")
	settle()

	pkts := v.packets()
	if len(pkts) == 0 {
		t.Fatal("no packets shipped")
	}
	var hdr rtp.Header
	if _, err := hdr.Unmarshal(pkts[0]); err != nil {
		t.Fatal(err)
	}
	before := len(pkts)

	nack, err := rtcp.Marshal(&rtcp.NACK{
		SenderSSRC: 1,
		MediaSSRC:  v.v.SSRC(),
		Pairs:      rtcp.BuildNACKPairs([]uint16{hdr.SequenceNumber}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.conn.Send(nack); err != nil {
		t.Fatal(err)
	}
	settle()

	after := v.packets()
	if len(after) != before+1 {
		t.Fatalf("retransmissions shipped = %d, want 1", len(after)-before)
	}
	if string(after[len(after)-1]) != string(pkts[0]) {
		t.Fatal("retransmission is not byte-identical to the original")
	}
}

// TestRelayChainedChildRefresh verifies relay→relay chaining: a child's
// refresh demand is served from the parent's cache, never escalated to
// the origin.
func TestRelayChainedChildRefresh(t *testing.T) {
	clk := newFakeClock()
	h, w := newOrigin(t, clk, 13)
	defer h.Close()

	parent := New(Config{StreamID: 13, MinRefreshInterval: -1, Now: clk.Now, Entropy: ent()})
	defer parent.Close()
	if err := parent.AttachUpstream(h, true); err != nil {
		t.Fatal(err)
	}
	w.Fill(region.XYWH(0, 0, 200, 160), red)
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	origin := h.ServedRefreshes()

	// Child attaches wanting a refresh: the parent holds a cache, so
	// the request latches there and must NOT escalate.
	child := New(Config{StreamID: 13, MinRefreshInterval: -1, Now: clk.Now, Entropy: ent()})
	defer child.Close()
	if err := child.AttachUpstream(parent, true); err != nil {
		t.Fatal(err)
	}
	cv := attachViewer(t, child, "leaf")
	settle()

	// Next origin tick: the parent forwards the batch and serves the
	// child's latched refresh from its own cache.
	clk.Advance(time.Second)
	w.Fill(region.XYWH(0, 0, 30, 30), blue)
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	settle()

	if got := child.Stats().CacheRefills; got == 0 {
		t.Fatal("child cache never refilled from parent")
	}
	wantPixel(t, cv, w.ID(), 100, 100, red, "leaf viewer via two tiers")
	wantPixel(t, cv, w.ID(), 10, 10, blue, "leaf viewer delta via two tiers")
	if got := h.ServedRefreshes(); got != origin {
		t.Fatalf("child refresh escalated to origin: served %d → %d", origin, got)
	}
}

// duplex glues two io.Pipes into a ReadWriteCloser pair (the ah test
// harness idiom).
type duplex struct {
	io.Reader
	io.Writer
	closeR func() error
	closeW func() error
}

func (d *duplex) Close() error {
	_ = d.closeW()
	return d.closeR()
}

func streamPair() (a, b io.ReadWriteCloser) {
	ar, bw := io.Pipe()
	br, aw := io.Pipe()
	a = &duplex{Reader: ar, Writer: aw, closeR: func() error { return ar.Close() }, closeW: func() error { return aw.Close() }}
	b = &duplex{Reader: br, Writer: bw, closeR: func() error { return br.Close() }, closeW: func() error { return bw.Close() }}
	return a, b
}

// TestRelayWireSubscribe exercises the full wire handshake: the relay
// attaches to the origin as a stream participant, flips it to
// forward-only with RelaySubscribe, and receives descriptor-delimited
// refresh snapshots over the link.
func TestRelayWireSubscribe(t *testing.T) {
	clk := newFakeClock()
	h, w := newOrigin(t, clk, 21)
	defer h.Close()

	rl := New(Config{StreamID: 21, MinRefreshInterval: -1, Now: clk.Now, Entropy: ent()})
	defer rl.Close()

	hostEnd, relayEnd := streamPair()
	attachErr := make(chan error, 1)
	go func() {
		// AttachStream pushes initial state synchronously; the relay
		// pump (started by SubscribeStream) drains it.
		_, err := h.AttachStream("relay-edge", hostEnd, ah.StreamOptions{})
		attachErr <- err
	}()
	done, err := rl.SubscribeStream(relayEnd, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-attachErr; err != nil {
		t.Fatal(err)
	}
	settle()

	// The handshake latched a refresh: this tick ships a descriptor-
	// delimited snapshot that seeds the relay cache.
	w.Fill(region.XYWH(0, 0, 200, 160), red)
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	settle()
	if got := rl.Stats().CacheRefills; got != 1 {
		t.Fatalf("cache refills over the wire = %d, want 1", got)
	}
	if got := h.ServedRefreshes(); got != 1 {
		t.Fatalf("origin served refreshes = %d, want 1", got)
	}

	v := attachViewer(t, rl, "v1")
	settle()
	wantPixel(t, v, w.ID(), 10, 10, red, "wire-relayed cache paint")

	// Deltas ride the same link as re-stamped batches.
	clk.Advance(time.Second)
	w.Fill(region.XYWH(0, 0, 40, 40), blue)
	if err := h.Tick(); err != nil {
		t.Fatal(err)
	}
	settle()
	wantPixel(t, v, w.ID(), 10, 10, blue, "wire-relayed delta")
	wantPixel(t, v, w.ID(), 100, 100, red, "wire-relayed untouched region")

	select {
	case err := <-done:
		t.Fatalf("wire pump died early: %v", err)
	default:
	}
}
