package relay

import (
	"fmt"
	"io"
	"sync"

	"appshare/internal/ah"
	"appshare/internal/core"
	"appshare/internal/framing"
	"appshare/internal/remoting"
	"appshare/internal/rtp"
)

// Wire attachment: the ads-relay deployment shape. The relay dials the
// origin like any stream participant, opens the RelaySubscribe
// handshake on the feedback path, and from then on receives the
// stream's prepared payloads as framed RTP — refresh snapshots
// delimited by StreamDescriptor messages carrying the refresh flag and
// count. Cadence-driven cache refills ride the same handshake: a
// re-sent RelaySubscribe with the want-refresh flag.

// wireUpstream adapts the framed stream into the Upstream surface, so
// the relay's cadence logic is identical in-process and over the wire.
type wireUpstream struct {
	rl *Relay
	rw io.ReadWriteCloser
	// wmu serializes subscribe/refresh-request writes (the pump never
	// writes).
	wmu    sync.Mutex
	framer *framing.Writer
	pz     *rtp.Packetizer
}

// AttachForwarder and DetachForwarder are no-ops: the wire relay is
// implicitly attached by the handshake, and the stream carries exactly
// one subscriber — this relay.
func (w *wireUpstream) AttachForwarder(ah.Forwarder) {}
func (w *wireUpstream) DetachForwarder(ah.Forwarder) {}

// SubscribeStream attaches the relay to an origin (or parent relay)
// over a framed reliable stream. It sends the RelaySubscribe handshake
// — wantRefresh asks for an immediate cache seed — and pumps forwarded
// payloads until the stream dies, at which point the returned channel
// closes with the terminal error.
//
// On wire attachments Config.RefreshEvery counts forwarded messages,
// not ticks: the stream carries no batch boundaries.
func (r *Relay) SubscribeStream(rw io.ReadWriteCloser, wantRefresh bool) (<-chan error, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrRelayClosed
	}
	r.mu.Unlock()
	ent := r.cfg.Entropy
	w := &wireUpstream{
		rl:     r,
		rw:     rw,
		framer: framing.NewWriter(rw),
		pz:     rtp.NewPacketizerFrom(ent, rtp.NewSSRCFrom(ent), r.cfg.RemotingPT, r.cfg.Now()),
	}
	r.mu.Lock()
	r.upstream = w
	r.mu.Unlock()
	// Pump before handshake: the upstream may be mid-push (initial
	// state) on a synchronous link, and the subscribe write would
	// deadlock against it if nothing were draining our side.
	done := make(chan error, 1)
	go func() { done <- w.pump() }()
	if err := w.sendSubscribe(wantRefresh); err != nil {
		_ = rw.Close()
		return nil, err
	}
	return done, nil
}

// sendSubscribe ships one RelaySubscribe frame.
func (w *wireUpstream) sendSubscribe(wantRefresh bool) error {
	var flags uint16
	if wantRefresh {
		flags |= remoting.RelayWantRefresh
	}
	sub := &remoting.RelaySubscribe{
		StreamID: w.rl.cfg.StreamID,
		Flags:    flags,
		Viewers:  uint16(min(w.rl.Viewers(), 0xFFFF)),
	}
	payload, err := sub.Marshal()
	if err != nil {
		return err
	}
	w.wmu.Lock()
	defer w.wmu.Unlock()
	pkt := w.pz.Packetize(payload, false, w.rl.cfg.Now())
	raw, err := pkt.Marshal()
	if err != nil {
		return err
	}
	return w.framer.WriteFrame(raw)
}

// RequestStreamRefresh re-sends the flagged subscribe: a refresh
// request over the wire IS a RelaySubscribe with the want-refresh bit.
func (w *wireUpstream) RequestStreamRefresh(streamID uint32) {
	if streamID != w.rl.cfg.StreamID {
		return
	}
	_ = w.sendSubscribe(true)
}

func (w *wireUpstream) StreamID() uint32 { return w.rl.cfg.StreamID }

// pump reads forwarded frames until the stream dies.
func (w *wireUpstream) pump() error {
	defer w.rw.Close()
	reader := framing.NewReader(w.rw)
	var (
		collecting bool
		want       int
		snapshot   []msg
		lastEpoch  uint32
		haveEpoch  bool
	)
	sid := w.rl.cfg.StreamID
	for {
		frame, err := reader.ReadFrame()
		if err != nil {
			return err
		}
		if len(frame) >= 2 && frame[1] >= 200 && frame[1] <= 207 {
			continue // origin-side RTCP (sender reports); not payload
		}
		var rp rtp.Packet
		if err := rp.Unmarshal(frame); err != nil {
			continue
		}
		if rp.PayloadType != w.rl.cfg.RemotingPT || len(rp.Payload) < core.HeaderSize {
			continue
		}
		if core.MessageType(rp.Payload[0]) == core.TypeStreamDescriptor {
			dm, err := remoting.DecodePayload(rp.Payload)
			if err != nil {
				continue
			}
			desc, ok := dm.(*remoting.StreamDescriptor)
			if !ok || desc.StreamID != sid {
				continue
			}
			if haveEpoch && desc.Epoch != lastEpoch {
				// The origin restarted: cached state belongs to a dead
				// sequence history.
				w.rl.mu.Lock()
				w.rl.cache = nil
				w.rl.mu.Unlock()
			}
			lastEpoch, haveEpoch = desc.Epoch, true
			if desc.Flags&remoting.DescriptorRefresh != 0 {
				collecting, want = true, int(desc.Count)
				snapshot = snapshot[:0]
				if want == 0 {
					collecting = false
				}
			}
			continue
		}
		m := msg{
			payload: rp.Payload,
			marker:  rp.Marker,
			kind:    core.MessageType(rp.Payload[0]).String(),
		}
		if collecting {
			snapshot = append(snapshot, m)
			if len(snapshot) == want {
				collecting = false
				if err := w.rl.ForwardRefresh(sid, exportMsgs(snapshot)); err != nil {
					return fmt.Errorf("relay: refresh re-fan: %w", err)
				}
				snapshot = snapshot[:0]
			}
			continue
		}
		if err := w.rl.ForwardBatch(sid, exportMsgs([]msg{m})); err != nil {
			return fmt.Errorf("relay: re-fan: %w", err)
		}
	}
}
