package stats

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCollector(t *testing.T) {
	c := NewCollector()
	c.Record("RegionUpdate", 100)
	c.Record("RegionUpdate", 200)
	c.Record("MoveRectangle", 28)
	if got := c.Get("RegionUpdate"); got.Messages != 2 || got.Bytes != 300 {
		t.Fatalf("RegionUpdate = %+v", got)
	}
	if got := c.Get("absent"); got.Messages != 0 {
		t.Fatalf("absent = %+v", got)
	}
	if tot := c.Total(); tot.Messages != 3 || tot.Bytes != 328 {
		t.Fatalf("total = %+v", tot)
	}
	s := c.String()
	if !strings.Contains(s, "MoveRectangle") || !strings.Contains(s, "RegionUpdate") {
		t.Fatalf("String = %q", s)
	}
	c.Reset()
	if tot := c.Total(); tot.Messages != 0 {
		t.Fatalf("after reset = %+v", tot)
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Record("k", 1)
			}
		}()
	}
	wg.Wait()
	if got := c.Get("k"); got.Messages != 8000 || got.Bytes != 8000 {
		t.Fatalf("concurrent = %+v", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should return zeros")
	}
	for i := 1; i <= 100; i++ {
		h.Add(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if mean := h.Mean(); mean != 50*time.Millisecond+500*time.Microsecond {
		t.Fatalf("mean = %v", mean)
	}
	if q := h.Quantile(0.5); q < 49*time.Millisecond || q > 52*time.Millisecond {
		t.Fatalf("p50 = %v", q)
	}
	if q := h.Quantile(0); q != time.Millisecond {
		t.Fatalf("p0 = %v", q)
	}
	if h.Max() != 100*time.Millisecond {
		t.Fatalf("max = %v", h.Max())
	}
	// Adding after a quantile query re-sorts correctly.
	h.Add(time.Nanosecond)
	if q := h.Quantile(0); q != time.Nanosecond {
		t.Fatalf("p0 after add = %v", q)
	}
}
