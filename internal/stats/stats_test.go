package stats

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCollector(t *testing.T) {
	c := NewCollector()
	c.Record("RegionUpdate", 100)
	c.Record("RegionUpdate", 200)
	c.Record("MoveRectangle", 28)
	if got := c.Get("RegionUpdate"); got.Messages != 2 || got.Bytes != 300 {
		t.Fatalf("RegionUpdate = %+v", got)
	}
	if got := c.Get("absent"); got.Messages != 0 {
		t.Fatalf("absent = %+v", got)
	}
	if tot := c.Total(); tot.Messages != 3 || tot.Bytes != 328 {
		t.Fatalf("total = %+v", tot)
	}
	s := c.String()
	if !strings.Contains(s, "MoveRectangle") || !strings.Contains(s, "RegionUpdate") {
		t.Fatalf("String = %q", s)
	}
	c.Reset()
	if tot := c.Total(); tot.Messages != 0 {
		t.Fatalf("after reset = %+v", tot)
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Record("k", 1)
			}
		}()
	}
	wg.Wait()
	if got := c.Get("k"); got.Messages != 8000 || got.Bytes != 8000 {
		t.Fatalf("concurrent = %+v", got)
	}
}

// TestCollectorSnapshotDuringIncrement races every read path (Get,
// Total, String) and Reset against writers on several kinds at once.
// The assertions here are deliberately weak — monotone, internally
// consistent snapshots — because the real check is the race detector:
// this test exists to fail under -race if the Collector ever grows an
// unsynchronized path.
func TestCollectorSnapshotDuringIncrement(t *testing.T) {
	c := NewCollector()
	kinds := []string{
		"EncodeCacheHit", "EncodeCacheMiss", "HealthEvict", "RegionUpdate",
		"QualityDemote", "QualityPromote", "QualityFlap",
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Record(kinds[(g+i)%len(kinds)], 3)
				c.RecordN(kinds[g%len(kinds)], 2, 10)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			for _, k := range kinds {
				got := c.Get(k)
				if got.Messages == 0 && got.Bytes != 0 {
					t.Errorf("inconsistent snapshot for %s: %+v", k, got)
				}
			}
			tot := c.Total()
			if tot.Bytes < tot.Messages { // every message carries >= 1 byte here... except right after Reset
				_ = tot // tolerated: Reset below can interleave
			}
			_ = c.String()
			if i%10 == 9 {
				c.Reset()
			}
		}
	}()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()

	// After the storm the Collector still works deterministically.
	c.Reset()
	c.Record("RegionUpdate", 7)
	if got := c.Get("RegionUpdate"); got.Messages != 1 || got.Bytes != 7 {
		t.Fatalf("post-race Record = %+v", got)
	}
}

// TestCollectorKindsAcrossReset cycles the encode-cache, health and
// quality-ladder kinds the host records through Reset: a cycle must zero them without
// poisoning later recording, and RecordN's zero-valued no-op must not
// materialize a counter.
func TestCollectorKindsAcrossReset(t *testing.T) {
	kinds := []string{
		"EncodeCacheHit", "EncodeCacheMiss", "EncodeCacheEvict",
		"EncodeParallel", "EncodeSerial",
		"HealthEvict",
		"QualityDemote", "QualityPromote", "QualityFlap",
	}
	c := NewCollector()
	for round := 1; round <= 3; round++ {
		for i, k := range kinds {
			c.RecordN(k, uint64(round), uint64(round*10*(i+1)))
		}
		for i, k := range kinds {
			got := c.Get(k)
			if got.Messages != uint64(round) || got.Bytes != uint64(round*10*(i+1)) {
				t.Fatalf("round %d: %s = %+v (previous cycle leaked through Reset?)", round, k, got)
			}
		}
		if tot := c.Total(); tot.Messages != uint64(round*len(kinds)) {
			t.Fatalf("round %d: total = %+v", round, tot)
		}
		c.Reset()
		for _, k := range kinds {
			if got := c.Get(k); got != (Counter{}) {
				t.Fatalf("round %d: %s survived Reset: %+v", round, k, got)
			}
		}
	}
	// The bulk no-op records nothing even on a fresh map.
	c.RecordN("EncodeCacheHit", 0, 0)
	if tot := c.Total(); tot != (Counter{}) {
		t.Fatalf("zero RecordN materialized a counter: %+v", tot)
	}
	if c.String() != "" {
		t.Fatalf("empty collector renders %q", c.String())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should return zeros")
	}
	for i := 1; i <= 100; i++ {
		h.Add(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if mean := h.Mean(); mean != 50*time.Millisecond+500*time.Microsecond {
		t.Fatalf("mean = %v", mean)
	}
	if q := h.Quantile(0.5); q < 49*time.Millisecond || q > 52*time.Millisecond {
		t.Fatalf("p50 = %v", q)
	}
	if q := h.Quantile(0); q != time.Millisecond {
		t.Fatalf("p0 = %v", q)
	}
	if h.Max() != 100*time.Millisecond {
		t.Fatalf("max = %v", h.Max())
	}
	// Adding after a quantile query re-sorts correctly.
	h.Add(time.Nanosecond)
	if q := h.Quantile(0); q != time.Nanosecond {
		t.Fatalf("p0 after add = %v", q)
	}
}
