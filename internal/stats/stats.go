// Package stats provides the light-weight metering used by the benchmark
// harness: per-message-type byte/message counters and latency histograms.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Counter accumulates message and byte counts for one message type.
type Counter struct {
	Messages uint64
	Bytes    uint64
}

// Collector tallies traffic per message kind. It is safe for concurrent
// use.
type Collector struct {
	mu      sync.Mutex
	perKind map[string]*Counter
}

// NewCollector returns an empty Collector.
func NewCollector() *Collector {
	return &Collector{perKind: make(map[string]*Counter)}
}

// Record adds one message of the given kind and size.
func (c *Collector) Record(kind string, bytes int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ctr := c.perKind[kind]
	if ctr == nil {
		ctr = &Counter{}
		c.perKind[kind] = ctr
	}
	ctr.Messages++
	ctr.Bytes += uint64(bytes)
}

// RecordN adds n messages totalling the given bytes of one kind in a
// single call — the bulk form used by the encode pipeline to flush
// counter deltas once per tick instead of once per event. A call with
// n == 0 and bytes == 0 is a no-op and records nothing.
func (c *Collector) RecordN(kind string, n, bytes uint64) {
	if n == 0 && bytes == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	ctr := c.perKind[kind]
	if ctr == nil {
		ctr = &Counter{}
		c.perKind[kind] = ctr
	}
	ctr.Messages += n
	ctr.Bytes += bytes
}

// Get returns the counter for kind (zero value if unseen).
func (c *Collector) Get(kind string) Counter {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ctr := c.perKind[kind]; ctr != nil {
		return *ctr
	}
	return Counter{}
}

// Total returns the sum over all kinds.
func (c *Collector) Total() Counter {
	c.mu.Lock()
	defer c.mu.Unlock()
	var t Counter
	for _, ctr := range c.perKind {
		t.Messages += ctr.Messages
		t.Bytes += ctr.Bytes
	}
	return t
}

// String renders a stable, human-readable table.
func (c *Collector) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	kinds := make([]string, 0, len(c.perKind))
	for k := range c.perKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	var b strings.Builder
	for _, k := range kinds {
		ctr := c.perKind[k]
		fmt.Fprintf(&b, "%-20s %8d msgs %12d bytes\n", k, ctr.Messages, ctr.Bytes)
	}
	return b.String()
}

// Reset clears all counters.
func (c *Collector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.perKind = make(map[string]*Counter)
}

// Histogram records durations for quantile queries. It stores samples
// exactly (the experiments record at most tens of thousands). Safe for
// concurrent use.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
	sorted  bool
}

// NewHistogram returns an empty Histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Add records one sample.
func (h *Histogram) Add(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples = append(h.samples, d)
	h.sorted = false
}

// Count returns the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Mean returns the average sample, or zero when empty.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range h.samples {
		sum += s
	}
	return sum / time.Duration(len(h.samples))
}

// Quantile returns the q-quantile (0 <= q <= 1), or zero when empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[len(h.samples)-1]
	}
	idx := int(q * float64(len(h.samples)-1))
	return h.samples[idx]
}

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration { return h.Quantile(1) }
