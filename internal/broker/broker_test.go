package broker

import (
	"errors"
	"strings"
	"testing"
	"time"

	"appshare/internal/remoting"
	"appshare/internal/sdp"
)

// testClock is a manually advanced clock for the failure detector.
type testClock struct{ t time.Time }

func newTestClock() *testClock            { return &testClock{t: time.Unix(1_700_000_000, 0).UTC()} }
func (c *testClock) now() time.Time       { return c.t }
func (c *testClock) tick(d time.Duration) { c.t = c.t.Add(d) }

func newTestBroker(c *testClock) *Broker {
	return New(Config{Now: c.now, HeartbeatTimeout: time.Second})
}

func register(b *Broker, id uint32, flags uint16) {
	b.Register(&remoting.BrokerRegister{HostID: id, Flags: flags}, "198.51.100.1")
}

func beat(t *testing.T, b *Broker, id, stream uint32, remotes uint16, checkpoint []byte) {
	t.Helper()
	err := b.Heartbeat(&remoting.BrokerHeartbeat{
		HostID: id, StreamID: stream, Epoch: 7, Remotes: remotes,
	}, checkpoint, nil)
	if err != nil {
		t.Fatalf("heartbeat host %d: %v", id, err)
	}
}

func TestPlacementLeastLoaded(t *testing.T) {
	c := newTestClock()
	b := newTestBroker(c)
	register(b, 1, 0)
	register(b, 2, 0)
	register(b, 3, remoting.RegisterRelay)
	beat(t, b, 1, 100, 5, nil)
	beat(t, b, 2, 100, 2, nil)
	beat(t, b, 3, 100, 0, nil)

	// Viewers may land on the relay (least loaded of the three).
	if id, err := b.PlaceViewer(100); err != nil || id != 3 {
		t.Fatalf("PlaceViewer = %d, %v; want relay 3", id, err)
	}
	// Sessions never land on a relay: host 2 is the lighter origin.
	if id, err := b.PlaceSession(0); err != nil || id != 2 {
		t.Fatalf("PlaceSession = %d, %v; want 2", id, err)
	}
	// Excluding host 2 leaves host 1.
	if id, err := b.PlaceSession(2); err != nil || id != 1 {
		t.Fatalf("PlaceSession(exclude 2) = %d, %v; want 1", id, err)
	}
}

func TestPlacementSkipsDrainingAndFull(t *testing.T) {
	c := newTestClock()
	b := newTestBroker(c)
	register(b, 1, remoting.RegisterDraining)
	b.Register(&remoting.BrokerRegister{HostID: 2, Capacity: 4}, "")
	register(b, 3, 0)
	beat(t, b, 2, 100, 4, nil) // at capacity
	beat(t, b, 3, 100, 9, nil)

	if id, err := b.PlaceSession(0); err != nil || id != 3 {
		t.Fatalf("PlaceSession = %d, %v; want 3 (1 draining, 2 full)", id, err)
	}
}

func TestPlacementIgnoresSilentHosts(t *testing.T) {
	c := newTestClock()
	b := newTestBroker(c)
	register(b, 1, 0)
	register(b, 2, 0)
	beat(t, b, 1, 100, 0, nil)
	beat(t, b, 2, 100, 3, nil)
	c.tick(1500 * time.Millisecond)
	beat(t, b, 2, 100, 3, nil) // host 1 stays silent past the timeout

	if id, err := b.PlaceViewer(0); err != nil || id != 2 {
		t.Fatalf("PlaceViewer = %d, %v; want 2 (host 1 silent)", id, err)
	}
	if _, err := b.PlaceViewer(0); err != nil {
		t.Fatal(err)
	}
}

func TestSweepMigratesSessionsOffDeadHosts(t *testing.T) {
	c := newTestClock()
	b := newTestBroker(c)
	register(b, 1, 0)
	register(b, 2, 0)
	checkpoint := []byte{0xCA, 0xFE}
	err := b.Heartbeat(&remoting.BrokerHeartbeat{HostID: 1, StreamID: 100, Epoch: 7, Remotes: 3},
		checkpoint, []byte{0x01})
	if err != nil {
		t.Fatal(err)
	}
	beat(t, b, 2, 0, 0, nil)

	if orders := b.Sweep(); len(orders) != 0 {
		t.Fatalf("premature sweep emitted %d orders", len(orders))
	}
	c.tick(1500 * time.Millisecond)
	beat(t, b, 2, 0, 0, nil) // survivor keeps beating
	orders := b.Sweep()
	if len(orders) != 1 {
		t.Fatalf("sweep emitted %d orders, want 1", len(orders))
	}
	o := orders[0]
	want := remoting.BrokerMigrate{StreamID: 100, FromHost: 1, ToHost: 2, Epoch: 7,
		Flags: remoting.MigrateWithFloor}
	if o.Msg != want {
		t.Fatalf("order message %+v, want %+v", o.Msg, want)
	}
	if string(o.Checkpoint) != string(checkpoint) {
		t.Fatalf("order checkpoint %x, want %x", o.Checkpoint, checkpoint)
	}
	if len(o.FloorState) != 1 || o.FloorState[0] != 0x01 {
		t.Fatalf("order floor state %x, want 01", o.FloorState)
	}
	// The session is re-homed; a second sweep is quiet.
	if orders := b.Sweep(); len(orders) != 0 {
		t.Fatalf("second sweep re-emitted %d orders", len(orders))
	}
	ss := b.Sessions()
	if len(ss) != 1 || ss[0].HostID != 2 || ss[0].Migrations != 1 {
		t.Fatalf("session status %+v, want host 2 with 1 migration", ss)
	}
}

func TestSweepWaitsForASurvivor(t *testing.T) {
	c := newTestClock()
	b := newTestBroker(c)
	register(b, 1, 0)
	beat(t, b, 1, 100, 1, []byte{1})
	c.tick(2 * time.Second)
	if orders := b.Sweep(); len(orders) != 0 {
		t.Fatalf("sweep with no survivor emitted %d orders", len(orders))
	}
	// A new host arrives: the next sweep drains the dead one onto it.
	register(b, 2, 0)
	beat(t, b, 2, 0, 0, nil)
	orders := b.Sweep()
	if len(orders) != 1 || orders[0].Msg.ToHost != 2 {
		t.Fatalf("delayed sweep = %+v, want migration to host 2", orders)
	}
}

func TestSweepRehomesCheckpointFreeSession(t *testing.T) {
	// Load-only control links (the ads-broker TCP surface) heartbeat
	// without custody; the session must still be re-homed on failure —
	// the order just carries no checkpoint, so the destination adopts
	// the stream cold.
	c := newTestClock()
	b := newTestBroker(c)
	register(b, 1, 0)
	register(b, 2, 0)
	beat(t, b, 1, 100, 3, nil)
	beat(t, b, 2, 0, 0, nil)
	c.tick(1500 * time.Millisecond)
	beat(t, b, 2, 0, 0, nil)
	orders := b.Sweep()
	if len(orders) != 1 {
		t.Fatalf("sweep emitted %d orders, want 1", len(orders))
	}
	o := orders[0]
	if o.Msg.FromHost != 1 || o.Msg.ToHost != 2 || o.Msg.StreamID != 100 {
		t.Fatalf("order %+v, want stream 100 1→2", o.Msg)
	}
	if o.Checkpoint != nil {
		t.Fatalf("checkpoint-free session emitted checkpoint %x", o.Checkpoint)
	}
	if o.Msg.Flags&remoting.MigrateWithFloor != 0 {
		t.Fatal("checkpoint-free session carries MigrateWithFloor")
	}
	ss := b.Sessions()
	if len(ss) != 1 || ss[0].HostID != 2 || ss[0].Migrations != 1 {
		t.Fatalf("session status %+v, want host 2 with 1 migration", ss)
	}
}

func TestMigrateManualDrain(t *testing.T) {
	c := newTestClock()
	b := newTestBroker(c)
	register(b, 1, 0)
	register(b, 2, 0)
	beat(t, b, 1, 100, 3, []byte{1})
	beat(t, b, 2, 0, 0, nil)

	if _, err := b.Migrate(999, 0); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("Migrate(unknown) err = %v", err)
	}
	order, err := b.Migrate(100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if order.Msg.ToHost != 2 || order.Msg.FromHost != 1 {
		t.Fatalf("drain order %+v, want 1→2", order.Msg)
	}
	if order.Msg.Flags&remoting.MigrateWithFloor != 0 {
		t.Fatal("floorless session carries MigrateWithFloor")
	}
	if _, err := b.Migrate(100, 2); err == nil {
		t.Fatal("re-homing onto the current home succeeded")
	}
}

func TestHeartbeatUnknownHost(t *testing.T) {
	b := newTestBroker(newTestClock())
	err := b.Heartbeat(&remoting.BrokerHeartbeat{HostID: 9}, nil, nil)
	if !errors.Is(err, ErrUnknownHost) {
		t.Fatalf("err = %v, want ErrUnknownHost", err)
	}
}

func TestOfferFillsPlacedHostAddress(t *testing.T) {
	c := newTestClock()
	b := newTestBroker(c)
	b.Register(&remoting.BrokerRegister{HostID: 1}, "203.0.113.7")
	beat(t, b, 1, 100, 0, nil)

	hostID, offer, err := b.Offer(100, sdp.OfferConfig{
		RemotingPort: 6004, RemotingPT: 99, OfferUDP: true, HIPPort: 6006, HIPPT: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if hostID != 1 {
		t.Fatalf("placed host %d, want 1", hostID)
	}
	if !strings.Contains(offer, "203.0.113.7") {
		t.Fatalf("offer lacks the placed host's address:\n%s", offer)
	}
	if _, _, err := b.Offer(42, sdp.OfferConfig{}); !errors.Is(err, ErrNoHosts) {
		t.Fatalf("offer for unknown stream err = %v, want ErrNoHosts", err)
	}
}
