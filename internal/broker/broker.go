// Package broker is the session control plane of DESIGN.md "Session
// broker & migration". Hosts announce themselves with BrokerRegister
// and report load once per capture tick with BrokerHeartbeat (carrying
// a session checkpoint and the current BFCP floor state); viewers ask
// the broker for a placement and receive an SDP offer for the
// least-loaded registered host or relay. Because the broker holds each
// session's latest checkpoint and floor state, it can re-home a
// session when its host dies or drains: Sweep (failure detector) and
// Migrate (orderly drain) emit MigrationOrders that a destination host
// applies with ah.RestoreSession, and moderation survives the churn
// because the floor state travels with the order rather than dying
// with the host.
//
// The broker never touches media: participants exchange RTP with the
// host they were placed on, and the broker's three control messages
// (internal/remoting types 19–21) travel only on host↔broker links.
package broker

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"appshare/internal/ah"
	"appshare/internal/remoting"
	"appshare/internal/sdp"
)

// Config tunes a Broker.
type Config struct {
	// Now is the broker's clock (defaults to time.Now; netsim injects
	// virtual time).
	Now func() time.Time
	// HeartbeatTimeout is how long a host may stay silent before the
	// failure detector declares it dead (default 3s). Hosts heartbeat
	// once per capture tick, so a few tick intervals is a sensible
	// setting.
	HeartbeatTimeout time.Duration
}

// DefaultHeartbeatTimeout is used when Config.HeartbeatTimeout is zero.
const DefaultHeartbeatTimeout = 3 * time.Second

// Broker is the session placement and migration control plane.
type Broker struct {
	mu       sync.Mutex
	now      func() time.Time
	timeout  time.Duration
	hosts    map[uint32]*hostRecord
	sessions map[uint32]*sessionRecord
}

type hostRecord struct {
	id       uint32
	addr     string
	capacity uint16
	relay    bool
	draining bool
	dead     bool
	lastBeat time.Time
	load     remoting.BrokerHeartbeat
	hasLoad  bool
}

type sessionRecord struct {
	streamID   uint32
	hostID     uint32
	epoch      uint32
	checkpoint []byte
	floorState []byte
	migrations uint64
}

// HostStatus is one registered host's externally visible state.
type HostStatus struct {
	ID       uint32
	Addr     string
	Capacity uint16
	Relay    bool
	Draining bool
	Dead     bool
	LastBeat time.Time
	StreamID uint32
	Remotes  uint16
	Backlog  uint32
	Tiers    [4]uint8
}

// SessionStatus is one brokered session's externally visible state.
type SessionStatus struct {
	StreamID   uint32
	HostID     uint32
	Epoch      uint32
	Migrations uint64
	HasFloor   bool
}

// MigrationOrder re-homes one session. The broker emits it; the
// destination host applies it (ah.UnmarshalSessionSnapshot +
// RestoreSession, bfcp.NewFloorFromState for the floor) and every
// viewer re-attaches with ResumePacketConn.
type MigrationOrder struct {
	// Msg is the wire-level migrate command, carrying the stream, the
	// source and destination hosts, and the restart epoch the restored
	// forwarder descriptors must announce.
	Msg remoting.BrokerMigrate
	// Checkpoint is the session snapshot from the source host's last
	// heartbeat (ah.SessionSnapshot encoding). It is nil when the
	// session never supplied one — load-only control links (the
	// ads-broker TCP surface) heartbeat without custody — in which
	// case the destination adopts the stream cold and viewers repaint
	// through the normal full-refresh path instead of resuming.
	Checkpoint []byte
	// FloorState is the broker-held BFCP floor custody
	// (bfcp.FloorState encoding); nil when the session has no floor,
	// in which case Msg.Flags lacks MigrateWithFloor.
	FloorState []byte
}

// Broker errors.
var (
	ErrUnknownHost    = errors.New("broker: unknown host")
	ErrUnknownSession = errors.New("broker: unknown session")
	ErrNoHosts        = errors.New("broker: no live host available")
)

// New returns an empty broker.
func New(cfg Config) *Broker {
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	timeout := cfg.HeartbeatTimeout
	if timeout == 0 {
		timeout = DefaultHeartbeatTimeout
	}
	return &Broker{
		now:      now,
		timeout:  timeout,
		hosts:    make(map[uint32]*hostRecord),
		sessions: make(map[uint32]*sessionRecord),
	}
}

// Register records or updates a host from its BrokerRegister. addr is
// the host's media address, used for viewer SDP offers. Re-registering
// updates capacity and flags (so a host announces an orderly drain by
// re-registering with RegisterDraining) and revives a host the failure
// detector had declared dead.
func (b *Broker) Register(m *remoting.BrokerRegister, addr string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	h := b.hosts[m.HostID]
	if h == nil {
		h = &hostRecord{id: m.HostID}
		b.hosts[m.HostID] = h
	}
	h.addr = addr
	h.capacity = m.Capacity
	h.relay = m.Flags&remoting.RegisterRelay != 0
	h.draining = m.Flags&remoting.RegisterDraining != 0
	h.dead = false
	h.lastBeat = b.now()
}

// Heartbeat records one host's per-tick load report plus the session
// checkpoint and floor state riding along with it. checkpoint may be
// nil (a host that serves no session yet); floorState may be nil (no
// floor). The slices are copied.
func (b *Broker) Heartbeat(m *remoting.BrokerHeartbeat, checkpoint, floorState []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	h := b.hosts[m.HostID]
	if h == nil {
		return fmt.Errorf("%w: %d", ErrUnknownHost, m.HostID)
	}
	h.lastBeat = b.now()
	h.dead = false
	h.load = *m
	h.hasLoad = true
	if m.StreamID == 0 {
		return nil
	}
	s := b.sessions[m.StreamID]
	if s == nil {
		s = &sessionRecord{streamID: m.StreamID}
		b.sessions[m.StreamID] = s
	}
	s.hostID = m.HostID
	s.epoch = m.Epoch
	if checkpoint != nil {
		s.checkpoint = append(s.checkpoint[:0], checkpoint...)
	}
	if floorState != nil {
		s.floorState = append(s.floorState[:0], floorState...)
	} else {
		s.floorState = nil
	}
	return nil
}

// HeartbeatFor builds a host's per-tick load report: remote count,
// deepest send backlog, and the quality-tier census of its attached
// remotes (evicted log entries are excluded).
func HeartbeatFor(hostID uint32, h *ah.Host) remoting.BrokerHeartbeat {
	m := remoting.BrokerHeartbeat{
		HostID:   hostID,
		StreamID: h.StreamID(),
		Epoch:    h.Epoch(),
	}
	for _, rh := range h.RemoteHealth() {
		if rh.State == ah.HealthEvicted {
			continue
		}
		if m.Remotes < 0xFFFF {
			m.Remotes++
		}
		if uint32(rh.QueuedBytes) > m.Backlog {
			m.Backlog = uint32(rh.QueuedBytes)
		}
		if t := int(rh.Tier); t >= 0 && t < len(m.Tiers) && m.Tiers[t] < 0xFF {
			m.Tiers[t]++
		}
	}
	return m
}

// liveLocked reports whether a host is placeable right now.
func (b *Broker) liveLocked(h *hostRecord, now time.Time) bool {
	return !h.dead && !h.draining && now.Sub(h.lastBeat) <= b.timeout
}

// loadLess orders hosts least-loaded first: fewest remotes, then
// shallowest backlog, then lowest ID for determinism.
func loadLess(a, c *hostRecord) bool {
	if a.load.Remotes != c.load.Remotes {
		return a.load.Remotes < c.load.Remotes
	}
	if a.load.Backlog != c.load.Backlog {
		return a.load.Backlog < c.load.Backlog
	}
	return a.id < c.id
}

// placeLocked picks the least-loaded live host matching keep.
func (b *Broker) placeLocked(keep func(*hostRecord) bool) (*hostRecord, error) {
	now := b.now()
	var best *hostRecord
	for _, h := range b.hosts {
		if !b.liveLocked(h, now) || !keep(h) {
			continue
		}
		if h.capacity != 0 && h.hasLoad && h.load.Remotes >= h.capacity {
			continue
		}
		if best == nil || loadLess(h, best) {
			best = h
		}
	}
	if best == nil {
		return nil, ErrNoHosts
	}
	return best, nil
}

// PlaceViewer picks the least-loaded live host or relay serving
// streamID (0 = any session) for a new viewer to attach to.
func (b *Broker) PlaceViewer(streamID uint32) (uint32, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	h, err := b.placeLocked(func(h *hostRecord) bool {
		return streamID == 0 || (h.hasLoad && h.load.StreamID == streamID)
	})
	if err != nil {
		return 0, err
	}
	return h.id, nil
}

// PlaceSession picks the least-loaded live origin host (never a relay)
// to home a session on, excluding the given host ID (0 = none).
func (b *Broker) PlaceSession(exclude uint32) (uint32, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	h, err := b.placeLocked(func(h *hostRecord) bool {
		return !h.relay && h.id != exclude
	})
	if err != nil {
		return 0, err
	}
	return h.id, nil
}

// Offer answers a viewer's placement request with the chosen host's ID
// and an SDP offer for it (draft Section 10.3): base supplies the
// session parameters, the broker fills in the placed host's address.
func (b *Broker) Offer(streamID uint32, base sdp.OfferConfig) (uint32, string, error) {
	hostID, err := b.PlaceViewer(streamID)
	if err != nil {
		return 0, "", err
	}
	b.mu.Lock()
	base.Address = b.hosts[hostID].addr
	b.mu.Unlock()
	d, err := sdp.BuildOffer(base)
	if err != nil {
		return 0, "", err
	}
	return hostID, d.Marshal(), nil
}

// migrateLocked builds the order that re-homes session s onto toHost.
// A session without a checkpoint (load-only control link) still
// migrates: the order's Checkpoint stays nil and the destination
// adopts the stream cold.
func (b *Broker) migrateLocked(s *sessionRecord, toHost uint32) *MigrationOrder {
	order := &MigrationOrder{
		Msg: remoting.BrokerMigrate{
			StreamID: s.streamID,
			FromHost: s.hostID,
			ToHost:   toHost,
			Epoch:    s.epoch,
		},
	}
	if s.checkpoint != nil {
		order.Checkpoint = append([]byte(nil), s.checkpoint...)
	}
	if s.floorState != nil {
		order.Msg.Flags |= remoting.MigrateWithFloor
		order.FloorState = append([]byte(nil), s.floorState...)
	}
	s.hostID = toHost
	s.migrations++
	return order
}

// Migrate orders streamID re-homed onto toHost (0 = broker picks the
// least-loaded live origin host other than the current home). Used for
// orderly drains; the failure path is Sweep.
func (b *Broker) Migrate(streamID, toHost uint32) (*MigrationOrder, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := b.sessions[streamID]
	if s == nil {
		return nil, fmt.Errorf("%w: stream %d", ErrUnknownSession, streamID)
	}
	if toHost == 0 {
		h, err := b.placeLocked(func(h *hostRecord) bool {
			return !h.relay && h.id != s.hostID
		})
		if err != nil {
			return nil, err
		}
		toHost = h.id
	} else if b.hosts[toHost] == nil {
		return nil, fmt.Errorf("%w: %d", ErrUnknownHost, toHost)
	}
	if toHost == s.hostID {
		return nil, fmt.Errorf("broker: stream %d already homed on host %d", streamID, toHost)
	}
	return b.migrateLocked(s, toHost), nil
}

// Sweep runs the failure detector: every host silent past the
// heartbeat timeout is declared dead, and each session homed on a dead
// host is re-homed onto the least-loaded surviving origin host. Orders
// are returned sorted by stream ID for determinism. Sessions that
// cannot be re-homed (no surviving host to place them on) are skipped
// and reported again on the next sweep.
func (b *Broker) Sweep() []*MigrationOrder {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	for _, h := range b.hosts {
		if !h.dead && now.Sub(h.lastBeat) > b.timeout {
			h.dead = true
		}
	}
	streams := make([]uint32, 0, len(b.sessions))
	for id := range b.sessions {
		streams = append(streams, id)
	}
	sort.Slice(streams, func(i, j int) bool { return streams[i] < streams[j] })
	var orders []*MigrationOrder
	for _, id := range streams {
		s := b.sessions[id]
		home := b.hosts[s.hostID]
		if home == nil || !home.dead {
			continue
		}
		dst, err := b.placeLocked(func(h *hostRecord) bool {
			return !h.relay && h.id != s.hostID
		})
		if err != nil {
			continue
		}
		orders = append(orders, b.migrateLocked(s, dst.id))
	}
	return orders
}

// Hosts returns the registered hosts sorted by ID.
func (b *Broker) Hosts() []HostStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]HostStatus, 0, len(b.hosts))
	for _, h := range b.hosts {
		st := HostStatus{
			ID:       h.id,
			Addr:     h.addr,
			Capacity: h.capacity,
			Relay:    h.relay,
			Draining: h.draining,
			Dead:     h.dead,
			LastBeat: h.lastBeat,
		}
		if h.hasLoad {
			st.StreamID = h.load.StreamID
			st.Remotes = h.load.Remotes
			st.Backlog = h.load.Backlog
			st.Tiers = h.load.Tiers
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Sessions returns the brokered sessions sorted by stream ID.
func (b *Broker) Sessions() []SessionStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]SessionStatus, 0, len(b.sessions))
	for _, s := range b.sessions {
		out = append(out, SessionStatus{
			StreamID:   s.streamID,
			HostID:     s.hostID,
			Epoch:      s.epoch,
			Migrations: s.migrations,
			HasFloor:   s.floorState != nil,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StreamID < out[j].StreamID })
	return out
}
