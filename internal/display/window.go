package display

import (
	"image"
	"image/color"
	"image/draw"

	"appshare/internal/region"
)

// Window is one top-level window on the virtual desktop. Its content
// lives in a window-local RGBA buffer; the Desktop composites windows in
// z-order. Drawing methods record damage in desktop coordinates so the
// capture pipeline can produce incremental RegionUpdates.
type Window struct {
	desktop *Desktop
	id      uint16
	group   uint8
	bounds  region.Rect // desktop coordinates
	buf     *image.RGBA // window-local content
	shared  bool
	// handler receives the HIP events regenerated at the AH while this
	// window has focus (nil for inert windows).
	handler EventHandler
}

// EventHandler is the application behavior behind a window: the AH
// regenerates participant HIP events into it (draft Section 1,
// "regenerates human interface events received from participants").
type EventHandler interface {
	// MousePressed/MouseReleased/MouseMoved receive window-local
	// coordinates.
	MousePressed(w *Window, x, y int, button uint8)
	MouseReleased(w *Window, x, y int, button uint8)
	MouseMoved(w *Window, x, y int)
	MouseWheel(w *Window, x, y int, distance int)
	KeyPressed(w *Window, keycode uint32)
	KeyReleased(w *Window, keycode uint32)
	KeyTyped(w *Window, text string)
}

// ID returns the window's protocol WindowID.
func (w *Window) ID() uint16 { return w.id }

// Group returns the window's GroupID (0 = ungrouped).
func (w *Window) Group() uint8 { return w.group }

// Bounds returns the window's desktop-coordinate rectangle.
func (w *Window) Bounds() region.Rect { return w.bounds }

// Shared reports whether the window belongs to the shared set.
func (w *Window) Shared() bool { return w.shared }

// SetHandler attaches an application behavior to the window.
func (w *Window) SetHandler(h EventHandler) { w.handler = h }

// damage registers a window-local rectangle as dirty, translated to
// desktop coordinates and clipped to the window.
func (w *Window) damage(r region.Rect) {
	r = r.Intersect(region.XYWH(0, 0, w.bounds.Width, w.bounds.Height))
	if r.Empty() {
		return
	}
	w.desktop.addDamage(r.Translate(w.bounds.Left, w.bounds.Top))
}

// Fill paints a window-local rectangle with a solid color.
func (w *Window) Fill(r region.Rect, c color.RGBA) {
	clipped := r.Intersect(region.XYWH(0, 0, w.bounds.Width, w.bounds.Height))
	if clipped.Empty() {
		return
	}
	draw.Draw(w.buf, image.Rect(clipped.Left, clipped.Top, clipped.Right(), clipped.Bottom()),
		&image.Uniform{c}, image.Point{}, draw.Src)
	w.damage(clipped)
}

// Clear fills the entire window with a color.
func (w *Window) Clear(c color.RGBA) {
	w.Fill(region.XYWH(0, 0, w.bounds.Width, w.bounds.Height), c)
}

// Blit copies an image into the window at (x, y) in window-local
// coordinates.
func (w *Window) Blit(img image.Image, x, y int) {
	b := img.Bounds()
	dst := image.Rect(x, y, x+b.Dx(), y+b.Dy())
	draw.Draw(w.buf, dst, img, b.Min, draw.Src)
	w.damage(region.XYWH(x, y, b.Dx(), b.Dy()))
}

// DrawText renders a single line of text at (x, y) using the builtin 5x7
// font and returns the text's bounding rectangle in window coordinates.
func (w *Window) DrawText(x, y int, s string, fg color.RGBA) region.Rect {
	cx := x
	for _, r := range s {
		g := glyphFor(r)
		for row := 0; row < GlyphHeight; row++ {
			bits := g[row]
			for col := 0; col < GlyphWidth; col++ {
				if bits&(1<<(GlyphWidth-1-col)) != 0 {
					px, py := cx+col, y+row
					if px >= 0 && px < w.bounds.Width && py >= 0 && py < w.bounds.Height {
						w.buf.SetRGBA(px, py, fg)
					}
				}
			}
		}
		cx += CellWidth
	}
	ext := region.XYWH(x, y, cx-x, GlyphHeight)
	w.damage(ext)
	return ext
}

// Scroll shifts the window-local rectangle r by dy pixels (negative =
// content moves up, as when scrolling down a document). The vacated band
// is filled with fill. The desktop records a MoveOp so the capture
// pipeline can emit a MoveRectangle instead of re-encoding the moved
// pixels (draft Section 5.2.3).
func (w *Window) Scroll(r region.Rect, dy int, fill color.RGBA) {
	r = r.Intersect(region.XYWH(0, 0, w.bounds.Width, w.bounds.Height))
	if r.Empty() || dy == 0 {
		return
	}
	absDy := dy
	if absDy < 0 {
		absDy = -absDy
	}
	if absDy >= r.Height {
		w.Fill(r, fill)
		return
	}

	// Move the surviving band within the buffer.
	src := r
	dst := r
	if dy < 0 { // content moves up
		src = region.XYWH(r.Left, r.Top+absDy, r.Width, r.Height-absDy)
		dst = region.XYWH(r.Left, r.Top, r.Width, r.Height-absDy)
	} else { // content moves down
		src = region.XYWH(r.Left, r.Top, r.Width, r.Height-absDy)
		dst = region.XYWH(r.Left, r.Top+absDy, r.Width, r.Height-absDy)
	}
	moveRGBA(w.buf, src, dst)

	// Vacated band.
	var vacated region.Rect
	if dy < 0 {
		vacated = region.XYWH(r.Left, r.Bottom()-absDy, r.Width, absDy)
	} else {
		vacated = region.XYWH(r.Left, r.Top, r.Width, absDy)
	}
	draw.Draw(w.buf, image.Rect(vacated.Left, vacated.Top, vacated.Right(), vacated.Bottom()),
		&image.Uniform{fill}, image.Point{}, draw.Src)

	// Record the move in WINDOW-LOCAL coordinates (the capture pipeline
	// translates to absolute using the window's bounds at emission time,
	// so a same-tick window relocation cannot invalidate the move), plus
	// damage for the vacated band. The moved region itself is NOT added
	// to pixel damage: the MoveOp covers it. Pending damage inside the
	// source band travels with the content — a participant applying the
	// move holds pre-damage pixels there, so the damage must also cover
	// the content's new location to repair them. The old location keeps
	// its damage too: in desktop coordinates the same damage may belong
	// to an overlapping window whose content did not move.
	srcAbs := src.Translate(w.bounds.Left, w.bounds.Top)
	dstAbs := dst.Translate(w.bounds.Left, w.bounds.Top)
	if w.desktop.othersOverlap(w.id, srcAbs) {
		// Another window shares these desktop coordinates: its content
		// did not move, so the old location must stay damaged too.
		w.desktop.damage.DuplicateWithin(srcAbs, dstAbs.Left-srcAbs.Left, dstAbs.Top-srcAbs.Top)
	} else {
		w.desktop.damage.TranslateWithin(srcAbs, dstAbs.Left-srcAbs.Left, dstAbs.Top-srcAbs.Top)
	}
	w.desktop.addMove(MoveOp{WindowID: w.id, Src: src, Dst: dst})
	w.desktop.addDamage(vacated.Translate(w.bounds.Left, w.bounds.Top))
}

// Image returns the live window-local content buffer. Callers must treat
// it as read-only; the capture pipeline reads it directly to avoid a copy
// per tick.
func (w *Window) Image() *image.RGBA { return w.buf }

// Snapshot returns a copy of the window-local content buffer.
func (w *Window) Snapshot() *image.RGBA {
	out := image.NewRGBA(w.buf.Bounds())
	copy(out.Pix, w.buf.Pix)
	return out
}

// moveRGBA copies src to dst within one buffer, handling overlap by
// choosing a safe row order (memmove semantics per row band).
func moveRGBA(buf *image.RGBA, src, dst region.Rect) {
	if src.Width != dst.Width || src.Height != dst.Height {
		panic("display: move with mismatched rectangle sizes")
	}
	rowLen := 4 * src.Width
	if dst.Top <= src.Top {
		for row := 0; row < src.Height; row++ {
			so := buf.PixOffset(src.Left, src.Top+row)
			do := buf.PixOffset(dst.Left, dst.Top+row)
			copy(buf.Pix[do:do+rowLen], buf.Pix[so:so+rowLen])
		}
	} else {
		for row := src.Height - 1; row >= 0; row-- {
			so := buf.PixOffset(src.Left, src.Top+row)
			do := buf.PixOffset(dst.Left, dst.Top+row)
			copy(buf.Pix[do:do+rowLen], buf.Pix[so:so+rowLen])
		}
	}
}
