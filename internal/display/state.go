package display

import (
	"fmt"
	"image"

	"appshare/internal/region"
)

// WindowState is the serializable form of one window: identity, window-
// manager attributes and the full content buffer. Pix is a packed RGBA
// buffer of Bounds.Width × Bounds.Height pixels (stride = 4 × width),
// row-major from the top-left corner.
type WindowState struct {
	ID     uint16
	Group  uint8
	Bounds region.Rect
	Shared bool
	Pix    []byte
}

// DesktopState is the serializable form of a Desktop, captured between
// ticks (when the damage and move journals are empty — State does not
// carry them). Windows are in z-order, bottom first. SpritePix may be
// empty when the cursor has no sprite; SpriteW/SpriteH give its size.
type DesktopState struct {
	Width, Height int
	NextID        uint16
	Generation    uint64
	CursorX       int
	CursorY       int
	SpriteW       int
	SpriteH       int
	SpritePix     []byte
	FocusID       uint16 // 0 = no focused window
	Windows       []WindowState
}

// State captures the desktop for migration. Pending damage, move
// journals and cursor-event flags are NOT captured: callers snapshot
// after a capture tick has drained them, and a restored desktop starts
// with clean journals.
func (d *Desktop) State() DesktopState {
	s := DesktopState{
		Width:      d.width,
		Height:     d.height,
		NextID:     d.nextID,
		Generation: d.generation,
		CursorX:    d.cursor.X,
		CursorY:    d.cursor.Y,
	}
	if sp := d.cursor.Sprite; sp != nil {
		b := sp.Bounds()
		s.SpriteW, s.SpriteH = b.Dx(), b.Dy()
		s.SpritePix = packRGBA(sp)
	}
	if d.focus != nil {
		s.FocusID = d.focus.id
	}
	s.Windows = make([]WindowState, 0, len(d.windows))
	for _, w := range d.windows {
		s.Windows = append(s.Windows, WindowState{
			ID:     w.id,
			Group:  w.group,
			Bounds: w.bounds,
			Shared: w.shared,
			Pix:    packRGBA(w.buf),
		})
	}
	return s
}

// NewDesktopFromState reconstructs a Desktop from a State() capture.
// Window handlers are not part of the state; callers reattach
// application behaviors (and workload bindings) after restore. The
// restored desktop has empty damage/move journals and clear cursor
// event flags — the first capture tick after restore emits nothing the
// original would not have.
func NewDesktopFromState(s DesktopState) (*Desktop, error) {
	if s.Width <= 0 || s.Height <= 0 {
		return nil, fmt.Errorf("display: bad desktop size %dx%d", s.Width, s.Height)
	}
	d := NewDesktop(s.Width, s.Height)
	d.nextID = s.NextID
	d.generation = s.Generation
	d.cursor.X, d.cursor.Y = s.CursorX, s.CursorY
	if s.SpriteW > 0 && s.SpriteH > 0 {
		sp, err := unpackRGBA(s.SpriteW, s.SpriteH, s.SpritePix)
		if err != nil {
			return nil, fmt.Errorf("display: cursor sprite: %w", err)
		}
		d.cursor.Sprite = sp
	} else {
		d.cursor.Sprite = nil
	}
	d.cursorMoved, d.cursorChanged = false, false
	d.windows = make([]*Window, 0, len(s.Windows))
	var focus *Window
	for _, ws := range s.Windows {
		if ws.Bounds.Empty() {
			return nil, fmt.Errorf("display: window %d has empty bounds", ws.ID)
		}
		buf, err := unpackRGBA(ws.Bounds.Width, ws.Bounds.Height, ws.Pix)
		if err != nil {
			return nil, fmt.Errorf("display: window %d: %w", ws.ID, err)
		}
		w := &Window{
			desktop: d,
			id:      ws.ID,
			group:   ws.Group,
			bounds:  ws.Bounds,
			buf:     buf,
			shared:  ws.Shared,
		}
		d.windows = append(d.windows, w)
		if ws.ID == s.FocusID {
			focus = w
		}
	}
	d.focus = focus
	// NewDesktop left a pristine damage set; restoring must not carry
	// the construction-time state of a fresh desktop either.
	d.damage = region.NewSet()
	d.moves = nil
	return d, nil
}

// packRGBA copies img's pixels into a tight buffer (stride 4×width).
func packRGBA(img *image.RGBA) []byte {
	b := img.Bounds()
	w, h := b.Dx(), b.Dy()
	out := make([]byte, 4*w*h)
	for y := 0; y < h; y++ {
		off := img.PixOffset(b.Min.X, b.Min.Y+y)
		copy(out[y*4*w:(y+1)*4*w], img.Pix[off:off+4*w])
	}
	return out
}

// unpackRGBA builds an origin-anchored RGBA image from a tight buffer.
func unpackRGBA(w, h int, pix []byte) (*image.RGBA, error) {
	if len(pix) != 4*w*h {
		return nil, fmt.Errorf("pixel buffer is %d bytes, want %d", len(pix), 4*w*h)
	}
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	copy(img.Pix, pix)
	return img, nil
}
