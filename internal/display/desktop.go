// Package display implements the virtual desktop substrate: an in-memory
// window system with z-ordered windows, per-window RGBA buffers, a damage
// journal and scroll (move) tracking.
//
// The real paper captures a live OS desktop; this package substitutes a
// deterministic window system that exercises the identical protocol paths:
// drawing damages regions (→ RegionUpdate), scrolling records moves
// (→ MoveRectangle), window create/move/resize/raise/close changes window
// state (→ WindowManagerInfo), and a cursor sprite moves independently
// (→ MousePointerInfo). See DESIGN.md, "Substitutions".
//
// Desktop is not safe for concurrent use; the application host serializes
// access to it.
package display

import (
	"fmt"
	"image"
	"image/color"
	"image/draw"

	"appshare/internal/region"
)

// MoveOp records a region move (scroll) in WINDOW-LOCAL coordinates, for
// translation into a MoveRectangle message. Local coordinates keep the
// op valid even if the window relocates before the next capture tick;
// the capture pipeline resolves them against the window's current bounds.
type MoveOp struct {
	WindowID uint16
	Src, Dst region.Rect
}

// Cursor is the desktop mouse pointer: a small sprite plus its hotspot
// position in desktop coordinates.
type Cursor struct {
	X, Y   int
	Sprite *image.RGBA
}

// Desktop is the virtual screen: a set of z-ordered windows over a
// background, with damage and move journals.
type Desktop struct {
	width, height int
	background    color.RGBA
	windows       []*Window // z-order: index 0 = bottom
	nextID        uint16
	damage        *region.Set
	moves         []MoveOp
	cursor        Cursor
	cursorMoved   bool
	cursorChanged bool
	// generation increments on any window-manager state change (create,
	// close, move, resize, raise, share-set change); the AH compares
	// generations to decide when to resend WindowManagerInfo.
	generation uint64
	focus      *Window
}

// NewDesktop returns a desktop of the given pixel dimensions.
func NewDesktop(width, height int) *Desktop {
	if width <= 0 || height <= 0 {
		panic("display: non-positive desktop size")
	}
	return &Desktop{
		width:      width,
		height:     height,
		background: color.RGBA{0x2E, 0x34, 0x40, 0xFF},
		nextID:     1,
		damage:     region.NewSet(),
		cursor:     Cursor{X: width / 2, Y: height / 2, Sprite: defaultCursorSprite()},
	}
}

// Size returns the desktop dimensions in pixels.
func (d *Desktop) Size() (w, h int) { return d.width, d.height }

// Bounds returns the desktop rectangle.
func (d *Desktop) Bounds() region.Rect { return region.XYWH(0, 0, d.width, d.height) }

// Generation returns the window-manager state generation counter.
func (d *Desktop) Generation() uint64 { return d.generation }

// CreateWindow adds a window with the next free WindowID, above all
// existing windows, and returns it. New windows start shared and cleared
// to white.
func (d *Desktop) CreateWindow(group uint8, bounds region.Rect) *Window {
	if bounds.Empty() {
		panic("display: empty window bounds")
	}
	w := &Window{
		desktop: d,
		id:      d.nextID,
		group:   group,
		bounds:  bounds,
		buf:     image.NewRGBA(image.Rect(0, 0, bounds.Width, bounds.Height)),
		shared:  true,
	}
	d.nextID++
	d.windows = append(d.windows, w)
	d.generation++
	d.focus = w
	w.Clear(color.RGBA{0xFF, 0xFF, 0xFF, 0xFF})
	return w
}

// Window returns the window with the given ID, or nil.
func (d *Desktop) Window(id uint16) *Window {
	for _, w := range d.windows {
		if w.id == id {
			return w
		}
	}
	return nil
}

// Windows returns the windows bottom-to-top.
func (d *Desktop) Windows() []*Window {
	out := make([]*Window, len(d.windows))
	copy(out, d.windows)
	return out
}

// SharedWindows returns the shared windows bottom-to-top.
func (d *Desktop) SharedWindows() []*Window {
	var out []*Window
	for _, w := range d.windows {
		if w.shared {
			out = append(out, w)
		}
	}
	return out
}

// CloseWindow removes a window; its screen area becomes damaged.
func (d *Desktop) CloseWindow(id uint16) error {
	for i, w := range d.windows {
		if w.id == id {
			d.windows = append(d.windows[:i], d.windows[i+1:]...)
			d.addDamage(w.bounds)
			d.generation++
			if d.focus == w {
				d.focus = nil
				if n := len(d.windows); n > 0 {
					d.focus = d.windows[n-1]
				}
			}
			return nil
		}
	}
	return fmt.Errorf("display: no window %d", id)
}

// MoveWindow relocates a window. Old and new areas are damaged and the
// window-manager generation advances (→ WindowManagerInfo). The
// participant keeps the window's image (draft Section 5.2.1), so only the
// desktop composition changes, not the window content.
func (d *Desktop) MoveWindow(id uint16, left, top int) error {
	w := d.Window(id)
	if w == nil {
		return fmt.Errorf("display: no window %d", id)
	}
	old := w.bounds
	w.bounds.Left, w.bounds.Top = left, top
	d.addDamage(old)
	d.addDamage(w.bounds)
	d.generation++
	return nil
}

// ResizeWindow changes a window's size, preserving the old content's
// top-left portion (the participant MUST keep the existing image after a
// resize, Section 5.2.1).
func (d *Desktop) ResizeWindow(id uint16, width, height int) error {
	if width <= 0 || height <= 0 {
		return fmt.Errorf("display: bad size %dx%d", width, height)
	}
	w := d.Window(id)
	if w == nil {
		return fmt.Errorf("display: no window %d", id)
	}
	old := w.bounds
	newBuf := image.NewRGBA(image.Rect(0, 0, width, height))
	draw.Draw(newBuf, newBuf.Bounds(), &image.Uniform{color.RGBA{0xFF, 0xFF, 0xFF, 0xFF}}, image.Point{}, draw.Src)
	draw.Draw(newBuf, w.buf.Bounds(), w.buf, image.Point{}, draw.Src)
	w.buf = newBuf
	w.bounds.Width, w.bounds.Height = width, height
	d.addDamage(old)
	d.addDamage(w.bounds)
	d.generation++
	return nil
}

// RaiseWindow moves a window to the top of the z-order and gives it
// focus.
func (d *Desktop) RaiseWindow(id uint16) error {
	for i, w := range d.windows {
		if w.id == id {
			if i != len(d.windows)-1 {
				d.windows = append(append(d.windows[:i], d.windows[i+1:]...), w)
				d.addDamage(w.bounds)
				d.generation++
			}
			d.focus = w
			return nil
		}
	}
	return fmt.Errorf("display: no window %d", id)
}

// SetShared marks a window as part of the shared set (application
// sharing) or not. Non-shared windows are blanked in shared compositions
// (draft Section 2: "A true application sharing system must blank all the
// nonshared windows").
func (d *Desktop) SetShared(id uint16, shared bool) error {
	w := d.Window(id)
	if w == nil {
		return fmt.Errorf("display: no window %d", id)
	}
	if w.shared != shared {
		w.shared = shared
		d.addDamage(w.bounds)
		d.generation++
	}
	return nil
}

// ShareGroup shares exactly the windows in the given group and unshares
// all others — application sharing of one process's window set.
func (d *Desktop) ShareGroup(group uint8) {
	for _, w := range d.windows {
		shared := w.group == group
		if w.shared != shared {
			w.shared = shared
			d.addDamage(w.bounds)
			d.generation++
		}
	}
}

// ShareAll shares every window — desktop sharing.
func (d *Desktop) ShareAll() {
	for _, w := range d.windows {
		if !w.shared {
			w.shared = true
			d.addDamage(w.bounds)
			d.generation++
		}
	}
}

// Focus returns the focused window (nil if none).
func (d *Desktop) Focus() *Window { return d.focus }

func (d *Desktop) addDamage(r region.Rect) {
	d.damage.Add(r.Intersect(d.Bounds()))
}

// othersOverlap reports whether any window other than id overlaps the
// desktop rectangle.
func (d *Desktop) othersOverlap(id uint16, r region.Rect) bool {
	for _, w := range d.windows {
		if w.id != id && w.bounds.Overlaps(r) {
			return true
		}
	}
	return false
}

func (d *Desktop) addMove(op MoveOp) {
	d.moves = append(d.moves, op)
}

// TakeDamage drains and returns the accumulated dirty rectangles,
// coalesced with the given waste budget.
func (d *Desktop) TakeDamage(maxWaste int) []region.Rect {
	if d.damage.Empty() {
		return nil
	}
	out := d.damage.Coalesce(maxWaste)
	d.damage.Clear()
	return out
}

// TakeMoves drains and returns the recorded move operations.
func (d *Desktop) TakeMoves() []MoveOp {
	out := d.moves
	d.moves = nil
	return out
}

// Composite renders the desktop into a fresh RGBA image. With onlyShared,
// non-shared windows are blanked (drawn as flat gray), reproducing the
// application-sharing semantics of Section 2.
func (d *Desktop) Composite(onlyShared bool) *image.RGBA {
	out := image.NewRGBA(image.Rect(0, 0, d.width, d.height))
	draw.Draw(out, out.Bounds(), &image.Uniform{d.background}, image.Point{}, draw.Src)
	blank := &image.Uniform{color.RGBA{0x80, 0x80, 0x80, 0xFF}}
	for _, w := range d.windows {
		dst := image.Rect(w.bounds.Left, w.bounds.Top, w.bounds.Right(), w.bounds.Bottom())
		if onlyShared && !w.shared {
			draw.Draw(out, dst, blank, image.Point{}, draw.Src)
			continue
		}
		draw.Draw(out, dst, w.buf, image.Point{}, draw.Src)
	}
	return out
}

// SetCursorSprite installs a new pointer image.
func (d *Desktop) SetCursorSprite(sprite *image.RGBA) {
	d.cursor.Sprite = sprite
	d.cursorChanged = true
}

// MoveCursor moves the pointer hotspot.
func (d *Desktop) MoveCursor(x, y int) {
	if x == d.cursor.X && y == d.cursor.Y {
		return
	}
	d.cursor.X, d.cursor.Y = x, y
	d.cursorMoved = true
}

// Cursor returns the current pointer state.
func (d *Desktop) Cursor() Cursor { return d.cursor }

// TakeCursorEvents reports and clears the moved/changed flags since the
// last call.
func (d *Desktop) TakeCursorEvents() (moved, spriteChanged bool) {
	moved, spriteChanged = d.cursorMoved, d.cursorChanged
	d.cursorMoved, d.cursorChanged = false, false
	return moved, spriteChanged
}

// WindowAt returns the topmost window containing the desktop point, or
// nil.
func (d *Desktop) WindowAt(x, y int) *Window {
	for i := len(d.windows) - 1; i >= 0; i-- {
		if d.windows[i].bounds.Contains(x, y) {
			return d.windows[i]
		}
	}
	return nil
}

// defaultCursorSprite draws a simple 12x18 arrow pointer.
func defaultCursorSprite() *image.RGBA {
	img := image.NewRGBA(image.Rect(0, 0, 12, 18))
	black := color.RGBA{0, 0, 0, 0xFF}
	white := color.RGBA{0xFF, 0xFF, 0xFF, 0xFF}
	for y := 0; y < 16; y++ {
		for x := 0; x <= y*2/3 && x < 10; x++ {
			img.SetRGBA(x, y, white)
		}
		img.SetRGBA(0, y, black)
		if e := y * 2 / 3; e < 10 {
			img.SetRGBA(e, y, black)
		}
	}
	for x := 0; x < 10; x++ {
		img.SetRGBA(x, 16, black)
	}
	return img
}
