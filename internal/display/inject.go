package display

import "fmt"

// HIP event regeneration (draft Section 1: the AH "regenerates human
// interface events received from participants"). The AH validates events
// first (internal/windows.Manager.ValidateEvent); these methods perform
// the actual regeneration against the virtual window system.

// InjectMousePressed regenerates a mouse press at desktop coordinates
// (x, y) targeted at the given window; the window is raised and focused
// exactly as a real window system would.
func (d *Desktop) InjectMousePressed(windowID uint16, x, y int, button uint8) error {
	w := d.Window(windowID)
	if w == nil {
		return fmt.Errorf("display: no window %d", windowID)
	}
	if err := d.RaiseWindow(windowID); err != nil {
		return err
	}
	d.MoveCursor(x, y)
	if w.handler != nil {
		w.handler.MousePressed(w, x-w.bounds.Left, y-w.bounds.Top, button)
	}
	return nil
}

// InjectMouseReleased regenerates a mouse release.
func (d *Desktop) InjectMouseReleased(windowID uint16, x, y int, button uint8) error {
	w := d.Window(windowID)
	if w == nil {
		return fmt.Errorf("display: no window %d", windowID)
	}
	d.MoveCursor(x, y)
	if w.handler != nil {
		w.handler.MouseReleased(w, x-w.bounds.Left, y-w.bounds.Top, button)
	}
	return nil
}

// InjectMouseMoved regenerates a pointer move.
func (d *Desktop) InjectMouseMoved(windowID uint16, x, y int) error {
	w := d.Window(windowID)
	if w == nil {
		return fmt.Errorf("display: no window %d", windowID)
	}
	d.MoveCursor(x, y)
	if w.handler != nil {
		w.handler.MouseMoved(w, x-w.bounds.Left, y-w.bounds.Top)
	}
	return nil
}

// InjectMouseWheel regenerates a wheel event (distance in HIP units, 120
// per notch).
func (d *Desktop) InjectMouseWheel(windowID uint16, x, y, distance int) error {
	w := d.Window(windowID)
	if w == nil {
		return fmt.Errorf("display: no window %d", windowID)
	}
	if w.handler != nil {
		w.handler.MouseWheel(w, x-w.bounds.Left, y-w.bounds.Top, distance)
	}
	return nil
}

// InjectKeyPressed regenerates a key press into the focused window (or
// the named window if it exists).
func (d *Desktop) InjectKeyPressed(windowID uint16, keycode uint32) error {
	w := d.keyTarget(windowID)
	if w == nil {
		return fmt.Errorf("display: no key target window %d", windowID)
	}
	if w.handler != nil {
		w.handler.KeyPressed(w, keycode)
	}
	return nil
}

// InjectKeyReleased regenerates a key release.
func (d *Desktop) InjectKeyReleased(windowID uint16, keycode uint32) error {
	w := d.keyTarget(windowID)
	if w == nil {
		return fmt.Errorf("display: no key target window %d", windowID)
	}
	if w.handler != nil {
		w.handler.KeyReleased(w, keycode)
	}
	return nil
}

// InjectKeyTyped injects UTF-8 text into the operating system input queue
// of the target window (draft Section 6.8).
func (d *Desktop) InjectKeyTyped(windowID uint16, text string) error {
	w := d.keyTarget(windowID)
	if w == nil {
		return fmt.Errorf("display: no key target window %d", windowID)
	}
	if w.handler != nil {
		w.handler.KeyTyped(w, text)
	}
	return nil
}

func (d *Desktop) keyTarget(windowID uint16) *Window {
	if w := d.Window(windowID); w != nil {
		return w
	}
	return d.focus
}
