package display

import (
	"image"
	"image/color"
	"math/rand"
	"testing"

	"appshare/internal/region"
)

// TestDamageCoversAllPixelChanges is the soundness invariant of the
// damage journal: after any sequence of drawing operations, every pixel
// of the shared composition that differs from the previous composition
// lies inside the reported damage or inside the destination of a
// reported move. If this fails, participants would be left with stale
// pixels forever — the one bug a screen-sharing system cannot have.
func TestDamageCoversAllPixelChanges(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		d := NewDesktop(320, 240)
		w1 := d.CreateWindow(1, region.XYWH(10, 10, 160, 120))
		w2 := d.CreateWindow(2, region.XYWH(100, 80, 150, 100))
		d.TakeDamage(0)
		d.TakeMoves()
		prev := d.Composite(true)

		for step := 0; step < 120; step++ {
			win := w1
			if rng.Intn(2) == 0 {
				win = w2
			}
			switch rng.Intn(6) {
			case 0:
				win.Fill(region.XYWH(rng.Intn(200)-20, rng.Intn(150)-20, rng.Intn(80)+1, rng.Intn(60)+1),
					randColor(rng))
			case 1:
				win.DrawText(rng.Intn(140), rng.Intn(100), "xyz", randColor(rng))
			case 2:
				win.Scroll(region.XYWH(0, 0, win.Bounds().Width, win.Bounds().Height),
					rng.Intn(21)-10, randColor(rng))
			case 3:
				_ = d.MoveWindow(win.ID(), rng.Intn(150), rng.Intn(100))
			case 4:
				_ = d.RaiseWindow(win.ID())
			case 5:
				sub := image.NewRGBA(image.Rect(0, 0, 20, 15))
				for i := range sub.Pix {
					sub.Pix[i] = byte(rng.Intn(256))
				}
				win.Blit(sub, rng.Intn(140), rng.Intn(100))
			}

			cur := d.Composite(true)
			covered := region.NewSet()
			for _, r := range d.TakeDamage(0) {
				covered.Add(r)
			}
			for _, mv := range d.TakeMoves() {
				// MoveOps are window-local; resolve against the window's
				// current bounds like the capture pipeline does.
				win := d.Window(mv.WindowID)
				if win == nil {
					continue
				}
				b := win.Bounds()
				covered.Add(mv.Dst.Translate(b.Left, b.Top))
				covered.Add(mv.Src.Translate(b.Left, b.Top))
			}
			for y := 0; y < 240; y++ {
				for x := 0; x < 320; x++ {
					if prev.RGBAAt(x, y) != cur.RGBAAt(x, y) && !covered.Contains(x, y) {
						t.Fatalf("seed %d step %d: pixel (%d,%d) changed outside damage %v",
							seed, step, x, y, covered.Rects())
					}
				}
			}
			prev = cur
		}
	}
}

func randColor(rng *rand.Rand) color.RGBA {
	return color.RGBA{R: uint8(rng.Intn(256)), G: uint8(rng.Intn(256)), B: uint8(rng.Intn(256)), A: 0xFF}
}
