package display

import (
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"image/color"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"appshare/internal/region"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/render_golden.txt")

// goldenScene renders a fixed desktop: windows, text in the builtin
// font, fills, a scroll and the cursor composite. Every byte of it is
// deterministic, so its hash is a renderer regression detector — if the
// font, compositor, blanking or scroll code changes output, this test
// pinpoints it.
func goldenScene() *Desktop {
	d := NewDesktop(640, 480)
	a := d.CreateWindow(1, region.XYWH(40, 30, 320, 240))
	b := d.CreateWindow(2, region.XYWH(260, 180, 280, 200))
	a.Fill(region.XYWH(0, 0, 320, 24), color.RGBA{0x34, 0x65, 0xA4, 0xFF})
	a.DrawText(8, 8, "Window A - Shared Lecture", color.RGBA{0xFF, 0xFF, 0xFF, 0xFF})
	a.DrawText(10, 40, "The quick brown fox jumps", color.RGBA{0x10, 0x10, 0x20, 0xFF})
	a.DrawText(10, 52, "over the lazy dog 0123456789", color.RGBA{0x10, 0x10, 0x20, 0xFF})
	a.DrawText(10, 64, "!\"#$%&'()*+,-./:;<=>?@[]^_`{|}~", color.RGBA{0x60, 0x20, 0x20, 0xFF})
	a.Scroll(region.XYWH(0, 24, 320, 216), -6, color.RGBA{0xFF, 0xFF, 0xFF, 0xFF})
	b.Fill(region.XYWH(0, 0, 280, 200), color.RGBA{0xEE, 0xE8, 0xD5, 0xFF})
	b.DrawText(12, 12, "Window B overlaps A", color.RGBA{0x00, 0x40, 0x00, 0xFF})
	_ = d.SetShared(2, true)
	d.MoveCursor(300, 220)
	return d
}

func sceneHashes() map[string]string {
	d := goldenScene()
	shared := d.Composite(true)
	full := d.Composite(false)
	_ = d.SetShared(2, false)
	blanked := d.Composite(true)
	h := func(pix []byte) string {
		sum := sha256.Sum256(pix)
		return hex.EncodeToString(sum[:])
	}
	return map[string]string{
		"composite_shared":    h(shared.Pix),
		"composite_full":      h(full.Pix),
		"composite_blanked_b": h(blanked.Pix),
	}
}

func TestRenderGolden(t *testing.T) {
	path := filepath.Join("testdata", "render_golden.txt")
	got := sceneHashes()

	var sb strings.Builder
	sb.WriteString("# SHA-256 of deterministic renders; regenerate with -update-golden\n")
	for _, k := range []string{"composite_blanked_b", "composite_full", "composite_shared"} {
		sb.WriteString(k + " " + got[k] + "\n")
	}
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to generate)", err)
	}
	if string(want) != sb.String() {
		t.Fatalf("render output changed:\n got:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestRenderDeterministic(t *testing.T) {
	a := sceneHashes()
	b := sceneHashes()
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("%s differs across identical runs", k)
		}
	}
	// The three views must actually differ from each other.
	if a["composite_shared"] == a["composite_blanked_b"] {
		t.Fatal("blanking window B changed nothing")
	}
}
