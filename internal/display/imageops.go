package display

import (
	"image"

	"appshare/internal/region"
)

// MoveRect copies the src rectangle of buf onto dst (same dimensions)
// with memmove semantics: overlapping rectangles copy correctly in
// either direction. Both the AH's window buffers and the participant's
// MoveRectangle application use it.
func MoveRect(buf *image.RGBA, src, dst region.Rect) {
	moveRGBA(buf, src, dst)
}
