package display

import (
	"image"
	"image/color"
	"testing"

	"appshare/internal/region"
)

var (
	white = color.RGBA{0xFF, 0xFF, 0xFF, 0xFF}
	black = color.RGBA{0x00, 0x00, 0x00, 0xFF}
	red   = color.RGBA{0xFF, 0x00, 0x00, 0xFF}
	blue  = color.RGBA{0x00, 0x00, 0xFF, 0xFF}
)

// figure2Desktop builds the draft Figure 2 scenario: a 1280x1024 AH with
// windows A, B, C.
func figure2Desktop() (*Desktop, *Window, *Window, *Window) {
	d := NewDesktop(1280, 1024)
	a := d.CreateWindow(1, region.XYWH(220, 150, 350, 450))
	c := d.CreateWindow(2, region.XYWH(850, 320, 160, 150))
	b := d.CreateWindow(1, region.XYWH(450, 400, 350, 300))
	return d, a, b, c
}

func TestCreateWindowAssignsIDsAndZOrder(t *testing.T) {
	d, a, b, c := figure2Desktop()
	if a.ID() != 1 || c.ID() != 2 || b.ID() != 3 {
		t.Fatalf("ids = %d,%d,%d", a.ID(), c.ID(), b.ID())
	}
	ws := d.Windows()
	if len(ws) != 3 || ws[0] != a || ws[1] != c || ws[2] != b {
		t.Fatal("z-order should be creation order (bottom first)")
	}
	if d.Focus() != b {
		t.Fatal("newest window should have focus")
	}
}

func TestFillDamagesDesktopCoords(t *testing.T) {
	d, a, _, _ := figure2Desktop()
	d.TakeDamage(0) // drain creation damage
	a.Fill(region.XYWH(10, 20, 30, 40), red)
	rects := d.TakeDamage(0)
	if len(rects) != 1 {
		t.Fatalf("damage rects = %v", rects)
	}
	want := region.XYWH(230, 170, 30, 40) // window (220,150) + local (10,20)
	if rects[0] != want {
		t.Fatalf("damage = %v, want %v", rects[0], want)
	}
	// Second drain is empty.
	if d.TakeDamage(0) != nil {
		t.Fatal("damage should be drained")
	}
}

func TestFillClipsToWindow(t *testing.T) {
	d, a, _, _ := figure2Desktop()
	d.TakeDamage(0)
	a.Fill(region.XYWH(340, 440, 100, 100), red) // extends past 350x450 window
	rects := d.TakeDamage(0)
	if len(rects) != 1 || rects[0] != region.XYWH(560, 590, 10, 10) {
		t.Fatalf("clipped damage = %v", rects)
	}
}

func TestCompositeColorsAndZOrder(t *testing.T) {
	d, a, b, _ := figure2Desktop()
	a.Clear(red)
	b.Clear(blue)
	img := d.Composite(true)
	// A-only area.
	if got := img.RGBAAt(230, 160); got != red {
		t.Fatalf("A area = %v", got)
	}
	// Overlap of A and B: B is above (created later).
	if got := img.RGBAAt(460, 410); got != blue {
		t.Fatalf("overlap = %v, want blue (B on top)", got)
	}
	// Background must not be any window color.
	if got := img.RGBAAt(5, 5); got == red || got == blue || got == white {
		t.Fatalf("background = %v, want the desktop background color", got)
	}
}

func TestRaiseChangesComposite(t *testing.T) {
	d, a, b, _ := figure2Desktop()
	a.Clear(red)
	b.Clear(blue)
	gen := d.Generation()
	if err := d.RaiseWindow(a.ID()); err != nil {
		t.Fatal(err)
	}
	if d.Generation() == gen {
		t.Fatal("raise must advance the WM generation")
	}
	img := d.Composite(true)
	if got := img.RGBAAt(460, 410); got != red {
		t.Fatalf("overlap after raise = %v, want red (A on top)", got)
	}
	// Raising the top window again changes nothing.
	gen = d.Generation()
	if err := d.RaiseWindow(a.ID()); err != nil {
		t.Fatal(err)
	}
	if d.Generation() != gen {
		t.Fatal("no-op raise must not advance the generation")
	}
}

// TestAppSharingBlanking reproduces the Section 2 requirement: non-shared
// windows are blanked in the shared composition (experiment E18).
func TestAppSharingBlanking(t *testing.T) {
	d, a, b, c := figure2Desktop()
	a.Clear(red)
	b.Clear(red)
	c.Clear(blue)
	d.ShareGroup(1) // A and B share group 1; C (group 2) is blanked
	if !a.Shared() || !b.Shared() || c.Shared() {
		t.Fatal("share flags wrong after ShareGroup")
	}
	img := d.Composite(true)
	if got := img.RGBAAt(860, 330); got != (color.RGBA{0x80, 0x80, 0x80, 0xFF}) {
		t.Fatalf("non-shared window area = %v, want blank gray", got)
	}
	if got := img.RGBAAt(230, 160); got != red {
		t.Fatalf("shared window area = %v, want red", got)
	}
	// Unblanked composition still shows C.
	img = d.Composite(false)
	if got := img.RGBAAt(860, 330); got != blue {
		t.Fatalf("full composite = %v, want blue", got)
	}
}

func TestMoveWindowDamagesBothAreas(t *testing.T) {
	d, a, _, _ := figure2Desktop()
	d.TakeDamage(0)
	gen := d.Generation()
	if err := d.MoveWindow(a.ID(), 0, 0); err != nil {
		t.Fatal(err)
	}
	if d.Generation() == gen {
		t.Fatal("move must advance the WM generation")
	}
	rects := d.TakeDamage(1 << 30)
	if len(rects) != 1 {
		t.Fatalf("damage = %v", rects)
	}
	// The union bounds must cover both old and new areas.
	u := rects[0]
	if !u.ContainsRect(region.XYWH(220, 150, 350, 450)) || !u.ContainsRect(region.XYWH(0, 0, 350, 450)) {
		t.Fatalf("damage %v does not cover both areas", u)
	}
}

func TestResizePreservesContent(t *testing.T) {
	d, a, _, _ := figure2Desktop()
	a.Fill(region.XYWH(0, 0, 50, 50), red)
	if err := d.ResizeWindow(a.ID(), 500, 600); err != nil {
		t.Fatal(err)
	}
	if a.Bounds().Width != 500 || a.Bounds().Height != 600 {
		t.Fatalf("bounds = %v", a.Bounds())
	}
	snap := a.Snapshot()
	if got := snap.RGBAAt(25, 25); got != red {
		t.Fatalf("content after resize = %v, want red", got)
	}
	if got := snap.RGBAAt(450, 550); got != white {
		t.Fatalf("new area = %v, want white", got)
	}
}

func TestCloseWindowDamagesArea(t *testing.T) {
	d, a, b, _ := figure2Desktop()
	d.TakeDamage(0)
	if err := d.CloseWindow(b.ID()); err != nil {
		t.Fatal(err)
	}
	if d.Window(b.ID()) != nil {
		t.Fatal("window still present")
	}
	rects := d.TakeDamage(1 << 30)
	if len(rects) != 1 || !rects[0].ContainsRect(region.XYWH(450, 400, 350, 300)) {
		t.Fatalf("damage = %v", rects)
	}
	if err := d.CloseWindow(99); err == nil {
		t.Fatal("closing unknown window should fail")
	}
	_ = a
}

func TestScrollRecordsMoveOp(t *testing.T) {
	d, a, _, _ := figure2Desktop()
	a.Fill(region.XYWH(0, 0, 350, 10), red) // top stripe
	d.TakeDamage(0)
	d.TakeMoves()

	// Scroll the whole window up by 10: stripe moves off, vacated band
	// at the bottom.
	a.Scroll(region.XYWH(0, 0, 350, 450), -10, white)
	moves := d.TakeMoves()
	if len(moves) != 1 {
		t.Fatalf("moves = %v", moves)
	}
	m := moves[0]
	if m.WindowID != a.ID() {
		t.Fatalf("move window = %d", m.WindowID)
	}
	wantSrc := region.XYWH(0, 10, 350, 440) // window-local coords
	wantDst := region.XYWH(0, 0, 350, 440)
	if m.Src != wantSrc || m.Dst != wantDst {
		t.Fatalf("move = %v -> %v, want %v -> %v", m.Src, m.Dst, wantSrc, wantDst)
	}
	// Vacated band damaged.
	rects := d.TakeDamage(0)
	if len(rects) != 1 || rects[0] != region.XYWH(220, 590, 350, 10) {
		t.Fatalf("vacated damage = %v", rects)
	}
	// Pixel result: stripe is gone (scrolled off the top).
	snap := a.Snapshot()
	if got := snap.RGBAAt(5, 0); got != white {
		t.Fatalf("top row = %v, want white", got)
	}
}

func TestScrollDownAndOverlap(t *testing.T) {
	d := NewDesktop(200, 200)
	w := d.CreateWindow(0, region.XYWH(0, 0, 100, 100))
	w.Fill(region.XYWH(0, 0, 100, 10), red)
	w.Scroll(region.XYWH(0, 0, 100, 100), 30, blue)
	snap := w.Snapshot()
	if got := snap.RGBAAt(50, 35); got != red {
		t.Fatalf("moved stripe = %v, want red", got)
	}
	if got := snap.RGBAAt(50, 5); got != blue {
		t.Fatalf("vacated band = %v, want blue", got)
	}
	_ = d
}

func TestScrollWholeRegionFills(t *testing.T) {
	d := NewDesktop(100, 100)
	w := d.CreateWindow(0, region.XYWH(0, 0, 50, 50))
	d.TakeMoves()
	w.Scroll(region.XYWH(0, 0, 50, 50), -60, red)
	if len(d.TakeMoves()) != 0 {
		t.Fatal("full-region scroll should not record a move")
	}
	if got := w.Snapshot().RGBAAt(25, 25); got != red {
		t.Fatalf("fill = %v, want red", got)
	}
}

func TestDrawTextDamagesAndRenders(t *testing.T) {
	d := NewDesktop(300, 100)
	w := d.CreateWindow(0, region.XYWH(0, 0, 300, 100))
	d.TakeDamage(0)
	ext := w.DrawText(10, 10, "Hello, World!", black)
	if ext.Empty() {
		t.Fatal("text extent empty")
	}
	rects := d.TakeDamage(1 << 30)
	if len(rects) != 1 || !rects[0].ContainsRect(ext) {
		t.Fatalf("damage %v does not cover text %v", rects, ext)
	}
	// Some pixels must be set.
	snap := w.Snapshot()
	found := false
	for x := ext.Left; x < ext.Right() && !found; x++ {
		for y := ext.Top; y < ext.Bottom(); y++ {
			if snap.RGBAAt(x, y) == black {
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("no glyph pixels rendered")
	}
}

func TestTextExtent(t *testing.T) {
	w, h := TextExtent("abc")
	if w != 3*CellWidth-1 || h != GlyphHeight {
		t.Fatalf("extent = %dx%d", w, h)
	}
	if w, h := TextExtent(""); w != 0 || h != 0 {
		t.Fatalf("empty extent = %dx%d", w, h)
	}
}

func TestCursor(t *testing.T) {
	d := NewDesktop(100, 100)
	d.TakeCursorEvents()
	d.MoveCursor(10, 20)
	moved, changed := d.TakeCursorEvents()
	if !moved || changed {
		t.Fatalf("events = %v, %v", moved, changed)
	}
	d.MoveCursor(10, 20) // same position: no event
	if moved, _ := d.TakeCursorEvents(); moved {
		t.Fatal("no-op move should not set flag")
	}
	d.SetCursorSprite(image.NewRGBA(image.Rect(0, 0, 4, 4)))
	if _, changed := d.TakeCursorEvents(); !changed {
		t.Fatal("sprite change should set flag")
	}
	cur := d.Cursor()
	if cur.X != 10 || cur.Y != 20 {
		t.Fatalf("cursor = %d,%d", cur.X, cur.Y)
	}
}

func TestWindowAt(t *testing.T) {
	d, a, b, _ := figure2Desktop()
	if got := d.WindowAt(460, 410); got != b {
		t.Fatalf("overlap point should hit top window B, got %v", got.ID())
	}
	if got := d.WindowAt(230, 160); got != a {
		t.Fatalf("A-only point = %v", got)
	}
	if got := d.WindowAt(5, 5); got != nil {
		t.Fatalf("background point = %v", got.ID())
	}
}

// recorder is an EventHandler that logs calls.
type recorder struct {
	presses  []image.Point
	keys     []uint32
	typed    string
	released int
	moved    int
	wheel    int
}

func (r *recorder) MousePressed(w *Window, x, y int, button uint8) {
	r.presses = append(r.presses, image.Pt(x, y))
}
func (r *recorder) MouseReleased(w *Window, x, y int, button uint8) { r.released++ }
func (r *recorder) MouseMoved(w *Window, x, y int)                  { r.moved++ }
func (r *recorder) MouseWheel(w *Window, x, y, distance int)        { r.wheel++ }
func (r *recorder) KeyPressed(w *Window, keycode uint32)            { r.keys = append(r.keys, keycode) }
func (r *recorder) KeyReleased(w *Window, keycode uint32)           {}
func (r *recorder) KeyTyped(w *Window, text string)                 { r.typed += text }

func TestInjectEvents(t *testing.T) {
	d, a, b, _ := figure2Desktop()
	rec := &recorder{}
	a.SetHandler(rec)

	// Press at desktop (230, 160) → window-local (10, 10); raises A.
	if err := d.InjectMousePressed(a.ID(), 230, 160, 1); err != nil {
		t.Fatal(err)
	}
	if len(rec.presses) != 1 || rec.presses[0] != image.Pt(10, 10) {
		t.Fatalf("presses = %v", rec.presses)
	}
	if ws := d.Windows(); ws[len(ws)-1] != a {
		t.Fatal("press should raise the window")
	}
	if d.Focus() != a {
		t.Fatal("press should focus the window")
	}
	cur := d.Cursor()
	if cur.X != 230 || cur.Y != 160 {
		t.Fatal("press should move the AH cursor")
	}

	// Key events go to the focused window when the ID is stale.
	if err := d.InjectKeyPressed(0, 0x70); err != nil {
		t.Fatal(err)
	}
	if len(rec.keys) != 1 || rec.keys[0] != 0x70 {
		t.Fatalf("keys = %v", rec.keys)
	}
	if err := d.InjectKeyTyped(a.ID(), "hé"); err != nil {
		t.Fatal(err)
	}
	if rec.typed != "hé" {
		t.Fatalf("typed = %q", rec.typed)
	}

	if err := d.InjectMouseReleased(a.ID(), 230, 160, 1); err != nil || rec.released != 1 {
		t.Fatalf("release: %v, count %d", err, rec.released)
	}
	if err := d.InjectMouseMoved(a.ID(), 231, 161); err != nil || rec.moved != 1 {
		t.Fatalf("move: %v, count %d", err, rec.moved)
	}
	if err := d.InjectMouseWheel(a.ID(), 231, 161, -120); err != nil || rec.wheel != 1 {
		t.Fatalf("wheel: %v, count %d", err, rec.wheel)
	}

	// Unknown window errors.
	if err := d.InjectMousePressed(99, 0, 0, 1); err == nil {
		t.Fatal("unknown window should fail")
	}
	_ = b
}
