package hip

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"unicode/utf8"

	"appshare/internal/core"
	"appshare/internal/keycodes"
)

// TestHIPMessagesTable3 exercises every HIP message type end to end
// (experiment E07).
func TestHIPMessagesTable3(t *testing.T) {
	events := []Event{
		&MousePressed{WindowID: 1, Button: ButtonLeft, Left: 100, Top: 200},
		&MouseReleased{WindowID: 1, Button: ButtonRight, Left: 100, Top: 200},
		&MouseMoved{WindowID: 2, Left: 50, Top: 60},
		&MouseWheelMoved{WindowID: 2, Left: 50, Top: 60, Distance: -240},
		&KeyPressed{WindowID: 3, KeyCode: keycodes.VKF1},
		&KeyReleased{WindowID: 3, KeyCode: keycodes.VKF1},
		&KeyTyped{WindowID: 3, Text: "héllo"},
	}
	wantTypes := []core.MessageType{121, 122, 123, 124, 125, 126, 127}
	for i, e := range events {
		if got := e.Type(); got != wantTypes[i] {
			t.Errorf("event %d type = %d, want %d", i, got, wantTypes[i])
		}
		buf, err := Marshal(e)
		if err != nil {
			t.Fatalf("marshal %T: %v", e, err)
		}
		if core.MessageType(buf[0]) != wantTypes[i] {
			t.Errorf("wire type = %d, want %d", buf[0], wantTypes[i])
		}
		back, err := Unmarshal(buf)
		if err != nil {
			t.Fatalf("unmarshal %T: %v", e, err)
		}
		if !reflect.DeepEqual(back, e) {
			t.Errorf("roundtrip %T: got %#v, want %#v", e, back, e)
		}
	}
}

func TestMousePressedWireLayout(t *testing.T) {
	// Figure 13: common header (type=121, param=button, windowID) then
	// 32-bit Left, 32-bit Top.
	buf, err := Marshal(&MousePressed{WindowID: 0x0102, Button: 3, Left: 0x0A0B0C0D, Top: 0x01020304})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{121, 3, 0x01, 0x02, 0x0A, 0x0B, 0x0C, 0x0D, 0x01, 0x02, 0x03, 0x04}
	if string(buf) != string(want) {
		t.Fatalf("bytes = %v, want %v", buf, want)
	}
}

func TestWheelTwosComplement(t *testing.T) {
	// Section 6.5: negative values use two's complement. -120 is one
	// notch toward the user.
	buf, err := Marshal(&MouseWheelMoved{WindowID: 1, Left: 0, Top: 0, Distance: -120})
	if err != nil {
		t.Fatal(err)
	}
	dist := buf[len(buf)-4:]
	want := []byte{0xFF, 0xFF, 0xFF, 0x88} // -120 two's complement
	if string(dist) != string(want) {
		t.Fatalf("distance bytes = %v, want %v", dist, want)
	}
	e, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	w := e.(*MouseWheelMoved)
	if w.Distance != -120 || w.Notches() != -1 {
		t.Fatalf("distance = %d, notches = %d", w.Distance, w.Notches())
	}
}

func TestKeyPressedF1WireValue(t *testing.T) {
	// Draft example: F1 is 0x70.
	buf, err := Marshal(&KeyPressed{WindowID: 0, KeyCode: keycodes.VKF1})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{125, 0, 0, 0, 0, 0, 0, 0x70}
	if string(buf) != string(want) {
		t.Fatalf("bytes = %v, want %v", buf, want)
	}
}

func TestKeyTypedNoPadding(t *testing.T) {
	// Section 6.8: "There is no padding for the UTF-8 string."
	buf, err := Marshal(&KeyTyped{WindowID: 5, Text: "abc"})
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != core.HeaderSize+3 {
		t.Fatalf("len = %d, want %d", len(buf), core.HeaderSize+3)
	}
}

func TestKeyTypedInvalidUTF8(t *testing.T) {
	if _, err := Marshal(&KeyTyped{Text: string([]byte{0xFF, 0xFE})}); err == nil {
		t.Error("invalid UTF-8 should fail to marshal")
	}
	bad := append([]byte{127, 0, 0, 1}, 0xFF, 0xFE)
	if _, err := Unmarshal(bad); err == nil {
		t.Error("invalid UTF-8 should fail to unmarshal")
	}
}

func TestButtonZeroRoundTrips(t *testing.T) {
	// The draft allows unrecognized button values on the wire (the AH
	// MAY ignore them), so decode and re-encode must round-trip even
	// button 0; only the participant's builders reject it as user input.
	buf, err := Marshal(&MousePressed{WindowID: 1, Button: 0, Left: 1, Top: 2})
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if ev.(*MousePressed).Button != 0 {
		t.Fatal("button value changed in flight")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal([]byte{121, 1}); err == nil {
		t.Error("short header should fail")
	}
	// Remoting type in a HIP stream.
	if _, err := Unmarshal([]byte{2, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Error("remoting type should fail")
	}
	// Truncated body.
	if _, err := Unmarshal([]byte{121, 1, 0, 0, 0, 0}); err == nil {
		t.Error("truncated MousePressed should fail")
	}
}

func TestSplitKeyTyped(t *testing.T) {
	text := strings.Repeat("é", 100) // 200 bytes of UTF-8
	msgs, err := SplitKeyTyped(9, text, 54)
	if err != nil {
		t.Fatal(err)
	}
	var rebuilt strings.Builder
	for _, m := range msgs {
		if len(m.Text)+core.HeaderSize > 54 {
			t.Fatalf("chunk exceeds mtu: %d", len(m.Text))
		}
		if !utf8.ValidString(m.Text) {
			t.Fatalf("chunk not valid UTF-8: %q", m.Text)
		}
		if m.WindowID != 9 {
			t.Fatalf("windowID = %d", m.WindowID)
		}
		rebuilt.WriteString(m.Text)
	}
	if rebuilt.String() != text {
		t.Fatal("split does not concatenate to original")
	}
	if len(msgs) < 4 {
		t.Fatalf("split produced %d messages, want >= 4", len(msgs))
	}
}

func TestSplitKeyTypedErrors(t *testing.T) {
	if _, err := SplitKeyTyped(0, "ok", 5); err == nil {
		t.Error("mtu below one rune should fail")
	}
	if _, err := SplitKeyTyped(0, string([]byte{0xFF}), 100); err == nil {
		t.Error("invalid UTF-8 should fail")
	}
}

func TestQuickKeyTypedSplitIdentity(t *testing.T) {
	f := func(runes []rune, mtuSeed uint8) bool {
		text := string(runes) // always valid UTF-8
		mtu := core.HeaderSize + utf8.UTFMax + int(mtuSeed)
		msgs, err := SplitKeyTyped(1, text, mtu)
		if err != nil {
			return false
		}
		var sb strings.Builder
		for _, m := range msgs {
			if core.HeaderSize+len(m.Text) > mtu {
				return false
			}
			sb.WriteString(m.Text)
		}
		return sb.String() == text
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEventRoundtrip(t *testing.T) {
	f := func(win uint16, left, top uint32, dist int32) bool {
		events := []Event{
			&MouseMoved{WindowID: win, Left: left, Top: top},
			&MouseWheelMoved{WindowID: win, Left: left, Top: top, Distance: dist},
			&KeyPressed{WindowID: win, KeyCode: keycodes.Code(left)},
		}
		for _, e := range events {
			buf, err := Marshal(e)
			if err != nil {
				return false
			}
			back, err := Unmarshal(buf)
			if err != nil || !reflect.DeepEqual(back, e) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
