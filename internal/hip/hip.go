// Package hip implements the Human Interface Protocol of
// draft-boyaci-avt-app-sharing-00 Section 6: the seven participant-to-AH
// messages that carry mouse and keyboard events (Figures 13–19, Table 3).
//
// HIP messages are RTP payloads with a payload type distinct from the
// remoting stream. Per Section 6.1.1 the participant MUST set the RTP
// marker bit to zero and the AH ignores it; HIP messages are never
// fragmented.
package hip

import (
	"errors"
	"fmt"
	"unicode/utf8"

	"appshare/internal/core"
	"appshare/internal/keycodes"
	"appshare/internal/wire"
)

// Mouse buttons carried in the parameter field of MousePressed and
// MouseReleased (Sections 6.2, 6.3). Other values MAY be negotiated; the
// AH MAY ignore unrecognized values.
const (
	ButtonLeft   = 1
	ButtonRight  = 2
	ButtonMiddle = 3
)

// WheelNotch is the distance unit of MouseWheelMoved: each discrete wheel
// notch is 120 so that smooth-scrolling mice can report intermediate
// values (Section 6.5).
const WheelNotch = 120

// Decoding errors.
var (
	ErrNotHIP    = errors.New("hip: not a HIP message type")
	ErrTruncated = errors.New("hip: truncated message")
)

// Event is one human-interface event, encodable as a HIP message.
type Event interface {
	// Type returns the HIP message type (Table 3).
	Type() core.MessageType
	// Window returns the WindowID of the window holding focus when the
	// event occurred (Section 6.1.2).
	Window() uint16
	// param returns the parameter byte of the common header.
	param() uint8
	// appendBody appends the message-type specific header/payload.
	appendBody(w *wire.Writer)
}

// MousePressed instructs the AH to generate a mouse-press at (Left, Top)
// in absolute screen coordinates (Figure 13).
type MousePressed struct {
	WindowID  uint16
	Button    uint8
	Left, Top uint32
}

// Type implements Event.
func (m *MousePressed) Type() core.MessageType { return core.TypeMousePressed }

// Window implements Event.
func (m *MousePressed) Window() uint16 { return m.WindowID }

func (m *MousePressed) param() uint8 { return m.Button }

func (m *MousePressed) appendBody(w *wire.Writer) {
	w.Uint32(m.Left)
	w.Uint32(m.Top)
}

// MouseReleased instructs the AH to generate a mouse-release at
// (Left, Top) (Figure 14).
type MouseReleased struct {
	WindowID  uint16
	Button    uint8
	Left, Top uint32
}

// Type implements Event.
func (m *MouseReleased) Type() core.MessageType { return core.TypeMouseReleased }

// Window implements Event.
func (m *MouseReleased) Window() uint16 { return m.WindowID }

func (m *MouseReleased) param() uint8 { return m.Button }

func (m *MouseReleased) appendBody(w *wire.Writer) {
	w.Uint32(m.Left)
	w.Uint32(m.Top)
}

// MouseMoved instructs the AH to move the pointer to (Left, Top)
// (Figure 15).
type MouseMoved struct {
	WindowID  uint16
	Left, Top uint32
}

// Type implements Event.
func (m *MouseMoved) Type() core.MessageType { return core.TypeMouseMoved }

// Window implements Event.
func (m *MouseMoved) Window() uint16 { return m.WindowID }

func (m *MouseMoved) param() uint8 { return 0 }

func (m *MouseMoved) appendBody(w *wire.Writer) {
	w.Uint32(m.Left)
	w.Uint32(m.Top)
}

// MouseWheelMoved instructs the AH to generate a wheel event at
// (Left, Top). Distance carries 120 per notch, positive away from the
// user, negative toward the user, two's complement on the wire
// (Figure 16).
type MouseWheelMoved struct {
	WindowID  uint16
	Left, Top uint32
	Distance  int32
}

// Type implements Event.
func (m *MouseWheelMoved) Type() core.MessageType { return core.TypeMouseWheelMoved }

// Window implements Event.
func (m *MouseWheelMoved) Window() uint16 { return m.WindowID }

func (m *MouseWheelMoved) param() uint8 { return 0 }

func (m *MouseWheelMoved) appendBody(w *wire.Writer) {
	w.Uint32(m.Left)
	w.Uint32(m.Top)
	w.Int32(m.Distance)
}

// Notches returns the wheel rotation in whole notches (Distance / 120),
// truncating any smooth-scroll remainder.
func (m *MouseWheelMoved) Notches() int { return int(m.Distance) / WheelNotch }

// KeyPressed instructs the AH to generate a key-press of the given Java
// virtual key (Figure 17).
type KeyPressed struct {
	WindowID uint16
	KeyCode  keycodes.Code
}

// Type implements Event.
func (k *KeyPressed) Type() core.MessageType { return core.TypeKeyPressed }

// Window implements Event.
func (k *KeyPressed) Window() uint16 { return k.WindowID }

func (k *KeyPressed) param() uint8 { return 0 }

func (k *KeyPressed) appendBody(w *wire.Writer) { w.Uint32(uint32(k.KeyCode)) }

// KeyReleased instructs the AH to generate a key-release (Figure 18).
// A KeyReleased without a prior KeyPressed is acceptable (Section 6.7).
type KeyReleased struct {
	WindowID uint16
	KeyCode  keycodes.Code
}

// Type implements Event.
func (k *KeyReleased) Type() core.MessageType { return core.TypeKeyReleased }

// Window implements Event.
func (k *KeyReleased) Window() uint16 { return k.WindowID }

func (k *KeyReleased) param() uint8 { return 0 }

func (k *KeyReleased) appendBody(w *wire.Writer) { w.Uint32(uint32(k.KeyCode)) }

// KeyTyped instructs the AH to inject UTF-8 text into the operating
// system's input queue (Figure 19). There is no padding; text longer than
// one packet MUST be split across several KeyTyped messages (use
// SplitKeyTyped).
type KeyTyped struct {
	WindowID uint16
	Text     string
}

// Type implements Event.
func (k *KeyTyped) Type() core.MessageType { return core.TypeKeyTyped }

// Window implements Event.
func (k *KeyTyped) Window() uint16 { return k.WindowID }

func (k *KeyTyped) param() uint8 { return 0 }

func (k *KeyTyped) appendBody(w *wire.Writer) { w.Write([]byte(k.Text)) }

// Marshal encodes an event as a complete HIP RTP payload: common header
// plus message-specific fields. Button values outside 1–3 are carried
// as-is: the draft allows negotiating additional buttons and lets the AH
// ignore unrecognized values, so decode→re-encode must round-trip them
// (participant builders validate user input separately).
func Marshal(e Event) ([]byte, error) {
	if m, ok := e.(*KeyTyped); ok {
		if !utf8.ValidString(m.Text) {
			return nil, errors.New("hip: KeyTyped text is not valid UTF-8")
		}
	}
	w := wire.NewWriter(core.HeaderSize + 12)
	core.Header{Type: e.Type(), Parameter: e.param(), WindowID: e.Window()}.AppendTo(w)
	e.appendBody(w)
	return w.Bytes(), nil
}

// Unmarshal decodes a HIP RTP payload into its event.
func Unmarshal(payload []byte) (Event, error) {
	hdr, body, err := core.ParseHeader(payload)
	if err != nil {
		return nil, err
	}
	if !hdr.Type.IsHIP() {
		return nil, fmt.Errorf("%w: %v", ErrNotHIP, hdr.Type)
	}
	r := wire.NewReader(body)
	var e Event
	switch hdr.Type {
	case core.TypeMousePressed:
		e = &MousePressed{WindowID: hdr.WindowID, Button: hdr.Parameter, Left: r.Uint32(), Top: r.Uint32()}
	case core.TypeMouseReleased:
		e = &MouseReleased{WindowID: hdr.WindowID, Button: hdr.Parameter, Left: r.Uint32(), Top: r.Uint32()}
	case core.TypeMouseMoved:
		e = &MouseMoved{WindowID: hdr.WindowID, Left: r.Uint32(), Top: r.Uint32()}
	case core.TypeMouseWheelMoved:
		e = &MouseWheelMoved{WindowID: hdr.WindowID, Left: r.Uint32(), Top: r.Uint32(), Distance: r.Int32()}
	case core.TypeKeyPressed:
		e = &KeyPressed{WindowID: hdr.WindowID, KeyCode: keycodes.Code(r.Uint32())}
	case core.TypeKeyReleased:
		e = &KeyReleased{WindowID: hdr.WindowID, KeyCode: keycodes.Code(r.Uint32())}
	case core.TypeKeyTyped:
		text := r.Rest()
		if !utf8.Valid(text) {
			return nil, errors.New("hip: KeyTyped payload is not valid UTF-8")
		}
		e = &KeyTyped{WindowID: hdr.WindowID, Text: string(text)}
	}
	if r.Err() != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, r.Err())
	}
	return e, nil
}

// SplitKeyTyped splits text into KeyTyped messages whose encoded size does
// not exceed mtu bytes, cutting only at UTF-8 rune boundaries (Section
// 6.8: "The participant MUST send more than one KeyTyped message if the
// string does not fit into a single KeyTyped packet").
func SplitKeyTyped(windowID uint16, text string, mtu int) ([]*KeyTyped, error) {
	room := mtu - core.HeaderSize
	if room < utf8.UTFMax {
		return nil, fmt.Errorf("hip: mtu %d cannot fit any rune", mtu)
	}
	if !utf8.ValidString(text) {
		return nil, errors.New("hip: text is not valid UTF-8")
	}
	var out []*KeyTyped
	for len(text) > 0 {
		n := len(text)
		if n > room {
			n = room
			// Back up to a rune boundary.
			for n > 0 && !utf8.RuneStart(text[n]) {
				n--
			}
		}
		out = append(out, &KeyTyped{WindowID: windowID, Text: text[:n]})
		text = text[n:]
	}
	return out, nil
}
