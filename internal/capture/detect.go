package capture

import (
	"hash/fnv"
	"image"

	"appshare/internal/region"
)

// Polling change detection. The virtual desktop journals its own damage,
// but a real AH attached to an opaque framebuffer must *detect* changes
// (draft Section 4.2: "Detecting a change in the GUI of the shared
// application, the AH prepares an RTP packet..."). Differ implements the
// standard technique: hash fixed-size tiles of successive frames and
// report tiles whose hash changed. ScrollDetect then recognizes when a
// damaged band is actually the previous frame translated vertically, so
// the sender can emit MoveRectangle instead of re-encoding pixels.

// Differ detects changed regions between successive frames by tile
// hashing. The zero value is not usable; call NewDiffer.
type Differ struct {
	tile  int
	prev  []uint64
	cols  int
	rows  int
	w, h  int
	first bool
}

// NewDiffer returns a Differ with the given tile size (pixels).
func NewDiffer(tileSize int) *Differ {
	if tileSize <= 0 {
		tileSize = 32
	}
	return &Differ{tile: tileSize, first: true}
}

// Diff hashes img's tiles against the previous frame and returns the
// changed area as coalesced rectangles. The first call reports the whole
// frame. img must keep the same dimensions across calls (a dimension
// change reports the whole frame and resets).
func (d *Differ) Diff(img *image.RGBA) []region.Rect {
	b := img.Bounds()
	w, h := b.Dx(), b.Dy()
	cols := (w + d.tile - 1) / d.tile
	rows := (h + d.tile - 1) / d.tile
	cur := make([]uint64, cols*rows)
	for ty := 0; ty < rows; ty++ {
		for tx := 0; tx < cols; tx++ {
			cur[ty*cols+tx] = d.hashTile(img, b, tx, ty)
		}
	}
	reset := d.first || w != d.w || h != d.h
	prev := d.prev
	d.prev = cur
	d.cols, d.rows, d.w, d.h = cols, rows, w, h
	d.first = false
	if reset {
		return []region.Rect{region.XYWH(0, 0, w, h)}
	}

	changed := region.NewSet()
	for ty := 0; ty < rows; ty++ {
		for tx := 0; tx < cols; tx++ {
			if cur[ty*cols+tx] != prev[ty*cols+tx] {
				tw := min(d.tile, w-tx*d.tile)
				th := min(d.tile, h-ty*d.tile)
				changed.Add(region.XYWH(tx*d.tile, ty*d.tile, tw, th))
			}
		}
	}
	return changed.Coalesce(d.tile * d.tile)
}

func (d *Differ) hashTile(img *image.RGBA, b image.Rectangle, tx, ty int) uint64 {
	h := fnv.New64a()
	x0 := b.Min.X + tx*d.tile
	y0 := b.Min.Y + ty*d.tile
	x1 := min(x0+d.tile, b.Max.X)
	y1 := min(y0+d.tile, b.Max.Y)
	for y := y0; y < y1; y++ {
		row := img.Pix[img.PixOffset(x0, y):img.PixOffset(x1, y)]
		_, _ = h.Write(row)
	}
	return h.Sum64()
}

// DetectVerticalScroll checks whether cur within rect equals prev within
// rect shifted vertically by some dy in [-maxShift, maxShift], dy != 0.
// It returns the detected shift (positive = content moved down) and
// whether one was found. Row hashing makes the search O(rows × shifts)
// instead of O(pixels × shifts).
//
// This reproduces what production sharing systems do to synthesize
// MoveRectangle (Section 5.2.3) from opaque framebuffers.
func DetectVerticalScroll(prev, cur *image.RGBA, rect region.Rect, maxShift int) (int, bool) {
	if rect.Empty() || maxShift <= 0 || rect.Height <= maxShift {
		return 0, false
	}
	prevRows := rowHashes(prev, rect)
	curRows := rowHashes(cur, rect)

	best, bestMatch := 0, 0
	for dy := -maxShift; dy <= maxShift; dy++ {
		if dy == 0 {
			continue
		}
		// cur[y] should equal prev[y-dy].
		match := 0
		total := 0
		for y := 0; y < rect.Height; y++ {
			src := y - dy
			if src < 0 || src >= rect.Height {
				continue
			}
			total++
			if curRows[y] == prevRows[src] {
				match++
			}
		}
		if total > 0 && match > bestMatch && match*10 >= total*9 { // ≥90% of rows line up
			best, bestMatch = dy, match
		}
	}
	if best == 0 {
		return 0, false
	}
	// Reject degenerate matches (e.g. constant-color regions where every
	// shift "matches"): require the region to actually have changed.
	same := true
	for y := 0; y < rect.Height; y++ {
		if curRows[y] != prevRows[y] {
			same = false
			break
		}
	}
	if same {
		return 0, false
	}
	return best, true
}

func rowHashes(img *image.RGBA, rect region.Rect) []uint64 {
	out := make([]uint64, rect.Height)
	for y := 0; y < rect.Height; y++ {
		h := fnv.New64a()
		row := img.Pix[img.PixOffset(rect.Left, rect.Top+y):img.PixOffset(rect.Right(), rect.Top+y)]
		_, _ = h.Write(row)
		out[y] = h.Sum64()
	}
	return out
}
