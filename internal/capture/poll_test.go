package capture

import (
	"bytes"
	"image"
	"image/color"
	"image/draw"
	"testing"

	"appshare/internal/codec"
	"appshare/internal/display"
	"appshare/internal/region"
	"appshare/internal/workload"
)

func newPoller(t *testing.T) (*Poller, *display.Desktop, *display.Window) {
	t.Helper()
	d := display.NewDesktop(800, 600)
	w := d.CreateWindow(1, region.XYWH(100, 80, 400, 300))
	p, err := New(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return NewPoller(p, 16, 40), d, w
}

// applyBatch replays a batch onto a model image the way a participant
// would, for convergence checks. model is in window-local coordinates.
func applyBatch(t *testing.T, model *image.RGBA, win *display.Window, b *Batch) {
	t.Helper()
	reg := codec.DefaultRegistry()
	ox, oy := win.Bounds().Left, win.Bounds().Top
	for _, mv := range b.Moves {
		if mv.WindowID != win.ID() {
			continue
		}
		src := mv.Src().Translate(-ox, -oy)
		dst := mv.Dst().Translate(-ox, -oy)
		display.MoveRect(model, src, dst)
	}
	for _, up := range b.Updates {
		if up.Msg.WindowID != win.ID() {
			continue
		}
		c, err := reg.Lookup(up.Msg.ContentPT)
		if err != nil {
			t.Fatal(err)
		}
		img, err := c.Decode(up.Msg.Content)
		if err != nil {
			t.Fatal(err)
		}
		lx, ly := int(up.Msg.Left)-ox, int(up.Msg.Top)-oy
		draw.Draw(model, image.Rect(lx, ly, lx+img.Bounds().Dx(), ly+img.Bounds().Dy()), img, image.Point{}, draw.Src)
	}
}

func TestPollerFirstTickFullWindow(t *testing.T) {
	po, _, w := newPoller(t)
	b, err := po.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if b.WMInfo == nil {
		t.Fatal("first poll should carry WMInfo")
	}
	covered := region.NewSet()
	for _, up := range b.Updates {
		covered.Add(up.Rect)
	}
	if !covered.Contains(w.Bounds().Left, w.Bounds().Top) ||
		!covered.Contains(w.Bounds().Right()-1, w.Bounds().Bottom()-1) {
		t.Fatalf("first poll does not cover the window: %v", covered.Rects())
	}
	// Quiescent tick: empty.
	b, err = po.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if !b.Empty() {
		t.Fatalf("idle poll = %+v", b)
	}
}

func TestPollerDetectsDrawing(t *testing.T) {
	po, _, w := newPoller(t)
	if _, err := po.Tick(); err != nil {
		t.Fatal(err)
	}
	w.Fill(region.XYWH(50, 60, 30, 20), color.RGBA{0xFF, 0, 0, 0xFF})
	b, err := po.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Updates) == 0 {
		t.Fatal("drawing not detected")
	}
	covered := region.NewSet()
	for _, up := range b.Updates {
		covered.Add(up.Rect)
	}
	// Absolute coords: window origin (100,80) + local (50,60).
	if !covered.Contains(155, 145) {
		t.Fatalf("change not covered: %v", covered.Rects())
	}
}

func TestPollerSynthesizesMoveRectangleForScrolls(t *testing.T) {
	po, _, w := newPoller(t)
	ty := workload.NewTyping(w, 2000, 4)
	for i := 0; i < 6; i++ {
		ty.Step()
	}
	if _, err := po.Tick(); err != nil {
		t.Fatal(err)
	}
	w.Scroll(region.XYWH(0, 0, 400, 300), -15, color.RGBA{0xFF, 0xFF, 0xFF, 0xFF})
	b, err := po.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Moves) != 1 {
		t.Fatalf("moves = %d (updates %d); scroll not synthesized", len(b.Moves), len(b.Updates))
	}
	mv := b.Moves[0]
	if mv.SrcTop-mv.DstTop != 15 {
		t.Fatalf("move = %+v, want 15px upward", mv)
	}
	// Residual updates should be far smaller than the window.
	residual := 0
	for _, up := range b.Updates {
		residual += up.Rect.Area()
	}
	if residual > 400*300/4 {
		t.Fatalf("residual damage too large: %d px", residual)
	}
}

// TestPollerConvergesWithOracle runs the same workload through the
// polling path and checks the replayed model matches the window exactly
// after each tick — polling must be lossless, just less informed.
func TestPollerConvergesWithOracle(t *testing.T) {
	po, _, w := newPoller(t)
	model := image.NewRGBA(image.Rect(0, 0, 400, 300))

	b, err := po.Tick() // initial full state
	if err != nil {
		t.Fatal(err)
	}
	applyBatch(t, model, w, b)

	ty := workload.NewTyping(w, 64, 4)
	sc := workload.NewScrolling(w, 1, 5)
	for step := 0; step < 30; step++ {
		if step%3 == 2 {
			sc.Step()
		} else {
			ty.Step()
		}
		b, err := po.Tick()
		if err != nil {
			t.Fatal(err)
		}
		applyBatch(t, model, w, b)
		if !bytes.Equal(model.Pix, w.Snapshot().Pix) {
			t.Fatalf("step %d: polled replay diverged from window", step)
		}
	}
}

func TestPollerForgetsClosedWindows(t *testing.T) {
	po, d, w := newPoller(t)
	if _, err := po.Tick(); err != nil {
		t.Fatal(err)
	}
	if err := d.CloseWindow(w.ID()); err != nil {
		t.Fatal(err)
	}
	b, err := po.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if b.WMInfo == nil || len(b.WMInfo.Windows) != 0 {
		t.Fatalf("close not reported: %+v", b.WMInfo)
	}
	if len(po.differs) != 0 || len(po.prev) != 0 {
		t.Fatal("poller retained closed window state")
	}
}
