// Parallel encode layer: the dirty rectangles of one tick (or one full
// refresh) are gathered into a job list, encoded by a bounded worker
// pool, and reassembled in gathering order. The output is byte-identical
// to a serial encode — job order fixes message order and every codec is
// deterministic — so parallelism is purely a throughput lever.
package capture

import (
	"image"
	"runtime"
	"sync"
	"sync/atomic"

	"appshare/internal/codec"
	"appshare/internal/display"
	"appshare/internal/region"
)

// encodeJob is one window-local rectangle awaiting encoding.
type encodeJob struct {
	win   *display.Window
	local region.Rect
}

// EncodeMetrics is a snapshot of the pipeline's encode-layer counters:
// payload-cache effectiveness and worker-pool utilisation.
type EncodeMetrics struct {
	// Cache is the payload cache snapshot (zero value when the cache
	// is disabled).
	Cache codec.CacheStats
	// ParallelJobs counts region encodes dispatched to the worker
	// pool; SerialJobs counts encodes performed inline (single-job
	// batches, or a pool of one worker).
	ParallelJobs, SerialJobs uint64
	// Batches counts encode batches processed.
	Batches uint64
	// Workers is the configured pool width.
	Workers int
}

// resolveWorkers maps the Options.EncodeWorkers knob to a pool width:
// zero means one worker per CPU, negative means serial.
func resolveWorkers(n int) int {
	if n == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		return 1
	}
	return n
}

// encodeJobs encodes every job and returns the updates in job order.
// Jobs are independent — each reads its own window buffer region — so
// they fan out across the worker pool; results are reassembled by index
// to keep batches deterministic.
func (p *Pipeline) encodeJobs(jobs []encodeJob) ([]Update, error) {
	if len(jobs) == 0 {
		return nil, nil
	}
	atomic.AddUint64(&p.encodeBatches, 1)
	if p.workers <= 1 || len(jobs) == 1 {
		atomic.AddUint64(&p.serialJobs, uint64(len(jobs)))
		out := make([]Update, 0, len(jobs))
		for _, j := range jobs {
			up, err := p.encodeWindowRect(j.win, j.local)
			if err != nil {
				return nil, err
			}
			out = append(out, up)
		}
		return out, nil
	}

	atomic.AddUint64(&p.parallelJobs, uint64(len(jobs)))
	out := make([]Update, len(jobs))
	errs := make([]error, len(jobs))
	var next atomic.Int64
	var wg sync.WaitGroup
	workers := min(p.workers, len(jobs))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				out[i], errs[i] = p.encodeWindowRect(jobs[i].win, jobs[i].local)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// gatherRegion appends one job per shared window overlapping the
// absolute desktop rectangle dr, mirroring EncodeRegion's traversal.
func (p *Pipeline) gatherRegion(jobs []encodeJob, dr region.Rect) []encodeJob {
	for _, w := range p.desk.SharedWindows() {
		overlap := dr.Intersect(w.Bounds())
		if overlap.Empty() {
			continue
		}
		jobs = append(jobs, encodeJob{
			win:   w,
			local: overlap.Translate(-w.Bounds().Left, -w.Bounds().Top),
		})
	}
	return jobs
}

// encodeCached produces the payload for the pixels of src inside r with
// codec c, consulting the content-addressed payload cache first. The
// returned slice may be shared with the cache and other messages; it
// must be treated as read-only.
func (p *Pipeline) encodeCached(c codec.Codec, src *image.RGBA, r image.Rectangle) ([]byte, error) {
	r = r.Intersect(src.Bounds())
	if r.Empty() {
		return nil, codec.ErrEmptyImage
	}
	if p.cache == nil {
		return codec.EncodeSubImage(c, src, r)
	}
	key := codec.KeyFor(c.PayloadType(), src, r)
	if payload, ok := p.cache.Get(key); ok {
		return payload, nil
	}
	payload, err := codec.EncodeSubImage(c, src, r)
	if err != nil {
		return nil, err
	}
	p.cache.Put(key, payload)
	return payload, nil
}

// Metrics returns the pipeline's cumulative encode counters. Safe to
// call concurrently with encoding.
func (p *Pipeline) Metrics() EncodeMetrics {
	m := EncodeMetrics{
		ParallelJobs: atomic.LoadUint64(&p.parallelJobs),
		SerialJobs:   atomic.LoadUint64(&p.serialJobs),
		Batches:      atomic.LoadUint64(&p.encodeBatches),
		Workers:      p.workers,
	}
	if p.cache != nil {
		m.Cache = p.cache.Stats()
	}
	return m
}
