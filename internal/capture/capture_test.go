package capture

import (
	"image/color"
	"testing"

	"appshare/internal/codec"
	"appshare/internal/display"
	"appshare/internal/region"
)

var (
	red   = color.RGBA{0xFF, 0, 0, 0xFF}
	white = color.RGBA{0xFF, 0xFF, 0xFF, 0xFF}
)

func newPipeline(t *testing.T, opts Options) (*Pipeline, *display.Desktop, *display.Window) {
	t.Helper()
	d := display.NewDesktop(1280, 1024)
	w := d.CreateWindow(1, region.XYWH(220, 150, 350, 450))
	p, err := New(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p, d, w
}

func TestFirstTickCarriesWMInfoAndCreationDamage(t *testing.T) {
	p, _, w := newPipeline(t, Options{})
	b, err := p.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if b.WMInfo == nil || len(b.WMInfo.Windows) != 1 {
		t.Fatalf("WMInfo = %+v", b.WMInfo)
	}
	if b.WMInfo.Windows[0].WindowID != w.ID() {
		t.Fatal("wrong window in WMInfo")
	}
	if len(b.Updates) == 0 {
		t.Fatal("creation damage should produce updates")
	}
	// Second tick with no activity: empty batch.
	b, err = p.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if !b.Empty() {
		t.Fatalf("idle tick batch = %+v", b)
	}
}

func TestDamageBecomesRegionUpdateWithAbsoluteCoords(t *testing.T) {
	p, _, w := newPipeline(t, Options{})
	if _, err := p.Tick(); err != nil { // drain creation
		t.Fatal(err)
	}
	w.Fill(region.XYWH(10, 20, 40, 30), red)
	b, err := p.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Updates) != 1 {
		t.Fatalf("updates = %d", len(b.Updates))
	}
	up := b.Updates[0].Msg
	if up.Left != 230 || up.Top != 170 {
		t.Fatalf("update at (%d,%d), want (230,170)", up.Left, up.Top)
	}
	if up.WindowID != w.ID() || up.ContentPT != codec.PayloadTypePNG {
		t.Fatalf("update meta = %+v", up)
	}
	// Decode and verify the content is the red fill.
	img, err := (codec.PNG{}).Decode(up.Content)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 40 || img.Bounds().Dy() != 30 {
		t.Fatalf("content size = %v", img.Bounds())
	}
	if got := img.RGBAAt(5, 5); got != red {
		t.Fatalf("content pixel = %v", got)
	}
}

func TestScrollBecomesMoveRectangle(t *testing.T) {
	p, _, w := newPipeline(t, Options{})
	if _, err := p.Tick(); err != nil {
		t.Fatal(err)
	}
	w.Scroll(region.XYWH(0, 0, 350, 450), -20, white)
	b, err := p.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Moves) != 1 {
		t.Fatalf("moves = %d", len(b.Moves))
	}
	mv := b.Moves[0]
	if mv.SrcTop != 170 || mv.DstTop != 150 || mv.Height != 430 {
		t.Fatalf("move = %+v", mv)
	}
	// The vacated band is a pixel update, not part of the move.
	if len(b.Updates) != 1 {
		t.Fatalf("updates = %d", len(b.Updates))
	}
	if b.Updates[0].Msg.Top != uint32(150+450-20) {
		t.Fatalf("vacated update top = %d", b.Updates[0].Msg.Top)
	}
}

func TestUnsharedWindowProducesNothing(t *testing.T) {
	p, d, w := newPipeline(t, Options{})
	if _, err := p.Tick(); err != nil {
		t.Fatal(err)
	}
	if err := d.SetShared(w.ID(), false); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Tick(); err != nil { // WMInfo for the unshare
		t.Fatal(err)
	}
	w.Fill(region.XYWH(0, 0, 50, 50), red)
	w.Scroll(region.XYWH(0, 0, 100, 100), -10, white)
	b, err := p.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Updates) != 0 || len(b.Moves) != 0 {
		t.Fatalf("unshared window leaked: %d updates, %d moves", len(b.Updates), len(b.Moves))
	}
}

func TestPointerMessages(t *testing.T) {
	p, d, _ := newPipeline(t, Options{})
	if _, err := p.Tick(); err != nil {
		t.Fatal(err)
	}
	d.MoveCursor(100, 120)
	b, err := p.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if b.Pointer == nil {
		t.Fatal("cursor move should produce MousePointerInfo")
	}
	if b.Pointer.Left != 100 || b.Pointer.Top != 120 {
		t.Fatalf("pointer at (%d,%d)", b.Pointer.Left, b.Pointer.Top)
	}
	if len(b.Pointer.Image) != 0 {
		t.Fatal("move-only pointer message should omit the image")
	}
}

func TestPointerInUpdatesModelSuppressesPointerMessages(t *testing.T) {
	p, d, _ := newPipeline(t, Options{PointerInUpdates: true})
	if _, err := p.Tick(); err != nil {
		t.Fatal(err)
	}
	d.MoveCursor(5, 5)
	b, err := p.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if b.Pointer != nil {
		t.Fatal("PointerInUpdates model must not emit MousePointerInfo")
	}
}

func TestFullRefresh(t *testing.T) {
	p, d, w := newPipeline(t, Options{})
	d.CreateWindow(2, region.XYWH(850, 320, 160, 150))
	if _, err := p.Tick(); err != nil {
		t.Fatal(err)
	}
	b, err := p.FullRefresh()
	if err != nil {
		t.Fatal(err)
	}
	if b.WMInfo == nil || len(b.WMInfo.Windows) != 2 {
		t.Fatalf("refresh WMInfo = %+v", b.WMInfo)
	}
	if len(b.Updates) != 2 {
		t.Fatalf("refresh updates = %d, want one per window", len(b.Updates))
	}
	// Full-window updates at the windows' absolute origins.
	if b.Updates[0].Msg.Left != uint32(w.Bounds().Left) || b.Updates[0].Msg.Top != uint32(w.Bounds().Top) {
		t.Fatalf("refresh update origin = (%d,%d)", b.Updates[0].Msg.Left, b.Updates[0].Msg.Top)
	}
	// Pointer state included for late joiners, with image.
	if b.Pointer == nil || len(b.Pointer.Image) == 0 {
		t.Fatal("full refresh must carry pointer position and image")
	}
	// Refresh resets the tracker: next tick has no WMInfo.
	tick, err := p.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if tick.WMInfo != nil {
		t.Fatal("tick after refresh should not repeat WMInfo")
	}
}

func TestOverlapDamageUpdatesBothWindows(t *testing.T) {
	p, d, a := newPipeline(t, Options{})
	b2 := d.CreateWindow(1, region.XYWH(450, 400, 350, 300)) // overlaps A
	if _, err := p.Tick(); err != nil {
		t.Fatal(err)
	}
	// Damage the overlap area via window B's local coords.
	b2.Fill(region.XYWH(0, 0, 50, 50), red)
	batch, err := p.Tick()
	if err != nil {
		t.Fatal(err)
	}
	// The damaged desktop rect (450..500, 400..450) intersects both A
	// and B; each shared window gets its own update.
	ids := map[uint16]bool{}
	for _, up := range batch.Updates {
		ids[up.Msg.WindowID] = true
	}
	if !ids[a.ID()] || !ids[b2.ID()] {
		t.Fatalf("updates cover windows %v, want both %d and %d", ids, a.ID(), b2.ID())
	}
}

func TestAutoSelectUsesPNGForSynthetic(t *testing.T) {
	p, _, w := newPipeline(t, Options{AutoSelect: true})
	if _, err := p.Tick(); err != nil {
		t.Fatal(err)
	}
	w.Fill(region.XYWH(0, 0, 120, 120), red) // flat fill = synthetic
	b, err := p.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Updates) != 1 || b.Updates[0].Msg.ContentPT != codec.PayloadTypePNG {
		t.Fatalf("auto-select chose PT %d", b.Updates[0].Msg.ContentPT)
	}
}

func TestNewValidatesCodecs(t *testing.T) {
	d := display.NewDesktop(100, 100)
	reg, err := codec.NewRegistry(codec.JPEG{}) // no PNG
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(d, Options{Registry: reg}); err == nil {
		t.Fatal("missing mandatory PNG codec should fail")
	}
	reg2, err := codec.NewRegistry(codec.PNG{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(d, Options{Registry: reg2, AutoSelect: true}); err == nil {
		t.Fatal("AutoSelect without JPEG should fail")
	}
	if _, err := New(d, Options{Registry: reg2, ContentPT: codec.PayloadTypeJPEG}); err == nil {
		t.Fatal("fixed PT without that codec should fail")
	}
}
