package capture

import (
	"image"
	"image/color"
	"image/draw"
	"math/rand"
	"testing"

	"appshare/internal/display"
	"appshare/internal/region"
	"appshare/internal/workload"
)

func frame(w, h int) *image.RGBA {
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	draw.Draw(img, img.Bounds(), &image.Uniform{color.RGBA{0xF0, 0xF0, 0xF0, 0xFF}}, image.Point{}, draw.Src)
	return img
}

func TestDifferFirstFrameIsFullDamage(t *testing.T) {
	d := NewDiffer(32)
	rects := d.Diff(frame(200, 150))
	if len(rects) != 1 || rects[0] != region.XYWH(0, 0, 200, 150) {
		t.Fatalf("first diff = %v", rects)
	}
	// Unchanged second frame: nothing.
	if rects := d.Diff(frame(200, 150)); len(rects) != 0 {
		t.Fatalf("identical frame diff = %v", rects)
	}
}

func TestDifferDetectsExactChange(t *testing.T) {
	d := NewDiffer(32)
	f := frame(320, 240)
	d.Diff(f)
	// Change one pixel deep inside a tile.
	f2 := frame(320, 240)
	f2.SetRGBA(100, 100, color.RGBA{1, 2, 3, 0xFF})
	rects := d.Diff(f2)
	if len(rects) != 1 {
		t.Fatalf("diff = %v", rects)
	}
	// The changed pixel must be covered; the area must be one tile.
	if !rects[0].Contains(100, 100) {
		t.Fatalf("change not covered: %v", rects)
	}
	if rects[0].Area() > 32*32 {
		t.Fatalf("overreported: %v", rects[0])
	}
	// No false positives afterward.
	if rects := d.Diff(f2); len(rects) != 0 {
		t.Fatalf("stable frame diff = %v", rects)
	}
}

func TestDifferNeverMissesChanges(t *testing.T) {
	// Soundness: every changed pixel is inside the reported rects.
	rng := rand.New(rand.NewSource(5))
	d := NewDiffer(16)
	prev := frame(160, 120)
	d.Diff(prev)
	for step := 0; step < 50; step++ {
		cur := image.NewRGBA(prev.Bounds())
		copy(cur.Pix, prev.Pix)
		// Random scribbles.
		for i := 0; i < rng.Intn(5); i++ {
			x, y := rng.Intn(160), rng.Intn(120)
			cur.SetRGBA(x, y, color.RGBA{uint8(rng.Intn(256)), 0, 0, 0xFF})
		}
		rects := d.Diff(cur)
		covered := region.NewSet()
		for _, r := range rects {
			covered.Add(r)
		}
		for y := 0; y < 120; y++ {
			for x := 0; x < 160; x++ {
				if prev.RGBAAt(x, y) != cur.RGBAAt(x, y) && !covered.Contains(x, y) {
					t.Fatalf("step %d: change at (%d,%d) missed", step, x, y)
				}
			}
		}
		prev = cur
	}
}

func TestDifferDimensionChangeResets(t *testing.T) {
	d := NewDiffer(32)
	d.Diff(frame(100, 100))
	rects := d.Diff(frame(200, 100))
	if len(rects) != 1 || rects[0] != region.XYWH(0, 0, 200, 100) {
		t.Fatalf("resize diff = %v", rects)
	}
}

func TestDetectVerticalScroll(t *testing.T) {
	// Render distinctive text content, then shift it up 12 px.
	desk := display.NewDesktop(300, 200)
	win := desk.CreateWindow(0, region.XYWH(0, 0, 300, 200))
	ty := workload.NewTyping(win, 600, 9)
	for i := 0; i < 4; i++ {
		ty.Step()
	}
	prev := win.Snapshot()
	win.Scroll(region.XYWH(0, 0, 300, 200), -12, color.RGBA{0xFF, 0xFF, 0xFF, 0xFF})
	cur := win.Snapshot()

	dy, ok := DetectVerticalScroll(prev, cur, region.XYWH(0, 0, 300, 200), 30)
	if !ok {
		t.Fatal("scroll not detected")
	}
	if dy != -12 {
		t.Fatalf("dy = %d, want -12", dy)
	}
}

func TestDetectVerticalScrollDown(t *testing.T) {
	desk := display.NewDesktop(300, 200)
	win := desk.CreateWindow(0, region.XYWH(0, 0, 300, 200))
	ty := workload.NewTyping(win, 600, 10)
	for i := 0; i < 4; i++ {
		ty.Step()
	}
	prev := win.Snapshot()
	win.Scroll(region.XYWH(0, 0, 300, 200), 7, color.RGBA{0xFF, 0xFF, 0xFF, 0xFF})
	cur := win.Snapshot()
	dy, ok := DetectVerticalScroll(prev, cur, region.XYWH(0, 0, 300, 200), 30)
	if !ok || dy != 7 {
		t.Fatalf("dy = %d ok=%v, want 7", dy, ok)
	}
}

func TestDetectVerticalScrollRejectsNonScrolls(t *testing.T) {
	// Identical frames: no scroll.
	f := frame(100, 100)
	if _, ok := DetectVerticalScroll(f, f, region.XYWH(0, 0, 100, 100), 20); ok {
		t.Fatal("identical frames misdetected as scroll")
	}
	// Unrelated content: no scroll.
	a := frame(100, 100)
	b := image.NewRGBA(a.Bounds())
	rng := rand.New(rand.NewSource(3))
	for i := range b.Pix {
		b.Pix[i] = byte(rng.Intn(256))
	}
	if _, ok := DetectVerticalScroll(a, b, region.XYWH(0, 0, 100, 100), 20); ok {
		t.Fatal("noise misdetected as scroll")
	}
	// Degenerate parameters.
	if _, ok := DetectVerticalScroll(a, b, region.Rect{}, 20); ok {
		t.Fatal("empty rect")
	}
	if _, ok := DetectVerticalScroll(a, b, region.XYWH(0, 0, 100, 10), 20); ok {
		t.Fatal("region shorter than shift range")
	}
}
