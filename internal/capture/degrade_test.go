package capture

import (
	"bytes"
	"image/color"
	"testing"

	"appshare/internal/codec"
	"appshare/internal/display"
	"appshare/internal/region"
)

// paintStripes draws a 1px-column gradient into the window's top-left
// sq×sq corner — content whose pixelation is trivially checkable (every
// block collapses to its top-left column's color) and whose pixelated
// form still differs between block sizes.
func paintStripes(w *display.Window, sq int) {
	for i := 0; i < sq; i++ {
		w.Fill(region.XYWH(i, 0, 1, sq), color.RGBA{uint8(i * 15), 0, uint8(255 - i*15), 0xFF})
	}
}

// TestDegradedEncodePixelates verifies the TierScaled encode variant:
// same geometry as EncodeRegion, but every block×block cell collapsed
// to its top-left pixel — and that block<2 degrades gracefully to the
// full-fidelity path.
func TestDegradedEncodePixelates(t *testing.T) {
	p, _, w := newPipeline(t, Options{})
	paintStripes(w, 16)
	dr := region.XYWH(220, 150, 16, 16) // window top-left corner, absolute

	full, err := p.EncodeRegion(dr)
	if err != nil {
		t.Fatal(err)
	}
	deg, err := p.EncodeRegionDegraded(dr, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) != 1 || len(deg) != 1 {
		t.Fatalf("updates = %d full, %d degraded, want 1 each", len(full), len(deg))
	}
	fm, dm := full[0].Msg, deg[0].Msg
	if dm.Left != fm.Left || dm.Top != fm.Top || dm.WindowID != fm.WindowID {
		t.Fatalf("degraded geometry %+v differs from full %+v", dm, fm)
	}
	if bytes.Equal(dm.Content, fm.Content) {
		t.Fatal("degraded encode produced full-fidelity payload")
	}

	img, err := (codec.PNG{}).Decode(dm.Content)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 16 || img.Bounds().Dy() != 16 {
		t.Fatalf("degraded content size = %v, want 16x16", img.Bounds())
	}
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			want := img.RGBAAt((x/4)*4, (y/4)*4)
			if got := img.RGBAAt(x, y); got != want {
				t.Fatalf("pixel (%d,%d) = %v, want block corner %v", x, y, got, want)
			}
		}
	}
	// The gradient guarantees distinct block corners — the pixelated
	// image is banded, not a flat fill.
	if img.RGBAAt(0, 0) == img.RGBAAt(4, 0) {
		t.Fatal("adjacent blocks collapsed to the same color: test pattern lost")
	}
	if want := (color.RGBA{0, 0, 255, 255}); img.RGBAAt(0, 0) != want {
		t.Fatalf("block (0,0) = %v, want top-left column color %v", img.RGBAAt(0, 0), want)
	}

	// block<2 is the escape hatch back to full fidelity.
	same, err := p.EncodeRegionDegraded(dr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(same) != 1 || !bytes.Equal(same[0].Msg.Content, fm.Content) {
		t.Fatal("block<2 did not fall back to the full-fidelity encode")
	}
}

// TestDegradedEncodeTierKeyedCache verifies the (content, tier) payload
// cache: full and degraded encodes of the same pixels never collide,
// different block sizes never collide, and repeated degraded encodes of
// unchanged content hit without re-encoding (the fast path hashes the
// SOURCE pixels, so a hit skips the pixelation pass too).
func TestDegradedEncodeTierKeyedCache(t *testing.T) {
	p, _, w := newPipeline(t, Options{})
	paintStripes(w, 16)
	dr := region.XYWH(220, 150, 16, 16)

	full, err := p.EncodeRegion(dr)
	if err != nil {
		t.Fatal(err)
	}
	m0 := p.Metrics().Cache

	deg1, err := p.EncodeRegionDegraded(dr, 4)
	if err != nil {
		t.Fatal(err)
	}
	m1 := p.Metrics().Cache
	if m1.Misses != m0.Misses+1 || m1.Hits != m0.Hits {
		t.Fatalf("first degraded encode: misses %d->%d hits %d->%d, want one fresh miss (no collision with the full-fidelity entry)",
			m0.Misses, m1.Misses, m0.Hits, m1.Hits)
	}

	deg2, err := p.EncodeRegionDegraded(dr, 4)
	if err != nil {
		t.Fatal(err)
	}
	m2 := p.Metrics().Cache
	if m2.Hits != m1.Hits+1 || m2.Misses != m1.Misses {
		t.Fatalf("repeat degraded encode: misses %d->%d hits %d->%d, want a pure hit",
			m1.Misses, m2.Misses, m1.Hits, m2.Hits)
	}
	if !bytes.Equal(deg1[0].Msg.Content, deg2[0].Msg.Content) {
		t.Fatal("cache hit served different degraded payload")
	}

	// A different block size is a different tier salt: fresh miss.
	deg8, err := p.EncodeRegionDegraded(dr, 8)
	if err != nil {
		t.Fatal(err)
	}
	m3 := p.Metrics().Cache
	if m3.Misses != m2.Misses+1 {
		t.Fatalf("block-8 encode reused another tier's payload: misses %d->%d", m2.Misses, m3.Misses)
	}
	if bytes.Equal(deg8[0].Msg.Content, deg1[0].Msg.Content) {
		t.Fatal("block sizes 4 and 8 produced identical payloads")
	}

	// The full-fidelity entry survived untouched.
	full2, err := p.EncodeRegion(dr)
	if err != nil {
		t.Fatal(err)
	}
	m4 := p.Metrics().Cache
	if m4.Hits != m3.Hits+1 || m4.Misses != m3.Misses {
		t.Fatalf("full re-encode after degraded traffic: misses %d->%d hits %d->%d, want a pure hit",
			m3.Misses, m4.Misses, m3.Hits, m4.Hits)
	}
	if !bytes.Equal(full2[0].Msg.Content, full[0].Msg.Content) {
		t.Fatal("full-fidelity payload changed after degraded encodes")
	}

	// A cache-disabled pipeline must produce byte-identical degraded
	// content — the cache is an optimization, never an identity.
	p2, _, w2 := newPipeline(t, Options{CacheBytes: -1})
	paintStripes(w2, 16)
	deg3, err := p2.EncodeRegionDegraded(dr, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(deg3[0].Msg.Content, deg1[0].Msg.Content) {
		t.Fatal("cache-disabled degraded payload differs from cached path")
	}
}
