package capture

// Prime marks the current window-manager state as already transmitted,
// without emitting anything. A host restored from a snapshot calls this
// so its first Tick does not resend a WindowManagerInfo the viewers
// already hold — the restored pipeline continues exactly where the
// original's left off.
func (p *Pipeline) Prime() {
	_ = p.tracker.Current(p.desk)
	if p.opts.PointerInUpdates {
		// The pointer-in-updates model tracks the sprite's previous
		// screen rectangle; the original pipeline's tracking rect equals
		// the current cursor rect whenever the cursor has ever moved, and
		// is unused until it does.
		p.lastCursor = p.cursorRect()
	}
}
