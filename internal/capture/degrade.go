// Degraded-tier encode variant: the quality ladder's TierScaled rung
// (internal/ah/ladder.go) re-captures deferred regions pixelated —
// nearest-neighbor downscale by a block factor and straight back up,
// the host-side analogue of participant.ScaleImage. Region geometry is
// unchanged, so the participant applies these updates exactly like
// full-fidelity ones; the flat blocks simply compress far smaller.
package capture

import (
	"fmt"
	"image"
	"image/draw"

	"appshare/internal/codec"
	"appshare/internal/display"
	"appshare/internal/region"
	"appshare/internal/remoting"
)

// EncodeRegionDegraded is EncodeRegion at reduced detail: every
// overlapping window rectangle is pixelated with the given block size
// before encoding. Results are served from the shared payload cache
// under a (content, tier) key — the tier salt keeps them from ever
// colliding with full-fidelity payloads of the same pixels, while
// repeated degraded content (the common case under congestion: the
// same damage re-flushed tick after tick) hits without re-encoding.
func (p *Pipeline) EncodeRegionDegraded(dr region.Rect, block int) ([]Update, error) {
	if block < 2 {
		return p.EncodeRegion(dr)
	}
	jobs := p.gatherRegion(nil, dr)
	out := make([]Update, 0, len(jobs))
	for _, j := range jobs {
		up, err := p.encodeWindowRectDegraded(j.win, j.local, block)
		if err != nil {
			return nil, err
		}
		out = append(out, up)
	}
	return out, nil
}

// encodeWindowRectDegraded encodes the window-local rectangle r of w
// pixelated by block into a RegionUpdate with absolute coordinates.
// Degraded encodes always use the fixed codec: AutoSelect's content
// classification is meaningless on pixelated blocks.
func (p *Pipeline) encodeWindowRectDegraded(w *display.Window, r region.Rect, block int) (Update, error) {
	imgRect := image.Rect(r.Left, r.Top, r.Right(), r.Bottom())
	c := p.fixed
	abs := r.Translate(w.Bounds().Left, w.Bounds().Top)
	cursorOverlap := p.opts.PointerInUpdates && p.cursorRect().Overlaps(abs)

	// Fast path: hash the SOURCE pixels under the tier-salted key. A hit
	// skips the crop and the pixelation pass entirely, not just the
	// compressor — the (content, tier) key guarantees the cached payload
	// was produced from identical pixels at this block size. With tile
	// hashing on the path is skipped: the tile keys must cover the
	// PIXELATED pixels (exactly what the viewer will decode and learn),
	// which this path never materializes.
	if p.cache != nil && !cursorOverlap && p.opts.TileSize == 0 {
		clipped := imgRect.Intersect(w.Image().Bounds())
		if clipped.Empty() {
			return Update{}, fmt.Errorf("capture: degraded encode window %d rect %v: %w",
				w.ID(), r, codec.ErrEmptyImage)
		}
		key := codec.KeyForTier(c.PayloadType(), uint32(block), w.Image(), clipped)
		if payload, ok := p.cache.Get(key); ok {
			return degradedUpdate(w, c, abs, payload, nil), nil
		}
		crop := codec.GetRGBA(clipped.Dx(), clipped.Dy())
		draw.Draw(crop, crop.Bounds(), w.Image(), clipped.Min, draw.Src)
		pixelate(crop, block)
		payload, err := codec.EncodeSubImage(c, crop, crop.Bounds())
		codec.PutRGBA(crop)
		if err != nil {
			return Update{}, fmt.Errorf("capture: degraded encode window %d rect %v: %w", w.ID(), r, err)
		}
		p.cache.Put(key, payload)
		return degradedUpdate(w, c, abs, payload, nil), nil
	}

	// Cursor-overlap (or cache-disabled) path: composite first, pixelate
	// the result, and let encodeCached hash the pixelated pixels — the
	// pixelated content is its own cache identity here, and the cursor
	// sprite is pixelated along with the content it floats over, exactly
	// what a degraded viewer should see.
	crop := codec.GetRGBA(r.Width, r.Height)
	draw.Draw(crop, crop.Bounds(), w.Image(), image.Pt(r.Left, r.Top), draw.Src)
	if cursorOverlap {
		cur := p.desk.Cursor()
		sb := cur.Sprite.Bounds()
		dst := image.Rect(cur.X-abs.Left, cur.Y-abs.Top,
			cur.X-abs.Left+sb.Dx(), cur.Y-abs.Top+sb.Dy())
		draw.Draw(crop, dst, cur.Sprite, sb.Min, draw.Over)
	}
	pixelate(crop, block)
	// A lossless encode of pixelated pixels is still lossless: the viewer
	// decodes exactly these pixels, so tile hashes of the pixelated crop
	// keep the two dictionaries in lockstep even while a remote rides the
	// degraded tier — and re-flushed identical degraded damage can ship
	// as tile references too.
	var tiles []codec.TileKey
	if p.opts.TileSize > 0 && codec.LosslessPT(c.PayloadType()) {
		tiles = codec.TileGridKeys(crop, crop.Bounds(), p.opts.TileSize)
	}
	content, err := p.encodeCached(c, crop, crop.Bounds())
	codec.PutRGBA(crop)
	if err != nil {
		return Update{}, fmt.Errorf("capture: degraded encode window %d rect %v: %w", w.ID(), r, err)
	}
	return degradedUpdate(w, c, abs, content, tiles), nil
}

func degradedUpdate(w *display.Window, c codec.Codec, abs region.Rect, content []byte, tiles []codec.TileKey) Update {
	return Update{
		Msg: &remoting.RegionUpdate{
			WindowID:  w.ID(),
			ContentPT: c.PayloadType(),
			Left:      uint32(abs.Left),
			Top:       uint32(abs.Top),
			Content:   content,
		},
		Rect:  abs,
		Tiles: tiles,
	}
}

// pixelate replaces each block×block cell of img with its top-left
// pixel, in place — a nearest-neighbor downscale-and-back-up that keeps
// dimensions intact. Two passes per block-row: replicate each cell's
// corner across the row's top scanline, then copy that scanline down
// the band; both are row-contiguous for cache-friendly access.
func pixelate(img *image.RGBA, block int) {
	b := img.Bounds()
	w, h := b.Dx(), b.Dy()
	for y0 := 0; y0 < h; y0 += block {
		top := img.Pix[img.PixOffset(b.Min.X, b.Min.Y+y0) : img.PixOffset(b.Min.X, b.Min.Y+y0)+w*4]
		for x0 := 0; x0 < w; x0 += block {
			px := top[x0*4 : x0*4+4]
			end := min(x0+block, w)
			for x := x0 + 1; x < end; x++ {
				copy(top[x*4:x*4+4], px)
			}
		}
		yEnd := min(y0+block, h)
		for y := y0 + 1; y < yEnd; y++ {
			row := img.Pix[img.PixOffset(b.Min.X, b.Min.Y+y) : img.PixOffset(b.Min.X, b.Min.Y+y)+w*4]
			copy(row, top)
		}
	}
}
