// Package capture implements the AH-side capture pipeline: it drains the
// virtual desktop's damage and move journals each tick and converts them
// into remoting messages — WindowManagerInfo when window state changed,
// MoveRectangle for scrolls (Section 5.2.3), RegionUpdate for dirty
// pixels (Section 5.2.2) and MousePointerInfo for the pointer (Section
// 5.2.4).
//
// A real AH detects changes by hooking or polling the OS; the virtual
// desktop journals its own damage, which substitutes for detection while
// exercising identical downstream paths (see DESIGN.md).
package capture

import (
	"fmt"
	"image"
	"image/draw"

	"appshare/internal/codec"
	"appshare/internal/display"
	"appshare/internal/region"
	"appshare/internal/remoting"
	"appshare/internal/windows"
)

// Options configures a capture pipeline.
type Options struct {
	// Registry supplies the content codecs. Nil means DefaultRegistry.
	Registry *codec.Registry
	// ContentPT selects a fixed content codec by payload type. Ignored
	// when AutoSelect is true. Zero means PNG.
	ContentPT uint8
	// AutoSelect classifies each region and picks PNG for synthetic
	// content, JPEG for photographic content (Section 4.2 guidance).
	AutoSelect bool
	// CoalesceWaste is the damage coalescing overdraw budget in pixels
	// (see region.Set.Coalesce). Zero selects the default of 1024 —
	// the sweet spot measured by the A01 ablation, merging per-glyph
	// damage into line-sized updates. Negative merges only perfectly
	// adjacent rectangles.
	CoalesceWaste int
	// PointerInUpdates selects the mouse model where the pointer image
	// is composited into RegionUpdates instead of sent as
	// MousePointerInfo messages (Section 4.2: "The AH decides which
	// mouse model to use").
	PointerInUpdates bool
	// DisableMoveDetection converts scrolls into pixel damage instead
	// of MoveRectangle messages — the ablation baseline for the Section
	// 5.2.3 efficiency claim.
	DisableMoveDetection bool
	// EncodeWorkers sets the width of the encode worker pool that
	// compresses a tick's dirty rectangles in parallel. Zero means one
	// worker per CPU (GOMAXPROCS); negative forces serial encoding.
	// Batch output is byte-identical regardless of the setting.
	EncodeWorkers int
	// CacheBytes bounds the content-addressed payload cache that
	// serves repeated pixel content (full refreshes for late joiners,
	// PLI re-sends, identical tiles) without re-encoding. Zero selects
	// DefaultCacheBytes; negative disables the cache.
	CacheBytes int
	// TileSize, when positive, computes the tile-store content hashes of
	// every losslessly-encoded update (Update.Tiles): the grid of
	// TileSize×TileSize tiles anchored at the update rectangle, hashed
	// from the exact pixels the encode consumed. Zero disables tile
	// hashing (Update.Tiles stays nil). Lossy (JPEG) and degraded-tier
	// encodes never carry tiles — their decoded pixels would not match
	// the hashes.
	TileSize int
}

// DefaultCacheBytes is the payload-cache budget used when
// Options.CacheBytes is zero.
const DefaultCacheBytes = 16 << 20

// Update pairs a RegionUpdate message with the absolute desktop
// rectangle it covers. The rectangle never travels on the wire (the
// protocol's width/height are implicit in the encoded image); senders use
// it to defer and re-capture regions under backlog (Section 7).
type Update struct {
	Msg  *remoting.RegionUpdate
	Rect region.Rect
	// Tiles holds the row-major tile-grid content hashes of the encoded
	// pixels when Options.TileSize is set and the content codec is
	// lossless; nil otherwise. The send path uses them to substitute a
	// TileReference for remotes whose dictionary has seen every tile.
	Tiles []codec.TileKey
}

// Batch is the protocol output of one capture tick, in apply order:
// window state first, then moves, then pixel updates, then the pointer.
type Batch struct {
	WMInfo  *remoting.WindowManagerInfo
	Moves   []*remoting.MoveRectangle
	Updates []Update
	Pointer *remoting.MousePointerInfo
}

// Empty reports whether the batch carries nothing.
func (b *Batch) Empty() bool {
	return b.WMInfo == nil && len(b.Moves) == 0 && len(b.Updates) == 0 && b.Pointer == nil
}

// Pipeline converts desktop changes into remoting messages.
//
// Concurrency: one Tick/FullRefresh/EncodeRegion call at a time (the
// host serializes them); within a call the encode worker pool reads
// window buffers concurrently, which is safe because only the capture
// caller's goroutine mutates the desktop.
type Pipeline struct {
	desk    *display.Desktop
	tracker *windows.Tracker
	opts    Options
	reg     *codec.Registry
	png     codec.Codec
	jpeg    codec.Codec
	fixed   codec.Codec
	// lastCursor is the screen rectangle the cursor sprite occupied in
	// the previous tick, for the pointer-in-updates mouse model.
	lastCursor region.Rect

	// workers is the resolved encode pool width; cache is the
	// content-addressed payload cache (nil when disabled).
	workers int
	cache   *codec.PayloadCache
	// Encode-layer counters, updated atomically (see Metrics).
	parallelJobs, serialJobs, encodeBatches uint64
}

// New returns a pipeline over the given desktop.
func New(desk *display.Desktop, opts Options) (*Pipeline, error) {
	reg := opts.Registry
	if reg == nil {
		reg = codec.DefaultRegistry()
	}
	png, err := reg.Lookup(codec.PayloadTypePNG)
	if err != nil {
		return nil, fmt.Errorf("capture: mandatory PNG codec missing: %w", err)
	}
	if opts.CoalesceWaste == 0 {
		opts.CoalesceWaste = 1024
	} else if opts.CoalesceWaste < 0 {
		opts.CoalesceWaste = 0
	}
	p := &Pipeline{
		desk:    desk,
		tracker: windows.NewTracker(),
		opts:    opts,
		reg:     reg,
		png:     png,
		workers: resolveWorkers(opts.EncodeWorkers),
	}
	if opts.CacheBytes >= 0 {
		limit := opts.CacheBytes
		if limit == 0 {
			limit = DefaultCacheBytes
		}
		p.cache = codec.NewPayloadCache(limit)
	}
	if jp, err := reg.Lookup(codec.PayloadTypeJPEG); err == nil {
		p.jpeg = jp
	}
	pt := opts.ContentPT
	if pt == 0 {
		pt = codec.PayloadTypePNG
	}
	p.fixed, err = reg.Lookup(pt)
	if err != nil {
		return nil, fmt.Errorf("capture: content codec: %w", err)
	}
	if opts.AutoSelect && p.jpeg == nil {
		return nil, fmt.Errorf("capture: AutoSelect requires a JPEG codec")
	}
	return p, nil
}

// Desktop returns the pipeline's desktop.
func (p *Pipeline) Desktop() *display.Desktop { return p.desk }

// Tick drains the desktop journals and returns the messages describing
// everything that changed since the last Tick.
func (p *Pipeline) Tick() (*Batch, error) {
	b := &Batch{WMInfo: p.tracker.Poll(p.desk)}

	sharedIDs := make(map[uint16]bool)
	for _, w := range p.desk.SharedWindows() {
		sharedIDs[w.ID()] = true
	}

	// Moves become MoveRectangle messages, or — with move detection
	// disabled (the ablation baseline) — extra pixel damage coalesced
	// with the tick's ordinary damage before encoding. Move ops are
	// journaled window-local; resolve them against the window's CURRENT
	// bounds so a same-tick relocation (whose new geometry leads this
	// batch in WindowManagerInfo) cannot invalidate them.
	damage := region.NewSet()
	for _, mv := range p.desk.TakeMoves() {
		if !sharedIDs[mv.WindowID] {
			continue
		}
		win := p.desk.Window(mv.WindowID)
		if win == nil {
			continue
		}
		src := mv.Src.Translate(win.Bounds().Left, win.Bounds().Top)
		dst := mv.Dst.Translate(win.Bounds().Left, win.Bounds().Top)
		if p.opts.DisableMoveDetection {
			damage.Add(dst)
			continue
		}
		b.Moves = append(b.Moves, &remoting.MoveRectangle{
			WindowID: mv.WindowID,
			SrcLeft:  uint32(src.Left), SrcTop: uint32(src.Top),
			Width: uint32(src.Width), Height: uint32(src.Height),
			DstLeft: uint32(dst.Left), DstTop: uint32(dst.Top),
		})
	}
	for _, dr := range p.desk.TakeDamage(p.opts.CoalesceWaste) {
		damage.Add(dr)
	}
	// Gather every rectangle this tick must encode, then hand the whole
	// job list to the worker pool in one batch: a tick with many dirty
	// rects compresses across all cores instead of one at a time.
	var jobs []encodeJob
	for _, dr := range damage.Coalesce(p.opts.CoalesceWaste) {
		jobs = p.gatherRegion(jobs, dr)
	}

	moved, changed := p.desk.TakeCursorEvents()
	if p.opts.PointerInUpdates && (moved || changed) {
		// The pointer travels inside RegionUpdates (Section 4.2, first
		// mouse model): damage the sprite's old and new positions so the
		// overlaid pixels retransmit.
		cur := p.cursorRect()
		jobs = p.gatherRegion(jobs, p.lastCursor)
		jobs = p.gatherRegion(jobs, cur)
		p.lastCursor = cur
	}
	ups, err := p.encodeJobs(jobs)
	if err != nil {
		return nil, err
	}
	b.Updates = ups
	if !p.opts.PointerInUpdates && (moved || changed) {
		ptr, err := p.pointerMessage(changed)
		if err != nil {
			return nil, err
		}
		b.Pointer = ptr
	}
	return b, nil
}

// cursorRect returns the desktop rectangle the cursor sprite covers.
func (p *Pipeline) cursorRect() region.Rect {
	cur := p.desk.Cursor()
	if cur.Sprite == nil {
		return region.Rect{}
	}
	b := cur.Sprite.Bounds()
	return region.XYWH(cur.X, cur.Y, b.Dx(), b.Dy())
}

// FullRefresh produces the complete state a late joiner needs (draft
// Sections 4.3, 5.3.1): the current WindowManagerInfo followed by a
// RegionUpdate covering each shared window, plus the pointer state if the
// MousePointerInfo model is in use ("it MUST inform the late joiners
// about the current position and image of mouse pointer").
func (p *Pipeline) FullRefresh() (*Batch, error) {
	b := &Batch{WMInfo: p.tracker.Current(p.desk)}
	var jobs []encodeJob
	for _, w := range p.desk.SharedWindows() {
		jobs = append(jobs, encodeJob{
			win:   w,
			local: region.XYWH(0, 0, w.Bounds().Width, w.Bounds().Height),
		})
	}
	ups, err := p.encodeJobs(jobs)
	if err != nil {
		return nil, err
	}
	b.Updates = ups
	if !p.opts.PointerInUpdates {
		ptr, err := p.pointerMessage(true)
		if err != nil {
			return nil, err
		}
		b.Pointer = ptr
	}
	return b, nil
}

// EncodeRegion intersects a desktop rectangle with every shared window
// and encodes the overlapping parts from the window buffers. Content is
// taken per window, not from the composite, so occluded windows still
// transmit their own pixels — the participant composites locally under
// its own layout (Figures 3–5). Senders also call this directly to
// re-capture regions deferred under backlog (Section 7: "only send the
// most recent screen data").
func (p *Pipeline) EncodeRegion(dr region.Rect) ([]Update, error) {
	return p.encodeJobs(p.gatherRegion(nil, dr))
}

// encodeWindowRect encodes the window-local rectangle r of w into a
// RegionUpdate with absolute coordinates.
func (p *Pipeline) encodeWindowRect(w *display.Window, r region.Rect) (Update, error) {
	imgRect := image.Rect(r.Left, r.Top, r.Right(), r.Bottom())
	c := p.fixed
	if p.opts.AutoSelect {
		sub := w.Image().SubImage(imgRect)
		if rgba, ok := sub.(*image.RGBA); ok {
			c = codec.ChooseCodec(rgba, p.png, p.jpeg)
		}
	}
	abs := r.Translate(w.Bounds().Left, w.Bounds().Top)
	var content []byte
	var tiles []codec.TileKey
	var err error
	if p.opts.PointerInUpdates && p.cursorRect().Overlaps(abs) {
		// First mouse model: the cursor sprite is composited into the
		// encoded pixels rather than signalled via MousePointerInfo.
		// The composite lands in a pooled scratch image and is hashed
		// after compositing, so an unchanged sprite-over-content tile
		// (a hovering cursor) still hits the payload cache.
		crop := codec.GetRGBA(r.Width, r.Height)
		draw.Draw(crop, crop.Bounds(), w.Image(), image.Pt(r.Left, r.Top), draw.Src)
		cur := p.desk.Cursor()
		sb := cur.Sprite.Bounds()
		dst := image.Rect(cur.X-abs.Left, cur.Y-abs.Top,
			cur.X-abs.Left+sb.Dx(), cur.Y-abs.Top+sb.Dy())
		draw.Draw(crop, dst, cur.Sprite, sb.Min, draw.Over)
		content, err = p.encodeCached(c, crop, crop.Bounds())
		// Tile hashes cover the composite — exactly what the viewer will
		// decode and hash on its side.
		if err == nil && p.opts.TileSize > 0 && codec.LosslessPT(c.PayloadType()) {
			tiles = codec.TileGridKeys(crop, crop.Bounds(), p.opts.TileSize)
		}
		codec.PutRGBA(crop)
	} else {
		content, err = p.encodeCached(c, w.Image(), imgRect)
		if err == nil && p.opts.TileSize > 0 && codec.LosslessPT(c.PayloadType()) {
			tiles = codec.TileGridKeys(w.Image(), imgRect, p.opts.TileSize)
		}
	}
	if err != nil {
		return Update{}, fmt.Errorf("capture: encode window %d rect %v: %w", w.ID(), r, err)
	}
	return Update{
		Msg: &remoting.RegionUpdate{
			WindowID:  w.ID(),
			ContentPT: c.PayloadType(),
			Left:      uint32(abs.Left),
			Top:       uint32(abs.Top),
			Content:   content,
		},
		Rect:  abs,
		Tiles: tiles,
	}, nil
}

// FullRefreshPointer returns a MousePointerInfo carrying the current
// pointer position and image (for late joiners and post-backlog
// refreshes).
func (p *Pipeline) FullRefreshPointer() (*remoting.MousePointerInfo, error) {
	return p.pointerMessage(true)
}

// pointerMessage builds a MousePointerInfo; withImage includes the sprite.
func (p *Pipeline) pointerMessage(withImage bool) (*remoting.MousePointerInfo, error) {
	cur := p.desk.Cursor()
	msg := &remoting.MousePointerInfo{
		ContentPT: p.png.PayloadType(),
		Left:      uint32(max(cur.X, 0)),
		Top:       uint32(max(cur.Y, 0)),
	}
	if withImage && cur.Sprite != nil {
		// Cached: a PLI storm re-sends the same sprite to every
		// requester, and sprites change rarely.
		img, err := p.encodeCached(p.png, cur.Sprite, cur.Sprite.Bounds())
		if err != nil {
			return nil, fmt.Errorf("capture: encode pointer: %w", err)
		}
		msg.Image = img
	}
	return msg, nil
}
