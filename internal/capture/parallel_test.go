package capture

import (
	"bytes"
	"fmt"
	"image/color"
	"testing"

	"appshare/internal/display"
	"appshare/internal/region"
)

// paintScene applies a deterministic mix of desktop activity: several
// windows, scattered fills, text, a scroll and cursor motion. Two calls
// on two fresh desktops produce identical pixel state and journals.
func paintScene(desk *display.Desktop) []*display.Window {
	var wins []*display.Window
	for i := 0; i < 3; i++ {
		w := desk.CreateWindow(1, region.XYWH(40+i*210, 30+i*110, 200, 160))
		wins = append(wins, w)
	}
	return wins
}

func stirScene(desk *display.Desktop, wins []*display.Window, round int) {
	for i, w := range wins {
		for k := 0; k < 4; k++ {
			c := color.RGBA{R: byte(round * 31), G: byte(i * 67), B: byte(k * 53), A: 255}
			w.Fill(region.XYWH(10+k*45, 12+(round%3)*40, 40, 30), c)
		}
		w.DrawText(8, 120, fmt.Sprintf("round %d win %d", round, i), color.RGBA{A: 255})
	}
	wins[0].Scroll(region.XYWH(0, 0, 200, 160), -8, color.RGBA{R: 250, G: 250, B: 250, A: 255})
	desk.MoveCursor(30+round*5, 40+round*3)
}

// marshalBatch renders a batch to comparable bytes: message order and
// payload content both matter.
func marshalBatch(t *testing.T, b *Batch) []byte {
	t.Helper()
	var buf bytes.Buffer
	if b.WMInfo != nil {
		raw, err := b.WMInfo.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		buf.WriteString("wm:")
		buf.Write(raw)
	}
	for _, mv := range b.Moves {
		raw, err := mv.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		buf.WriteString("mv:")
		buf.Write(raw)
	}
	for _, up := range b.Updates {
		frags, err := up.Msg.Fragments(1200)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&buf, "up:%v:", up.Rect)
		for _, f := range frags {
			buf.Write(f.Payload)
		}
	}
	if b.Pointer != nil {
		frags, err := b.Pointer.Fragments(1200)
		if err != nil {
			t.Fatal(err)
		}
		buf.WriteString("ptr:")
		for _, f := range frags {
			buf.Write(f.Payload)
		}
	}
	return buf.Bytes()
}

// TestParallelEncodeDeterminism proves the worker pool is invisible on
// the wire: parallel-encoded batches are byte-identical to serial ones
// (same message order, same payloads). Run with -cpu 1,4 to exercise
// both a starved and a parallel scheduler.
func TestParallelEncodeDeterminism(t *testing.T) {
	type run struct {
		name string
		opts Options
	}
	runs := []run{
		{"serial", Options{EncodeWorkers: -1, CacheBytes: -1}},
		{"parallel", Options{EncodeWorkers: 8, CacheBytes: -1}},
		{"parallel-cached", Options{EncodeWorkers: 8}},
		{"serial-cached", Options{EncodeWorkers: -1}},
	}
	const rounds = 5
	var want [][]byte
	for ri, r := range runs {
		desk := display.NewDesktop(800, 600)
		wins := paintScene(desk)
		pipe, err := New(desk, r.opts)
		if err != nil {
			t.Fatal(err)
		}
		var got [][]byte
		for round := 0; round < rounds; round++ {
			stirScene(desk, wins, round)
			b, err := pipe.Tick()
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, marshalBatch(t, b))
			fb, err := pipe.FullRefresh()
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, marshalBatch(t, fb))
		}
		if ri == 0 {
			want = got
			continue
		}
		for i := range want {
			if !bytes.Equal(want[i], got[i]) {
				t.Fatalf("%s: batch %d differs from serial baseline (len %d vs %d)",
					r.name, i, len(got[i]), len(want[i]))
			}
		}
	}
}

// TestRefreshCacheHits verifies the content-addressed cache makes
// repeated full refreshes (late joiners, PLI storms) near-free: after
// the first refresh encodes each window once, subsequent refreshes are
// all cache hits and zero new encodes.
func TestRefreshCacheHits(t *testing.T) {
	desk := display.NewDesktop(800, 600)
	wins := paintScene(desk)
	stirScene(desk, wins, 0)
	pipe, err := New(desk, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pipe.Tick(); err != nil {
		t.Fatal(err)
	}
	first, err := pipe.FullRefresh()
	if err != nil {
		t.Fatal(err)
	}
	after1 := pipe.Metrics()
	for i := 0; i < 8; i++ {
		again, err := pipe.FullRefresh()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(marshalBatch(t, first), marshalBatch(t, again)) {
			t.Fatalf("refresh %d differs from first refresh", i)
		}
	}
	afterN := pipe.Metrics()
	if afterN.Cache.Misses != after1.Cache.Misses {
		t.Fatalf("repeated refreshes re-encoded: misses %d -> %d",
			after1.Cache.Misses, afterN.Cache.Misses)
	}
	wantHits := after1.Cache.Hits + 8*uint64(len(first.Updates)+1) // +1: pointer sprite
	if afterN.Cache.Hits != wantHits {
		t.Fatalf("cache hits = %d, want %d", afterN.Cache.Hits, wantHits)
	}
}

// TestCacheDisabledStillCorrect pins the CacheBytes<0 escape hatch.
func TestCacheDisabledStillCorrect(t *testing.T) {
	desk := display.NewDesktop(320, 240)
	w := desk.CreateWindow(1, region.XYWH(10, 10, 100, 80))
	w.Fill(region.XYWH(0, 0, 100, 80), color.RGBA{R: 9, G: 8, B: 7, A: 255})
	pipe, err := New(desk, Options{CacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := pipe.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Updates) == 0 {
		t.Fatal("no updates captured")
	}
	if m := pipe.Metrics(); m.Cache.Hits != 0 || m.Cache.Misses != 0 {
		t.Fatalf("disabled cache recorded traffic: %+v", m.Cache)
	}
}
