package capture

import (
	"bytes"
	"image"

	"appshare/internal/codec"
	"appshare/internal/display"
	"appshare/internal/region"
	"appshare/internal/remoting"
)

// Poller is the polling-mode capture front end: instead of consuming the
// virtual desktop's damage journal (which a real OS does not provide),
// it snapshots each shared window every tick, detects changes by tile
// hashing and synthesizes MoveRectangle messages by scroll detection.
// This is the capture strategy of a production AH attached to an opaque
// framebuffer; the journaled Pipeline.Tick is the oracle it is tested
// against.
type Poller struct {
	p        *Pipeline
	differs  map[uint16]*Differ
	prev     map[uint16]*image.RGBA
	tileSize int
	maxShift int
}

// NewPoller returns a polling front end over the pipeline's desktop.
// tileSize controls detection granularity (default 32); maxShift bounds
// the scroll search (default 64 rows).
func NewPoller(p *Pipeline, tileSize, maxShift int) *Poller {
	if tileSize <= 0 {
		tileSize = 32
	}
	if maxShift <= 0 {
		maxShift = 64
	}
	return &Poller{
		p:        p,
		differs:  make(map[uint16]*Differ),
		prev:     make(map[uint16]*image.RGBA),
		tileSize: tileSize,
		maxShift: maxShift,
	}
}

// Tick polls every shared window and returns the batch of detected
// changes. The desktop's own journals are drained and discarded — a
// polling AH cannot see them.
func (po *Poller) Tick() (*Batch, error) {
	desk := po.p.Desktop()
	// Discard journal state; polling must find everything itself.
	desk.TakeDamage(0)
	desk.TakeMoves()

	b := &Batch{WMInfo: po.p.tracker.Poll(desk)}

	live := make(map[uint16]bool)
	for _, w := range desk.SharedWindows() {
		live[w.ID()] = true
		if err := po.pollWindow(w, b); err != nil {
			return nil, err
		}
	}
	// Forget closed/unshared windows.
	for id := range po.differs {
		if !live[id] {
			delete(po.differs, id)
			delete(po.prev, id)
		}
	}

	moved, changed := desk.TakeCursorEvents()
	if moved || changed {
		ptr, err := po.p.pointerMessage(changed)
		if err != nil {
			return nil, err
		}
		b.Pointer = ptr
	}
	return b, nil
}

func (po *Poller) pollWindow(w *display.Window, b *Batch) error {
	id := w.ID()
	cur := w.Snapshot()
	d, ok := po.differs[id]
	if !ok {
		d = NewDiffer(po.tileSize)
		po.differs[id] = d
	}
	dirty := d.Diff(cur)
	prev := po.prev[id]
	po.prev[id] = cur
	if len(dirty) == 0 {
		return nil
	}
	winRect := region.XYWH(0, 0, w.Bounds().Width, w.Bounds().Height)

	// Try to explain the change as a vertical scroll of the whole
	// window (the dominant real-world case).
	if prev != nil && prev.Bounds() == cur.Bounds() {
		if dy, found := DetectVerticalScroll(prev, cur, winRect, po.maxShift); found {
			mv, residual := po.scrollMessages(w, prev, cur, dy)
			b.Moves = append(b.Moves, mv)
			for _, r := range residual {
				up, err := po.p.encodeWindowRect(w, r)
				if err != nil {
					return err
				}
				b.Updates = append(b.Updates, up)
			}
			return nil
		}
	}

	for _, r := range dirty {
		up, err := po.p.encodeWindowRect(w, r)
		if err != nil {
			return err
		}
		b.Updates = append(b.Updates, up)
	}
	return nil
}

// scrollMessages builds the MoveRectangle for a detected shift dy plus
// the residual damage: rows of cur that still differ from prev after the
// move is applied (the revealed band and any concurrent edits).
func (po *Poller) scrollMessages(w *display.Window, prev, cur *image.RGBA, dy int) (*remoting.MoveRectangle, []region.Rect) {
	width := w.Bounds().Width
	height := w.Bounds().Height
	abs := func(v int) int {
		if v < 0 {
			return -v
		}
		return v
	}
	band := height - abs(dy)
	var src, dst region.Rect
	if dy < 0 { // content moved up
		src = region.XYWH(0, -dy, width, band)
		dst = region.XYWH(0, 0, width, band)
	} else {
		src = region.XYWH(0, 0, width, band)
		dst = region.XYWH(0, dy, width, band)
	}
	ox, oy := w.Bounds().Left, w.Bounds().Top
	mv := &remoting.MoveRectangle{
		WindowID: w.ID(),
		SrcLeft:  uint32(src.Left + ox), SrcTop: uint32(src.Top + oy),
		Width: uint32(src.Width), Height: uint32(src.Height),
		DstLeft: uint32(dst.Left + ox), DstTop: uint32(dst.Top + oy),
	}

	// Simulate the move on prev, then row-compare against cur. The
	// simulation image is pooled: a scrolling window would otherwise
	// allocate a full window-sized RGBA every scrolled tick.
	pb := prev.Bounds()
	sim := codec.GetRGBA(pb.Dx(), pb.Dy())
	defer codec.PutRGBA(sim)
	copy(sim.Pix, prev.Pix)
	display.MoveRect(sim, src, dst)
	var residual []region.Rect
	runStart := -1
	for y := 0; y < height; y++ {
		same := rowsEqual(sim, cur, y, width)
		if !same && runStart < 0 {
			runStart = y
		}
		if same && runStart >= 0 {
			residual = append(residual, region.XYWH(0, runStart, width, y-runStart))
			runStart = -1
		}
	}
	if runStart >= 0 {
		residual = append(residual, region.XYWH(0, runStart, width, height-runStart))
	}
	return mv, residual
}

func rowsEqual(a, b *image.RGBA, y, width int) bool {
	ra := a.Pix[a.PixOffset(0, y):a.PixOffset(width, y)]
	rb := b.Pix[b.PixOffset(0, y):b.PixOffset(width, y)]
	return bytes.Equal(ra, rb)
}
