package rtp

import (
	"testing"
	"time"
)

func TestStatisticsNoLoss(t *testing.T) {
	s := NewStatistics()
	now := time.Unix(1000, 0)
	for i := 0; i < 100; i++ {
		s.Update(uint16(1000+i), uint32(i*3000), now.Add(time.Duration(i)*33*time.Millisecond))
	}
	if got := s.Expected(); got != 100 {
		t.Fatalf("Expected = %d", got)
	}
	if got := s.CumulativeLost(); got != 0 {
		t.Fatalf("CumulativeLost = %d", got)
	}
	if got := s.FractionLost(); got != 0 {
		t.Fatalf("FractionLost = %d", got)
	}
	if got := s.ExtendedHighestSeq(); got != 1099 {
		t.Fatalf("ExtendedHighestSeq = %d", got)
	}
	// Steady 33ms spacing matching the RTP timestamps: jitter ~0.
	if got := s.Jitter(); got > 30 {
		t.Fatalf("Jitter = %d, want ~0 for perfectly paced stream", got)
	}
}

func TestStatisticsLoss(t *testing.T) {
	s := NewStatistics()
	now := time.Unix(1000, 0)
	// Every 4th packet missing: deliver 75 of 100.
	for i := 0; i < 100; i++ {
		if i%4 == 3 {
			continue
		}
		s.Update(uint16(i), uint32(i*3000), now.Add(time.Duration(i)*time.Millisecond))
	}
	// The final packet (i=99) was lost beyond the highest received
	// sequence number, so the receiver cannot see it: 24 visible losses
	// out of 99 expected.
	if got := s.CumulativeLost(); got != 24 {
		t.Fatalf("CumulativeLost = %d, want 24", got)
	}
	// ~24% loss → fraction ≈ 62/256.
	if got := s.FractionLost(); got < 55 || got > 70 {
		t.Fatalf("FractionLost = %d, want ~62", got)
	}
	// A second interval with no further traffic reports zero.
	if got := s.FractionLost(); got != 0 {
		t.Fatalf("second interval FractionLost = %d", got)
	}
}

func TestStatisticsWraparound(t *testing.T) {
	s := NewStatistics()
	now := time.Unix(1000, 0)
	for i := 0; i < 10; i++ {
		seq := uint16(65530 + i) // wraps at i=6
		s.Update(seq, uint32(i*3000), now.Add(time.Duration(i)*time.Millisecond))
	}
	var base uint16 = 65530
	lastSeq := base + 9 // wraps to 3
	want := uint32(1<<16) | uint32(lastSeq)
	if got := s.ExtendedHighestSeq(); got != want {
		t.Fatalf("ExtendedHighestSeq = %#x, want %#x", got, want)
	}
	if got := s.Expected(); got != 10 {
		t.Fatalf("Expected = %d, want 10", got)
	}
}

func TestStatisticsJitterReflectsVariance(t *testing.T) {
	steady := NewStatistics()
	jittery := NewStatistics()
	now := time.Unix(1000, 0)
	for i := 0; i < 200; i++ {
		ts := uint32(i * 3000) // 33ms at 90kHz
		steady.Update(uint16(i), ts, now.Add(time.Duration(i)*33*time.Millisecond))
		// Alternate early/late arrivals by ±10ms.
		off := time.Duration(i) * 33 * time.Millisecond
		if i%2 == 0 {
			off += 10 * time.Millisecond
		}
		jittery.Update(uint16(i), ts, now.Add(off))
	}
	if steady.Jitter() >= jittery.Jitter() {
		t.Fatalf("steady jitter %d should be below jittery %d", steady.Jitter(), jittery.Jitter())
	}
	// ±10ms alternation → ~20ms deltas → jitter should be hundreds of
	// 90kHz ticks.
	if jittery.Jitter() < 300 {
		t.Fatalf("jittery jitter = %d, want >= 300", jittery.Jitter())
	}
}
