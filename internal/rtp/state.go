package rtp

import "time"

// PacketizerState is the serializable position of a Packetizer inside
// its RTP sequence/timestamp spaces. A host snapshot carries one per
// remote so a restored host continues the exact packet stream the
// viewer was receiving — same SSRC, next sequence number, and timestamp
// origin — with no discontinuity for the RTP-continuity checks on the
// receiving side.
type PacketizerState struct {
	SSRC uint32
	PT   uint8
	// Seq is the sequence number the NEXT packet will carry.
	Seq uint16
	// ClockOrigin is the timestamp-origin instant as Unix nanoseconds;
	// ClockOffset is the random RTP-timestamp offset at that origin.
	ClockOrigin int64
	ClockOffset uint32
}

// State captures the packetizer's current position.
func (p *Packetizer) State() PacketizerState {
	return PacketizerState{
		SSRC:        p.ssrc,
		PT:          p.pt,
		Seq:         p.seq,
		ClockOrigin: p.clock.origin.UnixNano(),
		ClockOffset: p.clock.offset,
	}
}

// NewPacketizerFromState reconstructs a Packetizer that continues
// exactly where State() left off. No entropy is drawn: the restored
// stream is byte-identical to what the original packetizer would have
// produced.
func NewPacketizerFromState(s PacketizerState) *Packetizer {
	return &Packetizer{
		ssrc: s.SSRC,
		pt:   s.PT,
		seq:  s.Seq,
		clock: &Clock{
			origin: time.Unix(0, s.ClockOrigin),
			offset: s.ClockOffset,
		},
	}
}
