package rtp

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestHeaderRoundtrip(t *testing.T) {
	h := Header{
		Marker:         true,
		PayloadType:    99,
		SequenceNumber: 0xBEEF,
		Timestamp:      0x12345678,
		SSRC:           0xCAFEBABE,
		CSRC:           []uint32{1, 2, 3},
	}
	buf, err := h.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != HeaderSize+12 {
		t.Fatalf("len = %d, want %d", len(buf), HeaderSize+12)
	}
	var got Header
	n, err := got.Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d, want %d", n, len(buf))
	}
	if got.Marker != h.Marker || got.PayloadType != h.PayloadType ||
		got.SequenceNumber != h.SequenceNumber || got.Timestamp != h.Timestamp ||
		got.SSRC != h.SSRC || len(got.CSRC) != 3 {
		t.Fatalf("roundtrip mismatch: %+v vs %+v", got, h)
	}
}

func TestHeaderVersionBits(t *testing.T) {
	h := Header{PayloadType: 1}
	buf, err := h.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if buf[0]>>6 != 2 {
		t.Fatalf("version bits = %d, want 2", buf[0]>>6)
	}
	buf[0] = 0x00 // version 0
	var got Header
	if _, err := got.Unmarshal(buf); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestHeaderRejects(t *testing.T) {
	if _, err := (&Header{PayloadType: 0x80}).Marshal(); err == nil {
		t.Error("PT > 127 should fail")
	}
	h := Header{CSRC: make([]uint32, 16)}
	if _, err := h.Marshal(); err == nil {
		t.Error("16 CSRCs should fail")
	}
	var got Header
	if _, err := got.Unmarshal(make([]byte, 5)); !errors.Is(err, ErrTruncated) {
		t.Errorf("short header err = %v, want ErrTruncated", err)
	}
}

func TestPacketPadding(t *testing.T) {
	// Hand-build a padded packet: payload "hi" + 2 pad bytes (count 2).
	h := Header{Padding: true, PayloadType: 5, SSRC: 7}
	hb, err := h.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	buf := append(hb, 'h', 'i', 0, 2)
	var p Packet
	if err := p.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p.Payload, []byte("hi")) {
		t.Fatalf("payload = %q, want \"hi\"", p.Payload)
	}
	// Invalid pad count.
	buf[len(buf)-1] = 200
	if err := p.Unmarshal(buf); err == nil {
		t.Fatal("oversized pad count should fail")
	}
}

func TestExtensionHeaderSkipped(t *testing.T) {
	// Hand-build a packet with a 2-word header extension; the payload
	// must start after it (RFC 3550 Section 5.3.1).
	h := Header{Extension: true, PayloadType: 99, SSRC: 5}
	hb, err := h.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	ext := []byte{
		0xBE, 0xDE, 0x00, 0x02, // profile, length=2 words
		1, 2, 3, 4, 5, 6, 7, 8, // extension body
	}
	buf := append(hb, ext...)
	buf = append(buf, 'p', 'a', 'y')
	var p Packet
	if err := p.Unmarshal(buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p.Payload, []byte("pay")) {
		t.Fatalf("payload = %q, want \"pay\"", p.Payload)
	}
	// Truncated extension fails cleanly.
	var p2 Packet
	if err := p2.Unmarshal(append(hb, 0xBE, 0xDE, 0x00, 0x09)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated extension err = %v", err)
	}
	if err := p2.Unmarshal(append(hb, 0xBE)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("cut extension header err = %v", err)
	}
}

func TestQuickPacketRoundtrip(t *testing.T) {
	f := func(marker bool, pt uint8, seq uint16, ts, ssrc uint32, payload []byte) bool {
		p := Packet{
			Header: Header{
				Marker:         marker,
				PayloadType:    pt & 0x7F,
				SequenceNumber: seq,
				Timestamp:      ts,
				SSRC:           ssrc,
			},
			Payload: payload,
		}
		buf, err := p.Marshal()
		if err != nil {
			return false
		}
		var got Packet
		if err := got.Unmarshal(buf); err != nil {
			return false
		}
		return got.Header.Marker == p.Header.Marker &&
			got.Header.PayloadType == p.Header.PayloadType &&
			got.Header.SequenceNumber == seq &&
			got.Header.Timestamp == ts &&
			got.Header.SSRC == ssrc &&
			bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeqArithmetic(t *testing.T) {
	cases := []struct {
		a, b uint16
		less bool
	}{
		{0, 1, true},
		{1, 0, false},
		{65535, 0, true}, // wraparound
		{0, 65535, false},
		{5, 5, false},
		{0, 32767, true},
		{0, 32769, false}, // beyond half the space
	}
	for _, c := range cases {
		if got := SeqLess(c.a, c.b); got != c.less {
			t.Errorf("SeqLess(%d, %d) = %v, want %v", c.a, c.b, got, c.less)
		}
	}
	if d := SeqDiff(65534, 2); d != 4 {
		t.Errorf("SeqDiff(65534, 2) = %d, want 4", d)
	}
}

func TestClockRate(t *testing.T) {
	now := time.Unix(1000, 0)
	c := NewClock(now)
	t0 := c.Timestamp(now)
	t1 := c.Timestamp(now.Add(time.Second))
	if t1-t0 != ClockRate {
		t.Fatalf("1s advance = %d ticks, want %d", t1-t0, ClockRate)
	}
	t2 := c.Timestamp(now.Add(time.Millisecond))
	if t2-t0 != ClockRate/1000 {
		t.Fatalf("1ms advance = %d ticks, want %d", t2-t0, ClockRate/1000)
	}
}

func TestClockRandomOrigin(t *testing.T) {
	// Two clocks created at the same instant should (overwhelmingly
	// likely) have different origins, per the draft's randomness rule.
	now := time.Now()
	a := NewClock(now).Timestamp(now)
	b := NewClock(now).Timestamp(now)
	c := NewClock(now).Timestamp(now)
	if a == b && b == c {
		t.Fatal("three clocks agree on origin; timestamps are not random")
	}
}

func TestPacketizerSequencesAndTimestamps(t *testing.T) {
	now := time.Now()
	p := NewPacketizer(42, 99, now)
	first := p.Packetize([]byte("a"), false, now)
	second := p.Packetize([]byte("b"), true, now)
	if second.SequenceNumber != first.SequenceNumber+1 {
		t.Fatalf("sequence not incremented: %d then %d",
			first.SequenceNumber, second.SequenceNumber)
	}
	if first.Timestamp != second.Timestamp {
		t.Fatal("same-instant packets must share a timestamp (fragment rule)")
	}
	if first.SSRC != 42 || first.PayloadType != 99 {
		t.Fatalf("ssrc/pt = %d/%d", first.SSRC, first.PayloadType)
	}
	if !second.Marker || first.Marker {
		t.Fatal("marker bits not honored")
	}
}

func TestReceiverInOrder(t *testing.T) {
	r := NewReceiver()
	now := time.Now()
	p := NewPacketizer(1, 1, now)
	for i := 0; i < 5; i++ {
		out := r.Push(p.Packetize(nil, false, now))
		if len(out) != 1 {
			t.Fatalf("packet %d: delivered %d, want 1", i, len(out))
		}
	}
	if missing := r.Missing(); missing != nil {
		t.Fatalf("Missing = %v, want nil", missing)
	}
}

func TestReceiverReorderAndLoss(t *testing.T) {
	r := NewReceiver()
	mk := func(seq uint16) *Packet {
		return &Packet{Header: Header{SequenceNumber: seq}}
	}
	if out := r.Push(mk(100)); len(out) != 1 {
		t.Fatalf("first packet: %d delivered", len(out))
	}
	// 101 lost; 102, 103 arrive.
	if out := r.Push(mk(102)); out != nil {
		t.Fatalf("102 should be held, got %d", len(out))
	}
	if out := r.Push(mk(103)); out != nil {
		t.Fatalf("103 should be held, got %d", len(out))
	}
	miss := r.Missing()
	if len(miss) != 1 || miss[0] != 101 {
		t.Fatalf("Missing = %v, want [101]", miss)
	}
	// Retransmission of 101 releases the run.
	out := r.Push(mk(101))
	if len(out) != 3 {
		t.Fatalf("delivered %d, want 3", len(out))
	}
	if out[0].SequenceNumber != 101 || out[2].SequenceNumber != 103 {
		t.Fatalf("order wrong: %d..%d", out[0].SequenceNumber, out[2].SequenceNumber)
	}
}

func TestReceiverDuplicates(t *testing.T) {
	r := NewReceiver()
	mk := func(seq uint16) *Packet {
		return &Packet{Header: Header{SequenceNumber: seq}}
	}
	r.Push(mk(10))
	r.Push(mk(10)) // old duplicate
	r.Push(mk(12))
	r.Push(mk(12)) // pending duplicate
	_, dups, _ := r.Stats()
	if dups != 2 {
		t.Fatalf("duplicates = %d, want 2", dups)
	}
}

func TestReceiverSkipTo(t *testing.T) {
	r := NewReceiver()
	mk := func(seq uint16) *Packet {
		return &Packet{Header: Header{SequenceNumber: seq}}
	}
	r.Push(mk(1))
	r.Push(mk(5)) // 2,3,4 missing
	out := r.SkipTo(5)
	if len(out) != 1 || out[0].SequenceNumber != 5 {
		t.Fatalf("SkipTo delivered %v", out)
	}
	if missing := r.Missing(); missing != nil {
		t.Fatalf("Missing after skip = %v, want nil", missing)
	}
}

func TestReceiverWraparound(t *testing.T) {
	r := NewReceiver()
	mk := func(seq uint16) *Packet {
		return &Packet{Header: Header{SequenceNumber: seq}}
	}
	r.Push(mk(65534))
	r.Push(mk(65535))
	out := r.Push(mk(0))
	if len(out) != 1 || out[0].SequenceNumber != 0 {
		t.Fatalf("wraparound delivery failed: %v", out)
	}
}
