package rtp

import "time"

// Clock converts wall-clock instants into 90 kHz RTP timestamp units with
// a random (unpredictable) origin, per draft Sections 5.1.1 and 6.1.1.
type Clock struct {
	origin time.Time
	offset uint32
}

// NewClock returns a Clock whose timestamps start at a random offset.
func NewClock(now time.Time) *Clock {
	return NewClockFrom(nil, now)
}

// NewClockFrom is NewClock with an injected entropy source for the
// timestamp origin. A nil ent falls back to crypto randomness; a seeded
// ent makes the timestamps of a simulated session reproducible.
func NewClockFrom(ent func() uint32, now time.Time) *Clock {
	if ent == nil {
		ent = randUint32
	}
	return &Clock{origin: now, offset: ent()}
}

// Timestamp returns the RTP timestamp for the given instant.
func (c *Clock) Timestamp(at time.Time) uint32 {
	elapsed := at.Sub(c.origin)
	ticks := elapsed.Nanoseconds() * ClockRate / int64(time.Second)
	return c.offset + uint32(ticks)
}

// Packetizer stamps outgoing payloads with monotonically increasing
// sequence numbers and draft-conformant timestamps for a single SSRC.
// It is not safe for concurrent use.
type Packetizer struct {
	ssrc  uint32
	pt    uint8
	seq   uint16
	clock *Clock
}

// NewPacketizer returns a Packetizer for the given SSRC and payload type.
// The initial sequence number is random per RFC 3550.
func NewPacketizer(ssrc uint32, payloadType uint8, now time.Time) *Packetizer {
	return NewPacketizerFrom(nil, ssrc, payloadType, now)
}

// NewPacketizerFrom is NewPacketizer with an injected entropy source for
// the RFC 3550 random initial sequence number and timestamp origin. A
// nil ent falls back to crypto randomness; a seeded ent makes a
// simulated session's wire bytes reproducible.
func NewPacketizerFrom(ent func() uint32, ssrc uint32, payloadType uint8, now time.Time) *Packetizer {
	if ent == nil {
		ent = randUint32
	}
	return &Packetizer{
		ssrc:  ssrc,
		pt:    payloadType,
		seq:   uint16(ent()),
		clock: NewClockFrom(ent, now),
	}
}

// SSRC returns the synchronization source this packetizer stamps.
func (p *Packetizer) SSRC() uint32 { return p.ssrc }

// NextSequence returns the sequence number the next packet will carry.
func (p *Packetizer) NextSequence() uint16 { return p.seq }

// Packetize wraps payload into an RTP packet. marker sets the RTP marker
// bit (for remoting: "last packet of a multi-packet RegionUpdate"; for HIP:
// always zero). All fragments of one message must share a timestamp, so
// the caller passes the message creation instant explicitly.
func (p *Packetizer) Packetize(payload []byte, marker bool, at time.Time) *Packet {
	pkt := &Packet{
		Header: Header{
			Marker:         marker,
			PayloadType:    p.pt,
			SequenceNumber: p.seq,
			Timestamp:      p.clock.Timestamp(at),
			SSRC:           p.ssrc,
		},
		Payload: payload,
	}
	p.seq++
	return pkt
}

// NewSSRC returns a random synchronization source identifier.
func NewSSRC() uint32 { return randUint32() }

// NewSSRCFrom returns a synchronization source identifier drawn from
// ent, or a crypto-random one when ent is nil.
func NewSSRCFrom(ent func() uint32) uint32 {
	if ent == nil {
		ent = randUint32
	}
	return ent()
}
