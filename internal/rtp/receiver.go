package rtp

import "sort"

// Receiver tracks an incoming RTP stream: it reorders out-of-order
// packets, deduplicates, and reports gaps so the participant can issue
// Generic NACK requests (draft Section 5.3.2).
//
// Receiver is not safe for concurrent use.
type Receiver struct {
	started bool
	next    uint16 // next expected sequence number
	pending map[uint16]*Packet
	// stats
	received   uint64
	duplicates uint64
	reordered  uint64
}

// NewReceiver returns an empty Receiver.
func NewReceiver() *Receiver {
	return &Receiver{pending: make(map[uint16]*Packet)}
}

// Stats reports counts of received, duplicate and reordered packets.
func (r *Receiver) Stats() (received, duplicates, reordered uint64) {
	return r.received, r.duplicates, r.reordered
}

// Push accepts a packet and returns the maximal in-order run now
// deliverable (possibly empty). Old duplicates are dropped.
func (r *Receiver) Push(p *Packet) []*Packet {
	r.received++
	if !r.started {
		r.started = true
		r.next = p.SequenceNumber
	}
	if SeqLess(p.SequenceNumber, r.next) {
		r.duplicates++
		return nil
	}
	if _, dup := r.pending[p.SequenceNumber]; dup {
		r.duplicates++
		return nil
	}
	if p.SequenceNumber != r.next {
		r.reordered++
	}
	r.pending[p.SequenceNumber] = p

	var out []*Packet
	for {
		q, ok := r.pending[r.next]
		if !ok {
			break
		}
		delete(r.pending, r.next)
		out = append(out, q)
		r.next++
	}
	return out
}

// Missing returns the sequence numbers between the next expected packet
// and the newest buffered packet that have not arrived — the set a NACK
// request should name. The result is sorted in stream order.
func (r *Receiver) Missing() []uint16 {
	if len(r.pending) == 0 {
		return nil
	}
	newest := r.next
	for s := range r.pending {
		if SeqLess(newest, s) {
			newest = s
		}
	}
	var out []uint16
	for s := r.next; SeqLess(s, newest); s++ {
		if _, ok := r.pending[s]; !ok {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return SeqLess(out[i], out[j]) })
	return out
}

// SkipTo abandons all gaps before seq and flushes buffered packets up to
// and including any in-order run from seq. Used after a PLI-triggered full
// refresh makes old losses irrelevant.
func (r *Receiver) SkipTo(seq uint16) []*Packet {
	if !r.started {
		r.started = true
		r.next = seq
		return nil
	}
	for s := r.next; SeqLess(s, seq); s++ {
		delete(r.pending, s)
	}
	if SeqLess(r.next, seq) {
		r.next = seq
	}
	var out []*Packet
	for {
		q, ok := r.pending[r.next]
		if !ok {
			break
		}
		delete(r.pending, r.next)
		out = append(out, q)
		r.next++
	}
	return out
}
