package rtp

import "time"

// Statistics implements the RFC 3550 Appendix A receiver statistics
// needed to fill RTCP reception report blocks: extended highest sequence
// number (with cycle counting), cumulative and per-interval loss, and
// the interarrival jitter estimate of Appendix A.8.
//
// Statistics is not safe for concurrent use.
type Statistics struct {
	started  bool
	baseSeq  uint16
	maxSeq   uint16
	cycles   uint32 // count of sequence number wraps, shifted into bits 16+
	received uint64

	// Jitter state (RFC 3550 A.8). Transit times are in RTP timestamp
	// units at the 90 kHz media clock.
	lastTransit int64
	jitter      float64

	// Interval state for FractionLost.
	expectedPrior uint64
	receivedPrior uint64
}

// NewStatistics returns empty statistics.
func NewStatistics() *Statistics { return &Statistics{} }

// Update records one received packet: its sequence number, its RTP
// timestamp and the local arrival time.
func (s *Statistics) Update(seq uint16, rtpTime uint32, arrival time.Time) {
	if !s.started {
		s.started = true
		s.baseSeq = seq
		s.maxSeq = seq
	} else if SeqLess(s.maxSeq, seq) {
		if seq < s.maxSeq {
			// Wrapped 65535 → 0.
			s.cycles += 1 << 16
		}
		s.maxSeq = seq
	}
	s.received++

	// Interarrival jitter (A.8): J += (|D(i-1,i)| - J) / 16, with the
	// difference computed between RTP-clock arrival and media timestamps.
	arrivalTicks := arrival.UnixNano() * ClockRate / int64(time.Second)
	transit := arrivalTicks - int64(rtpTime)
	if s.lastTransit != 0 {
		d := transit - s.lastTransit
		if d < 0 {
			d = -d
		}
		s.jitter += (float64(d) - s.jitter) / 16
	}
	s.lastTransit = transit
}

// ExtendedHighestSeq returns the extended highest sequence number
// received (cycles in the high bits).
func (s *Statistics) ExtendedHighestSeq() uint32 {
	return s.cycles | uint32(s.maxSeq)
}

// Expected returns the number of packets expected so far.
func (s *Statistics) Expected() uint64 {
	if !s.started {
		return 0
	}
	return uint64(s.ExtendedHighestSeq()) - uint64(s.baseSeq) + 1
}

// CumulativeLost returns the total packets lost, clamped at zero
// (duplicates can make it negative per RFC 3550).
func (s *Statistics) CumulativeLost() uint32 {
	expected := s.Expected()
	if s.received >= expected {
		return 0
	}
	lost := expected - s.received
	if lost > 0x7FFFFF { // 24-bit field
		lost = 0x7FFFFF
	}
	return uint32(lost)
}

// Jitter returns the current interarrival jitter estimate in RTP
// timestamp units.
func (s *Statistics) Jitter() uint32 { return uint32(s.jitter) }

// FractionLost returns the 8-bit fixed-point fraction of packets lost
// since the previous call (RFC 3550 A.3) and advances the interval.
func (s *Statistics) FractionLost() uint8 {
	expected := s.Expected()
	expectedInterval := expected - s.expectedPrior
	receivedInterval := s.received - s.receivedPrior
	s.expectedPrior = expected
	s.receivedPrior = s.received
	if expectedInterval == 0 || receivedInterval >= expectedInterval {
		return 0
	}
	lost := expectedInterval - receivedInterval
	return uint8(lost * 256 / expectedInterval)
}

// ReceivedCount returns the number of packets recorded.
func (s *Statistics) ReceivedCount() uint64 { return s.received }
