// Package rtp implements the subset of RTP (RFC 3550) needed to carry the
// remoting and HIP payload formats of draft-boyaci-avt-app-sharing-00:
// header encode/decode, a packetizer that applies the draft's header usage
// rules (Sections 5.1.1 and 6.1.1), sequence-number arithmetic, and a
// reordering receiver that detects losses for NACK generation.
package rtp

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"

	"appshare/internal/wire"
)

// Version is the RTP protocol version carried in every header.
const Version = 2

// HeaderSize is the size in bytes of an RTP header with no CSRC list.
const HeaderSize = 12

// ClockRate is the RTP timestamp clock rate mandated by the draft's media
// type registrations ("The typical rate is 90000"): 90 kHz.
const ClockRate = 90000

// Errors returned by Header.Unmarshal.
var (
	ErrBadVersion = errors.New("rtp: bad version")
	ErrTruncated  = errors.New("rtp: truncated packet")
)

// Header is an RTP fixed header (RFC 3550 Section 5.1).
type Header struct {
	Padding        bool
	Extension      bool
	Marker         bool
	PayloadType    uint8 // 7 bits
	SequenceNumber uint16
	Timestamp      uint32
	SSRC           uint32
	CSRC           []uint32
}

// MarshalSize returns the encoded header length in bytes.
func (h *Header) MarshalSize() int { return HeaderSize + 4*len(h.CSRC) }

// AppendTo appends the encoded header to w.
func (h *Header) AppendTo(w *wire.Writer) error {
	if h.PayloadType > 0x7F {
		return fmt.Errorf("rtp: payload type %d exceeds 7 bits", h.PayloadType)
	}
	if len(h.CSRC) > 15 {
		return fmt.Errorf("rtp: %d CSRCs exceeds 4-bit count", len(h.CSRC))
	}
	b0 := byte(Version << 6)
	if h.Padding {
		b0 |= 1 << 5
	}
	if h.Extension {
		b0 |= 1 << 4
	}
	b0 |= byte(len(h.CSRC))
	b1 := h.PayloadType
	if h.Marker {
		b1 |= 1 << 7
	}
	w.Uint8(b0)
	w.Uint8(b1)
	w.Uint16(h.SequenceNumber)
	w.Uint32(h.Timestamp)
	w.Uint32(h.SSRC)
	for _, c := range h.CSRC {
		w.Uint32(c)
	}
	return nil
}

// Marshal returns the encoded header.
func (h *Header) Marshal() ([]byte, error) {
	w := wire.NewWriter(h.MarshalSize())
	if err := h.AppendTo(w); err != nil {
		return nil, err
	}
	return w.Bytes(), nil
}

// Unmarshal parses the header from buf and returns the number of bytes
// consumed.
func (h *Header) Unmarshal(buf []byte) (int, error) {
	if len(buf) < HeaderSize {
		return 0, ErrTruncated
	}
	if buf[0]>>6 != Version {
		return 0, fmt.Errorf("%w: %d", ErrBadVersion, buf[0]>>6)
	}
	h.Padding = buf[0]&(1<<5) != 0
	h.Extension = buf[0]&(1<<4) != 0
	cc := int(buf[0] & 0x0F)
	h.Marker = buf[1]&(1<<7) != 0
	h.PayloadType = buf[1] & 0x7F
	h.SequenceNumber = binary.BigEndian.Uint16(buf[2:])
	h.Timestamp = binary.BigEndian.Uint32(buf[4:])
	h.SSRC = binary.BigEndian.Uint32(buf[8:])
	n := HeaderSize
	if len(buf) < n+4*cc {
		return 0, ErrTruncated
	}
	h.CSRC = h.CSRC[:0]
	for i := 0; i < cc; i++ {
		h.CSRC = append(h.CSRC, binary.BigEndian.Uint32(buf[n:]))
		n += 4
	}
	if h.Extension {
		// RFC 3550 Section 5.3.1: a header extension follows the CSRC
		// list — 16 bits of profile data, a 16-bit length in 32-bit
		// words, then the extension body. This implementation defines no
		// extensions; skip over any present.
		if len(buf) < n+4 {
			return 0, ErrTruncated
		}
		extWords := int(binary.BigEndian.Uint16(buf[n+2:]))
		n += 4 + 4*extWords
		if len(buf) < n {
			return 0, ErrTruncated
		}
	}
	return n, nil
}

// Packet is a parsed RTP packet: header plus payload.
type Packet struct {
	Header
	Payload []byte
}

// Marshal returns the encoded packet.
func (p *Packet) Marshal() ([]byte, error) {
	w := wire.NewWriter(p.Header.MarshalSize() + len(p.Payload))
	if err := p.Header.AppendTo(w); err != nil {
		return nil, err
	}
	w.Write(p.Payload)
	return w.Bytes(), nil
}

// Unmarshal parses an RTP packet. The Payload aliases buf.
func (p *Packet) Unmarshal(buf []byte) error {
	n, err := p.Header.Unmarshal(buf)
	if err != nil {
		return err
	}
	payload := buf[n:]
	if p.Padding {
		if len(payload) == 0 {
			return ErrTruncated
		}
		pad := int(payload[len(payload)-1])
		if pad == 0 || pad > len(payload) {
			return fmt.Errorf("rtp: invalid padding count %d", pad)
		}
		payload = payload[:len(payload)-pad]
	}
	p.Payload = payload
	return nil
}

// randUint32 returns a cryptographically random 32-bit value. The draft
// requires the initial timestamp (and RFC 3550 the initial sequence number)
// to be random/unpredictable to resist known-plaintext attacks.
func randUint32() uint32 {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failure is unrecoverable; fail loudly rather than
		// silently weakening the randomness requirement.
		panic("rtp: crypto/rand unavailable: " + err.Error())
	}
	return binary.BigEndian.Uint32(b[:])
}

// SeqLess reports whether sequence number a is older than b in RFC 3550
// modulo-2^16 arithmetic.
func SeqLess(a, b uint16) bool {
	return a != b && b-a < 1<<15
}

// SeqDiff returns the forward distance from a to b modulo 2^16.
func SeqDiff(a, b uint16) uint16 { return b - a }
