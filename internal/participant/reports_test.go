package participant

import (
	"testing"
	"time"

	"appshare/internal/region"
	"appshare/internal/rtcp"
)

func TestHandleRTCPStoresSRAndDetectsBye(t *testing.T) {
	p := New(Config{})
	srTime := time.Unix(7000, 500000000)
	sr, err := rtcp.Marshal(&rtcp.SenderReport{SSRC: 42, NTPTime: rtcp.NTPTime(srTime)})
	if err != nil {
		t.Fatal(err)
	}
	bye, err := p.HandleRTCP(sr)
	if err != nil || bye {
		t.Fatalf("SR handling: bye=%v err=%v", bye, err)
	}
	if p.lastSR != rtcp.MiddleNTP(rtcp.NTPTime(srTime)) {
		t.Fatal("LSR not recorded")
	}

	byePkt, err := rtcp.Marshal(&rtcp.Bye{SSRCs: []uint32{42}})
	if err != nil {
		t.Fatal(err)
	}
	bye, err = p.HandleRTCP(byePkt)
	if err != nil || !bye {
		t.Fatalf("BYE handling: bye=%v err=%v", bye, err)
	}

	if _, err := p.HandleRTCP([]byte{1, 2, 3}); err == nil {
		t.Fatal("garbage RTCP should error")
	}
}

func TestBuildReceiverReportFields(t *testing.T) {
	now := time.Unix(9000, 0)
	p := New(Config{Now: func() time.Time { return now }, CNAME: "rr@test"})
	s := newSender()
	// Feed some packets, dropping a few.
	pkts := s.packets(t, wmInfo(), fillUpdate(t, 1, region.XYWH(220, 150, 350, 450), red))
	s.mtu = 256
	more := s.packets(t, fillUpdate(t, 1, region.XYWH(220, 150, 350, 450), blue))
	pkts = append(pkts, more...)
	for i, pkt := range pkts {
		if i%5 == 2 && i < len(pkts)-1 { // drop some mid-stream packets
			continue
		}
		_ = p.HandlePacket(pkt)
	}

	// Feed an SR so LSR/DLSR are nonzero.
	srTime := now.Add(-time.Second)
	sr, err := rtcp.Marshal(&rtcp.SenderReport{SSRC: 7777, NTPTime: rtcp.NTPTime(srTime)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.HandleRTCP(sr); err != nil {
		t.Fatal(err)
	}
	now = now.Add(500 * time.Millisecond)

	rr, err := p.BuildReceiverReport()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := rtcp.Unmarshal(rr)
	if err != nil {
		t.Fatal(err)
	}
	var rep *rtcp.ReceiverReport
	var sdes *rtcp.SDES
	for _, m := range parsed {
		switch v := m.(type) {
		case *rtcp.ReceiverReport:
			rep = v
		case *rtcp.SDES:
			sdes = v
		}
	}
	if rep == nil {
		t.Fatal("no RR in compound packet")
	}
	blk := rep.Reports[0]
	if blk.SSRC != 7777 {
		t.Fatalf("media SSRC = %d", blk.SSRC)
	}
	if blk.TotalLost == 0 {
		t.Fatal("dropped packets should appear as loss")
	}
	if blk.LastSR == 0 {
		t.Fatal("LastSR missing")
	}
	// DLSR is 500ms in 1/65536s units.
	wantDLSR := uint32(500 * 65536 / 1000)
	if blk.DelaySinceLastSR < wantDLSR-100 || blk.DelaySinceLastSR > wantDLSR+100 {
		t.Fatalf("DLSR = %d, want ~%d", blk.DelaySinceLastSR, wantDLSR)
	}
	if sdes == nil || sdes.CNAME != "rr@test" {
		t.Fatalf("SDES = %+v", sdes)
	}
}

func TestRaiseLocal(t *testing.T) {
	p := New(Config{})
	s := newSender()
	feed(t, p, s.packets(t, wmInfo())) // windows 1, 2 (2 on top)
	if !p.RaiseLocal(1) {
		t.Fatal("RaiseLocal failed")
	}
	order := p.Windows()
	if order[len(order)-1] != 1 {
		t.Fatalf("order after local raise = %v", order)
	}
	if p.RaiseLocal(99) {
		t.Fatal("unknown window should return false")
	}
	// The next WindowManagerInfo reasserts the AH's order.
	feed(t, p, s.packets(t, wmInfo()))
	order = p.Windows()
	if order[len(order)-1] != 2 {
		t.Fatalf("AH order not restored: %v", order)
	}
}
