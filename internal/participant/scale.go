package participant

import "image"

// Participant-side scaling — one of the optional enhancements the draft
// names in Section 4.2 ("participant-side scaling can be used to
// optimize transmission of data to participants with a small screen").
// The protocol always carries full-resolution pixels; a small-screen
// participant scales at display time.

// MinScale and MaxScale bound the supported scale factors. Factors
// outside the range are clamped, never silently ignored: a caller
// asking for a 99x blow-up gets the largest supported rendering, not a
// full-resolution image masquerading as a scaled one.
const (
	MinScale = 1.0 / 16
	MaxScale = 4.0
)

// clampScale forces a factor into [MinScale, MaxScale]. Non-finite and
// non-positive factors (0, negatives, NaN) clamp to MinScale.
func clampScale(f float64) float64 {
	if !(f > MinScale) { // catches NaN too
		return MinScale
	}
	if f > MaxScale {
		return MaxScale
	}
	return f
}

// RenderScaled composites the participant screen and scales it by the
// given factor with nearest-neighbor sampling — cheap, and exact for
// the flat-color regions that dominate screen content. Factors are
// clamped to [MinScale, MaxScale]; factor 1 (after clamping) returns
// the full-resolution render.
func (p *Participant) RenderScaled(scale float64) *image.RGBA {
	full := p.Render()
	if clampScale(scale) == 1 {
		return full
	}
	return ScaleImage(full, scale)
}

// ScaleImage returns src resized by factor with nearest-neighbor
// sampling. The factor is clamped to [MinScale, MaxScale], and the
// result is never smaller than 1×1 even when a tiny source rounds a
// dimension below one pixel.
func ScaleImage(src *image.RGBA, factor float64) *image.RGBA {
	factor = clampScale(factor)
	sb := src.Bounds()
	w := int(float64(sb.Dx()) * factor)
	h := int(float64(sb.Dy()) * factor)
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	dst := image.NewRGBA(image.Rect(0, 0, w, h))
	for y := 0; y < h; y++ {
		sy := sb.Min.Y + int(float64(y)/factor)
		if sy >= sb.Max.Y {
			sy = sb.Max.Y - 1
		}
		for x := 0; x < w; x++ {
			sx := sb.Min.X + int(float64(x)/factor)
			if sx >= sb.Max.X {
				sx = sb.Max.X - 1
			}
			so := src.PixOffset(sx, sy)
			do := dst.PixOffset(x, y)
			copy(dst.Pix[do:do+4], src.Pix[so:so+4])
		}
	}
	return dst
}
