package participant

import (
	"image"
	"image/color"
	"testing"
	"time"

	"appshare/internal/codec"
	"appshare/internal/core"
	"appshare/internal/hip"
	"appshare/internal/region"
	"appshare/internal/remoting"
	"appshare/internal/rtcp"
	"appshare/internal/rtp"
	"appshare/internal/windows"
)

var (
	red  = color.RGBA{0xFF, 0, 0, 0xFF}
	blue = color.RGBA{0, 0, 0xFF, 0xFF}
)

// sender packetizes remoting messages the way the AH does, for direct
// injection into a Participant.
type sender struct {
	pz  *rtp.Packetizer
	mtu int
}

func newSender() *sender {
	return &sender{pz: rtp.NewPacketizer(7777, 99, time.Now()), mtu: 1200}
}

func (s *sender) packets(t *testing.T, msgs ...remoting.Message) [][]byte {
	t.Helper()
	var out [][]byte
	now := time.Now()
	add := func(payload []byte, marker bool) {
		raw, err := s.pz.Packetize(payload, marker, now).Marshal()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, raw)
	}
	for _, m := range msgs {
		switch msg := m.(type) {
		case *remoting.WindowManagerInfo:
			payload, err := msg.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			add(payload, false)
		case *remoting.MoveRectangle:
			payload, err := msg.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			add(payload, false)
		case *remoting.RegionUpdate:
			frags, err := msg.Fragments(s.mtu)
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range frags {
				add(f.Payload, f.Marker)
			}
		case *remoting.MousePointerInfo:
			frags, err := msg.Fragments(s.mtu)
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range frags {
				add(f.Payload, f.Marker)
			}
		case *remoting.TileReference:
			payload, err := msg.Marshal()
			if err != nil {
				t.Fatal(err)
			}
			add(payload, false)
		}
	}
	return out
}

func feed(t *testing.T, p *Participant, pkts [][]byte) {
	t.Helper()
	for _, pkt := range pkts {
		if err := p.HandlePacket(pkt); err != nil {
			t.Fatal(err)
		}
	}
}

func wmInfo() *remoting.WindowManagerInfo {
	return &remoting.WindowManagerInfo{Windows: []remoting.WindowRecord{
		{WindowID: 1, GroupID: 1, Bounds: region.XYWH(220, 150, 350, 450)},
		{WindowID: 2, GroupID: 2, Bounds: region.XYWH(850, 320, 160, 150)},
	}}
}

func fillUpdate(t *testing.T, windowID uint16, abs region.Rect, c color.RGBA) *remoting.RegionUpdate {
	t.Helper()
	img := imageFill(abs.Width, abs.Height, c)
	content, err := (codec.PNG{}).Encode(img)
	if err != nil {
		t.Fatal(err)
	}
	return &remoting.RegionUpdate{
		WindowID:  windowID,
		ContentPT: codec.PayloadTypePNG,
		Left:      uint32(abs.Left),
		Top:       uint32(abs.Top),
		Content:   content,
	}
}

func imageFill(w, h int, c color.RGBA) *image.RGBA {
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			img.SetRGBA(x, y, c)
		}
	}
	return img
}

func TestWMInfoCreatesAndCloses(t *testing.T) {
	p := New(Config{})
	s := newSender()
	feed(t, p, s.packets(t, wmInfo()))
	if got := p.Windows(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("windows = %v", got)
	}
	// A new WMInfo without window 2 closes it (Section 5.2.1 MUST).
	less := &remoting.WindowManagerInfo{Windows: wmInfo().Windows[:1]}
	feed(t, p, s.packets(t, less))
	if got := p.Windows(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("windows after close = %v", got)
	}
	if p.WindowImage(2) != nil {
		t.Fatal("closed window image still present")
	}
}

func TestUpdateAppliesAtAbsoluteCoords(t *testing.T) {
	p := New(Config{})
	s := newSender()
	feed(t, p, s.packets(t, wmInfo(),
		fillUpdate(t, 1, region.XYWH(230, 170, 40, 30), red)))
	img := p.WindowImage(1)
	// Window origin (220,150); update at (230,170) → local (10,20).
	if got := img.RGBAAt(15, 25); got != red {
		t.Fatalf("pixel = %v, want red", got)
	}
	if got := img.RGBAAt(5, 5); got == red {
		t.Fatal("update bled outside its rect")
	}
	if p.Applied(core.TypeRegionUpdate) != 1 {
		t.Fatalf("applied updates = %d", p.Applied(core.TypeRegionUpdate))
	}
}

func TestResizeKeepsImage(t *testing.T) {
	p := New(Config{})
	s := newSender()
	feed(t, p, s.packets(t, wmInfo(),
		fillUpdate(t, 1, region.XYWH(220, 150, 50, 50), red)))
	// Resize window 1; image content must survive (Section 5.2.1).
	resized := wmInfo()
	resized.Windows[0].Bounds = region.XYWH(220, 150, 500, 600)
	feed(t, p, s.packets(t, resized))
	img := p.WindowImage(1)
	if img.Bounds().Dx() != 500 || img.Bounds().Dy() != 600 {
		t.Fatalf("image size = %v", img.Bounds())
	}
	if got := img.RGBAAt(25, 25); got != red {
		t.Fatalf("content lost on resize: %v", got)
	}
}

func TestMoveRectangleApplies(t *testing.T) {
	p := New(Config{})
	s := newSender()
	feed(t, p, s.packets(t, wmInfo(),
		fillUpdate(t, 1, region.XYWH(220, 150, 350, 10), red))) // top stripe
	// Move the stripe down 100px (absolute coordinates).
	mv := &remoting.MoveRectangle{
		WindowID: 1,
		SrcLeft:  220, SrcTop: 150,
		Width: 350, Height: 10,
		DstLeft: 220, DstTop: 250,
	}
	feed(t, p, s.packets(t, mv))
	img := p.WindowImage(1)
	if got := img.RGBAAt(100, 105); got != red {
		t.Fatalf("moved stripe = %v at local y=105, want red", got)
	}
}

func TestMoveRectangleOutsideWindowRejected(t *testing.T) {
	p := New(Config{})
	s := newSender()
	feed(t, p, s.packets(t, wmInfo()))
	mv := &remoting.MoveRectangle{WindowID: 1, SrcLeft: 0, SrcTop: 0, Width: 10, Height: 10, DstLeft: 230, DstTop: 160}
	feed(t, p, s.packets(t, mv))
	if !p.NeedsRefresh() {
		t.Fatal("out-of-window move should flag refresh")
	}
}

func TestUpdateForUnknownWindowFlagsRefresh(t *testing.T) {
	p := New(Config{})
	s := newSender()
	feed(t, p, s.packets(t, fillUpdate(t, 9, region.XYWH(0, 0, 10, 10), red)))
	if !p.NeedsRefresh() {
		t.Fatal("unknown window update should flag refresh")
	}
	// The flag is sticky: it survives reads (a PLI answer might be
	// rate-limited away, so the participant keeps asking)...
	if !p.NeedsRefresh() {
		t.Fatal("flag must persist until a refresh arrives")
	}
	// ...and clears only when a full refresh lands: WindowManagerInfo
	// followed by whole-window updates.
	feed(t, p, s.packets(t, wmInfo(),
		fillUpdate(t, 1, region.XYWH(220, 150, 350, 450), red),
		fillUpdate(t, 2, region.XYWH(850, 320, 160, 150), red)))
	if p.NeedsRefresh() {
		t.Fatal("full refresh should clear the flag")
	}
}

func TestPointerHandling(t *testing.T) {
	p := New(Config{})
	s := newSender()
	sprite, err := (codec.PNG{}).Encode(imageFill(8, 8, blue))
	if err != nil {
		t.Fatal(err)
	}
	feed(t, p, s.packets(t, wmInfo(), &remoting.MousePointerInfo{
		ContentPT: codec.PayloadTypePNG, Left: 230, Top: 160, Image: sprite,
	}))
	x, y, known := p.Pointer()
	if !known || x != 230 || y != 160 {
		t.Fatalf("pointer = (%d,%d), known=%v", x, y, known)
	}
	// Render draws the sprite at the window-mapped position (original
	// layout → same coords).
	out := p.Render()
	if got := out.RGBAAt(231, 161); got != blue {
		t.Fatalf("rendered pointer = %v", got)
	}
	// Position-only message moves the stored sprite.
	feed(t, p, s.packets(t, &remoting.MousePointerInfo{ContentPT: codec.PayloadTypePNG, Left: 500, Top: 500}))
	out = p.Render()
	if got := out.RGBAAt(501, 501); got != blue {
		t.Fatalf("moved pointer = %v", got)
	}
}

func TestRenderLayouts(t *testing.T) {
	// Shift layout: window content renders at the shifted placement.
	p := New(Config{Layout: windows.ShiftLayout{DX: -220, DY: -150}})
	s := newSender()
	feed(t, p, s.packets(t, wmInfo(),
		fillUpdate(t, 1, region.XYWH(220, 150, 50, 50), red)))
	out := p.Render()
	if got := out.RGBAAt(10, 10); got != red {
		t.Fatalf("shifted render = %v at (10,10), want red", got)
	}

	// Compact layout on a small screen keeps all windows visible.
	pc := New(Config{
		Layout:      &windows.CompactLayout{Screen: region.XYWH(0, 0, 640, 480)},
		ScreenWidth: 640, ScreenHeight: 480,
	})
	sc := newSender()
	feed(t, pc, sc.packets(t, wmInfo(),
		fillUpdate(t, 2, region.XYWH(850, 320, 160, 150), blue)))
	place, ok := pc.WindowPlacement(2)
	if !ok {
		t.Fatal("window 2 unplaced")
	}
	if !region.XYWH(0, 0, 640, 480).ContainsRect(place) {
		t.Fatalf("placement %v off the 640x480 screen", place)
	}
	out = pc.Render()
	if got := out.RGBAAt(place.Left+10, place.Top+10); got != blue {
		t.Fatalf("compact render = %v", got)
	}
}

func TestZOrderRendering(t *testing.T) {
	p := New(Config{})
	s := newSender()
	// Two overlapping windows; window 3 is above window 1.
	wm := &remoting.WindowManagerInfo{Windows: []remoting.WindowRecord{
		{WindowID: 1, Bounds: region.XYWH(100, 100, 200, 200)},
		{WindowID: 3, Bounds: region.XYWH(200, 200, 200, 200)},
	}}
	feed(t, p, s.packets(t, wm,
		fillUpdate(t, 1, region.XYWH(100, 100, 200, 200), red),
		fillUpdate(t, 3, region.XYWH(200, 200, 200, 200), blue)))
	out := p.Render()
	// Overlap region (200..300, 200..300): top window (3) wins.
	if got := out.RGBAAt(250, 250); got != blue {
		t.Fatalf("overlap = %v, want blue", got)
	}
	if got := out.RGBAAt(150, 150); got != red {
		t.Fatalf("window 1 area = %v, want red", got)
	}
}

func TestLossDetectionAndNACKBuild(t *testing.T) {
	p := New(Config{})
	s := newSender()
	s.mtu = 256 // force fragmentation of the (well-compressed) update
	pkts := s.packets(t, wmInfo(),
		fillUpdate(t, 1, region.XYWH(220, 150, 350, 450), red))
	if len(pkts) < 4 {
		t.Fatalf("need multi-packet traffic, got %d", len(pkts))
	}
	// Drop the second packet.
	for i, pkt := range pkts {
		if i == 1 {
			continue
		}
		if err := p.HandlePacket(pkt); err != nil {
			t.Fatal(err)
		}
	}
	missing := p.MissingSequences()
	if len(missing) != 1 {
		t.Fatalf("missing = %v", missing)
	}
	nack, err := p.BuildNACK()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := rtcp.Unmarshal(nack)
	if err != nil {
		t.Fatal(err)
	}
	n, ok := parsed[0].(*rtcp.NACK)
	if !ok || len(n.Lost()) != 1 || n.Lost()[0] != missing[0] {
		t.Fatalf("NACK = %+v", parsed[0])
	}
	if n.MediaSSRC != 7777 {
		t.Fatalf("media SSRC = %d", n.MediaSSRC)
	}
	// Redeliver the lost packet: stream completes, no more missing.
	if err := p.HandlePacket(pkts[1]); err != nil {
		t.Fatal(err)
	}
	if got := p.MissingSequences(); got != nil {
		t.Fatalf("still missing %v", got)
	}
	if nack, err := p.BuildNACK(); err != nil || nack != nil {
		t.Fatalf("NACK after recovery = %v, %v", nack, err)
	}
	img := p.WindowImage(1)
	if got := img.RGBAAt(100, 100); got != red {
		t.Fatalf("recovered content = %v", got)
	}
}

func TestBuildPLI(t *testing.T) {
	p := New(Config{})
	s := newSender()
	feed(t, p, s.packets(t, wmInfo()))
	pli, err := p.BuildPLI()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := rtcp.Unmarshal(pli)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := parsed[0].(*rtcp.PLI)
	if !ok || m.MediaSSRC != 7777 {
		t.Fatalf("PLI = %+v", parsed[0])
	}
}

func TestHIPBuilders(t *testing.T) {
	p := New(Config{})
	click, err := p.MousePress(1, 230, 160, hip.ButtonLeft)
	if err != nil {
		t.Fatal(err)
	}
	var pkt rtp.Packet
	if err := pkt.Unmarshal(click); err != nil {
		t.Fatal(err)
	}
	if pkt.PayloadType != 100 {
		t.Fatalf("HIP PT = %d", pkt.PayloadType)
	}
	if pkt.Marker {
		t.Fatal("HIP marker must be zero (Section 6.1.1)")
	}
	ev, err := hip.Unmarshal(pkt.Payload)
	if err != nil {
		t.Fatal(err)
	}
	mp, ok := ev.(*hip.MousePressed)
	if !ok || mp.Left != 230 || mp.Top != 160 || mp.Button != hip.ButtonLeft {
		t.Fatalf("event = %#v", ev)
	}

	// Sequence numbers advance across events.
	move, err := p.MouseMove(1, 231, 161)
	if err != nil {
		t.Fatal(err)
	}
	var pkt2 rtp.Packet
	if err := pkt2.Unmarshal(move); err != nil {
		t.Fatal(err)
	}
	if pkt2.SequenceNumber != pkt.SequenceNumber+1 {
		t.Fatal("HIP sequence numbers must increment")
	}

	// Long text splits into multiple KeyTyped packets.
	long := make([]byte, 3000)
	for i := range long {
		long[i] = 'a'
	}
	pkts, err := p.TypeText(1, string(long), 1200)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) < 3 {
		t.Fatalf("TypeText packets = %d", len(pkts))
	}

	// Remaining builders produce valid events.
	if _, err := p.MouseRelease(1, 230, 160, hip.ButtonLeft); err != nil {
		t.Fatal(err)
	}
	if _, err := p.MouseWheel(1, 230, 160, -240); err != nil {
		t.Fatal(err)
	}
	if _, err := p.KeyPress(1, 0x70); err != nil {
		t.Fatal(err)
	}
	if _, err := p.KeyRelease(1, 0x70); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsWrongPayloadType(t *testing.T) {
	p := New(Config{})
	pz := rtp.NewPacketizer(1, 55, time.Now()) // wrong PT
	raw, err := pz.Packetize([]byte{1, 0, 0, 0}, false, time.Now()).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.HandlePacket(raw); err == nil {
		t.Fatal("wrong PT should be rejected")
	}
	if err := p.HandlePacket([]byte{1, 2}); err == nil {
		t.Fatal("garbage should be rejected")
	}
}
