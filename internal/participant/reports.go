package participant

import (
	"time"

	"appshare/internal/rtcp"
)

// RTCP report handling (RFC 3550): the participant consumes the AH's
// Sender Reports and produces Receiver Reports carrying the reception
// statistics (loss, jitter, LSR/DLSR) of the remoting stream.

// HandleRTCP consumes an RTCP compound packet from the AH (Sender
// Reports, SDES, BYE). It returns true when the packet announced session
// teardown (BYE).
func (p *Participant) HandleRTCP(pkt []byte) (bye bool, err error) {
	pkts, err := rtcp.Unmarshal(pkt)
	if err != nil {
		return false, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, m := range pkts {
		switch sr := m.(type) {
		case *rtcp.SenderReport:
			p.lastSR = rtcp.MiddleNTP(sr.NTPTime)
			p.lastSRArrival = p.cfg.Now()
		case *rtcp.Bye:
			bye = true
		}
	}
	return bye, nil
}

// BuildReceiverReport returns an encoded RTCP RR (plus SDES CNAME)
// describing the remoting stream's reception quality.
func (p *Participant) BuildReceiverReport() ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var dlsr uint32
	if !p.lastSRArrival.IsZero() {
		delay := p.cfg.Now().Sub(p.lastSRArrival)
		dlsr = uint32(delay * 65536 / time.Second)
	}
	rr := &rtcp.ReceiverReport{
		SSRC: p.feedbackSSRC,
		Reports: []rtcp.ReceptionReport{{
			SSRC:             p.mediaSSRC,
			FractionLost:     p.rtpStats.FractionLost(),
			TotalLost:        p.rtpStats.CumulativeLost(),
			HighestSeq:       p.rtpStats.ExtendedHighestSeq(),
			Jitter:           p.rtpStats.Jitter(),
			LastSR:           p.lastSR,
			DelaySinceLastSR: dlsr,
		}},
	}
	sdes := &rtcp.SDES{SSRC: p.feedbackSSRC, CNAME: p.cname}
	return rtcp.Marshal(rr, sdes)
}
