package participant

import (
	"image"
	"image/color"
	"testing"

	"appshare/internal/region"
	"appshare/internal/remoting"
)

func TestScaleImageDown(t *testing.T) {
	src := image.NewRGBA(image.Rect(0, 0, 100, 80))
	// Left half red, right half blue.
	for y := 0; y < 80; y++ {
		for x := 0; x < 100; x++ {
			if x < 50 {
				src.SetRGBA(x, y, color.RGBA{0xFF, 0, 0, 0xFF})
			} else {
				src.SetRGBA(x, y, color.RGBA{0, 0, 0xFF, 0xFF})
			}
		}
	}
	dst := ScaleImage(src, 0.5)
	if dst.Bounds().Dx() != 50 || dst.Bounds().Dy() != 40 {
		t.Fatalf("scaled size = %v", dst.Bounds())
	}
	if got := dst.RGBAAt(10, 20); got != (color.RGBA{0xFF, 0, 0, 0xFF}) {
		t.Fatalf("left pixel = %v", got)
	}
	if got := dst.RGBAAt(40, 20); got != (color.RGBA{0, 0, 0xFF, 0xFF}) {
		t.Fatalf("right pixel = %v", got)
	}
}

func TestScaleImageUpAndClamp(t *testing.T) {
	src := image.NewRGBA(image.Rect(0, 0, 10, 10))
	src.SetRGBA(9, 9, color.RGBA{1, 2, 3, 0xFF})
	dst := ScaleImage(src, 2)
	if dst.Bounds().Dx() != 20 || dst.Bounds().Dy() != 20 {
		t.Fatalf("scaled size = %v", dst.Bounds())
	}
	if got := dst.RGBAAt(19, 19); got != (color.RGBA{1, 2, 3, 0xFF}) {
		t.Fatalf("corner = %v", got)
	}
	// Degenerate factor clamps to >= 1 pixel.
	tiny := ScaleImage(src, 0.01)
	if tiny.Bounds().Dx() < 1 || tiny.Bounds().Dy() < 1 {
		t.Fatal("degenerate scale produced empty image")
	}
}

func TestRenderScaled(t *testing.T) {
	p := New(Config{ScreenWidth: 200, ScreenHeight: 100})
	s := newSender()
	wm := &remoting.WindowManagerInfo{Windows: []remoting.WindowRecord{
		{WindowID: 1, Bounds: region.XYWH(0, 0, 100, 50)},
	}}
	feed(t, p, s.packets(t, wm,
		fillUpdate(t, 1, region.XYWH(0, 0, 100, 50), red)))
	half := p.RenderScaled(0.5)
	if half.Bounds().Dx() != 100 || half.Bounds().Dy() != 50 {
		t.Fatalf("scaled render = %v", half.Bounds())
	}
	if got := half.RGBAAt(10, 10); got != red {
		t.Fatalf("scaled pixel = %v", got)
	}
	// Factor 1 returns full size; out-of-range factors clamp instead of
	// silently returning a full-resolution image.
	if got := p.RenderScaled(1).Bounds(); got.Dx() != 200 {
		t.Fatalf("unit scale = %v", got)
	}
	if got := p.RenderScaled(99).Bounds(); got.Dx() != 200*4 {
		t.Fatalf("out-of-range scale = %v, want clamp to MaxScale (800 wide)", got)
	}
}

// TestScaleClampBoundaries pins the clamp contract on the boundary
// factors: zero and negative clamp to MinScale, MaxScale is exact,
// beyond-max clamps to MaxScale, and a tiny source whose scaled
// dimension rounds below one pixel still yields a 1px-minimum image.
func TestScaleClampBoundaries(t *testing.T) {
	src := image.NewRGBA(image.Rect(0, 0, 200, 100))
	cases := []struct {
		name         string
		factor       float64
		wantW, wantH int
	}{
		{"zero-clamps-to-min", 0, 12, 6}, // 200/16=12.5 truncates
		{"negative-clamps-to-min", -3, 12, 6},
		{"below-min-clamps", 1.0 / 64, 12, 6},
		{"min-exact", MinScale, 12, 6},
		{"max-exact", 4, 800, 400},
		{"above-max-clamps", 99, 800, 400},
		{"interior-untouched", 0.5, 100, 50},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dst := ScaleImage(src, tc.factor)
			if dst.Bounds().Dx() != tc.wantW || dst.Bounds().Dy() != tc.wantH {
				t.Fatalf("ScaleImage(%v) size = %dx%d, want %dx%d",
					tc.factor, dst.Bounds().Dx(), dst.Bounds().Dy(), tc.wantW, tc.wantH)
			}
		})
	}

	// Tiny source: 3x2 at MinScale rounds both dimensions below one
	// pixel; the result must still be a valid 1x1 image.
	tiny := ScaleImage(image.NewRGBA(image.Rect(0, 0, 3, 2)), MinScale)
	if tiny.Bounds().Dx() != 1 || tiny.Bounds().Dy() != 1 {
		t.Fatalf("tiny source at MinScale = %v, want 1x1", tiny.Bounds())
	}
}
