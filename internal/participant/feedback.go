package participant

import (
	"errors"

	"appshare/internal/hip"
	"appshare/internal/keycodes"
	"appshare/internal/rtcp"
	"appshare/internal/rtp"
)

// Feedback and HIP generation. Participants send RTCP PLI to request a
// full refresh (Section 5.3.1), RTCP Generic NACK naming missing packets
// (Section 5.3.2) and HIP RTP messages carrying their mouse and keyboard
// events (Section 6).

// BuildPLI returns an encoded RTCP PLI addressed to the AH's stream.
func (p *Participant) BuildPLI() ([]byte, error) {
	p.mu.Lock()
	media := p.mediaSSRC
	p.mu.Unlock()
	return rtcp.Marshal(&rtcp.PLI{SenderSSRC: p.feedbackSSRC, MediaSSRC: media})
}

// MissingSequences lists the remoting sequence numbers currently missing
// (gaps behind buffered packets).
func (p *Participant) MissingSequences() []uint16 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.recv.Missing()
}

// BuildNACK returns an encoded RTCP Generic NACK naming the currently
// missing packets, or nil when nothing is missing.
func (p *Participant) BuildNACK() ([]byte, error) {
	missing := p.MissingSequences()
	if len(missing) == 0 {
		return nil, nil
	}
	p.mu.Lock()
	media := p.mediaSSRC
	p.mu.Unlock()
	return rtcp.Marshal(&rtcp.NACK{
		SenderSSRC: p.feedbackSSRC,
		MediaSSRC:  media,
		Pairs:      rtcp.BuildNACKPairs(missing),
	})
}

// packHIP wraps one HIP event into an RTP packet. Per Section 6.1.1 the
// marker bit is always zero.
func (p *Participant) packHIP(ev hip.Event) ([]byte, error) {
	payload, err := hip.Marshal(ev)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	pkt := p.hipPz.Packetize(payload, false, p.cfg.Now())
	return pkt.Marshal()
}

// MousePress builds a MousePressed HIP packet at absolute coordinates.
// Button 0 is rejected: the draft defines buttons starting at 1.
func (p *Participant) MousePress(windowID uint16, x, y int, button uint8) ([]byte, error) {
	if button == 0 {
		return nil, errors.New("participant: mouse button 0 is not defined")
	}
	return p.packHIP(&hip.MousePressed{WindowID: windowID, Button: button, Left: uint32(x), Top: uint32(y)})
}

// MouseRelease builds a MouseReleased HIP packet.
func (p *Participant) MouseRelease(windowID uint16, x, y int, button uint8) ([]byte, error) {
	if button == 0 {
		return nil, errors.New("participant: mouse button 0 is not defined")
	}
	return p.packHIP(&hip.MouseReleased{WindowID: windowID, Button: button, Left: uint32(x), Top: uint32(y)})
}

// MouseMove builds a MouseMoved HIP packet.
func (p *Participant) MouseMove(windowID uint16, x, y int) ([]byte, error) {
	return p.packHIP(&hip.MouseMoved{WindowID: windowID, Left: uint32(x), Top: uint32(y)})
}

// MouseWheel builds a MouseWheelMoved HIP packet (distance: 120/notch).
func (p *Participant) MouseWheel(windowID uint16, x, y int, distance int32) ([]byte, error) {
	return p.packHIP(&hip.MouseWheelMoved{WindowID: windowID, Left: uint32(x), Top: uint32(y), Distance: distance})
}

// KeyPress builds a KeyPressed HIP packet.
func (p *Participant) KeyPress(windowID uint16, code keycodes.Code) ([]byte, error) {
	return p.packHIP(&hip.KeyPressed{WindowID: windowID, KeyCode: code})
}

// KeyRelease builds a KeyReleased HIP packet.
func (p *Participant) KeyRelease(windowID uint16, code keycodes.Code) ([]byte, error) {
	return p.packHIP(&hip.KeyReleased{WindowID: windowID, KeyCode: code})
}

// TypeText builds the KeyTyped HIP packets carrying text, split at the
// MTU per Section 6.8.
func (p *Participant) TypeText(windowID uint16, text string, mtu int) ([][]byte, error) {
	msgs, err := hip.SplitKeyTyped(windowID, text, mtu-rtp.HeaderSize)
	if err != nil {
		return nil, err
	}
	out := make([][]byte, 0, len(msgs))
	for _, m := range msgs {
		pkt, err := p.packHIP(m)
		if err != nil {
			return nil, err
		}
		out = append(out, pkt)
	}
	return out, nil
}
