// Package participant implements the receiving endpoint of
// draft-boyaci-avt-app-sharing-00: it consumes remoting RTP packets
// (reordering, reassembling fragments, decoding content), maintains
// per-window images under a local layout policy (Figures 3–5), renders a
// participant screen, generates RTCP feedback (PLI on join or
// desynchronization, NACK for losses) and emits HIP events.
package participant

import (
	"errors"
	"fmt"
	"image"
	"image/color"
	"image/draw"
	"sync"
	"time"

	"appshare/internal/codec"
	"appshare/internal/core"
	"appshare/internal/display"
	"appshare/internal/region"
	"appshare/internal/remoting"
	"appshare/internal/rtp"
	"appshare/internal/stats"
	"appshare/internal/windows"
)

// Config configures a Participant.
type Config struct {
	// Layout places shared windows on the local screen (default:
	// original AH coordinates, Figure 3).
	Layout windows.Layout
	// ScreenWidth and ScreenHeight size the local screen (defaults
	// 1280x1024).
	ScreenWidth, ScreenHeight int
	// Registry supplies content codecs (default: PNG+JPEG+Raw).
	Registry *codec.Registry
	// RemotingPT and HIPPT are the negotiated stream payload types
	// (defaults 99 and 100).
	RemotingPT, HIPPT uint8
	// Stats, when non-nil, counts received message types.
	Stats *stats.Collector
	// Now supplies time (defaults to time.Now).
	Now func() time.Time
	// Entropy, when non-nil, supplies the RFC 3550 random identifiers
	// (HIP SSRC and initial sequence, feedback SSRC, timestamp origin);
	// nil draws them from crypto randomness. A seeded source makes a
	// simulated viewer's wire bytes reproducible.
	Entropy func() uint32
	// CNAME identifies this participant in RTCP SDES (defaults to
	// "participant@appshare").
	CNAME string
	// MaxDecodedPixels bounds one decoded RegionUpdate, guarding against
	// decompression bombs (draft Section 8 resource-exhaustion risks).
	// Zero means codec.DefaultMaxPixels.
	MaxDecodedPixels int
	// TileStore enables the negotiated tile-store capability: the
	// participant learns the tiles of every losslessly-encoded update it
	// paints and applies TileReference messages from its dictionary.
	// TileSize and TileDictCapacity MUST match the host's negotiated
	// values (zero takes the codec defaults): equal sizes make both
	// sides hash identical tile grids, and equal capacities keep the two
	// deterministic FIFO dictionaries evicting in lockstep. Without
	// TileStore, TileReference messages fall through the extension-ignore
	// path (Section 5.1.2).
	TileStore        bool
	TileSize         int
	TileDictCapacity int
}

// view is one shared window as the participant sees it.
type view struct {
	rec    remoting.WindowRecord
	placed region.Rect
	img    *image.RGBA // window-local content
}

// Participant is one receiving endpoint.
type Participant struct {
	mu   sync.Mutex
	cfg  Config
	recv *rtp.Receiver
	re   *core.Reassembler

	views map[uint16]*view
	order []uint16 // z-order, bottom first

	pointer struct {
		x, y   int
		sprite *image.RGBA
		has    bool
	}

	hipPz        *rtp.Packetizer
	feedbackSSRC uint32
	mediaSSRC    uint32
	haveMedia    bool

	// RTCP report state (RFC 3550).
	rtpStats      *rtp.Statistics
	lastSR        uint32 // middle 32 bits of the last SR's NTP time
	lastSRArrival time.Time
	cname         string

	// Desynchronization tracking. refreshWaiting latches when state was
	// lost (orphan fragments, updates for unknown windows) and clears
	// only when a full refresh has actually been applied: every window
	// in needFull must receive a whole-window RegionUpdate. Clearing on
	// read would lose the desync if the host's PLI rate limiter absorbs
	// the first request.
	refreshWaiting bool
	needFull       map[uint16]bool

	applied map[core.MessageType]uint64

	// extHandlers receive messages with types outside Table 1. Section
	// 5.1.2: additional types may be registered with IANA and
	// "Participants MAY ignore such additional message types" — without
	// a handler they are counted and skipped, never treated as errors.
	extHandlers map[core.MessageType]func(hdr core.Header, body []byte)
	ignoredExt  uint64

	// tiles is the negotiated tile dictionary (nil without
	// Config.TileStore); it owns pixel copies of every learned tile.
	// tileDesyncs counts TileReference messages naming tiles this side
	// does not hold — each one latches a refresh request, the bounded
	// recovery from a dictionary desynchronization.
	tiles       *codec.TileDict
	tileDesyncs uint64
}

// New returns a Participant.
func New(cfg Config) *Participant {
	if cfg.Layout == nil {
		cfg.Layout = windows.OriginalLayout{}
	}
	if cfg.ScreenWidth == 0 {
		cfg.ScreenWidth = 1280
	}
	if cfg.ScreenHeight == 0 {
		cfg.ScreenHeight = 1024
	}
	if cfg.Registry == nil {
		cfg.Registry = codec.DefaultRegistry()
	}
	if cfg.RemotingPT == 0 {
		cfg.RemotingPT = 99
	}
	if cfg.HIPPT == 0 {
		cfg.HIPPT = 100
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.CNAME == "" {
		cfg.CNAME = "participant@appshare"
	}
	if cfg.TileSize <= 0 {
		cfg.TileSize = codec.DefaultTileSize
	}
	var tiles *codec.TileDict
	if cfg.TileStore {
		tiles = codec.NewTileDict(cfg.TileDictCapacity)
	}
	return &Participant{
		cfg:          cfg,
		recv:         rtp.NewReceiver(),
		re:           core.NewReassembler(),
		views:        make(map[uint16]*view),
		hipPz:        rtp.NewPacketizerFrom(cfg.Entropy, rtp.NewSSRCFrom(cfg.Entropy), cfg.HIPPT, cfg.Now()),
		feedbackSSRC: rtp.NewSSRCFrom(cfg.Entropy),
		rtpStats:     rtp.NewStatistics(),
		cname:        cfg.CNAME,
		applied:      make(map[core.MessageType]uint64),
		tiles:        tiles,
	}
}

// Applied returns how many messages of the given type were applied.
func (p *Participant) Applied(t core.MessageType) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.applied[t]
}

// NeedsRefresh reports whether the participant lost state and is still
// waiting for a full refresh. It stays true until every shared window
// has received a whole-window RegionUpdate (a PLI answer), so callers
// may keep re-sending PLIs while it holds — the host's rate limiter
// absorbs the extras.
func (p *Participant) NeedsRefresh() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.refreshWaiting
}

// markDesync latches refresh-waiting state. The lock is held.
func (p *Participant) markDesync() {
	p.refreshWaiting = true
	if p.needFull == nil {
		p.needFull = make(map[uint16]bool)
	}
	for id := range p.views {
		p.needFull[id] = true
	}
	if len(p.views) == 0 {
		// No windows yet: the next WindowManagerInfo registers them.
		p.needFull = make(map[uint16]bool)
	}
}

// noteFullWindowUpdate clears per-window desync once a whole-window
// update lands. The lock is held.
func (p *Participant) noteFullWindowUpdate(id uint16) {
	if !p.refreshWaiting {
		return
	}
	delete(p.needFull, id)
	if len(p.needFull) == 0 {
		p.refreshWaiting = false
	}
}

// HandlePacket consumes one remoting RTP packet (datagram or deframed
// from a stream). Out-of-order packets are buffered; fragments are
// reassembled; complete messages are applied to the local screen state.
func (p *Participant) HandlePacket(raw []byte) error {
	var pkt rtp.Packet
	if err := pkt.Unmarshal(raw); err != nil {
		return fmt.Errorf("participant: %w", err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if pkt.PayloadType != p.cfg.RemotingPT {
		return fmt.Errorf("participant: unexpected payload type %d", pkt.PayloadType)
	}
	if !p.haveMedia {
		p.mediaSSRC = pkt.SSRC
		p.haveMedia = true
	}
	p.rtpStats.Update(pkt.SequenceNumber, pkt.Timestamp, p.cfg.Now())
	// The payload buffer aliases raw; copy before buffering/reassembly.
	pkt.Payload = append([]byte(nil), pkt.Payload...)
	for _, ordered := range p.recv.Push(&pkt) {
		msg, err := p.re.Push(ordered.Payload, ordered.Marker)
		if err != nil && !errors.Is(err, core.ErrInterruptedReass) {
			// Orphan fragments mean we lost a message start; a PLI (or
			// NACK satisfied earlier) is required to resynchronize.
			p.markDesync()
			continue
		}
		if msg == nil {
			continue
		}
		if msg.Header.Type == core.TypeTileReference && p.tiles != nil {
			// Negotiated tile store: TileReference is handled natively.
			// Without the negotiation it stays an extension type and falls
			// through to the ignore path below.
			decoded, err := remoting.Decode(msg)
			if err != nil {
				p.markDesync()
				continue
			}
			if err := p.apply(decoded); err != nil {
				p.markDesync()
			}
			continue
		}
		if !msg.Header.Type.IsRemoting() {
			// Extension message type (Section 9 registry): dispatch to
			// a registered handler or ignore, per Section 5.1.2.
			if h := p.extHandlers[msg.Header.Type]; h != nil {
				h(msg.Header, msg.Body)
			} else {
				p.ignoredExt++
			}
			continue
		}
		decoded, err := remoting.Decode(msg)
		if err != nil {
			p.markDesync()
			continue
		}
		if err := p.apply(decoded); err != nil {
			p.markDesync()
		}
	}
	return nil
}

// apply dispatches one remoting message. The lock is held.
func (p *Participant) apply(msg remoting.Message) error {
	if p.cfg.Stats != nil {
		p.cfg.Stats.Record(msg.Type().String(), 0)
	}
	p.applied[msg.Type()]++
	switch m := msg.(type) {
	case *remoting.WindowManagerInfo:
		p.applyWMInfo(m)
		return nil
	case *remoting.RegionUpdate:
		return p.applyUpdate(m)
	case *remoting.MoveRectangle:
		return p.applyMove(m)
	case *remoting.MousePointerInfo:
		return p.applyPointer(m)
	case *remoting.TileReference:
		return p.applyTileRef(m)
	default:
		return fmt.Errorf("participant: unknown message %T", msg)
	}
}

// applyWMInfo realizes Section 5.2.1: create windows for new IDs, close
// windows absent from the message, keep existing images across moves and
// resizes, adopt the implicit z-order.
func (p *Participant) applyWMInfo(m *remoting.WindowManagerInfo) {
	if obs, ok := p.cfg.Layout.(*windows.AutoShiftLayout); ok {
		obs.Observe(m.Windows)
	}
	seen := make(map[uint16]bool, len(m.Windows))
	newOrder := make([]uint16, 0, len(m.Windows))
	for _, rec := range m.Windows {
		seen[rec.WindowID] = true
		newOrder = append(newOrder, rec.WindowID)
		v, ok := p.views[rec.WindowID]
		if !ok {
			img := image.NewRGBA(image.Rect(0, 0, rec.Bounds.Width, rec.Bounds.Height))
			draw.Draw(img, img.Bounds(), &image.Uniform{color.RGBA{0xD0, 0xD0, 0xD0, 0xFF}}, image.Point{}, draw.Src)
			p.views[rec.WindowID] = &view{rec: rec, placed: p.cfg.Layout.Place(rec), img: img}
			if p.refreshWaiting {
				p.needFull[rec.WindowID] = true
			}
			continue
		}
		// Existing window: keep the image (Section 5.2.1 MUST). On
		// resize, preserve the overlapping content.
		if v.rec.Bounds.Width != rec.Bounds.Width || v.rec.Bounds.Height != rec.Bounds.Height {
			img := image.NewRGBA(image.Rect(0, 0, rec.Bounds.Width, rec.Bounds.Height))
			draw.Draw(img, img.Bounds(), &image.Uniform{color.RGBA{0xD0, 0xD0, 0xD0, 0xFF}}, image.Point{}, draw.Src)
			draw.Draw(img, v.img.Bounds(), v.img, image.Point{}, draw.Src)
			v.img = img
		}
		v.rec = rec
		v.placed = p.cfg.Layout.Place(rec)
	}
	// Close windows missing from the message (Section 5.2.1 MUST).
	for id := range p.views {
		if !seen[id] {
			delete(p.views, id)
			if p.refreshWaiting {
				// A closed window no longer needs a full update.
				delete(p.needFull, id)
				if len(p.needFull) == 0 {
					p.refreshWaiting = false
				}
			}
			if cl, ok := p.cfg.Layout.(*windows.CompactLayout); ok {
				cl.Forget(id)
			}
		}
	}
	p.order = newOrder
}

func (p *Participant) applyUpdate(m *remoting.RegionUpdate) error {
	v, ok := p.views[m.WindowID]
	if !ok {
		return fmt.Errorf("participant: update for unknown window %d", m.WindowID)
	}
	c, err := p.cfg.Registry.Lookup(m.ContentPT)
	if err != nil {
		return err
	}
	img, err := codec.SafeDecode(c, m.Content, p.cfg.MaxDecodedPixels)
	if err != nil {
		return err
	}
	// Absolute coordinates → window-local.
	lx := int(m.Left) - v.rec.Bounds.Left
	ly := int(m.Top) - v.rec.Bounds.Top
	b := img.Bounds()
	draw.Draw(v.img, image.Rect(lx, ly, lx+b.Dx(), ly+b.Dy()), img, b.Min, draw.Src)
	if p.tiles != nil && codec.LosslessPT(m.ContentPT) {
		// Learn the update's tiles, mirroring the host's seen-set insert
		// for this same update: a lossless decode reproduces the exact
		// pixels the host hashed, so both sides compute identical keys in
		// identical (row-major) order. Lossy content is never learned —
		// its decoded pixels differ from the host's source.
		p.learnTiles(img)
	}
	if lx <= 0 && ly <= 0 && lx+b.Dx() >= v.rec.Bounds.Width && ly+b.Dy() >= v.rec.Bounds.Height {
		// A whole-window update: the refresh this window was waiting
		// for (if any) has landed.
		p.noteFullWindowUpdate(m.WindowID)
	}
	return nil
}

// learnTiles inserts the tile grid of a freshly painted lossless update
// into the dictionary, copying each tile's pixels (the dictionary owns
// its entries; v.img changes underneath). The lock is held.
func (p *Participant) learnTiles(img *image.RGBA) {
	codec.ForEachTile(img.Bounds(), p.cfg.TileSize, func(tr image.Rectangle) {
		tile := image.NewRGBA(image.Rect(0, 0, tr.Dx(), tr.Dy()))
		draw.Draw(tile, tile.Bounds(), img, tr.Min, draw.Src)
		p.tiles.Learn(codec.TileKeyFor(img, tr), tile)
	})
}

// applyTileRef repaints a region from dictionary tiles. All-or-nothing:
// every referenced tile is resolved before any pixel is painted, and one
// missing tile fails the whole message — the caller latches a refresh
// request, so a desynchronized dictionary degrades to a refresh, never
// to a partial or stale paint. The lock is held.
func (p *Participant) applyTileRef(m *remoting.TileReference) error {
	v, ok := p.views[m.WindowID]
	if !ok {
		return fmt.Errorf("participant: tile reference for unknown window %d", m.WindowID)
	}
	ts := int(m.TileSize)
	if ts != p.cfg.TileSize {
		p.tileDesyncs++
		return fmt.Errorf("participant: tile reference size %d, negotiated %d", ts, p.cfg.TileSize)
	}
	cols, rows := m.GridDims()
	px := make([]*image.RGBA, 0, len(m.Tiles))
	for row := 0; row < rows; row++ {
		for col := 0; col < cols; col++ {
			h := m.Tiles[row*cols+col]
			key := codec.TileKey{
				W:  min(ts, int(m.Width)-col*ts),
				H:  min(ts, int(m.Height)-row*ts),
				H1: h.H1,
				H2: h.H2,
			}
			img, ok := p.tiles.Lookup(key)
			if !ok {
				p.tileDesyncs++
				return fmt.Errorf("participant: tile reference names unknown tile %d of %d", row*cols+col, len(m.Tiles))
			}
			px = append(px, img)
		}
	}
	lx := int(m.Left) - v.rec.Bounds.Left
	ly := int(m.Top) - v.rec.Bounds.Top
	for row := 0; row < rows; row++ {
		for col := 0; col < cols; col++ {
			t := px[row*cols+col]
			b := t.Bounds()
			dst := image.Rect(lx+col*ts, ly+row*ts, lx+col*ts+b.Dx(), ly+row*ts+b.Dy())
			draw.Draw(v.img, dst, t, b.Min, draw.Src)
		}
	}
	return nil
}

func (p *Participant) applyMove(m *remoting.MoveRectangle) error {
	v, ok := p.views[m.WindowID]
	if !ok {
		return fmt.Errorf("participant: move for unknown window %d", m.WindowID)
	}
	src := m.Src().Translate(-v.rec.Bounds.Left, -v.rec.Bounds.Top)
	dst := m.Dst().Translate(-v.rec.Bounds.Left, -v.rec.Bounds.Top)
	win := region.XYWH(0, 0, v.rec.Bounds.Width, v.rec.Bounds.Height)
	if !win.ContainsRect(src) || !win.ContainsRect(dst) {
		return fmt.Errorf("participant: move %v->%v outside window %d", src, dst, m.WindowID)
	}
	display.MoveRect(v.img, src, dst)
	return nil
}

func (p *Participant) applyPointer(m *remoting.MousePointerInfo) error {
	p.pointer.x, p.pointer.y = int(m.Left), int(m.Top)
	p.pointer.has = true
	if len(m.Image) > 0 {
		c, err := p.cfg.Registry.Lookup(m.ContentPT)
		if err != nil {
			return err
		}
		// Pointer sprites are small; cap well below screen size.
		img, err := codec.SafeDecode(c, m.Image, 1<<16)
		if err != nil {
			return err
		}
		p.pointer.sprite = img
	}
	return nil
}

// OnExtension registers a handler for an extension remoting message
// type (outside Table 1). Handlers receive the common header and the
// message body. Passing nil removes the handler.
func (p *Participant) OnExtension(t core.MessageType, h func(hdr core.Header, body []byte)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.extHandlers == nil {
		p.extHandlers = make(map[core.MessageType]func(core.Header, []byte))
	}
	if h == nil {
		delete(p.extHandlers, t)
		return
	}
	p.extHandlers[t] = h
}

// IgnoredExtensions counts extension messages skipped for lack of a
// handler.
func (p *Participant) IgnoredExtensions() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ignoredExt
}

// TileDesyncs counts TileReference messages that could not be applied
// because this side's dictionary was missing a referenced tile (or the
// tile size disagreed). Each one latched a refresh request.
func (p *Participant) TileDesyncs() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tileDesyncs
}

// TileDictStats returns the tile dictionary's counters (zero value
// without Config.TileStore).
func (p *Participant) TileDictStats() codec.TileDictStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.tiles == nil {
		return codec.TileDictStats{}
	}
	return p.tiles.Stats()
}

// RaiseLocal moves a window to the top of the participant's local
// stacking order without informing the AH — Section 4.1: "A participant
// MAY allow changing the z-order (i.e., stacking order) of windows
// locally, without changing the z-order in the AH." The next
// WindowManagerInfo reasserts the AH's order.
func (p *Participant) RaiseLocal(id uint16) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, wid := range p.order {
		if wid == id {
			p.order = append(append(p.order[:i], p.order[i+1:]...), id)
			return true
		}
	}
	return false
}

// Windows returns the current window IDs bottom-to-top.
func (p *Participant) Windows() []uint16 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]uint16, len(p.order))
	copy(out, p.order)
	return out
}

// WindowImage returns a copy of the window's local image, or nil.
func (p *Participant) WindowImage(id uint16) *image.RGBA {
	p.mu.Lock()
	defer p.mu.Unlock()
	v, ok := p.views[id]
	if !ok {
		return nil
	}
	out := image.NewRGBA(v.img.Bounds())
	copy(out.Pix, v.img.Pix)
	return out
}

// WindowPlacement returns where the layout placed the window locally.
func (p *Participant) WindowPlacement(id uint16) (region.Rect, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	v, ok := p.views[id]
	if !ok {
		return region.Rect{}, false
	}
	return v.placed, true
}

// Render composites the participant screen: windows in z-order at their
// layout placements, then the pointer.
func (p *Participant) Render() *image.RGBA {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := image.NewRGBA(image.Rect(0, 0, p.cfg.ScreenWidth, p.cfg.ScreenHeight))
	draw.Draw(out, out.Bounds(), &image.Uniform{color.RGBA{0x20, 0x24, 0x28, 0xFF}}, image.Point{}, draw.Src)
	for _, id := range p.order {
		v, ok := p.views[id]
		if !ok {
			continue
		}
		dst := image.Rect(v.placed.Left, v.placed.Top, v.placed.Right(), v.placed.Bottom())
		draw.Draw(out, dst, v.img, image.Point{}, draw.Src)
	}
	if p.pointer.has && p.pointer.sprite != nil {
		x, y := p.localPointer()
		b := p.pointer.sprite.Bounds()
		draw.Draw(out, image.Rect(x, y, x+b.Dx(), y+b.Dy()), p.pointer.sprite, b.Min, draw.Over)
	}
	return out
}

// localPointer maps the AH-coordinate pointer into local coordinates:
// when it lies inside a shared window, it follows that window's layout
// placement; otherwise it is drawn at the raw coordinates. The lock is
// held.
func (p *Participant) localPointer() (int, int) {
	for i := len(p.order) - 1; i >= 0; i-- {
		v, ok := p.views[p.order[i]]
		if !ok {
			continue
		}
		if v.rec.Bounds.Contains(p.pointer.x, p.pointer.y) {
			return p.pointer.x - v.rec.Bounds.Left + v.placed.Left,
				p.pointer.y - v.rec.Bounds.Top + v.placed.Top
		}
	}
	return p.pointer.x, p.pointer.y
}

// Pointer returns the last pointer position in AH coordinates.
func (p *Participant) Pointer() (x, y int, known bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pointer.x, p.pointer.y, p.pointer.has
}

// Stats exposes the receiver's packet statistics.
func (p *Participant) Stats() (received, duplicates, reordered uint64, droppedMessages uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	r, d, o := p.recv.Stats()
	return r, d, o, p.re.Dropped()
}
