package participant

import (
	"image"
	"testing"

	"appshare/internal/codec"
	"appshare/internal/core"
	"appshare/internal/region"
	"appshare/internal/remoting"
)

// tileHashOf returns the wire hash of a w×h solid-color tile as the
// host would compute it.
func tileHashOf(img *image.RGBA, r image.Rectangle) remoting.TileHash {
	k := codec.TileKeyFor(img, r)
	return remoting.TileHash{H1: k.H1, H2: k.H2}
}

// tileTestRect is a 64×64 region at the window's top-left: a 2×2 grid
// of default-size tiles. Window 1's bounds start at (220, 150).
var tileTestRect = region.XYWH(220, 150, 64, 64)

// newTileParticipant returns a negotiated participant that has painted
// (and therefore learned) a solid red 64×64 update, then painted it
// over with blue — so a reference back to the red tiles is a genuine
// revisit, not a repaint of what is already on screen.
func newTileParticipant(t *testing.T) (*Participant, *sender, remoting.TileHash) {
	t.Helper()
	p := New(Config{TileStore: true})
	s := newSender()
	feed(t, p, s.packets(t, wmInfo()))
	feed(t, p, s.packets(t, fillUpdate(t, 1, tileTestRect, red)))
	feed(t, p, s.packets(t, fillUpdate(t, 1, tileTestRect, blue)))
	redTile := tileHashOf(imageFill(32, 32, red), image.Rect(0, 0, 32, 32))
	return p, s, redTile
}

func redRef(h remoting.TileHash) *remoting.TileReference {
	return &remoting.TileReference{
		WindowID: 1,
		Left:     uint32(tileTestRect.Left), Top: uint32(tileTestRect.Top),
		Width: 64, Height: 64, TileSize: 32,
		Tiles: []remoting.TileHash{h, h, h, h},
	}
}

func TestTileLearnAndApplyReference(t *testing.T) {
	p, s, redTile := newTileParticipant(t)
	if st := p.TileDictStats(); st.Inserts == 0 {
		t.Fatal("lossless updates did not teach the dictionary")
	}
	img := p.WindowImage(1)
	if img.RGBAAt(10, 10) != blue {
		t.Fatalf("precondition: window shows %v, want blue", img.RGBAAt(10, 10))
	}

	feed(t, p, s.packets(t, redRef(redTile)))

	if got := p.Applied(core.TypeTileReference); got != 1 {
		t.Fatalf("applied tile references = %d, want 1", got)
	}
	img = p.WindowImage(1)
	for _, xy := range [][2]int{{0, 0}, {31, 31}, {32, 32}, {63, 63}} {
		if got := img.RGBAAt(xy[0], xy[1]); got != red {
			t.Fatalf("pixel (%d,%d) = %v, want red repainted from dictionary", xy[0], xy[1], got)
		}
	}
	if p.TileDesyncs() != 0 || p.NeedsRefresh() {
		t.Fatalf("desyncs = %d, needsRefresh = %v after clean apply", p.TileDesyncs(), p.NeedsRefresh())
	}
}

// TestTileReferenceUnknownTileAllOrNothing: one unresolvable hash
// poisons the whole message — no pixel may be painted from the tiles
// that DID resolve, and the participant must latch a refresh.
func TestTileReferenceUnknownTileAllOrNothing(t *testing.T) {
	p, s, redTile := newTileParticipant(t)
	ref := redRef(redTile)
	ref.Tiles[3] = remoting.TileHash{H1: 0xDEAD, H2: 0xBEEF} // never learned
	feed(t, p, s.packets(t, ref))

	if got := p.TileDesyncs(); got != 1 {
		t.Fatalf("desyncs = %d, want 1", got)
	}
	if !p.NeedsRefresh() {
		t.Fatal("unknown tile did not latch a refresh")
	}
	// The three known tiles were NOT painted: the window is still blue
	// everywhere in the referenced region.
	img := p.WindowImage(1)
	for _, xy := range [][2]int{{0, 0}, {40, 10}, {10, 40}, {63, 63}} {
		if got := img.RGBAAt(xy[0], xy[1]); got != blue {
			t.Fatalf("pixel (%d,%d) = %v: partial paint from a rejected reference", xy[0], xy[1], got)
		}
	}
}

func TestTileReferenceSizeMismatchDesyncs(t *testing.T) {
	p, s, redTile := newTileParticipant(t)
	ref := redRef(redTile)
	ref.TileSize = 16 // negotiated 32
	ref.Tiles = make([]remoting.TileHash, 16)
	for i := range ref.Tiles {
		ref.Tiles[i] = redTile
	}
	feed(t, p, s.packets(t, ref))
	if got := p.TileDesyncs(); got != 1 {
		t.Fatalf("desyncs = %d, want 1", got)
	}
	if img := p.WindowImage(1); img.RGBAAt(0, 0) != blue {
		t.Fatal("mismatched tile size painted pixels")
	}
}

// TestTileReferenceIgnoredWithoutNegotiation: without Config.TileStore
// the type-16 message is just an unknown extension (Section 5.1.2):
// skipped, counted, no desync, no paint.
func TestTileReferenceIgnoredWithoutNegotiation(t *testing.T) {
	p := New(Config{})
	s := newSender()
	feed(t, p, s.packets(t, wmInfo()))
	feed(t, p, s.packets(t, fillUpdate(t, 1, tileTestRect, blue)))
	redTile := tileHashOf(imageFill(32, 32, red), image.Rect(0, 0, 32, 32))

	feed(t, p, s.packets(t, redRef(redTile)))

	if got := p.IgnoredExtensions(); got != 1 {
		t.Fatalf("ignored extensions = %d, want 1", got)
	}
	if p.Applied(core.TypeTileReference) != 0 || p.TileDesyncs() != 0 || p.NeedsRefresh() {
		t.Fatal("un-negotiated participant reacted to a tile reference")
	}
	if img := p.WindowImage(1); img.RGBAAt(0, 0) != blue {
		t.Fatal("un-negotiated participant painted from a tile reference")
	}
}

// TestTileLearnOnlyFromLossless: a lossy (JPEG) update must not teach
// the dictionary — the decoded pixels differ from what the host hashed,
// and a poisoned entry would satisfy a reference with wrong pixels.
func TestTileLearnOnlyFromLossless(t *testing.T) {
	p := New(Config{TileStore: true})
	s := newSender()
	feed(t, p, s.packets(t, wmInfo()))

	img := imageFill(64, 64, red)
	content, err := (codec.JPEG{Quality: 80}).Encode(img)
	if err != nil {
		t.Fatal(err)
	}
	feed(t, p, s.packets(t, &remoting.RegionUpdate{
		WindowID:  1,
		ContentPT: codec.PayloadTypeJPEG,
		Left:      uint32(tileTestRect.Left),
		Top:       uint32(tileTestRect.Top),
		Content:   content,
	}))
	if st := p.TileDictStats(); st.Inserts != 0 {
		t.Fatalf("JPEG update taught %d tiles", st.Inserts)
	}
}
