// Package windows models the window-manager state shared between the AH
// and participants: building WindowManagerInfo messages from the virtual
// desktop, deciding when window state changed (draft Section 5.2.1:
// "Each shared window resize and relocation ... triggers a
// WindowManagerInfo message"), validating incoming HIP events (Section
// 4.1: "The AH MUST only accept legitimate HIP events by checking whether
// the requested coordinates are inside the shared windows"), and the
// participant-side layout policies of Figures 3–5.
package windows

import (
	"errors"
	"fmt"

	"appshare/internal/display"
	"appshare/internal/region"
	"appshare/internal/remoting"
)

// SnapshotRecords builds the ordered window records (bottom-to-top) for
// the desktop's shared windows, as a WindowManagerInfo would carry them.
func SnapshotRecords(d *display.Desktop) []remoting.WindowRecord {
	shared := d.SharedWindows()
	out := make([]remoting.WindowRecord, 0, len(shared))
	for _, w := range shared {
		out = append(out, remoting.WindowRecord{
			WindowID: w.ID(),
			GroupID:  w.Group(),
			Bounds:   w.Bounds(),
		})
	}
	return out
}

// Tracker watches a desktop's window-manager state and produces a
// WindowManagerInfo message whenever it changes (including the initial
// state). The AH holds one Tracker per sharing session.
type Tracker struct {
	lastGen  uint64
	lastSent []remoting.WindowRecord
	started  bool
}

// NewTracker returns an empty tracker; the first Poll always reports a
// change.
func NewTracker() *Tracker { return &Tracker{} }

// Poll returns a WindowManagerInfo message if the window state changed
// since the last Poll, or nil.
func (t *Tracker) Poll(d *display.Desktop) *remoting.WindowManagerInfo {
	gen := d.Generation()
	if t.started && gen == t.lastGen {
		return nil
	}
	recs := SnapshotRecords(d)
	if t.started && recordsEqual(recs, t.lastSent) {
		// Generation moved (e.g. focus-only change) but the transmitted
		// state is identical; suppress the redundant message.
		t.lastGen = gen
		return nil
	}
	t.started = true
	t.lastGen = gen
	t.lastSent = recs
	return &remoting.WindowManagerInfo{Windows: recs}
}

// Current returns the last transmitted state (for PLI full refreshes).
func (t *Tracker) Current(d *display.Desktop) *remoting.WindowManagerInfo {
	recs := SnapshotRecords(d)
	t.started = true
	t.lastGen = d.Generation()
	t.lastSent = recs
	return &remoting.WindowManagerInfo{Windows: recs}
}

func recordsEqual(a, b []remoting.WindowRecord) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Validation errors for incoming HIP events.
var (
	ErrUnknownWindow  = errors.New("windows: event names an unshared or unknown window")
	ErrOutsideWindow  = errors.New("windows: event coordinates outside the shared window")
	ErrEventForbidden = errors.New("windows: event type not permitted by floor state")
)

// ValidateMouseEvent checks a mouse HIP event per Section 4.1: the
// referenced window must be in the shared set and the absolute
// coordinates must fall inside it.
func ValidateMouseEvent(shared []remoting.WindowRecord, windowID uint16, x, y uint32) error {
	for _, r := range shared {
		if r.WindowID != windowID {
			continue
		}
		if x > uint32(1<<31-1) || y > uint32(1<<31-1) {
			return fmt.Errorf("%w: (%d,%d)", ErrOutsideWindow, x, y)
		}
		if !r.Bounds.Contains(int(x), int(y)) {
			return fmt.Errorf("%w: (%d,%d) not in %v", ErrOutsideWindow, x, y, r.Bounds)
		}
		return nil
	}
	return fmt.Errorf("%w: id %d", ErrUnknownWindow, windowID)
}

// ValidateKeyEvent checks a keyboard HIP event: the focus window must be
// shared.
func ValidateKeyEvent(shared []remoting.WindowRecord, windowID uint16) error {
	for _, r := range shared {
		if r.WindowID == windowID {
			return nil
		}
	}
	return fmt.Errorf("%w: id %d", ErrUnknownWindow, windowID)
}

// Layout places shared windows on a participant's screen. The draft's
// coordinate examples show three policies: original coordinates
// (Figure 3), uniformly shifted (Figure 4), and compacted to fit a small
// screen (Figure 5). All policies preserve the relative z-order.
type Layout interface {
	// Place maps a window's AH-coordinate bounds to participant screen
	// coordinates. Implementations must return a rectangle of the same
	// size (participant-side scaling is out of the draft's scope).
	Place(rec remoting.WindowRecord) region.Rect
}

// OriginalLayout displays windows at their AH coordinates (Figure 3,
// participant 1).
type OriginalLayout struct{}

// Place implements Layout.
func (OriginalLayout) Place(rec remoting.WindowRecord) region.Rect { return rec.Bounds }

// ShiftLayout displays all windows shifted by a constant offset,
// preserving inter-window relations (Figure 4, participant 2 shifts 220
// left and 150 up).
type ShiftLayout struct {
	DX, DY int
}

// Place implements Layout.
func (l ShiftLayout) Place(rec remoting.WindowRecord) region.Rect {
	return rec.Bounds.Translate(l.DX, l.DY)
}

// AutoShiftLayout shifts the whole window set so its bounding box lands
// at the origin — what Figure 4's participant effectively does.
type AutoShiftLayout struct {
	bounds region.Rect
	init   bool
}

// Observe feeds the layout the full window set before placement; the
// first observation freezes the shift so windows do not jump when the
// set later changes.
func (l *AutoShiftLayout) Observe(recs []remoting.WindowRecord) {
	if l.init {
		return
	}
	for _, r := range recs {
		l.bounds = l.bounds.Union(r.Bounds)
	}
	if !l.bounds.Empty() {
		l.init = true
	}
}

// Place implements Layout.
func (l *AutoShiftLayout) Place(rec remoting.WindowRecord) region.Rect {
	return rec.Bounds.Translate(-l.bounds.Left, -l.bounds.Top)
}

// CompactLayout repositions each window independently to fit a small
// participant screen (Figure 5, participant 3 on 640x480): windows are
// packed toward the origin in z-order while keeping their sizes, and may
// end up in completely different relative positions.
type CompactLayout struct {
	Screen region.Rect
	placed map[uint16]region.Rect
}

// Place implements Layout. Placement is sticky per WindowID so updates
// keep landing on the same spot.
func (l *CompactLayout) Place(rec remoting.WindowRecord) region.Rect {
	if l.placed == nil {
		l.placed = make(map[uint16]region.Rect)
	}
	if r, ok := l.placed[rec.WindowID]; ok && r.Width == rec.Bounds.Width && r.Height == rec.Bounds.Height {
		return r
	}
	// Greedy shelf packing: scan rows, place at the first spot that does
	// not overlap an already placed window, clipping to the screen if the
	// window is larger than it.
	w, h := rec.Bounds.Width, rec.Bounds.Height
	step := 16
	best := region.XYWH(l.Screen.Left, l.Screen.Top, w, h)
	for y := l.Screen.Top; y+1 <= l.Screen.Bottom(); y += step {
		for x := l.Screen.Left; x+1 <= l.Screen.Right(); x += step {
			cand := region.XYWH(x, y, w, h)
			if !l.Screen.ContainsRect(cand) {
				continue
			}
			if !l.overlapsPlaced(cand) {
				l.placed[rec.WindowID] = cand
				return cand
			}
		}
	}
	// No free spot: overlap at origin (participants may stack windows).
	l.placed[rec.WindowID] = best
	return best
}

func (l *CompactLayout) overlapsPlaced(r region.Rect) bool {
	for _, p := range l.placed {
		if p.Overlaps(r) {
			return true
		}
	}
	return false
}

// Forget drops the sticky placement of a closed window.
func (l *CompactLayout) Forget(windowID uint16) {
	delete(l.placed, windowID)
}
