package windows

import (
	"errors"
	"testing"

	"appshare/internal/display"
	"appshare/internal/region"
	"appshare/internal/remoting"
)

// figure2Records returns the Figure 2 window set as protocol records.
func figure2Records() []remoting.WindowRecord {
	return []remoting.WindowRecord{
		{WindowID: 1, GroupID: 1, Bounds: region.XYWH(220, 150, 350, 450)}, // A
		{WindowID: 2, GroupID: 2, Bounds: region.XYWH(850, 320, 160, 150)}, // C
		{WindowID: 3, GroupID: 1, Bounds: region.XYWH(450, 400, 350, 300)}, // B
	}
}

func TestSnapshotRecordsOrderAndSharing(t *testing.T) {
	d := display.NewDesktop(1280, 1024)
	d.CreateWindow(1, region.XYWH(220, 150, 350, 450))
	d.CreateWindow(2, region.XYWH(850, 320, 160, 150))
	d.CreateWindow(1, region.XYWH(450, 400, 350, 300))
	recs := SnapshotRecords(d)
	if len(recs) != 3 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0].WindowID != 1 || recs[2].WindowID != 3 {
		t.Fatal("z-order not preserved")
	}
	// Unshare window 2: it must vanish from the records.
	if err := d.SetShared(2, false); err != nil {
		t.Fatal(err)
	}
	recs = SnapshotRecords(d)
	if len(recs) != 2 {
		t.Fatalf("records after unshare = %d", len(recs))
	}
	for _, r := range recs {
		if r.WindowID == 2 {
			t.Fatal("unshared window still in records")
		}
	}
}

func TestTrackerEmitsOnChange(t *testing.T) {
	d := display.NewDesktop(1280, 1024)
	d.CreateWindow(1, region.XYWH(220, 150, 350, 450))
	tr := NewTracker()

	// First poll always reports.
	if msg := tr.Poll(d); msg == nil || len(msg.Windows) != 1 {
		t.Fatalf("first poll = %+v", msg)
	}
	// No change: no message.
	if msg := tr.Poll(d); msg != nil {
		t.Fatalf("unchanged poll = %+v", msg)
	}
	// Relocation triggers a message (Section 5.2.1).
	if err := d.MoveWindow(1, 0, 0); err != nil {
		t.Fatal(err)
	}
	msg := tr.Poll(d)
	if msg == nil || msg.Windows[0].Bounds.Left != 0 {
		t.Fatalf("move poll = %+v", msg)
	}
	// Resize triggers a message.
	if err := d.ResizeWindow(1, 100, 100); err != nil {
		t.Fatal(err)
	}
	if msg := tr.Poll(d); msg == nil || msg.Windows[0].Bounds.Width != 100 {
		t.Fatalf("resize poll = %+v", msg)
	}
	// Z-order change triggers a message.
	d.CreateWindow(1, region.XYWH(10, 10, 50, 50))
	tr.Poll(d)
	if err := d.RaiseWindow(1); err != nil {
		t.Fatal(err)
	}
	msg = tr.Poll(d)
	if msg == nil || msg.Windows[len(msg.Windows)-1].WindowID != 1 {
		t.Fatalf("raise poll = %+v", msg)
	}
}

func TestTrackerCurrentForPLI(t *testing.T) {
	d := display.NewDesktop(640, 480)
	d.CreateWindow(0, region.XYWH(0, 0, 100, 100))
	tr := NewTracker()
	msg := tr.Current(d)
	if msg == nil || len(msg.Windows) != 1 {
		t.Fatalf("Current = %+v", msg)
	}
	// Current also resets the tracker baseline.
	if msg := tr.Poll(d); msg != nil {
		t.Fatalf("poll after Current = %+v", msg)
	}
}

// TestHIPLegitimacy covers the Section 4.1 MUST (experiment E18).
func TestHIPLegitimacy(t *testing.T) {
	recs := figure2Records()

	// Inside window A.
	if err := ValidateMouseEvent(recs, 1, 230, 160); err != nil {
		t.Errorf("legitimate event rejected: %v", err)
	}
	// Exact corner (inclusive top-left).
	if err := ValidateMouseEvent(recs, 1, 220, 150); err != nil {
		t.Errorf("corner event rejected: %v", err)
	}
	// Outside window A (in window C's area).
	if err := ValidateMouseEvent(recs, 1, 860, 330); !errors.Is(err, ErrOutsideWindow) {
		t.Errorf("outside event err = %v, want ErrOutsideWindow", err)
	}
	// Exclusive bottom-right edge.
	if err := ValidateMouseEvent(recs, 1, 570, 600); !errors.Is(err, ErrOutsideWindow) {
		t.Errorf("edge event err = %v, want ErrOutsideWindow", err)
	}
	// Unknown window.
	if err := ValidateMouseEvent(recs, 42, 230, 160); !errors.Is(err, ErrUnknownWindow) {
		t.Errorf("unknown window err = %v, want ErrUnknownWindow", err)
	}
	// Absurd coordinates (would overflow int conversion).
	if err := ValidateMouseEvent(recs, 1, 1<<31, 160); !errors.Is(err, ErrOutsideWindow) {
		t.Errorf("overflow coords err = %v, want ErrOutsideWindow", err)
	}

	// Key events only need a shared focus window.
	if err := ValidateKeyEvent(recs, 3); err != nil {
		t.Errorf("key event rejected: %v", err)
	}
	if err := ValidateKeyEvent(recs, 42); !errors.Is(err, ErrUnknownWindow) {
		t.Errorf("key unknown window err = %v", err)
	}
}

// TestLayoutsFigures3to5 reproduces the three participant layouts of
// Figures 3, 4 and 5 (experiment E06).
func TestLayoutsFigures3to5(t *testing.T) {
	recs := figure2Records()

	// Figure 3: participant 1 keeps original coordinates.
	var orig OriginalLayout
	for _, r := range recs {
		if got := orig.Place(r); got != r.Bounds {
			t.Errorf("original layout moved %v to %v", r.Bounds, got)
		}
	}

	// Figure 4: participant 2 shifts everything 220 left and 150 up.
	shift := ShiftLayout{DX: -220, DY: -150}
	wantA := region.XYWH(0, 0, 350, 450)
	wantC := region.XYWH(630, 170, 160, 150)
	wantB := region.XYWH(230, 250, 350, 300)
	if got := shift.Place(recs[0]); got != wantA {
		t.Errorf("shifted A = %v, want %v", got, wantA)
	}
	if got := shift.Place(recs[1]); got != wantC {
		t.Errorf("shifted C = %v, want %v", got, wantC)
	}
	if got := shift.Place(recs[2]); got != wantB {
		t.Errorf("shifted B = %v, want %v", got, wantB)
	}
	// Relative positions preserved: pairwise deltas unchanged.
	dAB := region.XYWH(recs[2].Bounds.Left-recs[0].Bounds.Left, recs[2].Bounds.Top-recs[0].Bounds.Top, 0, 0)
	gotAB := region.XYWH(wantB.Left-wantA.Left, wantB.Top-wantA.Top, 0, 0)
	if dAB != gotAB {
		t.Error("shift layout broke inter-window relations")
	}

	// AutoShiftLayout computes that same shift from the records.
	var auto AutoShiftLayout
	auto.Observe(recs)
	if got := auto.Place(recs[0]); got != wantA {
		t.Errorf("auto-shifted A = %v, want %v", got, wantA)
	}

	// Figure 5: participant 3 compacts onto a 640x480 screen. Windows
	// keep sizes, land inside the screen where possible, and must not
	// overlap when there is room.
	compact := &CompactLayout{Screen: region.XYWH(0, 0, 640, 480)}
	pA := compact.Place(recs[0]) // 350x450 fits
	pC := compact.Place(recs[1]) // 160x150 fits beside it
	if pA.Width != 350 || pA.Height != 450 || pC.Width != 160 || pC.Height != 150 {
		t.Fatal("compact layout changed window sizes")
	}
	screen := region.XYWH(0, 0, 640, 480)
	if !screen.ContainsRect(pA) || !screen.ContainsRect(pC) {
		t.Errorf("compact placements off screen: %v, %v", pA, pC)
	}
	if pA.Overlaps(pC) {
		t.Errorf("compact placements overlap: %v, %v", pA, pC)
	}
	// Sticky placement: same answer next time.
	if again := compact.Place(recs[0]); again != pA {
		t.Errorf("placement not sticky: %v then %v", pA, again)
	}
	// B (350x300) cannot fit beside A and C without overlap on 640x480;
	// it may overlap but must stay within the screen clip when placed at
	// origin.
	pB := compact.Place(recs[2])
	if pB.Width != 350 || pB.Height != 300 {
		t.Fatal("compact changed B's size")
	}
	compact.Forget(recs[2].WindowID)
	if again := compact.Place(recs[2]); again != pB {
		// After Forget, placement may differ; only require same size.
		if again.Width != 350 || again.Height != 300 {
			t.Error("replaced B has wrong size")
		}
	}
}

func TestCompactLayoutTooSmallScreen(t *testing.T) {
	compact := &CompactLayout{Screen: region.XYWH(0, 0, 100, 100)}
	rec := remoting.WindowRecord{WindowID: 1, Bounds: region.XYWH(500, 500, 300, 300)}
	p := compact.Place(rec)
	if p.Left != 0 || p.Top != 0 {
		t.Errorf("oversized window should anchor at origin, got %v", p)
	}
}
