package netsim

import (
	"sync"
	"time"
)

// vclock is the simulation's virtual clock. The runner goroutine is the
// only writer; it freezes the clock at each step of the tick loop so
// every component the host consults (Config.Now, the RatedWriter stall
// detector, the Shapers' token buckets) observes the same instant no
// matter how long the real computation takes. Reads come from host-side
// pump goroutines too, hence the mutex.
//
// Advancement is monotonic: set ignores instants earlier than the
// current one, so processing a batch of same-time events cannot move
// time backwards between them.
type vclock struct {
	mu sync.Mutex
	t  time.Time
}

func newVClock(start time.Time) *vclock { return &vclock{t: start} }

// Now returns the current virtual instant (Config.Now-compatible).
func (c *vclock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// set advances the clock to t; earlier instants are ignored.
func (c *vclock) set(t time.Time) {
	c.mu.Lock()
	if t.After(c.t) {
		c.t = t
	}
	c.mu.Unlock()
}
