package netsim

import (
	"sync"

	"appshare/internal/transport"
)

// streamConn is the io.ReadWriteCloser handed to Host.AttachStream for a
// simulated TCP viewer. It models the network path with a byte budget
// instead of a clock: Write consumes budget and blocks at zero (the
// peer's receive window is full), and the runner grants one tick's worth
// of budget per tick. Because blocking is budget-driven, the settle loop
// has stable terminal states — either everything the host framed has
// been accepted, or the writer is parked on an empty budget — and the
// whole TCP pipeline stays deterministic without real-time pacing
// (AttachStream is given rate 0, so the RatedWriter never sleeps).
//
// Read blocks until Close: netsim viewers never send framed feedback
// in-band (feedback is injected through Host.HandleFeedback on the
// virtual clock), so the host's pump goroutine just parks here.
type streamConn struct {
	mu   sync.Mutex
	cond *sync.Cond
	// budget is the bytes the path will still accept; negative means
	// unlimited.
	budget int64
	// out accumulates accepted bytes until the runner consumes them.
	out []byte
	// totalIn is the cumulative bytes ever accepted.
	totalIn int64
	// blocked counts writers currently parked on an empty budget.
	blocked int
	closed  bool
	done    chan struct{}
}

func newStreamConn(limited bool) *streamConn {
	c := &streamConn{done: make(chan struct{})}
	c.cond = sync.NewCond(&c.mu)
	if !limited {
		c.budget = -1
	}
	return c
}

// Write implements io.Writer: it accepts bytes up to the available
// budget and blocks for more budget when it runs out.
func (c *streamConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := len(p)
	for len(p) > 0 {
		if c.closed {
			return total - len(p), transport.ErrClosed
		}
		if c.budget < 0 {
			c.out = append(c.out, p...)
			c.totalIn += int64(len(p))
			p = nil
			break
		}
		if c.budget == 0 {
			c.blocked++
			c.cond.Wait()
			c.blocked--
			continue
		}
		n := len(p)
		if int64(n) > c.budget {
			n = int(c.budget)
		}
		c.out = append(c.out, p[:n]...)
		c.totalIn += int64(n)
		c.budget -= int64(n)
		p = p[n:]
	}
	return total, nil
}

// Read implements io.Reader: it blocks until Close, then reports EOF.
func (c *streamConn) Read(p []byte) (int, error) {
	<-c.done
	return 0, transport.ErrClosed
}

// Close implements io.Closer, waking any blocked writer with an error.
func (c *streamConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.closed {
		c.closed = true
		close(c.done)
		c.cond.Broadcast()
	}
	return nil
}

// grant adds one tick's byte budget (no-op on unlimited conns) and wakes
// blocked writers.
func (c *streamConn) grant(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.budget >= 0 && n > 0 {
		c.budget += int64(n)
		c.cond.Broadcast()
	}
}

// expire zeroes any budget left over from this tick (no-op on unlimited
// or already-empty conns). Budget-schedule viewers call it after the
// settle loop so a generous phase's surplus cannot leak into a tight
// phase: the invariant that at every grant/sweep point either the send
// queue is empty or the budget is zero — what makes the host's backlog
// samples deterministic — survives a mid-run budget downgrade.
func (c *streamConn) expire() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.budget > 0 {
		c.budget = 0
	}
}

// setUnlimited lifts the budget gate permanently (quiesce heals the
// path) and wakes blocked writers.
func (c *streamConn) setUnlimited() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.budget = -1
	c.cond.Broadcast()
}

// takeOut removes and returns the accepted-but-unconsumed bytes.
func (c *streamConn) takeOut() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.out
	c.out = nil
	return out
}

// state snapshots the settle-relevant fields.
func (c *streamConn) state() (totalIn int64, blocked int, budget int64, closed bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.totalIn, c.blocked, c.budget, c.closed
}
