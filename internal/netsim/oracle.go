package netsim

import (
	"bytes"
	"fmt"
	"image"
	"strings"

	"appshare/internal/rtp"
)

// The end-of-run oracles. Each one is a machine-checked session
// invariant: not "did the run finish", but "did the protocol keep its
// promises under this link". They run before teardown so live remotes
// still carry their counter state.

// expectedEvicted returns the set of viewers the scenario declares
// doomed.
func (r *runner) expectedEvicted() map[string]bool {
	out := make(map[string]bool, len(r.sc.Expect.Evicted))
	for _, n := range r.sc.Expect.Evicted {
		out[n] = true
	}
	return out
}

// convergenceEligible reports whether a viewer must end byte-identical
// to the host: joined, never silenced, stays to the end, and neither
// evicted nor expected to be.
func (r *runner) convergenceEligible(v *viewerState) bool {
	return v.joined && !v.evicted && !v.left && v.spec.LeaveAtTick == 0 &&
		v.spec.SilenceAfterTick == 0 && !r.expectedEvicted()[v.name]
}

// imagesEqual compares two RGBA images pixel-for-pixel.
func imagesEqual(a, b *image.RGBA) bool {
	if a == nil || b == nil {
		return false
	}
	if a.Bounds().Dx() != b.Bounds().Dx() || a.Bounds().Dy() != b.Bounds().Dy() {
		return false
	}
	w, h := a.Bounds().Dx(), a.Bounds().Dy()
	for y := 0; y < h; y++ {
		ra := a.Pix[(y-a.Bounds().Min.Y)*a.Stride+(0-a.Bounds().Min.X)*4:]
		rb := b.Pix[(y-b.Bounds().Min.Y)*b.Stride+(0-b.Bounds().Min.X)*4:]
		if !bytes.Equal(ra[:4*w], rb[:4*w]) {
			return false
		}
	}
	return true
}

// convergedViewer checks one viewer's terminal state against the
// lossless reference framebuffer.
func (r *runner) convergedViewer(v *viewerState) (bool, string) {
	if missing := v.p.MissingSequences(); len(missing) > 0 {
		return false, fmt.Sprintf("%d sequences still missing (first %d)", len(missing), missing[0])
	}
	if v.p.NeedsRefresh() {
		return false, "still waiting for a full refresh"
	}
	img := v.p.WindowImage(r.winID)
	if img == nil {
		return false, "no state for the shared window"
	}
	if !imagesEqual(img, r.win.Snapshot()) {
		return false, "framebuffer differs from the host window"
	}
	return true, ""
}

// allSettled is the quiesce early-exit condition: every
// convergence-eligible viewer is already byte-identical.
func (r *runner) allSettled() bool {
	for _, v := range r.viewers {
		if !r.convergenceEligible(v) {
			continue
		}
		if ok, _ := r.convergedViewer(v); !ok {
			return false
		}
	}
	return true
}

func (r *runner) oracleConvergence() OracleResult {
	var fails []string
	for _, v := range r.viewers {
		if !r.convergenceEligible(v) {
			continue
		}
		if ok, why := r.convergedViewer(v); !ok {
			fails = append(fails, fmt.Sprintf("%s: %s", v.name, why))
		}
	}
	return OracleResult{Name: "convergence", Passed: len(fails) == 0, Detail: strings.Join(fails, "; ")}
}

// analyzeTap audits one send-side packet log for RTP continuity: per
// SSRC, every packet either advances the sequence chain by exactly one
// with a non-decreasing timestamp (a fresh send) or is byte-identical to
// the already-logged packet of its sequence number (a retransmission).
// It returns the fresh-send count — which the counters oracle matches
// against the remote's SentPackets — and any violations.
func analyzeTap(label string, tap [][]byte) (fresh uint64, violations []string) {
	type chain struct {
		started bool
		lastSeq uint16
		lastTS  uint32
		bySeq   map[uint16][]byte
	}
	chains := map[uint32]*chain{}
	for i, pkt := range tap {
		var hdr rtp.Header
		if _, err := hdr.Unmarshal(pkt); err != nil {
			violations = append(violations, fmt.Sprintf("%s[%d]: not RTP: %v", label, i, err))
			continue
		}
		c := chains[hdr.SSRC]
		if c == nil {
			c = &chain{bySeq: map[uint16][]byte{}}
			chains[hdr.SSRC] = c
		}
		switch {
		case !c.started:
			c.started = true
			fresh++
			c.lastSeq, c.lastTS = hdr.SequenceNumber, hdr.Timestamp
			c.bySeq[hdr.SequenceNumber] = pkt
		case hdr.SequenceNumber == c.lastSeq+1: // natural uint16 wrap
			if int32(hdr.Timestamp-c.lastTS) < 0 {
				violations = append(violations, fmt.Sprintf("%s[%d]: seq %d timestamp went backwards (%d after %d)",
					label, i, hdr.SequenceNumber, hdr.Timestamp, c.lastTS))
			}
			fresh++
			c.lastSeq, c.lastTS = hdr.SequenceNumber, hdr.Timestamp
			c.bySeq[hdr.SequenceNumber] = pkt
		default:
			prev, ok := c.bySeq[hdr.SequenceNumber]
			if !ok {
				violations = append(violations, fmt.Sprintf("%s[%d]: seq jumped to %d after %d (neither fresh nor a logged retransmission)",
					label, i, hdr.SequenceNumber, c.lastSeq))
			} else if !bytes.Equal(prev, pkt) {
				violations = append(violations, fmt.Sprintf("%s[%d]: retransmission of seq %d differs from the original bytes",
					label, i, hdr.SequenceNumber))
			}
		}
	}
	return fresh, violations
}

// oracleContinuity audits every unicast tap plus the multicast group
// tap. It also returns the per-label fresh-send counts for the counters
// oracle.
func (r *runner) oracleContinuity() (OracleResult, map[string]uint64) {
	freshCounts := map[string]uint64{}
	var fails []string
	for _, v := range r.viewers {
		if v.kind == KindMulticast || len(v.tap) == 0 {
			continue
		}
		fresh, viol := analyzeTap(v.name, v.tap)
		freshCounts[v.name] = fresh
		fails = append(fails, viol...)
	}
	if r.bus != nil {
		fresh, viol := analyzeTap("group", r.groupTap)
		freshCounts["group"] = fresh
		fails = append(fails, viol...)
	}
	if len(fails) > 4 {
		fails = append(fails[:4], fmt.Sprintf("(+%d more)", len(fails)-4))
	}
	return OracleResult{Name: "rtp-continuity", Passed: len(fails) == 0, Detail: strings.Join(fails, "; ")}, freshCounts
}

// oracleReassembly demands every fragment train reassembled: a viewer
// reporting dropped messages lost data the repair machinery should have
// recovered (unless the scenario explicitly allows it).
func (r *runner) oracleReassembly() OracleResult {
	if r.sc.Expect.AllowDroppedMessages {
		return OracleResult{Name: "reassembly", Passed: true}
	}
	var fails []string
	for _, v := range r.viewers {
		if !r.convergenceEligible(v) {
			continue
		}
		if _, _, _, dropped := v.p.Stats(); dropped > 0 {
			fails = append(fails, fmt.Sprintf("%s: %d messages dropped in reassembly", v.name, dropped))
		}
	}
	return OracleResult{Name: "reassembly", Passed: len(fails) == 0, Detail: strings.Join(fails, "; ")}
}

// oracleEvictions asserts the eviction outcome matches the scenario's
// declaration exactly, and that nothing was shipped toward a remote
// after its eviction.
func (r *runner) oracleEvictions() OracleResult {
	var fails []string
	expected := r.expectedEvicted()
	got := make(map[string]bool, len(r.evictedNames))
	for _, n := range r.evictedNames {
		got[n] = true
	}
	for n := range expected {
		if !got[n] {
			fails = append(fails, fmt.Sprintf("%s: expected eviction never happened", n))
		}
	}
	for n := range got {
		if !expected[n] {
			fails = append(fails, fmt.Sprintf("%s: evicted but not expected to be", n))
		}
	}
	for _, v := range r.viewers {
		if !v.evicted {
			continue
		}
		if v.tapAfterEvict > 0 {
			fails = append(fails, fmt.Sprintf("%s: %d packets shipped after eviction", v.name, v.tapAfterEvict))
		}
		if v.conn != nil {
			if n := v.conn.sendsAfterClose(); n > 0 {
				fails = append(fails, fmt.Sprintf("%s: %d sends hit the closed conn", v.name, n))
			}
		}
	}
	return OracleResult{Name: "evictions", Passed: len(fails) == 0, Detail: strings.Join(fails, "; ")}
}

// oracleCounters cross-checks every layer's accounting against every
// other's: shaper decisions vs scheduled events vs deliveries, the
// stream drain identity (drained + discarded + queued == framed bytes
// accepted), fresh sends vs the host's SentPackets, multicast drains vs
// subscriber offers, and the eviction stats counter. A mismatch means a
// packet was silently created or destroyed somewhere between layers.
func (r *runner) oracleCounters(fresh map[string]uint64) OracleResult {
	var fails []string
	if n := r.events.Len(); n > 0 {
		fails = append(fails, fmt.Sprintf("%d events still queued at end of run", n))
	}
	for _, e := range r.tickErrs {
		fails = append(fails, "tick error: "+e)
	}
	for _, v := range r.viewers {
		if v.settleStuck {
			fails = append(fails, fmt.Sprintf("%s: TCP settle hit the wall-clock limit", v.name))
		}
		if v.left && v.conn != nil {
			if n := v.conn.sendsAfterClose(); n > 0 {
				fails = append(fails, fmt.Sprintf("%s: %d sends hit the conn after the clean detach", v.name, n))
			}
		}
		if v.heldDown != nil || v.heldUp != nil {
			fails = append(fails, fmt.Sprintf("%s: a datagram is still parked in a reorder slot", v.name))
		}
		switch v.kind {
		case KindUDP:
			if !v.joined {
				continue
			}
			st := v.down.Stats()
			if st.Dropped != v.dropsDown {
				fails = append(fails, fmt.Sprintf("%s: shaper dropped %d but %d drops were journaled", v.name, st.Dropped, v.dropsDown))
			}
			if uint64(len(v.tap)) != st.Offered+v.bypassDeliveries {
				fails = append(fails, fmt.Sprintf("%s: tap has %d packets but offered+bypass is %d",
					v.name, len(v.tap), st.Offered+v.bypassDeliveries))
			}
			if want := st.Offered - st.Dropped + st.Duplicated; v.shapedDeliveries != want {
				fails = append(fails, fmt.Sprintf("%s: scheduled %d shaped deliveries, want offered-dropped+duplicated = %d",
					v.name, v.shapedDeliveries, want))
			}
			if v.delivered != v.shapedDeliveries+v.bypassDeliveries {
				fails = append(fails, fmt.Sprintf("%s: delivered %d of %d scheduled datagrams",
					v.name, v.delivered, v.shapedDeliveries+v.bypassDeliveries))
			}
			var sent uint64
			if v.rv != nil {
				sent = v.rv.SentPackets()
			} else {
				sent = v.remote.Health().SentPackets
			}
			if got := fresh[v.name]; got != sent {
				fails = append(fails, fmt.Sprintf("%s: tap shows %d fresh sends but the sender counts SentPackets=%d",
					v.name, got, sent))
			}
		case KindTCP:
			if !v.joined {
				continue
			}
			hs := v.remote.Health()
			accepted := int64(hs.SentOctets) + 2*int64(hs.SentPackets) // RFC 4571: 2-byte length per frame
			if got := hs.DrainedBytes + hs.DiscardedBytes + int64(hs.QueuedBytes); got != accepted {
				fails = append(fails, fmt.Sprintf("%s: drained+discarded+queued = %d but SentOctets+2*SentPackets = %d",
					v.name, got, accepted))
			}
			if !v.evicted {
				if len(v.rxBuf) != 0 {
					fails = append(fails, fmt.Sprintf("%s: %d bytes of a partial frame left undrained", v.name, len(v.rxBuf)))
				}
				if got := fresh[v.name]; got != hs.SentPackets {
					fails = append(fails, fmt.Sprintf("%s: parsed %d fresh frames but the host counts SentPackets=%d",
						v.name, got, hs.SentPackets))
				}
			}
		case KindMulticast:
			if !v.joined {
				continue
			}
			s, d := v.sub.(subStatser).Stats()
			if s-d != v.mcDrained {
				fails = append(fails, fmt.Sprintf("%s: subscriber passed %d datagrams but %d were drained", v.name, s-d, v.mcDrained))
			}
		}
	}
	if r.group != nil {
		hs := r.group.Health()
		if got := fresh["group"]; got != hs.SentPackets {
			fails = append(fails, fmt.Sprintf("group: tap shows %d fresh sends but the host counts SentPackets=%d",
				got, hs.SentPackets))
		}
	}
	if got := r.coll.Get("HealthEvict").Messages; got != uint64(len(r.evictedNames)) {
		fails = append(fails, fmt.Sprintf("stats HealthEvict counted %d but %d evictions were observed", got, len(r.evictedNames)))
	}
	for i, c := range r.oldConns {
		if n := c.sendsAfterClose(); n > 0 {
			fails = append(fails, fmt.Sprintf("pre-migration conn %d: %d sends hit it after the failover close", i, n))
		}
	}
	if len(fails) > 6 {
		fails = append(fails[:6], fmt.Sprintf("(+%d more)", len(fails)-6))
	}
	return OracleResult{Name: "counters", Passed: len(fails) == 0, Detail: strings.Join(fails, "; ")}
}

// oracleTileSync audits the persistent tile store's coherence promise:
// a viewer may only be referred to tiles it can resolve. Any tile
// desync — an unresolvable TileReference that forced a refresh — fails
// the oracle unless the scenario provokes them on purpose
// (Expect.AllowTileDesyncs), and a tile-store scenario must actually
// have substituted at least Expect.MinTileRefs references, or the run
// proved nothing about the reference path. On non-tile scenarios both
// counts are necessarily zero and the oracle is a tautology.
func (r *runner) oracleTileSync() OracleResult {
	var fails []string
	var refs uint64
	for _, v := range r.viewers {
		if v.remote != nil && v.kind != KindMulticast {
			refs += v.remote.TileRefs()
		}
		if !v.joined {
			continue
		}
		if n := v.p.TileDesyncs(); n > 0 && !r.sc.Expect.AllowTileDesyncs {
			fails = append(fails, fmt.Sprintf("%s: %d unresolvable tile references on a scenario that allows none", v.name, n))
		}
	}
	if want := r.sc.Expect.MinTileRefs; refs < want {
		fails = append(fails, fmt.Sprintf("host substituted %d tile references, scenario requires >= %d", refs, want))
	}
	return OracleResult{Name: "tile-sync", Passed: len(fails) == 0, Detail: strings.Join(fails, "; ")}
}

// oracleRelayCascade audits the fan-out tree's per-level absorption
// contract: the origin served exactly the seed refresh plus level 0's
// cadence refills — no late join or PLI anywhere in the tree ever
// reached the origin's encode path — every capture landed in level 0's
// cache, each deeper level repeated the same containment one hop down,
// and the run actually exercised the absorption path.
func (r *runner) oracleRelayCascade() OracleResult {
	st0 := r.relays[0].Stats()
	served := r.host.ServedRefreshes()
	var fails []string
	// The seed request (AttachUpstream) plus each cadence refill is one
	// origin capture. A request latched by the very last tick is still
	// unserved when the run stops, so served may trail the request count
	// by the seed capture it spent. Deeper levels' seed requests merge
	// into the SAME origin latch (they escalate before the first
	// capture), so the bound is depth-independent.
	if served > st0.UpstreamRefreshRequests+1 || served < st0.UpstreamRefreshRequests {
		fails = append(fails, fmt.Sprintf(
			"origin served %d refresh captures against %d cadence requests (+1 seed): an edge event reached the origin's encode path",
			served, st0.UpstreamRefreshRequests))
	}
	if st0.CacheRefills != served {
		fails = append(fails, fmt.Sprintf("level 0 cached %d refills of %d origin captures", st0.CacheRefills, served))
	}
	// Per-level chain assertions: level k forwards exactly the batches
	// level k-1 fanned out, and refills its cache only from k-1's
	// republished refreshes — k-1's own refills plus k's cadence
	// requests served from k-1's cache (one may be latched but unserved
	// at the end of the run).
	prev := st0
	for lvl := 1; lvl < len(r.relays); lvl++ {
		st := r.relays[lvl].Stats()
		if st.Batches != prev.Batches {
			fails = append(fails, fmt.Sprintf("level %d forwarded %d batches of level %d's %d",
				lvl, st.Batches, lvl-1, prev.Batches))
		}
		if st.CacheRefills < prev.CacheRefills || st.CacheRefills > prev.CacheRefills+st.UpstreamRefreshRequests+1 {
			fails = append(fails, fmt.Sprintf(
				"level %d cached %d refills outside [%d,%d] (level %d refills %d + own cadence requests %d +1 seed)",
				lvl, st.CacheRefills, prev.CacheRefills, prev.CacheRefills+st.UpstreamRefreshRequests+1,
				lvl-1, prev.CacheRefills, st.UpstreamRefreshRequests))
		}
		prev = st
	}
	var serves, plis uint64
	for _, rl := range r.relays {
		st := rl.Stats()
		serves += st.CacheServes
		plis += st.AbsorbedPLIs
	}
	if got := serves + plis; got < r.sc.Expect.MinRelayAbsorbed {
		fails = append(fails, fmt.Sprintf("relay tier absorbed %d edge events (%d cache serves + %d rate-limited PLIs), scenario requires >= %d",
			got, serves, plis, r.sc.Expect.MinRelayAbsorbed))
	}
	return OracleResult{Name: "relay-cascade", Passed: len(fails) == 0, Detail: strings.Join(fails, "; ")}
}

// oracleMigration audits the broker handoff: the scheduled failure
// migrated exactly once at the detection horizon, the standby served
// no full refresh beyond the post-migration joiners' (a RESUMED viewer
// costs zero refresh encodes — the whole point of checkpointed
// migration), nothing was sent into the dead host's transports, and
// BFCP floor custody survived: the moderator's release after the
// handoff must grant the queued requester.
func (r *runner) oracleMigration() OracleResult {
	var fails []string
	if f := r.sc.Broker.FailAtTick; f > 0 {
		want := f + r.sc.Broker.detectAfter()
		switch {
		case !r.migrated:
			fails = append(fails, fmt.Sprintf("host killed at tick %d but the session was never re-homed", f))
		case r.migratedAt != want:
			fails = append(fails, fmt.Sprintf("migrated at tick %d, want the detection horizon tick %d", r.migratedAt, want))
		}
		if r.migrated {
			if served := r.hostB.ServedRefreshes(); served != r.freshJoinsB {
				fails = append(fails, fmt.Sprintf("standby served %d full refreshes with %d post-migration joiners: a resumed viewer paid a refresh",
					served, r.freshJoinsB))
			}
			if !r.released {
				fails = append(fails, "the post-migration floor release never ran")
			} else if r.floorReleaseErr != nil {
				fails = append(fails, fmt.Sprintf("floor custody lost across the handoff: release failed: %v", r.floorReleaseErr))
			}
			if holder, ok := r.floor.Holder(); !ok || holder != 12 {
				fails = append(fails, fmt.Sprintf("floor holder after the release is (%d,%v), want the queued requester 12", holder, ok))
			}
		}
	} else {
		if r.failed || r.migrated {
			fails = append(fails, "no failure was scheduled but one fired")
		}
		if holder, ok := r.floor.Holder(); !ok || holder != 11 {
			fails = append(fails, fmt.Sprintf("floor holder is (%d,%v), want the original grantee 11", holder, ok))
		}
	}
	return OracleResult{Name: "migration", Passed: len(fails) == 0, Detail: strings.Join(fails, "; ")}
}

// runOracles evaluates every invariant and records the verdicts.
func (r *runner) runOracles(res *Result) {
	conv := r.oracleConvergence()
	cont, fresh := r.oracleContinuity()
	res.Oracles = append(res.Oracles,
		conv,
		cont,
		r.oracleReassembly(),
		r.oracleEvictions(),
		r.oracleTileSync(),
		r.oracleCounters(fresh),
	)
	if len(r.relays) > 0 {
		res.Oracles = append(res.Oracles, r.oracleRelayCascade())
	}
	if r.sc.Broker != nil {
		res.Oracles = append(res.Oracles, r.oracleMigration())
	}
}
