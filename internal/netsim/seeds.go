package netsim

// Seed-range registry. Every deterministic suite in the repo draws its
// scenario (or link) seeds from one of these bands; keeping the bases
// in one place stops a new suite from silently colliding with an
// existing one — two suites sharing a seed would produce correlated
// link shaping and RTP identifiers, quietly weakening both.
//
// The soak test (soak_test.go) seeds raw transport links rather than
// scenarios, but its links live in the same collision domain: a soak
// link seed equal to a scenario seed would replay the same shaper
// decisions in both suites.
const (
	// SeedMatrixBase..+14 — the curated link-pathology matrix
	// (Matrix()): pristine, loss, burst, jitter, duplication, policing,
	// partitions, eviction and ladder scenarios.
	SeedMatrixBase = 101

	// SeedStormBase..+2 — the flash-crowd/churn/NACK storm scenarios
	// (Storms()).
	SeedStormBase = 120

	// SeedTileBase..+4 — the persistent-tile-store scenarios inside
	// Matrix() (revisit, mixed fleet, loss, eviction skew, relay tree).
	SeedTileBase = 130

	// SeedNestedRelayTree — the 3-level origin → relay → relay → edge
	// fan-out scenario (relay-tree-nested in Matrix()).
	SeedNestedRelayTree = 135

	// SeedMigrationBase..SeedMigrationEnd — the partition-then-migrate
	// broker suite (MigrationFamily()).
	SeedMigrationBase = 140
	SeedMigrationEnd  = 149

	// SoakSeedUDPDownBase/+i and SoakSeedUDPUpBase/+i seed the soak
	// test's per-participant UDP link directions; SoakSeedMulticastBase/+i
	// seeds its multicast subscriber links.
	SoakSeedUDPDownBase   = 40
	SoakSeedUDPUpBase     = 50
	SoakSeedMulticastBase = 60
)
