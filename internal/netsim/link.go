package netsim

import (
	"container/heap"
	"io"
	"sync"
	"time"

	"appshare/internal/transport"
)

// evKind classifies a scheduled link event.
type evKind uint8

const (
	// evDeliverDown delivers a host→viewer datagram to the participant.
	evDeliverDown evKind = iota
	// evDeliverUp delivers viewer→host feedback to the host.
	evDeliverUp
	// evDropDown journals a host→viewer datagram the link discarded.
	evDropDown
	// evDropUp journals viewer→host feedback the link discarded.
	evDropUp
)

// event is one scheduled link occurrence in virtual time.
type event struct {
	at   time.Time
	li   int    // owning viewer index — first tie-break
	seq  uint64 // per-viewer schedule order — second tie-break
	kind evKind
	v    *viewerState
	pkt  []byte
}

// eventHeap orders events by (at, li, seq). The two tie-breaks make the
// processing order a total order independent of Go map iteration: the
// host fans out to remotes in random map order, but each send lands in
// its own viewer's (li, seq) lane, so same-instant events across
// viewers always replay identically.
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if !a.at.Equal(b.at) {
		return a.at.Before(b.at)
	}
	if a.li != b.li {
		return a.li < b.li
	}
	return a.seq < b.seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// schedule queues an event for the given viewer, stamping the per-viewer
// sequence that makes same-instant ordering deterministic.
func (r *runner) schedule(v *viewerState, kind evKind, at time.Time, pkt []byte) {
	v.evSeq++
	heap.Push(&r.events, &event{at: at, li: v.idx, seq: v.evSeq, kind: kind, v: v, pkt: pkt})
}

// runEventsUntil processes every scheduled event with at <= t in
// deterministic order, advancing the virtual clock through each event's
// instant, and leaves the clock at t.
func (r *runner) runEventsUntil(t time.Time) {
	for r.events.Len() > 0 {
		top := r.events[0]
		if top.at.After(t) {
			break
		}
		ev := heap.Pop(&r.events).(*event)
		r.clk.set(ev.at)
		r.processEvent(ev)
	}
	r.clk.set(t)
}

// simPacketConn is the transport.PacketConn handed to
// Host.AttachPacketConn for a simulated UDP viewer. Send taps and shapes
// the datagram under the runner's sendMu: Tick and HandleFeedback are
// runner-driven, but with SendShards > 1 the Tick fan-out arrives on
// per-shard sender goroutines. It deliberately does NOT implement
// transport.BatchSender — the per-packet fallback keeps the shaping
// decision sequence identical to the historical per-packet sends, so
// pre-sharding journal digests stay valid. Recv parks the host's pump
// goroutine until Close — viewer feedback is injected synchronously
// through Host.HandleFeedback instead, keeping the feedback path on the
// virtual clock.
type simPacketConn struct {
	r *runner
	v *viewerState

	mu     sync.Mutex
	closed bool
	done   chan struct{}
	// sendAfterClose counts host sends that arrived after Close — the
	// no-traffic-to-evicted-remotes oracle input.
	sendAfterClose int
}

func newSimPacketConn(r *runner, v *viewerState) *simPacketConn {
	return &simPacketConn{r: r, v: v, done: make(chan struct{})}
}

// Send implements transport.PacketConn.
func (c *simPacketConn) Send(pkt []byte) error {
	c.mu.Lock()
	if c.closed {
		c.sendAfterClose++
		c.mu.Unlock()
		return transport.ErrClosed
	}
	c.mu.Unlock()
	c.r.shipDown(c.v, pkt)
	return nil
}

// Recv implements transport.PacketConn: it blocks until Close.
func (c *simPacketConn) Recv() ([]byte, error) {
	<-c.done
	return nil, io.EOF
}

// Close implements transport.PacketConn.
func (c *simPacketConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.closed {
		c.closed = true
		close(c.done)
	}
	return nil
}

func (c *simPacketConn) sendsAfterClose() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sendAfterClose
}

// copyOf returns an independent copy of pkt: tap entries, journal
// records and delivered datagrams must never alias one another (the
// corruption fault mutates a delivered copy; the tap must stay intact).
func copyOf(pkt []byte) []byte { return append([]byte(nil), pkt...) }

// shipDown routes one host→viewer datagram: always into the pre-shaping
// tap (the RTP-continuity oracle audits what the host SENT, not what
// survived the link), then through the viewer's downstream Shaper onto
// the event heap. With SendShards > 1 the host's sender goroutines call
// this concurrently from different shards; sendMu serializes the shared
// event heap (per-viewer state is already serialized by the owning
// shard's lock, and the heap's total order makes the replay identical
// regardless of arrival order).
func (r *runner) shipDown(v *viewerState, pkt []byte) {
	r.sendMu.Lock()
	defer r.sendMu.Unlock()
	now := r.clk.Now()
	v.tap = append(v.tap, copyOf(pkt))
	if v.evicted {
		v.tapAfterEvict++
	}
	if r.bypass {
		v.bypassDeliveries++
		r.schedule(v, evDeliverDown, now, copyOf(pkt))
		return
	}
	vd := v.down.Shape(now, len(pkt), v.heldDown == nil)
	if vd.Drop {
		r.schedule(v, evDropDown, now, nil)
		return
	}
	at := now.Add(vd.Delay)
	switch {
	case v.heldDown != nil:
		// The previously held datagram ships after this one — the
		// endpoint's reorder semantics.
		held := v.heldDown
		v.heldDown = nil
		v.shapedDeliveries += 2
		r.schedule(v, evDeliverDown, at, copyOf(pkt))
		r.schedule(v, evDeliverDown, at, held)
	case vd.Hold:
		v.heldDown = copyOf(pkt)
		if vd.Duplicate {
			// The duplicate is not held; the two copies themselves
			// arrive out of order.
			v.shapedDeliveries++
			r.schedule(v, evDeliverDown, at, copyOf(pkt))
		}
	default:
		v.shapedDeliveries++
		r.schedule(v, evDeliverDown, at, copyOf(pkt))
		if vd.Duplicate {
			v.shapedDeliveries++
			r.schedule(v, evDeliverDown, at, copyOf(pkt))
		}
	}
}

// sendUp routes one viewer→host feedback packet through the viewer's
// upstream Shaper onto the event heap. Runner goroutine only.
func (r *runner) sendUp(v *viewerState, pkt []byte) {
	now := r.clk.Now()
	if r.bypass {
		r.schedule(v, evDeliverUp, now, copyOf(pkt))
		return
	}
	vd := v.up.Shape(now, len(pkt), v.heldUp == nil)
	if vd.Drop {
		r.schedule(v, evDropUp, now, nil)
		return
	}
	at := now.Add(vd.Delay)
	switch {
	case v.heldUp != nil:
		held := v.heldUp
		v.heldUp = nil
		r.schedule(v, evDeliverUp, at, copyOf(pkt))
		r.schedule(v, evDeliverUp, at, held)
	case vd.Hold:
		v.heldUp = copyOf(pkt)
		if vd.Duplicate {
			r.schedule(v, evDeliverUp, at, copyOf(pkt))
		}
	default:
		r.schedule(v, evDeliverUp, at, copyOf(pkt))
		if vd.Duplicate {
			r.schedule(v, evDeliverUp, at, copyOf(pkt))
		}
	}
}

// flushHeld releases both reorder slots of every viewer onto the heap —
// called when quiesce begins so no datagram stays parked forever.
func (r *runner) flushHeld() {
	now := r.clk.Now()
	for _, v := range r.viewers {
		if v.heldDown != nil {
			v.shapedDeliveries++
			r.schedule(v, evDeliverDown, now, v.heldDown)
			v.heldDown = nil
		}
		if v.heldUp != nil {
			r.schedule(v, evDeliverUp, now, v.heldUp)
			v.heldUp = nil
		}
	}
}
