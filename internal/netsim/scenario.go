// Package netsim is a seeded, deterministic network-simulation harness
// for whole sharing sessions: it drives a real ah.Host with workload
// generators, connects fleets of viewers (unicast UDP, unicast TCP,
// multicast) through rich link models (Gilbert–Elliott burst loss,
// jitter-induced reordering, duplication, rate policing, transient
// partitions), and checks machine-verified oracles at the end of every
// run — byte-identical framebuffer convergence, RTP
// sequence/timestamp monotonicity, fragment-reassembly identity, no
// traffic toward evicted remotes, and stats-counter consistency.
//
// Everything random is derived from the scenario seed: link shaping,
// RTP identifiers (SSRC, initial sequence, timestamp origin) on both
// ends, and workload content. Time is virtual — a single runner
// goroutine advances a simulated clock, so the same descriptor replays
// byte-for-byte: two runs of one scenario produce identical journals
// (see Result.Digest). A failing scenario is therefore reproducible
// from its one-line String().
package netsim

import (
	"fmt"
	"time"

	"appshare/internal/ah"
	"appshare/internal/trace"
	"appshare/internal/transport"
)

// Window is a half-open tick interval [From, To).
type Window struct {
	From, To int
}

// contains reports whether tick is inside the window.
func (w Window) contains(tick int) bool { return tick >= w.From && tick < w.To }

// Profile is a named pair of directional link models plus scheduled
// partitions. Down shapes host→viewer, Up shapes viewer→host. The
// LinkConfig Seed fields are ignored — the runner derives per-link
// seeds from the scenario seed.
type Profile struct {
	Name string
	Down transport.LinkConfig
	Up   transport.LinkConfig
	// Partitions lists tick windows during which the link black-holes
	// in both directions (a transient network partition).
	Partitions []Window
}

// ViewerKind selects the transport a viewer attaches with.
type ViewerKind int

const (
	// KindUDP is a unicast datagram viewer (AttachPacketConn): lossy
	// link, NACK/PLI repair, host-side retransmission log.
	KindUDP ViewerKind = iota
	// KindTCP is a unicast reliable-stream viewer (AttachStream): no
	// loss, but a bounded per-tick byte budget models a slow TCP path
	// and exercises the Section 7 backlog-deferral machinery.
	KindTCP
	// KindMulticast is a member of the scenario's one multicast group
	// (AttachMulticast): shared downstream, out-of-band unicast
	// feedback.
	KindMulticast
)

// String implements fmt.Stringer.
func (k ViewerKind) String() string {
	switch k {
	case KindUDP:
		return "udp"
	case KindTCP:
		return "tcp"
	case KindMulticast:
		return "mcast"
	default:
		return fmt.Sprintf("ViewerKind(%d)", int(k))
	}
}

// ViewerSpec describes one viewer in the fleet.
type ViewerSpec struct {
	// Name identifies the viewer in journals and oracle output. Must be
	// unique within the scenario; "_ref" is reserved for the built-in
	// lossless reference viewer.
	Name string
	Kind ViewerKind
	// Profile overrides the scenario's default link profile for this
	// viewer (nil = default). Multicast members may only use loss
	// models (LossRate/Burst) — their link is simulated by the
	// transport.Bus subscriber, which delivers synchronously.
	Profile *Profile
	// JoinAtTick delays the attach — a late joiner announcing itself
	// with a PLI under whatever loss the link has.
	JoinAtTick int
	// LeaveAtTick, when positive, detaches the viewer cleanly at the
	// start of that tick (UDP viewers only, and it must lie strictly
	// between JoinAtTick and the scenario's main-phase end). A leaver is
	// excluded from convergence but still audited: its tap must show
	// valid RTP and the host must never send to it after the detach.
	LeaveAtTick int
	// SilenceAfterTick, when positive, stops all feedback (RR, NACK,
	// PLI) from this tick on — the silent-death case RemoteTimeout
	// eviction exists for.
	SilenceAfterTick int
	// StreamBudgetPerTick (TCP only) bounds the bytes the simulated TCP
	// path accepts per tick; 0 = unlimited. A small budget makes the
	// host's send backlog grow deterministically.
	StreamBudgetPerTick int
	// StreamBudgetSchedule (TCP only) varies the per-tick budget over
	// the main run: each phase applies from its FromTick until the next
	// phase starts. Phases must be sorted by ascending FromTick with
	// positive budgets. Ticks before the first phase use
	// StreamBudgetPerTick. Unspent budget expires at each tick boundary
	// (see streamConn.expire), so a generous phase cannot mask a tight
	// one — this is how degrade-mid-run-then-heal links are modeled.
	StreamBudgetSchedule []BudgetPhase
	// NoTileStore opts this viewer out of tile-reference negotiation on
	// a Scenario.TileStore run: it receives plain pixel updates while
	// tiled peers in the same batch get references — the mixed-fleet
	// coverage for tileCompose.
	NoTileStore bool
	// TileDictCapacity overrides this viewer's tile dictionary capacity
	// (0 = the negotiated default). Setting it SMALLER than the host's
	// capacity deliberately desynchronizes eviction: the host references
	// tiles the viewer already evicted, and the viewer must degrade to a
	// refresh instead of painting wrong pixels (pair with
	// Expect.AllowTileDesyncs).
	TileDictCapacity int
	// ViaRelay attaches this viewer to the scenario's relay tier
	// (Scenario.Relay) instead of the origin host — the edge leg of a
	// fan-out tree. UDP only; the origin never learns the viewer
	// exists, and the relay-cascade oracle asserts its joins and PLIs
	// were absorbed at the edge.
	ViaRelay bool
	// RelayLevel selects which level of a nested relay chain a ViaRelay
	// viewer hangs off (0 = the relay directly under the origin). Must
	// be < RelaySpec.Levels.
	RelayLevel int
}

// RelaySpec configures the scenario's edge relay tier: one relay.Relay
// subscribed in-process to the origin host, re-fanning every tick's
// prepared batch to the ViaRelay viewers. The relay seeds its refresh
// cache at attach and refills it only on the RefreshEvery cadence, so
// the relay-cascade oracle can assert the exact origin refresh count.
type RelaySpec struct {
	// RefreshEvery is the cache-refill cadence in forwarded batches
	// (default 8) — the ONLY path relay activity may generate origin
	// refresh work on.
	RefreshEvery int
	// MinRefreshInterval rate-limits per-viewer cache serves (0 = the
	// relay default 500ms; negative disables, serving every PLI from
	// the cache).
	MinRefreshInterval time.Duration
	// Levels is the depth of the relay chain under the origin (default
	// 1, the historical single-relay tier; max 4). Level k's relay
	// subscribes to level k-1's, so a 2-level chain is origin → R0 → R1
	// with viewers attachable at either level via ViewerSpec.RelayLevel.
	// All levels share RefreshEvery/MinRefreshInterval.
	Levels int
}

// BrokerSpec puts the run under session-broker custody: the runner
// stands up a broker.Broker plus a registered standby host, heartbeats
// the live host's checkpoint (session snapshot + BFCP floor state) to
// the broker every tick, and — when FailAtTick fires — hard-kills the
// live host mid-run. The broker's liveness sweep detects the silence,
// emits a migration order, and the runner restores the checkpoint onto
// the standby, resumes every viewer's transport there, and lets the
// same workload/oracle machinery prove the handoff was seamless.
type BrokerSpec struct {
	// FailAtTick, when positive, hard-kills the live host at the start
	// of that tick: no goodbye, no flush — conns close, heartbeats
	// stop. Zero runs the whole scenario under broker custody without a
	// failure (the survivor baseline: the journal must be byte-identical
	// to the broker-free run).
	FailAtTick int
	// DetectAfterTicks is the broker's failure-detection horizon in
	// missed heartbeats (default 2): the heartbeat timeout is set to
	// (DetectAfterTicks + ½)·TickInterval, so the sweep declares the
	// host dead — and migration fires — exactly DetectAfterTicks ticks
	// after FailAtTick.
	DetectAfterTicks int
}

// detectAfter returns the failure-detection horizon with the default
// applied. A method rather than an applyDefaults mutation: BrokerSpec
// is shared by pointer between scenario values, and defaulting in
// place would leak across runs (cf. simLadder).
func (b *BrokerSpec) detectAfter() int {
	if b.DetectAfterTicks <= 0 {
		return 2
	}
	return b.DetectAfterTicks
}

// BudgetPhase is one step of a TCP viewer's budget schedule.
type BudgetPhase struct {
	// FromTick is the first tick this budget applies to.
	FromTick int
	// Budget is the per-tick byte budget during the phase (> 0).
	Budget int
}

// Fault is a deliberately seeded defect for oracle mutation checks: a
// harness whose oracles cannot catch a planted fault proves nothing.
type Fault int

const (
	// FaultNone runs the scenario unmodified.
	FaultNone Fault = iota
	// FaultCorruptPayload flips one bit in one delivered datagram's
	// payload — the convergence or reassembly oracle must notice.
	FaultCorruptPayload
	// FaultSkipRepair suppresses viewer NACKs and PLIs — under loss the
	// convergence oracle must notice the unrepaired gaps.
	FaultSkipRepair
	// FaultEvictFeedback re-plants the refresh-phase eviction race: the
	// host's eviction gates are disabled (ah.Config.DebugDisableEvictGates)
	// and evicted viewers keep their repair loops talking, so feedback
	// lands in the window between the sweep's mark and the sink
	// teardown. The evictions oracle must notice the post-eviction
	// service.
	FaultEvictFeedback
	// FaultCorruptSnapshot perturbs the migration checkpoint before the
	// standby host restores it (one packetizer's next sequence number is
	// bumped) — the rtp-continuity or convergence oracle must notice the
	// discontinuity. Requires Scenario.Broker with FailAtTick > 0.
	FaultCorruptSnapshot
	// FaultDropFloorState discards the broker-held BFCP floor state at
	// migration, restoring the session with a fresh floor — the
	// migration oracle must notice the lost grant/queue custody.
	// Requires Scenario.Broker with FailAtTick > 0.
	FaultDropFloorState
)

// Expectations declares the intended end state, so policy actions
// (evictions) are asserted rather than tolerated.
type Expectations struct {
	// Evicted lists viewer names that MUST be evicted by the end of the
	// run; any other eviction (or a missing one) fails the eviction
	// oracle. Evicted viewers are excluded from convergence.
	Evicted []string
	// AllowDroppedMessages permits viewers to report reassembly drops
	// (scenarios that overflow queues on purpose). Default false: every
	// fragment train must reassemble.
	AllowDroppedMessages bool
	// AllowTileDesyncs permits viewers to hit unresolvable tile
	// references (capacity-skew or loss scenarios that provoke them on
	// purpose). Default false: a tile desync on any viewer fails the
	// tile-sync oracle — the host/viewer dictionaries must stay in
	// lockstep.
	AllowTileDesyncs bool
	// MinTileRefs is the minimum number of TileReference messages the
	// host must have substituted across the whole fleet — the proof that
	// a tile-store scenario actually exercised the reference path rather
	// than silently shipping pixels.
	MinTileRefs uint64
	// MinRelayAbsorbed is the minimum number of edge events (cache
	// serves plus rate-limited PLI absorptions) the relay tier must have
	// handled — the proof a relay scenario actually exercised the
	// absorption path rather than running an idle relay. Requires
	// Scenario.Relay.
	MinRelayAbsorbed uint64
}

// Scenario is one reproducible simulation: workload × link profile ×
// viewer fleet × host policy, plus the expected outcome.
type Scenario struct {
	Name string
	// Seed derives every random source in the run. Zero means 1.
	Seed int64
	// Ticks is the number of workload-driven capture ticks (default 30).
	Ticks int
	// TickInterval is the virtual time between ticks (default 40ms).
	TickInterval time.Duration
	// Workload names a workload.ByName generator (default "typing").
	Workload string
	// Profile is the default link profile for viewers without overrides.
	Profile Profile
	// Viewers is the fleet. A lossless UDP reference viewer "_ref" is
	// always added by the runner.
	Viewers []ViewerSpec
	// Relay, when non-nil, stands up the edge relay tier the ViaRelay
	// viewers attach through (see RelaySpec).
	Relay *RelaySpec
	// Broker, when non-nil, runs the scenario under session-broker
	// custody with a standby host and (if FailAtTick > 0) a live host
	// migration mid-run (see BrokerSpec). Incompatible with Relay,
	// TCP/multicast viewers and LeaveAtTick.
	Broker *BrokerSpec

	// Host policy knobs (zero values keep the ah defaults).
	RemoteTimeout   time.Duration
	MaxBacklogDwell time.Duration
	EvictionPolicy  string // "", "monitor", "degrade", "drop"
	BacklogLimit    int
	// Ladder, when non-nil, enables the host's congestion-adaptive
	// quality ladder (ah.Config.Ladder) with these knobs. Simulations
	// use thresholds scaled to TickInterval, far tighter than the
	// wall-clock library defaults.
	Ladder *ah.LadderConfig

	// QuiesceTicks bounds the lossless settle phase appended after the
	// main run (default 80): links heal, the workload freezes (except a
	// per-tick sentinel pixel that exposes undetected tail loss), and
	// repair runs until every viewer converges or the budget is spent.
	QuiesceTicks int

	// SendShards sets ah.Config.SendShards: 0 = GOMAXPROCS shards,
	// 1 = the pre-sharding single-lock send path. Journals must be
	// byte-identical across shard counts (see the storm tests).
	SendShards int
	// DesktopW/DesktopH size the simulated desktop (default 320x240;
	// the shared window is inset by a fixed 64x48 margin, so defaults
	// reproduce the historical 256x192 window exactly). Storm scenarios
	// shrink the desktop so thousand-viewer fleets stay affordable.
	DesktopW, DesktopH int
	// RetransLog sets ah.Config.RetransLog (default 16384). Storm
	// scenarios use smaller logs: per-remote retransmission state is a
	// real memory cost at flash-crowd scale.
	RetransLog int
	// TileStore enables the host's persistent tile store (default
	// negotiated tile size/capacity) and negotiates it for every viewer
	// that does not set NoTileStore. Off by default: legacy scenarios
	// must stay byte-identical to the pre-tile-store harness.
	TileStore bool

	Fault  Fault
	Expect Expectations
}

// String returns the one-line replay descriptor.
func (s Scenario) String() string {
	return fmt.Sprintf("scenario=%s seed=%d ticks=%d interval=%s workload=%s profile=%s viewers=%d",
		s.Name, s.Seed, s.Ticks, s.TickInterval, s.Workload, s.Profile.Name, len(s.Viewers))
}

// OracleResult is the outcome of one end-of-run invariant check.
type OracleResult struct {
	// Name identifies the oracle: convergence, rtp-continuity,
	// reassembly, evictions, counters.
	Name string
	// Passed reports whether the invariant held.
	Passed bool
	// Detail explains a failure (empty on pass).
	Detail string
}

// Result is the outcome of one scenario run.
type Result struct {
	// Scenario is the replay descriptor of the run.
	Scenario string
	// Seed is the effective seed (after defaulting).
	Seed int64
	// Journal is the full deterministic event journal (trace records).
	Journal []trace.Record
	// Digest fingerprints the journal; equal seeds must yield equal
	// digests.
	Digest string
	// Oracles holds every invariant check that ran.
	Oracles []OracleResult
	// TicksRun counts main + quiesce ticks actually executed.
	TicksRun int
	// QualityDemotes, QualityPromotes and QualityFlaps are the host's
	// quality-ladder transition counts for the whole run (zero when the
	// ladder is disabled) — the observables the ladder scenarios assert
	// on.
	QualityDemotes, QualityPromotes, QualityFlaps uint64
}

// Passed reports whether every oracle held.
func (r *Result) Passed() bool {
	for _, o := range r.Oracles {
		if !o.Passed {
			return false
		}
	}
	return true
}

// Failures returns the failed oracles' "name: detail" lines.
func (r *Result) Failures() []string {
	var out []string
	for _, o := range r.Oracles {
		if !o.Passed {
			out = append(out, o.Name+": "+o.Detail)
		}
	}
	return out
}

// Matrix returns the curated scenario matrix wired into ci.sh and
// `ads-bench -scenarios`: every link pathology the PAPERS.md simulation
// studies flag as regression-prone, each with the viewer fleet that
// makes it bite. Seeds are fixed so CI journals are stable; Run replays
// any of them with a different seed via the Seed field.
func Matrix() []Scenario {
	ge := &transport.BurstLoss{PEnterBad: 0.05, PExitBad: 0.25, LossGood: 0, LossBad: 0.9}
	return []Scenario{
		{
			Name: "pristine", Seed: SeedMatrixBase, Workload: "typing",
			Profile: Profile{Name: "pristine"},
			Viewers: []ViewerSpec{
				{Name: "u1", Kind: KindUDP},
				{Name: "u2", Kind: KindUDP},
				{Name: "t1", Kind: KindTCP},
			},
		},
		{
			Name: "uniform-loss-5", Seed: SeedMatrixBase + 1, Workload: "typing",
			Profile: Profile{Name: "loss5", Down: transport.LinkConfig{LossRate: 0.05}},
			Viewers: []ViewerSpec{
				{Name: "u1", Kind: KindUDP},
				{Name: "u2", Kind: KindUDP},
			},
		},
		{
			Name: "uniform-loss-20", Seed: SeedMatrixBase + 2, Workload: "scrolling",
			Profile: Profile{
				Name: "loss20",
				Down: transport.LinkConfig{LossRate: 0.20},
				Up:   transport.LinkConfig{LossRate: 0.05},
			},
			Viewers: []ViewerSpec{{Name: "u1", Kind: KindUDP}},
		},
		{
			Name: "burst-ge", Seed: SeedMatrixBase + 3, Workload: "typing",
			Profile: Profile{Name: "burst-ge", Down: transport.LinkConfig{Burst: ge}},
			Viewers: []ViewerSpec{
				{Name: "u1", Kind: KindUDP},
				{Name: "u2", Kind: KindUDP},
			},
		},
		{
			Name: "jitter-reorder", Seed: SeedMatrixBase + 4, Workload: "typing",
			Profile: Profile{
				Name: "jitter",
				Down: transport.LinkConfig{Delay: 5 * time.Millisecond, Jitter: 60 * time.Millisecond, ReorderRate: 0.10},
			},
			Viewers: []ViewerSpec{{Name: "u1", Kind: KindUDP}},
		},
		{
			Name: "burst-jitter", Seed: SeedMatrixBase + 5, Workload: "scrolling",
			Profile: Profile{
				Name: "burst-jitter",
				Down: transport.LinkConfig{Burst: ge, Delay: 5 * time.Millisecond, Jitter: 40 * time.Millisecond},
			},
			Viewers: []ViewerSpec{{Name: "u1", Kind: KindUDP}},
		},
		{
			Name: "duplication", Seed: SeedMatrixBase + 6, Workload: "typing",
			Profile: Profile{
				Name: "dup",
				Down: transport.LinkConfig{DuplicateRate: 0.20, LossRate: 0.05},
			},
			Viewers: []ViewerSpec{{Name: "u1", Kind: KindUDP}},
		},
		{
			Name: "rate-police", Seed: SeedMatrixBase + 7, Workload: "slideshow",
			Profile: Profile{
				Name: "police",
				Down: transport.LinkConfig{BytesPerSecond: 256 << 10, BurstBytes: 24 << 10},
			},
			Viewers: []ViewerSpec{{Name: "u1", Kind: KindUDP}},
		},
		{
			Name: "partition-heal", Seed: SeedMatrixBase + 8, Workload: "typing",
			Profile: Profile{
				Name:       "partition",
				Partitions: []Window{{From: 10, To: 18}},
			},
			Viewers: []ViewerSpec{
				{Name: "u1", Kind: KindUDP},
				{Name: "u2", Kind: KindUDP},
			},
		},
		{
			Name: "late-join-loss", Seed: SeedMatrixBase + 9, Workload: "typing",
			Profile: Profile{Name: "loss10", Down: transport.LinkConfig{LossRate: 0.10}},
			Viewers: []ViewerSpec{
				{Name: "early", Kind: KindUDP},
				{Name: "late", Kind: KindUDP, JoinAtTick: 15},
			},
		},
		{
			Name: "evict-mid-burst", Seed: SeedMatrixBase + 10, Workload: "typing",
			Profile: Profile{Name: "burst-ge", Down: transport.LinkConfig{Burst: ge}},
			Viewers: []ViewerSpec{
				{Name: "mute", Kind: KindUDP, SilenceAfterTick: 4},
				{Name: "obs", Kind: KindUDP},
			},
			RemoteTimeout: 400 * time.Millisecond,
			Expect:        Expectations{Evicted: []string{"mute"}},
		},
		{
			Name: "tcp-backlog", Seed: SeedMatrixBase + 11, Workload: "slideshow",
			Profile: Profile{Name: "pristine"},
			Viewers: []ViewerSpec{
				{Name: "slow", Kind: KindTCP, StreamBudgetPerTick: 800},
				{Name: "fast", Kind: KindTCP},
			},
			BacklogLimit:    4 << 10,
			MaxBacklogDwell: 320 * time.Millisecond,
			EvictionPolicy:  "drop",
			Expect:          Expectations{Evicted: []string{"slow"}},
		},
		{
			Name: "ladder-degrade-heal", Seed: SeedMatrixBase + 13, Workload: "slideshow",
			Profile: Profile{Name: "pristine"},
			Ticks:   48,
			Viewers: []ViewerSpec{
				{Name: "obs", Kind: KindUDP},
				{Name: "squeezed", Kind: KindTCP, StreamBudgetSchedule: []BudgetPhase{
					{FromTick: 0, Budget: 1 << 20},  // ample: full fidelity
					{FromTick: 12, Budget: 700},     // mid-run squeeze
					{FromTick: 34, Budget: 1 << 20}, // heal
				}},
			},
			BacklogLimit: 4 << 10,
			Ladder:       simLadder(),
		},
		{
			Name: "ladder-flap", Seed: SeedMatrixBase + 14, Workload: "slideshow",
			Profile: Profile{Name: "pristine"},
			Ticks:   44,
			Viewers: []ViewerSpec{
				{Name: "obs", Kind: KindUDP},
				{Name: "flappy", Kind: KindTCP, StreamBudgetSchedule: []BudgetPhase{
					{FromTick: 0, Budget: 1 << 20},
					{FromTick: 8, Budget: 700},
					{FromTick: 14, Budget: 1 << 20},
					{FromTick: 20, Budget: 700},
					{FromTick: 26, Budget: 1 << 20},
					{FromTick: 32, Budget: 700},
					{FromTick: 38, Budget: 1 << 20},
				}},
			},
			BacklogLimit: 4 << 10,
			Ladder:       simLadder(),
		},
		{
			// Slide-revisit with the tile store on: by the second lap of
			// the 4-slide cycle every viewer (UDP and TCP) must be served
			// TileReference substitutions, and the fleet must stay
			// desync-free and byte-converged.
			Name: "tile-revisit", Seed: SeedTileBase, Workload: "slidecycle",
			TileStore: true,
			Profile:   Profile{Name: "pristine"},
			Viewers: []ViewerSpec{
				{Name: "u1", Kind: KindUDP},
				{Name: "t1", Kind: KindTCP},
			},
			Expect: Expectations{MinTileRefs: 4},
		},
		{
			// Page-flip with a mixed fleet: a tiled viewer, a viewer that
			// did not negotiate the capability (plain pixels from the same
			// prepared batch), and a tiled late joiner whose seen-set
			// starts from its join refresh.
			Name: "tile-mixed-fleet", Seed: SeedTileBase + 1, Workload: "pageflip",
			TileStore: true,
			Profile:   Profile{Name: "pristine"},
			Viewers: []ViewerSpec{
				{Name: "tiled", Kind: KindUDP},
				{Name: "plain", Kind: KindUDP, NoTileStore: true},
				{Name: "late", Kind: KindUDP, JoinAtTick: 12},
			},
			Expect: Expectations{MinTileRefs: 8},
		},
		{
			// Revisit under 10% loss: a lost pixel update means the viewer
			// never learned its tiles, so a later reference may be
			// unresolvable — the viewer must degrade to a refresh (counted
			// as a desync, never a wrong paint) and still end
			// byte-identical.
			Name: "tile-revisit-loss", Seed: SeedTileBase + 2, Workload: "slidecycle",
			TileStore: true,
			Profile:   Profile{Name: "loss10", Down: transport.LinkConfig{LossRate: 0.10}},
			Viewers:   []ViewerSpec{{Name: "u1", Kind: KindUDP}},
			Expect:    Expectations{AllowTileDesyncs: true, MinTileRefs: 1},
		},
		{
			// Eviction-coherence: the squeezed viewer's dictionary holds 8
			// tiles against the host's default thousands, so the host
			// constantly references tiles the viewer already evicted.
			// Every such reference must turn into a refresh, and both the
			// squeezed viewer and the healthy observer must converge.
			Name: "tile-evict-coherence", Seed: SeedTileBase + 3, Workload: "pageflip",
			TileStore: true,
			Profile:   Profile{Name: "pristine"},
			Viewers: []ViewerSpec{
				{Name: "squeezed", Kind: KindUDP, TileDictCapacity: 8},
				{Name: "obs", Kind: KindUDP},
			},
			Expect: Expectations{AllowTileDesyncs: true, MinTileRefs: 4},
		},
		{
			// 2-level fan-out tree: origin → relay → edge fleet. The lossy
			// edge viewers run their whole repair loop (NACK, PLI) against
			// the relay, and a late joiner is painted from the relay's
			// cached snapshot — the origin never hears about any of it. The
			// relay-cascade oracle asserts the origin served exactly the
			// seed refresh plus the cadence refills, i.e. zero refresh
			// encodes triggered by edge events.
			Name: "relay-tree", Seed: SeedTileBase + 4, Workload: "typing",
			Ticks:   36,
			Profile: Profile{Name: "pristine"},
			Relay:   &RelaySpec{RefreshEvery: 6, MinRefreshInterval: 1200 * time.Millisecond},
			Viewers: []ViewerSpec{
				{Name: "obs", Kind: KindUDP},
				{Name: "e1", Kind: KindUDP, ViaRelay: true},
				{Name: "e2", Kind: KindUDP, ViaRelay: true,
					Profile: &Profile{Name: "loss10", Down: transport.LinkConfig{LossRate: 0.10}}},
				{Name: "e3", Kind: KindUDP, ViaRelay: true,
					Profile: &Profile{Name: "burst-ge", Down: transport.LinkConfig{Burst: ge}}},
				{Name: "late", Kind: KindUDP, ViaRelay: true, JoinAtTick: 18,
					// Heavy loss right at the join: the cache serve's first
					// paint is likely eaten, so the joiner PLIs into the
					// relay's rate-limit window — the absorbed-PLI path.
					Profile: &Profile{Name: "loss70", Down: transport.LinkConfig{LossRate: 0.70}}},
			},
			// Seed 134 deterministically yields 6 cache serves + 4
			// rate-limited PLI absorptions; the floor leaves headroom for
			// benign reseeding while still proving both paths ran.
			Expect: Expectations{MinRelayAbsorbed: 8},
		},
		{
			// 3-level fan-out tree: origin → R0 → R1 → edge fleet, with a
			// mid-tier viewer on R0 and the lossy edge on R1. Each level
			// must absorb its own children's refresh work: the per-level
			// cascade oracle asserts R1's batches equal R0's, R1's cache
			// refills stay within R0's refills plus R1's own cadence
			// requests, and the origin still serves only seed + cadence
			// refreshes — edge churn two hops down never reaches it.
			Name: "relay-tree-nested", Seed: SeedNestedRelayTree, Workload: "typing",
			Ticks:   36,
			Profile: Profile{Name: "pristine"},
			Relay:   &RelaySpec{Levels: 2, RefreshEvery: 6, MinRefreshInterval: 1200 * time.Millisecond},
			Viewers: []ViewerSpec{
				{Name: "obs", Kind: KindUDP},
				{Name: "m1", Kind: KindUDP, ViaRelay: true},
				{Name: "e1", Kind: KindUDP, ViaRelay: true, RelayLevel: 1},
				{Name: "e2", Kind: KindUDP, ViaRelay: true, RelayLevel: 1,
					Profile: &Profile{Name: "loss10", Down: transport.LinkConfig{LossRate: 0.10}}},
				{Name: "e3", Kind: KindUDP, ViaRelay: true, RelayLevel: 1,
					Profile: &Profile{Name: "burst-ge", Down: transport.LinkConfig{Burst: ge}}},
				{Name: "late", Kind: KindUDP, ViaRelay: true, RelayLevel: 1, JoinAtTick: 18,
					Profile: &Profile{Name: "loss70", Down: transport.LinkConfig{LossRate: 0.70}}},
			},
			// Seed 135 deterministically yields 7 cache serves (each
			// tier's latched serves plus the late joiner's replay paints);
			// the floor leaves headroom for benign reseeding while still
			// proving the edge tiers, not the origin, ate the churn.
			Expect: Expectations{MinRelayAbsorbed: 6},
		},
		{
			Name: "multicast-nack", Seed: SeedMatrixBase + 12, Workload: "typing",
			Profile: Profile{Name: "pristine"},
			Viewers: []ViewerSpec{
				{Name: "mc-good", Kind: KindMulticast},
				{Name: "mc-lossy", Kind: KindMulticast,
					Profile: &Profile{Name: "mc-burst", Down: transport.LinkConfig{Burst: ge}}},
			},
		},
	}
}

// simLadder returns the quality-ladder knobs the ladder scenarios use:
// thresholds scaled to the 40ms tick (demote after 3 congested sweeps,
// promote after 6 clean ones) so the controller acts within a short
// simulated run. Fresh per call — ah.New copies the config, but matrix
// entries must never share mutable state.
func simLadder() *ah.LadderConfig {
	return &ah.LadderConfig{
		DemoteAfter:    120 * time.Millisecond,
		PromoteAfter:   240 * time.Millisecond,
		MinTierDwell:   80 * time.Millisecond,
		FlapWindow:     640 * time.Millisecond,
		MaxPromoteWait: 2 * time.Second,
		DecimateEvery:  3,
		ScaleBlock:     4,
	}
}

// Storms returns the flash-crowd-scale stress scenarios that exercise
// the sharded send path. They live outside Matrix() — the matrix is the
// per-pathology link suite; these are population-scale loads (hundreds
// to a thousand remotes) with their own CI gate. All three shrink the
// desktop so the per-viewer convergence oracles stay affordable at
// fleet scale, and all three are shard-count-invariant: the same seed
// must produce the same journal digest with SendShards 1 or N.
func Storms() []Scenario {
	crowd := func(n, join, leave int, prefix string) []ViewerSpec {
		specs := make([]ViewerSpec, 0, n)
		for i := 0; i < n; i++ {
			specs = append(specs, ViewerSpec{
				Name:        fmt.Sprintf("%s%04d", prefix, i),
				Kind:        KindUDP,
				JoinAtTick:  join,
				LeaveAtTick: leave,
			})
		}
		return specs
	}
	flash := Scenario{
		// 1000 UDP viewers all joining in ONE tick: the attach path,
		// the PLI-refresh latch and the refresh fan-out all spike at
		// once. Pristine links keep the run about scale, not repair.
		Name: "flash-crowd", Seed: SeedStormBase, Workload: "typing",
		Ticks: 8, DesktopW: 128, DesktopH: 96, RetransLog: 2048,
		Profile: Profile{Name: "pristine"},
		Viewers: crowd(1000, 2, 0, "v"),
	}
	// Churn storm: 4 attaches and 4 detaches per 40ms tick — 100 Hz
	// each way — sustained for 30 ticks, with stable observers that
	// must converge as if the churn never happened.
	churn := Scenario{
		Name: "churn-storm", Seed: SeedStormBase + 1, Workload: "typing",
		Ticks: 34, DesktopW: 128, DesktopH: 96, RetransLog: 2048,
		Profile: Profile{Name: "pristine"},
		Viewers: []ViewerSpec{
			{Name: "obs-udp", Kind: KindUDP},
			{Name: "obs-tcp", Kind: KindTCP},
		},
	}
	for t := 1; t <= 30; t++ {
		for j := 0; j < 4; j++ {
			churn.Viewers = append(churn.Viewers, ViewerSpec{
				Name:        fmt.Sprintf("c%02d-%d", t, j),
				Kind:        KindUDP,
				JoinAtTick:  t,
				LeaveAtTick: t + 3,
			})
		}
	}
	nack := Scenario{
		// NACK storm: 1000 lossy UDP viewers each running the full
		// NACK/PLI repair loop. Every repair lands on one remote's
		// shard; the oracles demand all 1000 still converge.
		Name: "nack-storm", Seed: SeedStormBase + 2, Workload: "typing",
		Ticks: 6, DesktopW: 128, DesktopH: 96, RetransLog: 4096,
		Profile: Profile{Name: "loss5", Down: transport.LinkConfig{LossRate: 0.05}},
		Viewers: crowd(1000, 0, 0, "n"),
	}
	return []Scenario{flash, churn, nack}
}

// MigrationFamily returns the partition-then-migrate broker suite:
// every scenario runs under broker custody (heartbeats carrying the
// live checkpoint every tick) and — except the survivor baseline — hard
// kills the live host mid-run, so the broker's sweep re-homes the
// session onto the standby and every viewer's transport is resumed
// there. The suite varies what the handoff must survive: link
// pathology in flight, tile-store seen-sets, viewer partitions spanning
// the failure, late joiners on the restored host, evictions that fire
// post-migration, sharded send paths, and tight detection horizons.
func MigrationFamily() []Scenario {
	ge := &transport.BurstLoss{PEnterBad: 0.05, PExitBad: 0.25, LossGood: 0, LossBad: 0.9}
	return []Scenario{
		{
			// The clean handoff: three healthy viewers, host dies at tick
			// 10, broker detects after 2 silent ticks, everyone resumes on
			// the standby and converges.
			Name: "migrate-pristine", Seed: SeedMigrationBase, Workload: "typing",
			Ticks:   26,
			Profile: Profile{Name: "pristine"},
			Broker:  &BrokerSpec{FailAtTick: 10},
			Viewers: []ViewerSpec{
				{Name: "u1", Kind: KindUDP},
				{Name: "u2", Kind: KindUDP},
				{Name: "u3", Kind: KindUDP},
			},
		},
		{
			// Loss in flight across the failure: packets the dead host sent
			// are still dropping when the standby takes over, and the
			// restored retransmission log must serve the repairs.
			Name: "migrate-loss5", Seed: SeedMigrationBase + 1, Workload: "typing",
			Ticks:   28,
			Profile: Profile{Name: "loss5", Down: transport.LinkConfig{LossRate: 0.05}},
			Broker:  &BrokerSpec{FailAtTick: 12},
			Viewers: []ViewerSpec{
				{Name: "u1", Kind: KindUDP},
				{Name: "u2", Kind: KindUDP},
			},
		},
		{
			// Tile-store custody: by the failure the viewers' dictionaries
			// hold a full slide cycle; the restored host must keep issuing
			// TileReferences against the carried-over seen-sets — the
			// migration oracle separately demands zero full refreshes for
			// resumed viewers.
			Name: "migrate-tiles", Seed: SeedMigrationBase + 2, Workload: "slidecycle",
			Ticks:     30,
			TileStore: true,
			Profile:   Profile{Name: "pristine"},
			Broker:    &BrokerSpec{FailAtTick: 14},
			Viewers: []ViewerSpec{
				{Name: "u1", Kind: KindUDP},
				{Name: "u2", Kind: KindUDP, JoinAtTick: 6},
			},
			Expect: Expectations{MinTileRefs: 4},
		},
		{
			// A viewer joins AFTER the migration: the standby host serves
			// its one allowed join refresh while the resumed viewers get
			// none — the oracle distinguishes the two.
			Name: "migrate-late-join", Seed: SeedMigrationBase + 3, Workload: "typing",
			Ticks:   28,
			Profile: Profile{Name: "pristine"},
			Broker:  &BrokerSpec{FailAtTick: 10},
			Viewers: []ViewerSpec{
				{Name: "u1", Kind: KindUDP},
				{Name: "late", Kind: KindUDP, JoinAtTick: 15},
			},
		},
		{
			// A viewer partition spanning the failure: u1 is black-holed
			// ticks 8–16, so it misses the death AND the handoff entirely,
			// then repairs everything from the standby's restored log.
			Name: "migrate-viewer-partition", Seed: SeedMigrationBase + 4, Workload: "typing",
			Ticks:   30,
			Profile: Profile{Name: "pristine"},
			Broker:  &BrokerSpec{FailAtTick: 10},
			Viewers: []ViewerSpec{
				{Name: "u1", Kind: KindUDP,
					Profile: &Profile{Name: "partition", Partitions: []Window{{From: 8, To: 16}}}},
				{Name: "u2", Kind: KindUDP},
			},
		},
		{
			// Burst loss on a scrolling workload: the Gilbert–Elliott bad
			// state eats whole fragment trains around the handoff.
			Name: "migrate-burst", Seed: SeedMigrationBase + 5, Workload: "scrolling",
			Ticks:   28,
			Profile: Profile{Name: "burst-ge", Down: transport.LinkConfig{Burst: ge}},
			Broker:  &BrokerSpec{FailAtTick: 10},
			Viewers: []ViewerSpec{
				{Name: "u1", Kind: KindUDP},
				{Name: "u2", Kind: KindUDP},
			},
		},
		{
			// Eviction custody: mute goes silent at tick 8, the host dies
			// at 10, and the RemoteTimeout sweep that evicts mute fires on
			// the STANDBY — last-heard clocks must survive the checkpoint.
			Name: "migrate-evict-on-b", Seed: SeedMigrationBase + 6, Workload: "typing",
			Ticks:   30,
			Profile: Profile{Name: "pristine"},
			Broker:  &BrokerSpec{FailAtTick: 10},
			Viewers: []ViewerSpec{
				{Name: "mute", Kind: KindUDP, SilenceAfterTick: 8},
				{Name: "obs", Kind: KindUDP},
			},
			RemoteTimeout: 400 * time.Millisecond,
			Expect:        Expectations{Evicted: []string{"mute"}},
		},
		{
			// Jitter and reordering in flight across the failure: packets
			// from the dead host arrive interleaved with the standby's.
			Name: "migrate-jitter", Seed: SeedMigrationBase + 7, Workload: "typing",
			Ticks: 28,
			Profile: Profile{
				Name: "jitter",
				Down: transport.LinkConfig{Delay: 5 * time.Millisecond, Jitter: 60 * time.Millisecond, ReorderRate: 0.10},
			},
			Broker:  &BrokerSpec{FailAtTick: 10},
			Viewers: []ViewerSpec{{Name: "u1", Kind: KindUDP}},
		},
		{
			// Early failure, slow detection: the session is barely warm
			// when the host dies, and the broker waits 3 silent ticks.
			Name: "migrate-early-d3", Seed: SeedMigrationBase + 8, Workload: "typing",
			Ticks:   24,
			Profile: Profile{Name: "loss5", Down: transport.LinkConfig{LossRate: 0.05}},
			Broker:  &BrokerSpec{FailAtTick: 4, DetectAfterTicks: 3},
			Viewers: []ViewerSpec{
				{Name: "u1", Kind: KindUDP},
				{Name: "u2", Kind: KindUDP},
			},
		},
		{
			// Sharded send path + tile store: the checkpoint carries the
			// next-shard cursor, so the standby's 4-shard rotation
			// continues exactly where the dead host's stopped.
			Name: "migrate-shards", Seed: SeedMigrationEnd, Workload: "pageflip",
			Ticks:      30,
			TileStore:  true,
			SendShards: 4,
			Profile:    Profile{Name: "pristine"},
			Broker:     &BrokerSpec{FailAtTick: 12},
			Viewers: []ViewerSpec{
				{Name: "u1", Kind: KindUDP},
				{Name: "u2", Kind: KindUDP},
				{Name: "u3", Kind: KindUDP},
			},
			Expect: Expectations{MinTileRefs: 4},
		},
	}
}

// ByName returns the matrix, storm or migration scenario with the
// given name.
func ByName(name string) (Scenario, error) {
	all := append(Matrix(), Storms()...)
	all = append(all, MigrationFamily()...)
	for _, sc := range all {
		if sc.Name == name {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("netsim: unknown scenario %q", name)
}
