// Package netsim is a seeded, deterministic network-simulation harness
// for whole sharing sessions: it drives a real ah.Host with workload
// generators, connects fleets of viewers (unicast UDP, unicast TCP,
// multicast) through rich link models (Gilbert–Elliott burst loss,
// jitter-induced reordering, duplication, rate policing, transient
// partitions), and checks machine-verified oracles at the end of every
// run — byte-identical framebuffer convergence, RTP
// sequence/timestamp monotonicity, fragment-reassembly identity, no
// traffic toward evicted remotes, and stats-counter consistency.
//
// Everything random is derived from the scenario seed: link shaping,
// RTP identifiers (SSRC, initial sequence, timestamp origin) on both
// ends, and workload content. Time is virtual — a single runner
// goroutine advances a simulated clock, so the same descriptor replays
// byte-for-byte: two runs of one scenario produce identical journals
// (see Result.Digest). A failing scenario is therefore reproducible
// from its one-line String().
package netsim

import (
	"fmt"
	"time"

	"appshare/internal/ah"
	"appshare/internal/trace"
	"appshare/internal/transport"
)

// Window is a half-open tick interval [From, To).
type Window struct {
	From, To int
}

// contains reports whether tick is inside the window.
func (w Window) contains(tick int) bool { return tick >= w.From && tick < w.To }

// Profile is a named pair of directional link models plus scheduled
// partitions. Down shapes host→viewer, Up shapes viewer→host. The
// LinkConfig Seed fields are ignored — the runner derives per-link
// seeds from the scenario seed.
type Profile struct {
	Name string
	Down transport.LinkConfig
	Up   transport.LinkConfig
	// Partitions lists tick windows during which the link black-holes
	// in both directions (a transient network partition).
	Partitions []Window
}

// ViewerKind selects the transport a viewer attaches with.
type ViewerKind int

const (
	// KindUDP is a unicast datagram viewer (AttachPacketConn): lossy
	// link, NACK/PLI repair, host-side retransmission log.
	KindUDP ViewerKind = iota
	// KindTCP is a unicast reliable-stream viewer (AttachStream): no
	// loss, but a bounded per-tick byte budget models a slow TCP path
	// and exercises the Section 7 backlog-deferral machinery.
	KindTCP
	// KindMulticast is a member of the scenario's one multicast group
	// (AttachMulticast): shared downstream, out-of-band unicast
	// feedback.
	KindMulticast
)

// String implements fmt.Stringer.
func (k ViewerKind) String() string {
	switch k {
	case KindUDP:
		return "udp"
	case KindTCP:
		return "tcp"
	case KindMulticast:
		return "mcast"
	default:
		return fmt.Sprintf("ViewerKind(%d)", int(k))
	}
}

// ViewerSpec describes one viewer in the fleet.
type ViewerSpec struct {
	// Name identifies the viewer in journals and oracle output. Must be
	// unique within the scenario; "_ref" is reserved for the built-in
	// lossless reference viewer.
	Name string
	Kind ViewerKind
	// Profile overrides the scenario's default link profile for this
	// viewer (nil = default). Multicast members may only use loss
	// models (LossRate/Burst) — their link is simulated by the
	// transport.Bus subscriber, which delivers synchronously.
	Profile *Profile
	// JoinAtTick delays the attach — a late joiner announcing itself
	// with a PLI under whatever loss the link has.
	JoinAtTick int
	// LeaveAtTick, when positive, detaches the viewer cleanly at the
	// start of that tick (UDP viewers only, and it must lie strictly
	// between JoinAtTick and the scenario's main-phase end). A leaver is
	// excluded from convergence but still audited: its tap must show
	// valid RTP and the host must never send to it after the detach.
	LeaveAtTick int
	// SilenceAfterTick, when positive, stops all feedback (RR, NACK,
	// PLI) from this tick on — the silent-death case RemoteTimeout
	// eviction exists for.
	SilenceAfterTick int
	// StreamBudgetPerTick (TCP only) bounds the bytes the simulated TCP
	// path accepts per tick; 0 = unlimited. A small budget makes the
	// host's send backlog grow deterministically.
	StreamBudgetPerTick int
	// StreamBudgetSchedule (TCP only) varies the per-tick budget over
	// the main run: each phase applies from its FromTick until the next
	// phase starts. Phases must be sorted by ascending FromTick with
	// positive budgets. Ticks before the first phase use
	// StreamBudgetPerTick. Unspent budget expires at each tick boundary
	// (see streamConn.expire), so a generous phase cannot mask a tight
	// one — this is how degrade-mid-run-then-heal links are modeled.
	StreamBudgetSchedule []BudgetPhase
	// NoTileStore opts this viewer out of tile-reference negotiation on
	// a Scenario.TileStore run: it receives plain pixel updates while
	// tiled peers in the same batch get references — the mixed-fleet
	// coverage for tileCompose.
	NoTileStore bool
	// TileDictCapacity overrides this viewer's tile dictionary capacity
	// (0 = the negotiated default). Setting it SMALLER than the host's
	// capacity deliberately desynchronizes eviction: the host references
	// tiles the viewer already evicted, and the viewer must degrade to a
	// refresh instead of painting wrong pixels (pair with
	// Expect.AllowTileDesyncs).
	TileDictCapacity int
	// ViaRelay attaches this viewer to the scenario's relay tier
	// (Scenario.Relay) instead of the origin host — the edge leg of a
	// 2-level fan-out tree. UDP only; the origin never learns the
	// viewer exists, and the relay-cascade oracle asserts its joins and
	// PLIs were absorbed at the edge.
	ViaRelay bool
}

// RelaySpec configures the scenario's edge relay tier: one relay.Relay
// subscribed in-process to the origin host, re-fanning every tick's
// prepared batch to the ViaRelay viewers. The relay seeds its refresh
// cache at attach and refills it only on the RefreshEvery cadence, so
// the relay-cascade oracle can assert the exact origin refresh count.
type RelaySpec struct {
	// RefreshEvery is the cache-refill cadence in forwarded batches
	// (default 8) — the ONLY path relay activity may generate origin
	// refresh work on.
	RefreshEvery int
	// MinRefreshInterval rate-limits per-viewer cache serves (0 = the
	// relay default 500ms; negative disables, serving every PLI from
	// the cache).
	MinRefreshInterval time.Duration
}

// BudgetPhase is one step of a TCP viewer's budget schedule.
type BudgetPhase struct {
	// FromTick is the first tick this budget applies to.
	FromTick int
	// Budget is the per-tick byte budget during the phase (> 0).
	Budget int
}

// Fault is a deliberately seeded defect for oracle mutation checks: a
// harness whose oracles cannot catch a planted fault proves nothing.
type Fault int

const (
	// FaultNone runs the scenario unmodified.
	FaultNone Fault = iota
	// FaultCorruptPayload flips one bit in one delivered datagram's
	// payload — the convergence or reassembly oracle must notice.
	FaultCorruptPayload
	// FaultSkipRepair suppresses viewer NACKs and PLIs — under loss the
	// convergence oracle must notice the unrepaired gaps.
	FaultSkipRepair
	// FaultEvictFeedback re-plants the refresh-phase eviction race: the
	// host's eviction gates are disabled (ah.Config.DebugDisableEvictGates)
	// and evicted viewers keep their repair loops talking, so feedback
	// lands in the window between the sweep's mark and the sink
	// teardown. The evictions oracle must notice the post-eviction
	// service.
	FaultEvictFeedback
)

// Expectations declares the intended end state, so policy actions
// (evictions) are asserted rather than tolerated.
type Expectations struct {
	// Evicted lists viewer names that MUST be evicted by the end of the
	// run; any other eviction (or a missing one) fails the eviction
	// oracle. Evicted viewers are excluded from convergence.
	Evicted []string
	// AllowDroppedMessages permits viewers to report reassembly drops
	// (scenarios that overflow queues on purpose). Default false: every
	// fragment train must reassemble.
	AllowDroppedMessages bool
	// AllowTileDesyncs permits viewers to hit unresolvable tile
	// references (capacity-skew or loss scenarios that provoke them on
	// purpose). Default false: a tile desync on any viewer fails the
	// tile-sync oracle — the host/viewer dictionaries must stay in
	// lockstep.
	AllowTileDesyncs bool
	// MinTileRefs is the minimum number of TileReference messages the
	// host must have substituted across the whole fleet — the proof that
	// a tile-store scenario actually exercised the reference path rather
	// than silently shipping pixels.
	MinTileRefs uint64
	// MinRelayAbsorbed is the minimum number of edge events (cache
	// serves plus rate-limited PLI absorptions) the relay tier must have
	// handled — the proof a relay scenario actually exercised the
	// absorption path rather than running an idle relay. Requires
	// Scenario.Relay.
	MinRelayAbsorbed uint64
}

// Scenario is one reproducible simulation: workload × link profile ×
// viewer fleet × host policy, plus the expected outcome.
type Scenario struct {
	Name string
	// Seed derives every random source in the run. Zero means 1.
	Seed int64
	// Ticks is the number of workload-driven capture ticks (default 30).
	Ticks int
	// TickInterval is the virtual time between ticks (default 40ms).
	TickInterval time.Duration
	// Workload names a workload.ByName generator (default "typing").
	Workload string
	// Profile is the default link profile for viewers without overrides.
	Profile Profile
	// Viewers is the fleet. A lossless UDP reference viewer "_ref" is
	// always added by the runner.
	Viewers []ViewerSpec
	// Relay, when non-nil, stands up the edge relay tier the ViaRelay
	// viewers attach through (see RelaySpec).
	Relay *RelaySpec

	// Host policy knobs (zero values keep the ah defaults).
	RemoteTimeout   time.Duration
	MaxBacklogDwell time.Duration
	EvictionPolicy  string // "", "monitor", "degrade", "drop"
	BacklogLimit    int
	// Ladder, when non-nil, enables the host's congestion-adaptive
	// quality ladder (ah.Config.Ladder) with these knobs. Simulations
	// use thresholds scaled to TickInterval, far tighter than the
	// wall-clock library defaults.
	Ladder *ah.LadderConfig

	// QuiesceTicks bounds the lossless settle phase appended after the
	// main run (default 80): links heal, the workload freezes (except a
	// per-tick sentinel pixel that exposes undetected tail loss), and
	// repair runs until every viewer converges or the budget is spent.
	QuiesceTicks int

	// SendShards sets ah.Config.SendShards: 0 = GOMAXPROCS shards,
	// 1 = the pre-sharding single-lock send path. Journals must be
	// byte-identical across shard counts (see the storm tests).
	SendShards int
	// DesktopW/DesktopH size the simulated desktop (default 320x240;
	// the shared window is inset by a fixed 64x48 margin, so defaults
	// reproduce the historical 256x192 window exactly). Storm scenarios
	// shrink the desktop so thousand-viewer fleets stay affordable.
	DesktopW, DesktopH int
	// RetransLog sets ah.Config.RetransLog (default 16384). Storm
	// scenarios use smaller logs: per-remote retransmission state is a
	// real memory cost at flash-crowd scale.
	RetransLog int
	// TileStore enables the host's persistent tile store (default
	// negotiated tile size/capacity) and negotiates it for every viewer
	// that does not set NoTileStore. Off by default: legacy scenarios
	// must stay byte-identical to the pre-tile-store harness.
	TileStore bool

	Fault  Fault
	Expect Expectations
}

// String returns the one-line replay descriptor.
func (s Scenario) String() string {
	return fmt.Sprintf("scenario=%s seed=%d ticks=%d interval=%s workload=%s profile=%s viewers=%d",
		s.Name, s.Seed, s.Ticks, s.TickInterval, s.Workload, s.Profile.Name, len(s.Viewers))
}

// OracleResult is the outcome of one end-of-run invariant check.
type OracleResult struct {
	// Name identifies the oracle: convergence, rtp-continuity,
	// reassembly, evictions, counters.
	Name string
	// Passed reports whether the invariant held.
	Passed bool
	// Detail explains a failure (empty on pass).
	Detail string
}

// Result is the outcome of one scenario run.
type Result struct {
	// Scenario is the replay descriptor of the run.
	Scenario string
	// Seed is the effective seed (after defaulting).
	Seed int64
	// Journal is the full deterministic event journal (trace records).
	Journal []trace.Record
	// Digest fingerprints the journal; equal seeds must yield equal
	// digests.
	Digest string
	// Oracles holds every invariant check that ran.
	Oracles []OracleResult
	// TicksRun counts main + quiesce ticks actually executed.
	TicksRun int
	// QualityDemotes, QualityPromotes and QualityFlaps are the host's
	// quality-ladder transition counts for the whole run (zero when the
	// ladder is disabled) — the observables the ladder scenarios assert
	// on.
	QualityDemotes, QualityPromotes, QualityFlaps uint64
}

// Passed reports whether every oracle held.
func (r *Result) Passed() bool {
	for _, o := range r.Oracles {
		if !o.Passed {
			return false
		}
	}
	return true
}

// Failures returns the failed oracles' "name: detail" lines.
func (r *Result) Failures() []string {
	var out []string
	for _, o := range r.Oracles {
		if !o.Passed {
			out = append(out, o.Name+": "+o.Detail)
		}
	}
	return out
}

// Matrix returns the curated scenario matrix wired into ci.sh and
// `ads-bench -scenarios`: every link pathology the PAPERS.md simulation
// studies flag as regression-prone, each with the viewer fleet that
// makes it bite. Seeds are fixed so CI journals are stable; Run replays
// any of them with a different seed via the Seed field.
func Matrix() []Scenario {
	ge := &transport.BurstLoss{PEnterBad: 0.05, PExitBad: 0.25, LossGood: 0, LossBad: 0.9}
	return []Scenario{
		{
			Name: "pristine", Seed: 101, Workload: "typing",
			Profile: Profile{Name: "pristine"},
			Viewers: []ViewerSpec{
				{Name: "u1", Kind: KindUDP},
				{Name: "u2", Kind: KindUDP},
				{Name: "t1", Kind: KindTCP},
			},
		},
		{
			Name: "uniform-loss-5", Seed: 102, Workload: "typing",
			Profile: Profile{Name: "loss5", Down: transport.LinkConfig{LossRate: 0.05}},
			Viewers: []ViewerSpec{
				{Name: "u1", Kind: KindUDP},
				{Name: "u2", Kind: KindUDP},
			},
		},
		{
			Name: "uniform-loss-20", Seed: 103, Workload: "scrolling",
			Profile: Profile{
				Name: "loss20",
				Down: transport.LinkConfig{LossRate: 0.20},
				Up:   transport.LinkConfig{LossRate: 0.05},
			},
			Viewers: []ViewerSpec{{Name: "u1", Kind: KindUDP}},
		},
		{
			Name: "burst-ge", Seed: 104, Workload: "typing",
			Profile: Profile{Name: "burst-ge", Down: transport.LinkConfig{Burst: ge}},
			Viewers: []ViewerSpec{
				{Name: "u1", Kind: KindUDP},
				{Name: "u2", Kind: KindUDP},
			},
		},
		{
			Name: "jitter-reorder", Seed: 105, Workload: "typing",
			Profile: Profile{
				Name: "jitter",
				Down: transport.LinkConfig{Delay: 5 * time.Millisecond, Jitter: 60 * time.Millisecond, ReorderRate: 0.10},
			},
			Viewers: []ViewerSpec{{Name: "u1", Kind: KindUDP}},
		},
		{
			Name: "burst-jitter", Seed: 106, Workload: "scrolling",
			Profile: Profile{
				Name: "burst-jitter",
				Down: transport.LinkConfig{Burst: ge, Delay: 5 * time.Millisecond, Jitter: 40 * time.Millisecond},
			},
			Viewers: []ViewerSpec{{Name: "u1", Kind: KindUDP}},
		},
		{
			Name: "duplication", Seed: 107, Workload: "typing",
			Profile: Profile{
				Name: "dup",
				Down: transport.LinkConfig{DuplicateRate: 0.20, LossRate: 0.05},
			},
			Viewers: []ViewerSpec{{Name: "u1", Kind: KindUDP}},
		},
		{
			Name: "rate-police", Seed: 108, Workload: "slideshow",
			Profile: Profile{
				Name: "police",
				Down: transport.LinkConfig{BytesPerSecond: 256 << 10, BurstBytes: 24 << 10},
			},
			Viewers: []ViewerSpec{{Name: "u1", Kind: KindUDP}},
		},
		{
			Name: "partition-heal", Seed: 109, Workload: "typing",
			Profile: Profile{
				Name:       "partition",
				Partitions: []Window{{From: 10, To: 18}},
			},
			Viewers: []ViewerSpec{
				{Name: "u1", Kind: KindUDP},
				{Name: "u2", Kind: KindUDP},
			},
		},
		{
			Name: "late-join-loss", Seed: 110, Workload: "typing",
			Profile: Profile{Name: "loss10", Down: transport.LinkConfig{LossRate: 0.10}},
			Viewers: []ViewerSpec{
				{Name: "early", Kind: KindUDP},
				{Name: "late", Kind: KindUDP, JoinAtTick: 15},
			},
		},
		{
			Name: "evict-mid-burst", Seed: 111, Workload: "typing",
			Profile: Profile{Name: "burst-ge", Down: transport.LinkConfig{Burst: ge}},
			Viewers: []ViewerSpec{
				{Name: "mute", Kind: KindUDP, SilenceAfterTick: 4},
				{Name: "obs", Kind: KindUDP},
			},
			RemoteTimeout: 400 * time.Millisecond,
			Expect:        Expectations{Evicted: []string{"mute"}},
		},
		{
			Name: "tcp-backlog", Seed: 112, Workload: "slideshow",
			Profile: Profile{Name: "pristine"},
			Viewers: []ViewerSpec{
				{Name: "slow", Kind: KindTCP, StreamBudgetPerTick: 800},
				{Name: "fast", Kind: KindTCP},
			},
			BacklogLimit:    4 << 10,
			MaxBacklogDwell: 320 * time.Millisecond,
			EvictionPolicy:  "drop",
			Expect:          Expectations{Evicted: []string{"slow"}},
		},
		{
			Name: "ladder-degrade-heal", Seed: 114, Workload: "slideshow",
			Profile: Profile{Name: "pristine"},
			Ticks:   48,
			Viewers: []ViewerSpec{
				{Name: "obs", Kind: KindUDP},
				{Name: "squeezed", Kind: KindTCP, StreamBudgetSchedule: []BudgetPhase{
					{FromTick: 0, Budget: 1 << 20},  // ample: full fidelity
					{FromTick: 12, Budget: 700},     // mid-run squeeze
					{FromTick: 34, Budget: 1 << 20}, // heal
				}},
			},
			BacklogLimit: 4 << 10,
			Ladder:       simLadder(),
		},
		{
			Name: "ladder-flap", Seed: 115, Workload: "slideshow",
			Profile: Profile{Name: "pristine"},
			Ticks:   44,
			Viewers: []ViewerSpec{
				{Name: "obs", Kind: KindUDP},
				{Name: "flappy", Kind: KindTCP, StreamBudgetSchedule: []BudgetPhase{
					{FromTick: 0, Budget: 1 << 20},
					{FromTick: 8, Budget: 700},
					{FromTick: 14, Budget: 1 << 20},
					{FromTick: 20, Budget: 700},
					{FromTick: 26, Budget: 1 << 20},
					{FromTick: 32, Budget: 700},
					{FromTick: 38, Budget: 1 << 20},
				}},
			},
			BacklogLimit: 4 << 10,
			Ladder:       simLadder(),
		},
		{
			// Slide-revisit with the tile store on: by the second lap of
			// the 4-slide cycle every viewer (UDP and TCP) must be served
			// TileReference substitutions, and the fleet must stay
			// desync-free and byte-converged.
			Name: "tile-revisit", Seed: 130, Workload: "slidecycle",
			TileStore: true,
			Profile:   Profile{Name: "pristine"},
			Viewers: []ViewerSpec{
				{Name: "u1", Kind: KindUDP},
				{Name: "t1", Kind: KindTCP},
			},
			Expect: Expectations{MinTileRefs: 4},
		},
		{
			// Page-flip with a mixed fleet: a tiled viewer, a viewer that
			// did not negotiate the capability (plain pixels from the same
			// prepared batch), and a tiled late joiner whose seen-set
			// starts from its join refresh.
			Name: "tile-mixed-fleet", Seed: 131, Workload: "pageflip",
			TileStore: true,
			Profile:   Profile{Name: "pristine"},
			Viewers: []ViewerSpec{
				{Name: "tiled", Kind: KindUDP},
				{Name: "plain", Kind: KindUDP, NoTileStore: true},
				{Name: "late", Kind: KindUDP, JoinAtTick: 12},
			},
			Expect: Expectations{MinTileRefs: 8},
		},
		{
			// Revisit under 10% loss: a lost pixel update means the viewer
			// never learned its tiles, so a later reference may be
			// unresolvable — the viewer must degrade to a refresh (counted
			// as a desync, never a wrong paint) and still end
			// byte-identical.
			Name: "tile-revisit-loss", Seed: 132, Workload: "slidecycle",
			TileStore: true,
			Profile:   Profile{Name: "loss10", Down: transport.LinkConfig{LossRate: 0.10}},
			Viewers:   []ViewerSpec{{Name: "u1", Kind: KindUDP}},
			Expect:    Expectations{AllowTileDesyncs: true, MinTileRefs: 1},
		},
		{
			// Eviction-coherence: the squeezed viewer's dictionary holds 8
			// tiles against the host's default thousands, so the host
			// constantly references tiles the viewer already evicted.
			// Every such reference must turn into a refresh, and both the
			// squeezed viewer and the healthy observer must converge.
			Name: "tile-evict-coherence", Seed: 133, Workload: "pageflip",
			TileStore: true,
			Profile:   Profile{Name: "pristine"},
			Viewers: []ViewerSpec{
				{Name: "squeezed", Kind: KindUDP, TileDictCapacity: 8},
				{Name: "obs", Kind: KindUDP},
			},
			Expect: Expectations{AllowTileDesyncs: true, MinTileRefs: 4},
		},
		{
			// 2-level fan-out tree: origin → relay → edge fleet. The lossy
			// edge viewers run their whole repair loop (NACK, PLI) against
			// the relay, and a late joiner is painted from the relay's
			// cached snapshot — the origin never hears about any of it. The
			// relay-cascade oracle asserts the origin served exactly the
			// seed refresh plus the cadence refills, i.e. zero refresh
			// encodes triggered by edge events.
			Name: "relay-tree", Seed: 134, Workload: "typing",
			Ticks:   36,
			Profile: Profile{Name: "pristine"},
			Relay:   &RelaySpec{RefreshEvery: 6, MinRefreshInterval: 1200 * time.Millisecond},
			Viewers: []ViewerSpec{
				{Name: "obs", Kind: KindUDP},
				{Name: "e1", Kind: KindUDP, ViaRelay: true},
				{Name: "e2", Kind: KindUDP, ViaRelay: true,
					Profile: &Profile{Name: "loss10", Down: transport.LinkConfig{LossRate: 0.10}}},
				{Name: "e3", Kind: KindUDP, ViaRelay: true,
					Profile: &Profile{Name: "burst-ge", Down: transport.LinkConfig{Burst: ge}}},
				{Name: "late", Kind: KindUDP, ViaRelay: true, JoinAtTick: 18,
					// Heavy loss right at the join: the cache serve's first
					// paint is likely eaten, so the joiner PLIs into the
					// relay's rate-limit window — the absorbed-PLI path.
					Profile: &Profile{Name: "loss70", Down: transport.LinkConfig{LossRate: 0.70}}},
			},
			// Seed 134 deterministically yields 6 cache serves + 4
			// rate-limited PLI absorptions; the floor leaves headroom for
			// benign reseeding while still proving both paths ran.
			Expect: Expectations{MinRelayAbsorbed: 8},
		},
		{
			Name: "multicast-nack", Seed: 113, Workload: "typing",
			Profile: Profile{Name: "pristine"},
			Viewers: []ViewerSpec{
				{Name: "mc-good", Kind: KindMulticast},
				{Name: "mc-lossy", Kind: KindMulticast,
					Profile: &Profile{Name: "mc-burst", Down: transport.LinkConfig{Burst: ge}}},
			},
		},
	}
}

// simLadder returns the quality-ladder knobs the ladder scenarios use:
// thresholds scaled to the 40ms tick (demote after 3 congested sweeps,
// promote after 6 clean ones) so the controller acts within a short
// simulated run. Fresh per call — ah.New copies the config, but matrix
// entries must never share mutable state.
func simLadder() *ah.LadderConfig {
	return &ah.LadderConfig{
		DemoteAfter:    120 * time.Millisecond,
		PromoteAfter:   240 * time.Millisecond,
		MinTierDwell:   80 * time.Millisecond,
		FlapWindow:     640 * time.Millisecond,
		MaxPromoteWait: 2 * time.Second,
		DecimateEvery:  3,
		ScaleBlock:     4,
	}
}

// Storms returns the flash-crowd-scale stress scenarios that exercise
// the sharded send path. They live outside Matrix() — the matrix is the
// per-pathology link suite; these are population-scale loads (hundreds
// to a thousand remotes) with their own CI gate. All three shrink the
// desktop so the per-viewer convergence oracles stay affordable at
// fleet scale, and all three are shard-count-invariant: the same seed
// must produce the same journal digest with SendShards 1 or N.
func Storms() []Scenario {
	crowd := func(n, join, leave int, prefix string) []ViewerSpec {
		specs := make([]ViewerSpec, 0, n)
		for i := 0; i < n; i++ {
			specs = append(specs, ViewerSpec{
				Name:        fmt.Sprintf("%s%04d", prefix, i),
				Kind:        KindUDP,
				JoinAtTick:  join,
				LeaveAtTick: leave,
			})
		}
		return specs
	}
	flash := Scenario{
		// 1000 UDP viewers all joining in ONE tick: the attach path,
		// the PLI-refresh latch and the refresh fan-out all spike at
		// once. Pristine links keep the run about scale, not repair.
		Name: "flash-crowd", Seed: 120, Workload: "typing",
		Ticks: 8, DesktopW: 128, DesktopH: 96, RetransLog: 2048,
		Profile: Profile{Name: "pristine"},
		Viewers: crowd(1000, 2, 0, "v"),
	}
	// Churn storm: 4 attaches and 4 detaches per 40ms tick — 100 Hz
	// each way — sustained for 30 ticks, with stable observers that
	// must converge as if the churn never happened.
	churn := Scenario{
		Name: "churn-storm", Seed: 121, Workload: "typing",
		Ticks: 34, DesktopW: 128, DesktopH: 96, RetransLog: 2048,
		Profile: Profile{Name: "pristine"},
		Viewers: []ViewerSpec{
			{Name: "obs-udp", Kind: KindUDP},
			{Name: "obs-tcp", Kind: KindTCP},
		},
	}
	for t := 1; t <= 30; t++ {
		for j := 0; j < 4; j++ {
			churn.Viewers = append(churn.Viewers, ViewerSpec{
				Name:        fmt.Sprintf("c%02d-%d", t, j),
				Kind:        KindUDP,
				JoinAtTick:  t,
				LeaveAtTick: t + 3,
			})
		}
	}
	nack := Scenario{
		// NACK storm: 1000 lossy UDP viewers each running the full
		// NACK/PLI repair loop. Every repair lands on one remote's
		// shard; the oracles demand all 1000 still converge.
		Name: "nack-storm", Seed: 122, Workload: "typing",
		Ticks: 6, DesktopW: 128, DesktopH: 96, RetransLog: 4096,
		Profile: Profile{Name: "loss5", Down: transport.LinkConfig{LossRate: 0.05}},
		Viewers: crowd(1000, 0, 0, "n"),
	}
	return []Scenario{flash, churn, nack}
}

// ByName returns the matrix or storm scenario with the given name.
func ByName(name string) (Scenario, error) {
	for _, sc := range append(Matrix(), Storms()...) {
		if sc.Name == name {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("netsim: unknown scenario %q", name)
}
