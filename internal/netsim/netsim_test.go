package netsim

import (
	"container/heap"
	"errors"
	"testing"
	"time"

	"appshare/internal/transport"
)

func TestVClockMonotonic(t *testing.T) {
	start := time.Unix(100, 0)
	c := newVClock(start)
	if !c.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", c.Now(), start)
	}
	c.set(start.Add(50 * time.Millisecond))
	c.set(start.Add(10 * time.Millisecond)) // earlier: ignored
	if got := c.Now(); !got.Equal(start.Add(50 * time.Millisecond)) {
		t.Fatalf("clock moved backwards: %v", got)
	}
}

func TestEventHeapTotalOrder(t *testing.T) {
	t0 := time.Unix(0, 0)
	h := eventHeap{}
	// Pushed deliberately out of order: ties on `at` break by viewer
	// index, then by per-viewer sequence.
	push := func(atMS int, li int, seq uint64) {
		heap.Push(&h, &event{at: t0.Add(time.Duration(atMS) * time.Millisecond), li: li, seq: seq})
	}
	push(5, 2, 1)
	push(5, 0, 9)
	push(1, 3, 4)
	push(5, 0, 2)
	push(5, 2, 0)
	push(9, 0, 0)

	want := []struct {
		atMS int
		li   int
		seq  uint64
	}{
		{1, 3, 4}, {5, 0, 2}, {5, 0, 9}, {5, 2, 0}, {5, 2, 1}, {9, 0, 0},
	}
	for i, w := range want {
		ev := heap.Pop(&h).(*event)
		if !ev.at.Equal(t0.Add(time.Duration(w.atMS)*time.Millisecond)) || ev.li != w.li || ev.seq != w.seq {
			t.Fatalf("pop %d = (at=%v li=%d seq=%d), want (%dms %d %d)",
				i, ev.at.Sub(t0), ev.li, ev.seq, w.atMS, w.li, w.seq)
		}
	}
}

func TestDeriveSeed(t *testing.T) {
	a := deriveSeed(42, "link-down/u1")
	if a != deriveSeed(42, "link-down/u1") {
		t.Fatal("deriveSeed is not deterministic")
	}
	if a == deriveSeed(42, "link-down/u2") {
		t.Fatal("different salts produced the same seed")
	}
	if a == deriveSeed(43, "link-down/u1") {
		t.Fatal("different base seeds produced the same seed")
	}
	for _, base := range []int64{0, 1, -1, 1 << 40} {
		if deriveSeed(base, "x") == 0 {
			t.Fatalf("deriveSeed(%d) returned 0 (would clock-seed the shaper)", base)
		}
	}
}

func TestStreamConnBudgetGate(t *testing.T) {
	c := newStreamConn(true)
	c.grant(4)
	wrote := make(chan error, 1)
	go func() {
		_, err := c.Write(make([]byte, 10))
		wrote <- err
	}()
	// The writer must accept 4 bytes and park for more budget.
	deadline := time.Now().Add(2 * time.Second)
	for {
		in, blocked, budget, _ := c.state()
		if in == 4 && blocked == 1 && budget == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("writer did not park: in=%d blocked=%d budget=%d", in, blocked, budget)
		}
		time.Sleep(time.Millisecond)
	}
	c.grant(6) // exactly the remainder: budget returns to zero
	if err := <-wrote; err != nil {
		t.Fatalf("write after grant: %v", err)
	}
	if got := c.takeOut(); len(got) != 10 {
		t.Fatalf("takeOut = %d bytes, want 10", len(got))
	}

	// A parked writer must be released by Close with ErrClosed.
	go func() {
		_, err := c.Write(make([]byte, 1))
		wrote <- err
	}()
	for {
		_, blocked, _, _ := c.state()
		if blocked == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second writer did not park")
		}
		time.Sleep(time.Millisecond)
	}
	_ = c.Close()
	if err := <-wrote; !errors.Is(err, transport.ErrClosed) {
		t.Fatalf("write after close = %v, want ErrClosed", err)
	}
}

func TestStreamConnUnlimited(t *testing.T) {
	c := newStreamConn(false) // unlimited: no budget modeling
	if n, err := c.Write(make([]byte, 1<<16)); n != 1<<16 || err != nil {
		t.Fatalf("unlimited write = (%d, %v)", n, err)
	}
	c2 := newStreamConn(true)
	c2.setUnlimited()
	if n, err := c2.Write(make([]byte, 999)); n != 999 || err != nil {
		t.Fatalf("write after setUnlimited = (%d, %v)", n, err)
	}
}

func TestScenarioValidation(t *testing.T) {
	base := func() Scenario {
		return Scenario{
			Name:  "v",
			Ticks: 4,
			Viewers: []ViewerSpec{
				{Name: "a", Kind: KindUDP, Profile: &Profile{Name: "pristine"}},
			},
		}
	}
	cases := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{"duplicate viewer names", func(s *Scenario) {
			s.Viewers = append(s.Viewers, ViewerSpec{Name: "a", Kind: KindUDP, Profile: &Profile{Name: "p"}})
		}},
		{"reserved name", func(s *Scenario) { s.Viewers[0].Name = "_ref" }},
		{"join beyond run", func(s *Scenario) { s.Viewers[0].JoinAtTick = 99 }},
		{"tcp with lossy profile", func(s *Scenario) {
			s.Viewers[0].Kind = KindTCP
			s.Viewers[0].Profile = &Profile{Name: "lossy", Down: transport.LinkConfig{LossRate: 0.5}}
		}},
		{"multicast late join", func(s *Scenario) {
			s.Viewers[0].Kind = KindMulticast
			s.Viewers[0].JoinAtTick = 2
		}},
		{"multicast with delay link", func(s *Scenario) {
			s.Viewers[0].Kind = KindMulticast
			s.Viewers[0].Profile = &Profile{Name: "slow", Down: transport.LinkConfig{Delay: time.Millisecond}}
		}},
		{"unknown expected eviction", func(s *Scenario) { s.Expect.Evicted = []string{"ghost"} }},
		{"relay chain too deep", func(s *Scenario) {
			s.Relay = &RelaySpec{Levels: 5}
		}},
		{"relay level without relay path", func(s *Scenario) { s.Viewers[0].RelayLevel = 1 }},
		{"relay level beyond chain", func(s *Scenario) {
			s.Relay = &RelaySpec{Levels: 2}
			s.Viewers[0].ViaRelay = true
			s.Viewers[0].RelayLevel = 2
		}},
		{"migration fault without broker", func(s *Scenario) { s.Fault = FaultCorruptSnapshot }},
		{"migration fault without failure", func(s *Scenario) {
			s.Ticks = 12
			s.Broker = &BrokerSpec{}
			s.Fault = FaultDropFloorState
		}},
		{"broker with relay tier", func(s *Scenario) {
			s.Broker = &BrokerSpec{}
			s.Relay = &RelaySpec{}
		}},
		{"negative fail tick", func(s *Scenario) { s.Broker = &BrokerSpec{FailAtTick: -1} }},
		{"failover too close to run end", func(s *Scenario) {
			// FailAtTick 2 + detect 2 + 3 settle ticks > 4 total.
			s.Broker = &BrokerSpec{FailAtTick: 2}
		}},
		{"broker with tcp viewer", func(s *Scenario) {
			s.Broker = &BrokerSpec{}
			s.Viewers[0].Kind = KindTCP
			s.Viewers[0].Profile = nil
		}},
		{"join inside the dead window", func(s *Scenario) {
			s.Ticks = 12
			s.Broker = &BrokerSpec{FailAtTick: 4}
			s.Viewers = append(s.Viewers, ViewerSpec{Name: "b", Kind: KindUDP, JoinAtTick: 5})
		}},
	}
	for _, tc := range cases {
		sc := base()
		tc.mutate(&sc)
		if err := validate(applyDefaults(sc)); err == nil {
			t.Errorf("%s: validate accepted an invalid scenario", tc.name)
		}
	}

	if err := validate(applyDefaults(base())); err != nil {
		t.Errorf("valid scenario rejected: %v", err)
	}
}

func TestMatrixWellFormed(t *testing.T) {
	seen := map[string]bool{}
	seeds := map[int64]string{}
	for _, sc := range Matrix() {
		if seen[sc.Name] {
			t.Errorf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		if prev, dup := seeds[sc.Seed]; dup {
			t.Errorf("scenarios %q and %q share seed %d", prev, sc.Name, sc.Seed)
		}
		seeds[sc.Seed] = sc.Name
		if err := validate(applyDefaults(sc)); err != nil {
			t.Errorf("matrix scenario %q invalid: %v", sc.Name, err)
		}
	}
	if len(seen) < 10 {
		t.Errorf("matrix has %d scenarios, acceptance floor is 10", len(seen))
	}
	for _, sc := range MigrationFamily() {
		if seen[sc.Name] {
			t.Errorf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		if prev, dup := seeds[sc.Seed]; dup {
			t.Errorf("scenarios %q and %q share seed %d", prev, sc.Name, sc.Seed)
		}
		seeds[sc.Seed] = sc.Name
		if sc.Seed < SeedMigrationBase || sc.Seed > SeedMigrationEnd {
			t.Errorf("migration scenario %q seed %d outside the reserved range [%d,%d]",
				sc.Name, sc.Seed, SeedMigrationBase, SeedMigrationEnd)
		}
		if err := validate(applyDefaults(sc)); err != nil {
			t.Errorf("migration scenario %q invalid: %v", sc.Name, err)
		}
	}
	if _, err := ByName("pristine"); err != nil {
		t.Errorf("ByName(pristine): %v", err)
	}
	if _, err := ByName("no-such"); err == nil {
		t.Error("ByName accepted an unknown scenario")
	}
	if _, err := ByName("migrate-pristine"); err != nil {
		t.Errorf("ByName(migrate-pristine): %v", err)
	}
}
